package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the darwinlint binary into a temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "darwinlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build darwinlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module with the given files.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.24.0\n"
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitsNonzeroOnSeededBadFile proves the full standalone pipeline
// (darwinlint -> go vet -vettool=self -> unitchecker protocol) fails a
// build containing a replay-purity violation.
func TestExitsNonzeroOnSeededBadFile(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{
		"bad.go": `package scratch

import "time"

//darwin:replaypure
func Bad() time.Time { return time.Now() }
`,
	})
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("darwinlint exited 0 on a seeded replaypure violation\n%s", out)
	}
	if !strings.Contains(string(out), "replaypure") || !strings.Contains(string(out), "time.Now") {
		t.Fatalf("diagnostic missing analyzer name or detail:\n%s", out)
	}
}

// TestExitsZeroOnCleanModule is the positive control: same pipeline, no
// violations, exit 0.
func TestExitsZeroOnCleanModule(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{
		"good.go": `package scratch

import "time"

//darwin:replaypure
func Good(t0 time.Time) bool { return t0.IsZero() }

func Unscoped() time.Time { return time.Now() }
`,
	})
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("darwinlint failed on a clean module: %v\n%s", err, out)
	}
}

// TestVettoolProtocol drives the go vet integration directly, the way CI
// and `go vet -vettool=` users invoke it.
func TestVettoolProtocol(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{
		"bad.go": `package scratch

import "os"

//darwin:replaypure
func Bad() string { return os.Getenv("HOME") }
`,
	})
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on a seeded violation\n%s", out)
	}
	if !strings.Contains(string(out), "os.Getenv") {
		t.Fatalf("diagnostic detail missing:\n%s", out)
	}
}
