// Command darwinlint runs the repo's project-specific static analyzers
// (replaypure, lockorder, journalack, errenvelope, obsnames) over Go
// packages. It speaks the `go vet -vettool=` unitchecker protocol and can
// also be invoked standalone, in which case it re-executes `go vet` with
// itself as the vettool so the go command handles package loading and
// export data:
//
//	go run ./cmd/darwinlint ./...          # standalone
//	go vet -vettool=$(which darwinlint) ./...
//
// Exit status: 0 clean, nonzero when any analyzer reports a diagnostic.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/errenvelope"
	"repro/internal/analysis/journalack"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/obsnames"
	"repro/internal/analysis/replaypure"
)

var analyzers = []*analysis.Analyzer{
	replaypure.Analyzer,
	lockorder.Analyzer,
	journalack.Analyzer,
	errenvelope.Analyzer,
	obsnames.Analyzer,
}

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	// The go command interrogates the vettool before use: `-V=full` for a
	// version fingerprint (cache key), `-flags` for supported flags.
	for _, arg := range args {
		if strings.HasPrefix(arg, "-V=") {
			fmt.Printf("%s version devel comments-go-here buildID=gibberish\n", progname)
			return
		}
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone re-executes `go vet` with this binary as the vettool, so the
// go command does package loading, export data, and dependency ordering.
func standalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "darwinlint: cannot locate own executable: %v\n", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "darwinlint: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxFile is what darwinlint stores per package: one fact blob per
// analyzer.
type vetxFile struct {
	Facts map[string]json.RawMessage `json:"facts"`
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darwinlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "darwinlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command runs the vettool over every package in the build
	// graph, including the standard library. The invariants are
	// repo-specific, so standard packages get an empty facts file and no
	// analysis. (cfg.Standard maps import path -> standardness.)
	if cfg.Standard[cfg.ImportPath] {
		return writeVetx(cfg.VetxOutput, map[string][]byte{})
	}
	diags, facts, err := analyzePackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, map[string][]byte{})
		}
		fmt.Fprintf(os.Stderr, "darwinlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	return 2
}

type posDiag struct {
	Position token.Position
	Analyzer string
	Message  string
}

func analyzePackage(cfg *vetConfig) ([]posDiag, map[string][]byte, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil
	}

	// Typecheck against the export data the go command already built,
	// resolving import paths through the vendor/ImportMap indirection.
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := &types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	info := analysis.NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}

	unit := &analysis.Unit{
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		ReadFact: func(analyzerName, pkgPath string) []byte {
			return readDepFact(cfg, analyzerName, pkgPath)
		},
	}
	diags, facts, err := unit.Run(analyzers)
	if err != nil {
		return nil, nil, err
	}
	out := make([]posDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, posDiag{Position: fset.Position(d.Pos), Analyzer: d.Analyzer, Message: d.Message})
	}
	return out, facts, nil
}

var depFactCache = map[string]*vetxFile{}

// readDepFact loads the named analyzer's fact blob for a dependency from
// the vetx file the go command recorded for it.
func readDepFact(cfg *vetConfig, analyzerName, pkgPath string) []byte {
	if p, ok := cfg.ImportMap[pkgPath]; ok {
		pkgPath = p
	}
	file, ok := cfg.PackageVetx[pkgPath]
	if !ok {
		return nil
	}
	vf, ok := depFactCache[file]
	if !ok {
		data, err := os.ReadFile(file)
		if err == nil {
			var parsed vetxFile
			if json.Unmarshal(data, &parsed) == nil {
				vf = &parsed
			}
		}
		depFactCache[file] = vf
	}
	if vf == nil || vf.Facts == nil {
		return nil
	}
	return vf.Facts[analyzerName]
}

// writeVetx persists this package's facts; go vet requires the file to
// exist even when empty.
func writeVetx(path string, facts map[string][]byte) int {
	vf := vetxFile{Facts: map[string]json.RawMessage{}}
	for name, blob := range facts {
		vf.Facts[name] = json.RawMessage(blob)
	}
	data, err := json.Marshal(vf)
	if err == nil {
		err = os.WriteFile(path, data, 0o666)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "darwinlint: writing vetx: %v\n", err)
		return 1
	}
	return 0
}
