package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/grammar"
	"repro/internal/index"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
)

// Scale-experiment guards, enforced with a non-zero exit so CI fails when
// the adaptive kernel regresses.
const (
	// scaleMinMemoryReduction: the adaptive kernel's per-node coverage must
	// cost at most half of the dense mirror on the million-sentence
	// sparse-rule corpus — sparse rules must not pay dense cost.
	scaleMinMemoryReduction = 0.50
	// scaleStepRelBudget / scaleStepAbsFloorMillis bound the interactive
	// price of compression: the adaptive step mean must stay within 10% of
	// the dense kernel at paper scale (plus a small absolute floor so the
	// guard is stable when both means are fractions of a millisecond).
	scaleStepRelBudget      = 0.10
	scaleStepAbsFloorMillis = 0.25
)

// ScalePerf is the million-sentence snapshot written to BENCH_perf.json's
// "scale" section: coverage memory for dense vs adaptive kernels over the
// same index, and the interactive step price of the compression.
type ScalePerf struct {
	// The memory measurement: professions at 1M sentences (1.1% positive),
	// one index measured under both kernels.
	Dataset          string  `json:"dataset"`
	Sentences        int     `json:"sentences"`
	IndexBuildMillis float64 `json:"index_build_ms"`
	IndexNodes       int     `json:"index_nodes"`

	AdaptiveCoverageBytes    int     `json:"adaptive_coverage_bytes"`
	DenseCoverageBytes       int     `json:"dense_coverage_bytes"`
	AdaptiveBytesPerSentence float64 `json:"adaptive_bytes_per_sentence"`
	DenseBytesPerSentence    float64 `json:"dense_bytes_per_sentence"`
	// MemoryReduction is 1 - adaptive/dense; MinMemoryReduction is the CI
	// floor it must clear.
	MemoryReduction    float64 `json:"memory_reduction"`
	MinMemoryReduction float64 `json:"min_memory_reduction"`

	ArrayContainers  int `json:"array_containers"`
	BitmapContainers int `json:"bitmap_containers"`
	DenseContainers  int `json:"dense_containers"`

	// The latency measurement: runPerf's scripted reject-heavy session at
	// paper scale, once per kernel.
	StepDataset            string  `json:"step_dataset"`
	StepSentences          int     `json:"step_sentences"`
	AdaptiveStepMeanMillis float64 `json:"adaptive_step_mean_ms"`
	DenseStepMeanMillis    float64 `json:"dense_step_mean_ms"`
	StepBudgetMillis       float64 `json:"step_budget_ms"`
}

// runScale measures the adaptive coverage kernel at the paper's 1M-sentence
// scale and merges the numbers into BENCH_perf.json.
func runScale(perfPath string) error {
	header("Scale: adaptive vs dense coverage kernel at 1M sentences -> " + perfPath)

	// Memory: professions reaches the paper's 1M sentences at scale 10. The
	// index is built once (adaptive, the default) and the kernel is flipped
	// in place for the dense measurement — SetKernel rewrites only the
	// representation, never the postings, so both numbers describe the
	// identical coverage sets.
	const (
		memDataset = "professions"
		memScale   = 10.0
		memSeed    = 7
	)
	c, err := datagen.ByName(memDataset, memScale, memSeed)
	if err != nil {
		return err
	}
	c.Preprocess(corpus.PreprocessOptions{})
	cfg := perfConfig()
	buildStart := time.Now()
	ix := index.Build(c, sketch.NewBuilder(grammar.NewRegistry(tokensregex.New()), cfg.SketchDepth))
	ix.Prune(cfg.MinRuleCoverage)
	build := time.Since(buildStart)

	adaptiveBytes := ix.CoverageBytes()
	arrays, bitmaps, denseContainers := ix.ContainerStats()
	ix.SetKernel(index.KernelDense)
	denseBytes := ix.CoverageBytes()
	if denseBytes == 0 {
		return fmt.Errorf("scale: dense kernel reports zero coverage bytes")
	}
	reduction := 1 - float64(adaptiveBytes)/float64(denseBytes)

	// Latency: the identical scripted session runPerf tracks, driven once
	// per kernel on paper-scale directions. Fresh corpora per engine —
	// preprocessing mutates sentences in place.
	const (
		stepDataset = "directions"
		stepScale   = 0.5
		stepSeed    = 7
		steps       = 60
	)
	stepMean := func(kernel string) (float64, int, error) {
		sc, err := datagen.ByName(stepDataset, stepScale, stepSeed)
		if err != nil {
			return 0, 0, err
		}
		cfg := perfConfig()
		cfg.Kernel = kernel
		eng, err := core.New(sc, cfg)
		if err != nil {
			return 0, 0, err
		}
		mean, _, err := scriptedSession(eng, steps)
		return mean, sc.Len(), err
	}
	denseMean, stepSentences, err := stepMean(index.KernelDense)
	if err != nil {
		return err
	}
	adaptiveMean, _, err := stepMean(index.KernelAdaptive)
	if err != nil {
		return err
	}
	stepBudget := denseMean*(1+scaleStepRelBudget) + scaleStepAbsFloorMillis

	perf := &ScalePerf{
		Dataset:                  memDataset,
		Sentences:                c.Len(),
		IndexBuildMillis:         float64(build) / float64(time.Millisecond),
		IndexNodes:               ix.Len(),
		AdaptiveCoverageBytes:    adaptiveBytes,
		DenseCoverageBytes:       denseBytes,
		AdaptiveBytesPerSentence: float64(adaptiveBytes) / float64(c.Len()),
		DenseBytesPerSentence:    float64(denseBytes) / float64(c.Len()),
		MemoryReduction:          reduction,
		MinMemoryReduction:       scaleMinMemoryReduction,
		ArrayContainers:          arrays,
		BitmapContainers:         bitmaps,
		DenseContainers:          denseContainers,
		StepDataset:              stepDataset,
		StepSentences:            stepSentences,
		AdaptiveStepMeanMillis:   adaptiveMean,
		DenseStepMeanMillis:      denseMean,
		StepBudgetMillis:         stepBudget,
	}
	if err := mergeScalePerf(perfPath, perf); err != nil {
		return err
	}
	fmt.Printf("sentences=%d nodes=%d index_build=%.0fms\n", perf.Sentences, perf.IndexNodes, perf.IndexBuildMillis)
	fmt.Printf("coverage bytes: dense=%d (%.1f B/sentence)  adaptive=%d (%.1f B/sentence)  reduction=%.1f%% (floor %.0f%%)\n",
		denseBytes, perf.DenseBytesPerSentence, adaptiveBytes, perf.AdaptiveBytesPerSentence,
		reduction*100, scaleMinMemoryReduction*100)
	fmt.Printf("containers: array=%d bitmap=%d dense=%d\n", arrays, bitmaps, denseContainers)
	fmt.Printf("step mean (%s, %d sentences): dense=%.3fms adaptive=%.3fms (budget %.3fms)\n",
		stepDataset, stepSentences, denseMean, adaptiveMean, stepBudget)

	if reduction < scaleMinMemoryReduction {
		return fmt.Errorf("scale: adaptive kernel saves only %.1f%% of dense coverage memory, floor is %.0f%%",
			reduction*100, scaleMinMemoryReduction*100)
	}
	if adaptiveMean > stepBudget {
		return fmt.Errorf("scale: adaptive step mean %.3fms exceeds %.3fms (dense %.3fms + %.0f%% + %.2fms)",
			adaptiveMean, stepBudget, denseMean, scaleStepRelBudget*100, scaleStepAbsFloorMillis)
	}
	return nil
}

// mergeScalePerf folds the scale numbers into BENCH_perf.json without
// disturbing the sections owned by the other experiments (same loose-JSON
// idiom as mergeAutolabelPerf).
func mergeScalePerf(path string, perf *ScalePerf) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("scale: %s exists but is not a JSON object: %v", path, err)
		}
	}
	section, err := json.Marshal(perf)
	if err != nil {
		return err
	}
	doc["scale"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
