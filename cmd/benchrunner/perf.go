package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/tokensregex"
)

// PerfReport is the machine-readable performance snapshot written to
// BENCH_perf.json so the interactive hot path's trajectory is tracked across
// PRs. Baseline holds the pre-bitset-kernel numbers (PR 2's starting point,
// measured with the identical scenario on the same corpus); Current is
// re-measured on every run.
type PerfReport struct {
	Dataset   string  `json:"dataset"`
	Scale     float64 `json:"corpus_scale"`
	Sentences int     `json:"sentences"`

	Current  PerfNumbers `json:"current"`
	Baseline PerfNumbers `json:"baseline_pre_pr2"`

	// Autolabel is the corpus-scale auto-labeling snapshot, owned by the
	// autolabel experiment (runAutolabel) and carried through rewrites here.
	Autolabel *AutolabelPerf `json:"autolabel,omitempty"`
	// ScaleSection is the million-sentence kernel snapshot, owned by the
	// scale experiment (runScale) and likewise carried through rewrites.
	ScaleSection *ScalePerf `json:"scale,omitempty"`
}

// AutolabelPerf tracks the batch labeling pipeline: whole-pipeline
// throughput (resolve + vote matrix + aggregate + JSONL write) on the
// full-scale directions corpus, and the end-to-end latency of one job
// through the async Manager.
type AutolabelPerf struct {
	Dataset   string `json:"dataset"`
	Sentences int    `json:"sentences"`
	Rules     int    `json:"rules"`
	Rounds    int    `json:"rounds"`
	// SentencesPerSec is labeled sentences per second across the measured
	// rounds; FloorPerSec is the CI guard it must clear (1M/minute).
	SentencesPerSec   float64 `json:"sentences_per_sec"`
	FloorPerSec       float64 `json:"floor_per_sec"`
	E2EJobMillis      float64 `json:"e2e_job_ms"`
	OutputBytesPerRun int64   `json:"output_bytes_per_run"`
}

// PerfNumbers are the tracked quantities.
type PerfNumbers struct {
	// IndexBuildMillis is corpus preprocessing + sketch index construction.
	IndexBuildMillis float64 `json:"index_build_ms"`
	// Step latencies over the scripted reject-heavy interactive session
	// (one accept per seven questions), in milliseconds.
	StepP50Millis  float64 `json:"step_p50_ms"`
	StepP95Millis  float64 `json:"step_p95_ms"`
	StepMeanMillis float64 `json:"step_mean_ms"`
	Steps          int     `json:"steps"`
	// CandidatesPerSec is Algorithm 2 throughput at the paper's 10K
	// candidate count.
	CandidatesPerSec float64 `json:"candidates_per_sec"`
	// HierarchyGenerations over the scripted session (with incremental
	// reuse this tracks positive-set changes, not questions).
	HierarchyGenerations int `json:"hierarchy_generations"`
}

// baselinePrePR2 is the committed pre-change baseline, measured at commit
// bde5f40 (map-based coverage scans, hierarchy regenerated on every Next)
// with the same corpus, configuration and scripted session as runPerf.
var baselinePrePR2 = PerfNumbers{
	IndexBuildMillis:     213.2,
	StepP50Millis:        9.74,
	StepP95Millis:        17.66,
	StepMeanMillis:       10.43,
	Steps:                60,
	CandidatesPerSec:     374591,
	HierarchyGenerations: 60,
}

// perfConfig mirrors the interactive serving configuration used by the root
// benchmarks (BenchmarkSessionNext).
func perfConfig() core.Config {
	return core.Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     4,
		MaxRuleDepth:    8,
		NumCandidates:   10000,
		MinRuleCoverage: 2,
		Budget:          1 << 30,
		Traversal:       "hybrid",
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 6, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Seed:            1,
	}
}

// runPerf measures the interactive hot path and writes BENCH_perf.json.
func runPerf(outPath string) error {
	header("Perf: interactive hot-path snapshot -> " + outPath)
	const (
		dataset = "directions"
		scale   = 0.5
		steps   = 60
	)
	c, err := datagen.ByName(dataset, scale, 7)
	if err != nil {
		return err
	}

	buildStart := time.Now()
	engine, err := core.New(c, perfConfig())
	if err != nil {
		return err
	}
	indexBuild := time.Since(buildStart)

	// Scripted reject-heavy session: one accept per seven questions.
	sess, err := engine.NewSession(core.SessionOptions{SeedRules: []string{"best way to get to"}, Budget: 1 << 30})
	if err != nil {
		return err
	}
	lat := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		stepStart := time.Now()
		sug, ok := sess.Next()
		if !ok {
			break
		}
		lat = append(lat, float64(time.Since(stepStart))/float64(time.Millisecond))
		if _, err := sess.Answer(sug.Key, i%7 == 0); err != nil {
			return err
		}
	}
	if len(lat) == 0 {
		return fmt.Errorf("perf: scripted session produced no steps")
	}
	mean := 0.0
	for _, v := range lat {
		mean += v
	}
	mean /= float64(len(lat))
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)

	// Candidate-generation throughput at the paper's 10K.
	_, seedCov, err := engine.MaterializeRule("best way to")
	if err != nil {
		return err
	}
	positives := map[int]bool{}
	for _, id := range seedCov {
		positives[id] = true
	}
	hcfg := hierarchy.Config{NumCandidates: 10000, MaxRuleDepth: 8, MinCoverage: 2, Cleanup: true}
	const genRounds = 5
	genStart := time.Now()
	generated := 0
	for i := 0; i < genRounds; i++ {
		generated += len(hierarchy.GenerateCandidates(engine.Index(), positives, hcfg))
	}
	genDur := time.Since(genStart)

	rep := PerfReport{
		Dataset:   dataset,
		Scale:     scale,
		Sentences: c.Len(),
		Current: PerfNumbers{
			IndexBuildMillis:     float64(indexBuild) / float64(time.Millisecond),
			StepP50Millis:        percentile(sorted, 0.50),
			StepP95Millis:        percentile(sorted, 0.95),
			StepMeanMillis:       mean,
			Steps:                len(lat),
			CandidatesPerSec:     float64(generated) / genDur.Seconds(),
			HierarchyGenerations: sess.HierarchyGenerations(),
		},
		Baseline: baselinePrePR2,
	}
	// Keep the other experiments' sections across rewrites of the file.
	if prev, err := readPerfReport(outPath); err == nil {
		rep.Autolabel = prev.Autolabel
		rep.ScaleSection = prev.ScaleSection
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sentences=%d index_build=%.0fms step p50=%.2fms p95=%.2fms mean=%.2fms (%d steps, %d hierarchy generations) candidates/sec=%.0f\n",
		rep.Sentences, rep.Current.IndexBuildMillis, rep.Current.StepP50Millis, rep.Current.StepP95Millis,
		rep.Current.StepMeanMillis, rep.Current.Steps, rep.Current.HierarchyGenerations, rep.Current.CandidatesPerSec)
	fmt.Printf("baseline (pre-PR2): step p50=%.2fms mean=%.2fms, %d hierarchy generations\n",
		rep.Baseline.StepP50Millis, rep.Baseline.StepMeanMillis, rep.Baseline.HierarchyGenerations)
	return nil
}

// percentile returns the p-quantile of an ascending slice (nearest-rank:
// the ceil(p*n)-th smallest value).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
