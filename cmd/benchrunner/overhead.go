package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
)

// overheadBudget is the instrumentation-cost guard: with telemetry enabled
// the scripted session's mean step must stay within 5% of the disabled run,
// plus a small absolute floor so sub-millisecond steps don't fail on noise.
const (
	overheadRelBudget      = 0.05
	overheadAbsFloorMillis = 0.25
)

// runOverhead measures the telemetry tax on the interactive hot path: the
// same scripted session as runPerf, A/B'd with the obs registry disabled and
// enabled on the same engine in the same process. Fails (non-zero exit in
// CI) when the enabled mean exceeds the budget above.
func runOverhead(perfPath string) error {
	header("Overhead: telemetry A/B on the suggest step")
	const (
		dataset = "directions"
		scale   = 0.5
		steps   = 60
	)
	c, err := datagen.ByName(dataset, scale, 7)
	if err != nil {
		return err
	}
	engine, err := core.New(c, perfConfig())
	if err != nil {
		return err
	}

	// Warm up once (feature cache, page cache) so neither arm pays the
	// first-run cost, then measure disabled and enabled runs of the
	// identical deterministic session.
	defer obs.SetEnabled(true)
	if _, _, err := scriptedSession(engine, steps); err != nil {
		return err
	}
	obs.SetEnabled(false)
	offMean, offP95, err := scriptedSession(engine, steps)
	if err != nil {
		return err
	}
	obs.SetEnabled(true)
	onMean, onP95, err := scriptedSession(engine, steps)
	if err != nil {
		return err
	}

	budget := offMean*(1+overheadRelBudget) + overheadAbsFloorMillis
	fmt.Printf("step mean: disabled=%.3fms enabled=%.3fms (budget %.3fms)  p95: disabled=%.3fms enabled=%.3fms\n",
		offMean, onMean, budget, offP95, onP95)
	if rep, err := readPerfReport(perfPath); err == nil {
		fmt.Printf("committed %s: step mean=%.3fms p95=%.3fms (informational)\n",
			perfPath, rep.Current.StepMeanMillis, rep.Current.StepP95Millis)
	}
	if onMean > budget {
		return fmt.Errorf("overhead: instrumented step mean %.3fms exceeds %.3fms (disabled %.3fms + %.0f%% + %.2fms)",
			onMean, budget, offMean, overheadRelBudget*100, overheadAbsFloorMillis)
	}
	return nil
}

// scriptedSession runs runPerf's reject-heavy scripted session (one accept
// per seven questions) and returns the step mean and p95 in milliseconds.
func scriptedSession(engine *core.Engine, steps int) (mean, p95 float64, err error) {
	sess, err := engine.NewSession(core.SessionOptions{SeedRules: []string{"best way to get to"}, Budget: 1 << 30})
	if err != nil {
		return 0, 0, err
	}
	lat := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		stepStart := time.Now()
		sug, ok := sess.Next()
		if !ok {
			break
		}
		lat = append(lat, float64(time.Since(stepStart))/float64(time.Millisecond))
		if _, err := sess.Answer(sug.Key, i%7 == 0); err != nil {
			return 0, 0, err
		}
	}
	if len(lat) == 0 {
		return 0, 0, fmt.Errorf("overhead: scripted session produced no steps")
	}
	for _, v := range lat {
		mean += v
	}
	mean /= float64(len(lat))
	sort.Float64s(lat)
	return mean, percentile(lat, 0.95), nil
}

// readPerfReport loads the committed BENCH_perf.json for the informational
// comparison line.
func readPerfReport(path string) (PerfReport, error) {
	var rep PerfReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(raw, &rep)
}
