package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/autolabel"
	"repro/internal/core"
	"repro/internal/datagen"
)

// autolabelFloorPerSec is the corpus-scale labeling throughput guard: the
// batch pipeline (rule resolution + vote matrix + aggregation + JSONL write)
// must sustain at least one million sentences per minute on the full-scale
// directions corpus, or the run fails (non-zero exit in CI).
const autolabelFloorPerSec = 1_000_000.0 / 60

// runAutolabel measures the corpus-scale auto-labeling pipeline and merges
// the numbers into BENCH_perf.json. Two quantities are tracked: raw pipeline
// throughput (repeated in-process autolabel.Run rounds over the full-scale
// directions corpus, output to io.Discard) and the end-to-end latency of one
// job through the async Manager (journal append, queue, worker, partial
// rename) — the tax of the job machinery over the raw pipeline.
func runAutolabel(perfPath string) error {
	header("Autolabel: corpus-scale labeling throughput -> " + perfPath)
	const (
		dataset = "directions"
		scale   = 1.0
		seed    = 7
	)
	c, err := datagen.ByName(dataset, scale, seed)
	if err != nil {
		return err
	}
	engine, err := core.New(c, perfConfig())
	if err != nil {
		return err
	}

	// The committee is mined by the Snuba baseline from a gold seed — the
	// same deterministic committee every run, and the honest input shape
	// (the production path labels with a mined or interactively accepted
	// rule set, not hand phrases).
	mined, err := autolabel.RunSnuba(engine, autolabel.SnubaRequest{
		SeedSize: 500, Seed: 1, MinPrecision: 0.6, MaxRules: 10,
	})
	if err != nil {
		return err
	}
	rules := make([]string, 0, len(mined.Rules))
	for _, r := range mined.Rules {
		rules = append(rules, r.Rule)
	}
	if len(rules) == 0 {
		return fmt.Errorf("autolabel: snuba mined no rules to benchmark with")
	}
	spec := autolabel.Spec{Rules: rules, Aggregator: autolabel.AggregatorGenerative}

	// Warm once (feature/coverage caches), then measure whole-pipeline
	// rounds until enough wall clock has accumulated to be stable.
	if _, err := autolabel.Run(context.Background(), engine, spec, io.Discard, nil); err != nil {
		return err
	}
	const minElapsed = 500 * time.Millisecond
	rounds, labeled := 0, 0
	measureStart := time.Now()
	for time.Since(measureStart) < minElapsed {
		res, err := autolabel.Run(context.Background(), engine, spec, io.Discard, nil)
		if err != nil {
			return err
		}
		rounds++
		labeled += res.Sentences
	}
	elapsed := time.Since(measureStart)
	perSec := float64(labeled) / elapsed.Seconds()

	// End-to-end job latency through the async Manager.
	jobsDir, err := os.MkdirTemp("", "benchrunner-autolabel-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(jobsDir)
	mgr, err := autolabel.NewManager(autolabel.ManagerConfig{Dir: jobsDir},
		func(name string) (*core.Engine, bool) {
			if name == dataset {
				return engine, true
			}
			return nil, false
		})
	if err != nil {
		return err
	}
	defer mgr.Close()
	jobStart := time.Now()
	st, err := mgr.Submit(dataset, spec)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if st, err = mgr.Wait(ctx, st.ID); err != nil {
		return err
	}
	if st.State != autolabel.StateDone {
		return fmt.Errorf("autolabel: benchmark job ended %s: %s", st.State, st.Error)
	}
	e2e := time.Since(jobStart)

	perf := &AutolabelPerf{
		Dataset:           dataset,
		Sentences:         c.Len(),
		Rules:             len(rules),
		Rounds:            rounds,
		SentencesPerSec:   perSec,
		E2EJobMillis:      float64(e2e) / float64(time.Millisecond),
		FloorPerSec:       autolabelFloorPerSec,
		OutputBytesPerRun: st.OutputBytes,
	}
	if err := mergeAutolabelPerf(perfPath, perf); err != nil {
		return err
	}
	fmt.Printf("sentences=%d rules=%d rounds=%d throughput=%.0f sentences/sec (%.1fM/min, floor %.0f/sec) e2e job=%.0fms output=%dB\n",
		perf.Sentences, perf.Rules, perf.Rounds, perSec, perSec*60/1e6, autolabelFloorPerSec,
		perf.E2EJobMillis, perf.OutputBytesPerRun)
	if perSec < autolabelFloorPerSec {
		return fmt.Errorf("autolabel: throughput %.0f sentences/sec below the %.0f/sec floor (1M/minute)",
			perSec, autolabelFloorPerSec)
	}
	return nil
}

// mergeAutolabelPerf folds the autolabel numbers into the existing
// BENCH_perf.json without disturbing the hot-path snapshot the perf
// experiment owns. The file is read as loose JSON so this experiment can run
// standalone (missing or foreign file: a fresh object holding only the
// autolabel section).
func mergeAutolabelPerf(path string, perf *AutolabelPerf) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("autolabel: %s exists but is not a JSON object: %v", path, err)
		}
	}
	section, err := json.Marshal(perf)
	if err != nil {
		return err
	}
	doc["autolabel"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
