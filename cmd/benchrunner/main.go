// Command benchrunner regenerates every table and figure of the paper's
// evaluation section and prints the rows/series in a compact text form.
//
// Usage:
//
//	benchrunner                          # all experiments, laptop-scale preset
//	benchrunner -preset quick            # CI-scale (seconds per experiment)
//	benchrunner -preset paper            # full Table 1 sizes (slow)
//	benchrunner -experiment figure9      # a single experiment
//	benchrunner -experiment table2 -scale 0.5 -budget 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		preset     = flag.String("preset", "default", "options preset: quick | default | paper")
		experiment = flag.String("experiment", "all", "which experiment to run: all | perf | overhead | autolabel | scale | table1 | figure7 | figure8 | figure9 | figure10 | figure11 | table2 | efficiency | human | figure12 | figure13 | figure14")
		scale      = flag.Float64("scale", 0, "override dataset scale")
		budget     = flag.Int("budget", 0, "override oracle budget")
		seed       = flag.Int64("seed", 0, "override random seed")
		treematch  = flag.Bool("treematch", false, "enable the TreeMatch grammar")
		perfOut    = flag.String("perf-out", "BENCH_perf.json", "output path for the perf experiment's JSON report")
	)
	flag.Parse()

	opts := presetOptions(*preset)
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *budget > 0 {
		opts.Budget = *budget
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *treematch {
		opts.UseTreeMatch = true
	}

	runners := map[string]func(experiments.Options) error{
		"perf":       func(experiments.Options) error { return runPerf(*perfOut) },
		"overhead":   func(experiments.Options) error { return runOverhead(*perfOut) },
		"autolabel":  func(experiments.Options) error { return runAutolabel(*perfOut) },
		"scale":      func(experiments.Options) error { return runScale(*perfOut) },
		"table1":     runTable1,
		"figure7":    runFigure7,
		"figure8":    runFigure8,
		"figure9":    runFigure9,
		"figure10":   runFigure10,
		"figure11":   runFigure11,
		"table2":     runTable2,
		"efficiency": runEfficiency,
		"human":      runHuman,
		"figure12":   runFigure12,
		"figure13":   runFigure13,
		"figure14":   runFigure14,
	}
	order := []string{"table1", "figure7", "figure8", "figure9", "figure10", "figure11",
		"table2", "efficiency", "human", "figure12", "figure13", "figure14"}

	start := time.Now()
	if *experiment == "all" {
		for _, name := range order {
			if err := runners[name](opts); err != nil {
				fatalf("%s: %v", name, err)
			}
		}
	} else {
		run, ok := runners[strings.ToLower(*experiment)]
		if !ok {
			fatalf("unknown experiment %q", *experiment)
		}
		if err := run(opts); err != nil {
			fatalf("%s: %v", *experiment, err)
		}
	}
	fmt.Printf("\ntotal wall clock: %v\n", time.Since(start).Round(time.Second))
}

func presetOptions(preset string) experiments.Options {
	switch strings.ToLower(preset) {
	case "quick":
		return experiments.QuickOptions()
	case "paper":
		return experiments.PaperOptions()
	default:
		return experiments.DefaultOptions()
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runTable1(o experiments.Options) error {
	header("Table 1: dataset statistics")
	rows, err := o.Table1()
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s %12s  %s\n", "dataset", "#sentences", "%positives", "labeling")
	for _, r := range rows {
		fmt.Printf("%-14s %12d %11.1f%%  %s\n", r.Dataset, r.Sentences, r.PositivePct, r.Task)
	}
	return nil
}

func runFigure7(o experiments.Options) error {
	header("Figure 7: coverage vs. random seed-set size (Snuba vs Darwin(HS))")
	sizes := map[string][]int{
		"directions": {25, 50, 125, 250, 500, 1000},
		"musicians":  {25, 100, 500, 1000, 2000},
	}
	for _, dataset := range []string{"directions", "musicians"} {
		res, err := o.Figure7(dataset, scaleSizes(sizes[dataset], o.Scale))
		if err != nil {
			return err
		}
		printSeedSize(res)
	}
	return nil
}

func runFigure8(o experiments.Options) error {
	header("Figure 8: coverage vs. biased seed-set size (token withheld from the seed)")
	sizes := map[string][]int{
		"directions": {25, 50, 200, 400, 800, 1600},
		"musicians":  {20, 100, 500, 1000, 2000},
	}
	for _, dataset := range []string{"directions", "musicians"} {
		res, err := o.Figure8(dataset, scaleSizes(sizes[dataset], o.Scale), experiments.WithheldTokenFor(dataset))
		if err != nil {
			return err
		}
		printSeedSize(res)
	}
	return nil
}

// scaleSizes shrinks the paper's seed-set sizes alongside the corpus scale so
// the seed/corpus ratios stay comparable, with a floor of 10.
func scaleSizes(sizes []int, scale float64) []int {
	if scale >= 1 {
		return sizes
	}
	out := make([]int, len(sizes))
	for i, s := range sizes {
		v := int(float64(s) * scale * 5) // keep seeds meaningfully sized at small scales
		if v < 10 {
			v = 10
		}
		if v > s {
			v = s
		}
		out[i] = v
	}
	return out
}

func printSeedSize(res experiments.SeedSizeResult) {
	label := res.Dataset
	if res.Biased {
		label += " (withheld: " + res.WithheldToken + ")"
	}
	fmt.Printf("%-36s %10s %10s %10s\n", label, "#seeds", "Snuba", "Darwin(HS)")
	for _, p := range res.Points {
		fmt.Printf("%-36s %10d %10.2f %10.2f\n", "", p.SeedSize, p.Snuba, p.Darwin)
	}
}

func runFigure9(o experiments.Options) error {
	header("Figure 9: rule coverage and classifier F-score vs. #questions")
	for _, dataset := range experiments.Figure9Datasets() {
		res, err := o.Figure9(dataset)
		if err != nil {
			return err
		}
		printMethodCurves(res, o.Budget)
	}
	return nil
}

func runFigure10(o experiments.Options) error {
	header("Figure 10: coverage and F-score vs. #questions on professions")
	res, err := o.Figure10()
	if err != nil {
		return err
	}
	printMethodCurves(res, o.Budget)
	return nil
}

func printMethodCurves(res experiments.MethodCurves, budget int) {
	fmt.Printf("\n[%s]\n", res.Dataset)
	checkpoints := []int{budget / 4, budget / 2, budget}
	fmt.Printf("  %-12s", "coverage")
	for _, q := range checkpoints {
		fmt.Printf("  q=%-6d", q)
	}
	fmt.Println()
	for _, method := range sortedMethodNames(res.Coverage) {
		curve := res.Coverage[method]
		fmt.Printf("  %-12s", method)
		for _, q := range checkpoints {
			fmt.Printf("  %-8.2f", curve.At(q))
		}
		fmt.Println()
	}
	fmt.Printf("  %-12s", "F-score")
	for _, q := range checkpoints {
		fmt.Printf("  q=%-6d", q)
	}
	fmt.Println()
	for _, method := range sortedMethodNames(res.FScore) {
		curve := res.FScore[method]
		fmt.Printf("  %-12s", method)
		for _, q := range checkpoints {
			fmt.Printf("  %-8.2f", curve.At(q))
		}
		fmt.Println()
	}
}

func sortedMethodNames[M any](m map[string]M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func runFigure11(o experiments.Options) error {
	header("Figure 11: example rule traversals of Darwin(HS)")
	traces, err := o.Figure11()
	if err != nil {
		return err
	}
	for _, tr := range traces {
		fmt.Println(tr.String())
	}
	return nil
}

func runTable2(o experiments.Options) error {
	header("Table 2: Darwin vs Darwin+Snorkel classifier F-score")
	rows, err := o.Table2()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %10s %16s\n", "dataset", "Darwin", "Darwin+Snorkel")
	for _, r := range rows {
		fmt.Printf("%-16s %10.2f %16.2f\n", r.Dataset, r.Darwin, r.DarwinSnorkel)
	}
	return nil
}

func runEfficiency(o experiments.Options) error {
	header("Efficiency: index construction and end-to-end label collection (professions)")
	res, err := o.Efficiency(nil)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s %14s %10s %10s\n", "#sentences", "index build", "total run", "questions", "coverage")
	for _, r := range res {
		fmt.Printf("%10d %14v %14v %10d %10.2f\n",
			r.Sentences, r.IndexBuild.Round(time.Millisecond), r.TotalRun.Round(time.Millisecond),
			r.Questions, r.Coverage)
	}
	return nil
}

func runHuman(o experiments.Options) error {
	header("§4.5: simulated human annotators (3-vote crowd) vs perfect oracle")
	res, err := o.HumanAnnotators(0.05)
	if err != nil {
		return err
	}
	fmt.Printf("dataset=%s  perfect coverage=%.2f  crowd coverage=%.2f  false YES=%d/%d  est. human effort=%.0f min\n",
		res.Dataset, res.PerfectCoverage, res.CrowdCoverage, res.CrowdFalseYes, res.CrowdQueries, res.EstimatedMinutes)
	return nil
}

func runFigure12(o experiments.Options) error {
	header("Figure 12a: sensitivity to tau (musicians)")
	taus, err := o.Figure12Tau(nil)
	if err != nil {
		return err
	}
	printParamCurves(taus, o.Budget)
	header("Figure 12b: sensitivity to the seed rule (musicians)")
	seeds, err := o.Figure12Seeds(nil)
	if err != nil {
		return err
	}
	printParamCurves(seeds, o.Budget)
	return nil
}

func runFigure13(o experiments.Options) error {
	header("Figure 13: sensitivity to the number of generated candidates (musicians)")
	curves, err := o.Figure13Candidates(nil)
	if err != nil {
		return err
	}
	printParamCurves(curves, o.Budget)
	return nil
}

func runFigure14(o experiments.Options) error {
	header("Figure 14: effect of classifier training epochs (musicians)")
	points, err := o.Figure14Epochs(nil, 0.75)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %22s %16s\n", "epochs", "questions to 75% cov", "final coverage")
	for _, p := range points {
		q := fmt.Sprintf("%d", p.QuestionsToTarget)
		if p.QuestionsToTarget < 0 {
			q = "not reached"
		}
		fmt.Printf("%8d %22s %16.2f\n", p.Epochs, q, p.FinalCoverage)
	}
	return nil
}

func printParamCurves(curves []experiments.ParamCurve, budget int) {
	checkpoints := []int{budget / 4, budget / 2, budget}
	fmt.Printf("  %-16s", "")
	for _, q := range checkpoints {
		fmt.Printf("  q=%-6d", q)
	}
	fmt.Println()
	for _, pc := range curves {
		fmt.Printf("  %-16s", pc.Label)
		for _, q := range checkpoints {
			fmt.Printf("  %-8.2f", pc.Curve.At(q))
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchrunner: "+format+"\n", args...)
	os.Exit(1)
}
