package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/pkg/darwin"
)

// procLogs accumulates a child process's stderr so the test can assert on
// its structured request logs.
type procLogs struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (p *procLogs) append(line string) {
	p.mu.Lock()
	p.buf.WriteString(line)
	p.buf.WriteByte('\n')
	p.mu.Unlock()
}

func (p *procLogs) contains(s string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Contains(p.buf.String(), s)
}

// TestMultiShardFailoverE2E is the end-to-end sharding test: two real
// darwind shard processes (journaled) behind a real darwin-router process,
// driven through the public SDK. One shard is killed with SIGKILL
// mid-session; labelers on the surviving shard must be unaffected, labelers
// routed to the dead shard must surface the typed retryable unavailability,
// and a restarted shard must recover its journaled workspace — and the
// attachment's deterministic labeler id — through the router.
func TestMultiShardFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs darwind + darwin-router binaries; skipped in -short")
	}
	dir := t.TempDir()
	darwind := filepath.Join(dir, "darwind")
	if out, err := exec.Command("go", "build", "-o", darwind, "../darwind").CombinedOutput(); err != nil {
		t.Fatalf("go build darwind: %v\n%s", err, out)
	}
	routerBin := filepath.Join(dir, "darwin-router")
	if out, err := exec.Command("go", "build", "-o", routerBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build darwin-router: %v\n%s", err, out)
	}

	listenRE := regexp.MustCompile(`listening on ([0-9.:]+)`)
	start := func(bin string, args ...string) (*exec.Cmd, string, *procLogs) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		logs := &procLogs{}
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				logs.append(sc.Text())
				if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
				}
			}
		}()
		select {
		case addr := <-addrCh:
			return cmd, addr, logs
		case <-time.After(120 * time.Second):
			t.Fatalf("%s did not start listening", bin)
			return nil, "", nil
		}
	}

	// Identical engine flags across every shard start: replay determinism
	// requires the restarted shard to rebuild the exact engine.
	shardArgs := func(addr, journal string) []string {
		return []string{
			"-addr", addr,
			"-datasets", "directions,musicians",
			"-scale", "0.05",
			"-seed", "7",
			"-budget", "100",
			"-candidates", "400",
			"-sketch-depth", "4",
			"-journal", journal,
		}
	}
	journalA := filepath.Join(dir, "shard-alpha.jsonl")
	journalB := filepath.Join(dir, "shard-beta.jsonl")
	_, addrA, logsA := start(darwind, shardArgs("127.0.0.1:0", journalA)...)
	procB, addrB, _ := start(darwind, shardArgs("127.0.0.1:0", journalB)...)

	_, routerAddr, logsRouter := start(routerBin,
		"-addr", "127.0.0.1:0",
		"-shards", fmt.Sprintf("alpha=http://%s,beta=http://%s", addrA, addrB),
		"-probe-every", "200ms",
		"-retries", "1",
		"-retry-backoff", "50ms",
	)
	client := darwin.NewClient("http://"+routerAddr, "")
	ctx := context.Background()

	// Recompute the ring the router built: "musicians" lives on alpha,
	// "directions" on beta.
	ring, err := shard.New([]shard.Spec{
		{Name: "alpha", URL: "http://" + addrA}, {Name: "beta", URL: "http://" + addrB},
	}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Place("musicians") != "alpha" || ring.Place("directions") != "beta" {
		t.Fatalf("unexpected placement: musicians → %s, directions → %s",
			ring.Place("musicians"), ring.Place("directions"))
	}

	survivor, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "musicians", SeedRules: []string{"composer"}, Budget: 40, Seed: 42,
	})
	if err != nil {
		t.Fatalf("create on alpha: %v", err)
	}
	victim, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{"best way to get to"}, Budget: 40, Seed: 9,
	})
	if err != nil {
		t.Fatalf("create on beta: %v", err)
	}
	// Step the workspace labeler a few times so recovery has real history.
	for i := 0; i < 6; i++ {
		sug, err := victim.Suggest(ctx)
		if err != nil {
			t.Fatalf("suggest %d: %v", i, err)
		}
		if err := victim.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: i%3 == 0}); err != nil {
			t.Fatalf("answer %d: %v", i, err)
		}
	}
	stBefore, err := victim.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	repBefore, err := victim.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// One request id must trace the whole router → shard path: issue a call
	// with a caller-chosen id and find that id in BOTH daemons' structured
	// request logs.
	const traceID = "e2e-trace-0451"
	if _, err := survivor.Status(obs.WithRequestID(ctx, traceID)); err != nil {
		t.Fatalf("traced status: %v", err)
	}
	waitForLog(t, "router", logsRouter, traceID)
	waitForLog(t, "shard alpha", logsA, traceID)

	// Scrape /metrics from the router and from shard alpha mid-test: both
	// must serve valid Prometheus text exposition covering their layers.
	routerMetrics := scrapeMetrics(t, "http://"+routerAddr)
	for _, series := range []string{
		`darwin_http_requests_total{daemon="darwin-router"`,
		`darwin_shard_requests_total{shard="alpha"`,
		`darwin_shard_up{shard="alpha"} 1`,
		"darwin_http_request_duration_seconds_bucket",
	} {
		if !strings.Contains(routerMetrics, series) {
			t.Errorf("router /metrics is missing %q", series)
		}
	}
	shardMetrics := scrapeMetrics(t, "http://"+addrA)
	for _, series := range []string{
		`darwin_http_requests_total{daemon="darwind"`,
		"darwin_sessions_live",
		"darwin_journal_appends_total",
		"darwin_suggest_step_duration_seconds_count",
	} {
		if !strings.Contains(shardMetrics, series) {
			t.Errorf("shard /metrics is missing %q", series)
		}
	}

	// SIGKILL shard beta: no shutdown hook runs; the journal's kernel
	// writes are all that survives.
	if err := procB.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procB.Wait()

	if _, err := survivor.Suggest(ctx); err != nil {
		t.Fatalf("labeler on surviving shard broke: %v", err)
	}
	if _, err := victim.Suggest(ctx); !errors.Is(err, darwin.ErrUnavailable) {
		t.Fatalf("suggest on dead shard: %v, want ErrUnavailable", err)
	} else if !darwin.Retryable(err) {
		t.Fatalf("dead-shard error %v is not marked retryable", err)
	}

	// Restart shard beta on the same address from its journal.
	start(darwind, shardArgs(addrB, journalB)...)
	waitHealthy(t, "http://"+addrB+"/healthz")

	stAfter, err := victim.Status(ctx)
	if err != nil {
		t.Fatalf("status after shard restart: %v", err)
	}
	if stAfter.ID != stBefore.ID || stAfter.Workspace != stBefore.Workspace || stAfter.Questions != stBefore.Questions {
		t.Fatalf("resumed status %+v does not match pre-crash %+v", stAfter, stBefore)
	}
	repAfter, err := victim.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(repAfter.History) != len(repBefore.History) || repAfter.Positives != repBefore.Positives {
		t.Fatalf("report diverged across SIGKILL+restart: before %d questions/%d positives, after %d/%d",
			len(repBefore.History), repBefore.Positives, len(repAfter.History), repAfter.Positives)
	}
	// The recovered attachment keeps serving through the router.
	sug, err := victim.Suggest(ctx)
	if err != nil {
		t.Fatalf("suggest after recovery: %v", err)
	}
	if err := victim.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: false}); err != nil {
		t.Fatalf("answer after recovery: %v", err)
	}
}

// waitForLog polls a process's captured stderr until the wanted substring
// appears (request logs are written asynchronously to the response).
func waitForLog(t *testing.T, who string, logs *procLogs, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if logs.contains(want) {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s logs never contained %q", who, want)
}

// scrapeMetrics fetches base/metrics and validates it as Prometheus text
// exposition before returning it.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s/metrics: %v", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s/metrics: HTTP %d (%v)", base, resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("scrape %s/metrics: Content-Type %q, want %q", base, ct, obs.ContentType)
	}
	if err := obs.CheckExposition(string(body)); err != nil {
		t.Fatalf("%s/metrics is not valid exposition: %v", base, err)
	}
	return string(body)
}

// waitHealthy polls a healthz URL until it answers 200.
func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", url)
}
