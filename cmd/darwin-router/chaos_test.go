package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/replicate"
	"repro/internal/shard"
	"repro/pkg/darwin"
)

// routerHealth mirrors the router's /healthz document.
type routerHealth struct {
	Status     string                `json:"status"`
	Shards     []shard.ShardHealth   `json:"shards"`
	Placements []shard.PlacementInfo `json:"placements"`
}

// waitPlacement polls the router's healthz until the dataset's placement
// shows the wanted primary at (at least) the wanted epoch.
func waitPlacement(t *testing.T, routerURL, dataset, primary string, epoch uint64) shard.PlacementInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last routerHealth
	for time.Now().Before(deadline) {
		resp, err := http.Get(routerURL + "/healthz")
		if err == nil {
			var h routerHealth
			if json.NewDecoder(resp.Body).Decode(&h) == nil {
				last = h
			}
			resp.Body.Close()
			for _, p := range last.Placements {
				if p.Dataset == dataset && p.Primary == primary && p.Epoch >= epoch {
					return p
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("router never placed %s on %s@%d; last healthz: %+v", dataset, primary, epoch, last)
	return shard.PlacementInfo{}
}

// waitReplicated polls a shard's replication status directly until its
// primary stream for the dataset is healthy with zero lag.
func waitReplicated(t *testing.T, shardURL, dataset string) {
	t.Helper()
	ctl := replicate.NewControl(shardURL, "", nil)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := ctl.Status(context.Background())
		if err == nil {
			for _, d := range st.Datasets {
				if d.Dataset == dataset && d.Role == replicate.RolePrimary && d.Healthy && d.Lag == 0 && d.AckedUpto > 0 {
					return
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("shard %s never fully replicated %s to its follower", shardURL, dataset)
}

// exportVia streams a labeler's transcript through the router.
func exportVia(t *testing.T, client *darwin.Client, id string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := client.OpenLabeler(id).Export(context.Background(), &buf); err != nil {
		t.Fatalf("export %s: %v", id, err)
	}
	return buf.Bytes()
}

// TestChaosPartitionAndSIGKILLFailoverE2E is the fault-injection end-to-end
// proof of the replication tentpole, with two real darwind processes behind
// a real darwin-router process:
//
//  1. a network partition cuts the router off from the directions primary;
//     the router promotes the follower — acknowledged answers survive with a
//     byte-identical transcript, and the zombie primary's epoch-1 batches
//     are rejected by the promoted shard's fence;
//  2. the partition heals; the router demotes the zombie to follower and the
//     resync stream rebuilds its warm standby;
//  3. the now-primary shard is SIGKILLed mid-annotation; the router promotes
//     again and the same zero-loss, byte-identical guarantees hold.
func TestChaosPartitionAndSIGKILLFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs darwind + darwin-router binaries; skipped in -short")
	}
	dir := t.TempDir()
	darwind := filepath.Join(dir, "darwind")
	if out, err := exec.Command("go", "build", "-o", darwind, "../darwind").CombinedOutput(); err != nil {
		t.Fatalf("go build darwind: %v\n%s", err, out)
	}
	routerBin := filepath.Join(dir, "darwin-router")
	if out, err := exec.Command("go", "build", "-o", routerBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build darwin-router: %v\n%s", err, out)
	}

	listenRE := regexp.MustCompile(`listening on ([0-9.:]+)`)
	start := func(bin string, args ...string) (*exec.Cmd, string, *procLogs) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		logs := &procLogs{}
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				logs.append(sc.Text())
				if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
				}
			}
		}()
		select {
		case addr := <-addrCh:
			return cmd, addr, logs
		case <-time.After(120 * time.Second):
			t.Fatalf("%s did not start listening", bin)
			return nil, "", nil
		}
	}
	shardArgs := func(addr, journal string) []string {
		return []string{
			"-addr", addr,
			"-datasets", "directions,musicians",
			"-scale", "0.05",
			"-seed", "7",
			"-budget", "100",
			"-candidates", "400",
			"-sketch-depth", "4",
			"-journal", journal,
		}
	}
	journalA := filepath.Join(dir, "shard-alpha.jsonl")
	journalB := filepath.Join(dir, "shard-beta.jsonl")
	procA, addrA, _ := start(darwind, shardArgs("127.0.0.1:0", journalA)...)
	_, addrB, logsB := start(darwind, shardArgs("127.0.0.1:0", journalB)...)

	// The router reaches beta only through a partitionable proxy; alpha is
	// reached directly (its failure mode below is SIGKILL, not partition).
	proxyB, err := faultinject.NewProxy("127.0.0.1:0", addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer proxyB.Close()

	_, routerAddr, logsRouter := start(routerBin,
		"-addr", "127.0.0.1:0",
		"-shards", fmt.Sprintf("alpha=http://%s,beta=%s", addrA, proxyB.URL()),
		"-probe-every", "200ms",
		"-retries", "1",
		"-retry-backoff", "50ms",
		"-shard-timeout", "5s",
		"-failover-threshold", "2",
		"-probe-backoff-max", "1s",
	)
	routerURL := "http://" + routerAddr
	client := darwin.NewClient(routerURL, "")
	ctx := context.Background()

	// The ring puts directions on beta (musicians on alpha); the router's
	// reconcile must bootstrap that placement with alpha as follower.
	waitPlacement(t, routerURL, "directions", "beta", 1)

	lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{"best way to get to"}, Budget: 60, Seed: 9,
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	answered := 0
	annotate := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			sug, err := lab.Suggest(ctx)
			if err != nil {
				t.Fatalf("suggest (after %d answers): %v", answered, err)
			}
			if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: answered%3 == 0}); err != nil {
				t.Fatalf("answer %d: %v", answered, err)
			}
			answered++
		}
	}
	annotate(6)
	repBefore, err := lab.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitReplicated(t, "http://"+addrB, "directions")
	exportBefore := exportVia(t, client, lab.ID())

	// --- Scenario 1: partition the primary. ---
	proxyB.Partition()
	waitPlacement(t, routerURL, "directions", "alpha", 2)

	repAfter, err := lab.Report(ctx)
	if err != nil {
		t.Fatalf("report through promoted follower: %v", err)
	}
	if len(repAfter.History) != len(repBefore.History) || repAfter.Positives != repBefore.Positives {
		t.Fatalf("acknowledged answers lost in partition failover: %d/%d -> %d/%d",
			len(repBefore.History), repBefore.Positives, len(repAfter.History), repAfter.Positives)
	}
	if got := exportVia(t, client, lab.ID()); !bytes.Equal(got, exportBefore) {
		t.Fatalf("promoted follower's transcript is not byte-identical (%d vs %d bytes)", len(got), len(exportBefore))
	}
	// The promoted shard's fence rejects the zombie primary's epoch-1
	// appends.
	zombieCtl := replicate.NewControl("http://"+addrA, "", nil)
	_, err = zombieCtl.SendEvents(ctx, "directions", replicate.Batch{Epoch: 1, Gen: 1, Reset: true, From: 0, Upto: 1})
	if !errors.Is(err, replicate.ErrFenced) {
		t.Fatalf("zombie epoch-1 batch: err=%v, want ErrFenced", err)
	}
	annotate(4) // keep annotating through the new primary

	// --- Scenario 2: heal; the zombie is demoted and resynced. ---
	proxyB.Heal()
	waitForLog(t, "shard beta", logsB, "demoted for directions at epoch 2")
	waitReplicated(t, "http://"+addrA, "directions")

	// --- Scenario 3: SIGKILL the current primary mid-annotation. ---
	repBefore, err = lab.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	exportBefore = exportVia(t, client, lab.ID())
	if err := procA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procA.Wait()
	waitPlacement(t, routerURL, "directions", "beta", 3)

	repAfter, err = lab.Report(ctx)
	if err != nil {
		t.Fatalf("report after SIGKILL failover: %v", err)
	}
	if len(repAfter.History) != len(repBefore.History) || repAfter.Positives != repBefore.Positives {
		t.Fatalf("acknowledged answers lost in SIGKILL failover: %d/%d -> %d/%d",
			len(repBefore.History), repBefore.Positives, len(repAfter.History), repAfter.Positives)
	}
	if got := exportVia(t, client, lab.ID()); !bytes.Equal(got, exportBefore) {
		t.Fatalf("post-SIGKILL transcript is not byte-identical (%d vs %d bytes)", len(got), len(exportBefore))
	}
	annotate(3)

	// --- Telemetry: the failover trail is on /metrics. ---
	routerMetrics := scrapeMetrics(t, routerURL)
	if !strings.Contains(routerMetrics, `darwin_router_promotions_total{dataset="directions"} 2`) {
		t.Errorf("router /metrics does not count both promotions:\n%s", grepMetric(routerMetrics, "darwin_router_promotions"))
	}
	shardMetrics := scrapeMetrics(t, "http://"+addrB)
	for _, series := range []string{
		`darwin_replication_lag_events{dataset="directions"}`,
		`darwin_replication_applied_events_total{dataset="directions"}`,
		// Two promotions: directions (scenario 3) and musicians, whose
		// primary alpha died in the same SIGKILL.
		"darwin_replication_promotions_total 2",
	} {
		if !strings.Contains(shardMetrics, series) {
			t.Errorf("shard beta /metrics is missing %q:\n%s", series, grepMetric(shardMetrics, "darwin_replication"))
		}
	}
	if !logsRouter.contains("failed over") {
		t.Error("router log never recorded a failover")
	}
}

// grepMetric filters an exposition body to lines containing sub, for
// readable failure messages.
func grepMetric(body, sub string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, sub) && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
