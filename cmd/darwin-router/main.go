// Command darwin-router serves one logical /v2 labeler namespace over a
// fleet of darwind shards. It mounts the exact same /v2 handler set darwind
// serves — generated over the Backend interface — on top of a consistent-
// hash router (internal/shard), so SDK clients talk to a fleet the way they
// talk to one daemon: darwin.NewClient(routerURL, token) and nothing else
// changes. Fresh labelers are placed by their dataset's ring position;
// every id the router returns is namespaced "<shard>~<id>" and routes by
// that prefix alone, so the router itself is stateless and restartable.
//
// Example (two shards, one router):
//
//	darwind -addr :8081 -datasets directions,musicians -journal /data/s1.jsonl
//	darwind -addr :8082 -datasets directions,musicians -journal /data/s2.jsonl
//	darwin-router -addr :8080 -shards s1=http://127.0.0.1:8081,s2=http://127.0.0.1:8082
//
//	curl -s -X POST localhost:8080/v2/labelers \
//	     -d '{"dataset":"directions","seed_rules":["best way to get to"]}'
//
// Shard names are ring identities: keep them stable across restarts and
// re-configurations, or datasets will re-home. /healthz reports per-shard
// probe state and stays unauthenticated for load balancers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		shards     = flag.String("shards", "", "comma-separated shard list, each \"name=url\" (name is the stable ring identity)")
		shardToken = flag.String("shard-token", "", "bearer token the router presents to every shard")
		token      = flag.String("token", "", "require 'Authorization: Bearer <token>' on incoming /v2/* requests")
		rateLimit  = flag.Float64("rate-limit", 0, "per-IP request rate limit in requests/second (0 disables)")
		rateBurst  = flag.Int("rate-burst", 0, "per-IP burst size (default 2x -rate-limit)")
		probeEvery = flag.Duration("probe-every", 5*time.Second, "shard /healthz probe interval")
		retries    = flag.Int("retries", 2, "bounded retries of retryable errors on idempotent shard calls (negative disables)")
		backoff    = flag.Duration("retry-backoff", 100*time.Millisecond, "first retry backoff (doubled per attempt)")
		shardTO    = flag.Duration("shard-timeout", 0, "per-request deadline on JSON calls to shards; a hung shard fails fast with a retryable error (0 disables)")
		failover   = flag.Int("failover-threshold", 0, "promote a dataset's replication follower after its primary fails this many consecutive probes (0 disables replication management)")
		probeMax   = flag.Duration("probe-backoff-max", 30*time.Second, "cap on the exponential probe backoff for down shards")
		listConc   = flag.Int("list-concurrency", 4, "how many shards the list fan-outs (/v2/labelers, /v2/datasets) query concurrently (1 restores the sequential walk)")
		accessLog  = flag.Bool("access-log", true, "emit one structured (JSON) log line per request, carrying the request id")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (unauthenticated; bind accordingly)")
	)
	flag.Parse()

	specs, err := parseShards(*shards, *shardToken)
	if err != nil {
		fatalf("%v", err)
	}
	router, err := shard.New(specs, shard.Config{
		Retries:           *retries,
		RetryBackoff:      *backoff,
		ShardTimeout:      *shardTO,
		FailoverThreshold: *failover,
		ProbeBackoffMax:   *probeMax,
		ListConcurrency:   *listConc,
	})
	if err != nil {
		fatalf("%v", err)
	}
	up := router.ProbeNow(context.Background())
	log.Printf("probed %d shards: %d up", len(specs), up)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		shardHealth := router.Health()
		status := "ok"
		for _, h := range shardHealth {
			if !h.Healthy {
				status = "degraded"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Status     string                `json:"status"`
			Shards     []shard.ShardHealth   `json:"shards"`
			Placements []shard.PlacementInfo `json:"placements,omitempty"`
		}{Status: status, Shards: shardHealth, Placements: router.Placements()})
	})
	mux.Handle("GET /metrics", obs.Default().Handler())
	server.RegisterV2(router, func(pattern string, h http.HandlerFunc) { mux.HandleFunc(pattern, h) })
	var logger *slog.Logger
	if *accessLog {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	// Instrument sits outside auth/rate-limit so 401s and 429s are counted
	// and every request carries a request id into the shard fan-out.
	handler := obs.Instrument(obs.Default(), "darwin-router", logger,
		server.Middleware(*token, *rateLimit, *rateBurst, mux))
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}

	stop := make(chan struct{})
	go router.Prober(*probeEvery, stop)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down")
		close(stop)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		close(drained)
	}()

	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	log.Printf("darwin-router listening on %s (shards: %s)", ln.Addr(), strings.Join(names, ", "))
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	// Serve returns as soon as Shutdown starts; wait for the drain to
	// finish so in-flight responses are not cut off by process exit.
	<-drained
}

// parseShards parses the -shards flag: "name=url,name=url".
func parseShards(raw, token string) ([]shard.Spec, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("-shards is required (e.g. -shards s1=http://host1:8080,s2=http://host2:8080)")
	}
	var specs []shard.Spec
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("shard %q: want \"name=url\"", part)
		}
		specs = append(specs, shard.Spec{Name: name, URL: url, Token: token})
	}
	return specs, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "darwin-router: "+format+"\n", args...)
	os.Exit(1)
}
