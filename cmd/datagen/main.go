// Command datagen generates the synthetic datasets used by the experiments
// and writes them as JSONL files (one header line followed by one
// {"text":..., "label":...} record per sentence).
//
// Usage:
//
//	datagen -dataset directions -scale 1.0 -seed 1 -out directions.jsonl
//	datagen -all -scale 0.2 -outdir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
)

func main() {
	var (
		dataset = flag.String("dataset", "directions", "dataset name: directions | musicians | cause-effect | professions | tweets")
		all     = flag.Bool("all", false, "generate all five datasets")
		scale   = flag.Float64("scale", 1.0, "scale factor applied to the Table 1 dataset size")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (default <dataset>.jsonl)")
		outdir  = flag.String("outdir", ".", "output directory when -all is set")
		stats   = flag.Bool("stats", false, "print Table 1 style statistics instead of writing files")
	)
	flag.Parse()

	names := []string{*dataset}
	if *all {
		names = datagen.AllDatasetNames()
	}

	for _, name := range names {
		c, err := datagen.ByName(name, *scale, *seed)
		if err != nil {
			fatalf("generate %s: %v", name, err)
		}
		if *stats {
			st := c.ComputeStats()
			fmt.Printf("%-14s %8d sentences  %5.1f%% positive  task=%s\n",
				name, st.Sentences, st.PositivePct, c.Task)
			continue
		}
		path := *out
		if path == "" || *all {
			path = filepath.Join(*outdir, name+".jsonl")
		}
		if err := c.SaveJSONL(path); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fmt.Printf("wrote %s (%d sentences, %.1f%% positive)\n", path, c.Len(), c.PositiveRate()*100)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
