// Command darwin runs the Darwin adaptive rule-discovery pipeline end to end
// on a synthetic dataset (or a JSONL corpus) with a simulated oracle, and
// prints the discovered rules, the coverage of the discovered positive set,
// and the quality of the trained classifier.
//
// With -remote, the same simulated-oracle loop instead drives a labeler on
// a running darwind server through the public SDK (pkg/darwin) and the /v2
// HTTP API; the corpus is generated locally only to play the oracle, so the
// server must serve the same dataset (same name, scale and seed).
//
// Examples:
//
//	darwin -dataset directions -seed-rule "best way to get to" -budget 100
//	darwin -corpus mydata.jsonl -seed-rule "treematch:caused/by" -traversal local
//	darwin -dataset musicians -scale 0.2 -oracle crowd -crowd-flip 0.05
//	darwin -remote http://localhost:8080 -dataset directions -budget 50
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/grammar"
	"repro/internal/oracle"
	"repro/internal/tokensregex"
	"repro/internal/treematch"
	"repro/pkg/darwin"
)

func main() {
	var (
		dataset    = flag.String("dataset", "directions", "synthetic dataset name (ignored when -corpus is given)")
		corpusPath = flag.String("corpus", "", "path to a JSONL corpus written by cmd/datagen")
		scale      = flag.Float64("scale", 0.2, "synthetic dataset scale factor")
		seed       = flag.Int64("seed", 1, "random seed")
		seedRule   = flag.String("seed-rule", "", "seed labeling rule (defaults to the dataset's standard seed)")
		traversalF = flag.String("traversal", "hybrid", "traversal strategy: hybrid | universal | local")
		budget     = flag.Int("budget", 100, "oracle query budget")
		candidates = flag.Int("candidates", 2000, "candidate rules generated per iteration (Algorithm 2's k)")
		sketchD    = flag.Int("sketch-depth", 5, "derivation sketch depth")
		tau        = flag.Int("tau", 5, "HybridSearch switching parameter")
		useTree    = flag.Bool("treematch", false, "enable the TreeMatch grammar (dependency-parse rules)")
		oracleKind = flag.String("oracle", "perfect", "oracle: perfect | noisy | crowd")
		flip       = flag.Float64("flip", 0.05, "per-answer flip rate for the noisy/crowd oracle")
		verbose    = flag.Bool("v", false, "print every oracle interaction")
		remote     = flag.String("remote", "", "drive a labeler on this darwind base URL via the SDK instead of running locally")
		token      = flag.String("token", "", "bearer token for -remote")
	)
	flag.Parse()

	c, err := loadCorpus(*corpusPath, *dataset, *scale, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("corpus: %s\n", c)

	grams := []grammar.Grammar{tokensregex.New()}
	if *useTree {
		grams = append(grams, treematch.New())
	}
	cfg := core.DefaultConfig()
	cfg.Grammars = grams
	cfg.Traversal = *traversalF
	cfg.Budget = *budget
	cfg.NumCandidates = *candidates
	cfg.SketchDepth = *sketchD
	cfg.Tau = *tau
	cfg.Seed = *seed
	cfg.Classifier = classifier.Config{Epochs: 10, LearningRate: 0.3, L2: 1e-4, Seed: *seed}
	cfg.Embedding = embedding.Config{Dim: 32, Window: 4, MinCount: 2, Seed: *seed}

	rule := *seedRule
	if rule == "" {
		rule = experiments.SeedRuleFor(*dataset)
		if rule == "" {
			fatalf("no -seed-rule given and no default seed rule for dataset %q", *dataset)
		}
	}

	var o oracle.Oracle = oracle.NewGroundTruth(c)
	switch *oracleKind {
	case "perfect":
	case "noisy":
		o = oracle.NewNoisy(o, *flip, *seed+1)
	case "crowd":
		o = oracle.NewCrowd(c, *flip, *seed+1)
	default:
		fatalf("unknown oracle %q", *oracleKind)
	}

	if *remote != "" {
		runRemote(*remote, *token, *dataset, rule, *budget, *seed, o, c, *verbose)
		return
	}

	engine, err := core.New(c, cfg)
	if err != nil {
		fatalf("initialize engine: %v", err)
	}
	start := time.Now()
	report, err := engine.Run(core.RunOptions{
		SeedRules: []string{rule},
		Oracle:    o,
		OnQuery: func(rec core.RuleRecord, e *core.Engine) {
			if *verbose {
				answer := "NO "
				if rec.Accepted {
					answer = "YES"
				}
				fmt.Printf("  q%-3d %s  %-40s coverage=%d  |P|=%d\n",
					rec.Question, answer, rec.Rule, rec.Coverage, rec.PositivesAfter)
			}
		},
	})
	if err != nil {
		fatalf("run: %v", err)
	}

	fmt.Printf("\nseed rule: %s\n", rule)
	fmt.Printf("questions asked: %d (budget %d)\n", report.Questions, *budget)
	fmt.Printf("accepted rules (%d):\n", len(report.Accepted))
	for _, rec := range report.Accepted {
		fmt.Printf("  q%-3d %-46s coverage=%d\n", rec.Question, rec.Rule, rec.Coverage)
	}
	cov := eval.CoverageOfSet(c, report.Positives)
	prec := eval.PrecisionOfSet(c, report.Positives)
	fmt.Printf("\ndiscovered positive set: %d sentences, coverage=%.3f precision=%.3f\n",
		len(report.Positives), cov, prec)
	f1, thr := eval.BestF1(c, engine.Scores())
	fmt.Printf("classifier best F1 = %.3f (threshold %.1f)\n", f1, thr)
	fmt.Printf("index build %v, total %v (wall clock %v)\n",
		report.IndexBuild.Round(time.Millisecond), report.Total.Round(time.Millisecond),
		time.Since(start).Round(time.Millisecond))
}

func loadCorpus(path, dataset string, scale float64, seed int64) (*corpus.Corpus, error) {
	if path != "" {
		c, err := corpus.LoadJSONL(path)
		if err != nil {
			return nil, fmt.Errorf("load corpus %s: %w", path, err)
		}
		c.Preprocess(corpus.PreprocessOptions{Parse: true})
		return c, nil
	}
	c, err := datagen.ByName(strings.ToLower(dataset), scale, seed)
	if err != nil {
		return nil, err
	}
	c.Preprocess(corpus.PreprocessOptions{Parse: true})
	return c, nil
}

// runRemote drives a labeler on a darwind server through the public SDK:
// the locally generated corpus only plays the oracle (judging the sample
// sentences each suggestion ships), so it must match the dataset the server
// serves.
func runRemote(base, token, dataset, rule string, budget int, seed int64, o oracle.Oracle, c *corpus.Corpus, verbose bool) {
	ctx := context.Background()
	client := darwin.NewClient(base, token)
	lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset:   dataset,
		SeedRules: []string{rule},
		Budget:    budget,
		Seed:      seed,
	})
	if err != nil {
		fatalf("remote create: %v", err)
	}
	defer lab.Close(ctx)
	fmt.Printf("remote labeler %s on %s\n", lab.ID(), base)

	start := time.Now()
	for {
		sug, err := lab.Suggest(ctx)
		if errors.Is(err, darwin.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			fatalf("remote suggest: %v", err)
		}
		ids := make([]int, 0, len(sug.Samples))
		for _, s := range sug.Samples {
			ids = append(ids, s.ID)
		}
		accept := o.Answer(oracle.Query{Coverage: ids, Samples: ids})
		if verbose {
			answer := "NO "
			if accept {
				answer = "YES"
			}
			fmt.Printf("  q%-3d %s  %-40s coverage=%d\n", sug.Question, answer, sug.Rule, sug.Coverage)
		}
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: accept}); err != nil {
			fatalf("remote answer: %v", err)
		}
	}
	rep, err := lab.Report(ctx)
	if err != nil {
		fatalf("remote report: %v", err)
	}
	fmt.Printf("\nseed rule: %s\n", rule)
	fmt.Printf("questions asked: %d (budget %d)\n", rep.Questions, rep.Budget)
	fmt.Printf("accepted rules (%d):\n", len(rep.Accepted))
	for _, rec := range rep.Accepted {
		fmt.Printf("  q%-3d %-46s coverage=%d\n", rec.Question, rec.Rule, rec.Coverage)
	}
	positives := make(map[int]bool, len(rep.PositiveIDs))
	for _, id := range rep.PositiveIDs {
		positives[id] = true
	}
	fmt.Printf("\ndiscovered positive set: %d sentences, coverage=%.3f precision=%.3f\n",
		rep.Positives, eval.CoverageOfSet(c, positives), eval.PrecisionOfSet(c, positives))
	fmt.Printf("total wall clock %v\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "darwin: "+format+"\n", args...)
	os.Exit(1)
}
