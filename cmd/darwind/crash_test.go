package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"
	"time"
)

// TestCrashRecoverySIGKILL is the end-to-end durability test: a real
// darwind process serving a two-annotator workspace is killed with SIGKILL
// mid-session (no shutdown hook runs), restarted with the same -journal,
// and must come back with a byte-identical workspace report and keep
// serving suggestions from where it left off.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the darwind binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "darwind")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	journal := filepath.Join(dir, "journal.jsonl")

	// Identical flags across runs: the engine must rebuild identically for
	// replay to be deterministic.
	args := []string{
		"-addr", "127.0.0.1:0",
		"-datasets", "directions",
		"-scale", "0.05",
		"-seed", "7",
		"-budget", "100",
		"-candidates", "400",
		"-sketch-depth", "4",
		"-journal", journal,
	}
	listenRE := regexp.MustCompile(`listening on ([0-9.:]+)`)
	start := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
				}
			}
		}()
		select {
		case addr := <-addrCh:
			return cmd, addr
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			t.Fatal("darwind did not start listening")
			return nil, ""
		}
	}

	do := func(addr, method, path string, body, out any) int {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			b, _ := json.Marshal(body)
			rd = bytes.NewReader(b)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, "http://"+addr+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}

	proc1, addr := start()
	defer proc1.Process.Kill()

	// Create a workspace with two annotators and answer >= 20 steps.
	var created struct {
		ID string `json:"id"`
	}
	if status := do(addr, "POST", "/v1/workspaces", map[string]any{
		"dataset":    "directions",
		"seed_rules": []string{"best way to get to"},
		"budget":     60,
		"seed":       3,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create workspace: status %d", status)
	}
	base := "/v1/workspaces/" + created.ID
	for _, name := range []string{"alice", "bob"} {
		if status := do(addr, "POST", base+"/annotators", map[string]string{"annotator": name}, nil); status != http.StatusCreated {
			t.Fatalf("attach %s: status %d", name, status)
		}
	}
	answered := 0
	for q := 0; answered < 24; q++ {
		name := []string{"alice", "bob"}[q%2]
		var sug struct {
			Done bool   `json:"done"`
			Key  string `json:"key"`
		}
		if status := do(addr, "GET", base+"/suggest?annotator="+name, nil, &sug); status != http.StatusOK {
			t.Fatalf("suggest: status %d", status)
		}
		if sug.Done {
			break
		}
		if status := do(addr, "POST", base+"/answer", map[string]any{
			"annotator": name, "key": sug.Key, "accept": q%3 == 0,
		}, nil); status != http.StatusOK {
			t.Fatalf("answer: status %d", status)
		}
		answered++
	}
	if answered < 20 {
		t.Fatalf("only answered %d steps before candidates ran dry", answered)
	}

	var before any
	if status := do(addr, "GET", base+"/report", nil, &before); status != http.StatusOK {
		t.Fatalf("report: status %d", status)
	}

	// Kill -9: no flush hook, no graceful shutdown. Every acknowledged
	// answer must already be in the kernel's page cache for the journal.
	if err := proc1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc1.Wait()
	if fi, err := os.Stat(journal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal missing or empty after kill: %v", err)
	}

	proc2, addr2 := start()
	defer func() {
		proc2.Process.Kill()
		proc2.Wait()
	}()

	var after any
	if status := do(addr2, "GET", base+"/report", nil, &after); status != http.StatusOK {
		t.Fatalf("report after restart: status %d", status)
	}
	if !reflect.DeepEqual(before, after) {
		b1, _ := json.MarshalIndent(before, "", " ")
		b2, _ := json.MarshalIndent(after, "", " ")
		t.Fatalf("report changed across SIGKILL+restart:\nbefore: %s\nafter:  %s", b1, b2)
	}

	// The recovered workspace keeps serving: both annotators can step on.
	for _, name := range []string{"alice", "bob"} {
		var sug struct {
			Done bool   `json:"done"`
			Key  string `json:"key"`
		}
		if status := do(addr2, "GET", fmt.Sprintf("%s/suggest?annotator=%s", base, name), nil, &sug); status != http.StatusOK {
			t.Fatalf("post-recovery suggest for %s: status %d", name, status)
		}
		if !sug.Done && sug.Key == "" {
			t.Fatalf("post-recovery suggestion for %s is empty", name)
		}
	}
}
