// Command darwind serves concurrent interactive Darwin rule-discovery
// labelers over HTTP. It loads one or more datasets (synthetic generators
// and/or JSONL corpora written by cmd/datagen), builds a shared read-only
// engine per dataset once at startup, and then hosts any number of
// interactive labelers against them. The canonical surface is the versioned
// /v2 API (one labeler resource for solo sessions and workspace
// attachments alike — see internal/server and api/openapi.yaml); the /v1
// endpoints remain as thin adapters. Go programs should use the pkg/darwin
// SDK (darwin.NewClient) rather than raw HTTP.
//
// Examples:
//
//	darwind -addr :8080 -datasets directions,musicians -scale 0.2
//	darwind -corpus mydata.jsonl -budget 50 -session-ttl 15m
//
// A minimal interactive transcript (/v2):
//
//	curl -s -X POST localhost:8080/v2/labelers \
//	     -d '{"dataset":"directions","seed_rules":["best way to get to"]}'
//	curl -s localhost:8080/v2/labelers/$ID/suggestion
//	curl -s -X POST localhost:8080/v2/labelers/$ID/answers \
//	     -d '{"answers":[{"key":"...","accept":true}]}'
//	curl -s localhost:8080/v2/labelers/$ID/report
//	curl -s localhost:8080/v2/labelers/$ID/export > labeled.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/server"
	"repro/internal/tokensregex"
	"repro/internal/treematch"
	"repro/internal/workspace"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		datasets   = flag.String("datasets", "directions", "comma-separated synthetic dataset names to serve")
		corpusPath = flag.String("corpus", "", "path to a JSONL corpus written by cmd/datagen (served in addition to -datasets)")
		scale      = flag.Float64("scale", 0.2, "synthetic dataset scale factor")
		seed       = flag.Int64("seed", 1, "random seed for dataset generation and engine defaults")
		budget     = flag.Int("budget", 100, "default oracle query budget per session")
		candidates = flag.Int("candidates", 2000, "candidate rules generated per iteration")
		sketchD    = flag.Int("sketch-depth", 5, "derivation sketch depth")
		useTree    = flag.Bool("treematch", false, "enable the TreeMatch grammar (dependency-parse rules)")
		ttl        = flag.Duration("session-ttl", server.DefaultSessionTTL, "evict sessions idle longer than this")
		maxSess    = flag.Int("max-sessions", server.DefaultMaxSessions, "maximum number of live sessions")
		journalP   = flag.String("journal", "", "path to the workspace event journal (enables durable multi-annotator workspaces with crash recovery)")
		journalSes = flag.Bool("journal-sessions", false, "also journal plain (non-workspace) sessions to \"<-journal path>.sessions\" so they survive restarts (requires -journal)")
		jobsDir    = flag.String("jobs-dir", "", "directory for async labeling jobs: job journal plus labeled JSONL outputs (empty disables /v2 labeling jobs)")
		jobWorkers = flag.Int("job-workers", 2, "concurrent labeling-job workers")
		jobTTL     = flag.Duration("job-ttl", time.Hour, "evict finished labeling jobs (and their outputs) this long after completion")
		wsTTL      = flag.Duration("workspace-ttl", workspace.DefaultTTL, "evict workspaces idle longer than this")
		maxWS      = flag.Int("max-workspaces", workspace.DefaultMaxWorkspaces, "maximum number of live workspaces")
		compactN   = flag.Int("compact-every", workspace.DefaultCompactEvery, "compact the journal after this many appends (negative disables)")
		attachTTL  = flag.Duration("attachment-ttl", 0, "detach workspace annotators idle longer than this, journaled (0 disables; the workspace itself lives until -workspace-ttl)")
		replSync   = flag.Bool("repl-sync", true, "when this shard streams its journal to a replication follower, gate answer acknowledgements on the follower's ack (degrades to async if the follower is down)")
		replSyncTO = flag.Duration("repl-sync-timeout", 2*time.Second, "how long a synchronously replicated append waits for the follower before degrading to async")
		token      = flag.String("token", "", "require 'Authorization: Bearer <token>' on /v1/* endpoints")
		rateLimit  = flag.Float64("rate-limit", 0, "per-IP request rate limit in requests/second (0 disables)")
		rateBurst  = flag.Int("rate-burst", 0, "per-IP burst size (default 2x -rate-limit)")
		featCap    = flag.Int("feature-cache-cap", 0, "cap the per-engine sparse feature cache to this many sentences (0 caches the whole corpus; ~0.5 KB/entry)")
		accessLog  = flag.Bool("access-log", true, "emit one structured (JSON) log line per request, carrying the request id")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (unauthenticated; bind accordingly)")
	)
	flag.Parse()

	var sets []*server.Dataset
	for _, name := range splitList(*datasets) {
		c, err := datagen.ByName(name, *scale, *seed)
		if err != nil {
			fatalf("dataset %q: %v", name, err)
		}
		sets = append(sets, buildDataset(name, c, *seed, *budget, *candidates, *sketchD, *featCap, *useTree))
	}
	if *corpusPath != "" {
		c, err := corpus.LoadJSONL(*corpusPath)
		if err != nil {
			fatalf("load corpus %s: %v", *corpusPath, err)
		}
		name := c.Name
		if name == "" {
			name = strings.TrimSuffix(*corpusPath, ".jsonl")
		}
		sets = append(sets, buildDataset(name, c, *seed, *budget, *candidates, *sketchD, *featCap, *useTree))
	}

	var logger *slog.Logger
	if *accessLog {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv, err := server.New(server.Config{
		SessionTTL:             *ttl,
		MaxSessions:            *maxSess,
		DefaultBudget:          *budget,
		JournalPath:            *journalP,
		JournalSessions:        *journalSes,
		JobsDir:                *jobsDir,
		JobWorkers:             *jobWorkers,
		JobTTL:                 *jobTTL,
		WorkspaceTTL:           *wsTTL,
		MaxWorkspaces:          *maxWS,
		CompactEvery:           *compactN,
		AttachmentTTL:          *attachTTL,
		ReplicationSync:        *replSync,
		ReplicationSyncTimeout: *replSyncTO,
		Token:                  *token,
		RatePerSec:             *rateLimit,
		RateBurst:              *rateBurst,
		Daemon:                 "darwind",
		AccessLog:              logger,
	}, sets...)
	if err != nil {
		fatalf("%v", err)
	}
	if rec := srv.Recovery(); rec.Events > 0 {
		log.Printf("journal %s: replayed %d events, recovered %d workspaces (%d skipped)",
			*journalP, rec.Events, rec.Workspaces, len(rec.Skipped))
		for id, reason := range rec.Skipped {
			log.Printf("journal: workspace %s not recovered: %s", id, reason)
		}
	}

	stop := make(chan struct{})
	go srv.Store().Janitor(time.Minute, stop)
	go srv.Workspaces().Janitor(time.Minute, stop)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	var handler http.Handler = srv
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", srv)
		handler = outer
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down")
		close(stop)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	log.Printf("darwind listening on %s (datasets: %s)", ln.Addr(), strings.Join(srv.DatasetNames(), ", "))
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	// Drained: flush and close the workspace journal so every acknowledged
	// event is fsync-durable before exit.
	if err := srv.Close(); err != nil && *journalP != "" {
		log.Printf("journal close: %v", err)
	}
}

// buildDataset preprocesses the corpus and builds the shared engine, logging
// the one-time cost that every session then amortizes.
func buildDataset(name string, c *corpus.Corpus, seed int64, budget, candidates, sketchDepth, featCacheCap int, useTree bool) *server.Dataset {
	grams := []grammar.Grammar{tokensregex.New()}
	if useTree {
		grams = append(grams, treematch.New())
	}
	cfg := core.DefaultConfig()
	cfg.Grammars = grams
	cfg.Budget = budget
	cfg.NumCandidates = candidates
	cfg.SketchDepth = sketchDepth
	cfg.Seed = seed
	cfg.FeatureCacheCap = featCacheCap
	cfg.Classifier = classifier.Config{Epochs: 10, LearningRate: 0.3, L2: 1e-4, Seed: seed}
	cfg.Embedding = embedding.Config{Dim: 32, Window: 4, MinCount: 2, Seed: seed}

	start := time.Now()
	engine, err := core.New(c, cfg)
	if err != nil {
		fatalf("build engine for %q: %v", name, err)
	}
	log.Printf("dataset %q ready: %s (engine built in %v)", name, c, time.Since(start).Round(time.Millisecond))
	return &server.Dataset{Name: name, Engine: engine}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(strings.ToLower(part)); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "darwind: "+format+"\n", args...)
	os.Exit(1)
}
