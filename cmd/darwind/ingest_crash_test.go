package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestIngestCrashRecoverySIGKILL kills a real darwind with SIGKILL in the
// middle of an ingest storm and restarts it on the same journal. The
// durable-before-2xx contract says every acknowledged batch must survive;
// batches whose response was lost may or may not have landed, but never
// partially — the corpus length is always a whole number of batches. The
// acknowledged annotation answers from before the storm must survive too.
func TestIngestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the darwind binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "darwind")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	journal := filepath.Join(dir, "journal.jsonl")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-datasets", "directions",
		"-scale", "0.05",
		"-seed", "7",
		"-budget", "100",
		"-candidates", "400",
		"-sketch-depth", "4",
		"-journal", journal,
	}
	listenRE := regexp.MustCompile(`listening on ([0-9.:]+)`)
	start := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
				}
			}
		}()
		select {
		case addr := <-addrCh:
			return cmd, addr
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			t.Fatal("darwind did not start listening")
			return nil, ""
		}
	}
	do := func(addr, method, path string, body, out any) int {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			b, _ := json.Marshal(body)
			rd = bytes.NewReader(b)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, "http://"+addr+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}

	const batchSize = 100
	type ingestResult struct {
		From      int `json:"from"`
		Ingested  int `json:"ingested"`
		CorpusLen int `json:"corpus_len"`
	}
	ingest := func(addr string, tag string) (ingestResult, bool) {
		var sb strings.Builder
		for i := 0; i < batchSize; i++ {
			fmt.Fprintf(&sb, `{"text":"best way to get to %s stop %d","label":1}`+"\n", tag, i)
		}
		resp, err := http.Post("http://"+addr+"/v2/datasets/directions/sentences",
			"application/x-ndjson", strings.NewReader(sb.String()))
		if err != nil {
			return ingestResult{}, false // connection died mid-kill: unacknowledged
		}
		defer resp.Body.Close()
		var res ingestResult
		json.NewDecoder(resp.Body).Decode(&res)
		return res, resp.StatusCode == http.StatusOK
	}

	proc1, addr := start()
	defer proc1.Process.Kill()

	// Annotation before the storm: a workspace whose acknowledged answers
	// must survive the crash byte-for-byte.
	var created struct {
		ID string `json:"id"`
	}
	if status := do(addr, "POST", "/v1/workspaces", map[string]any{
		"dataset":    "directions",
		"seed_rules": []string{"best way to get to"},
		"budget":     40,
		"seed":       3,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create workspace: status %d", status)
	}
	base := "/v1/workspaces/" + created.ID
	if status := do(addr, "POST", base+"/annotators", map[string]string{"annotator": "alice"}, nil); status != http.StatusCreated {
		t.Fatalf("attach alice: status %d", status)
	}
	for q := 0; q < 8; q++ {
		var sug struct {
			Done bool   `json:"done"`
			Key  string `json:"key"`
		}
		if status := do(addr, "GET", base+"/suggest?annotator=alice", nil, &sug); status != http.StatusOK {
			t.Fatalf("suggest: status %d", status)
		}
		if sug.Done {
			break
		}
		if status := do(addr, "POST", base+"/answer", map[string]any{
			"annotator": "alice", "key": sug.Key, "accept": q%3 == 0,
		}, nil); status != http.StatusOK {
			t.Fatalf("answer: status %d", status)
		}
	}
	var before any
	if status := do(addr, "GET", base+"/report", nil, &before); status != http.StatusOK {
		t.Fatalf("report: status %d", status)
	}

	// First batch pins the boot corpus length.
	first, ok := ingest(addr, "warmup")
	if !ok {
		t.Fatal("warmup ingest failed")
	}
	boot := first.From

	// Ingest storm with a concurrent SIGKILL: the killer fires from another
	// goroutine mid-storm, so the final POST is very likely in flight — the
	// exact scenario the durability contract is about.
	acked := first.CorpusLen
	killed := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		proc1.Process.Kill()
		close(killed)
	}()
	for i := 0; ; i++ {
		res, ok := ingest(addr, fmt.Sprintf("storm%d", i))
		if !ok {
			break
		}
		if res.From != acked {
			t.Errorf("batch %d acknowledged at %d, want %d (lost or reordered batch)", i, res.From, acked)
		}
		acked = res.CorpusLen
	}
	<-killed
	proc1.Wait()
	if acked == first.CorpusLen {
		t.Log("note: kill landed before any storm batch was acknowledged")
	}

	proc2, addr2 := start()
	defer func() {
		proc2.Process.Kill()
		proc2.Wait()
	}()

	// The probe batch reveals the recovered corpus length via From.
	probe, ok := ingest(addr2, "probe")
	if !ok {
		t.Fatal("probe ingest after restart failed")
	}
	if probe.From < acked {
		t.Fatalf("recovered corpus has %d sentences but %d were acknowledged: an acknowledged batch was lost", probe.From, acked)
	}
	if (probe.From-boot)%batchSize != 0 {
		t.Fatalf("recovered corpus length %d is not a whole number of %d-sentence batches past boot %d: torn batch", probe.From, batchSize, boot)
	}

	// Acknowledged answers from before the storm survive byte-for-byte.
	var after any
	if status := do(addr2, "GET", base+"/report", nil, &after); status != http.StatusOK {
		t.Fatalf("report after restart: status %d", status)
	}
	if !reflect.DeepEqual(before, after) {
		b1, _ := json.MarshalIndent(before, "", " ")
		b2, _ := json.MarshalIndent(after, "", " ")
		t.Fatalf("report changed across SIGKILL+restart:\nbefore: %s\nafter:  %s", b1, b2)
	}
	// And the workspace keeps serving over the recovered, grown corpus.
	var sug struct {
		Done bool   `json:"done"`
		Key  string `json:"key"`
	}
	if status := do(addr2, "GET", base+"/suggest?annotator=alice", nil, &sug); status != http.StatusOK {
		t.Fatalf("post-recovery suggest: status %d", status)
	}
	if !sug.Done && sug.Key == "" {
		t.Fatal("post-recovery suggestion is empty")
	}
}
