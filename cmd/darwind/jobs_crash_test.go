package main

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"repro/internal/autolabel"
	"repro/pkg/darwin"
)

// TestLabelingJobCrashRecoverySIGKILL is the end-to-end durability test for
// the async labeling-job subsystem: a real darwind process is SIGKILLed while
// a job is mid-run (no shutdown hook, the journal has the create record but
// no terminal record), restarted with the same -jobs-dir, and must re-run the
// job under its original id to output bytes identical to a fresh job of the
// same spec — the pipeline is a pure function of (corpus, spec).
func TestLabelingJobCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the darwind binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "darwind")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	jobsDir := filepath.Join(dir, "jobs")

	// Identical flags across runs: the corpus must rebuild identically for
	// the re-run to be byte-deterministic.
	args := []string{
		"-addr", "127.0.0.1:0",
		"-datasets", "directions",
		"-scale", "0.2",
		"-seed", "7",
		"-candidates", "400",
		"-sketch-depth", "4",
		"-jobs-dir", jobsDir,
		"-job-workers", "1",
	}
	listenRE := regexp.MustCompile(`listening on ([0-9.:]+)`)
	start := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
					addrCh <- m[1]
				}
			}
		}()
		select {
		case addr := <-addrCh:
			return cmd, addr
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			t.Fatal("darwind did not start listening")
			return nil, ""
		}
	}

	// An extreme EM iteration count stretches the aggregate stage to seconds,
	// so the SIGKILL reliably lands mid-job. The count only affects runtime,
	// not determinism: the re-run uses the same journaled spec.
	spec := autolabel.Spec{
		Rules:        []string{"best way to get to", "how do i get", "'bus'"},
		Aggregator:   autolabel.AggregatorGenerative,
		EMIterations: 200000,
		IncludeProb:  true,
	}
	ctx := context.Background()

	proc1, addr := start()
	defer proc1.Process.Kill()
	client := darwin.NewClient("http://"+addr, "")

	st, err := client.CreateLabelingJob(ctx, "directions", spec)
	if err != nil {
		t.Fatal(err)
	}
	jobID := st.ID

	// Wait until the job is actually running (the create record is durable
	// the moment the create returned), then kill -9.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err = client.LabelingJob(ctx, "directions", jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == autolabel.StateRunning {
			break
		}
		if st.State == autolabel.StateDone || st.State == autolabel.StateFailed {
			t.Fatalf("job reached %s before the kill; raise EMIterations", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if err := proc1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc1.Wait()
	if fi, err := os.Stat(filepath.Join(jobsDir, "jobs.log")); err != nil || fi.Size() == 0 {
		t.Fatalf("job journal missing or empty after kill: %v", err)
	}

	proc2, addr2 := start()
	defer func() {
		proc2.Process.Kill()
		proc2.Wait()
	}()
	client2 := darwin.NewClient("http://"+addr2, "")

	// The interrupted job re-runs under its original id and completes.
	recovered, err := client2.WaitLabelingJob(ctx, "directions", jobID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("recovered job: %v", err)
	}
	if recovered.State != autolabel.StateDone {
		t.Fatalf("recovered job ended %s: %s", recovered.State, recovered.Error)
	}
	var recoveredOut bytes.Buffer
	if err := client2.LabelingJobOutput(ctx, "directions", jobID, 0, &recoveredOut); err != nil {
		t.Fatal(err)
	}

	// A fresh job of the same spec on the restarted server must produce the
	// exact same bytes.
	fresh, err := client2.CreateLabelingJob(ctx, "directions", spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh, err = client2.WaitLabelingJob(ctx, "directions", fresh.ID, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fresh.State != autolabel.StateDone {
		t.Fatalf("fresh job ended %s: %s", fresh.State, fresh.Error)
	}
	var freshOut bytes.Buffer
	if err := client2.LabelingJobOutput(ctx, "directions", fresh.ID, 0, &freshOut); err != nil {
		t.Fatal(err)
	}
	if recovered.OutputBytes != fresh.OutputBytes || recovered.Covered != fresh.Covered || recovered.Positives != fresh.Positives {
		t.Errorf("recovered job status %+v != fresh job status %+v", recovered, fresh)
	}
	if !bytes.Equal(recoveredOut.Bytes(), freshOut.Bytes()) {
		t.Fatalf("recovered output (%d bytes) differs from a fresh run of the same spec (%d bytes)",
			recoveredOut.Len(), freshOut.Len())
	}
}
