package replicate

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/workspace"
)

// DefaultSyncTimeout bounds how long an acknowledged write waits for the
// follower ack before degrading to async replication.
const DefaultSyncTimeout = 2 * time.Second

// NodeOptions wires a replication node into a darwind shard.
type NodeOptions struct {
	// Manager is the live workspace manager; Journal its live journal.
	Manager *workspace.Manager
	Journal *journal.Writer
	// Engines is the dataset → engine table the standbys replay against.
	Engines map[string]*core.Engine
	// JournalPath is the live journal's path; standby journals live next to
	// it as <path>.standby.<dataset>.
	JournalPath string
	// Sync blocks acknowledged state changes until the follower acks them
	// (bounded by SyncTimeout, default DefaultSyncTimeout).
	Sync        bool
	SyncTimeout time.Duration
	// HTTPClient is used for the outbound replication stream.
	HTTPClient *http.Client
	Logf       func(format string, args ...any)
	// LabelersFor maps live workspace IDs to the labeler IDs the serving
	// layer derives for their attachments (status + promote responses, so
	// the router can re-home handles).
	LabelersFor func(wsIDs []string) []string
	// AdoptLabelers registers serving-layer labelers for freshly adopted
	// workspaces after a promotion and returns their IDs.
	AdoptLabelers func(wsIDs []string) []string
	// DropLabelers unregisters the labelers of evicted workspaces after a
	// demotion.
	DropLabelers func(wsIDs []string)
}

// Node is one shard's replication endpoint state: the tap (when primary for
// a dataset), the receiver (when follower), and the router-pushed role
// table. Role pushes are idempotent, so the router can reconcile blindly.
type Node struct {
	opts NodeOptions
	tap  *Tap
	recv *Receiver

	mu    sync.Mutex
	roles map[string]RoleDoc
}

// StandbyPath derives the standby journal path for a dataset from the live
// journal path. Dataset names are flag-supplied identifiers, but escape
// path separators anyway.
func StandbyPath(journalPath, dataset string) string {
	safe := strings.NewReplacer("/", "_", "\\", "_").Replace(dataset)
	return journalPath + ".standby." + safe
}

// NewNode builds a replication node, recovers on-disk standbys, and — when
// sync replication is on — installs the manager barrier that makes
// "acknowledged" mean "replicated".
func NewNode(opts NodeOptions) *Node {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = DefaultSyncTimeout
	}
	n := &Node{
		opts:  opts,
		tap:   NewTap(opts.Journal, opts.HTTPClient, opts.Logf),
		roles: make(map[string]RoleDoc),
	}
	n.recv = NewReceiver(opts.Engines, func(ds string) string {
		return StandbyPath(opts.JournalPath, ds)
	}, opts.Logf)
	if opts.Sync {
		opts.Manager.SetBarrier(n.barrier)
	}
	return n
}

// barrier is the sync-replication hook: after a state change is journaled
// and acknowledged locally, wait (bounded) for the dataset's follower to
// ack the current journal watermark. Waiting on Seq() rather than the exact
// event sequence is conservative — it can only wait longer, never release
// earlier than the event's own ack.
func (n *Node) barrier(dataset string) {
	n.tap.WaitAcked(dataset, n.opts.Manager.Seq(), n.opts.SyncTimeout)
}

// Close stops streaming and closes standbys (keeping them warm on disk).
func (n *Node) Close() {
	n.opts.Manager.SetBarrier(nil)
	n.tap.Close()
	n.recv.Close()
}

// SetRole applies a router-pushed role assignment.
func (n *Node) SetRole(doc RoleDoc) error {
	if doc.Dataset == "" {
		return fmt.Errorf("replicate: role without a dataset")
	}
	if _, ok := n.opts.Engines[doc.Dataset]; !ok {
		return fmt.Errorf("replicate: dataset %q is not served here", doc.Dataset)
	}
	switch doc.Role {
	case RolePrimary:
		if doc.Epoch == 0 {
			return fmt.Errorf("replicate: primary role for %q without an epoch", doc.Dataset)
		}
		// Fence below our own epoch: any still-streaming older primary is a
		// zombie from a failover we won.
		if err := n.opts.Manager.Fence(doc.Dataset, doc.Epoch); err != nil {
			return err
		}
		if doc.Follower != nil && doc.Follower.URL != "" {
			n.tap.Assign(doc.Dataset, doc.Epoch, *doc.Follower)
		} else {
			n.tap.Unassign(doc.Dataset)
		}
	case RoleFollower:
		if doc.Epoch == 0 {
			return fmt.Errorf("replicate: follower role for %q without an epoch", doc.Dataset)
		}
		n.tap.Unassign(doc.Dataset)
		if err := n.opts.Manager.Fence(doc.Dataset, doc.Epoch); err != nil {
			return err
		}
		// Demotion: whatever this shard was serving live for the dataset now
		// lives on the promoted primary; a fenced ex-primary must stop
		// serving it. Idempotent — a shard that was never primary has
		// nothing to evict.
		if evicted := n.opts.Manager.EvictDataset(doc.Dataset, "demoted to replication follower"); len(evicted) > 0 {
			n.opts.Logf("replicate: demoted for %s at epoch %d; evicted %d live workspaces", doc.Dataset, doc.Epoch, len(evicted))
			if n.opts.DropLabelers != nil {
				n.opts.DropLabelers(evicted)
			}
		}
	case RoleNone:
		n.tap.Unassign(doc.Dataset)
		n.recv.Drop(doc.Dataset)
	default:
		return fmt.Errorf("replicate: unknown role %q", doc.Role)
	}
	n.mu.Lock()
	n.roles[doc.Dataset] = doc
	n.mu.Unlock()
	return nil
}

// ReceiveBatch applies one inbound replication batch against the dataset's
// durable fence.
func (n *Node) ReceiveBatch(dataset string, b Batch) (BatchAck, error) {
	fence := n.opts.Manager.Fences()[dataset]
	return n.recv.Apply(dataset, b, fence)
}

// Promote makes this shard the dataset's primary at the given epoch: fence
// first (durably, so the old primary's late batches are rejected even after
// a restart), then adopt the warm standby into the live manager and
// re-register its labelers. Returns what came live so the router can
// re-home existing handles.
func (n *Node) Promote(req PromoteRequest) (PromoteResponse, error) {
	if req.Dataset == "" || req.Epoch == 0 {
		return PromoteResponse{}, fmt.Errorf("replicate: promote needs a dataset and an epoch")
	}
	if _, ok := n.opts.Engines[req.Dataset]; !ok {
		return PromoteResponse{}, fmt.Errorf("replicate: dataset %q is not served here", req.Dataset)
	}
	if fence := n.opts.Manager.Fences()[req.Dataset]; req.Epoch < fence {
		return PromoteResponse{}, fmt.Errorf("%w: promote epoch %d is below fence %d", ErrFenced, req.Epoch, fence)
	}
	if err := n.opts.Manager.Fence(req.Dataset, req.Epoch); err != nil {
		return PromoteResponse{}, fmt.Errorf("replicate: fence for promote: %w", err)
	}
	resp := PromoteResponse{Dataset: req.Dataset, Epoch: req.Epoch}
	specs, snaps, upto, cleanup, ok := n.recv.TakeStandby(req.Dataset)
	if !ok {
		// Nothing replicated here (a cold promote): become primary serving
		// an empty dataset rather than leaving it down, and say so loudly.
		n.opts.Logf("replicate: promoting %s at epoch %d WITHOUT a warm standby: prior state is lost", req.Dataset, req.Epoch)
	} else {
		adopted, err := n.adoptStandby(req.Dataset, specs, snaps)
		if err != nil {
			cleanup(false) // keep the on-disk standby recoverable
			return PromoteResponse{}, err
		}
		cleanup(true)
		resp.Workspaces = adopted
		if n.opts.AdoptLabelers != nil {
			resp.Labelers = n.opts.AdoptLabelers(adopted)
		}
		n.opts.Logf("replicate: promoted %s at epoch %d: %d workspaces adopted (standby upto %d)",
			req.Dataset, req.Epoch, len(adopted), upto)
	}
	n.mu.Lock()
	n.roles[req.Dataset] = RoleDoc{Dataset: req.Dataset, Epoch: req.Epoch, Role: RolePrimary}
	n.mu.Unlock()
	replPromotions.Inc()
	return resp, nil
}

// adoptStandby moves standby state into the live manager: evict whatever
// stale live state this shard still holds for the dataset, replay the
// primary's rule materializations, install every snapshot, and force the
// live journal to disk before the standby copy may be truncated.
func (n *Node) adoptStandby(dataset string, specs []string, snaps []*workspace.Snapshot) ([]string, error) {
	m := n.opts.Manager
	if evicted := m.EvictDataset(dataset, "superseded by promoted standby"); len(evicted) > 0 {
		n.opts.Logf("replicate: promote %s: evicted %d stale live workspaces", dataset, len(evicted))
		if n.opts.DropLabelers != nil {
			n.opts.DropLabelers(evicted)
		}
	}
	if err := m.AdoptMaterialized(dataset, specs); err != nil {
		return nil, err
	}
	adopted := make([]string, 0, len(snaps))
	for _, snap := range snaps {
		if err := m.AdoptSnapshot(snap); err != nil {
			return nil, fmt.Errorf("replicate: adopt workspace %s: %w", snap.ID, err)
		}
		adopted = append(adopted, snap.ID)
	}
	if err := m.Sync(); err != nil {
		return nil, fmt.Errorf("replicate: sync live journal after adoption: %w", err)
	}
	sort.Strings(adopted)
	return adopted, nil
}

// Status assembles the shard's replication state for the router's
// reconciliation loop.
func (n *Node) Status() Status {
	n.mu.Lock()
	roles := make(map[string]RoleDoc, len(n.roles))
	for ds, doc := range n.roles {
		roles[ds] = doc
	}
	n.mu.Unlock()

	fences := n.opts.Manager.Fences()
	seen := make(map[string]bool)
	var names []string
	for ds := range roles {
		if !seen[ds] {
			seen[ds] = true
			names = append(names, ds)
		}
	}
	for _, ds := range n.recv.Datasets() {
		if !seen[ds] {
			seen[ds] = true
			names = append(names, ds)
		}
	}
	for ds := range fences {
		if !seen[ds] {
			seen[ds] = true
			names = append(names, ds)
		}
	}
	sort.Strings(names)

	out := Status{Fences: fences}
	for _, ds := range names {
		d := DatasetStatus{Dataset: ds, Role: RoleNone}
		if doc, ok := roles[ds]; ok {
			d.Role = doc.Role
			d.Epoch = doc.Epoch
		} else if fences[ds] > 0 && len(n.opts.Manager.IDsByDataset(ds)) > 0 {
			// No router-pushed role yet (this process restarted), but the
			// journal recovered live workspaces behind a fence: this shard
			// served the dataset at that epoch before the restart. Claiming
			// primary@fence here is what lets a restarted router rebuild its
			// placement (and re-home) tables from shard state alone.
			d.Role = RolePrimary
			d.Epoch = fences[ds]
		}
		if follower, epoch, acked, healthy, ok := n.tap.streamStatus(ds); ok {
			d.Follower = follower
			d.Epoch = epoch
			d.AckedUpto = acked
			d.Healthy = healthy
			if seq := n.opts.Manager.Seq(); seq > acked {
				d.Lag = seq - acked
			}
		}
		if epoch, upto, wsCount, ok := n.recv.StatusFor(ds); ok {
			if d.Role == RoleNone {
				d.Role = RoleFollower
			}
			if epoch > d.Epoch {
				d.Epoch = epoch
			}
			d.StandbyUpto = upto
			d.StandbyWorkspaces = wsCount
		}
		if d.Role == RolePrimary {
			d.Workspaces = n.opts.Manager.IDsByDataset(ds)
			if n.opts.LabelersFor != nil {
				d.Labelers = n.opts.LabelersFor(d.Workspaces)
			}
		}
		out.Datasets = append(out.Datasets, d)
	}
	return out
}
