// Integration tests for the replication pipeline, driven through two real
// server instances (httptest) the way the router drives real shards. They
// live in an external test package because internal/server links replicate
// back in.
package replicate_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/faultinject"
	"repro/internal/grammar"
	"repro/internal/replicate"
	"repro/internal/server"
	"repro/internal/tokensregex"
	"repro/pkg/darwin"
)

var (
	engineOnce sync.Once
	testEngine *core.Engine
)

// sharedEngine builds the deterministic test engine once per binary; engines
// are read-only, so every test server (primary, follower, restarted primary)
// shares it — exactly how two real shards built from identical flags relate.
func sharedEngine(t testing.TB) *core.Engine {
	t.Helper()
	engineOnce.Do(func() {
		c, err := datagen.ByName("directions", 0.05, 7)
		if err != nil {
			panic(err)
		}
		cfg := core.Config{
			Grammars:        []grammar.Grammar{tokensregex.New()},
			SketchDepth:     4,
			MaxRuleDepth:    6,
			NumCandidates:   400,
			MinRuleCoverage: 2,
			Budget:          100,
			Traversal:       "hybrid",
			Tau:             5,
			Classifier:      classifier.Config{Epochs: 8, LearningRate: 0.3, Seed: 1},
			ClassifierKind:  classifier.KindLogReg,
			Embedding:       embedding.Config{Dim: 24, Window: 3, MinCount: 2, Seed: 1},
			Seed:            1,
		}
		testEngine, err = core.New(c, cfg)
		if err != nil {
			panic(err)
		}
	})
	return testEngine
}

// testShard is one in-process darwind: a journaled server behind httptest.
type testShard struct {
	srv  *server.Server
	http *httptest.Server
	ctl  *replicate.Control
	sdk  *darwin.Client
}

func newTestShard(t testing.TB, journalPath string) *testShard {
	t.Helper()
	srv, err := server.New(server.Config{
		JournalPath:            journalPath,
		DefaultBudget:          100,
		ReplicationSync:        true,
		ReplicationSyncTimeout: time.Second,
	}, &server.Dataset{Name: "directions", Engine: sharedEngine(t)})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	sh := &testShard{
		srv:  srv,
		http: hs,
		ctl:  replicate.NewControl(hs.URL, "", nil),
		sdk:  darwin.NewClient(hs.URL, ""),
	}
	t.Cleanup(func() { sh.stop() })
	return sh
}

// stop shuts the shard down cleanly (flushes the journal). Idempotent.
func (sh *testShard) stop() {
	if sh.http != nil {
		sh.http.Close()
		sh.http = nil
		sh.srv.Close()
	}
}

// waitCaughtUp polls the primary's replication status until the dataset's
// stream is healthy with zero lag.
func waitCaughtUp(t *testing.T, ctl *replicate.Control, dataset string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last replicate.Status
	for time.Now().Before(deadline) {
		st, err := ctl.Status(context.Background())
		if err == nil {
			last = st
			for _, d := range st.Datasets {
				if d.Dataset == dataset && d.Healthy && d.Lag == 0 && d.AckedUpto > 0 {
					return
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("follower never caught up; last status: %+v", last)
}

// export fetches a labeler's full transcript bytes.
func export(t *testing.T, c *darwin.Client, id string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.OpenLabeler(id).Export(context.Background(), &buf); err != nil {
		t.Fatalf("export %s: %v", id, err)
	}
	return buf.Bytes()
}

// chaosSeed lets CI pin the property test's randomness (CHAOS_SEED=n); a
// failing run replays from the seed in its failure message.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		return n
	}
	return 1753
}

// TestReplicationCatchUpProperty is the catch-up property test: a random
// annotation workload interleaved with random partitions of the replication
// link must still leave the follower convergent — after the link heals and
// lag drains, promoting the standby yields byte-identical transcripts for
// every labeler the primary served.
func TestReplicationCatchUpProperty(t *testing.T) {
	seed := chaosSeed(t)
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d (set CHAOS_SEED to replay)", seed)

	dir := t.TempDir()
	primary := newTestShard(t, filepath.Join(dir, "primary.jsonl"))
	follower := newTestShard(t, filepath.Join(dir, "follower.jsonl"))

	// The replication link runs through a partitionable proxy.
	proxy, err := faultinject.NewProxy("127.0.0.1:0", follower.http.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	ctx := context.Background()
	if err := follower.ctl.SetRole(ctx, replicate.RoleDoc{Dataset: "directions", Epoch: 1, Role: replicate.RoleFollower}); err != nil {
		t.Fatal(err)
	}
	if err := primary.ctl.SetRole(ctx, replicate.RoleDoc{
		Dataset: "directions", Epoch: 1, Role: replicate.RolePrimary,
		Follower: &replicate.FollowerSpec{Name: "beta", URL: proxy.URL()},
	}); err != nil {
		t.Fatal(err)
	}

	// Random workload: a few workspace labelers, randomly interleaved
	// suggest/answer steps, with partition/heal cycles at random points.
	var labs []*darwin.RemoteLabeler
	for i := 0; i < 3; i++ {
		lab, err := primary.sdk.NewLabeler(ctx, darwin.CreateOptions{
			Dataset: "directions", Mode: darwin.ModeWorkspace,
			Annotator: fmt.Sprintf("annotator-%d", i),
			SeedRules: []string{"best way to get to"}, Budget: 60, Seed: seed + int64(i),
		})
		if err != nil {
			t.Fatalf("create labeler %d: %v", i, err)
		}
		labs = append(labs, lab)
	}
	partitioned := false
	steps := 24 + rng.Intn(12)
	for step := 0; step < steps; step++ {
		if rng.Float64() < 0.15 {
			if partitioned {
				proxy.Heal()
			} else {
				proxy.Partition()
			}
			partitioned = !partitioned
		}
		lab := labs[rng.Intn(len(labs))]
		sug, err := lab.Suggest(ctx)
		if err != nil {
			if errors.Is(err, darwin.ErrConflict) || errors.Is(err, darwin.ErrBudgetExhausted) {
				continue
			}
			t.Fatalf("step %d suggest: %v", step, err)
		}
		// Every Answer that returns nil below is an acknowledged verdict; the
		// convergence check at the end proves none of them is lost.
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: rng.Intn(2) == 0}); err != nil {
			t.Fatalf("step %d answer: %v", step, err)
		}
	}
	proxy.Heal()

	waitCaughtUp(t, primary.ctl, "directions")

	resp, err := follower.ctl.Promote(ctx, "directions", 2)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if len(resp.Workspaces) != 3 || len(resp.Labelers) != 3 {
		t.Fatalf("promotion adopted %d workspaces / %d labelers, want 3/3 (%+v)", len(resp.Workspaces), len(resp.Labelers), resp)
	}
	for _, lab := range labs {
		want := export(t, primary.sdk, lab.ID())
		got := export(t, follower.sdk, lab.ID())
		if !bytes.Equal(want, got) {
			t.Errorf("labeler %s: promoted transcript diverged from primary (%d vs %d bytes)", lab.ID(), len(want), len(got))
		}
	}

	// The fence holds: the old primary's stream (still at epoch 1) is now a
	// zombie and its batches must be rejected.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := follower.ctl.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Fences["directions"] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower fence never reached epoch 2: %+v", st.Fences)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, err = follower.ctl.SendEvents(ctx, "directions", replicate.Batch{Epoch: 1, Gen: 1, Reset: true, From: 0, Upto: 1})
	if !errors.Is(err, replicate.ErrFenced) {
		t.Fatalf("zombie batch at epoch 1: err=%v, want ErrFenced", err)
	}
}

// TestReplicationTornTailDuringStream crashes the primary mid-append — its
// journal is left with a torn tail — and restarts it against the same
// journal while the follower stream session restarts. The torn record was
// never acknowledged, so the repaired journal plus the stream's full resync
// must still converge the follower to the primary's exact state.
func TestReplicationTornTailDuringStream(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "primary.jsonl")
	primary := newTestShard(t, journalPath)
	follower := newTestShard(t, filepath.Join(dir, "follower.jsonl"))

	ctx := context.Background()
	assign := func(p *testShard) {
		t.Helper()
		if err := follower.ctl.SetRole(ctx, replicate.RoleDoc{Dataset: "directions", Epoch: 1, Role: replicate.RoleFollower}); err != nil {
			t.Fatal(err)
		}
		if err := p.ctl.SetRole(ctx, replicate.RoleDoc{
			Dataset: "directions", Epoch: 1, Role: replicate.RolePrimary,
			Follower: &replicate.FollowerSpec{Name: "beta", URL: follower.http.URL},
		}); err != nil {
			t.Fatal(err)
		}
	}
	assign(primary)

	lab, err := primary.sdk.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{"best way to get to"}, Budget: 60, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sug, err := lab.Suggest(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: stop the primary, then forge the crash artifact — a torn,
	// unacknowledged record at the journal tail.
	primary.stop()
	f, err := os.OpenFile(journalPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99999,"type":"answer","ws":"wtorn","data":{"acc`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := faultinject.TearTail(journalPath, 3); err != nil {
		t.Fatal(err)
	}

	// Restart from the repaired journal; the fresh stream session resyncs
	// the follower from sequence 0.
	restarted := newTestShard(t, journalPath)
	assign(restarted)
	for i := 0; i < 3; i++ {
		sug, err := lab2(restarted, lab.ID()).Suggest(ctx)
		if err != nil {
			t.Fatalf("suggest after torn-tail restart: %v", err)
		}
		if err := lab2(restarted, lab.ID()).Answer(ctx, darwin.Answer{Key: sug.Key, Accept: true}); err != nil {
			t.Fatalf("answer after torn-tail restart: %v", err)
		}
	}

	waitCaughtUp(t, restarted.ctl, "directions")
	if _, err := follower.ctl.Promote(ctx, "directions", 2); err != nil {
		t.Fatalf("promote: %v", err)
	}
	want := export(t, restarted.sdk, lab.ID())
	got := export(t, follower.sdk, lab.ID())
	if !bytes.Equal(want, got) {
		t.Fatalf("transcript diverged after torn-tail crash + resync (%d vs %d bytes)", len(want), len(got))
	}
}

// lab2 reopens a labeler id against a restarted shard.
func lab2(sh *testShard, id string) *darwin.RemoteLabeler {
	return sh.sdk.OpenLabeler(id)
}
