package replicate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/journal"
)

// replHeartbeat bounds how long a stream sits on an idle journal before it
// re-checks its context; it also paces the very first (Reset) batch of a
// session, so keep it short.
const replHeartbeat = 200 * time.Millisecond

// Tap is the primary side of replication: one streaming goroutine per
// assigned dataset, each tailing the live journal through its own
// journal.Follower and POSTing ordered batches to the dataset's follower
// shard. It also hosts the sync-replication barrier (WaitAcked) that the
// workspace manager blocks acknowledged writes on.
type Tap struct {
	source *journal.Writer
	hc     *http.Client
	logf   func(format string, args ...any)

	mu      sync.Mutex
	streams map[string]*stream
	// ackCh is closed and replaced whenever any stream's ack watermark or
	// health changes, waking WaitAcked parkers (same broadcast idiom as the
	// journal's append notify).
	ackCh chan struct{}
}

// stream is one dataset's replication session. The mutable fields at the
// bottom are guarded by Tap.mu.
type stream struct {
	dataset  string
	epoch    uint64
	follower FollowerSpec
	cancel   context.CancelFunc
	done     chan struct{}

	acked   uint64 // highest journal seq the follower has acked
	healthy bool   // last send succeeded; false releases sync waiters fast
	fenced  bool   // follower rejected our epoch: we are a zombie, stream is dead
}

// NewTap builds a tap over the shard's live journal.
func NewTap(source *journal.Writer, hc *http.Client, logf func(format string, args ...any)) *Tap {
	if hc == nil {
		hc = http.DefaultClient
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Tap{
		source:  source,
		hc:      hc,
		logf:    logf,
		streams: make(map[string]*stream),
		ackCh:   make(chan struct{}),
	}
}

func (t *Tap) broadcastLocked() {
	close(t.ackCh)
	t.ackCh = make(chan struct{})
}

// Assign starts (or restarts) streaming a dataset to the given follower at
// the given epoch. Re-assigning the identical (epoch, follower) is a no-op,
// so the router can push roles idempotently on every reconcile tick.
func (t *Tap) Assign(dataset string, epoch uint64, follower FollowerSpec) {
	t.mu.Lock()
	cur := t.streams[dataset]
	if cur != nil && cur.epoch == epoch && cur.follower == follower {
		t.mu.Unlock()
		return
	}
	delete(t.streams, dataset)
	ctx, cancel := context.WithCancel(context.Background())
	st := &stream{
		dataset:  dataset,
		epoch:    epoch,
		follower: follower,
		cancel:   cancel,
		done:     make(chan struct{}),
		healthy:  true,
	}
	t.streams[dataset] = st
	t.broadcastLocked()
	t.mu.Unlock()
	if cur != nil {
		cur.cancel()
		<-cur.done
	}
	t.logf("replicate: streaming %s to %s (%s) at epoch %d", dataset, follower.Name, follower.URL, epoch)
	go t.run(ctx, st)
}

// Unassign stops streaming a dataset and waits for its goroutine to exit.
func (t *Tap) Unassign(dataset string) {
	t.mu.Lock()
	cur := t.streams[dataset]
	delete(t.streams, dataset)
	t.broadcastLocked()
	t.mu.Unlock()
	if cur != nil {
		cur.cancel()
		<-cur.done
	}
}

// Close stops every stream.
func (t *Tap) Close() {
	t.mu.Lock()
	streams := make([]*stream, 0, len(t.streams))
	for _, st := range t.streams {
		streams = append(streams, st)
	}
	t.streams = make(map[string]*stream)
	t.broadcastLocked()
	t.mu.Unlock()
	for _, st := range streams {
		st.cancel()
		<-st.done
	}
}

// run retries stream sessions until cancelled or fenced. A clean session end
// (journal compaction) or a follower resync restarts immediately; transport
// errors back off exponentially so a dead follower is not hammered.
func (t *Tap) run(ctx context.Context, st *stream) {
	defer close(st.done)
	backoff := 250 * time.Millisecond
	for ctx.Err() == nil {
		err := t.streamOnce(ctx, st)
		switch {
		case ctx.Err() != nil:
			return
		case errors.Is(err, ErrFenced):
			// The follower has seen a higher epoch: we are the zombie side of
			// a failover. Stop for good — only a new role assignment (with a
			// new epoch) restarts replication for this dataset.
			t.mu.Lock()
			st.fenced = true
			st.healthy = false
			t.broadcastLocked()
			t.mu.Unlock()
			replFenced.Inc()
			t.logf("replicate: stream %s@%d fenced by %s; stopping", st.dataset, st.epoch, st.follower.Name)
			return
		case err == nil || errors.Is(err, ErrResync):
			replResyncs.Inc()
			backoff = 250 * time.Millisecond
		default:
			replStreamErrors.With(st.dataset).Inc()
			t.logf("replicate: stream %s -> %s: %v (retry in %v)", st.dataset, st.follower.Name, err, backoff)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
		}
	}
}

// streamOnce runs a single stream session: open with a Reset batch covering
// the journal from sequence 0, then ship every new batch as the follower
// tails the log. Returns nil when the journal is compacted (the session must
// restart so the follower rebuilds from the rewritten log), ErrFenced /
// ErrResync as signalled by the follower, or a transport error.
func (t *Tap) streamOnce(ctx context.Context, st *stream) error {
	ctl := NewControl(st.follower.URL, st.follower.Token, t.hc)
	fl := t.source.Follow()
	defer fl.Close()
	wsDS := make(map[string]string)
	var upto uint64
	first := true
	for {
		hctx, cancel := context.WithTimeout(ctx, replHeartbeat)
		evs, reset, err := fl.Next(hctx)
		cancel()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if reset {
			return nil
		}
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("tail journal: %w", err)
		}
		batch := Batch{Epoch: st.epoch, Gen: fl.Generation(), Reset: first, From: upto}
		for _, ev := range evs {
			if datasetOf(ev, wsDS) == st.dataset {
				batch.Events = append(batch.Events, ev)
			}
			upto = ev.Seq
		}
		batch.Upto = upto
		if !first && len(batch.Events) == 0 && batch.Upto == batch.From {
			continue // idle heartbeat tick, nothing to ship
		}
		ack, err := ctl.SendEvents(ctx, st.dataset, batch)
		if err != nil {
			if !errors.Is(err, ErrFenced) && !errors.Is(err, ErrResync) {
				t.mu.Lock()
				st.healthy = false
				t.broadcastLocked()
				t.mu.Unlock()
			}
			return err
		}
		replShipped.With(st.dataset).Add(uint64(len(batch.Events)))
		t.mu.Lock()
		st.healthy = true
		st.acked = ack.Upto
		t.broadcastLocked()
		t.mu.Unlock()
		if seq := t.source.Seq(); seq > ack.Upto {
			replLag.With(st.dataset).Set(float64(seq - ack.Upto))
		} else {
			replLag.With(st.dataset).Set(0)
		}
		first = false
	}
}

// datasetOf resolves which dataset a journal event belongs to: engine-scoped
// events carry it directly, create/snapshot events carry it in their payload
// (and seed the workspace→dataset map), everything else resolves through
// that map. Unresolvable events belong to no stream but still advance the
// batch watermark.
func datasetOf(ev journal.Event, wsDS map[string]string) string {
	if ev.Dataset != "" {
		return ev.Dataset
	}
	if ev.WS == "" {
		return ""
	}
	if ds, ok := wsDS[ev.WS]; ok {
		return ds
	}
	var d struct {
		Dataset string `json:"dataset"`
	}
	if json.Unmarshal(ev.Data, &d) == nil && d.Dataset != "" {
		wsDS[ev.WS] = d.Dataset
		return d.Dataset
	}
	return ""
}

// WaitAcked blocks until the dataset's follower has acked journal sequence
// seq, the stream is gone or degraded, or the timeout expires. It returns
// true when the ack arrived (the write is replicated) and false when the
// wait degraded to async — an unhealthy stream fails fast instead of making
// every acknowledged write eat the full timeout while a follower is down.
func (t *Tap) WaitAcked(dataset string, seq uint64, timeout time.Duration) bool {
	start := nowFunc()
	deadline := start.Add(timeout)
	defer func() {
		replSyncWait.Observe(nowFunc().Sub(start).Seconds())
	}()
	t.mu.Lock()
	for {
		st := t.streams[dataset]
		if st == nil {
			t.mu.Unlock()
			return true // dataset is not replicated: nothing to wait for
		}
		if st.acked >= seq {
			t.mu.Unlock()
			return true
		}
		if !st.healthy || st.fenced {
			t.mu.Unlock()
			return false
		}
		remaining := deadline.Sub(nowFunc())
		if remaining <= 0 {
			t.mu.Unlock()
			replSyncTimeouts.Inc()
			return false
		}
		ch := t.ackCh
		t.mu.Unlock()
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
		case <-timer.C:
		}
		timer.Stop()
		t.mu.Lock()
	}
}

// streamStatus reports a dataset's stream state for Status, or ok=false if
// the dataset is not assigned.
func (t *Tap) streamStatus(dataset string) (follower string, epoch, acked uint64, healthy bool, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.streams[dataset]
	if st == nil {
		return "", 0, 0, false, false
	}
	return st.follower.Name, st.epoch, st.acked, st.healthy && !st.fenced, true
}
