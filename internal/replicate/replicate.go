// Package replicate streams a darwind shard's workspace journal to a
// follower shard and applies it there to a warm standby, so the router can
// fail a dataset over instead of degrading it when its primary dies.
//
// # Design
//
// The journal (internal/journal) is already a pure, replayable event
// sequence: workspace state is a deterministic function of (engine, event
// order). Replication is therefore "ship the log, replay on the other
// side":
//
//   - The primary runs a Tap: one goroutine per assigned dataset tails the
//     live journal (journal.Follower), filters the dataset's events, and
//     POSTs them in order to the follower's replication endpoint. Every
//     batch is stamped with the stream's epoch and the journal generation.
//   - The follower runs a Receiver: per dataset it keeps a warm standby —
//     a volatile workspace.Manager fed through the same Replayer recovery
//     path used at startup — plus a standby journal on disk so the warmth
//     survives follower restarts.
//   - On promotion the standby's workspaces are adopted into the live
//     manager (journaled as snapshot events) and served immediately; the
//     dataset's fence is ratcheted to the new epoch so a zombie
//     ex-primary's late batches are rejected, durably, across restarts and
//     compactions.
//
// Epochs are owned by the router (internal/shard): it bumps the epoch on
// every promotion and pushes role assignments to both sides. Streams always
// begin with a Reset batch that rebuilds the standby from sequence 0 —
// catch-up resync after a partition heals is the same code path as a fresh
// assignment.
//
// With synchronous replication enabled (Options.Sync), the primary's
// manager barrier blocks each acknowledged state change until the follower
// has acked the event's journal sequence (or the sync timeout degrades the
// wait), which upgrades "acknowledged" to "survives primary loss".
package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
)

// Replication telemetry. Lag and standby size are per dataset; fencing and
// promotions are the failover audit trail.
var (
	replLag = obs.Default().GaugeVec("darwin_replication_lag_events",
		"Journal events appended on the primary and not yet acked by the follower, by dataset.", "dataset")
	replShipped = obs.Default().CounterVec("darwin_replication_shipped_events_total",
		"Journal events shipped to the follower, by dataset.", "dataset")
	replApplied = obs.Default().CounterVec("darwin_replication_applied_events_total",
		"Replicated events applied to the warm standby, by dataset.", "dataset")
	replStreamErrors = obs.Default().CounterVec("darwin_replication_stream_errors_total",
		"Replication stream send failures (the stream restarts with a resync), by dataset.", "dataset")
	replFenced = obs.Default().Counter("darwin_replication_fenced_batches_total",
		"Replication batches rejected because their epoch is below the dataset's fence.")
	replResyncs = obs.Default().Counter("darwin_replication_resyncs_total",
		"Full stream resyncs (fresh assignments, catch-ups after errors, and journal compactions).")
	replPromotions = obs.Default().Counter("darwin_replication_promotions_total",
		"Standby promotions performed by this shard (it became the dataset's primary).")
	replStandbyWS = obs.Default().GaugeVec("darwin_replication_standby_workspaces",
		"Workspaces held warm in the replication standby, by dataset.", "dataset")
	replSyncWait = obs.Default().Histogram("darwin_replication_sync_wait_seconds",
		"Time acknowledged state changes waited on the follower ack (sync replication).",
		obs.LatencyBuckets)
	replSyncTimeouts = obs.Default().Counter("darwin_replication_sync_timeouts_total",
		"Sync-replication barrier waits that hit the timeout and degraded to async.")
)

// Stream-protocol sentinels, carried over the wire as {"error": code}.
var (
	// ErrFenced rejects a batch whose epoch is below the dataset's fence:
	// the sender is a zombie ex-primary and must stop.
	ErrFenced = errors.New("replicate: epoch fenced")
	// ErrResync rejects a batch that does not extend the standby
	// contiguously; the sender restarts its stream from sequence 0.
	ErrResync = errors.New("replicate: resync required")
)

// FollowerSpec addresses the shard a primary streams a dataset to.
type FollowerSpec struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Token string `json:"token,omitempty"`
}

// RoleDoc is a router-pushed replication role assignment for one dataset.
type RoleDoc struct {
	Dataset string `json:"dataset"`
	// Epoch is the placement epoch the role is valid for. Fences compare
	// against it: batches below a dataset's fence are rejected.
	Epoch uint64 `json:"epoch"`
	// Role is "primary" (stream to Follower), "follower" (receive and keep
	// a warm standby) or "none" (stop participating).
	Role string `json:"role"`
	// Follower is where a primary streams to (required for role "primary").
	Follower *FollowerSpec `json:"follower,omitempty"`
}

// Role values.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
	RoleNone     = "none"
)

// Batch is one ordered slice of the primary's journal, filtered to a
// dataset. From/Upto are journal sequence numbers within generation Gen:
// Upto advances even when Events is empty (other datasets' events occupy
// those sequences), which is what lets the sync barrier release.
type Batch struct {
	Epoch uint64 `json:"epoch"`
	Gen   uint64 `json:"gen"`
	// Reset discards the standby and rebuilds from this batch on; every
	// stream session opens with one.
	Reset  bool            `json:"reset,omitempty"`
	From   uint64          `json:"from"`
	Upto   uint64          `json:"upto"`
	Events []journal.Event `json:"events,omitempty"`
}

// BatchAck acknowledges a batch: everything up to Upto is applied to the
// warm standby and appended to the follower's standby journal.
type BatchAck struct {
	Upto uint64 `json:"upto"`
}

// PromoteRequest asks a follower to serve a dataset from its standby.
type PromoteRequest struct {
	Dataset string `json:"dataset"`
	Epoch   uint64 `json:"epoch"`
}

// PromoteResponse reports what the promotion brought live, so the router
// can re-home existing "<shard>~<id>" handles onto the new primary.
type PromoteResponse struct {
	Dataset string `json:"dataset"`
	Epoch   uint64 `json:"epoch"`
	// Workspaces are the adopted workspace IDs now served by this shard.
	Workspaces []string `json:"workspaces,omitempty"`
	// Labelers are the re-derived attachment labeler IDs for those
	// workspaces (deterministic per (workspace, annotator)).
	Labelers []string `json:"labelers,omitempty"`
}

// DatasetStatus is one dataset's replication state on one shard.
type DatasetStatus struct {
	Dataset string `json:"dataset"`
	Role    string `json:"role"`
	Epoch   uint64 `json:"epoch"`
	// Primary-side stream state.
	Follower  string `json:"follower,omitempty"`
	AckedUpto uint64 `json:"acked_upto,omitempty"`
	Lag       uint64 `json:"lag,omitempty"`
	Healthy   bool   `json:"healthy,omitempty"`
	// Follower-side standby state.
	StandbyUpto       uint64 `json:"standby_upto,omitempty"`
	StandbyWorkspaces int    `json:"standby_workspaces,omitempty"`
	// Live serving state for primaries: what the router needs to rebuild
	// its re-home table after a restart.
	Workspaces []string `json:"workspaces,omitempty"`
	Labelers   []string `json:"labelers,omitempty"`
}

// Status is a shard's full replication state.
type Status struct {
	Fences   map[string]uint64 `json:"fences,omitempty"`
	Datasets []DatasetStatus   `json:"datasets,omitempty"`
}

// WireError is the replication endpoints' error envelope. Error carries the
// protocol code ("fenced", "resync") that the sending side dispatches on.
type WireError struct {
	Error   string `json:"error"`
	Message string `json:"message,omitempty"`
}

// WireFor maps a replication error to (HTTP status, envelope).
func WireFor(err error) (int, WireError) {
	switch {
	case errors.Is(err, ErrFenced):
		return http.StatusConflict, WireError{Error: "fenced", Message: err.Error()}
	case errors.Is(err, ErrResync):
		return http.StatusConflict, WireError{Error: "resync", Message: err.Error()}
	default:
		return http.StatusBadRequest, WireError{Error: "invalid", Message: err.Error()}
	}
}

// Control is the HTTP client for a shard's replication endpoints, used by
// the primary's tap (event batches) and by the router (roles, promotion,
// status reconciliation).
type Control struct {
	URL   string
	Token string
	HC    *http.Client
}

// NewControl builds a control client for the shard at url.
func NewControl(url, token string, hc *http.Client) *Control {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Control{URL: url, Token: token, HC: hc}
}

func (c *Control) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("replicate: marshal %s: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.URL+path, body)
	if err != nil {
		return fmt.Errorf("replicate: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.HC.Do(req)
	if err != nil {
		return fmt.Errorf("replicate: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return fmt.Errorf("replicate: read %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		var we WireError
		if json.Unmarshal(raw, &we) == nil {
			switch we.Error {
			case "fenced":
				return fmt.Errorf("%w: %s", ErrFenced, we.Message)
			case "resync":
				return fmt.Errorf("%w: %s", ErrResync, we.Message)
			}
		}
		return fmt.Errorf("replicate: %s %s: HTTP %d: %s", method, path, resp.StatusCode, truncate(raw, 200))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("replicate: decode %s response: %w", path, err)
		}
	}
	return nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}

// SendEvents ships one batch to the follower's replication endpoint.
func (c *Control) SendEvents(ctx context.Context, dataset string, b Batch) (BatchAck, error) {
	var ack BatchAck
	err := c.do(ctx, http.MethodPost, "/v2/replication/datasets/"+dataset+"/events", b, &ack)
	return ack, err
}

// SetRole pushes a role assignment to a shard.
func (c *Control) SetRole(ctx context.Context, doc RoleDoc) error {
	return c.do(ctx, http.MethodPut, "/v2/replication/role", doc, nil)
}

// Promote asks a shard to start serving a dataset from its warm standby.
func (c *Control) Promote(ctx context.Context, dataset string, epoch uint64) (PromoteResponse, error) {
	var out PromoteResponse
	err := c.do(ctx, http.MethodPost, "/v2/replication/promote", PromoteRequest{Dataset: dataset, Epoch: epoch}, &out)
	return out, err
}

// Status fetches a shard's replication state.
func (c *Control) Status(ctx context.Context) (Status, error) {
	var out Status
	err := c.do(ctx, http.MethodGet, "/v2/replication/status", nil, &out)
	return out, err
}

// nowFunc is stubbed in tests.
var nowFunc = time.Now
