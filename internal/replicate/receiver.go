package replicate

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/workspace"
)

// markType is the standby journal's progress record: appended after every
// applied batch, it pins the (epoch, generation, upto) watermark the standby
// state on disk is consistent with. Events after the last mark were applied
// but not yet marked when the process died, so recovery discards them — the
// primary resends from the marked watermark (or resets). The workspace
// Replayer ignores the type, so a standby journal also replays cleanly
// through the ordinary recovery path.
const markType = "repl_mark"

type markData struct {
	Epoch uint64 `json:"epoch"`
	Gen   uint64 `json:"gen"`
	Upto  uint64 `json:"upto"`
}

// Receiver is the follower side of replication: per replicated dataset it
// maintains a warm standby — a volatile workspace manager fed through the
// recovery Replayer — plus an on-disk standby journal so the warmth
// survives follower restarts (the double-failure case: the primary is dead
// AND the follower restarted before promotion).
//
// The standby manager shares the process's engines; index materializations
// it replays land in the shared, append-only index, which is exactly where
// the live manager would put them (and the live manager's materialize hook
// journals them). It is created without a journal of its own so it never
// journals workspace events — the Receiver owns standby persistence.
type Receiver struct {
	engines map[string]*core.Engine
	pathFor func(dataset string) string
	logf    func(format string, args ...any)

	mu      sync.Mutex
	standby map[string]*standbyState
}

// standbyState is one dataset's warm standby. The fields after mu are
// guarded by it; Receiver.mu only guards the map.
type standbyState struct {
	mu     sync.Mutex
	mgr    *workspace.Manager
	rep    *workspace.Replayer
	jw     *journal.Writer
	epoch  uint64
	gen    uint64
	upto   uint64
	closed bool
}

// standbyConfig builds the manager config for a warm standby: nothing in it
// may expire or compact on its own — the standby's content is exactly what
// the primary shipped, no more, no less.
func standbyConfig() workspace.ManagerConfig {
	return workspace.ManagerConfig{
		TTL:           time.Duration(math.MaxInt64),
		MaxWorkspaces: math.MaxInt32,
		CompactEvery:  -1,
	}
}

// NewReceiver builds a receiver and recovers any standby journals left on
// disk by a previous process.
func NewReceiver(engines map[string]*core.Engine, pathFor func(dataset string) string, logf func(format string, args ...any)) *Receiver {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &Receiver{
		engines: engines,
		pathFor: pathFor,
		logf:    logf,
		standby: make(map[string]*standbyState),
	}
	for ds := range engines {
		r.recoverStandby(ds)
	}
	return r
}

// recoverStandby rebuilds a dataset's warm standby from its on-disk standby
// journal, replaying the consistent prefix (up to the last mark) and
// truncating anything after it. A standby journal that cannot be recovered
// is reset to empty — the next stream session rebuilds it from scratch.
func (r *Receiver) recoverStandby(dataset string) {
	path := r.pathFor(dataset)
	if _, err := os.Stat(path); err != nil {
		return
	}
	jw, events, err := journal.Open(path, journal.Options{})
	if err != nil {
		r.logf("replicate: standby journal %s unreadable (%v); discarding", path, err)
		os.Remove(path)
		return
	}
	lastMark := -1
	var mk markData
	for i, ev := range events {
		if ev.Type == markType && decodeData(ev.Data, &mk) {
			lastMark = i
		}
	}
	if lastMark < 0 {
		jw.Rewrite(nil)
		jw.Close()
		return
	}
	kept := events[:lastMark+1]
	mgr := workspace.NewManager(r.engines, nil, standbyConfig())
	rep := mgr.NewReplayer()
	for _, ev := range kept {
		if ev.Type != markType {
			rep.Apply(ev)
		}
	}
	// Drop the unmarked tail from disk too, so a resumed stream cannot
	// duplicate those events in the file for the next recovery to double-
	// apply.
	if lastMark != len(events)-1 {
		if err := jw.Rewrite(kept); err != nil {
			r.logf("replicate: truncate standby journal %s: %v; discarding", path, err)
			rep.Close()
			jw.Close()
			os.Remove(path)
			return
		}
	}
	st := &standbyState{mgr: mgr, rep: rep, jw: jw, epoch: mk.Epoch, gen: mk.Gen, upto: mk.Upto}
	r.standby[dataset] = st
	stats := rep.Stats()
	replStandbyWS.With(dataset).Set(float64(stats.Workspaces))
	r.logf("replicate: recovered warm standby for %s: %d workspaces at epoch %d, upto %d",
		dataset, stats.Workspaces, mk.Epoch, mk.Upto)
}

// Apply applies one replicated batch. minEpoch is the dataset's durable
// fence: batches below it are from a zombie ex-primary and rejected with
// ErrFenced. Non-reset batches must extend the standby contiguously (same
// epoch, same journal generation, From equal to the applied watermark);
// anything else returns ErrResync and the sender restarts its session.
func (r *Receiver) Apply(dataset string, b Batch, minEpoch uint64) (BatchAck, error) {
	if b.Epoch < minEpoch {
		replFenced.Inc()
		return BatchAck{}, fmt.Errorf("%w: batch epoch %d is below fence %d for %q", ErrFenced, b.Epoch, minEpoch, dataset)
	}
	if _, ok := r.engines[dataset]; !ok {
		return BatchAck{}, fmt.Errorf("replicate: dataset %q is not served here", dataset)
	}
	r.mu.Lock()
	st := r.standby[dataset]
	var old *standbyState
	if b.Reset {
		old = st
		st = r.newStandbyLocked(dataset)
		if st == nil {
			r.mu.Unlock()
			return BatchAck{}, fmt.Errorf("replicate: cannot open standby journal for %q", dataset)
		}
		r.standby[dataset] = st
		replResyncs.Inc()
	} else if st == nil {
		r.mu.Unlock()
		return BatchAck{}, fmt.Errorf("%w: no standby for %q", ErrResync, dataset)
	}
	r.mu.Unlock()
	if old != nil {
		old.discard(false)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return BatchAck{}, fmt.Errorf("%w: standby for %q was consumed", ErrResync, dataset)
	}
	if b.Reset {
		st.epoch, st.gen, st.upto = b.Epoch, b.Gen, b.From
	} else if b.Epoch != st.epoch || b.Gen != st.gen || b.From != st.upto {
		return BatchAck{}, fmt.Errorf("%w: batch (epoch %d gen %d from %d) does not extend standby (epoch %d gen %d upto %d)",
			ErrResync, b.Epoch, b.Gen, b.From, st.epoch, st.gen, st.upto)
	}
	for _, ev := range b.Events {
		st.rep.Apply(ev)
		if _, err := st.jw.Append(ev.Type, ev.WS, ev.Dataset, ev.Data); err != nil {
			return BatchAck{}, fmt.Errorf("replicate: standby journal append: %w", err)
		}
	}
	st.upto = b.Upto
	if _, err := st.jw.Append(markType, "", dataset, markData{Epoch: st.epoch, Gen: st.gen, Upto: st.upto}); err != nil {
		return BatchAck{}, fmt.Errorf("replicate: standby journal mark: %w", err)
	}
	if n := len(b.Events); n > 0 {
		replApplied.With(dataset).Add(uint64(n))
		replStandbyWS.With(dataset).Set(float64(st.rep.Stats().Workspaces))
	}
	return BatchAck{Upto: st.upto}, nil
}

// newStandbyLocked creates a fresh, empty standby (truncating the on-disk
// standby journal). Callers hold r.mu.
func (r *Receiver) newStandbyLocked(dataset string) *standbyState {
	path := r.pathFor(dataset)
	jw, _, err := journal.Open(path, journal.Options{})
	if err != nil {
		os.Remove(path)
		if jw, _, err = journal.Open(path, journal.Options{}); err != nil {
			r.logf("replicate: open standby journal %s: %v", path, err)
			return nil
		}
	}
	if err := jw.Rewrite(nil); err != nil {
		r.logf("replicate: reset standby journal %s: %v", path, err)
		jw.Close()
		return nil
	}
	mgr := workspace.NewManager(r.engines, nil, standbyConfig())
	return &standbyState{mgr: mgr, rep: mgr.NewReplayer(), jw: jw}
}

// discard closes a standby's replayer and journal. With truncate the
// on-disk standby journal is emptied first — used after promotion, when the
// state has moved into the live journal and a stale warm copy must not be
// recovered again.
func (st *standbyState) discard(truncate bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	st.rep.Close()
	if truncate {
		st.jw.Rewrite(nil)
	}
	st.jw.Close()
}

// TakeStandby removes a dataset's standby from the receiver and returns its
// contents for promotion: the materialized rule specs and a snapshot of
// every standby workspace, plus a cleanup function the caller must invoke
// once the state is safely adopted (truncate=true) or the adoption failed
// (truncate=false, keeping the on-disk standby recoverable).
func (r *Receiver) TakeStandby(dataset string) (specs []string, snaps []*workspace.Snapshot, upto uint64, cleanup func(truncate bool), ok bool) {
	r.mu.Lock()
	st := r.standby[dataset]
	delete(r.standby, dataset)
	r.mu.Unlock()
	if st == nil {
		return nil, nil, 0, nil, false
	}
	st.mu.Lock()
	specs = st.mgr.MaterializedSpecs(dataset)
	for _, id := range st.mgr.IDsByDataset(dataset) {
		if ws, live := st.mgr.Peek(id); live {
			snaps = append(snaps, ws.Snapshot())
		}
	}
	upto = st.upto
	st.mu.Unlock()
	replStandbyWS.With(dataset).Set(0)
	return specs, snaps, upto, st.discard, true
}

// Drop discards a dataset's standby (and its on-disk journal): the shard is
// no longer this dataset's follower.
func (r *Receiver) Drop(dataset string) {
	r.mu.Lock()
	st := r.standby[dataset]
	delete(r.standby, dataset)
	r.mu.Unlock()
	if st != nil {
		st.discard(true)
		replStandbyWS.With(dataset).Set(0)
	}
}

// StatusFor reports a dataset's standby watermark and size.
func (r *Receiver) StatusFor(dataset string) (epoch, upto uint64, workspaces int, ok bool) {
	r.mu.Lock()
	st := r.standby[dataset]
	r.mu.Unlock()
	if st == nil {
		return 0, 0, 0, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch, st.upto, st.rep.Stats().Workspaces, true
}

// Datasets lists the datasets with a live standby.
func (r *Receiver) Datasets() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.standby))
	for ds := range r.standby {
		out = append(out, ds)
	}
	return out
}

// Close closes every standby without truncating the on-disk journals, so a
// restarted follower recovers them warm.
func (r *Receiver) Close() {
	r.mu.Lock()
	standbys := make([]*standbyState, 0, len(r.standby))
	for _, st := range r.standby {
		standbys = append(standbys, st)
	}
	r.standby = make(map[string]*standbyState)
	r.mu.Unlock()
	for _, st := range standbys {
		st.discard(false)
	}
}

func decodeData(raw json.RawMessage, v any) bool {
	return len(raw) > 0 && json.Unmarshal(raw, v) == nil
}
