// Package depparse provides a deterministic dependency parser producing
// projective head/child trees over tokenized, POS-tagged sentences.
//
// The paper uses SpaCy's neural dependency parser; the TreeMatch grammar only
// needs (a) a rooted tree per sentence and (b) child / descendant relations
// between tokens and POS tags. This package substitutes a rule-based
// head-finding parser: it picks the main verb (or first noun) as root and
// attaches the remaining tokens by simple, linguistically-motivated
// attachment rules. The resulting trees are well-formed (single root, no
// cycles, every non-root token has exactly one head), which is all the index
// and rule-matching machinery relies on.
package depparse

import (
	"fmt"

	"repro/internal/postag"
)

// Arc is a single dependency edge: token at index Child has head at index
// Head. The root token has Head == -1.
type Arc struct {
	Head  int
	Child int
	Label string
}

// Tree is a dependency parse of one sentence. Tokens and Tags are parallel
// slices; Heads[i] is the index of token i's head (-1 for the root).
type Tree struct {
	Tokens []string
	Tags   []postag.Tag
	Heads  []int
	Labels []string
}

// Parser builds dependency trees. The zero value is ready to use.
type Parser struct {
	Tagger *postag.Tagger
}

// New returns a parser using the given tagger (nil uses a default tagger).
func New(tagger *postag.Tagger) *Parser {
	if tagger == nil {
		tagger = postag.New()
	}
	return &Parser{Tagger: tagger}
}

// Parse tokenizes nothing: it expects an already-tokenized sentence and
// returns its dependency tree. Tags are computed with the parser's tagger.
func (p *Parser) Parse(tokens []string) *Tree {
	tagger := p.Tagger
	if tagger == nil {
		tagger = postag.New()
	}
	tags := tagger.TagSentence(tokens)
	return ParseTagged(tokens, tags)
}

// ParseTagged builds a dependency tree from tokens with pre-computed tags.
func ParseTagged(tokens []string, tags []postag.Tag) *Tree {
	n := len(tokens)
	t := &Tree{
		Tokens: tokens,
		Tags:   tags,
		Heads:  make([]int, n),
		Labels: make([]string, n),
	}
	if n == 0 {
		return t
	}
	for i := range t.Heads {
		t.Heads[i] = -2 // unattached sentinel
	}

	root := findRoot(tags)
	t.Heads[root] = -1
	t.Labels[root] = "root"

	// First pass: local attachments driven by POS patterns.
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		switch tags[i] {
		case postag.DET, postag.ADJ, postag.NUM:
			// Attach to the next NOUN/PROPN to the right, else to root.
			if h := nextWithTag(tags, i+1, postag.NOUN, postag.PROPN); h >= 0 {
				t.attach(i, h, "mod")
			} else {
				t.attach(i, root, "mod")
			}
		case postag.ADP, postag.PRT:
			// Prepositions head the following noun phrase and attach to the
			// nearest verb/noun on the left (or root).
			if h := prevWithTag(tags, i-1, postag.VERB, postag.NOUN, postag.PROPN); h >= 0 {
				t.attach(i, h, "prep")
			} else {
				t.attach(i, root, "prep")
			}
		case postag.NOUN, postag.PROPN, postag.PRON:
			// Object of a preceding adposition, else argument of the nearest
			// verb on the left, else attach to root.
			if h := prevWithTag(tags, i-1, postag.ADP); h >= 0 && i-h <= 4 {
				t.attach(i, h, "pobj")
			} else if h := prevWithTag(tags, i-1, postag.VERB); h >= 0 {
				t.attach(i, h, "obj")
			} else {
				t.attach(i, root, "nsubj")
			}
		case postag.ADV:
			if h := nearestWithTag(tags, i, postag.VERB, postag.ADJ); h >= 0 {
				t.attach(i, h, "advmod")
			} else {
				t.attach(i, root, "advmod")
			}
		case postag.VERB:
			// Non-root verbs attach to the root (coordination / xcomp).
			t.attach(i, root, "xcomp")
		case postag.CONJ, postag.PUNCT:
			t.attach(i, root, "cc")
		default:
			// Unknown: attach to previous token, else root.
			if i > 0 {
				t.attach(i, i-1, "dep")
			} else {
				t.attach(i, root, "dep")
			}
		}
	}

	// Second pass: any token that remained unattached, or whose attachment
	// would create a cycle, is attached to the root.
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		if t.Heads[i] == -2 || t.createsCycle(i, t.Heads[i]) {
			t.Heads[i] = root
			if t.Labels[i] == "" {
				t.Labels[i] = "dep"
			}
		}
	}
	return t
}

// attach sets child's head unless that would create a cycle, in which case the
// child stays unattached (the second pass will root it).
func (t *Tree) attach(child, head int, label string) {
	if child == head {
		t.Heads[child] = -2
		t.Labels[child] = label
		return
	}
	if t.createsCycle(child, head) {
		t.Heads[child] = -2
		t.Labels[child] = label
		return
	}
	t.Heads[child] = head
	t.Labels[child] = label
}

// createsCycle reports whether setting child's head to head would close a
// cycle, following only already-set heads.
func (t *Tree) createsCycle(child, head int) bool {
	seen := 0
	for cur := head; cur >= 0; cur = t.Heads[cur] {
		if cur == child {
			return true
		}
		seen++
		if seen > len(t.Heads) {
			return true
		}
		if t.Heads[cur] == -2 {
			break
		}
	}
	return false
}

// findRoot chooses the root token: the first main (non-auxiliary) verb, else
// the first verb, else the first noun/propn, else token 0.
func findRoot(tags []postag.Tag) int {
	firstVerb := -1
	for i, tag := range tags {
		if tag == postag.VERB {
			if firstVerb == -1 {
				firstVerb = i
			}
		}
	}
	// Prefer the last verb if there are several: auxiliaries precede the main
	// verb in English ("is going", "would be caused").
	lastVerb := -1
	for i, tag := range tags {
		if tag == postag.VERB {
			lastVerb = i
		}
	}
	if lastVerb >= 0 {
		return lastVerb
	}
	if firstVerb >= 0 {
		return firstVerb
	}
	for i, tag := range tags {
		if tag == postag.NOUN || tag == postag.PROPN {
			return i
		}
	}
	return 0
}

func nextWithTag(tags []postag.Tag, from int, want ...postag.Tag) int {
	for i := from; i < len(tags); i++ {
		for _, w := range want {
			if tags[i] == w {
				return i
			}
		}
	}
	return -1
}

func prevWithTag(tags []postag.Tag, from int, want ...postag.Tag) int {
	for i := from; i >= 0; i-- {
		for _, w := range want {
			if tags[i] == w {
				return i
			}
		}
	}
	return -1
}

func nearestWithTag(tags []postag.Tag, pos int, want ...postag.Tag) int {
	for d := 1; d < len(tags); d++ {
		if i := pos - d; i >= 0 {
			for _, w := range want {
				if tags[i] == w {
					return i
				}
			}
		}
		if i := pos + d; i < len(tags) {
			for _, w := range want {
				if tags[i] == w {
					return i
				}
			}
		}
	}
	return -1
}

// Root returns the index of the root token, or -1 for an empty tree.
func (t *Tree) Root() int {
	for i, h := range t.Heads {
		if h == -1 {
			return i
		}
	}
	return -1
}

// Children returns the indices of the direct children of token i, in order.
func (t *Tree) Children(i int) []int {
	var out []int
	for c, h := range t.Heads {
		if h == i {
			out = append(out, c)
		}
	}
	return out
}

// Descendants returns all transitive descendants of token i (excluding i).
func (t *Tree) Descendants(i int) []int {
	var out []int
	var walk func(int)
	walk = func(j int) {
		for _, c := range t.Children(j) {
			out = append(out, c)
			walk(c)
		}
	}
	walk(i)
	return out
}

// IsChild reports whether child's head is parent.
func (t *Tree) IsChild(parent, child int) bool {
	return child >= 0 && child < len(t.Heads) && t.Heads[child] == parent
}

// IsDescendant reports whether desc is a (transitive) descendant of anc.
func (t *Tree) IsDescendant(anc, desc int) bool {
	steps := 0
	for cur := desc; cur >= 0; cur = t.Heads[cur] {
		if t.Heads[cur] == anc {
			return true
		}
		steps++
		if steps > len(t.Heads) {
			return false
		}
	}
	return false
}

// Len returns the number of tokens in the tree.
func (t *Tree) Len() int { return len(t.Tokens) }

// Validate checks the structural invariants of the tree: exactly one root,
// all heads in range, and no cycles. It returns nil if the tree is valid.
func (t *Tree) Validate() error {
	if len(t.Tokens) == 0 {
		return nil
	}
	if len(t.Heads) != len(t.Tokens) || len(t.Tags) != len(t.Tokens) {
		return fmt.Errorf("parallel slice length mismatch: tokens=%d heads=%d tags=%d",
			len(t.Tokens), len(t.Heads), len(t.Tags))
	}
	roots := 0
	for i, h := range t.Heads {
		if h == -1 {
			roots++
			continue
		}
		if h < 0 || h >= len(t.Tokens) {
			return fmt.Errorf("token %d has out-of-range head %d", i, h)
		}
	}
	if roots != 1 {
		return fmt.Errorf("tree has %d roots, want 1", roots)
	}
	// Cycle check: every token must reach the root.
	for i := range t.Heads {
		steps := 0
		for cur := i; t.Heads[cur] != -1; cur = t.Heads[cur] {
			steps++
			if steps > len(t.Heads) {
				return fmt.Errorf("cycle detected involving token %d", i)
			}
		}
	}
	return nil
}

// String renders the tree in a compact "child<-head" format for debugging and
// for the Figure 11 qualitative output.
func (t *Tree) String() string {
	s := ""
	for i, tok := range t.Tokens {
		head := "ROOT"
		if t.Heads[i] >= 0 {
			head = t.Tokens[t.Heads[i]]
		}
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s/%s<-%s", tok, t.Tags[i], head)
	}
	return s
}
