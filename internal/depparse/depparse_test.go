package depparse

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/postag"
	"repro/internal/textproc"
)

func parseSentence(t *testing.T, text string) *Tree {
	t.Helper()
	var tok textproc.Tokenizer
	p := New(nil)
	tree := p.Parse(tok.TokenizeWords(text))
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree for %q: %v", text, err)
	}
	return tree
}

func TestParseFigure3Example(t *testing.T) {
	// Paper Figure 3: "Is Uber the best way to our hotel" — 'way' family
	// hangs under the verb, 'hotel' under 'to'.
	tree := parseSentence(t, "Is Uber the best way to our hotel")
	root := tree.Root()
	if root < 0 {
		t.Fatal("no root")
	}
	if tree.Tags[root] != postag.VERB {
		t.Errorf("root is %q/%s, want a VERB", tree.Tokens[root], tree.Tags[root])
	}
	// "hotel" should be a descendant of "to".
	toIdx, hotelIdx := -1, -1
	for i, tok := range tree.Tokens {
		if tok == "to" {
			toIdx = i
		}
		if tok == "hotel" {
			hotelIdx = i
		}
	}
	if toIdx < 0 || hotelIdx < 0 {
		t.Fatal("tokens missing")
	}
	if !tree.IsDescendant(toIdx, hotelIdx) && !tree.IsChild(toIdx, hotelIdx) {
		t.Errorf("'hotel' not under 'to': %s", tree)
	}
}

func TestParseEmptyAndSingle(t *testing.T) {
	p := New(nil)
	empty := p.Parse(nil)
	if err := empty.Validate(); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
	if empty.Root() != -1 {
		t.Errorf("empty tree root = %d", empty.Root())
	}
	single := p.Parse([]string{"shuttle"})
	if err := single.Validate(); err != nil {
		t.Errorf("single-token tree invalid: %v", err)
	}
	if single.Root() != 0 {
		t.Errorf("single root = %d", single.Root())
	}
}

func TestChildrenAndDescendants(t *testing.T) {
	tree := parseSentence(t, "What is the best way to get to the airport")
	root := tree.Root()
	desc := tree.Descendants(root)
	// All non-root tokens must be descendants of the root.
	if len(desc) != tree.Len()-1 {
		t.Errorf("root has %d descendants, want %d: %s", len(desc), tree.Len()-1, tree)
	}
	for _, c := range tree.Children(root) {
		if !tree.IsChild(root, c) {
			t.Errorf("Children/IsChild disagree for %d", c)
		}
		if !tree.IsDescendant(root, c) {
			t.Errorf("child %d not a descendant of root", c)
		}
	}
}

func TestIsDescendantNotReflexive(t *testing.T) {
	tree := parseSentence(t, "The shuttle goes to the airport")
	for i := 0; i < tree.Len(); i++ {
		if tree.IsDescendant(i, i) {
			t.Errorf("token %d is its own descendant", i)
		}
	}
}

func TestParseNoVerbSentence(t *testing.T) {
	tree := parseSentence(t, "Best pizza in town")
	root := tree.Root()
	if root < 0 {
		t.Fatal("no root for verbless sentence")
	}
	if tree.Tags[root] != postag.NOUN && tree.Tags[root] != postag.PROPN {
		t.Errorf("verbless root = %s", tree.Tags[root])
	}
}

func TestParseTaggedMismatchedTagsStillValid(t *testing.T) {
	// Even with all-X tags the tree must be valid.
	tokens := []string{"a", "b", "c", "d"}
	tags := []postag.Tag{postag.X, postag.X, postag.X, postag.X}
	tree := ParseTagged(tokens, tags)
	if err := tree.Validate(); err != nil {
		t.Errorf("all-X tree invalid: %v", err)
	}
}

// Property: every parse over random word lists yields a structurally valid
// tree where all nodes reach the root.
func TestParsePropertyValidTrees(t *testing.T) {
	p := New(nil)
	words := []string{"the", "shuttle", "to", "airport", "is", "best", "way",
		"Beethoven", "piano", "caused", "by", "storm", "damage", "quickly", "42"}
	f := func(idxs []uint8) bool {
		if len(idxs) > 30 {
			idxs = idxs[:30]
		}
		tokens := make([]string, len(idxs))
		for i, ix := range idxs {
			tokens[i] = words[int(ix)%len(words)]
		}
		tree := p.Parse(tokens)
		if err := tree.Validate(); err != nil {
			t.Logf("invalid tree for %v: %v", tokens, err)
			return false
		}
		// Every non-root node is a descendant of the root.
		if len(tokens) > 0 {
			root := tree.Root()
			if len(tree.Descendants(root)) != len(tokens)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTreeString(t *testing.T) {
	tree := parseSentence(t, "Uber is fast")
	s := tree.String()
	if !strings.Contains(s, "uber") || !strings.Contains(s, "ROOT") {
		t.Errorf("String() = %q, missing expected parts", s)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tree := parseSentence(t, "The shuttle goes to the airport")
	// Corrupt: two roots.
	tree.Heads[0] = -1
	tree.Heads[tree.Root()] = -1
	bad := *tree
	if err := bad.Validate(); err == nil {
		// If token 0 already was root this is fine; force a cycle instead.
		bad.Heads[1] = 2
		bad.Heads[2] = 1
		if err := bad.Validate(); err == nil {
			t.Error("Validate accepted corrupted tree")
		}
	}
}
