package ingest

import (
	"errors"
	"strings"
	"testing"
)

func TestDecodeJSONL(t *testing.T) {
	in := `{"text":"best way to get to the airport","label":1}

{"text":"the composer wrote a symphony","label":0}
`
	got, err := DecodeJSONL(strings.NewReader(in), Limits{})
	if err != nil {
		t.Fatalf("DecodeJSONL: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d sentences, want 2", len(got))
	}
	if got[0].Text != "best way to get to the airport" || got[0].Label != 1 {
		t.Fatalf("first record = %+v", got[0])
	}
	if got[1].Label != 0 {
		t.Fatalf("second record = %+v", got[1])
	}
}

func TestDecodeJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{"text": }`,
		"empty text":    `{"text":"  ","label":0}`,
		"bad label":     `{"text":"x","label":2}`,
		"unknown field": `{"text":"x","label":0,"extra":1}`,
		"empty batch":   ``,
	}
	for name, in := range cases {
		if _, err := DecodeJSONL(strings.NewReader(in), Limits{}); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
}

func TestDecodeJSONLBatchLimit(t *testing.T) {
	in := strings.Repeat(`{"text":"a b c","label":0}`+"\n", 5)
	if _, err := DecodeJSONL(strings.NewReader(in), Limits{MaxBatch: 4}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("over-limit batch: err = %v, want ErrInvalid", err)
	}
	got, err := DecodeJSONL(strings.NewReader(in), Limits{MaxBatch: 5})
	if err != nil || len(got) != 5 {
		t.Fatalf("at-limit batch: %d sentences, err = %v", len(got), err)
	}
}

func TestValidateBatch(t *testing.T) {
	if err := ValidateBatch(nil, Limits{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil batch: %v", err)
	}
	if err := ValidateBatch([]Sentence{{Text: "ok", Label: 1}}, Limits{}); err != nil {
		t.Fatalf("valid batch: %v", err)
	}
	if err := ValidateBatch([]Sentence{{Text: "ok", Label: 3}}, Limits{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad label: %v", err)
	}
}
