// Package ingest decodes live corpus-extension batches: JSONL streams of
// {"text","label"} records, the same wire shape corpus export uses. It is a
// pure decoding layer — validation and limits only, no engine or journal
// dependencies — shared by the /v2 ingest endpoint, the labeling-job
// streaming-corpus path, and journal replay.
package ingest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Sentence is one ingested sentence in wire form. Label uses the corpus
// export convention: 0 negative, 1 positive (the gold label drives the
// simulated oracle and evaluation; the engine itself never reads it).
type Sentence struct {
	Text  string `json:"text"`
	Label int    `json:"label"`
}

// Default decoding limits.
const (
	DefaultMaxBatch   = 100_000
	DefaultMaxTextLen = 1 << 16
	// maxLineBytes bounds one JSONL line (text plus JSON framing).
	maxLineBytes = 1 << 20
)

// Limits bounds one decoded batch. Zero values select the defaults.
type Limits struct {
	// MaxBatch caps the number of sentences in one batch.
	MaxBatch int
	// MaxTextLen caps the byte length of one sentence's text.
	MaxTextLen int
}

func (l Limits) withDefaults() Limits {
	if l.MaxBatch <= 0 {
		l.MaxBatch = DefaultMaxBatch
	}
	if l.MaxTextLen <= 0 {
		l.MaxTextLen = DefaultMaxTextLen
	}
	return l
}

// ErrInvalid marks a malformed or out-of-bounds batch. The serving layer
// maps it to 400.
var ErrInvalid = errors.New("invalid ingest batch")

// DecodeJSONL reads one sentence batch: one {"text","label"} object per
// line, blank lines skipped. Every record is validated (non-empty text,
// binary label, length caps) before any is returned, so a rejected batch is
// rejected whole — nothing is partially applied downstream.
func DecodeJSONL(r io.Reader, limits Limits) ([]Sentence, error) {
	limits = limits.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	var out []Sentence
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec Sentence
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrInvalid, line, err)
		}
		if err := rec.Validate(limits); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrInvalid, line, err)
		}
		if len(out) >= limits.MaxBatch {
			return nil, fmt.Errorf("%w: batch exceeds %d sentences", ErrInvalid, limits.MaxBatch)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("%w: line %d exceeds %d bytes", ErrInvalid, line+1, maxLineBytes)
		}
		return nil, fmt.Errorf("read ingest batch: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	return out, nil
}

// Validate checks one record against the limits.
func (s Sentence) Validate(limits Limits) error {
	limits = limits.withDefaults()
	if strings.TrimSpace(s.Text) == "" {
		return fmt.Errorf("empty text")
	}
	if len(s.Text) > limits.MaxTextLen {
		return fmt.Errorf("text exceeds %d bytes", limits.MaxTextLen)
	}
	if s.Label != 0 && s.Label != 1 {
		return fmt.Errorf("label must be 0 or 1, got %d", s.Label)
	}
	return nil
}

// ValidateBatch checks a pre-decoded batch (e.g. one carried inline in a
// labeling-job spec) against the limits.
func ValidateBatch(batch []Sentence, limits Limits) error {
	limits = limits.withDefaults()
	if len(batch) == 0 {
		return fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	if len(batch) > limits.MaxBatch {
		return fmt.Errorf("%w: batch exceeds %d sentences", ErrInvalid, limits.MaxBatch)
	}
	for i, rec := range batch {
		if err := rec.Validate(limits); err != nil {
			return fmt.Errorf("%w: sentence %d: %v", ErrInvalid, i, err)
		}
	}
	return nil
}
