// Package sketch builds per-sentence derivation sketches (§3.1, Figure 5 of
// the paper): the summary of all bounded-depth heuristics a sentence
// satisfies, for every registered heuristic grammar. Sketches are the unit
// that the index merges (Figure 6).
package sketch

import (
	"runtime"
	"sync"

	"repro/internal/corpus"
	"repro/internal/grammar"
)

// Sketch is the derivation sketch of one sentence: the heuristics (across all
// grammars) that the sentence satisfies, bounded by the builder's MaxDepth.
type Sketch struct {
	// SentenceID is the ID of the sketched sentence.
	SentenceID int
	// Heuristics lists the satisfied heuristics, deduplicated by key and
	// sorted by key.
	Heuristics []grammar.Heuristic
}

// Builder creates derivation sketches.
type Builder struct {
	// Registry provides the heuristic grammars.
	Registry *grammar.Registry
	// MaxDepth bounds the number of derivation rules per heuristic. The
	// paper uses a maximum depth of 10 for generating derivation sketches;
	// phrase-style grammars rarely benefit from more than 5-6.
	MaxDepth int
	// Workers bounds the number of goroutines used by BuildCorpus
	// (0 = GOMAXPROCS).
	Workers int
}

// NewBuilder returns a Builder over the registry with the given max depth.
func NewBuilder(reg *grammar.Registry, maxDepth int) *Builder {
	if maxDepth <= 0 {
		maxDepth = 10
	}
	return &Builder{Registry: reg, MaxDepth: maxDepth}
}

// Build returns the derivation sketch of a single sentence.
func (b *Builder) Build(s *corpus.Sentence) Sketch {
	if s == nil {
		return Sketch{SentenceID: -1}
	}
	return Sketch{
		SentenceID: s.ID,
		Heuristics: b.Registry.Sketch(s, b.MaxDepth),
	}
}

// BuildCorpus sketches every sentence of the corpus in parallel and returns
// the sketches indexed by sentence ID. The result order is deterministic.
func (b *Builder) BuildCorpus(c *corpus.Corpus) []Sketch {
	n := c.Len()
	out := make([]Sketch, n)
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = b.Build(c.Sentence(i))
		}
		return out
	}
	var wg sync.WaitGroup
	ch := make(chan int, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ch {
				out[id] = b.Build(c.Sentence(id))
			}
		}()
	}
	for id := 0; id < n; id++ {
		ch <- id
	}
	close(ch)
	wg.Wait()
	return out
}

// Size returns the number of heuristics in the sketch.
func (s Sketch) Size() int { return len(s.Heuristics) }
