package sketch

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/tokensregex"
	"repro/internal/treematch"
)

func buildCorpus() *corpus.Corpus {
	c := corpus.New("sk", "t")
	c.Add("What is the best way to get to SFO airport?", corpus.Positive)
	c.Add("Is there a shuttle to the hotel?", corpus.Positive)
	c.Add("Can I order a pizza tonight?", corpus.Negative)
	c.Preprocess(corpus.PreprocessOptions{Parse: true})
	return c
}

func TestBuildSingleSentence(t *testing.T) {
	reg := grammar.NewRegistry(tokensregex.New(), treematch.New())
	b := NewBuilder(reg, 3)
	c := buildCorpus()
	sk := b.Build(c.Sentence(0))
	if sk.SentenceID != 0 {
		t.Errorf("SentenceID = %d", sk.SentenceID)
	}
	if sk.Size() == 0 {
		t.Fatal("empty sketch")
	}
	for _, h := range sk.Heuristics {
		if !h.Matches(c.Sentence(0)) {
			t.Errorf("sketch heuristic %s does not match the sentence", h.Key())
		}
		if h.Depth() > 3 {
			t.Errorf("heuristic %s exceeds MaxDepth", h.Key())
		}
	}
	// Nil sentence yields an empty, invalid sketch.
	nilSk := b.Build(nil)
	if nilSk.SentenceID != -1 || nilSk.Size() != 0 {
		t.Errorf("nil sketch = %+v", nilSk)
	}
}

func TestBuilderDefaultDepth(t *testing.T) {
	reg := grammar.NewRegistry(tokensregex.New())
	b := NewBuilder(reg, 0)
	if b.MaxDepth != 10 {
		t.Errorf("default MaxDepth = %d, want 10", b.MaxDepth)
	}
}

func TestBuildCorpusParallelDeterministic(t *testing.T) {
	reg := grammar.NewRegistry(tokensregex.New())
	c := buildCorpus()

	seq := NewBuilder(reg, 3)
	seq.Workers = 1
	par := NewBuilder(reg, 3)
	par.Workers = 4

	a := seq.BuildCorpus(c)
	b := par.BuildCorpus(c)
	if len(a) != c.Len() || len(b) != c.Len() {
		t.Fatalf("sketch counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		ka := keysOf(a[i])
		kb := keysOf(b[i])
		if !reflect.DeepEqual(ka, kb) {
			t.Errorf("sentence %d sketches differ between serial and parallel", i)
		}
	}
}

func keysOf(s Sketch) []string {
	out := make([]string, len(s.Heuristics))
	for i, h := range s.Heuristics {
		out[i] = h.Key()
	}
	return out
}
