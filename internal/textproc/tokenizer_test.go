package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"simple", "What is the best way to get to SFO airport?",
			[]string{"what", "is", "the", "best", "way", "to", "get", "to", "sfo", "airport"}},
		{"empty", "", nil},
		{"whitespace only", "   \t\n ", nil},
		{"punctuation stripped", "Hello, world!!!", []string{"hello", "world"}},
		{"hyphenated", "drop-off at the check-in desk", []string{"drop-off", "at", "the", "check-in", "desk"}},
		{"apostrophe internal", "Uber's driver won't wait", []string{"uber's", "driver", "won't", "wait"}},
		{"digits", "Take bus 42 to terminal 3", []string{"take", "bus", "42", "to", "terminal", "3"}},
		{"unicode letters", "café près de l'hôtel", []string{"café", "près", "de", "l'hôtel"}},
		{"mixed case normalized", "BART from SFO", []string{"bart", "from", "sfo"}},
	}
	var tok Tokenizer
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tok.TokenizeWords(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("TokenizeWords(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenizeOffsets(t *testing.T) {
	var tok Tokenizer
	text := "Is there a bart from SFO?"
	toks := tok.Tokenize(text)
	for _, tk := range toks {
		if tk.Start < 0 || tk.End > len(text) || tk.Start >= tk.End {
			t.Fatalf("bad offsets for %q: [%d,%d)", tk.Text, tk.Start, tk.End)
		}
		if text[tk.Start:tk.End] != tk.Text {
			t.Errorf("offset slice %q != token text %q", text[tk.Start:tk.End], tk.Text)
		}
	}
}

func TestTokenizeKeepPunct(t *testing.T) {
	tok := Tokenizer{KeepPunct: true}
	got := tok.TokenizeWords("Hello, world!")
	want := []string{"hello", ",", "world", "!"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeSplitContractions(t *testing.T) {
	tok := Tokenizer{SplitContractions: true}
	got := tok.TokenizeWords("I don't know")
	want := []string{"i", "do", "n't", "know"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestSplitSentences(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want int
	}{
		{"two sentences", "I like trains. The station is far away.", 2},
		{"question and statement", "Where is the airport? It is north of town.", 2},
		{"abbreviation", "Dr. Smith arrived late. He apologized.", 2},
		{"exclamations", "Wow!! That was fast. Really fast.", 3},
		{"single", "No terminal punctuation here", 1},
		{"empty", "", 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SplitSentences(tt.in)
			if len(got) != tt.want {
				t.Errorf("SplitSentences(%q) = %v (%d sentences), want %d", tt.in, got, len(got), tt.want)
			}
		})
	}
}

func TestSplitSentencesPreservesText(t *testing.T) {
	in := "The shuttle leaves at 9. Is Uber faster? Maybe."
	got := SplitSentences(in)
	joined := strings.Join(got, " ")
	// Every non-space character of the input must survive the split.
	strip := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' || r == '\n' {
				return -1
			}
			return r
		}, s)
	}
	if strip(joined) != strip(in) {
		t.Errorf("sentence split lost characters: %q vs %q", joined, in)
	}
}

func TestNGrams(t *testing.T) {
	tokens := []string{"best", "way", "to", "get"}
	got := NGrams(tokens, 1, 2)
	want := []string{"best", "way", "to", "get", "best way", "way to", "to get"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
	if g := NGrams(tokens, 1, 10); len(g) != 4+3+2+1 {
		t.Errorf("maxN clamp failed, got %d ngrams", len(g))
	}
	if g := NGrams(nil, 1, 3); g != nil {
		t.Errorf("NGrams(nil) = %v, want nil", g)
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Hello", "hello"},
		{"'quoted'", "quoted"},
		{"-dash-", "dash"},
		{"BART", "bart"},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// Property: tokenization never produces empty tokens and all norms are
// lowercase.
func TestTokenizePropertyNonEmptyLowercase(t *testing.T) {
	var tok Tokenizer
	f := func(s string) bool {
		for _, tk := range tok.Tokenize(s) {
			if tk.Norm == "" && tk.Text == "" {
				return false
			}
			if tk.Norm != strings.ToLower(tk.Norm) {
				return false
			}
			if tk.Start < 0 || tk.End > len(s) || tk.Start > tk.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: number of tokens is monotone under concatenation with a space.
func TestTokenizePropertyConcat(t *testing.T) {
	var tok Tokenizer
	f := func(a, b string) bool {
		na := len(tok.Tokenize(a))
		nb := len(tok.Tokenize(b))
		nab := len(tok.Tokenize(a + " " + b))
		return nab >= na && nab >= nb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVocabBasic(t *testing.T) {
	v := NewVocab()
	id1 := v.Add("hotel")
	id2 := v.Add("airport")
	id3 := v.Add("hotel")
	if id1 != id3 {
		t.Errorf("re-adding token changed id: %d vs %d", id1, id3)
	}
	if id1 == id2 {
		t.Errorf("distinct tokens share id %d", id1)
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d, want 2", v.Size())
	}
	if c := v.Count("hotel"); c != 2 {
		t.Errorf("Count(hotel) = %d, want 2", c)
	}
	if c := v.Count("missing"); c != 0 {
		t.Errorf("Count(missing) = %d, want 0", c)
	}
	if tok := v.Token(id2); tok != "airport" {
		t.Errorf("Token(%d) = %q, want airport", id2, tok)
	}
	if _, ok := v.ID("missing"); ok {
		t.Error("ID(missing) reported present")
	}
}

func TestVocabTopKAndPrune(t *testing.T) {
	v := NewVocab()
	words := []string{"a", "a", "a", "b", "b", "c"}
	for _, w := range words {
		v.Add(w)
	}
	top := v.TopK(2)
	if !reflect.DeepEqual(top, []string{"a", "b"}) {
		t.Errorf("TopK = %v", top)
	}
	if top := v.TopK(99); len(top) != 3 {
		t.Errorf("TopK over-size = %v", top)
	}
	p := v.Prune(2)
	if p.Size() != 2 {
		t.Errorf("Prune size = %d, want 2", p.Size())
	}
	if p.Count("a") != 3 {
		t.Errorf("Prune lost counts: %d", p.Count("a"))
	}
	if _, ok := p.ID("c"); ok {
		t.Error("Prune kept low-count token")
	}
}

func TestVocabConcurrent(t *testing.T) {
	v := NewVocab()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				v.Add("tok")
				v.Count("tok")
				v.Size()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if v.Count("tok") != 8*200 {
		t.Errorf("concurrent count = %d, want %d", v.Count("tok"), 8*200)
	}
}

func TestStopWords(t *testing.T) {
	if !IsStopWord("the") {
		t.Error("'the' should be a stop word")
	}
	if IsStopWord("shuttle") {
		t.Error("'shuttle' should not be a stop word")
	}
}
