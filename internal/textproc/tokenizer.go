// Package textproc provides the low-level text processing substrate used by
// the Darwin rule-discovery pipeline: word tokenization, sentence splitting,
// normalization and vocabulary construction.
//
// The paper relies on SpaCy for these steps; this package is a self-contained
// replacement that produces token sequences with stable, deterministic
// behaviour. Darwin's algorithms only depend on the token sequences
// themselves, not on a particular tokenization scheme.
package textproc

import (
	"strings"
	"unicode"
)

// Token is a single token of a sentence after tokenization. The surface form
// is preserved in Text; Norm is the lowercased normalized form used for
// indexing and rule matching.
type Token struct {
	Text  string // original surface form
	Norm  string // normalized (lowercased) form
	Start int    // byte offset of the token start in the original text
	End   int    // byte offset one past the token end
}

// Tokenizer splits raw text into tokens. The zero value is ready to use.
type Tokenizer struct {
	// KeepPunct controls whether punctuation runs are emitted as tokens.
	// Rule grammars generally ignore punctuation, so the default is false.
	KeepPunct bool
	// SplitContractions controls whether common English contractions such as
	// "don't" are split into ["do", "n't"]. Default false keeps them whole.
	SplitContractions bool
}

// Tokenize splits text into tokens. Tokens are maximal runs of letters/digits
// (plus internal apostrophes and hyphens); punctuation is skipped unless
// KeepPunct is set.
func (t Tokenizer) Tokenize(text string) []Token {
	var tokens []Token
	runes := []rune(text)
	n := len(runes)
	// byteOffset tracks byte position of runes[i].
	byteOffsets := make([]int, n+1)
	off := 0
	for i, r := range runes {
		byteOffsets[i] = off
		off += len(string(r))
	}
	byteOffsets[n] = off

	i := 0
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case isWordRune(r):
			j := i + 1
			for j < n && (isWordRune(runes[j]) || isInternalJoiner(runes[j], runes, j)) {
				j++
			}
			surface := string(runes[i:j])
			tokens = append(tokens, makeToken(surface, byteOffsets[i], byteOffsets[j], t.SplitContractions)...)
			i = j
		default:
			// punctuation run
			j := i + 1
			for j < n && !unicode.IsSpace(runes[j]) && !isWordRune(runes[j]) {
				j++
			}
			if t.KeepPunct {
				surface := string(runes[i:j])
				tokens = append(tokens, Token{
					Text:  surface,
					Norm:  surface,
					Start: byteOffsets[i],
					End:   byteOffsets[j],
				})
			}
			i = j
		}
	}
	return tokens
}

// TokenizeWords is a convenience wrapper returning only the normalized token
// strings.
func (t Tokenizer) TokenizeWords(text string) []string {
	toks := t.Tokenize(text)
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	for i, tok := range toks {
		out[i] = tok.Norm
	}
	return out
}

func makeToken(surface string, start, end int, splitContractions bool) []Token {
	if splitContractions {
		if idx := strings.Index(strings.ToLower(surface), "n't"); idx > 0 && idx == len(surface)-3 {
			head := surface[:idx]
			tail := surface[idx:]
			return []Token{
				{Text: head, Norm: strings.ToLower(head), Start: start, End: start + len(head)},
				{Text: tail, Norm: strings.ToLower(tail), Start: start + len(head), End: end},
			}
		}
	}
	return []Token{{Text: surface, Norm: Normalize(surface), Start: start, End: end}}
}

// Normalize lowercases a token and strips leading/trailing apostrophes and
// hyphens so that "Uber's" and "uber" share a normal form prefix behaviour
// expected by the rule index.
func Normalize(s string) string {
	s = strings.ToLower(s)
	s = strings.Trim(s, "'-")
	return s
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isInternalJoiner reports whether the rune at position j joins two word runes
// (apostrophe or hyphen inside a word, e.g. "don't", "drop-off").
func isInternalJoiner(r rune, runes []rune, j int) bool {
	if r != '\'' && r != '-' {
		return false
	}
	if j+1 >= len(runes) {
		return false
	}
	return isWordRune(runes[j-1]) && isWordRune(runes[j+1])
}

// SplitSentences splits raw text into sentence strings using terminal
// punctuation (. ! ?) followed by whitespace and an uppercase letter or end of
// text. Abbreviation handling is intentionally minimal: common abbreviations
// ("mr.", "dr.", "e.g.", "i.e.", "vs.", "etc.") do not end sentences.
func SplitSentences(text string) []string {
	var sentences []string
	runes := []rune(text)
	n := len(runes)
	start := 0
	for i := 0; i < n; i++ {
		r := runes[i]
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		// Look behind for abbreviations.
		if r == '.' && isAbbreviation(runes, start, i) {
			continue
		}
		// A sentence ends here if next non-space is uppercase/digit or end.
		j := i + 1
		for j < n && runes[j] == r {
			j++ // swallow "..." or "!!"
		}
		k := j
		for k < n && unicode.IsSpace(runes[k]) {
			k++
		}
		if k >= n || unicode.IsUpper(runes[k]) || unicode.IsDigit(runes[k]) || runes[k] == '"' || runes[k] == '\'' {
			s := strings.TrimSpace(string(runes[start:j]))
			if s != "" {
				sentences = append(sentences, s)
			}
			start = k
			i = k - 1
		}
	}
	if start < n {
		s := strings.TrimSpace(string(runes[start:]))
		if s != "" {
			sentences = append(sentences, s)
		}
	}
	return sentences
}

var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"st": true, "vs": true, "etc": true, "inc": true, "ltd": true,
	"e.g": true, "i.e": true, "u.s": true, "no": true, "jr": true, "sr": true,
}

func isAbbreviation(runes []rune, start, dot int) bool {
	// Extract the word immediately before the dot.
	j := dot
	for j > start && (isWordRune(runes[j-1]) || runes[j-1] == '.') {
		j--
	}
	word := strings.ToLower(strings.TrimSuffix(string(runes[j:dot]), "."))
	return abbreviations[word]
}

// NGrams returns all contiguous n-grams (as space-joined strings) of the token
// slice for n in [minN, maxN]. It is used by the TokensRegex sketch builder
// and by the Snuba baseline's feature miner.
func NGrams(tokens []string, minN, maxN int) []string {
	if minN < 1 {
		minN = 1
	}
	if maxN > len(tokens) {
		maxN = len(tokens)
	}
	var grams []string
	for n := minN; n <= maxN; n++ {
		for i := 0; i+n <= len(tokens); i++ {
			grams = append(grams, strings.Join(tokens[i:i+n], " "))
		}
	}
	return grams
}
