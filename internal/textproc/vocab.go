package textproc

import (
	"sort"
	"sync"
)

// Vocab is a thread-safe bidirectional mapping between token strings and
// dense integer ids, with document-frequency counts. It backs the embedding
// trainer and the classifier's bag-of-words features.
type Vocab struct {
	mu     sync.RWMutex
	ids    map[string]int
	tokens []string
	counts []int
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]int)}
}

// Add inserts the token (if new) and increments its count, returning its id.
func (v *Vocab) Add(token string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.ids[token]; ok {
		v.counts[id]++
		return id
	}
	id := len(v.tokens)
	v.ids[token] = id
	v.tokens = append(v.tokens, token)
	v.counts = append(v.counts, 1)
	return id
}

// AddAll adds every token of the slice and returns their ids.
func (v *Vocab) AddAll(tokens []string) []int {
	out := make([]int, len(tokens))
	for i, t := range tokens {
		out[i] = v.Add(t)
	}
	return out
}

// ID returns the id of token and whether it is present. It does not mutate
// counts.
func (v *Vocab) ID(token string) (int, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.ids[token]
	return id, ok
}

// Token returns the token string for an id. It panics on out-of-range ids,
// mirroring slice semantics.
func (v *Vocab) Token(id int) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.tokens[id]
}

// Count returns the accumulated count of the token, or 0 if absent.
func (v *Vocab) Count(token string) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if id, ok := v.ids[token]; ok {
		return v.counts[id]
	}
	return 0
}

// Size returns the number of distinct tokens.
func (v *Vocab) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.tokens)
}

// Tokens returns a copy of all tokens ordered by id.
func (v *Vocab) Tokens() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, len(v.tokens))
	copy(out, v.tokens)
	return out
}

// TopK returns the k most frequent tokens (ties broken lexicographically for
// determinism). If k exceeds the vocabulary size, all tokens are returned.
func (v *Vocab) TopK(k int) []string {
	v.mu.RLock()
	type tc struct {
		tok string
		cnt int
	}
	all := make([]tc, len(v.tokens))
	for i, t := range v.tokens {
		all[i] = tc{t, v.counts[i]}
	}
	v.mu.RUnlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].cnt != all[j].cnt {
			return all[i].cnt > all[j].cnt
		}
		return all[i].tok < all[j].tok
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].tok
	}
	return out
}

// Prune returns a new vocabulary containing only tokens with count >= minCount.
// Ids are re-assigned densely in the original id order.
func (v *Vocab) Prune(minCount int) *Vocab {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := NewVocab()
	for i, t := range v.tokens {
		if v.counts[i] >= minCount {
			id := out.Add(t)
			out.counts[id] = v.counts[i]
		}
	}
	return out
}

// StopWords is the default English stop-word list used when mining candidate
// phrases and when the Snuba baseline filters degenerate rules.
var StopWords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "are": true, "was": true,
	"were": true, "be": true, "been": true, "being": true, "am": true,
	"i": true, "you": true, "he": true, "she": true, "it": true, "we": true,
	"they": true, "of": true, "to": true, "in": true, "on": true, "at": true,
	"for": true, "with": true, "and": true, "or": true, "but": true,
	"not": true, "no": true, "do": true, "does": true, "did": true,
	"this": true, "that": true, "these": true, "those": true, "there": true,
	"from": true, "by": true, "as": true, "would": true, "could": true,
	"should": true, "will": true, "can": true, "may": true, "might": true,
	"have": true, "has": true, "had": true, "my": true, "your": true,
	"his": true, "her": true, "its": true, "our": true, "their": true,
	"what": true, "which": true, "who": true, "whom": true, "how": true,
	"when": true, "where": true, "why": true, "me": true, "him": true,
	"them": true, "us": true, "so": true, "if": true, "than": true,
	"then": true, "into": true, "about": true, "up": true, "down": true,
	"out": true, "over": true, "under": true, "again": true, "very": true,
	"s": true, "t": true, "just": true, "don": true, "now": true,
}

// IsStopWord reports whether tok is in the default stop-word list.
func IsStopWord(tok string) bool { return StopWords[tok] }
