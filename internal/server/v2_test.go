package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"repro/pkg/darwin"
)

// --- error envelope conformance ---

// envelopeCase triggers one typed error on one /v2 endpoint and states the
// documented {status, code, retryable} triple it must serve.
type envelopeCase struct {
	name      string
	method    string
	path      string
	body      any
	status    int
	code      string
	retryable bool
	sentinel  error
}

// TestV2ErrorEnvelopeConformance is the table-driven satellite: every /v2
// endpoint must map each typed error to the documented JSON envelope and
// HTTP status, and the code must round-trip to the matching SDK sentinel.
func TestV2ErrorEnvelopeConformance(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A finished labeler for budget_exhausted and a live one for conflicts.
	client := darwin.NewClient(ts.URL, "")
	done, err := client.NewLabeler(t.Context(), darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: 1, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := done.AnswerBatch(t.Context(), []darwin.Answer{{Accept: false}}); err != nil {
		t.Fatal(err)
	}
	live, err := client.NewLabeler(t.Context(), darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: 5, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A live workspace for the join-validation cases.
	wsLab, err := client.NewLabeler(t.Context(), darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "a",
		SeedRules: []string{"best way to get to"}, Budget: 5, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	wsSt, err := wsLab.Status(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	wsID := wsSt.Workspace

	cases := []envelopeCase{
		{"create/unknown-dataset", "POST", "/v2/labelers",
			darwin.CreateOptions{Dataset: "nope"},
			http.StatusNotFound, darwin.CodeNotFound, false, darwin.ErrNotFound},
		{"create/bad-mode", "POST", "/v2/labelers",
			darwin.CreateOptions{Dataset: "directions", Mode: "telepathy"},
			http.StatusBadRequest, darwin.CodeInvalid, false, darwin.ErrInvalid},
		{"create/bad-seed-rule", "POST", "/v2/labelers",
			darwin.CreateOptions{Dataset: "directions", SeedRules: []string{"@@@ ???"}},
			http.StatusBadRequest, darwin.CodeInvalid, false, darwin.ErrInvalid},
		{"create/workspace-without-annotator", "POST", "/v2/labelers",
			darwin.CreateOptions{Dataset: "directions", Mode: darwin.ModeWorkspace},
			http.StatusBadRequest, darwin.CodeInvalid, false, darwin.ErrInvalid},
		{"create/workspace-unknown-ws", "POST", "/v2/labelers",
			darwin.CreateOptions{Dataset: "directions", Mode: darwin.ModeWorkspace, Workspace: "missing", Annotator: "a"},
			http.StatusNotFound, darwin.CodeNotFound, false, darwin.ErrNotFound},
		{"create/join-dataset-mismatch", "POST", "/v2/labelers",
			darwin.CreateOptions{Dataset: "musicians", Mode: darwin.ModeWorkspace, Workspace: wsID, Annotator: "b"},
			http.StatusBadRequest, darwin.CodeInvalid, false, darwin.ErrInvalid},
		{"create/join-with-seeds", "POST", "/v2/labelers",
			darwin.CreateOptions{Mode: darwin.ModeWorkspace, Workspace: wsID, Annotator: "b", Budget: 99},
			http.StatusBadRequest, darwin.CodeInvalid, false, darwin.ErrInvalid},
		{"status/unknown", "GET", "/v2/labelers/unknown", nil,
			http.StatusNotFound, darwin.CodeNotFound, false, darwin.ErrNotFound},
		{"suggestion/unknown", "GET", "/v2/labelers/unknown/suggestion", nil,
			http.StatusNotFound, darwin.CodeNotFound, false, darwin.ErrNotFound},
		{"answers/unknown", "POST", "/v2/labelers/unknown/answers",
			map[string]any{"answers": []darwin.Answer{{Accept: true}}},
			http.StatusNotFound, darwin.CodeNotFound, false, darwin.ErrNotFound},
		{"report/unknown", "GET", "/v2/labelers/unknown/report", nil,
			http.StatusNotFound, darwin.CodeNotFound, false, darwin.ErrNotFound},
		{"export/unknown", "GET", "/v2/labelers/unknown/export", nil,
			http.StatusNotFound, darwin.CodeNotFound, false, darwin.ErrNotFound},
		{"delete/unknown", "DELETE", "/v2/labelers/unknown", nil,
			http.StatusNotFound, darwin.CodeNotFound, false, darwin.ErrNotFound},
		{"answers/empty", "POST", "/v2/labelers/" + live.ID() + "/answers",
			map[string]any{"answers": []darwin.Answer{}},
			http.StatusBadRequest, darwin.CodeInvalid, false, darwin.ErrInvalid},
		{"answers/keyed-without-pending", "POST", "/v2/labelers/" + live.ID() + "/answers",
			map[string]any{"answers": []darwin.Answer{{Key: "tokensregex:nope", Accept: true}}},
			http.StatusConflict, darwin.CodeConflict, false, darwin.ErrConflict},
		{"suggestion/budget-exhausted", "GET", "/v2/labelers/" + done.ID() + "/suggestion", nil,
			http.StatusConflict, darwin.CodeBudgetExhausted, false, darwin.ErrBudgetExhausted},
		{"list/bad-limit", "GET", "/v2/labelers?limit=banana", nil,
			http.StatusBadRequest, darwin.CodeInvalid, false, darwin.ErrInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env darwin.ErrorEnvelope
			status := doJSON(t, ts, tc.method, tc.path, tc.body, &env)
			if status != tc.status {
				t.Errorf("status %d, want %d", status, tc.status)
			}
			if env.Code != tc.code {
				t.Errorf("code %q, want %q", env.Code, tc.code)
			}
			if env.Retryable != tc.retryable {
				t.Errorf("retryable %v, want %v", env.Retryable, tc.retryable)
			}
			if env.Message == "" {
				t.Error("envelope has no message")
			}
			if !errors.Is(env.Err(), tc.sentinel) {
				t.Errorf("envelope does not round-trip to %v (got %v)", tc.sentinel, env.Err())
			}
		})
	}
}

// TestV2MiddlewareErrorEnvelopes pins that auth and rate-limit rejections on
// /v2 paths also speak the envelope (the v1 paths keep the legacy shape).
func TestV2MiddlewareErrorEnvelopes(t *testing.T) {
	srv, _ := newTestServer(t, Config{Token: "s3cret", RatePerSec: 1, RateBurst: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var env darwin.ErrorEnvelope
	if status := doJSON(t, ts, "GET", "/v2/labelers", nil, &env); status != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v2: status %d, want 401", status)
	}
	if env.Code != darwin.CodeUnauthorized || env.Retryable {
		t.Errorf("unauthenticated envelope %+v, want code %q retryable=false", env, darwin.CodeUnauthorized)
	}
	// Exhaust the burst to observe the rate-limit envelope.
	sawRateLimit := false
	for i := 0; i < 6 && !sawRateLimit; i++ {
		var e darwin.ErrorEnvelope
		req, err := http.NewRequest("GET", ts.URL+"/v2/labelers", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer s3cret")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Code != darwin.CodeRateLimited || !e.Retryable {
				t.Errorf("rate-limit envelope %+v, want code %q retryable=true", e, darwin.CodeRateLimited)
			}
			sawRateLimit = true
		}
		resp.Body.Close()
	}
	if !sawRateLimit {
		t.Error("rate limit never triggered within the test burst")
	}
}

// --- v1 / v2 equivalence ---

// TestV1V2EquivalentReports drives the same deterministic event sequence
// once through the legacy /v1 endpoints and once through /v2, then asserts
// the two runs' /v2 reports are byte-identical: /v1 really is a thin
// adapter over the same core, not a parallel implementation.
func TestV1V2EquivalentReports(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const steps = 10
	// verdict derives the accept decision purely from the suggestion, so
	// both drivers make identical choices at identical steps.
	verdict := func(question, newCoverage int) bool {
		return newCoverage > 0 && question%2 == 1
	}

	// Drive via v1.
	var created createResponse
	if status := doJSON(t, ts, "POST", "/v1/sessions", createRequest{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: steps, Seed: 77,
	}, &created); status != http.StatusCreated {
		t.Fatalf("v1 create: status %d", status)
	}
	for {
		var sug suggestResponse
		if status := doJSON(t, ts, "GET", "/v1/sessions/"+created.ID+"/suggest", nil, &sug); status != http.StatusOK {
			t.Fatalf("v1 suggest: status %d", status)
		}
		if sug.Done {
			break
		}
		var ans answerResponse
		if status := doJSON(t, ts, "POST", "/v1/sessions/"+created.ID+"/answer", answerRequest{
			Key: sug.Key, Accept: verdict(sug.Question, sug.NewCoverage),
		}, &ans); status != http.StatusOK {
			t.Fatalf("v1 answer: status %d", status)
		}
	}

	// Drive the same sequence via v2.
	var st darwin.Status
	if status := doJSON(t, ts, "POST", "/v2/labelers", darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: steps, Seed: 77,
	}, &st); status != http.StatusCreated {
		t.Fatalf("v2 create: status %d", status)
	}
	for {
		var sug darwin.Suggestion
		status := doJSON(t, ts, "GET", "/v2/labelers/"+st.ID+"/suggestion", nil, &sug)
		if status == http.StatusConflict {
			break // budget_exhausted
		}
		if status != http.StatusOK {
			t.Fatalf("v2 suggestion: status %d", status)
		}
		body := map[string]any{"answers": []darwin.Answer{{Key: sug.Key, Accept: verdict(sug.Question, sug.NewCoverage)}}}
		var out json.RawMessage
		if status := doJSON(t, ts, "POST", "/v2/labelers/"+st.ID+"/answers", body, &out); status != http.StatusOK {
			t.Fatalf("v2 answers: status %d: %s", status, out)
		}
	}

	rawV1 := rawBody(t, ts, "/v2/labelers/"+created.ID+"/report")
	rawV2 := rawBody(t, ts, "/v2/labelers/"+st.ID+"/report")
	if !bytes.Equal(rawV1, rawV2) {
		t.Errorf("reports differ between v1- and v2-driven runs:\nv1: %s\nv2: %s", rawV1, rawV2)
	}
	// Sanity: the run did real work.
	var rep darwin.Report
	if err := json.Unmarshal(rawV1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Questions == 0 || rep.Positives == 0 {
		t.Errorf("equivalence run did no work: %+v", rep)
	}
}

func rawBody(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// --- workspace-backed labelers over /v2 ---

// TestV2WorkspaceLabelers exercises the unified surface: two annotators as
// two labelers over one shared workspace, disjoint suggestions, shared
// report, delete = detach (workspace survives).
func TestV2WorkspaceLabelers(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var alice darwin.Status
	if status := doJSON(t, ts, "POST", "/v2/labelers", darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{"best way to get to"}, Budget: 10, Seed: 9,
	}, &alice); status != http.StatusCreated {
		t.Fatalf("create alice: status %d", status)
	}
	if alice.Workspace == "" || alice.Mode != darwin.ModeWorkspace {
		t.Fatalf("alice status %+v lacks workspace identity", alice)
	}
	var bob darwin.Status
	if status := doJSON(t, ts, "POST", "/v2/labelers", darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Workspace: alice.Workspace, Annotator: "bob",
	}, &bob); status != http.StatusCreated {
		t.Fatalf("create bob: status %d", status)
	}
	if bob.Workspace != alice.Workspace {
		t.Fatalf("bob joined workspace %q, want %q", bob.Workspace, alice.Workspace)
	}

	var sugA, sugB darwin.Suggestion
	if status := doJSON(t, ts, "GET", "/v2/labelers/"+alice.ID+"/suggestion", nil, &sugA); status != http.StatusOK {
		t.Fatalf("alice suggestion: status %d", status)
	}
	if status := doJSON(t, ts, "GET", "/v2/labelers/"+bob.ID+"/suggestion", nil, &sugB); status != http.StatusOK {
		t.Fatalf("bob suggestion: status %d", status)
	}
	if sugA.Key == sugB.Key {
		t.Errorf("concurrent annotators saw the same candidate %q", sugA.Key)
	}
	var out json.RawMessage
	if status := doJSON(t, ts, "POST", "/v2/labelers/"+alice.ID+"/answers",
		map[string]any{"answers": []darwin.Answer{{Key: sugA.Key, Accept: true}}}, &out); status != http.StatusOK {
		t.Fatalf("alice answer: status %d: %s", status, out)
	}

	// Both labelers report the same shared state, tagged with annotators.
	var repA, repB darwin.Report
	if status := doJSON(t, ts, "GET", "/v2/labelers/"+alice.ID+"/report", nil, &repA); status != http.StatusOK {
		t.Fatalf("alice report: status %d", status)
	}
	if status := doJSON(t, ts, "GET", "/v2/labelers/"+bob.ID+"/report", nil, &repB); status != http.StatusOK {
		t.Fatalf("bob report: status %d", status)
	}
	if repA.Questions != repB.Questions || repA.Positives != repB.Positives {
		t.Errorf("shared reports diverge: alice %+v bob %+v", repA, repB)
	}
	if repA.Mode != darwin.ModeWorkspace || repA.Classifier == nil {
		t.Errorf("workspace report %+v lacks mode/classifier", repA)
	}
	if len(repA.History) != 1 || repA.History[0].Annotator != "alice" {
		t.Errorf("history not annotator-tagged: %+v", repA.History)
	}

	// Deleting bob's labeler detaches him; the workspace (and alice) live on.
	if status := doJSON(t, ts, "DELETE", "/v2/labelers/"+bob.ID, nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete bob: status %d", status)
	}
	if status := doJSON(t, ts, "GET", "/v2/labelers/"+bob.ID, nil, nil); status != http.StatusNotFound {
		t.Errorf("bob's labeler still resolves after delete: status %d", status)
	}
	if status := doJSON(t, ts, "GET", "/v2/labelers/"+alice.ID+"/suggestion", nil, &sugA); status != http.StatusOK {
		t.Errorf("alice broken after bob detached: status %d", status)
	}
	if srv.Workspaces().Len() != 1 {
		t.Errorf("workspace evicted by labeler delete: %d live", srv.Workspaces().Len())
	}
}

// --- pagination ---

func TestV2ListPagination(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := darwin.NewClient(ts.URL, "")

	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		lab, err := client.NewLabeler(t.Context(), darwin.CreateOptions{
			Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: 5, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		want[lab.ID()] = true
	}
	got := map[string]bool{}
	cursor := ""
	pages := 0
	for {
		page, err := client.ListLabelers(t.Context(), cursor, 2)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(page.Labelers) > 2 {
			t.Fatalf("page of %d items exceeds limit 2", len(page.Labelers))
		}
		for _, st := range page.Labelers {
			if got[st.ID] {
				t.Fatalf("labeler %s appeared on two pages", st.ID)
			}
			got[st.ID] = true
			if st.Dataset != "directions" || st.Budget != 5 {
				t.Errorf("listed status %+v is wrong", st)
			}
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages < 3 {
		t.Errorf("5 labelers at limit 2 took %d pages, want >= 3", pages)
	}
	if len(got) != len(want) {
		t.Errorf("listing returned %d labelers, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Errorf("labeler %s missing from the listing", id)
		}
	}

	datasets, err := client.ListDatasets(t.Context(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(datasets.Datasets) != 1 || datasets.Datasets[0] != "directions" {
		t.Errorf("datasets = %v, want [directions]", datasets.Datasets)
	}
}

// TestV2BatchAnswersPartialFailure pins the fail-fast wire contract: a batch
// that conflicts mid-way reports the applied prefix and an embedded typed
// error envelope in a 200 response.
func TestV2BatchAnswersPartialFailure(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var st darwin.Status
	if status := doJSON(t, ts, "POST", "/v2/labelers", darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: 6, Seed: 3,
	}, &st); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	body := map[string]any{"answers": []darwin.Answer{
		{Accept: false}, {Accept: false}, {Key: "tokensregex:never matches", Accept: true},
	}}
	var resp struct {
		Applied int                   `json:"applied"`
		Records []darwin.RuleRecord   `json:"records"`
		Error   *darwin.ErrorEnvelope `json:"error"`
	}
	if status := doJSON(t, ts, "POST", "/v2/labelers/"+st.ID+"/answers", body, &resp); status != http.StatusOK {
		t.Fatalf("partial batch: status %d", status)
	}
	if resp.Applied != 2 || len(resp.Records) != 2 {
		t.Errorf("applied %d records %d, want 2 and 2", resp.Applied, len(resp.Records))
	}
	if resp.Error == nil || resp.Error.Code != darwin.CodeConflict {
		t.Errorf("embedded error %+v, want code %q", resp.Error, darwin.CodeConflict)
	}
	// The two applied rejects are durable: the report sees questions=2.
	var rep darwin.Report
	if status := doJSON(t, ts, "GET", "/v2/labelers/"+st.ID+"/report", nil, &rep); status != http.StatusOK {
		t.Fatalf("report: status %d", status)
	}
	if rep.Questions != 2 {
		t.Errorf("questions after partial batch %d, want 2", rep.Questions)
	}
}

// TestV2WorkspaceLabelerOrphanedByEviction pins the registry-pruning fix: a
// workspace-backed labeler whose workspace was evicted resolves as 404 and
// disappears from the listing instead of leaking a registry entry.
func TestV2WorkspaceLabelerOrphanedByEviction(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var st darwin.Status
	if status := doJSON(t, ts, "POST", "/v2/labelers", darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{"best way to get to"}, Budget: 10, Seed: 4,
	}, &st); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	if existed, err := srv.Workspaces().Evict(st.Workspace, "test"); !existed || err != nil {
		t.Fatalf("evict failed: existed=%v err=%v", existed, err)
	}
	var env darwin.ErrorEnvelope
	if status := doJSON(t, ts, "GET", "/v2/labelers/"+st.ID, nil, &env); status != http.StatusNotFound {
		t.Fatalf("orphaned labeler: status %d, want 404", status)
	}
	if env.Code != darwin.CodeNotFound {
		t.Errorf("orphaned labeler envelope code %q, want %q", env.Code, darwin.CodeNotFound)
	}
	var page darwin.LabelerPage
	if status := doJSON(t, ts, "GET", "/v2/labelers", nil, &page); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	for _, l := range page.Labelers {
		if l.ID == st.ID {
			t.Errorf("orphaned labeler %s still listed", st.ID)
		}
	}
}

// TestV2AttachmentResumesAcrossRestart pins the durable-attachment-id
// bugfix: a workspace-attachment labeler id is derived deterministically
// from (workspace, annotator) and the registry is rebuilt from the journal,
// so a remote client resumes the exact labeler id it held before a darwind
// restart (pre-fix the id was a random per-create token living only in
// process memory, and this test 404ed after the restart).
func TestV2AttachmentResumesAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	srv1, _ := newTestServer(t, Config{JournalPath: path})
	ts1 := httptest.NewServer(srv1)

	var st darwin.Status
	if status := doJSON(t, ts1, http.MethodPost, "/v2/labelers", darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{"best way to get to"}, Budget: 12, Seed: 3,
	}, &st); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	var sug darwin.Suggestion
	if status := doJSON(t, ts1, http.MethodGet, "/v2/labelers/"+st.ID+"/suggestion", nil, &sug); status != http.StatusOK {
		t.Fatalf("suggestion: status %d", status)
	}
	if status := doJSON(t, ts1, http.MethodPost, "/v2/labelers/"+st.ID+"/answers",
		map[string]any{"answers": []darwin.Answer{{Key: sug.Key, Accept: true}}}, nil); status != http.StatusOK {
		t.Fatalf("answer: status %d", status)
	}
	var before darwin.Report
	if status := doJSON(t, ts1, http.MethodGet, "/v2/labelers/"+st.ID+"/report", nil, &before); status != http.StatusOK {
		t.Fatalf("report: status %d", status)
	}
	ts1.Close()
	if err := srv1.Workspaces().Sync(); err != nil {
		t.Fatal(err)
	}

	srv2, _ := newTestServer(t, Config{JournalPath: path})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	// The same labeler id resolves on the restarted server.
	var resumed darwin.Status
	if status := doJSON(t, ts2, http.MethodGet, "/v2/labelers/"+st.ID, nil, &resumed); status != http.StatusOK {
		t.Fatalf("status after restart: %d (labeler id did not survive)", status)
	}
	if resumed.Workspace != st.Workspace || resumed.Annotator != "alice" || resumed.Questions != 1 {
		t.Fatalf("resumed status %+v does not match pre-restart identity %+v", resumed, st)
	}
	var after darwin.Report
	if status := doJSON(t, ts2, http.MethodGet, "/v2/labelers/"+st.ID+"/report", nil, &after); status != http.StatusOK {
		t.Fatalf("report after restart: status %d", status)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("report changed across restart")
	}
	// The resumed labeler keeps stepping, and DELETE detaches as usual.
	if status := doJSON(t, ts2, http.MethodGet, "/v2/labelers/"+st.ID+"/suggestion", nil, &sug); status != http.StatusOK {
		t.Fatalf("suggestion after restart: status %d", status)
	}
	if status := doJSON(t, ts2, http.MethodDelete, "/v2/labelers/"+st.ID, nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete after restart: status %d", status)
	}
	if status := doJSON(t, ts2, http.MethodGet, "/v2/labelers/"+st.ID, nil, nil); status != http.StatusNotFound {
		t.Fatalf("deleted labeler still resolves: status %d", status)
	}
}
