// Live-ingestion errors are served as the uniform darwin envelope.
//
//darwin:errenvelope
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/workspace"
	"repro/pkg/darwin"
)

// This file is the /v2 live-ingestion surface: POST a JSONL batch of
// sentences into a served dataset's corpus. The batch is journaled durably
// before the response (an acknowledged batch survives a crash and replicates
// to the dataset's follower), and the engine extends its index incrementally
// — live labelers see the new sentences on their next suggestion without a
// rebuild. The generic handler sits over Backend like the rest of /v2, so
// the router serves the same route by forwarding to the dataset's primary.

// Ingestion telemetry: batch rate and size say how fast corpora grow, the
// latency histogram is the durability + indexing tax per batch, and the
// engine gauges track what the growth does to memory (corpus length per
// dataset, coverage-container mix across all engines).
var (
	ingestBatches = obs.Default().Counter("darwin_ingest_batches_total",
		"Sentence batches ingested into live corpora.")
	ingestSentences = obs.Default().Counter("darwin_ingest_sentences_total",
		"Sentences ingested into live corpora.")
	ingestDurations = obs.Default().Histogram("darwin_ingest_duration_seconds",
		"Latency of one ingest batch (validate + index + journal fsync).",
		obs.LatencyBuckets)
	corpusSentences = obs.Default().GaugeVec("darwin_engine_corpus_sentences",
		"Live corpus length by dataset.", "dataset")
	bitsetContainers = obs.Default().GaugeVec("darwin_bitset_containers",
		"Index per-node coverage containers by representation (array, bitmap, dense), across all engines.",
		"kind")
)

// updateEngineGauges refreshes the corpus-length and coverage-container
// gauges from every served engine. Called at startup and after each ingest
// (the only times they change).
func (s *Server) updateEngineGauges() {
	arrays, bitmaps, dense := 0, 0, 0
	for name, d := range s.datasets {
		corpusSentences.With(name).Set(float64(d.Engine.CorpusLen()))
		a, b, dn := d.Engine.ContainerStats()
		arrays += a
		bitmaps += b
		dense += dn
	}
	bitsetContainers.With("array").Set(float64(arrays))
	bitsetContainers.With("bitmap").Set(float64(bitmaps))
	bitsetContainers.With("dense").Set(float64(dense))
}

// handleV2Ingest decodes the JSONL body and appends it through the Backend.
// The 200 is sent only after IngestSentences has journaled the batch.
//
//darwin:mutating-handler
func handleV2Ingest(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		batch, err := ingest.DecodeJSONL(r.Body, ingest.Limits{})
		if err != nil {
			writeV2Error(w, fmt.Errorf("%w: %v", darwin.ErrInvalid, err))
			return
		}
		res, err := b.IngestSentences(r.Context(), r.PathValue("dataset"), batch)
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// IngestSentences implements Backend: the batch goes through the workspace
// manager so the journal records it in apply order relative to every other
// durable event.
func (s *Server) IngestSentences(ctx context.Context, dataset string, batch []ingest.Sentence) (darwin.IngestResult, error) {
	if _, ok := s.datasets[dataset]; !ok {
		return darwin.IngestResult{}, fmt.Errorf("%w: unknown dataset %q (have %v)", darwin.ErrNotFound, dataset, s.DatasetNames())
	}
	if err := ingest.ValidateBatch(batch, ingest.Limits{}); err != nil {
		return darwin.IngestResult{}, fmt.Errorf("%w: %v", darwin.ErrInvalid, err)
	}
	start := time.Now()
	from, to, err := s.mgr.Ingest(dataset, batch)
	if err != nil {
		if errors.Is(err, workspace.ErrJournal) {
			// The sentences may be applied in memory but are not durable;
			// the client must treat the batch as unacknowledged.
			return darwin.IngestResult{}, fmt.Errorf("%w: %v", darwin.ErrUnavailable, err)
		}
		return darwin.IngestResult{}, fmt.Errorf("%w: %v", darwin.ErrInvalid, err)
	}
	ingestDurations.ObserveSince(start)
	ingestBatches.Inc()
	ingestSentences.Add(uint64(to - from))
	s.updateEngineGauges()
	return darwin.IngestResult{Dataset: dataset, From: from, Ingested: to - from, CorpusLen: to}, nil
}
