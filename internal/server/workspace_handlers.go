package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/workspace"
	"repro/pkg/darwin"
)

// --- workspace wire format ---

type wsCreateRequest struct {
	Dataset         string   `json:"dataset"`
	SeedRules       []string `json:"seed_rules,omitempty"`
	SeedPositiveIDs []int    `json:"seed_positive_ids,omitempty"`
	Budget          int      `json:"budget,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
}

type wsCreateResponse struct {
	ID        string           `json:"id"`
	Dataset   string           `json:"dataset"`
	Budget    int              `json:"budget"`
	Positives int              `json:"positives"`
	SeedRules []ruleRecordJSON `json:"seed_rules,omitempty"`
}

type wsAttachRequest struct {
	Annotator string `json:"annotator"`
}

type wsAnswerRequest struct {
	Annotator string `json:"annotator"`
	Key       string `json:"key"`
	Accept    bool   `json:"accept"`
}

type wsAnswerResponse struct {
	Record     wsRecordJSON `json:"record"`
	Done       bool         `json:"done"`
	BudgetLeft int          `json:"budget_left"`
	Positives  int          `json:"positives"`
}

type wsRecordJSON struct {
	ruleRecordJSON
	Annotator string `json:"annotator,omitempty"`
}

type wsSuggestResponse struct {
	Done        bool         `json:"done"`
	Question    int          `json:"question"`
	BudgetLeft  int          `json:"budget_left"`
	Key         string       `json:"key,omitempty"`
	Rule        string       `json:"rule,omitempty"`
	Coverage    int          `json:"coverage"`
	NewCoverage int          `json:"new_coverage"`
	Benefit     float64      `json:"benefit"`
	AvgBenefit  float64      `json:"avg_benefit"`
	Samples     []sampleJSON `json:"samples,omitempty"`
}

type wsAnnotatorJSON struct {
	Name       string `json:"name"`
	Questions  int    `json:"questions"`
	Accepts    int    `json:"accepts"`
	PendingKey string `json:"pending_key,omitempty"`
}

type wsClassifierJSON struct {
	Trained            bool    `json:"trained"`
	Retrains           int     `json:"retrains"`
	MeanScore          float64 `json:"mean_score"`
	PredictedPositives int     `json:"predicted_positives"`
}

// wsReportResponse carries only state that is deterministic under replay
// (no process-local counters), so clients may compare reports across
// restarts byte for byte.
type wsReportResponse struct {
	ID          string            `json:"id"`
	Dataset     string            `json:"dataset"`
	Budget      int               `json:"budget"`
	Questions   int               `json:"questions"`
	Done        bool              `json:"done"`
	Positives   int               `json:"positives"`
	PositiveIDs []int             `json:"positive_ids"`
	Accepted    []wsRecordJSON    `json:"accepted"`
	History     []wsRecordJSON    `json:"history"`
	Annotators  []wsAnnotatorJSON `json:"annotators"`
	Classifier  wsClassifierJSON  `json:"classifier"`
	EventSeq    uint64            `json:"event_seq"`
}

func wsRecord(rec darwin.RuleRecord) wsRecordJSON {
	annotator := rec.Annotator
	rec.Annotator = ""
	return wsRecordJSON{ruleRecordJSON: recordJSON(rec), Annotator: annotator}
}

// wsCoreRecord renders a workspace-layer record in the v1 wire shape.
func wsCoreRecord(rec workspace.Record) wsRecordJSON {
	return wsRecordJSON{
		ruleRecordJSON: ruleRecordJSON{
			Question:       rec.Question,
			Key:            rec.Key,
			Rule:           rec.Rule,
			Coverage:       rec.Coverage,
			Accepted:       rec.Accepted,
			AddedIDs:       rec.AddedIDs,
			PositivesAfter: rec.PositivesAfter,
		},
		Annotator: rec.Annotator,
	}
}

// wsError maps workspace errors to HTTP statuses.
func wsError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, workspace.ErrUnknownWorkspace), errors.Is(err, workspace.ErrUnknownAnnotator):
		status = http.StatusNotFound
	case errors.Is(err, workspace.ErrDuplicateAnnotator), errors.Is(err, workspace.ErrNoPending), errors.Is(err, workspace.ErrKeyMismatch):
		status = http.StatusConflict
	case errors.Is(err, workspace.ErrJournal):
		status = http.StatusServiceUnavailable
	}
	writeError(w, status, "%v", err)
}

// --- workspace handlers ---

// handleWSCreate acks 201 only after Manager.Create has journaled (and
// synced) the new workspace.
//
//darwin:mutating-handler
func (s *Server) handleWSCreate(w http.ResponseWriter, r *http.Request) {
	var req wsCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if _, ok := s.datasets[req.Dataset]; !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q (have %v)", req.Dataset, s.DatasetNames())
		return
	}
	if len(req.SeedRules) > s.cfg.MaxSeedRules {
		writeError(w, http.StatusBadRequest, "too many seed rules (%d > %d)", len(req.SeedRules), s.cfg.MaxSeedRules)
		return
	}
	budget := req.Budget
	if budget <= 0 {
		budget = s.cfg.DefaultBudget
	}
	ws, err := s.mgr.Create(req.Dataset, workspace.Options{
		SeedRules:       req.SeedRules,
		SeedPositiveIDs: req.SeedPositiveIDs,
		Budget:          budget,
		Seed:            req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep := ws.Report()
	resp := wsCreateResponse{
		ID:        ws.ID(),
		Dataset:   ws.Dataset(),
		Budget:    ws.Budget(),
		Positives: rep.PositiveCount,
	}
	for _, rec := range rep.Accepted {
		resp.SeedRules = append(resp.SeedRules, wsCoreRecord(rec).ruleRecordJSON)
	}
	writeJSON(w, http.StatusCreated, resp)
}

// handleWSAttach acks 201 only after the attach event is journaled.
//
//darwin:mutating-handler
func (s *Server) handleWSAttach(w http.ResponseWriter, r *http.Request) {
	var req wsAttachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Annotator == "" {
		writeError(w, http.StatusBadRequest, "annotator name is required")
		return
	}
	if err := s.mgr.Attach(r.PathValue("id"), req.Annotator); err != nil {
		wsError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"annotator": req.Annotator})
}

// handleWSDetach acks 204 only after the detach event is journaled.
//
//darwin:mutating-handler
func (s *Server) handleWSDetach(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Detach(r.PathValue("id"), r.PathValue("name")); err != nil {
		wsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWSSuggest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name := r.URL.Query().Get("annotator")
	if name == "" {
		writeError(w, http.StatusBadRequest, "annotator query parameter is required")
		return
	}
	lab, err := darwin.BindWorkspace(s.mgr, id, name)
	if err != nil {
		writeV1Error(w, err)
		return
	}
	sug, err := lab.Suggest(r.Context())
	if err != nil {
		if errors.Is(err, darwin.ErrBudgetExhausted) {
			st, _ := lab.Status(r.Context())
			writeJSON(w, http.StatusOK, wsSuggestResponse{Done: true, BudgetLeft: st.Budget - st.Questions})
			return
		}
		writeV1Error(w, err)
		return
	}
	// Question/BudgetLeft were fixed under the workspace lock at assignment
	// time, counting outstanding assignments, so concurrent annotators see
	// distinct question numbers.
	writeJSON(w, http.StatusOK, wsSuggestResponse{
		Question:    sug.Question,
		BudgetLeft:  sug.BudgetLeft,
		Key:         sug.Key,
		Rule:        sug.Rule,
		Coverage:    sug.Coverage,
		NewCoverage: sug.NewCoverage,
		Benefit:     sug.Benefit,
		AvgBenefit:  sug.AvgBenefit,
		Samples:     samplesJSON(sug.Samples),
	})
}

// handleWSAnswer acks 200 only after the applied verdict is journaled.
//
//darwin:mutating-handler
func (s *Server) handleWSAnswer(w http.ResponseWriter, r *http.Request) {
	var req wsAnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Key == "" {
		// v1 never supported blind answers; an empty key is a protocol error.
		writeError(w, http.StatusConflict, "answer key is required")
		return
	}
	id := r.PathValue("id")
	ws, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", id)
		return
	}
	lab, err := darwin.BindWorkspace(s.mgr, id, req.Annotator)
	if err != nil {
		writeV1Error(w, err)
		return
	}
	recs, err := lab.AnswerBatch(r.Context(), []darwin.Answer{{Key: req.Key, Accept: req.Accept}})
	if err != nil {
		writeV1Error(w, err)
		return
	}
	// Derive done/budget from the answered record itself (rec.Question is
	// the question number this answer was committed as), not from a second
	// unsynchronized report read.
	rec := recs[0]
	budget := ws.Budget()
	writeJSON(w, http.StatusOK, wsAnswerResponse{
		Record:     wsRecord(rec),
		Done:       rec.Question >= budget,
		BudgetLeft: budget - rec.Question,
		Positives:  rec.PositivesAfter,
	})
}

func (s *Server) handleWSReport(w http.ResponseWriter, r *http.Request) {
	ws, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", r.PathValue("id"))
		return
	}
	rep := ws.Report()
	resp := wsReportResponse{
		ID:          rep.ID,
		Dataset:     rep.Dataset,
		Budget:      rep.Budget,
		Questions:   rep.Questions,
		Done:        rep.Done,
		Positives:   rep.PositiveCount,
		PositiveIDs: rep.Positives,
		Accepted:    make([]wsRecordJSON, 0, len(rep.Accepted)),
		History:     make([]wsRecordJSON, 0, len(rep.History)),
		Classifier:  wsClassifierJSON(rep.Classifier),
		EventSeq:    rep.EventSeq,
	}
	for _, rec := range rep.Accepted {
		resp.Accepted = append(resp.Accepted, wsCoreRecord(rec))
	}
	for _, rec := range rep.History {
		resp.History = append(resp.History, wsCoreRecord(rec))
	}
	for _, an := range rep.Annotators {
		resp.Annotators = append(resp.Annotators, wsAnnotatorJSON{
			Name:       an.Name,
			Questions:  an.Questions,
			Accepts:    an.Accepts,
			PendingKey: an.PendingKey,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWSExport(w http.ResponseWriter, r *http.Request) {
	ws, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", r.PathValue("id"))
		return
	}
	d := s.datasets[ws.Dataset()]
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := d.Engine.CorpusView().WriteLabeledJSONL(w, ws.PositivesMap()); err != nil {
		// Headers are already sent; the truncated body is all we can signal.
		return
	}
}

// handleWSDelete evicts a workspace. The 204 is only sent once the eviction
// record is journaled AND fsynced: acknowledging a delete that a crash could
// resurrect on replay would violate the durability contract.
//
//darwin:mutating-handler
func (s *Server) handleWSDelete(w http.ResponseWriter, r *http.Request) {
	existed, err := s.mgr.Evict(r.PathValue("id"), "deleted")
	if !existed {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", r.PathValue("id"))
		return
	}
	if err != nil {
		wsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
