package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/workspace"
)

// --- workspace wire format ---

type wsCreateRequest struct {
	Dataset         string   `json:"dataset"`
	SeedRules       []string `json:"seed_rules,omitempty"`
	SeedPositiveIDs []int    `json:"seed_positive_ids,omitempty"`
	Budget          int      `json:"budget,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
}

type wsCreateResponse struct {
	ID        string           `json:"id"`
	Dataset   string           `json:"dataset"`
	Budget    int              `json:"budget"`
	Positives int              `json:"positives"`
	SeedRules []ruleRecordJSON `json:"seed_rules,omitempty"`
}

type wsAttachRequest struct {
	Annotator string `json:"annotator"`
}

type wsAnswerRequest struct {
	Annotator string `json:"annotator"`
	Key       string `json:"key"`
	Accept    bool   `json:"accept"`
}

type wsAnswerResponse struct {
	Record     wsRecordJSON `json:"record"`
	Done       bool         `json:"done"`
	BudgetLeft int          `json:"budget_left"`
	Positives  int          `json:"positives"`
}

type wsRecordJSON struct {
	ruleRecordJSON
	Annotator string `json:"annotator,omitempty"`
}

type wsSuggestResponse struct {
	Done        bool         `json:"done"`
	Question    int          `json:"question"`
	BudgetLeft  int          `json:"budget_left"`
	Key         string       `json:"key,omitempty"`
	Rule        string       `json:"rule,omitempty"`
	Coverage    int          `json:"coverage"`
	NewCoverage int          `json:"new_coverage"`
	Benefit     float64      `json:"benefit"`
	AvgBenefit  float64      `json:"avg_benefit"`
	Samples     []sampleJSON `json:"samples,omitempty"`
}

type wsAnnotatorJSON struct {
	Name       string `json:"name"`
	Questions  int    `json:"questions"`
	Accepts    int    `json:"accepts"`
	PendingKey string `json:"pending_key,omitempty"`
}

type wsClassifierJSON struct {
	Retrains           int     `json:"retrains"`
	MeanScore          float64 `json:"mean_score"`
	PredictedPositives int     `json:"predicted_positives"`
}

// wsReportResponse carries only state that is deterministic under replay
// (no process-local counters), so clients may compare reports across
// restarts byte for byte.
type wsReportResponse struct {
	ID          string            `json:"id"`
	Dataset     string            `json:"dataset"`
	Budget      int               `json:"budget"`
	Questions   int               `json:"questions"`
	Done        bool              `json:"done"`
	Positives   int               `json:"positives"`
	PositiveIDs []int             `json:"positive_ids"`
	Accepted    []wsRecordJSON    `json:"accepted"`
	History     []wsRecordJSON    `json:"history"`
	Annotators  []wsAnnotatorJSON `json:"annotators"`
	Classifier  wsClassifierJSON  `json:"classifier"`
	EventSeq    uint64            `json:"event_seq"`
}

func wsRecord(rec workspace.Record) wsRecordJSON {
	return wsRecordJSON{ruleRecordJSON: recordJSON(rec.RuleRecord), Annotator: rec.Annotator}
}

// wsError maps workspace errors to HTTP statuses.
func wsError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, workspace.ErrUnknownWorkspace), errors.Is(err, workspace.ErrUnknownAnnotator):
		status = http.StatusNotFound
	case errors.Is(err, workspace.ErrDuplicateAnnotator), errors.Is(err, workspace.ErrNoPending), errors.Is(err, workspace.ErrKeyMismatch):
		status = http.StatusConflict
	case errors.Is(err, workspace.ErrJournal):
		status = http.StatusServiceUnavailable
	}
	writeError(w, status, "%v", err)
}

// --- workspace handlers ---

func (s *Server) handleWSCreate(w http.ResponseWriter, r *http.Request) {
	var req wsCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if _, ok := s.datasets[req.Dataset]; !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q (have %v)", req.Dataset, s.DatasetNames())
		return
	}
	if len(req.SeedRules) > s.cfg.MaxSeedRules {
		writeError(w, http.StatusBadRequest, "too many seed rules (%d > %d)", len(req.SeedRules), s.cfg.MaxSeedRules)
		return
	}
	budget := req.Budget
	if budget <= 0 {
		budget = s.cfg.DefaultBudget
	}
	ws, err := s.mgr.Create(req.Dataset, workspace.Options{
		SeedRules:       req.SeedRules,
		SeedPositiveIDs: req.SeedPositiveIDs,
		Budget:          budget,
		Seed:            req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep := ws.Report()
	resp := wsCreateResponse{
		ID:        ws.ID(),
		Dataset:   ws.Dataset(),
		Budget:    ws.Budget(),
		Positives: rep.PositiveCount,
	}
	for _, rec := range rep.Accepted {
		resp.SeedRules = append(resp.SeedRules, recordJSON(rec.RuleRecord))
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleWSAttach(w http.ResponseWriter, r *http.Request) {
	var req wsAttachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Annotator == "" {
		writeError(w, http.StatusBadRequest, "annotator name is required")
		return
	}
	if err := s.mgr.Attach(r.PathValue("id"), req.Annotator); err != nil {
		wsError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"annotator": req.Annotator})
}

func (s *Server) handleWSDetach(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Detach(r.PathValue("id"), r.PathValue("name")); err != nil {
		wsError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWSSuggest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name := r.URL.Query().Get("annotator")
	if name == "" {
		writeError(w, http.StatusBadRequest, "annotator query parameter is required")
		return
	}
	ws, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", id)
		return
	}
	sug, more, err := s.mgr.Suggest(id, name)
	if err != nil {
		wsError(w, err)
		return
	}
	if !more {
		rep := ws.Report()
		writeJSON(w, http.StatusOK, wsSuggestResponse{Done: true, BudgetLeft: rep.Budget - rep.Questions})
		return
	}
	// Question/BudgetLeft were fixed under the workspace lock at assignment
	// time, counting outstanding assignments, so concurrent annotators see
	// distinct question numbers.
	resp := wsSuggestResponse{
		Question:    sug.Question,
		BudgetLeft:  sug.BudgetLeft,
		Key:         sug.Key,
		Rule:        sug.Rule,
		Coverage:    sug.Coverage,
		NewCoverage: sug.NewCoverage,
		Benefit:     sug.Benefit,
		AvgBenefit:  sug.AvgBenefit,
	}
	corp := s.datasets[ws.Dataset()].Engine.Corpus()
	for _, sid := range sug.SampleIDs {
		if sent := corp.Sentence(sid); sent != nil {
			resp.Samples = append(resp.Samples, sampleJSON{ID: sid, Text: sent.Text})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWSAnswer(w http.ResponseWriter, r *http.Request) {
	var req wsAnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	id := r.PathValue("id")
	ws, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", id)
		return
	}
	rec, err := s.mgr.Answer(id, req.Annotator, req.Key, req.Accept)
	if err != nil {
		wsError(w, err)
		return
	}
	// Derive done/budget from the answered record itself (rec.Question is
	// the question number this answer was committed as), not from a second
	// unsynchronized report read.
	budget := ws.Budget()
	writeJSON(w, http.StatusOK, wsAnswerResponse{
		Record:     wsRecord(rec),
		Done:       rec.Question >= budget,
		BudgetLeft: budget - rec.Question,
		Positives:  rec.PositivesAfter,
	})
}

func (s *Server) handleWSReport(w http.ResponseWriter, r *http.Request) {
	ws, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", r.PathValue("id"))
		return
	}
	rep := ws.Report()
	resp := wsReportResponse{
		ID:          rep.ID,
		Dataset:     rep.Dataset,
		Budget:      rep.Budget,
		Questions:   rep.Questions,
		Done:        rep.Done,
		Positives:   rep.PositiveCount,
		PositiveIDs: rep.Positives,
		Accepted:    make([]wsRecordJSON, 0, len(rep.Accepted)),
		History:     make([]wsRecordJSON, 0, len(rep.History)),
		Classifier:  wsClassifierJSON(rep.Classifier),
		EventSeq:    rep.EventSeq,
	}
	for _, rec := range rep.Accepted {
		resp.Accepted = append(resp.Accepted, wsRecord(rec))
	}
	for _, rec := range rep.History {
		resp.History = append(resp.History, wsRecord(rec))
	}
	for _, an := range rep.Annotators {
		resp.Annotators = append(resp.Annotators, wsAnnotatorJSON{
			Name:       an.Name,
			Questions:  an.Questions,
			Accepts:    an.Accepts,
			PendingKey: an.PendingKey,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWSExport(w http.ResponseWriter, r *http.Request) {
	ws, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", r.PathValue("id"))
		return
	}
	d := s.datasets[ws.Dataset()]
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := d.Engine.Corpus().WriteLabeledJSONL(w, ws.PositivesMap()); err != nil {
		// Headers are already sent; the truncated body is all we can signal.
		return
	}
}

func (s *Server) handleWSDelete(w http.ResponseWriter, r *http.Request) {
	if !s.mgr.Evict(r.PathValue("id"), "deleted") {
		writeError(w, http.StatusNotFound, "unknown or expired workspace %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
