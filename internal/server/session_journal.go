package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"

	"repro/internal/journal"
	"repro/pkg/darwin"
)

// Session journaling (Config.JournalSessions): plain solo sessions get the
// same log-then-replay durability workspaces have, in a separate
// "<JournalPath>.sessions" log so workspace compaction never rewrites
// session history. A session's state is a pure function of (engine, create
// options, answer sequence) — suggestions are deterministic per seed — so
// replaying create + answers through the ordinary SDK calls reconstructs the
// exact pre-crash labeler. Recovered sessions keep their ids but get fresh
// idle timers; a session whose replay diverges (e.g. the dataset changed
// under it) is dropped with a log line rather than served in a wrong state.
// The log is not replicated: sessions are shard-local by design.

// Session journal event types.
const (
	sessEventCreate = "screate"
	sessEventAnswer = "sanswer"
	sessEventDelete = "sdelete"
)

// sessCompactEvery compacts the session log after this many appends.
const sessCompactEvery = 4096

// sessCreateData is the payload of a screate event: the fully resolved
// create options (server defaults already applied), so replay does not
// depend on the current Config.
type sessCreateData struct {
	SeedRules       []string `json:"seed_rules,omitempty"`
	SeedPositiveIDs []int    `json:"seed_positive_ids,omitempty"`
	Budget          int      `json:"budget,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
}

// sessAnswerData is the payload of a sanswer event: the resolved key of the
// applied answer (blind answers are journaled with the key they resolved
// to, so replay is unambiguous).
type sessAnswerData struct {
	Key    string `json:"key"`
	Accept bool   `json:"accept"`
}

// sessionJournal appends session lifecycle events and keeps the in-memory
// shadow (creates + answers per live session) that compaction rewrites the
// log from.
type sessionJournal struct {
	srv *Server
	w   *journal.Writer

	mu      sync.Mutex
	creates map[string]sessCreateData
	answers map[string][]sessAnswerData
	dataset map[string]string
}

// openSessionJournal opens the session log, replays it into the server's
// session store, and returns the live journal.
func openSessionJournal(path string, s *Server) (*sessionJournal, error) {
	w, events, err := journal.Open(path, journal.Options{})
	if err != nil {
		return nil, err
	}
	sj := &sessionJournal{
		srv:     s,
		w:       w,
		creates: make(map[string]sessCreateData),
		answers: make(map[string][]sessAnswerData),
		dataset: make(map[string]string),
	}
	sj.replay(events)
	return sj, nil
}

// replay reconstructs sessions from the log: apply creates and answers in
// file order, drop deleted sessions, then rebuild each survivor through the
// ordinary SDK calls.
func (sj *sessionJournal) replay(events []journal.Event) {
	var order []string
	for _, ev := range events {
		switch ev.Type {
		case sessEventCreate:
			var data sessCreateData
			if err := json.Unmarshal(ev.Data, &data); err != nil {
				continue
			}
			if _, dup := sj.creates[ev.WS]; !dup {
				order = append(order, ev.WS)
			}
			sj.creates[ev.WS] = data
			sj.dataset[ev.WS] = ev.Dataset
			sj.answers[ev.WS] = nil
		case sessEventAnswer:
			var data sessAnswerData
			if err := json.Unmarshal(ev.Data, &data); err != nil {
				continue
			}
			if _, ok := sj.creates[ev.WS]; ok {
				sj.answers[ev.WS] = append(sj.answers[ev.WS], data)
			}
		case sessEventDelete:
			delete(sj.creates, ev.WS)
			delete(sj.answers, ev.WS)
			delete(sj.dataset, ev.WS)
		}
	}
	ctx := context.Background()
	recovered := 0
	for _, id := range order {
		data, ok := sj.creates[id]
		if !ok {
			continue // deleted later in the log
		}
		if !sj.rebuild(ctx, id, sj.dataset[id], data, sj.answers[id]) {
			delete(sj.creates, id)
			delete(sj.answers, id)
			delete(sj.dataset, id)
			continue
		}
		recovered++
	}
	if recovered > 0 {
		log.Printf("server: recovered %d solo session(s) from the session journal", recovered)
	}
}

// rebuild replays one session: create with the journaled options, then apply
// the answer sequence. Divergence (an answer whose key no longer matches the
// deterministic suggestion stream) drops the session.
func (sj *sessionJournal) rebuild(ctx context.Context, id, dataset string, data sessCreateData, answers []sessAnswerData) bool {
	d, ok := sj.srv.datasets[dataset]
	if !ok {
		log.Printf("server: session %s not recovered: unknown dataset %q", id, dataset)
		return false
	}
	lab, err := darwin.NewSession(d.Engine, d.Name, darwin.Options{
		SeedRules:       data.SeedRules,
		SeedPositiveIDs: data.SeedPositiveIDs,
		Budget:          data.Budget,
		Seed:            data.Seed,
	})
	if err != nil {
		log.Printf("server: session %s not recovered: %v", id, err)
		return false
	}
	for i, ans := range answers {
		// Request the next suggestion the way the live client did, then
		// answer it. The suggestion stream is deterministic per seed, so a
		// key mismatch means the corpus or engine changed under the journal —
		// divergence, not a replay ordering problem.
		sug, err := lab.Suggest(ctx)
		if err == nil && sug.Key != ans.Key {
			err = fmt.Errorf("suggestion diverged: journal answered %s, replay suggested %s", ans.Key, sug.Key)
		}
		if err == nil {
			_, err = lab.AnswerBatch(ctx, []darwin.Answer{{Key: ans.Key, Accept: ans.Accept}})
		}
		if err != nil {
			log.Printf("server: session %s not recovered: replay answer %d (%s): %v", id, i+1, ans.Key, err)
			_ = lab.Close(ctx)
			return false
		}
	}
	sj.srv.store.Restore(id, dataset, lab)
	return true
}

// recordCreate journals a session create with its resolved options.
func (sj *sessionJournal) recordCreate(id, dataset string, data sessCreateData) {
	sj.mu.Lock()
	sj.creates[id] = data
	sj.answers[id] = nil
	sj.dataset[id] = dataset
	sj.mu.Unlock()
	if _, err := sj.w.Append(sessEventCreate, id, dataset, data); err != nil {
		log.Printf("server: session journal: %v", err)
	}
	sj.maybeCompact()
}

// recordAnswers journals the applied records of one answer call (in apply
// order, with resolved keys).
func (sj *sessionJournal) recordAnswers(id string, recs []darwin.RuleRecord) {
	if len(recs) == 0 {
		return
	}
	sj.mu.Lock()
	known := false
	if _, ok := sj.creates[id]; ok {
		known = true
		for _, rec := range recs {
			sj.answers[id] = append(sj.answers[id], sessAnswerData{Key: rec.Key, Accept: rec.Accepted})
		}
	}
	sj.mu.Unlock()
	if !known {
		return
	}
	for _, rec := range recs {
		if _, err := sj.w.Append(sessEventAnswer, id, "", sessAnswerData{Key: rec.Key, Accept: rec.Accepted}); err != nil {
			log.Printf("server: session journal: %v", err)
			return
		}
	}
	sj.maybeCompact()
}

// recordDelete journals a session delete.
func (sj *sessionJournal) recordDelete(id string) {
	sj.mu.Lock()
	_, known := sj.creates[id]
	delete(sj.creates, id)
	delete(sj.answers, id)
	delete(sj.dataset, id)
	sj.mu.Unlock()
	if !known {
		return
	}
	if _, err := sj.w.Append(sessEventDelete, id, "", nil); err != nil {
		log.Printf("server: session journal: %v", err)
	}
	sj.maybeCompact()
}

// maybeCompact rewrites the log from the in-memory shadow once enough
// appends accumulated, keeping only sessions still live in the store (TTL
// eviction is not journaled, so compaction is where expired sessions fall
// out of the log).
func (sj *sessionJournal) maybeCompact() {
	if sj.w.SinceRewrite() < sessCompactEvery {
		return
	}
	sj.mu.Lock()
	var events []journal.Event
	for id, data := range sj.creates {
		if _, live := sj.srv.store.Peek(id); !live {
			continue
		}
		raw, err := json.Marshal(data)
		if err != nil {
			continue
		}
		events = append(events, journal.Event{Type: sessEventCreate, WS: id, Dataset: sj.dataset[id], Data: raw})
		for _, ans := range sj.answers[id] {
			araw, err := json.Marshal(ans)
			if err != nil {
				continue
			}
			events = append(events, journal.Event{Type: sessEventAnswer, WS: id, Data: araw})
		}
	}
	sj.mu.Unlock()
	if err := sj.w.Rewrite(events); err != nil {
		log.Printf("server: session journal compact: %v", err)
	}
}

// Close flushes and closes the session log.
func (sj *sessionJournal) Close() error { return sj.w.Close() }
