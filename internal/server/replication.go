package server

import (
	"encoding/json"
	"log"
	"net/http"

	"repro/internal/replicate"
	"repro/pkg/darwin"
)

// registerReplication wires the replication control surface. The routes are
// always registered — the OpenAPI contract does not depend on flags — but
// respond 503 when the shard runs without a journal (nothing to replicate).
//
//	GET  /v2/replication/status                      roles, fences, stream + standby watermarks
//	PUT  /v2/replication/role                        router-pushed role assignment
//	POST /v2/replication/datasets/{dataset}/events   inbound replication batch (primary → follower)
//	POST /v2/replication/promote                     serve a dataset from the warm standby
func (s *Server) registerReplication() {
	s.handle("GET /v2/replication/status", s.handleReplStatus)
	s.handle("PUT /v2/replication/role", s.handleReplRole)
	s.handle("POST /v2/replication/datasets/{dataset}/events", s.handleReplEvents)
	s.handle("POST /v2/replication/promote", s.handleReplPromote)
}

// replNode returns the replication node, or writes the 503 every replication
// endpoint shares when the shard has no journal.
func (s *Server) replNode(w http.ResponseWriter) (*replicate.Node, bool) {
	if s.repl == nil {
		writeJSON(w, http.StatusServiceUnavailable, replicate.WireError{
			Error:   "unavailable",
			Message: "replication requires a journal (-journal)",
		})
		return nil, false
	}
	return s.repl, true
}

func writeReplError(w http.ResponseWriter, err error) {
	status, we := replicate.WireFor(err)
	writeJSON(w, status, we)
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	node, ok := s.replNode(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, node.Status())
}

func (s *Server) handleReplRole(w http.ResponseWriter, r *http.Request) {
	node, ok := s.replNode(w)
	if !ok {
		return
	}
	var doc replicate.RoleDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		writeJSON(w, http.StatusBadRequest, replicate.WireError{Error: "invalid", Message: "invalid JSON body: " + err.Error()})
		return
	}
	if err := node.SetRole(doc); err != nil {
		writeReplError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleReplEvents(w http.ResponseWriter, r *http.Request) {
	node, ok := s.replNode(w)
	if !ok {
		return
	}
	var b replicate.Batch
	if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
		writeJSON(w, http.StatusBadRequest, replicate.WireError{Error: "invalid", Message: "invalid JSON body: " + err.Error()})
		return
	}
	ack, err := node.ReceiveBatch(r.PathValue("dataset"), b)
	if err != nil {
		writeReplError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	node, ok := s.replNode(w)
	if !ok {
		return
	}
	var req replicate.PromoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, replicate.WireError{Error: "invalid", Message: "invalid JSON body: " + err.Error()})
		return
	}
	resp, err := node.Promote(req)
	if err != nil {
		writeReplError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- registry bridges the replication node calls into ---

// labelersFor derives the registered labeler ids for the given live
// workspaces (status reporting: the router re-homes these after a failover).
func (s *Server) labelersFor(wsIDs []string) []string {
	var out []string
	for _, wsID := range wsIDs {
		ws, ok := s.mgr.Peek(wsID)
		if !ok {
			continue
		}
		for _, name := range ws.Annotators() {
			out = append(out, wsLabelerID(wsID, name))
		}
	}
	return out
}

// adoptLabelers registers one labeler per attachment of freshly adopted
// workspaces (the promotion analogue of rebuildLabelers) and returns the
// labeler ids now served here.
func (s *Server) adoptLabelers(wsIDs []string) []string {
	var out []string
	for _, wsID := range wsIDs {
		ws, ok := s.mgr.Peek(wsID)
		if !ok {
			continue
		}
		for _, name := range ws.Annotators() {
			lab, err := darwin.AdoptWorkspace(s.mgr, wsID, name)
			if err != nil {
				log.Printf("server: promote: attachment %s/%s not re-adopted: %v", wsID, name, err)
				continue
			}
			id := wsLabelerID(wsID, name)
			if err := s.labelers.add(&wsLabeler{id: id, lab: lab}); err != nil {
				log.Printf("server: promote: attachment %s/%s not registered: %v", wsID, name, err)
				continue
			}
			out = append(out, id)
		}
	}
	return out
}

// dropLabelers removes the registry entries of evicted workspaces (the
// demotion path: their state now lives on the promoted primary).
func (s *Server) dropLabelers(wsIDs []string) {
	gone := make(map[string]bool, len(wsIDs))
	for _, id := range wsIDs {
		gone[id] = true
	}
	s.labelers.prune(func(en *wsLabeler) bool { return !gone[en.lab.Workspace()] })
}
