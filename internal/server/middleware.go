package server

import (
	"crypto/subtle"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/pkg/darwin"
)

// middleware wraps the mux with the optional bearer-token check and per-IP
// rate limit. Both are cheap enough to sit in front of every request;
// healthz stays unauthenticated so load balancers can probe it.
func (s *Server) middleware(next http.Handler) http.Handler {
	return Middleware(s.cfg.Token, s.cfg.RatePerSec, s.cfg.RateBurst, next)
}

// Middleware wraps next with the optional bearer-token check (token != "")
// and per-IP rate limit (ratePerSec > 0) — the same chain darwind mounts,
// reused by cmd/darwin-router in front of the router-served /v2 surface.
func Middleware(token string, ratePerSec float64, rateBurst int, next http.Handler) http.Handler {
	h := next
	if token != "" {
		h = requireBearer(token, h)
	}
	if ratePerSec > 0 {
		burst := float64(rateBurst)
		if burst <= 0 {
			burst = 2 * ratePerSec
		}
		h = newIPLimiter(ratePerSec, burst).wrap(h)
	}
	return h
}

// middlewareError writes an error in the shape the request's API version
// expects: the typed /v2 envelope on /v2/* paths, the legacy {"error": msg}
// object elsewhere.
func middlewareError(w http.ResponseWriter, r *http.Request, err error) {
	if strings.HasPrefix(r.URL.Path, "/v2/") {
		writeV2Error(w, err)
		return
	}
	writeError(w, darwin.HTTPStatus(err), "%s", darwin.Envelope(err).Message)
}

// requireBearer enforces "Authorization: Bearer <token>" on /v1/* and /v2/*
// paths with a constant-time comparison.
func requireBearer(token string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") && !strings.HasPrefix(r.URL.Path, "/v2/") {
			next.ServeHTTP(w, r)
			return
		}
		const prefix = "Bearer "
		auth := r.Header.Get("Authorization")
		if !strings.HasPrefix(auth, prefix) ||
			subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(token)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="darwind"`)
			middlewareError(w, r, fmt.Errorf("%w: missing or invalid bearer token", darwin.ErrUnauthorized))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ipLimiter is a per-IP token bucket: each client IP accrues rate tokens
// per second up to burst, and each request costs one token.
type ipLimiter struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	rate    float64
	burst   float64
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the limiter map; when exceeded, replenished (full)
// buckets are pruned — they carry no state a fresh bucket would not.
const maxBuckets = 8192

func newIPLimiter(rate, burst float64) *ipLimiter {
	return &ipLimiter{
		buckets: make(map[string]*bucket),
		rate:    rate,
		burst:   burst,
		now:     time.Now,
	}
}

// allow takes one token from ip's bucket, reporting whether one was
// available.
func (l *ipLimiter) allow(ip string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[ip]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[ip] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops buckets that have fully replenished; if a flood of
// distinct IPs left nothing replenished, it evicts arbitrary buckets down
// to 3/4 capacity — an evicted IP at most re-gains one burst, which is the
// right trade against unbounded memory and O(n) rescans on every insert.
func (l *ipLimiter) pruneLocked(now time.Time) {
	for ip, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, ip)
		}
	}
	if len(l.buckets) >= maxBuckets {
		for ip := range l.buckets {
			delete(l.buckets, ip)
			if len(l.buckets) < maxBuckets*3/4 {
				break
			}
		}
	}
}

func (l *ipLimiter) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ip := r.RemoteAddr
		if host, _, err := net.SplitHostPort(ip); err == nil {
			ip = host
		}
		if !l.allow(ip) {
			w.Header().Set("Retry-After", "1")
			middlewareError(w, r, fmt.Errorf("%w: rate limit exceeded", darwin.ErrRateLimited))
			return
		}
		next.ServeHTTP(w, r)
	})
}
