package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestBearerTokenAuth(t *testing.T) {
	srv, _ := newTestServer(t, Config{Token: "s3cret"})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path, token string) int {
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// healthz stays open for probes.
	if got := get("/healthz", ""); got != http.StatusOK {
		t.Errorf("healthz without token: status %d", got)
	}
	// /v1/* requires the exact token.
	if got := get("/v1/sessions/x/report", ""); got != http.StatusUnauthorized {
		t.Errorf("missing token: status %d, want 401", got)
	}
	if got := get("/v1/sessions/x/report", "wrong"); got != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", got)
	}
	if got := get("/v1/sessions/x/report", "s3cret"); got != http.StatusNotFound {
		t.Errorf("valid token: status %d, want 404 (unknown session, but authorized)", got)
	}
	if got := get("/v1/workspaces/x/report", "s3cret"); got != http.StatusNotFound {
		t.Errorf("valid token on workspaces: status %d, want 404", got)
	}
}

func TestPerIPRateLimit(t *testing.T) {
	srv, _ := newTestServer(t, Config{RatePerSec: 1, RateBurst: 3})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	statuses := map[int]int{}
	for i := 0; i < 6; i++ {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		statuses[resp.StatusCode]++
	}
	if statuses[http.StatusOK] != 3 || statuses[http.StatusTooManyRequests] != 3 {
		t.Fatalf("burst of 3 then 429s expected, got %v", statuses)
	}
}

func TestRateLimitRefill(t *testing.T) {
	l := newIPLimiter(10, 2)
	base := time.Now()
	now := base
	l.now = func() time.Time { return now }
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst of 2 should be allowed")
	}
	if l.allow("a") {
		t.Fatal("third immediate request should be limited")
	}
	// Distinct IPs have distinct buckets.
	if !l.allow("b") {
		t.Fatal("other IP should be unaffected")
	}
	// 100ms at 10 rps refills one token.
	now = base.Add(100 * time.Millisecond)
	if !l.allow("a") {
		t.Fatal("refilled token should be allowed")
	}
	if l.allow("a") {
		t.Fatal("bucket should be empty again")
	}
}
