package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/pkg/darwin"
)

func ingestBatch(n int, prefix string) []ingest.Sentence {
	batch := make([]ingest.Sentence, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, ingest.Sentence{
			Text:  prefix + " best way to get to station " + string(rune('a'+i%26)),
			Label: 1,
		})
	}
	return batch
}

// TestIngestE2E drives POST /v2/datasets/{ds}/sentences through the SDK:
// the corpus grows by exactly the acknowledged range, a second batch stacks
// on the first, and live discovery keeps working over the grown corpus.
func TestIngestE2E(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := darwin.NewClient(ts.URL, "")
	ctx := context.Background()
	boot := c.Len()

	res, err := client.IngestSentences(ctx, "directions", ingestBatch(40, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "directions" || res.From != boot || res.Ingested != 40 || res.CorpusLen != boot+40 {
		t.Fatalf("first batch acknowledged %+v, want from=%d ingested=40", res, boot)
	}
	res, err = client.IngestSentences(ctx, "directions", ingestBatch(25, "beta"))
	if err != nil {
		t.Fatal(err)
	}
	if res.From != boot+40 || res.CorpusLen != boot+65 {
		t.Fatalf("second batch acknowledged %+v, want from=%d", res, boot+40)
	}
	if got := srv.datasets["directions"].Engine.CorpusLen(); got != boot+65 {
		t.Fatalf("engine corpus is %d sentences, want %d", got, boot+65)
	}

	// A labeler created after the growth discovers over the full corpus: a
	// seed rule covering only ingested sentences must resolve coverage.
	lb, err := client.CreateLabeler(ctx, darwin.CreateOptions{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to station"},
		Budget:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lb.Positives < 65 {
		t.Errorf("seed rule over ingested sentences found %d positives, want >= 65", lb.Positives)
	}

	// Error taxonomy: unknown dataset 404, invalid batch 400, empty 400.
	if _, err := client.IngestSentences(ctx, "nope", ingestBatch(1, "x")); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("unknown dataset: %v", err)
	}
	if _, err := client.IngestSentences(ctx, "directions", []ingest.Sentence{{Text: "", Label: 0}}); !errors.Is(err, darwin.ErrInvalid) {
		t.Errorf("empty text: %v", err)
	}
	if _, err := client.IngestSentences(ctx, "directions", nil); !errors.Is(err, darwin.ErrInvalid) {
		t.Errorf("empty batch: %v", err)
	}
	// Malformed JSONL straight at the wire (the SDK cannot produce it).
	resp, err := http.Post(ts.URL+"/v2/datasets/directions/sentences", "application/x-ndjson",
		strings.NewReader("{not json}\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSONL returned %d, want 400", resp.StatusCode)
	}

	// The ingest metric families must appear in a valid exposition now that
	// batches have landed — this is what fleet dashboards scrape.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err := obs.CheckExposition(string(body)); err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}
	for _, series := range []string{
		"darwin_ingest_batches_total",
		"darwin_ingest_sentences_total",
		"darwin_ingest_duration_seconds_bucket",
		`darwin_engine_corpus_sentences{dataset="directions"}`,
		`darwin_bitset_containers{kind="array"}`,
		`darwin_bitset_containers{kind="bitmap"}`,
		`darwin_bitset_containers{kind="dense"}`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}
}
