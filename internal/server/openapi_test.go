package server

import (
	"os"
	"strings"
	"testing"
)

// parseSpecPaths extracts path → set-of-methods from api/openapi.yaml with a
// purpose-built line scanner (the module deliberately has no YAML
// dependency; the spec's paths section is regular enough for this test).
func parseSpecPaths(t *testing.T, raw string) map[string]map[string]bool {
	t.Helper()
	out := make(map[string]map[string]bool)
	inPaths := false
	current := ""
	for _, line := range strings.Split(raw, "\n") {
		trimmed := strings.TrimRight(line, " ")
		if trimmed == "paths:" {
			inPaths = true
			continue
		}
		if !inPaths || trimmed == "" || strings.HasPrefix(strings.TrimSpace(trimmed), "#") {
			continue
		}
		// A new top-level key ends the paths section.
		if !strings.HasPrefix(trimmed, " ") {
			break
		}
		indent := len(trimmed) - len(strings.TrimLeft(trimmed, " "))
		body := strings.TrimSpace(trimmed)
		switch indent {
		case 2: // "  /v2/labelers/{id}:"
			if !strings.HasSuffix(body, ":") || !strings.HasPrefix(body, "/") {
				t.Fatalf("unexpected path line %q", line)
			}
			current = strings.TrimSuffix(body, ":")
			out[current] = make(map[string]bool)
		case 4: // "    get:"
			if current == "" {
				continue
			}
			if key, _, ok := strings.Cut(body, ":"); ok {
				switch key {
				case "get", "post", "put", "delete", "patch", "head", "options":
					out[current][strings.ToUpper(key)] = true
				}
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no paths parsed from api/openapi.yaml")
	}
	return out
}

// TestOpenAPISpecCoversAllRoutes keeps api/openapi.yaml honest: every route
// the server registers must appear in the spec with its method, and the spec
// must not document routes the server does not serve.
func TestOpenAPISpecCoversAllRoutes(t *testing.T) {
	raw, err := os.ReadFile("../../api/openapi.yaml")
	if err != nil {
		t.Fatalf("read spec: %v", err)
	}
	spec := parseSpecPaths(t, string(raw))

	srv, _ := newTestServer(t, Config{})
	registered := make(map[string]map[string]bool)
	for _, route := range srv.Routes() {
		method, pattern, ok := strings.Cut(route, " ")
		if !ok {
			t.Fatalf("route %q is not 'METHOD /pattern'", route)
		}
		if registered[pattern] == nil {
			registered[pattern] = make(map[string]bool)
		}
		registered[pattern][method] = true
	}

	for pattern, methods := range registered {
		specMethods, ok := spec[pattern]
		if !ok {
			t.Errorf("registered route %s is missing from api/openapi.yaml", pattern)
			continue
		}
		for m := range methods {
			if !specMethods[m] {
				t.Errorf("api/openapi.yaml documents %s but not method %s", pattern, m)
			}
		}
	}
	for pattern, methods := range spec {
		regMethods, ok := registered[pattern]
		if !ok {
			t.Errorf("api/openapi.yaml documents %s, which the server does not register", pattern)
			continue
		}
		for m := range methods {
			if !regMethods[m] {
				t.Errorf("api/openapi.yaml documents %s %s, which the server does not register", m, pattern)
			}
		}
	}
}
