package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/autolabel"
	"repro/internal/obs"
	"repro/pkg/darwin"
)

func jobTestSpec() autolabel.Spec {
	return autolabel.Spec{
		Rules:       []string{"best way to get to", "how do i get"},
		Aggregator:  autolabel.AggregatorGenerative,
		IncludeProb: true,
	}
}

// TestLabelingJobE2E drives a labeling job through the full HTTP surface with
// the SDK client and holds the output to the determinism contract: the bytes
// streamed over /v2 must equal a direct in-process autolabel.Run of the same
// spec.
func TestLabelingJobE2E(t *testing.T) {
	srv, _ := newTestServer(t, Config{JobsDir: t.TempDir(), JobWorkers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := darwin.NewClient(ts.URL, "")
	ctx := t.Context()

	var direct bytes.Buffer
	directRes, err := autolabel.Run(context.Background(), srv.datasets["directions"].Engine, jobTestSpec(), &direct, nil)
	if err != nil {
		t.Fatal(err)
	}

	st, err := client.CreateLabelingJob(ctx, "directions", jobTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Dataset != "directions" {
		t.Fatalf("create returned %+v", st)
	}
	// Output of a not-yet-done job is a 409 conflict (unless the worker
	// already finished it).
	if err := client.LabelingJobOutput(ctx, "directions", st.ID, 0, io.Discard); err != nil &&
		!errors.Is(err, darwin.ErrConflict) {
		t.Errorf("early output request: %v", err)
	}
	st, err = client.WaitLabelingJob(ctx, "directions", st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != autolabel.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Covered != directRes.Covered || st.Positives != directRes.Positives || st.OutputBytes != directRes.OutputBytes {
		t.Errorf("job status %+v does not match direct result %+v", st, directRes)
	}

	var got bytes.Buffer
	if err := client.LabelingJobOutput(ctx, "directions", st.ID, 0, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), direct.Bytes()) {
		t.Error("HTTP job output differs from direct Run output")
	}
	var tail bytes.Buffer
	if err := client.LabelingJobOutput(ctx, "directions", st.ID, 200, &tail); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail.Bytes(), direct.Bytes()[200:]) {
		t.Error("offset download differs from output suffix")
	}

	// Wrong dataset and unknown id are 404s.
	if _, err := client.LabelingJob(ctx, "musicians", st.ID); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("cross-dataset status: %v", err)
	}
	if _, err := client.LabelingJob(ctx, "directions", "jmissing"); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("unknown job: %v", err)
	}
	if _, err := client.CreateLabelingJob(ctx, "nope", jobTestSpec()); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("unknown dataset: %v", err)
	}
	if _, err := client.CreateLabelingJob(ctx, "directions", autolabel.Spec{Aggregator: "quorum"}); !errors.Is(err, darwin.ErrInvalid) {
		t.Errorf("invalid spec: %v", err)
	}

	// The job metrics must appear in a valid /metrics exposition now that
	// jobs have run.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := obs.CheckExposition(string(body)); err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}
	for _, series := range []string{
		"darwin_autolabel_jobs{",
		"darwin_autolabel_jobs_completed_total{",
		"darwin_autolabel_sentences_labeled_total",
		"darwin_autolabel_stage_duration_seconds",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}
}

// TestLabelingJobLabelerReference submits a job referencing a live labeler
// and checks the spec is expanded to the labeler's accepted rules (seeds
// included) before it is journaled.
func TestLabelingJobLabelerReference(t *testing.T) {
	srv, _ := newTestServer(t, Config{JobsDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := darwin.NewClient(ts.URL, "")
	ctx := t.Context()

	lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.CreateLabelingJob(ctx, "directions", autolabel.Spec{Labeler: lab.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Labeler != "" {
		t.Errorf("labeler reference survived resolution: %+v", st.Spec)
	}
	found := false
	for _, r := range st.Spec.Rules {
		if strings.Contains(r, "best way to get to") {
			found = true
		}
	}
	if !found {
		t.Errorf("resolved rules %v do not include the accepted seed", st.Spec.Rules)
	}
	if st, err = client.WaitLabelingJob(ctx, "directions", st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st.State != autolabel.StateDone || st.Covered == 0 {
		t.Fatalf("labeler-reference job: %+v", st)
	}

	// A labeler on another dataset must be rejected.
	if _, err := client.CreateLabelingJob(ctx, "directions", autolabel.Spec{Labeler: "lab-missing"}); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("missing labeler: %v", err)
	}
}

// TestLabelingJobsDisabled pins the degraded mode: without a jobs dir the job
// endpoints answer 503, while the synchronous Snuba baseline stays live.
func TestLabelingJobsDisabled(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := darwin.NewClient(ts.URL, "")
	ctx := t.Context()

	if _, err := client.CreateLabelingJob(ctx, "directions", jobTestSpec()); !errors.Is(err, darwin.ErrUnavailable) {
		t.Errorf("create with jobs disabled: %v", err)
	}
	if _, err := client.LabelingJob(ctx, "directions", "j1"); !errors.Is(err, darwin.ErrUnavailable) {
		t.Errorf("status with jobs disabled: %v", err)
	}

	res, err := client.SnubaBaseline(ctx, "directions", autolabel.SnubaRequest{
		SeedSize: 200, Seed: 3, MinPrecision: 0.5, CompareRules: []string{"best way to get to"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "directions" || len(res.Rules) == 0 || res.Snuba.Covered == 0 {
		t.Errorf("snuba baseline %+v", res)
	}
	if res.Compare == nil || res.Compare.Rules != 1 {
		t.Errorf("compare stats %+v", res.Compare)
	}
	if _, err := client.SnubaBaseline(ctx, "nope", autolabel.SnubaRequest{}); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("snuba unknown dataset: %v", err)
	}
}
