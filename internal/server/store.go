package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/pkg/darwin"
)

// stepHist is the process-wide suggest-step latency histogram. healthz
// derives its steps/last/avg fields from the same histogram /metrics
// serves, so the two surfaces can never disagree.
var stepHist = obs.Default().Histogram("darwin_suggest_step_duration_seconds",
	"Wall-clock latency of the suggest step as seen by the serving handler.",
	obs.LatencyBuckets)

// sessionEntry is one live solo labeler in the store. Serialization of
// concurrent handlers on the same session lives in the SDK adapter
// (darwin.SessionLabeler); distinct sessions proceed in parallel.
type sessionEntry struct {
	id      string
	dataset string
	lab     *darwin.SessionLabeler

	created  time.Time
	lastUsed time.Time
}

// touch refreshes the entry's idle timer. Callers hold the store lock.
func (en *sessionEntry) touch(now time.Time) { en.lastUsed = now }

// Store is a mutex-guarded registry of live sessions with TTL eviction:
// sessions idle longer than the TTL are dropped on the next sweep (sweeps run
// lazily on create/get and periodically from the janitor). It also aggregates
// step latency across all sessions for the health endpoint.
type Store struct {
	mu    sync.Mutex //darwin:lockrank store
	items map[string]*sessionEntry
	ttl   time.Duration
	max   int
	now   func() time.Time
}

// Default store limits.
const (
	DefaultSessionTTL  = 30 * time.Minute
	DefaultMaxSessions = 1024
)

// NewStore creates a session store. A non-positive ttl or max falls back to
// the defaults.
func NewStore(ttl time.Duration, max int) *Store {
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &Store{
		items: make(map[string]*sessionEntry),
		ttl:   ttl,
		max:   max,
		now:   time.Now,
	}
}

// newSessionID returns a 128-bit random hex ID.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generate session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Create registers a new session labeler and returns its entry. It fails
// when the store is at capacity even after evicting expired sessions.
func (st *Store) Create(dataset string, lab *darwin.SessionLabeler) (*sessionEntry, error) {
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	st.sweepLocked(now)
	if len(st.items) >= st.max {
		return nil, fmt.Errorf("server: session limit reached (%d live sessions)", len(st.items))
	}
	en := &sessionEntry{id: id, dataset: dataset, lab: lab, created: now, lastUsed: now}
	st.items[id] = en
	return en, nil
}

// Restore re-registers a session under its pre-crash id (session-journal
// recovery). The entry gets fresh created/idle timers: recovery has no
// record of the original idle clock, and resurrecting a session just to
// expire it instantly would break clients resuming after a restart.
func (st *Store) Restore(id, dataset string, lab *darwin.SessionLabeler) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	st.items[id] = &sessionEntry{id: id, dataset: dataset, lab: lab, created: now, lastUsed: now}
}

// Get returns the live session with the given ID and refreshes its idle
// timer. Expired sessions are treated as absent.
func (st *Store) Get(id string) (*sessionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	en, ok := st.items[id]
	if !ok {
		return nil, false
	}
	now := st.now()
	if now.Sub(en.lastUsed) > st.ttl {
		delete(st.items, id)
		return nil, false
	}
	en.touch(now)
	return en, true
}

// Peek returns the live session with the given ID without refreshing its
// idle timer: read-only listings and status polls must not keep abandoned
// sessions alive.
func (st *Store) Peek(id string) (*sessionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	en, ok := st.items[id]
	if !ok || st.now().Sub(en.lastUsed) > st.ttl {
		return nil, false
	}
	return en, true
}

// HasCapacity reports whether the store can take another session after
// evicting expired ones. It is a cheap pre-check: callers still race other
// creators, and Create re-checks under the same lock.
func (st *Store) HasCapacity() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(st.now())
	return len(st.items) < st.max
}

// Delete removes a session, reporting whether it existed.
func (st *Store) Delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.items[id]
	delete(st.items, id)
	return ok
}

// Len returns the number of live (possibly expired, not yet swept) sessions.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.items)
}

// IDs returns the live session IDs, sorted (the /v2 listing pages over
// them).
func (st *Store) IDs() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.items))
	for id := range st.items {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RecordStep folds one suggest-step duration into the process-wide latency
// histogram surfaced by both healthz and /metrics.
func (st *Store) RecordStep(d time.Duration) {
	stepHist.Observe(d.Seconds())
}

// StepStats returns the number of suggest steps served and their last/average
// latency (zero before the first step). The numbers come from the same
// histogram /metrics renders.
func (st *Store) StepStats() (count int64, last, avg time.Duration) {
	n := stepHist.Count()
	if n > 0 {
		avg = time.Duration(stepHist.Sum() / float64(n) * float64(time.Second))
	}
	return int64(n), time.Duration(stepHist.Last() * float64(time.Second)), avg
}

// Sweep evicts all sessions idle longer than the TTL and returns how many
// were removed.
func (st *Store) Sweep() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sweepLocked(st.now())
}

func (st *Store) sweepLocked(now time.Time) int {
	n := 0
	for id, en := range st.items {
		if now.Sub(en.lastUsed) > st.ttl {
			delete(st.items, id)
			n++
		}
	}
	return n
}

// Janitor sweeps the store every interval until stop is closed. Run it in a
// goroutine: go store.Janitor(time.Minute, stopCh).
func (st *Store) Janitor(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			st.Sweep()
		case <-stop:
			return
		}
	}
}
