package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/tokensregex"
)

// newTestServer builds a server over one small synthetic "directions"
// dataset with a fast engine configuration. The corpus is returned so tests
// can consult gold labels when playing annotator.
func newTestServer(t *testing.T, cfg Config) (*Server, *corpus.Corpus) {
	t.Helper()
	c, err := datagen.ByName("directions", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := core.Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     4,
		MaxRuleDepth:    6,
		NumCandidates:   400,
		MinRuleCoverage: 2,
		Budget:          30,
		Traversal:       "hybrid",
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 8, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Embedding:       embedding.Config{Dim: 24, Window: 3, MinCount: 2, Seed: 1},
		Seed:            1,
	}
	engine, err := core.New(c, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg, &Dataset{Name: "directions", Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	return srv, c
}

// doJSON performs a request against the test server and decodes the JSON
// response into out (which may be nil).
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// playSession drives one full interactive session over HTTP, answering each
// suggestion by inspecting the shown samples against the corpus gold labels
// (the way a human annotator judges precision from the examples). It returns
// the session's final report.
func playSession(t *testing.T, ts *httptest.Server, c *corpus.Corpus, seedRule string, budget int, seed int64) reportResponse {
	t.Helper()
	var created createResponse
	status := doJSON(t, ts, http.MethodPost, "/v1/sessions", createRequest{
		Dataset:   "directions",
		SeedRules: []string{seedRule},
		Budget:    budget,
		Seed:      seed,
	}, &created)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	if created.ID == "" || created.Positives == 0 || created.Budget != budget {
		t.Fatalf("bad create response: %+v", created)
	}

	base := "/v1/sessions/" + created.ID
	for {
		var sug suggestResponse
		if status := doJSON(t, ts, http.MethodGet, base+"/suggest", nil, &sug); status != http.StatusOK {
			t.Fatalf("suggest: status %d", status)
		}
		if sug.Done {
			break
		}
		if sug.Key == "" || sug.Rule == "" || len(sug.Samples) == 0 {
			t.Fatalf("incomplete suggestion: %+v", sug)
		}
		// Judge the rule from its sample sentences, like the annotator of
		// Figure 2: accept when at least 80% of the samples are positive.
		pos := 0
		for _, sm := range sug.Samples {
			if s := c.Sentence(sm.ID); s != nil && s.Gold == corpus.Positive {
				pos++
			}
			if got := c.Sentence(sm.ID); got == nil || got.Text != sm.Text {
				t.Fatalf("sample %d text does not match the corpus", sm.ID)
			}
		}
		accept := float64(pos)/float64(len(sug.Samples)) >= 0.8
		var ans answerResponse
		if status := doJSON(t, ts, http.MethodPost, base+"/answer", answerRequest{Key: sug.Key, Accept: accept}, &ans); status != http.StatusOK {
			t.Fatalf("answer: status %d", status)
		}
		if ans.Record.Key != sug.Key || ans.Record.Accepted != accept {
			t.Fatalf("answer echoed wrong record: %+v", ans.Record)
		}
		if ans.Done {
			break
		}
	}

	var rep reportResponse
	if status := doJSON(t, ts, http.MethodGet, base+"/report", nil, &rep); status != http.StatusOK {
		t.Fatalf("report: status %d", status)
	}
	return rep
}

// TestEndToEndInteractiveSession walks the full HTTP lifecycle: create ->
// suggest -> answer (repeat) -> report -> export.
func TestEndToEndInteractiveSession(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Liveness first.
	var health healthJSON
	if status := doJSON(t, ts, http.MethodGet, "/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if health.Status != "ok" || len(health.Datasets) != 1 || health.Datasets[0] != "directions" {
		t.Fatalf("bad health: %+v", health)
	}

	rep := playSession(t, ts, c, "best way to get to", 15, 3)
	if rep.Questions == 0 || rep.Questions > 15 {
		t.Fatalf("questions = %d", rep.Questions)
	}
	if len(rep.History) != rep.Questions {
		t.Fatalf("history has %d records for %d questions", len(rep.History), rep.Questions)
	}
	if len(rep.Accepted) == 0 || rep.Accepted[0].Question != 0 {
		t.Fatalf("seed rule missing from accepted: %+v", rep.Accepted)
	}
	if rep.Positives == 0 {
		t.Fatal("no positives discovered")
	}

	// The report carries the session's step latency, and healthz aggregates
	// the latency of every suggest call served so far.
	if rep.LastStepMillis <= 0 || rep.AvgStepMillis <= 0 {
		t.Errorf("report step latency missing: last=%v avg=%v", rep.LastStepMillis, rep.AvgStepMillis)
	}
	if status := doJSON(t, ts, http.MethodGet, "/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if health.Steps < int64(rep.Questions) {
		t.Errorf("healthz steps = %d, want >= %d", health.Steps, rep.Questions)
	}
	if health.AvgStepMillis <= 0 || health.LastStepMillis <= 0 {
		t.Errorf("healthz step latency missing: %+v", health)
	}

	// Export the labeled corpus and check it against the report.
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + rep.ID + "/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("export content type = %q", ct)
	}
	labeled := 0
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var rec struct {
			ID    int    `json:"id"`
			Text  string `json:"text"`
			Label int    `json:"label"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("export line %d: %v", lines, err)
		}
		if rec.ID != lines {
			t.Fatalf("export line %d has id %d", lines, rec.ID)
		}
		if rec.Label == 1 {
			labeled++
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != c.Len() {
		t.Fatalf("export has %d lines, corpus has %d sentences", lines, c.Len())
	}
	if labeled != rep.Positives {
		t.Fatalf("export labeled %d sentences, report says %d", labeled, rep.Positives)
	}

	// Deleting the session makes it unreachable.
	if status := doJSON(t, ts, http.MethodDelete, "/v1/sessions/"+rep.ID, nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d", status)
	}
	if status := doJSON(t, ts, http.MethodGet, "/v1/sessions/"+rep.ID+"/report", nil, nil); status != http.StatusNotFound {
		t.Fatalf("report after delete: status %d", status)
	}
}

// TestConcurrentHTTPSessions runs >= 8 interactive sessions concurrently
// against one shared engine; with -race this exercises the whole stack's lock
// discipline end to end.
func TestConcurrentHTTPSessions(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const workers = 8
	reports := make([]reportResponse, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seedRule := "best way to get to"
			if w%2 == 1 {
				seedRule = "shuttle to"
			}
			reports[w] = playSession(t, ts, c, seedRule, 6, int64(w+1))
		}(w)
	}
	wg.Wait()

	for w, rep := range reports {
		if rep.Positives == 0 {
			t.Errorf("worker %d discovered no positives", w)
		}
		if rep.Questions == 0 {
			t.Errorf("worker %d asked no questions", w)
		}
	}
	if got := srv.Store().Len(); got != workers {
		t.Errorf("store has %d sessions, want %d", got, workers)
	}
}

func TestSessionTTLExpiry(t *testing.T) {
	srv, _ := newTestServer(t, Config{SessionTTL: time.Minute})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var created createResponse
	if status := doJSON(t, ts, http.MethodPost, "/v1/sessions", createRequest{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    5,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}

	// Advance the store's clock past the TTL; the session must be gone both
	// via lazy Get eviction and via an explicit sweep.
	srv.Store().now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	if status := doJSON(t, ts, http.MethodGet, "/v1/sessions/"+created.ID+"/suggest", nil, nil); status != http.StatusNotFound {
		t.Fatalf("expired session answered with status %d", status)
	}
	srv.Store().Sweep()
	if got := srv.Store().Len(); got != 0 {
		t.Errorf("store still holds %d sessions after sweep", got)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown dataset", http.MethodPost, "/v1/sessions", createRequest{Dataset: "nope"}, http.StatusNotFound},
		{"bad create body", http.MethodPost, "/v1/sessions", "not-json", http.StatusBadRequest},
		{"bad seed rule", http.MethodPost, "/v1/sessions", createRequest{Dataset: "directions", SeedRules: []string{"@@@ ???"}}, http.StatusBadRequest},
		{"empty seeds", http.MethodPost, "/v1/sessions", createRequest{Dataset: "directions"}, http.StatusBadRequest},
		{"too many seed rules", http.MethodPost, "/v1/sessions", createRequest{Dataset: "directions", SeedRules: make([]string, 17)}, http.StatusBadRequest},
		{"unknown session suggest", http.MethodGet, "/v1/sessions/deadbeef/suggest", nil, http.StatusNotFound},
		{"unknown session answer", http.MethodPost, "/v1/sessions/deadbeef/answer", answerRequest{Key: "k"}, http.StatusNotFound},
		{"unknown session report", http.MethodGet, "/v1/sessions/deadbeef/report", nil, http.StatusNotFound},
		{"unknown session export", http.MethodGet, "/v1/sessions/deadbeef/export", nil, http.StatusNotFound},
		{"unknown session delete", http.MethodDelete, "/v1/sessions/deadbeef", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		var errResp errorJSON
		if status := doJSON(t, ts, tc.method, tc.path, tc.body, &errResp); status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, status, tc.want)
		} else if errResp.Error == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}

	// Answering without a pending suggestion, and with a mismatched key, are
	// conflicts that leave the session usable.
	var created createResponse
	if status := doJSON(t, ts, http.MethodPost, "/v1/sessions", createRequest{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    5,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	base := "/v1/sessions/" + created.ID
	if status := doJSON(t, ts, http.MethodPost, base+"/answer", answerRequest{Key: "k", Accept: true}, nil); status != http.StatusConflict {
		t.Fatalf("answer with no pending suggestion: status %d", status)
	}
	var sug suggestResponse
	if status := doJSON(t, ts, http.MethodGet, base+"/suggest", nil, &sug); status != http.StatusOK || sug.Done {
		t.Fatalf("suggest: status %d done=%v", status, sug.Done)
	}
	if status := doJSON(t, ts, http.MethodPost, base+"/answer", answerRequest{Key: "wrong", Accept: true}, nil); status != http.StatusConflict {
		t.Fatalf("mismatched answer key: status %d", status)
	}
	var ans answerResponse
	if status := doJSON(t, ts, http.MethodPost, base+"/answer", answerRequest{Key: sug.Key, Accept: true}, &ans); status != http.StatusOK {
		t.Fatalf("valid answer after conflicts: status %d", status)
	}
}

func TestStoreCapacity(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxSessions: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	make1 := func() int {
		return doJSON(t, ts, http.MethodPost, "/v1/sessions", createRequest{
			Dataset:   "directions",
			SeedRules: []string{"best way to get to"},
			Budget:    5,
		}, nil)
	}
	for i := 0; i < 2; i++ {
		if status := make1(); status != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, status)
		}
	}
	if status := make1(); status != http.StatusServiceUnavailable {
		t.Fatalf("create beyond capacity: status %d", status)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no datasets should error")
	}
	if _, err := New(Config{}, &Dataset{Name: "", Engine: nil}); err == nil {
		t.Error("nameless/engineless dataset should error")
	}
	srv, c := newTestServer(t, Config{})
	_ = c
	d := srv.datasets["directions"]
	if _, err := New(Config{}, d, d); err == nil {
		t.Error("duplicate dataset should error")
	}
}

func TestStoreSweepAndJanitor(t *testing.T) {
	st := NewStore(time.Millisecond, 10)
	if _, err := st.Create("d", nil); err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	st.now = func() time.Time { return base.Add(time.Second) }
	if n := st.Sweep(); n != 1 {
		t.Errorf("sweep evicted %d, want 1", n)
	}
	if st.Len() != 0 {
		t.Errorf("store not empty after sweep")
	}

	// The janitor sweeps periodically until stopped.
	if _, err := st.Create("d", nil); err != nil {
		t.Fatal(err)
	}
	st.now = func() time.Time { return base.Add(2 * time.Second) }
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { st.Janitor(5*time.Millisecond, stop); close(done) }()
	deadline := time.After(2 * time.Second)
	for st.Len() != 0 {
		select {
		case <-deadline:
			t.Fatal("janitor never swept the expired session")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	<-done
}

func TestStoreIDsAreUnique(t *testing.T) {
	st := NewStore(time.Minute, 100)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		en, err := st.Create(fmt.Sprintf("d%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(en.id) != 32 {
			t.Fatalf("id %q is not 32 hex chars", en.id)
		}
		if seen[en.id] {
			t.Fatalf("duplicate id %q", en.id)
		}
		seen[en.id] = true
	}
}
