package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
)

// playWorkspace drives a two-annotator workspace over HTTP for up to steps
// answered questions, judging each suggestion against the corpus gold
// labels, and returns the workspace ID.
func playWorkspace(t *testing.T, ts *httptest.Server, c *corpus.Corpus, budget, steps int) string {
	t.Helper()
	var created wsCreateResponse
	if status := doJSON(t, ts, http.MethodPost, "/v1/workspaces", wsCreateRequest{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    budget,
		Seed:      3,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create workspace: status %d", status)
	}
	if created.ID == "" || created.Positives == 0 {
		t.Fatalf("bad create response: %+v", created)
	}
	base := "/v1/workspaces/" + created.ID
	annotators := []string{"alice", "bob"}
	for _, name := range annotators {
		if status := doJSON(t, ts, http.MethodPost, base+"/annotators", wsAttachRequest{Annotator: name}, nil); status != http.StatusCreated {
			t.Fatalf("attach %s: status %d", name, status)
		}
	}
	answered := 0
	for q := 0; answered < steps; q++ {
		name := annotators[q%2]
		var sug wsSuggestResponse
		if status := doJSON(t, ts, http.MethodGet, base+"/suggest?annotator="+name, nil, &sug); status != http.StatusOK {
			t.Fatalf("suggest for %s: status %d", name, status)
		}
		if sug.Done {
			break
		}
		pos := 0
		for _, sm := range sug.Samples {
			if s := c.Sentence(sm.ID); s != nil && s.Gold == corpus.Positive {
				pos++
			}
		}
		accept := len(sug.Samples) > 0 && float64(pos)/float64(len(sug.Samples)) >= 0.8
		var ans wsAnswerResponse
		if status := doJSON(t, ts, http.MethodPost, base+"/answer", wsAnswerRequest{
			Annotator: name, Key: sug.Key, Accept: accept,
		}, &ans); status != http.StatusOK {
			t.Fatalf("answer for %s: status %d", name, status)
		}
		if ans.Record.Annotator != name || ans.Record.Key != sug.Key {
			t.Fatalf("answer echoed wrong record: %+v", ans.Record)
		}
		answered++
		if ans.Done {
			break
		}
	}
	if answered == 0 {
		t.Fatal("no questions answered")
	}
	return created.ID
}

func getWSReport(t *testing.T, ts *httptest.Server, id string) wsReportResponse {
	t.Helper()
	var rep wsReportResponse
	if status := doJSON(t, ts, http.MethodGet, "/v1/workspaces/"+id+"/report", nil, &rep); status != http.StatusOK {
		t.Fatalf("workspace report: status %d", status)
	}
	return rep
}

func TestWorkspaceHTTPLifecycle(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id := playWorkspace(t, ts, c, 16, 10)
	rep := getWSReport(t, ts, id)
	if rep.Questions == 0 || rep.Questions > rep.Budget {
		t.Fatalf("questions = %d (budget %d)", rep.Questions, rep.Budget)
	}
	if len(rep.History) != rep.Questions {
		t.Fatalf("history %d != questions %d", len(rep.History), rep.Questions)
	}
	if len(rep.Annotators) != 2 {
		t.Fatalf("annotators: %+v", rep.Annotators)
	}
	perAnnotator := 0
	for _, an := range rep.Annotators {
		perAnnotator += an.Questions
	}
	if perAnnotator != rep.Questions {
		t.Fatalf("per-annotator sum %d != %d", perAnnotator, rep.Questions)
	}
	if rep.Classifier.Retrains == 0 {
		t.Error("classifier never retrained despite accepts")
	}
	// The shared hierarchy cache is live (process-local counter, hence not
	// in the report: it may diverge across replay on no-assignment
	// regenerations).
	ws, ok := srv.Workspaces().Get(id)
	if !ok {
		t.Fatal("workspace missing from manager")
	}
	if ws.HierarchyGenerations() == 0 {
		t.Error("shared hierarchy never generated")
	}

	// healthz counts the workspace.
	var health healthJSON
	doJSON(t, ts, http.MethodGet, "/healthz", nil, &health)
	if health.Workspaces != 1 {
		t.Errorf("healthz workspaces = %d", health.Workspaces)
	}

	// Export matches the shared positive set.
	resp, err := ts.Client().Get(ts.URL + "/v1/workspaces/" + id + "/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d", resp.StatusCode)
	}

	// Detach one annotator, delete the workspace.
	if status := doJSON(t, ts, http.MethodDelete, "/v1/workspaces/"+id+"/annotators/alice", nil, nil); status != http.StatusNoContent {
		t.Fatalf("detach: status %d", status)
	}
	if status := doJSON(t, ts, http.MethodDelete, "/v1/workspaces/"+id, nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d", status)
	}
	if status := doJSON(t, ts, http.MethodGet, "/v1/workspaces/"+id+"/report", nil, nil); status != http.StatusNotFound {
		t.Fatalf("report after delete: status %d", status)
	}
}

// TestWorkspaceConcurrentAnnotatorsHTTP runs several annotators stepping
// concurrently over HTTP in one workspace; assignments must stay disjoint
// end to end (the acceptance invariant), race-clean.
func TestWorkspaceConcurrentAnnotatorsHTTP(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var created wsCreateResponse
	if status := doJSON(t, ts, http.MethodPost, "/v1/workspaces", wsCreateRequest{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    20,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	base := "/v1/workspaces/" + created.ID
	names := []string{"a0", "a1", "a2", "a3"}
	for _, n := range names {
		if status := doJSON(t, ts, http.MethodPost, base+"/annotators", wsAttachRequest{Annotator: n}, nil); status != http.StatusCreated {
			t.Fatalf("attach: status %d", status)
		}
	}
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(name string, accept bool) {
			defer wg.Done()
			for {
				var sug wsSuggestResponse
				if status := doJSON(t, ts, http.MethodGet, base+"/suggest?annotator="+name, nil, &sug); status != http.StatusOK {
					t.Errorf("%s suggest: status %d", name, status)
					return
				}
				if sug.Done {
					return
				}
				var ans wsAnswerResponse
				if status := doJSON(t, ts, http.MethodPost, base+"/answer", wsAnswerRequest{
					Annotator: name, Key: sug.Key, Accept: accept,
				}, &ans); status != http.StatusOK {
					t.Errorf("%s answer: status %d", name, status)
					return
				}
				if ans.Done {
					return
				}
			}
		}(n, i%2 == 0)
	}
	wg.Wait()

	rep := getWSReport(t, ts, created.ID)
	if rep.Questions == 0 || rep.Questions > rep.Budget {
		t.Fatalf("questions = %d (budget %d)", rep.Questions, rep.Budget)
	}
	seen := map[string]bool{}
	for _, rec := range rep.History {
		if seen[rec.Key] {
			t.Fatalf("rule %q answered twice", rec.Key)
		}
		seen[rec.Key] = true
	}
}

// TestWorkspaceJournalRecoveryAcrossServers is the in-process restart test:
// a journaled workspace played on one server instance is byte-identically
// live on a second instance built over the same journal (the HTTP-level
// equivalent of the kill -9 e2e in cmd/darwind).
func TestWorkspaceJournalRecoveryAcrossServers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	srv1, c := newTestServer(t, Config{JournalPath: path})
	ts1 := httptest.NewServer(srv1)
	id := playWorkspace(t, ts1, c, 30, 20)
	before := getWSReport(t, ts1, id)
	ts1.Close()
	if err := srv1.Workspaces().Sync(); err != nil {
		t.Fatal(err)
	}

	srv2, _ := newTestServer(t, Config{JournalPath: path})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if rec := srv2.Recovery(); rec.Workspaces != 1 || len(rec.Skipped) != 0 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	after := getWSReport(t, ts2, id)
	if !reflect.DeepEqual(before, after) {
		b1, _ := json.Marshal(before)
		b2, _ := json.Marshal(after)
		t.Fatalf("report changed across restart:\nbefore: %s\nafter:  %s", b1, b2)
	}

	// The recovered workspace is live: annotators keep stepping where they
	// left off.
	var sug wsSuggestResponse
	if status := doJSON(t, ts2, http.MethodGet, "/v1/workspaces/"+id+"/suggest?annotator=alice", nil, &sug); status != http.StatusOK {
		t.Fatalf("suggest after recovery: status %d", status)
	}
	if !sug.Done && sug.Key == "" {
		t.Fatalf("bad post-recovery suggestion: %+v", sug)
	}
}

func TestWorkspaceHTTPErrorPaths(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var created wsCreateResponse
	if status := doJSON(t, ts, http.MethodPost, "/v1/workspaces", wsCreateRequest{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    5,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	base := "/v1/workspaces/" + created.ID
	doJSON(t, ts, http.MethodPost, base+"/annotators", wsAttachRequest{Annotator: "alice"}, nil)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown dataset", http.MethodPost, "/v1/workspaces", wsCreateRequest{Dataset: "nope"}, http.StatusNotFound},
		{"bad body", http.MethodPost, "/v1/workspaces", "not-json", http.StatusBadRequest},
		{"empty seeds", http.MethodPost, "/v1/workspaces", wsCreateRequest{Dataset: "directions"}, http.StatusBadRequest},
		{"unknown workspace suggest", http.MethodGet, "/v1/workspaces/deadbeef/suggest?annotator=x", nil, http.StatusNotFound},
		{"unknown workspace report", http.MethodGet, "/v1/workspaces/deadbeef/report", nil, http.StatusNotFound},
		{"unknown workspace delete", http.MethodDelete, "/v1/workspaces/deadbeef", nil, http.StatusNotFound},
		{"missing annotator param", http.MethodGet, base + "/suggest", nil, http.StatusBadRequest},
		{"unattached annotator", http.MethodGet, base + "/suggest?annotator=ghost", nil, http.StatusNotFound},
		{"duplicate attach", http.MethodPost, base + "/annotators", wsAttachRequest{Annotator: "alice"}, http.StatusConflict},
		{"answer without pending", http.MethodPost, base + "/answer", wsAnswerRequest{Annotator: "alice", Key: "k"}, http.StatusConflict},
		{"detach unknown", http.MethodDelete, base + "/annotators/ghost", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		var errResp errorJSON
		if status := doJSON(t, ts, tc.method, tc.path, tc.body, &errResp); status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, status, tc.want)
		} else if errResp.Error == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}

	// Mismatched answer key conflicts and leaves the workspace usable.
	var sug wsSuggestResponse
	if status := doJSON(t, ts, http.MethodGet, base+"/suggest?annotator=alice", nil, &sug); status != http.StatusOK || sug.Done {
		t.Fatalf("suggest: status %d done=%v", status, sug.Done)
	}
	if status := doJSON(t, ts, http.MethodPost, base+"/answer", wsAnswerRequest{Annotator: "alice", Key: "wrong"}, nil); status != http.StatusConflict {
		t.Fatalf("mismatched key: status %d", status)
	}
	if status := doJSON(t, ts, http.MethodPost, base+"/answer", wsAnswerRequest{Annotator: "alice", Key: sug.Key, Accept: true}, nil); status != http.StatusOK {
		t.Fatalf("valid answer after conflict: status %d", status)
	}
}

// TestSessionTTLEvictionRacingAnswer hammers one HTTP session with
// suggest/answer traffic while the store's clock jumps past the TTL and
// sweeps run concurrently; with -race this pins the store's eviction lock
// discipline. After eviction, handlers must return 404 and the store must
// be empty — never panic or deadlock.
func TestSessionTTLEvictionRacingAnswer(t *testing.T) {
	srv, _ := newTestServer(t, Config{SessionTTL: time.Minute})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var created createResponse
	if status := doJSON(t, ts, http.MethodPost, "/v1/sessions", createRequest{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    1000,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	base := "/v1/sessions/" + created.ID

	var mu sync.Mutex
	expired := false
	srv.Store().now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		if expired {
			return time.Now().Add(2 * time.Minute)
		}
		return time.Now()
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var sug suggestResponse
				status := doJSON(t, ts, http.MethodGet, base+"/suggest", nil, &sug)
				if status == http.StatusNotFound {
					return // evicted mid-flight: the expected outcome
				}
				if status != http.StatusOK {
					t.Errorf("suggest: status %d", status)
					return
				}
				if sug.Done {
					return
				}
				doJSON(t, ts, http.MethodPost, base+"/answer", answerRequest{Key: sug.Key, Accept: false}, nil)
			}
		}()
	}
	sweeps := make(chan struct{})
	go func() {
		defer close(sweeps)
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		expired = true
		mu.Unlock()
		for i := 0; i < 50; i++ {
			srv.Store().Sweep()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-sweeps
	srv.Store().Sweep()
	if got := srv.Store().Len(); got != 0 {
		t.Fatalf("store holds %d sessions after TTL race", got)
	}
	if status := doJSON(t, ts, http.MethodGet, base+"/report", nil, nil); status != http.StatusNotFound {
		t.Fatalf("report on evicted session: status %d", status)
	}
}

// TestWSDeleteRefusesUndurableEviction pins the DELETE durability contract
// (surfaced by darwinlint's journalack pass): when the eviction record
// cannot be journaled, the handler must answer 503 — never the 204 that
// tells the client the workspace is permanently gone while journal replay
// would resurrect it after a restart.
func TestWSDeleteRefusesUndurableEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	srv, _ := newTestServer(t, Config{JournalPath: path})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var created wsCreateResponse
	if status := doJSON(t, ts, http.MethodPost, "/v1/workspaces", wsCreateRequest{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    10,
		Seed:      3,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create workspace: status %d", status)
	}

	// Kill the journal out from under the server: the evict append fails.
	if err := srv.Workspaces().Close(); err != nil {
		t.Fatal(err)
	}
	if status := doJSON(t, ts, http.MethodDelete, "/v1/workspaces/"+created.ID, nil, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("delete on a dead journal: status %d, want 503", status)
	}
}
