package server

import (
	"bytes"
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/grammar"
	"repro/internal/ingest"
	"repro/internal/tokensregex"
	"repro/pkg/darwin"
)

// equivalenceConfig disables the two boot-time artifacts that deliberately
// do not grow under ingest: the coverage prune (MinRuleCoverage 1 makes
// Prune a no-op) and the embedding model (Dim 0 keeps features bag-of-words
// only, identical however the corpus arrived). With both off, ingesting N
// batches must be indistinguishable from booting with the full corpus.
func equivalenceConfig() core.Config {
	return core.Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     4,
		MaxRuleDepth:    6,
		NumCandidates:   400,
		MinRuleCoverage: 1,
		Budget:          30,
		Traversal:       "hybrid",
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 8, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Seed:            1,
	}
}

// TestIngestEquivalentToRebuild is the acceptance bar of the ingest
// subsystem: boot an engine with 60% of a corpus and POST the remaining 40%
// through /v2 in three batches, boot a twin with the full corpus up front,
// then drive both through the identical labeler session. Every suggestion,
// the final report bytes, and the export bytes must match exactly.
func TestIngestEquivalentToRebuild(t *testing.T) {
	full, err := datagen.ByName("directions", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	cut := full.Len() * 60 / 100

	// The full-boot twin gets its own corpus object (engines preprocess and
	// mutate sentences in place).
	fullTwin, err := datagen.ByName("directions", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	fullEng, err := core.New(fullTwin, equivalenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	prefix := corpus.New(full.Name, full.Task)
	for _, s := range full.Sentences[:cut] {
		prefix.Add(s.Text, s.Gold)
	}
	grownEng, err := core.New(prefix, equivalenceConfig())
	if err != nil {
		t.Fatal(err)
	}

	newSrv := func(eng *core.Engine) (*Server, *httptest.Server) {
		srv, err := New(Config{}, &Dataset{Name: "directions", Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return srv, ts
	}
	_, fullTS := newSrv(fullEng)
	_, grownTS := newSrv(grownEng)
	ctx := context.Background()

	// Ship the remaining 40% in three batches over HTTP.
	grownClient := darwin.NewClient(grownTS.URL, "")
	rest := full.Sentences[cut:]
	for len(rest) > 0 {
		n := (len(full.Sentences)-cut)/3 + 1
		if n > len(rest) {
			n = len(rest)
		}
		batch := make([]ingest.Sentence, 0, n)
		for _, s := range rest[:n] {
			batch = append(batch, ingest.Sentence{Text: s.Text, Label: int(s.Gold)})
		}
		if _, err := grownClient.IngestSentences(ctx, "directions", batch); err != nil {
			t.Fatal(err)
		}
		rest = rest[n:]
	}
	if got := grownEng.CorpusLen(); got != full.Len() {
		t.Fatalf("grown corpus has %d sentences, want %d", got, full.Len())
	}

	// Drive the identical session on both servers.
	opts := darwin.CreateOptions{
		Dataset:   "directions",
		SeedRules: []string{"best way to get to"},
		Budget:    15,
		Seed:      3,
	}
	fullLab, err := darwin.NewClient(fullTS.URL, "").NewLabeler(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	grownLab, err := grownClient.NewLabeler(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 12; q++ {
		fs, err := fullLab.Suggest(ctx)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := grownLab.Suggest(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fs, gs) {
			t.Fatalf("question %d: suggestions diverge:\nfull:  %+v\ngrown: %+v", q, fs, gs)
		}
		accept := q%3 == 0
		if err := fullLab.Answer(ctx, darwin.Answer{Key: fs.Key, Accept: accept}); err != nil {
			t.Fatal(err)
		}
		if err := grownLab.Answer(ctx, darwin.Answer{Key: gs.Key, Accept: accept}); err != nil {
			t.Fatal(err)
		}
	}

	// Byte-identical report and export across boot-vs-ingest.
	get := func(ts *httptest.Server, path string) []byte {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}
	fullReport := get(fullTS, "/v2/labelers/"+fullLab.ID()+"/report")
	grownReport := get(grownTS, "/v2/labelers/"+grownLab.ID()+"/report")
	if !bytes.Equal(fullReport, grownReport) {
		t.Errorf("reports differ:\nfull:  %s\ngrown: %s", fullReport, grownReport)
	}
	fullExport := get(fullTS, "/v2/labelers/"+fullLab.ID()+"/export")
	grownExport := get(grownTS, "/v2/labelers/"+grownLab.ID()+"/export")
	if !bytes.Equal(fullExport, grownExport) {
		t.Errorf("exports differ (%d vs %d bytes)", len(fullExport), len(grownExport))
	}
}
