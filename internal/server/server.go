// Package server hosts concurrent interactive Darwin rule-discovery
// labelers over HTTP. One read-only core.Engine is shared per loaded
// dataset, so the expensive corpus preprocessing and index build are paid
// once and amortized across every labeler.
//
// The canonical surface is the versioned /v2 API: one handler set generated
// over the public pkg/darwin Labeler interface, serving solo sessions and
// workspace attachments uniformly as "labelers", with a uniform JSON error
// envelope {code, message, retryable}, batch answers, and paginated list
// endpoints (see v2.go and api/openapi.yaml):
//
//	GET    /v2/datasets                     served datasets (paginated)
//	POST   /v2/labelers                     create {dataset, mode, ...}
//	GET    /v2/labelers                     list live labelers (paginated)
//	GET    /v2/labelers/{id}                labeler status
//	GET    /v2/labelers/{id}/suggestion     pending candidate rule
//	POST   /v2/labelers/{id}/answers        {answers: [{key, accept}...]} batch
//	GET    /v2/labelers/{id}/report         deterministic discovery report
//	GET    /v2/labelers/{id}/export         JSONL labeled corpus
//	DELETE /v2/labelers/{id}                close (delete session / detach annotator)
//
// The legacy /v1 endpoints remain as thin adapters over the same SDK
// adapters — same state, same semantics, v1 wire shapes:
//
//	GET  /healthz                      liveness + dataset/session counts
//	POST /v1/sessions                  create a session {dataset, seed_rules, ...}
//	GET  /v1/sessions/{id}/suggest     next candidate rule to verify
//	POST /v1/sessions/{id}/answer      {key, accept} verdict for the pending rule
//	GET  /v1/sessions/{id}/report      accepted rules + full query history
//	GET  /v1/sessions/{id}/export      JSONL labeled corpus (text/plain lines)
//	DELETE /v1/sessions/{id}           drop a session early
//
// Multi-annotator workspaces (durable when a journal is configured — see
// internal/workspace and internal/journal):
//
//	POST /v1/workspaces                          create {dataset, seed_rules, ...}
//	POST /v1/workspaces/{id}/annotators          attach {annotator}
//	DELETE /v1/workspaces/{id}/annotators/{name} detach an annotator
//	GET  /v1/workspaces/{id}/suggest?annotator=a next rule assigned to annotator a
//	POST /v1/workspaces/{id}/answer              {annotator, key, accept}
//	GET  /v1/workspaces/{id}/report              shared rules/history + per-annotator stats
//	GET  /v1/workspaces/{id}/export              JSONL labeled corpus of the shared P
//	DELETE /v1/workspaces/{id}                   evict a workspace
//
// When Config.Token is set, every /v1/* and /v2/* endpoint requires
// "Authorization: Bearer <token>" (healthz stays open); Config.RatePerSec
// adds a per-IP token-bucket rate limit across all endpoints.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"repro/internal/autolabel"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/replicate"
	"repro/internal/workspace"
	"repro/pkg/darwin"
)

// Dataset is one corpus served by the server: a name and the shared engine
// built over it. The engine (and the corpus and index behind it) must not be
// mutated after the server starts; sessions only read it.
type Dataset struct {
	Name   string
	Engine *core.Engine
}

// Config tunes the server.
type Config struct {
	// SessionTTL evicts sessions idle longer than this (default 30m).
	SessionTTL time.Duration
	// MaxSessions bounds the number of live sessions (default 1024).
	MaxSessions int
	// DefaultBudget is used for sessions that do not request a budget
	// (0 keeps each engine's configured budget).
	DefaultBudget int
	// MaxSeedRules bounds how many seed rules one create request may carry
	// (default 16), keeping a single request from monopolizing the index
	// write lock.
	MaxSeedRules int

	// JournalPath, when non-empty, makes workspaces durable: every
	// workspace event is appended to this JSONL write-ahead log, and New
	// replays it to recover workspaces from a previous process.
	JournalPath string
	// WorkspaceTTL evicts workspaces idle longer than this (default 2h).
	WorkspaceTTL time.Duration
	// MaxWorkspaces bounds the number of live workspaces (default 256).
	MaxWorkspaces int
	// CompactEvery compacts the journal (snapshot+truncate) after this many
	// appends (default 4096; negative disables).
	CompactEvery int
	// AttachmentTTL detaches individual annotators idle longer than this
	// during sweeps (0 disables). The detach is journaled, so it replays and
	// replicates like a client-issued one.
	AttachmentTTL time.Duration

	// JobsDir, when non-empty, enables the /v2 labeling-job subsystem: job
	// records are journaled under it (crash-survivable status) and finished
	// outputs live there until their TTL. Empty leaves the job endpoints
	// registered but answering 503.
	JobsDir string
	// JobWorkers bounds concurrent labeling-job execution (default 2).
	JobWorkers int
	// JobTTL retains terminal labeling jobs and their outputs (default 1h).
	JobTTL time.Duration

	// JournalSessions additionally journals plain (non-workspace) session
	// lifecycle and answers into "<JournalPath>.sessions", so solo sessions
	// recover across a restart like workspaces do. Requires JournalPath.
	JournalSessions bool

	// ReplicationSync blocks acknowledged workspace writes until the
	// dataset's replication follower acks them (bounded by
	// ReplicationSyncTimeout, default 2s). Only meaningful with a journal;
	// the replication endpoints themselves are active whenever JournalPath
	// is set.
	ReplicationSync        bool
	ReplicationSyncTimeout time.Duration

	// Token, when non-empty, requires "Authorization: Bearer <token>" on
	// every /v1/* and /v2/* endpoint.
	Token string
	// RatePerSec, when positive, rate-limits each client IP to this many
	// requests per second with a burst of RateBurst (default 2×RatePerSec).
	RatePerSec float64
	// RateBurst is the per-IP burst size.
	RateBurst int

	// Daemon labels this process's series in /metrics and request logs
	// (default "darwind"; the router runs its own edge with
	// "darwin-router").
	Daemon string
	// AccessLog, when non-nil, receives one structured line per request
	// (method, route, status, duration, request id).
	AccessLog *slog.Logger
}

// Server is the HTTP front end. It implements http.Handler.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped with auth / rate-limit middleware
	routes   []string     // every registered "METHOD /pattern", sorted
	datasets map[string]*Dataset
	store    *Store
	mgr      *workspace.Manager
	labelers *labelerRegistry
	recovery workspace.RecoveryStats
	// repl is the journal-replication node (nil without a journal; the
	// replication endpoints then answer 503).
	repl *replicate.Node
	// jobs is the labeling-job manager (nil without Config.JobsDir; the job
	// endpoints then answer 503).
	jobs *autolabel.Manager
	// sessJournal journals solo-session events when Config.JournalSessions
	// is set (nil otherwise).
	sessJournal *sessionJournal
}

// New creates a server over the given datasets. When Config.JournalPath is
// set it opens the journal and recovers all journaled workspaces before
// returning, so the server starts serving with the pre-crash state live.
func New(cfg Config, datasets ...*Dataset) (*Server, error) {
	if len(datasets) == 0 {
		return nil, errors.New("server: at least one dataset is required")
	}
	if cfg.MaxSeedRules <= 0 {
		cfg.MaxSeedRules = 16
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		datasets: make(map[string]*Dataset, len(datasets)),
		store:    NewStore(cfg.SessionTTL, cfg.MaxSessions),
		labelers: newLabelerRegistry(),
	}
	engines := make(map[string]*core.Engine, len(datasets))
	for _, d := range datasets {
		if d == nil || d.Engine == nil || d.Name == "" {
			return nil, errors.New("server: dataset must have a name and an engine")
		}
		if _, dup := s.datasets[d.Name]; dup {
			return nil, fmt.Errorf("server: duplicate dataset %q", d.Name)
		}
		s.datasets[d.Name] = d
		engines[d.Name] = d.Engine
	}
	var jw *journal.Writer
	var events []journal.Event
	if cfg.JournalPath != "" {
		var err error
		jw, events, err = journal.Open(cfg.JournalPath, journal.Options{})
		if err != nil {
			return nil, err
		}
	}
	s.mgr = workspace.NewManager(engines, jw, workspace.ManagerConfig{
		TTL:           cfg.WorkspaceTTL,
		MaxWorkspaces: cfg.MaxWorkspaces,
		CompactEvery:  cfg.CompactEvery,
		AttachmentTTL: cfg.AttachmentTTL,
	})
	if len(events) > 0 {
		s.recovery = s.mgr.Recover(events)
		// Re-derive the /v2 labeler registry from the recovered workspaces:
		// attachment labeler ids are a pure function of (workspace,
		// annotator), so clients resume the ids they held before the restart.
		s.rebuildLabelers()
	}
	if jw != nil {
		// Replication rides the journal: stream it out when the router names
		// this shard a primary, keep warm standbys when it names it a
		// follower. Recovers on-disk standbys from a previous process.
		s.repl = replicate.NewNode(replicate.NodeOptions{
			Manager:       s.mgr,
			Journal:       jw,
			Engines:       engines,
			JournalPath:   cfg.JournalPath,
			Sync:          cfg.ReplicationSync,
			SyncTimeout:   cfg.ReplicationSyncTimeout,
			Logf:          log.Printf,
			LabelersFor:   s.labelersFor,
			AdoptLabelers: s.adoptLabelers,
			DropLabelers:  s.dropLabelers,
		})
	}
	if cfg.JournalSessions {
		if cfg.JournalPath == "" {
			return nil, errors.New("server: JournalSessions requires JournalPath")
		}
		sj, err := openSessionJournal(cfg.JournalPath+".sessions", s)
		if err != nil {
			return nil, err
		}
		s.sessJournal = sj
	}
	if cfg.JobsDir != "" {
		jobs, err := autolabel.NewManager(autolabel.ManagerConfig{
			Dir:     cfg.JobsDir,
			Workers: cfg.JobWorkers,
			TTL:     cfg.JobTTL,
			Logf:    log.Printf,
		}, func(dataset string) (*core.Engine, bool) {
			eng, ok := engines[dataset]
			return eng, ok
		})
		if err != nil {
			return nil, err
		}
		s.jobs = jobs
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", obs.Default().Handler().ServeHTTP)
	s.handle("POST /v1/sessions", s.handleCreate)
	s.handle("GET /v1/sessions/{id}/suggest", s.handleSuggest)
	s.handle("POST /v1/sessions/{id}/answer", s.handleAnswer)
	s.handle("GET /v1/sessions/{id}/report", s.handleReport)
	s.handle("GET /v1/sessions/{id}/export", s.handleExport)
	s.handle("DELETE /v1/sessions/{id}", s.handleDelete)
	s.handle("POST /v1/workspaces", s.handleWSCreate)
	s.handle("POST /v1/workspaces/{id}/annotators", s.handleWSAttach)
	s.handle("DELETE /v1/workspaces/{id}/annotators/{name}", s.handleWSDetach)
	s.handle("GET /v1/workspaces/{id}/suggest", s.handleWSSuggest)
	s.handle("POST /v1/workspaces/{id}/answer", s.handleWSAnswer)
	s.handle("GET /v1/workspaces/{id}/report", s.handleWSReport)
	s.handle("GET /v1/workspaces/{id}/export", s.handleWSExport)
	s.handle("DELETE /v1/workspaces/{id}", s.handleWSDelete)
	s.registerV2()
	s.registerReplication()
	sort.Strings(s.routes)
	if cfg.Daemon == "" {
		cfg.Daemon = "darwind"
		s.cfg.Daemon = "darwind"
	}
	// Live-object gauges are callbacks so /metrics and /healthz read the
	// same stores at scrape time. Last registration wins, so repeated server
	// construction in tests tracks the newest instance.
	obs.Default().GaugeFunc("darwin_sessions_live",
		"Live solo sessions in the store.",
		func() float64 { return float64(s.store.Len()) })
	obs.Default().GaugeFunc("darwin_workspaces_live",
		"Live workspaces in the manager.",
		func() float64 { return float64(s.mgr.Len()) })
	// Seed the per-dataset corpus and coverage-container gauges; ingest
	// refreshes them on every acknowledged batch.
	s.updateEngineGauges()
	// Instrumentation wraps the auth/rate-limit middleware so 401s and 429s
	// are counted and logged too.
	s.handler = obs.Instrument(obs.Default(), cfg.Daemon, cfg.AccessLog, s.middleware(s.mux))
	return s, nil
}

// handle registers one route and records it for Routes (which the OpenAPI
// honesty test audits against api/openapi.yaml).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, h)
	s.routes = append(s.routes, pattern)
}

// Routes returns every registered route as "METHOD /pattern", sorted. The
// checked-in OpenAPI spec is tested against this list.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Store exposes the session store (for the janitor and diagnostics).
func (s *Server) Store() *Store { return s.store }

// Workspaces exposes the workspace manager (janitor, shutdown flush,
// diagnostics).
func (s *Server) Workspaces() *workspace.Manager { return s.mgr }

// Recovery reports what was replayed from the journal at startup.
func (s *Server) Recovery() workspace.RecoveryStats { return s.recovery }

// Close stops replication (keeping standbys warm on disk), then flushes and
// closes the workspace journal. Call after the HTTP server has drained.
func (s *Server) Close() error {
	if s.jobs != nil {
		// Stop job workers first: an interrupted job keeps no terminal
		// record, so the next process re-runs it to the identical bytes.
		if err := s.jobs.Close(); err != nil {
			log.Printf("server: close job manager: %v", err)
		}
	}
	if s.sessJournal != nil {
		if err := s.sessJournal.Close(); err != nil {
			log.Printf("server: close session journal: %v", err)
		}
	}
	if s.repl != nil {
		s.repl.Close()
	}
	return s.mgr.Close()
}

// Dataset returns the served dataset by name, or nil when unknown. The
// datasets map is fixed at construction, so this needs no locking.
func (s *Server) Dataset(name string) *Dataset { return s.datasets[name] }

// DatasetNames returns the served dataset names, sorted.
func (s *Server) DatasetNames() []string {
	out := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// newSessionLabeler validates a create request and builds the SDK adapter
// both /v1 and /v2 session creation share. It returns a typed error.
func (s *Server) newSessionLabeler(dataset string, seedRules []string, seedIDs []int, budget int, seed int64) (*darwin.SessionLabeler, *sessionEntry, error) {
	d, ok := s.datasets[dataset]
	if !ok {
		return nil, nil, fmt.Errorf("%w: unknown dataset %q (have %v)", darwin.ErrNotFound, dataset, s.DatasetNames())
	}
	if len(seedRules) > s.cfg.MaxSeedRules {
		return nil, nil, fmt.Errorf("%w: too many seed rules (%d > %d)", darwin.ErrInvalid, len(seedRules), s.cfg.MaxSeedRules)
	}
	// Reject a full store before paying for session construction (classifier
	// training plus the engine's index write lock); Create re-checks under
	// its lock.
	if !s.store.HasCapacity() {
		return nil, nil, fmt.Errorf("%w: session limit reached", darwin.ErrUnavailable)
	}
	if budget <= 0 {
		budget = s.cfg.DefaultBudget
	}
	lab, err := darwin.NewSession(d.Engine, d.Name, darwin.Options{
		SeedRules:       seedRules,
		SeedPositiveIDs: seedIDs,
		Budget:          budget,
		Seed:            seed,
	})
	if err != nil {
		return nil, nil, err
	}
	en, err := s.store.Create(d.Name, lab)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", darwin.ErrUnavailable, err)
	}
	if s.sessJournal != nil {
		// Journal the resolved options (server defaults applied), so replay
		// does not depend on the config of the recovering process.
		s.sessJournal.recordCreate(en.id, d.Name, sessCreateData{
			SeedRules:       seedRules,
			SeedPositiveIDs: seedIDs,
			Budget:          budget,
			Seed:            seed,
		})
	}
	return lab, en, nil
}

// --- v1 wire format ---

type errorJSON struct {
	Error string `json:"error"`
}

type healthJSON struct {
	Status     string   `json:"status"`
	Datasets   []string `json:"datasets"`
	Sessions   int      `json:"sessions"`
	Workspaces int      `json:"workspaces"`
	// Recovered counts workspaces replayed from the journal at startup.
	Recovered int `json:"recovered,omitempty"`
	// Step-latency aggregate across every suggest call served (wall-clock of
	// the suggest step as seen by the handler).
	Steps          int64   `json:"steps"`
	LastStepMillis float64 `json:"last_step_ms"`
	AvgStepMillis  float64 `json:"avg_step_ms"`
}

type createRequest struct {
	Dataset         string   `json:"dataset"`
	SeedRules       []string `json:"seed_rules,omitempty"`
	SeedPositiveIDs []int    `json:"seed_positive_ids,omitempty"`
	Budget          int      `json:"budget,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
}

type createResponse struct {
	ID        string           `json:"id"`
	Dataset   string           `json:"dataset"`
	Budget    int              `json:"budget"`
	Positives int              `json:"positives"`
	SeedRules []ruleRecordJSON `json:"seed_rules,omitempty"`
}

type ruleRecordJSON struct {
	Question       int    `json:"question"`
	Key            string `json:"key"`
	Rule           string `json:"rule"`
	Coverage       int    `json:"coverage"`
	Accepted       bool   `json:"accepted"`
	AddedIDs       []int  `json:"added_ids,omitempty"`
	PositivesAfter int    `json:"positives_after"`
}

type sampleJSON struct {
	ID   int    `json:"id"`
	Text string `json:"text"`
}

// suggestResponse carries the pending suggestion. The numeric fields must
// not be omitempty: a zero benefit is a meaningful value the annotator (or a
// driving program) reads.
type suggestResponse struct {
	Done        bool         `json:"done"`
	Question    int          `json:"question"`
	BudgetLeft  int          `json:"budget_left"`
	Key         string       `json:"key,omitempty"`
	Rule        string       `json:"rule,omitempty"`
	Coverage    int          `json:"coverage"`
	NewCoverage int          `json:"new_coverage"`
	Benefit     float64      `json:"benefit"`
	AvgBenefit  float64      `json:"avg_benefit"`
	Samples     []sampleJSON `json:"samples,omitempty"`
}

type answerRequest struct {
	Key    string `json:"key"`
	Accept bool   `json:"accept"`
}

type answerResponse struct {
	Record     ruleRecordJSON `json:"record"`
	Done       bool           `json:"done"`
	BudgetLeft int            `json:"budget_left"`
	Positives  int            `json:"positives"`
}

type reportResponse struct {
	ID        string `json:"id"`
	Dataset   string `json:"dataset"`
	Questions int    `json:"questions"`
	Budget    int    `json:"budget"`
	Done      bool   `json:"done"`
	Positives int    `json:"positives"`
	// Per-session step latency: the last suggest that did real work and the
	// average across all of them.
	LastStepMillis float64          `json:"last_step_ms"`
	AvgStepMillis  float64          `json:"avg_step_ms"`
	Accepted       []ruleRecordJSON `json:"accepted"`
	History        []ruleRecordJSON `json:"history"`
}

// recordJSON renders an SDK rule record in the v1 wire shape (which never
// carried coverage IDs).
func recordJSON(rec darwin.RuleRecord) ruleRecordJSON {
	return ruleRecordJSON{
		Question:       rec.Question,
		Key:            rec.Key,
		Rule:           rec.Rule,
		Coverage:       rec.Coverage,
		Accepted:       rec.Accepted,
		AddedIDs:       rec.AddedIDs,
		PositivesAfter: rec.PositivesAfter,
	}
}

func samplesJSON(samples []darwin.Sample) []sampleJSON {
	out := make([]sampleJSON, 0, len(samples))
	for _, s := range samples {
		out = append(out, sampleJSON{ID: s.ID, Text: s.Text})
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// writeV1Error renders a typed error in the legacy v1 shape {"error": msg},
// with the HTTP status taken from the shared taxonomy mapping. The sentinel
// prefix is stripped — v1 clients predate the taxonomy.
func writeV1Error(w http.ResponseWriter, err error) {
	writeError(w, darwin.HTTPStatus(err), "%s", darwin.Envelope(err).Message)
}

// --- v1 handlers (thin adapters over the pkg/darwin core) ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	steps, last, avg := s.store.StepStats()
	writeJSON(w, http.StatusOK, healthJSON{
		Status:         "ok",
		Datasets:       s.DatasetNames(),
		Sessions:       s.store.Len(),
		Workspaces:     s.mgr.Len(),
		Recovered:      s.recovery.Workspaces,
		Steps:          steps,
		LastStepMillis: millis(last),
		AvgStepMillis:  millis(avg),
	})
}

func millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// handleCreate acks 201 only after the session create is journaled (when
// session journaling is on, via newSessionLabeler -> recordCreate).
//
//darwin:mutating-handler
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	lab, en, err := s.newSessionLabeler(req.Dataset, req.SeedRules, req.SeedPositiveIDs, req.Budget, req.Seed)
	if err != nil {
		writeV1Error(w, err)
		return
	}
	rep, err := lab.Report(r.Context())
	if err != nil {
		writeV1Error(w, err)
		return
	}
	resp := createResponse{
		ID:        en.id,
		Dataset:   en.dataset,
		Budget:    rep.Budget,
		Positives: rep.Positives,
	}
	for _, rec := range rep.Accepted {
		resp.SeedRules = append(resp.SeedRules, recordJSON(rec))
	}
	writeJSON(w, http.StatusCreated, resp)
}

// session resolves the {id} path value to a live session entry, writing a 404
// when it is unknown or expired.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*sessionEntry, bool) {
	id := r.PathValue("id")
	en, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired session %q", id)
		return nil, false
	}
	return en, true
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	en, ok := s.session(w, r)
	if !ok {
		return
	}
	sug, st, err := s.suggestStep(r.Context(), en.lab)
	if err != nil {
		if errors.Is(err, darwin.ErrBudgetExhausted) {
			writeJSON(w, http.StatusOK, suggestResponse{Done: true, BudgetLeft: st.Budget - st.Questions})
			return
		}
		writeV1Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, suggestResponse{
		Question:    sug.Question,
		BudgetLeft:  sug.BudgetLeft,
		Key:         sug.Key,
		Rule:        sug.Rule,
		Coverage:    sug.Coverage,
		NewCoverage: sug.NewCoverage,
		Benefit:     sug.Benefit,
		AvgBenefit:  sug.AvgBenefit,
		Samples:     samplesJSON(sug.Samples),
	})
}

// suggestStep is the one suggest path both API versions use: it runs
// Suggest, folds the step duration into the healthz aggregate, and returns
// the labeler status alongside (valid even when Suggest reports done).
func (s *Server) suggestStep(ctx context.Context, lab *darwin.SessionLabeler) (darwin.Suggestion, darwin.Status, error) {
	stepStart := time.Now()
	sug, err := lab.Suggest(ctx)
	s.store.RecordStep(time.Since(stepStart))
	var st darwin.Status
	if err != nil {
		st, _ = lab.Status(ctx)
	}
	return sug, st, err
}

// handleAnswer acks 200 only after the applied verdicts are journaled.
//
//darwin:mutating-handler
func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	en, ok := s.session(w, r)
	if !ok {
		return
	}
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if req.Key == "" {
		// v1 never supported blind answers; an empty key is a protocol error.
		writeError(w, http.StatusConflict, "answer key is required")
		return
	}
	recs, err := en.lab.AnswerBatch(r.Context(), []darwin.Answer{{Key: req.Key, Accept: req.Accept}})
	if err != nil {
		writeV1Error(w, err)
		return
	}
	if s.sessJournal != nil {
		s.sessJournal.recordAnswers(en.id, recs)
	}
	// Derive done/budget from the answered record itself (rec.Question is
	// the question number this answer was committed as) and the immutable
	// budget, not from a second unsynchronized status read.
	rec := recs[0]
	st, err := en.lab.Status(r.Context())
	if err != nil {
		writeV1Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, answerResponse{
		Record:     recordJSON(rec),
		Done:       rec.Question >= st.Budget,
		BudgetLeft: st.Budget - rec.Question,
		Positives:  rec.PositivesAfter,
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	en, ok := s.session(w, r)
	if !ok {
		return
	}
	rep, err := en.lab.Report(r.Context())
	if err != nil {
		writeV1Error(w, err)
		return
	}
	lastStep, avgStep := en.lab.StepLatency()
	resp := reportResponse{
		ID:             en.id,
		Dataset:        en.dataset,
		Questions:      rep.Questions,
		Budget:         rep.Budget,
		Done:           rep.Done,
		Positives:      rep.Positives,
		LastStepMillis: millis(lastStep),
		AvgStepMillis:  millis(avgStep),
		Accepted:       make([]ruleRecordJSON, 0, len(rep.Accepted)),
		History:        make([]ruleRecordJSON, 0, len(rep.History)),
	}
	for _, rec := range rep.Accepted {
		resp.Accepted = append(resp.Accepted, recordJSON(rec))
	}
	for _, rec := range rep.History {
		resp.History = append(resp.History, recordJSON(rec))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	en, ok := s.session(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Headers are sent on first write; a mid-stream failure can only
	// truncate the body.
	_ = en.lab.Export(r.Context(), w)
}

// handleDelete acks 204 only after the session delete is journaled.
//
//darwin:mutating-handler
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.deleteSession(r.Context(), id) {
		writeError(w, http.StatusNotFound, "unknown or expired session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// deleteSession closes and removes a session labeler (shared by v1 and v2
// delete).
func (s *Server) deleteSession(ctx context.Context, id string) bool {
	en, ok := s.store.Get(id)
	if !ok {
		return false
	}
	_ = en.lab.Close(ctx)
	deleted := s.store.Delete(id)
	if deleted && s.sessJournal != nil {
		s.sessJournal.recordDelete(id)
	}
	return deleted
}
