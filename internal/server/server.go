// Package server hosts concurrent interactive Darwin rule-discovery sessions
// over HTTP. One read-only core.Engine is shared per loaded dataset, so the
// expensive corpus preprocessing and index build are paid once and amortized
// across every session; each session owns its mutable discovery state (see
// core.Session) and is serialized by a per-session lock, while distinct
// sessions run fully in parallel.
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz                      liveness + dataset/session counts
//	POST /v1/sessions                  create a session {dataset, seed_rules, ...}
//	GET  /v1/sessions/{id}/suggest     next candidate rule to verify
//	POST /v1/sessions/{id}/answer      {key, accept} verdict for the pending rule
//	GET  /v1/sessions/{id}/report      accepted rules + full query history
//	GET  /v1/sessions/{id}/export      JSONL labeled corpus (text/plain lines)
//	DELETE /v1/sessions/{id}           drop a session early
//
// Multi-annotator workspaces (durable when a journal is configured — see
// internal/workspace and internal/journal):
//
//	POST /v1/workspaces                          create {dataset, seed_rules, ...}
//	POST /v1/workspaces/{id}/annotators          attach {annotator}
//	DELETE /v1/workspaces/{id}/annotators/{name} detach an annotator
//	GET  /v1/workspaces/{id}/suggest?annotator=a next rule assigned to annotator a
//	POST /v1/workspaces/{id}/answer              {annotator, key, accept}
//	GET  /v1/workspaces/{id}/report              shared rules/history + per-annotator stats
//	GET  /v1/workspaces/{id}/export              JSONL labeled corpus of the shared P
//	DELETE /v1/workspaces/{id}                   evict a workspace
//
// When Config.Token is set, every /v1/* endpoint requires
// "Authorization: Bearer <token>" (healthz stays open); Config.RatePerSec
// adds a per-IP token-bucket rate limit across all endpoints.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/workspace"
)

// Dataset is one corpus served by the server: a name and the shared engine
// built over it. The engine (and the corpus and index behind it) must not be
// mutated after the server starts; sessions only read it.
type Dataset struct {
	Name   string
	Engine *core.Engine
}

// Config tunes the server.
type Config struct {
	// SessionTTL evicts sessions idle longer than this (default 30m).
	SessionTTL time.Duration
	// MaxSessions bounds the number of live sessions (default 1024).
	MaxSessions int
	// DefaultBudget is used for sessions that do not request a budget
	// (0 keeps each engine's configured budget).
	DefaultBudget int
	// MaxSeedRules bounds how many seed rules one create request may carry
	// (default 16), keeping a single request from monopolizing the index
	// write lock.
	MaxSeedRules int

	// JournalPath, when non-empty, makes workspaces durable: every
	// workspace event is appended to this JSONL write-ahead log, and New
	// replays it to recover workspaces from a previous process.
	JournalPath string
	// WorkspaceTTL evicts workspaces idle longer than this (default 2h).
	WorkspaceTTL time.Duration
	// MaxWorkspaces bounds the number of live workspaces (default 256).
	MaxWorkspaces int
	// CompactEvery compacts the journal (snapshot+truncate) after this many
	// appends (default 4096; negative disables).
	CompactEvery int

	// Token, when non-empty, requires "Authorization: Bearer <token>" on
	// every /v1/* endpoint.
	Token string
	// RatePerSec, when positive, rate-limits each client IP to this many
	// requests per second with a burst of RateBurst (default 2×RatePerSec).
	RatePerSec float64
	// RateBurst is the per-IP burst size.
	RateBurst int
}

// Server is the HTTP front end. It implements http.Handler.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped with auth / rate-limit middleware
	datasets map[string]*Dataset
	store    *Store
	mgr      *workspace.Manager
	recovery workspace.RecoveryStats
}

// New creates a server over the given datasets. When Config.JournalPath is
// set it opens the journal and recovers all journaled workspaces before
// returning, so the server starts serving with the pre-crash state live.
func New(cfg Config, datasets ...*Dataset) (*Server, error) {
	if len(datasets) == 0 {
		return nil, errors.New("server: at least one dataset is required")
	}
	if cfg.MaxSeedRules <= 0 {
		cfg.MaxSeedRules = 16
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		datasets: make(map[string]*Dataset, len(datasets)),
		store:    NewStore(cfg.SessionTTL, cfg.MaxSessions),
	}
	engines := make(map[string]*core.Engine, len(datasets))
	for _, d := range datasets {
		if d == nil || d.Engine == nil || d.Name == "" {
			return nil, errors.New("server: dataset must have a name and an engine")
		}
		if _, dup := s.datasets[d.Name]; dup {
			return nil, fmt.Errorf("server: duplicate dataset %q", d.Name)
		}
		s.datasets[d.Name] = d
		engines[d.Name] = d.Engine
	}
	var jw *journal.Writer
	var events []journal.Event
	if cfg.JournalPath != "" {
		var err error
		jw, events, err = journal.Open(cfg.JournalPath, journal.Options{})
		if err != nil {
			return nil, err
		}
	}
	s.mgr = workspace.NewManager(engines, jw, workspace.ManagerConfig{
		TTL:           cfg.WorkspaceTTL,
		MaxWorkspaces: cfg.MaxWorkspaces,
		CompactEvery:  cfg.CompactEvery,
	})
	if len(events) > 0 {
		s.recovery = s.mgr.Recover(events)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}/suggest", s.handleSuggest)
	s.mux.HandleFunc("POST /v1/sessions/{id}/answer", s.handleAnswer)
	s.mux.HandleFunc("GET /v1/sessions/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/sessions/{id}/export", s.handleExport)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/workspaces", s.handleWSCreate)
	s.mux.HandleFunc("POST /v1/workspaces/{id}/annotators", s.handleWSAttach)
	s.mux.HandleFunc("DELETE /v1/workspaces/{id}/annotators/{name}", s.handleWSDetach)
	s.mux.HandleFunc("GET /v1/workspaces/{id}/suggest", s.handleWSSuggest)
	s.mux.HandleFunc("POST /v1/workspaces/{id}/answer", s.handleWSAnswer)
	s.mux.HandleFunc("GET /v1/workspaces/{id}/report", s.handleWSReport)
	s.mux.HandleFunc("GET /v1/workspaces/{id}/export", s.handleWSExport)
	s.mux.HandleFunc("DELETE /v1/workspaces/{id}", s.handleWSDelete)
	s.handler = s.middleware(s.mux)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Store exposes the session store (for the janitor and diagnostics).
func (s *Server) Store() *Store { return s.store }

// Workspaces exposes the workspace manager (janitor, shutdown flush,
// diagnostics).
func (s *Server) Workspaces() *workspace.Manager { return s.mgr }

// Recovery reports what was replayed from the journal at startup.
func (s *Server) Recovery() workspace.RecoveryStats { return s.recovery }

// Close flushes and closes the workspace journal. Call after the HTTP
// server has drained.
func (s *Server) Close() error { return s.mgr.Close() }

// DatasetNames returns the served dataset names, sorted.
func (s *Server) DatasetNames() []string {
	out := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- wire format ---

type errorJSON struct {
	Error string `json:"error"`
}

type healthJSON struct {
	Status     string   `json:"status"`
	Datasets   []string `json:"datasets"`
	Sessions   int      `json:"sessions"`
	Workspaces int      `json:"workspaces"`
	// Recovered counts workspaces replayed from the journal at startup.
	Recovered int `json:"recovered,omitempty"`
	// Step-latency aggregate across every suggest call served (wall-clock of
	// Session.Next as seen by the handler).
	Steps          int64   `json:"steps"`
	LastStepMillis float64 `json:"last_step_ms"`
	AvgStepMillis  float64 `json:"avg_step_ms"`
}

type createRequest struct {
	Dataset         string   `json:"dataset"`
	SeedRules       []string `json:"seed_rules,omitempty"`
	SeedPositiveIDs []int    `json:"seed_positive_ids,omitempty"`
	Budget          int      `json:"budget,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
}

type createResponse struct {
	ID        string           `json:"id"`
	Dataset   string           `json:"dataset"`
	Budget    int              `json:"budget"`
	Positives int              `json:"positives"`
	SeedRules []ruleRecordJSON `json:"seed_rules,omitempty"`
}

type ruleRecordJSON struct {
	Question       int    `json:"question"`
	Key            string `json:"key"`
	Rule           string `json:"rule"`
	Coverage       int    `json:"coverage"`
	Accepted       bool   `json:"accepted"`
	AddedIDs       []int  `json:"added_ids,omitempty"`
	PositivesAfter int    `json:"positives_after"`
}

type sampleJSON struct {
	ID   int    `json:"id"`
	Text string `json:"text"`
}

// suggestResponse carries the pending suggestion. The numeric fields must
// not be omitempty: a zero benefit is a meaningful value the annotator (or a
// driving program) reads.
type suggestResponse struct {
	Done        bool         `json:"done"`
	Question    int          `json:"question"`
	BudgetLeft  int          `json:"budget_left"`
	Key         string       `json:"key,omitempty"`
	Rule        string       `json:"rule,omitempty"`
	Coverage    int          `json:"coverage"`
	NewCoverage int          `json:"new_coverage"`
	Benefit     float64      `json:"benefit"`
	AvgBenefit  float64      `json:"avg_benefit"`
	Samples     []sampleJSON `json:"samples,omitempty"`
}

type answerRequest struct {
	Key    string `json:"key"`
	Accept bool   `json:"accept"`
}

type answerResponse struct {
	Record     ruleRecordJSON `json:"record"`
	Done       bool           `json:"done"`
	BudgetLeft int            `json:"budget_left"`
	Positives  int            `json:"positives"`
}

type reportResponse struct {
	ID        string           `json:"id"`
	Dataset   string           `json:"dataset"`
	Questions int              `json:"questions"`
	Budget    int              `json:"budget"`
	Done      bool             `json:"done"`
	Positives int              `json:"positives"`
	// Per-session step latency: the last Next that did real work and the
	// average across all of them.
	LastStepMillis float64          `json:"last_step_ms"`
	AvgStepMillis  float64          `json:"avg_step_ms"`
	Accepted       []ruleRecordJSON `json:"accepted"`
	History        []ruleRecordJSON `json:"history"`
}

func recordJSON(rec core.RuleRecord) ruleRecordJSON {
	return ruleRecordJSON{
		Question:       rec.Question,
		Key:            rec.Key,
		Rule:           rec.Rule,
		Coverage:       rec.Coverage,
		Accepted:       rec.Accepted,
		AddedIDs:       rec.AddedIDs,
		PositivesAfter: rec.PositivesAfter,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	steps, last, avg := s.store.StepStats()
	writeJSON(w, http.StatusOK, healthJSON{
		Status:         "ok",
		Datasets:       s.DatasetNames(),
		Sessions:       s.store.Len(),
		Workspaces:     s.mgr.Len(),
		Recovered:      s.recovery.Workspaces,
		Steps:          steps,
		LastStepMillis: millis(last),
		AvgStepMillis:  millis(avg),
	})
}

func millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	d, ok := s.datasets[req.Dataset]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q (have %v)", req.Dataset, s.DatasetNames())
		return
	}
	if len(req.SeedRules) > s.cfg.MaxSeedRules {
		writeError(w, http.StatusBadRequest, "too many seed rules (%d > %d)", len(req.SeedRules), s.cfg.MaxSeedRules)
		return
	}
	// Reject a full store before paying for session construction (classifier
	// training plus the engine's index write lock); Create re-checks under
	// its lock.
	if !s.store.HasCapacity() {
		writeError(w, http.StatusServiceUnavailable, "server: session limit reached")
		return
	}
	budget := req.Budget
	if budget <= 0 {
		budget = s.cfg.DefaultBudget
	}
	sess, err := d.Engine.NewSession(core.SessionOptions{
		SeedRules:       req.SeedRules,
		SeedPositiveIDs: req.SeedPositiveIDs,
		Budget:          budget,
		Seed:            req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	en, err := s.store.Create(d.Name, sess)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	rep := sess.Report()
	resp := createResponse{
		ID:        en.id,
		Dataset:   d.Name,
		Budget:    sess.Budget(),
		Positives: len(rep.Positives),
	}
	for _, rec := range rep.Accepted {
		resp.SeedRules = append(resp.SeedRules, recordJSON(rec))
	}
	writeJSON(w, http.StatusCreated, resp)
}

// session resolves the {id} path value to a live session entry, writing a 404
// when it is unknown or expired.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*sessionEntry, bool) {
	id := r.PathValue("id")
	en, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired session %q", id)
		return nil, false
	}
	return en, true
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	en, ok := s.session(w, r)
	if !ok {
		return
	}
	d := s.datasets[en.dataset]
	en.mu.Lock()
	stepStart := time.Now()
	sug, more := en.sess.Next()
	stepDur := time.Since(stepStart)
	questions := en.sess.Questions()
	budget := en.sess.Budget()
	en.mu.Unlock()
	s.store.RecordStep(stepDur)
	if !more {
		writeJSON(w, http.StatusOK, suggestResponse{Done: true, BudgetLeft: budget - questions})
		return
	}
	resp := suggestResponse{
		Question:    questions + 1,
		BudgetLeft:  budget - questions,
		Key:         sug.Key,
		Rule:        sug.Rule,
		Coverage:    sug.Coverage,
		NewCoverage: sug.NewCoverage,
		Benefit:     sug.Benefit,
		AvgBenefit:  sug.AvgBenefit,
	}
	for _, id := range sug.SampleIDs {
		if sent := d.Engine.Corpus().Sentence(id); sent != nil {
			resp.Samples = append(resp.Samples, sampleJSON{ID: id, Text: sent.Text})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	en, ok := s.session(w, r)
	if !ok {
		return
	}
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	en.mu.Lock()
	rec, err := en.sess.Answer(req.Key, req.Accept)
	done := en.sess.Done()
	questions := en.sess.Questions()
	budget := en.sess.Budget()
	en.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, answerResponse{
		Record:     recordJSON(rec),
		Done:       done,
		BudgetLeft: budget - questions,
		Positives:  rec.PositivesAfter,
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	en, ok := s.session(w, r)
	if !ok {
		return
	}
	en.mu.Lock()
	rep := en.sess.Report()
	done := en.sess.Done()
	budget := en.sess.Budget()
	lastStep, avgStep := en.sess.StepLatency()
	en.mu.Unlock()
	resp := reportResponse{
		ID:             en.id,
		Dataset:        en.dataset,
		Questions:      rep.Questions,
		Budget:         budget,
		Done:           done,
		Positives:      len(rep.Positives),
		LastStepMillis: millis(lastStep),
		AvgStepMillis:  millis(avgStep),
		Accepted:       make([]ruleRecordJSON, 0, len(rep.Accepted)),
		History:        make([]ruleRecordJSON, 0, len(rep.History)),
	}
	for _, rec := range rep.Accepted {
		resp.Accepted = append(resp.Accepted, recordJSON(rec))
	}
	for _, rec := range rep.History {
		resp.History = append(resp.History, recordJSON(rec))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	en, ok := s.session(w, r)
	if !ok {
		return
	}
	d := s.datasets[en.dataset]
	en.mu.Lock()
	positives := en.sess.Positives()
	en.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := d.Engine.Corpus().WriteLabeledJSONL(w, positives); err != nil {
		// Headers are already sent; the truncated body is all we can signal.
		return
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.store.Delete(id) {
		writeError(w, http.StatusNotFound, "unknown or expired session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
