// The /v2 surface serves every error as the uniform darwin envelope; the
// directive below makes darwinlint enforce that for this file.
//
//darwin:errenvelope
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/autolabel"
	"repro/internal/ingest"
	"repro/internal/workspace"
	"repro/pkg/darwin"
)

// This file is the versioned /v2 surface: one handler set generated over the
// Backend interface below. Solo sessions and workspace attachments are both
// "labelers"; the handlers never branch on the mode — they resolve the id to
// a darwin.Labeler and call interface methods. Because the handlers see only
// Backend, the same set serves two deployments with zero handler changes:
// darwind mounts it over *Server (labelers live in this process), and
// darwin-router mounts it over internal/shard.Router (labelers live on a
// fleet of darwind shards reached through darwin.RemoteLabeler). Every error
// is served as the uniform envelope {code, message, retryable} with the
// status from the shared taxonomy (pkg/darwin/errors.go).

// Backend is the resource layer behind the /v2 handler set: it creates,
// resolves, lists and deletes labelers. *Server implements it over its local
// session store and workspace manager; internal/shard.Router implements it
// over remote darwind shards.
type Backend interface {
	// CreateLabeler validates opts, creates (or attaches) a labeler and
	// returns its status with the ID set. Implementations journal the
	// created workspace state before returning.
	//
	//darwin:journals
	CreateLabeler(ctx context.Context, opts darwin.CreateOptions) (darwin.Status, error)
	// Labeler resolves an id for the verb endpoints (suggestion, answers,
	// report, export). It fails with darwin.ErrNotFound for unknown ids.
	Labeler(id string) (darwin.Labeler, error)
	// LabelerStatus reports a labeler's status without refreshing any idle
	// timer, so periodic monitoring cannot keep abandoned labelers alive.
	LabelerStatus(ctx context.Context, id string) (darwin.Status, error)
	// ListLabelers returns one page of live labeler statuses starting
	// strictly after cursor ("" for the first page).
	ListLabelers(ctx context.Context, cursor string, limit int) (darwin.LabelerPage, error)
	// ListDatasets returns one page of the served dataset names.
	ListDatasets(ctx context.Context, cursor string, limit int) (darwin.DatasetPage, error)
	// DeleteLabeler closes and removes a labeler (detaching the annotator
	// for workspace attachments). Implementations journal the detach before
	// returning.
	//
	//darwin:journals
	DeleteLabeler(ctx context.Context, id string) error

	// CreateLabelingJob resolves the spec (expanding any labeler reference
	// into rule strings) and submits an async corpus-labeling job for the
	// dataset, returning its queued status with the job ID set.
	// Implementations journal the job-create record durably before
	// returning, so an accepted job survives a crash.
	//
	//darwin:journals
	CreateLabelingJob(ctx context.Context, dataset string, spec autolabel.Spec) (autolabel.JobStatus, error)
	// LabelingJob reports a labeling job's status with progress counters.
	LabelingJob(ctx context.Context, dataset, id string) (autolabel.JobStatus, error)
	// LabelingJobOutput streams a done job's labeled JSONL to w, starting at
	// byte offset (resumable download). It fails with a typed error before
	// writing anything when the job is unknown or not done.
	LabelingJobOutput(ctx context.Context, dataset, id string, offset int64, w io.Writer) error
	// SnubaBaseline mines a Snuba heuristic committee from a gold-labeled
	// seed and scores it (and optionally an interactive committee)
	// corpus-wide — the paper's automatic baseline as one synchronous call.
	SnubaBaseline(ctx context.Context, dataset string, req autolabel.SnubaRequest) (autolabel.SnubaResult, error)

	// IngestSentences appends a validated batch of sentences to the
	// dataset's live corpus, durably (journaled before returning), and
	// extends its index incrementally. Not idempotent: the router attempts
	// it exactly once.
	//
	//darwin:journals
	IngestSentences(ctx context.Context, dataset string, batch []ingest.Sentence) (darwin.IngestResult, error)
}

// RegisterV2 registers the /v2 handler set over b. register is called once
// per route with the "METHOD /pattern" mux pattern.
func RegisterV2(b Backend, register func(pattern string, h http.HandlerFunc)) {
	register("GET /v2/datasets", handleV2Datasets(b))
	register("POST /v2/labelers", handleV2Create(b))
	register("GET /v2/labelers", handleV2List(b))
	register("GET /v2/labelers/{id}", handleV2Get(b))
	register("GET /v2/labelers/{id}/suggestion", handleV2Suggest(b))
	register("POST /v2/labelers/{id}/answers", handleV2Answers(b))
	register("GET /v2/labelers/{id}/report", handleV2Report(b))
	register("GET /v2/labelers/{id}/export", handleV2Export(b))
	register("DELETE /v2/labelers/{id}", handleV2Delete(b))
	register("POST /v2/datasets/{dataset}/labeling-jobs", handleV2JobCreate(b))
	register("GET /v2/datasets/{dataset}/labeling-jobs/{id}", handleV2JobStatus(b))
	register("GET /v2/datasets/{dataset}/labeling-jobs/{id}/output", handleV2JobOutput(b))
	register("POST /v2/datasets/{dataset}/baselines/snuba", handleV2Snuba(b))
	register("POST /v2/datasets/{dataset}/sentences", handleV2Ingest(b))
}

// V2Handler returns a handler serving just the /v2 surface over b — what
// cmd/darwin-router mounts (darwind registers the same routes on its own mux
// alongside /v1 and /healthz).
func V2Handler(b Backend) http.Handler {
	mux := http.NewServeMux()
	RegisterV2(b, func(pattern string, h http.HandlerFunc) { mux.HandleFunc(pattern, h) })
	return mux
}

// defaultPageLimit and maxPageLimit bound the /v2 list endpoints.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// maxLabelers bounds the workspace-attachment registry (sessions are
// bounded by the store's own MaxSessions).
const maxLabelers = 4096

// wsLabelerID derives the public labeler id of a workspace attachment
// deterministically from (workspace, annotator). The registry entry itself
// is in-memory, but because the id is a pure function of durable state it
// survives a restart: server.New re-derives the same ids for every
// journaled attachment (rebuildLabelers), so a remote client can keep
// driving the labeler id it was handed before the crash.
func wsLabelerID(wsID, annotator string) string {
	sum := sha256.Sum256([]byte("darwin/ws-labeler\x00" + wsID + "\x00" + annotator))
	return "w" + hex.EncodeToString(sum[:])[:31]
}

// wsLabeler is one registered workspace attachment: the labeler id names
// the (workspace, annotator) pair and holds the bound SDK adapter.
type wsLabeler struct {
	id  string
	lab *darwin.WorkspaceLabeler
}

// labelerRegistry tracks the workspace-backed labelers created via /v2.
// Session-backed labelers live in the session store (shared with /v1);
// workspace lifetime is governed by the workspace manager's TTL. Entries
// are dropped on delete, on access once their workspace turns out to be
// gone (Labeler), and by pruneDeadLabelers sweeps (listing, and before
// refusing a create at the capacity cap).
type labelerRegistry struct {
	mu    sync.Mutex //darwin:lockrank store
	items map[string]*wsLabeler
}

func newLabelerRegistry() *labelerRegistry {
	return &labelerRegistry{items: make(map[string]*wsLabeler)}
}

func (reg *labelerRegistry) add(en *wsLabeler) error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, replacing := reg.items[en.id]; !replacing && len(reg.items) >= maxLabelers {
		return fmt.Errorf("%w: labeler limit reached (%d live labelers)", darwin.ErrUnavailable, len(reg.items))
	}
	reg.items[en.id] = en
	return nil
}

func (reg *labelerRegistry) get(id string) (*wsLabeler, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	en, ok := reg.items[id]
	return en, ok
}

func (reg *labelerRegistry) remove(id string) (*wsLabeler, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	en, ok := reg.items[id]
	delete(reg.items, id)
	return en, ok
}

// prune drops every entry alive rejects and reports how many were removed.
// The alive callback runs under reg.mu, so it may only acquire locks ranked
// below store.
//
//darwin:lockrank-callback store
func (reg *labelerRegistry) prune(alive func(*wsLabeler) bool) int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	n := 0
	for id, en := range reg.items {
		if !alive(en) {
			delete(reg.items, id)
			n++
		}
	}
	return n
}

func (reg *labelerRegistry) ids() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]string, 0, len(reg.items))
	for id := range reg.items {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// registerV2 wires the /v2 routes onto the server's own mux, with *Server
// itself as the backend.
func (s *Server) registerV2() {
	RegisterV2(s, s.handle)
}

// writeV2Error serves err as the uniform envelope with its taxonomy status.
func writeV2Error(w http.ResponseWriter, err error) {
	writeJSON(w, darwin.HTTPStatus(err), darwin.Envelope(err))
}

// --- the generic /v2 handlers (one closure set over any Backend) ---

// handleV2Create acks 201 only after CreateLabeler has journaled the new
// workspace/session state.
//
//darwin:mutating-handler
func handleV2Create(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req darwin.CreateOptions
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV2Error(w, fmt.Errorf("%w: invalid JSON body: %v", darwin.ErrInvalid, err))
			return
		}
		st, err := b.CreateLabeler(r.Context(), req)
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	}
}

func handleV2Get(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := b.LabelerStatus(r.Context(), r.PathValue("id"))
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}
}

func handleV2List(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		limit, err := parseLimit(r)
		if err != nil {
			writeV2Error(w, err)
			return
		}
		page, err := b.ListLabelers(r.Context(), r.URL.Query().Get("cursor"), limit)
		if err != nil {
			writeV2Error(w, err)
			return
		}
		if page.Labelers == nil {
			page.Labelers = []darwin.Status{}
		}
		writeJSON(w, http.StatusOK, page)
	}
}

func handleV2Datasets(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		limit, err := parseLimit(r)
		if err != nil {
			writeV2Error(w, err)
			return
		}
		page, err := b.ListDatasets(r.Context(), r.URL.Query().Get("cursor"), limit)
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusOK, page)
	}
}

func handleV2Suggest(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lab, err := b.Labeler(r.PathValue("id"))
		if err != nil {
			writeV2Error(w, err)
			return
		}
		sug, err := lab.Suggest(r.Context())
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sug)
	}
}

// handleV2Answers acks 200 only after the labeler has journaled the applied
// verdicts (the //darwin:journals contract on the answer interfaces).
//
//darwin:mutating-handler
func handleV2Answers(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lab, err := b.Labeler(r.PathValue("id"))
		if err != nil {
			writeV2Error(w, err)
			return
		}
		var req struct {
			Answers []darwin.Answer `json:"answers"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV2Error(w, fmt.Errorf("%w: invalid JSON body: %v", darwin.ErrInvalid, err))
			return
		}
		if len(req.Answers) == 0 {
			writeV2Error(w, fmt.Errorf("%w: at least one answer is required", darwin.ErrInvalid))
			return
		}
		var (
			recs     []darwin.RuleRecord
			st       darwin.Status
			batchErr error
		)
		if bs, ok := lab.(darwin.BatchStatusAnswerer); ok {
			// One call returns the post-batch status alongside the records,
			// so the router needs no second Status round trip — and a shard
			// dying between the two calls can no longer 503 a batch that was
			// already durably applied.
			recs, st, batchErr = bs.AnswerBatchStatus(r.Context(), req.Answers)
		} else {
			recs, batchErr = darwin.AnswerBatch(r.Context(), lab, req.Answers)
			if batchErr == nil || len(recs) > 0 {
				var stErr error
				st, stErr = labelerStatus(r, lab)
				if stErr != nil {
					writeV2Error(w, stErr)
					return
				}
			}
		}
		if batchErr != nil && len(recs) == 0 {
			// Nothing applied: a plain error response.
			writeV2Error(w, batchErr)
			return
		}
		resp := struct {
			Applied    int                   `json:"applied"`
			Records    []darwin.RuleRecord   `json:"records"`
			Questions  int                   `json:"questions"`
			BudgetLeft int                   `json:"budget_left"`
			Positives  int                   `json:"positives"`
			Done       bool                  `json:"done"`
			Error      *darwin.ErrorEnvelope `json:"error,omitempty"`
		}{
			Applied:    len(recs),
			Records:    recs,
			Questions:  st.Questions,
			BudgetLeft: st.Budget - st.Questions,
			Positives:  st.Positives,
			Done:       st.Done,
		}
		if len(recs) > 0 {
			// Derive the caller-visible counters from the batch's own last
			// record (its committed question number), not from the racy status
			// read above — a concurrent annotator on the same workspace must
			// not shift this response. Budget is immutable, so st.Budget is
			// safe to combine.
			last := recs[len(recs)-1]
			resp.Questions = last.Question
			resp.BudgetLeft = st.Budget - last.Question
			resp.Positives = last.PositivesAfter
			resp.Done = last.Question >= st.Budget
		}
		if batchErr != nil {
			// Fail-fast mid-batch: report the applied prefix alongside the
			// typed error (nothing applied is rolled back — each applied answer
			// already went through the journal).
			env := darwin.Envelope(batchErr)
			resp.Error = &env
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func handleV2Report(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lab, err := b.Labeler(r.PathValue("id"))
		if err != nil {
			writeV2Error(w, err)
			return
		}
		rep, err := lab.Report(r.Context())
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	}
}

func handleV2Export(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lab, err := b.Labeler(r.PathValue("id"))
		if err != nil {
			writeV2Error(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		// Headers are sent on first body write, so an export that fails
		// before streaming anything (e.g. its shard is down) can still be
		// served as the typed envelope instead of an empty 200; a mid-stream
		// failure can only truncate the body.
		cw := &countingResponseWriter{w: w}
		if err := lab.Export(r.Context(), cw); err != nil && cw.n == 0 {
			writeV2Error(w, err)
		}
	}
}

// countingResponseWriter counts body bytes through to the response so
// handleV2Export knows whether an error arrived before any output.
type countingResponseWriter struct {
	w http.ResponseWriter
	n int64
}

func (cw *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// handleV2Delete acks 204 only after DeleteLabeler has journaled the
// detach/delete.
//
//darwin:mutating-handler
func handleV2Delete(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := b.DeleteLabeler(r.Context(), r.PathValue("id")); err != nil {
			writeV2Error(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func labelerStatus(r *http.Request, lab darwin.Labeler) (darwin.Status, error) {
	st, ok := lab.(darwin.Statuser)
	if !ok {
		return darwin.Status{}, fmt.Errorf("%w: labeler does not report status", darwin.ErrInternal)
	}
	return st.Status(r.Context())
}

// Page applies cursor pagination over a sorted id list: items strictly after
// cursor, at most limit (clamped to the /v2 page bounds), plus the next
// cursor ("" when the page is last). internal/shard reuses it for its
// fan-out merges.
func Page(ids []string, cursor string, limit int) (pageIDs []string, next string) {
	limit = ClampPageLimit(limit)
	start := 0
	if cursor != "" {
		start = sort.SearchStrings(ids, cursor)
		if start < len(ids) && ids[start] == cursor {
			start++
		}
	}
	end := start + limit
	if end > len(ids) {
		end = len(ids)
	}
	pageIDs = ids[start:end]
	if end < len(ids) {
		next = ids[end-1]
	}
	return pageIDs, next
}

// ClampPageLimit resolves a requested page limit against the /v2 bounds
// (non-positive → default, capped at the maximum).
func ClampPageLimit(limit int) int {
	if limit <= 0 {
		return defaultPageLimit
	}
	if limit > maxPageLimit {
		return maxPageLimit
	}
	return limit
}

func parseLimit(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, nil
	}
	limit, err := strconv.Atoi(raw)
	if err != nil || limit <= 0 {
		return 0, fmt.Errorf("%w: limit must be a positive integer, got %q", darwin.ErrInvalid, raw)
	}
	return limit, nil
}

// --- *Server as the local Backend ---

// timedSessionLabeler folds session suggest latency into the healthz
// aggregate on the /v2 path, mirroring what the /v1 handlers do through
// suggestStep, and journals applied answers when session journaling is on.
// Embedding keeps every other Labeler/BatchAnswerer/Statuser method on the
// adapter itself.
type timedSessionLabeler struct {
	*darwin.SessionLabeler
	store *Store
	// id and sj journal applied answers (sj nil when journaling is off).
	id string
	sj *sessionJournal
}

func (l *timedSessionLabeler) Suggest(ctx context.Context) (darwin.Suggestion, error) {
	start := time.Now()
	sug, err := l.SessionLabeler.Suggest(ctx)
	l.store.RecordStep(time.Since(start))
	return sug, err
}

func (l *timedSessionLabeler) AnswerBatch(ctx context.Context, answers []darwin.Answer) ([]darwin.RuleRecord, error) {
	recs, err := l.SessionLabeler.AnswerBatch(ctx, answers)
	if l.sj != nil {
		// Journal the applied prefix even on a mid-batch error: those answers
		// changed durable state.
		l.sj.recordAnswers(l.id, recs)
	}
	return recs, err
}

func (l *timedSessionLabeler) AnswerBatchStatus(ctx context.Context, answers []darwin.Answer) ([]darwin.RuleRecord, darwin.Status, error) {
	recs, st, err := l.SessionLabeler.AnswerBatchStatus(ctx, answers)
	if l.sj != nil {
		l.sj.recordAnswers(l.id, recs)
	}
	return recs, st, err
}

// CreateLabeler implements Backend.
func (s *Server) CreateLabeler(ctx context.Context, req darwin.CreateOptions) (darwin.Status, error) {
	switch req.Mode {
	case "", darwin.ModeSession:
		return s.createSessionLabeler(ctx, req)
	case darwin.ModeWorkspace:
		return s.createWorkspaceLabeler(ctx, req)
	default:
		return darwin.Status{}, fmt.Errorf("%w: unknown mode %q (want %q or %q)",
			darwin.ErrInvalid, req.Mode, darwin.ModeSession, darwin.ModeWorkspace)
	}
}

func (s *Server) createSessionLabeler(ctx context.Context, req darwin.CreateOptions) (darwin.Status, error) {
	lab, en, err := s.newSessionLabeler(req.Dataset, req.SeedRules, req.SeedPositiveIDs, req.Budget, req.Seed)
	if err != nil {
		return darwin.Status{}, err
	}
	st, err := lab.Status(ctx)
	if err != nil {
		return darwin.Status{}, err
	}
	st.ID = en.id
	return st, nil
}

func (s *Server) createWorkspaceLabeler(ctx context.Context, req darwin.CreateOptions) (darwin.Status, error) {
	if req.Annotator == "" {
		return darwin.Status{}, fmt.Errorf("%w: annotator name is required in workspace mode", darwin.ErrInvalid)
	}
	wsID := req.Workspace
	fresh := wsID == ""
	if fresh {
		// Fresh workspace for this labeler; its durability and TTL are the
		// workspace manager's business.
		if _, ok := s.datasets[req.Dataset]; !ok {
			return darwin.Status{}, fmt.Errorf("%w: unknown dataset %q (have %v)", darwin.ErrNotFound, req.Dataset, s.DatasetNames())
		}
		if len(req.SeedRules) > s.cfg.MaxSeedRules {
			return darwin.Status{}, fmt.Errorf("%w: too many seed rules (%d > %d)", darwin.ErrInvalid, len(req.SeedRules), s.cfg.MaxSeedRules)
		}
		budget := req.Budget
		if budget <= 0 {
			budget = s.cfg.DefaultBudget
		}
		ws, err := s.mgr.Create(req.Dataset, workspace.Options{
			SeedRules:       req.SeedRules,
			SeedPositiveIDs: req.SeedPositiveIDs,
			Budget:          budget,
			Seed:            req.Seed,
		})
		if err != nil {
			return darwin.Status{}, fmt.Errorf("%w: %v", darwin.ErrInvalid, err)
		}
		wsID = ws.ID()
	} else {
		// Joining an existing workspace: the workspace's own dataset,
		// seeds, budget and seed govern; silently ignoring conflicting
		// request fields would hand the caller a labeler over a different
		// corpus than they asked for.
		ws, ok := s.mgr.Get(wsID)
		if !ok {
			return darwin.Status{}, fmt.Errorf("%w: unknown or expired workspace %q", darwin.ErrNotFound, wsID)
		}
		if req.Dataset != "" && req.Dataset != ws.Dataset() {
			return darwin.Status{}, fmt.Errorf("%w: workspace %s serves dataset %q, not %q",
				darwin.ErrInvalid, wsID, ws.Dataset(), req.Dataset)
		}
		if len(req.SeedRules) > 0 || len(req.SeedPositiveIDs) > 0 || req.Budget > 0 || req.Seed != 0 {
			return darwin.Status{}, fmt.Errorf("%w: seed_rules, seed_positive_ids, budget and seed cannot be set when joining an existing workspace", darwin.ErrInvalid)
		}
	}
	// From here on a failure must not orphan a freshly created (and
	// journaled) workspace the client never learned the id of.
	fail := func(err error) (darwin.Status, error) {
		if fresh {
			// Best-effort cleanup on an already-failing path; the Writer's
			// sticky error resurfaces on the next journaling operation.
			_, _ = s.mgr.Evict(wsID, "labeler create failed")
		}
		return darwin.Status{}, err
	}
	lab, err := darwin.AttachWorkspace(s.mgr, wsID, req.Annotator)
	if err != nil {
		return fail(err)
	}
	// The labeler id is a pure function of (workspace, annotator), so the
	// same attachment resolves under the same id after a restart.
	id := wsLabelerID(wsID, req.Annotator)
	en := &wsLabeler{id: id, lab: lab}
	if err := s.labelers.add(en); err != nil {
		// At capacity: evict entries orphaned by workspace TTL eviction and
		// retry once before refusing.
		s.pruneDeadLabelers()
		if err := s.labelers.add(en); err != nil {
			_ = lab.Close(ctx)
			return fail(err)
		}
	}
	st, err := lab.Status(ctx)
	if err != nil {
		return darwin.Status{}, err
	}
	st.ID = id
	return st, nil
}

// Labeler implements Backend: it maps a labeler id to its darwin.Labeler.
func (s *Server) Labeler(id string) (darwin.Labeler, error) {
	if en, ok := s.store.Get(id); ok {
		return &timedSessionLabeler{SessionLabeler: en.lab, store: s.store, id: id, sj: s.sessJournal}, nil
	}
	if en, ok := s.labelers.get(id); ok {
		// A TTL-evicted workspace leaves its attachment entries behind, and
		// an attachment-TTL sweep can detach a single annotator from a live
		// workspace; drop such entries on access instead of serving a dead
		// labeler.
		ws, live := s.mgr.Get(en.lab.Workspace())
		if !live || !ws.HasAnnotator(en.lab.Annotator()) {
			s.labelers.remove(id)
			return nil, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
		}
		return en.lab, nil
	}
	return nil, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
}

// pruneDeadLabelers sweeps expired workspaces and drops every registry
// entry whose workspace is gone, so abandoned attachments cannot pin the
// registry at its capacity cap.
func (s *Server) pruneDeadLabelers() int {
	s.mgr.Sweep()
	live := make(map[string]bool)
	for _, id := range s.mgr.IDs() {
		live[id] = true
	}
	return s.labelers.prune(func(en *wsLabeler) bool {
		if !live[en.lab.Workspace()] {
			return false
		}
		// The workspace survived but the attachment itself may have been
		// reclaimed by the attachment-TTL sweep.
		ws, ok := s.mgr.Peek(en.lab.Workspace())
		return ok && ws.HasAnnotator(en.lab.Annotator())
	})
}

// rebuildLabelers re-registers one labeler per journaled workspace
// attachment after recovery. Together with the deterministic id derivation
// this is what lets a remote client resume its labeler across a darwind
// restart: the registry itself is volatile, but its content is a pure
// function of the recovered workspaces.
func (s *Server) rebuildLabelers() {
	for _, wsID := range s.mgr.IDs() {
		ws, ok := s.mgr.Peek(wsID)
		if !ok {
			continue
		}
		for _, name := range ws.Annotators() {
			lab, err := darwin.AdoptWorkspace(s.mgr, wsID, name)
			if err != nil {
				// The workspace recovered but its attachment cannot be
				// served; the client holding this id will 404, so leave an
				// operator-visible trace.
				log.Printf("server: recovery: attachment %s/%s not re-adopted: %v", wsID, name, err)
				continue
			}
			if err := s.labelers.add(&wsLabeler{id: wsLabelerID(wsID, name), lab: lab}); err != nil {
				log.Printf("server: recovery: attachment %s/%s not registered: %v", wsID, name, err)
			}
		}
	}
}

// LabelerStatus implements Backend: a status peek that never refreshes idle
// timers, so periodic monitoring cannot keep abandoned labelers alive
// forever. Workspace statuses read the workspace's cached counters snapshot
// and therefore do not wait on a workspace lock held by an in-flight
// suggest.
func (s *Server) LabelerStatus(ctx context.Context, id string) (darwin.Status, error) {
	if en, ok := s.store.Peek(id); ok {
		st, err := en.lab.Status(ctx)
		if err != nil {
			return darwin.Status{}, err
		}
		st.ID = id
		return st, nil
	}
	if en, ok := s.labelers.get(id); ok {
		ws, live := s.mgr.Peek(en.lab.Workspace())
		if !live || !ws.HasAnnotator(en.lab.Annotator()) {
			s.labelers.remove(id)
			return darwin.Status{}, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
		}
		questions, positives, done := ws.Stats()
		return darwin.Status{
			ID:        id,
			Dataset:   ws.Dataset(),
			Mode:      darwin.ModeWorkspace,
			Workspace: en.lab.Workspace(),
			Annotator: en.lab.Annotator(),
			Budget:    ws.Budget(),
			Questions: questions,
			Positives: positives,
			Done:      done,
		}, nil
	}
	return darwin.Status{}, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
}

// ListLabelers implements Backend.
func (s *Server) ListLabelers(ctx context.Context, cursor string, limit int) (darwin.LabelerPage, error) {
	s.pruneDeadLabelers()
	ids := append(s.store.IDs(), s.labelers.ids()...)
	sort.Strings(ids)
	pageIDs, next := Page(ids, cursor, limit)
	page := darwin.LabelerPage{Labelers: make([]darwin.Status, 0, len(pageIDs)), NextCursor: next}
	for _, id := range pageIDs {
		st, err := s.LabelerStatus(ctx, id)
		if err != nil {
			continue // evicted between listing and resolution
		}
		page.Labelers = append(page.Labelers, st)
	}
	return page, nil
}

// ListDatasets implements Backend.
func (s *Server) ListDatasets(ctx context.Context, cursor string, limit int) (darwin.DatasetPage, error) {
	names, next := Page(s.DatasetNames(), cursor, limit)
	return darwin.DatasetPage{Datasets: names, NextCursor: next}, nil
}

// DeleteLabeler implements Backend.
func (s *Server) DeleteLabeler(ctx context.Context, id string) error {
	if en, ok := s.labelers.get(id); ok {
		// Close (detach) first, and drop the registry entry only once it
		// succeeded — a failed detach (broken journal) must stay
		// addressable so the DELETE can be retried.
		if err := en.lab.Close(ctx); err != nil && !errors.Is(err, darwin.ErrNotFound) {
			return err
		}
		s.labelers.remove(id)
		return nil
	}
	if s.deleteSession(ctx, id) {
		return nil
	}
	return fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
}
