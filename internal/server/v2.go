package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/workspace"
	"repro/pkg/darwin"
)

// This file is the versioned /v2 surface: one handler set generated over the
// public darwin.Labeler interface. Solo sessions and workspace attachments
// are both "labelers"; the handlers below never branch on the mode — they
// resolve the id to a Labeler and call interface methods, so a future
// sharding router that implements Labeler by delegating to remote clients
// plugs in with zero handler changes. Every error is served as the uniform
// envelope {code, message, retryable} with the status from the shared
// taxonomy (pkg/darwin/errors.go).

// defaultPageLimit and maxPageLimit bound the /v2 list endpoints.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// maxLabelers bounds the workspace-attachment registry (sessions are
// bounded by the store's own MaxSessions).
const maxLabelers = 4096

// wsLabeler is one registered workspace attachment: the labeler id names
// the (workspace, annotator) pair and holds the bound SDK adapter.
type wsLabeler struct {
	id  string
	lab *darwin.WorkspaceLabeler
}

// labelerRegistry tracks the workspace-backed labelers created via /v2.
// Session-backed labelers live in the session store (shared with /v1);
// workspace lifetime is governed by the workspace manager's TTL. Entries
// are dropped on delete, on access once their workspace turns out to be
// gone (resolveLabeler), and by pruneDeadLabelers sweeps (listing, and
// before refusing a create at the capacity cap).
type labelerRegistry struct {
	mu    sync.Mutex
	items map[string]*wsLabeler
}

func newLabelerRegistry() *labelerRegistry {
	return &labelerRegistry{items: make(map[string]*wsLabeler)}
}

func (reg *labelerRegistry) add(en *wsLabeler) error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if len(reg.items) >= maxLabelers {
		return fmt.Errorf("%w: labeler limit reached (%d live labelers)", darwin.ErrUnavailable, len(reg.items))
	}
	reg.items[en.id] = en
	return nil
}

func (reg *labelerRegistry) get(id string) (*wsLabeler, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	en, ok := reg.items[id]
	return en, ok
}

func (reg *labelerRegistry) remove(id string) (*wsLabeler, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	en, ok := reg.items[id]
	delete(reg.items, id)
	return en, ok
}

// prune drops every entry alive rejects and reports how many were removed.
func (reg *labelerRegistry) prune(alive func(*wsLabeler) bool) int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	n := 0
	for id, en := range reg.items {
		if !alive(en) {
			delete(reg.items, id)
			n++
		}
	}
	return n
}

func (reg *labelerRegistry) ids() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]string, 0, len(reg.items))
	for id := range reg.items {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// registerV2 wires the /v2 routes.
func (s *Server) registerV2() {
	s.handle("GET /v2/datasets", s.handleV2Datasets)
	s.handle("POST /v2/labelers", s.handleV2Create)
	s.handle("GET /v2/labelers", s.handleV2List)
	s.handle("GET /v2/labelers/{id}", s.handleV2Get)
	s.handle("GET /v2/labelers/{id}/suggestion", s.handleV2Suggest)
	s.handle("POST /v2/labelers/{id}/answers", s.handleV2Answers)
	s.handle("GET /v2/labelers/{id}/report", s.handleV2Report)
	s.handle("GET /v2/labelers/{id}/export", s.handleV2Export)
	s.handle("DELETE /v2/labelers/{id}", s.handleV2Delete)
}

// writeV2Error serves err as the uniform envelope with its taxonomy status.
func writeV2Error(w http.ResponseWriter, err error) {
	writeJSON(w, darwin.HTTPStatus(err), darwin.Envelope(err))
}

// resolveLabeler maps a labeler id to its Labeler. The extra Statuser is
// what the status and list endpoints poll; both local SDK adapters
// implement it.
func (s *Server) resolveLabeler(id string) (darwin.Labeler, error) {
	if en, ok := s.store.Get(id); ok {
		return en.lab, nil
	}
	if en, ok := s.labelers.get(id); ok {
		// A TTL-evicted workspace leaves its attachment entries behind;
		// drop them on access instead of serving a dead labeler.
		if _, live := s.mgr.Get(en.lab.Workspace()); !live {
			s.labelers.remove(id)
			return nil, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
		}
		return en.lab, nil
	}
	return nil, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
}

// pruneDeadLabelers sweeps expired workspaces and drops every registry
// entry whose workspace is gone, so abandoned attachments cannot pin the
// registry at its capacity cap.
func (s *Server) pruneDeadLabelers() int {
	s.mgr.Sweep()
	live := make(map[string]bool)
	for _, id := range s.mgr.IDs() {
		live[id] = true
	}
	return s.labelers.prune(func(en *wsLabeler) bool { return live[en.lab.Workspace()] })
}

// statusPeek reports a labeler's status without refreshing any idle timer —
// the lookup for GET /v2/labelers/{id} and the listing, so that periodic
// monitoring cannot keep abandoned labelers alive forever.
func (s *Server) statusPeek(ctx context.Context, id string) (darwin.Status, error) {
	if en, ok := s.store.Peek(id); ok {
		st, err := en.lab.Status(ctx)
		if err != nil {
			return darwin.Status{}, err
		}
		st.ID = id
		return st, nil
	}
	if en, ok := s.labelers.get(id); ok {
		ws, live := s.mgr.Peek(en.lab.Workspace())
		if !live {
			s.labelers.remove(id)
			return darwin.Status{}, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
		}
		questions, positives, done := ws.Stats()
		return darwin.Status{
			ID:        id,
			Dataset:   ws.Dataset(),
			Mode:      darwin.ModeWorkspace,
			Workspace: en.lab.Workspace(),
			Annotator: en.lab.Annotator(),
			Budget:    ws.Budget(),
			Questions: questions,
			Positives: positives,
			Done:      done,
		}, nil
	}
	return darwin.Status{}, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id)
}

// --- create / status / list ---

func (s *Server) handleV2Create(w http.ResponseWriter, r *http.Request) {
	var req darwin.CreateOptions
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeV2Error(w, fmt.Errorf("%w: invalid JSON body: %v", darwin.ErrInvalid, err))
		return
	}
	switch req.Mode {
	case "", darwin.ModeSession:
		s.createV2Session(w, r, req)
	case darwin.ModeWorkspace:
		s.createV2Workspace(w, r, req)
	default:
		writeV2Error(w, fmt.Errorf("%w: unknown mode %q (want %q or %q)",
			darwin.ErrInvalid, req.Mode, darwin.ModeSession, darwin.ModeWorkspace))
	}
}

func (s *Server) createV2Session(w http.ResponseWriter, r *http.Request, req darwin.CreateOptions) {
	lab, en, err := s.newSessionLabeler(req.Dataset, req.SeedRules, req.SeedPositiveIDs, req.Budget, req.Seed)
	if err != nil {
		writeV2Error(w, err)
		return
	}
	st, err := lab.Status(r.Context())
	if err != nil {
		writeV2Error(w, err)
		return
	}
	st.ID = en.id
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) createV2Workspace(w http.ResponseWriter, r *http.Request, req darwin.CreateOptions) {
	if req.Annotator == "" {
		writeV2Error(w, fmt.Errorf("%w: annotator name is required in workspace mode", darwin.ErrInvalid))
		return
	}
	wsID := req.Workspace
	fresh := wsID == ""
	if fresh {
		// Fresh workspace for this labeler; its durability and TTL are the
		// workspace manager's business.
		if _, ok := s.datasets[req.Dataset]; !ok {
			writeV2Error(w, fmt.Errorf("%w: unknown dataset %q (have %v)", darwin.ErrNotFound, req.Dataset, s.DatasetNames()))
			return
		}
		if len(req.SeedRules) > s.cfg.MaxSeedRules {
			writeV2Error(w, fmt.Errorf("%w: too many seed rules (%d > %d)", darwin.ErrInvalid, len(req.SeedRules), s.cfg.MaxSeedRules))
			return
		}
		budget := req.Budget
		if budget <= 0 {
			budget = s.cfg.DefaultBudget
		}
		ws, err := s.mgr.Create(req.Dataset, workspace.Options{
			SeedRules:       req.SeedRules,
			SeedPositiveIDs: req.SeedPositiveIDs,
			Budget:          budget,
			Seed:            req.Seed,
		})
		if err != nil {
			writeV2Error(w, fmt.Errorf("%w: %v", darwin.ErrInvalid, err))
			return
		}
		wsID = ws.ID()
	} else {
		// Joining an existing workspace: the workspace's own dataset,
		// seeds, budget and seed govern; silently ignoring conflicting
		// request fields would hand the caller a labeler over a different
		// corpus than they asked for.
		ws, ok := s.mgr.Get(wsID)
		if !ok {
			writeV2Error(w, fmt.Errorf("%w: unknown or expired workspace %q", darwin.ErrNotFound, wsID))
			return
		}
		if req.Dataset != "" && req.Dataset != ws.Dataset() {
			writeV2Error(w, fmt.Errorf("%w: workspace %s serves dataset %q, not %q",
				darwin.ErrInvalid, wsID, ws.Dataset(), req.Dataset))
			return
		}
		if len(req.SeedRules) > 0 || len(req.SeedPositiveIDs) > 0 || req.Budget > 0 || req.Seed != 0 {
			writeV2Error(w, fmt.Errorf("%w: seed_rules, seed_positive_ids, budget and seed cannot be set when joining an existing workspace", darwin.ErrInvalid))
			return
		}
	}
	// From here on a failure must not orphan a freshly created (and
	// journaled) workspace the client never learned the id of.
	fail := func(err error) {
		if fresh {
			s.mgr.Evict(wsID, "labeler create failed")
		}
		writeV2Error(w, err)
	}
	lab, err := darwin.AttachWorkspace(s.mgr, wsID, req.Annotator)
	if err != nil {
		fail(err)
		return
	}
	id, err := newSessionID()
	if err != nil {
		_ = lab.Close(r.Context())
		fail(fmt.Errorf("%w: %v", darwin.ErrInternal, err))
		return
	}
	en := &wsLabeler{id: id, lab: lab}
	if err := s.labelers.add(en); err != nil {
		// At capacity: evict entries orphaned by workspace TTL eviction and
		// retry once before refusing.
		s.pruneDeadLabelers()
		if err := s.labelers.add(en); err != nil {
			_ = lab.Close(r.Context())
			fail(err)
			return
		}
	}
	st, err := lab.Status(r.Context())
	if err != nil {
		writeV2Error(w, err)
		return
	}
	st.ID = id
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleV2Get(w http.ResponseWriter, r *http.Request) {
	st, err := s.statusPeek(r.Context(), r.PathValue("id"))
	if err != nil {
		writeV2Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func labelerStatus(r *http.Request, lab darwin.Labeler) (darwin.Status, error) {
	st, ok := lab.(darwin.Statuser)
	if !ok {
		return darwin.Status{}, fmt.Errorf("%w: labeler does not report status", darwin.ErrInternal)
	}
	return st.Status(r.Context())
}

// page applies cursor pagination over a sorted id list: items strictly after
// cursor, at most limit, plus the next cursor ("" when the page is last).
func page(ids []string, cursor string, limit int) (pageIDs []string, next string) {
	if limit <= 0 {
		limit = defaultPageLimit
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	start := 0
	if cursor != "" {
		start = sort.SearchStrings(ids, cursor)
		if start < len(ids) && ids[start] == cursor {
			start++
		}
	}
	end := start + limit
	if end > len(ids) {
		end = len(ids)
	}
	pageIDs = ids[start:end]
	if end < len(ids) {
		next = ids[end-1]
	}
	return pageIDs, next
}

func (s *Server) handleV2List(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r)
	if err != nil {
		writeV2Error(w, err)
		return
	}
	s.pruneDeadLabelers()
	ids := append(s.store.IDs(), s.labelers.ids()...)
	sort.Strings(ids)
	pageIDs, next := page(ids, r.URL.Query().Get("cursor"), limit)
	resp := darwin.LabelerPage{Labelers: make([]darwin.Status, 0, len(pageIDs)), NextCursor: next}
	for _, id := range pageIDs {
		st, err := s.statusPeek(r.Context(), id)
		if err != nil {
			continue // evicted between listing and resolution
		}
		resp.Labelers = append(resp.Labelers, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV2Datasets(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r)
	if err != nil {
		writeV2Error(w, err)
		return
	}
	names, next := page(s.DatasetNames(), r.URL.Query().Get("cursor"), limit)
	writeJSON(w, http.StatusOK, darwin.DatasetPage{Datasets: names, NextCursor: next})
}

func parseLimit(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, nil
	}
	limit, err := strconv.Atoi(raw)
	if err != nil || limit <= 0 {
		return 0, fmt.Errorf("%w: limit must be a positive integer, got %q", darwin.ErrInvalid, raw)
	}
	return limit, nil
}

// --- the Labeler verbs ---

func (s *Server) handleV2Suggest(w http.ResponseWriter, r *http.Request) {
	lab, err := s.resolveLabeler(r.PathValue("id"))
	if err != nil {
		writeV2Error(w, err)
		return
	}
	var sug darwin.Suggestion
	if sl, ok := lab.(*darwin.SessionLabeler); ok {
		// Session steps feed the healthz latency aggregate.
		sug, _, err = s.suggestStep(r.Context(), sl)
	} else {
		sug, err = lab.Suggest(r.Context())
	}
	if err != nil {
		writeV2Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sug)
}

func (s *Server) handleV2Answers(w http.ResponseWriter, r *http.Request) {
	lab, err := s.resolveLabeler(r.PathValue("id"))
	if err != nil {
		writeV2Error(w, err)
		return
	}
	var req struct {
		Answers []darwin.Answer `json:"answers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeV2Error(w, fmt.Errorf("%w: invalid JSON body: %v", darwin.ErrInvalid, err))
		return
	}
	if len(req.Answers) == 0 {
		writeV2Error(w, fmt.Errorf("%w: at least one answer is required", darwin.ErrInvalid))
		return
	}
	recs, batchErr := darwin.AnswerBatch(r.Context(), lab, req.Answers)
	if batchErr != nil && len(recs) == 0 {
		// Nothing applied: a plain error response.
		writeV2Error(w, batchErr)
		return
	}
	st, err := labelerStatus(r, lab)
	if err != nil {
		writeV2Error(w, err)
		return
	}
	resp := struct {
		Applied    int                   `json:"applied"`
		Records    []darwin.RuleRecord   `json:"records"`
		Questions  int                   `json:"questions"`
		BudgetLeft int                   `json:"budget_left"`
		Positives  int                   `json:"positives"`
		Done       bool                  `json:"done"`
		Error      *darwin.ErrorEnvelope `json:"error,omitempty"`
	}{
		Applied:    len(recs),
		Records:    recs,
		Questions:  st.Questions,
		BudgetLeft: st.Budget - st.Questions,
		Positives:  st.Positives,
		Done:       st.Done,
	}
	if len(recs) > 0 {
		// Derive the caller-visible counters from the batch's own last
		// record (its committed question number), not from the racy status
		// read above — a concurrent annotator on the same workspace must
		// not shift this response. Budget is immutable, so st.Budget is
		// safe to combine.
		last := recs[len(recs)-1]
		resp.Questions = last.Question
		resp.BudgetLeft = st.Budget - last.Question
		resp.Positives = last.PositivesAfter
		resp.Done = last.Question >= st.Budget
	}
	if batchErr != nil {
		// Fail-fast mid-batch: report the applied prefix alongside the
		// typed error (nothing applied is rolled back — each applied answer
		// already went through the journal).
		env := darwin.Envelope(batchErr)
		resp.Error = &env
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV2Report(w http.ResponseWriter, r *http.Request) {
	lab, err := s.resolveLabeler(r.PathValue("id"))
	if err != nil {
		writeV2Error(w, err)
		return
	}
	rep, err := lab.Report(r.Context())
	if err != nil {
		writeV2Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleV2Export(w http.ResponseWriter, r *http.Request) {
	lab, err := s.resolveLabeler(r.PathValue("id"))
	if err != nil {
		writeV2Error(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Headers are sent on first write; a mid-stream failure can only
	// truncate the body.
	_ = lab.Export(r.Context(), w)
}

func (s *Server) handleV2Delete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if en, ok := s.labelers.get(id); ok {
		// Close (detach) first, and drop the registry entry only once it
		// succeeded — a failed detach (broken journal) must stay
		// addressable so the DELETE can be retried.
		if err := en.lab.Close(r.Context()); err != nil && !errors.Is(err, darwin.ErrNotFound) {
			writeV2Error(w, err)
			return
		}
		s.labelers.remove(id)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if s.deleteSession(r.Context(), id) {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeV2Error(w, fmt.Errorf("%w: unknown or expired labeler %q", darwin.ErrNotFound, id))
}
