// Labeling-job errors are served as the uniform darwin envelope.
//
//darwin:errenvelope
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/autolabel"
	"repro/pkg/darwin"
)

// This file is the /v2 labeling-job surface: the async autolabel subsystem
// behind POST /v2/datasets/{ds}/labeling-jobs and friends, plus the
// synchronous Snuba baseline endpoint. The generic handlers sit over Backend
// like the rest of /v2, so the router serves the same routes by forwarding
// job verbs to the dataset's primary shard.

// mapAutolabelErr translates the autolabel sentinel errors into the shared
// /v2 taxonomy so the job endpoints serve the uniform envelope.
func mapAutolabelErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, autolabel.ErrInvalidSpec):
		return fmt.Errorf("%w: %v", darwin.ErrInvalid, err)
	case errors.Is(err, autolabel.ErrUnknownDataset), errors.Is(err, autolabel.ErrUnknownJob):
		return fmt.Errorf("%w: %v", darwin.ErrNotFound, err)
	case errors.Is(err, autolabel.ErrNotDone):
		return fmt.Errorf("%w: %v", darwin.ErrConflict, err)
	case errors.Is(err, autolabel.ErrDisabled):
		return fmt.Errorf("%w: %v", darwin.ErrUnavailable, err)
	default:
		return err
	}
}

// --- generic /v2 job handlers (over any Backend) ---

// handleV2JobCreate acks 202 only after CreateLabelingJob has journaled the
// job-create record (an accepted job survives a crash).
//
//darwin:mutating-handler
func handleV2JobCreate(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var spec autolabel.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeV2Error(w, fmt.Errorf("%w: invalid JSON body: %v", darwin.ErrInvalid, err))
			return
		}
		st, err := b.CreateLabelingJob(r.Context(), r.PathValue("dataset"), spec)
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	}
}

func handleV2JobStatus(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := b.LabelingJob(r.Context(), r.PathValue("dataset"), r.PathValue("id"))
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}
}

func handleV2JobOutput(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var offset int64
		if raw := r.URL.Query().Get("offset"); raw != "" {
			v, err := strconv.ParseInt(raw, 10, 64)
			if err != nil || v < 0 {
				writeV2Error(w, fmt.Errorf("%w: offset must be a non-negative integer, got %q", darwin.ErrInvalid, raw))
				return
			}
			offset = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		// Headers go out on the first body write, so a job that is unknown,
		// running, or failed is still served as the typed envelope; only a
		// mid-stream failure can truncate the body.
		cw := &countingResponseWriter{w: w}
		err := b.LabelingJobOutput(r.Context(), r.PathValue("dataset"), r.PathValue("id"), offset, cw)
		if err != nil && cw.n == 0 {
			writeV2Error(w, err)
		}
	}
}

func handleV2Snuba(b Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req autolabel.SnubaRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeV2Error(w, fmt.Errorf("%w: invalid JSON body: %v", darwin.ErrInvalid, err))
			return
		}
		res, err := b.SnubaBaseline(r.Context(), r.PathValue("dataset"), req)
		if err != nil {
			writeV2Error(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// --- *Server as the local job Backend ---

// resolveJobSpec expands a labeler reference into that labeler's accepted
// rule strings, making the spec self-contained before it is journaled: the
// recorded job re-runs identically even if the labeler has since answered
// more questions or expired.
func (s *Server) resolveJobSpec(ctx context.Context, dataset string, spec autolabel.Spec) (autolabel.Spec, error) {
	if spec.Labeler == "" {
		return spec, nil
	}
	lab, err := s.Labeler(spec.Labeler)
	if err != nil {
		return spec, err
	}
	rep, err := lab.Report(ctx)
	if err != nil {
		return spec, err
	}
	if rep.Dataset != dataset {
		return spec, fmt.Errorf("%w: labeler %s serves dataset %q, not %q",
			darwin.ErrInvalid, spec.Labeler, rep.Dataset, dataset)
	}
	if len(rep.Accepted) == 0 && len(spec.Rules) == 0 && len(spec.NegativeRules) == 0 {
		return spec, fmt.Errorf("%w: labeler %s has no accepted rules yet", darwin.ErrInvalid, spec.Labeler)
	}
	// Accepted rule display strings are parseable rule specs (grammar
	// String() round-trips through Registry.Parse).
	for _, rec := range rep.Accepted {
		spec.Rules = append(spec.Rules, rec.Rule)
	}
	spec.Labeler = ""
	return spec, nil
}

// CreateLabelingJob implements Backend.
func (s *Server) CreateLabelingJob(ctx context.Context, dataset string, spec autolabel.Spec) (autolabel.JobStatus, error) {
	if _, ok := s.datasets[dataset]; !ok {
		return autolabel.JobStatus{}, fmt.Errorf("%w: unknown dataset %q (have %v)", darwin.ErrNotFound, dataset, s.DatasetNames())
	}
	if s.jobs == nil {
		return autolabel.JobStatus{}, fmt.Errorf("%w: labeling jobs are disabled (start darwind with -jobs-dir)", darwin.ErrUnavailable)
	}
	spec, err := s.resolveJobSpec(ctx, dataset, spec)
	if err != nil {
		return autolabel.JobStatus{}, err
	}
	st, err := s.jobs.Submit(dataset, spec)
	return st, mapAutolabelErr(err)
}

// LabelingJob implements Backend.
func (s *Server) LabelingJob(ctx context.Context, dataset, id string) (autolabel.JobStatus, error) {
	if s.jobs == nil {
		return autolabel.JobStatus{}, fmt.Errorf("%w: labeling jobs are disabled (start darwind with -jobs-dir)", darwin.ErrUnavailable)
	}
	st, err := s.jobs.Status(id)
	if err != nil {
		return autolabel.JobStatus{}, mapAutolabelErr(err)
	}
	if st.Dataset != dataset {
		return autolabel.JobStatus{}, fmt.Errorf("%w: job %q belongs to dataset %q", darwin.ErrNotFound, id, st.Dataset)
	}
	return st, nil
}

// LabelingJobOutput implements Backend.
func (s *Server) LabelingJobOutput(ctx context.Context, dataset, id string, offset int64, w io.Writer) error {
	if _, err := s.LabelingJob(ctx, dataset, id); err != nil {
		return err
	}
	rc, err := s.jobs.OpenOutput(id, offset)
	if err != nil {
		return mapAutolabelErr(err)
	}
	defer rc.Close()
	_, err = io.Copy(w, rc)
	return err
}

// SnubaBaseline implements Backend. The baseline is synchronous compute over
// the shared engine, so it is live even when labeling jobs are disabled.
func (s *Server) SnubaBaseline(ctx context.Context, dataset string, req autolabel.SnubaRequest) (autolabel.SnubaResult, error) {
	d, ok := s.datasets[dataset]
	if !ok {
		return autolabel.SnubaResult{}, fmt.Errorf("%w: unknown dataset %q (have %v)", darwin.ErrNotFound, dataset, s.DatasetNames())
	}
	res, err := autolabel.RunSnuba(d.Engine, req)
	if err != nil {
		return autolabel.SnubaResult{}, mapAutolabelErr(err)
	}
	res.Dataset = dataset
	return res, nil
}

// LabelingJobs exposes the job manager's full job list (diagnostics, tests).
func (s *Server) LabelingJobs() []autolabel.JobStatus {
	if s.jobs == nil {
		return nil
	}
	return s.jobs.Jobs()
}
