package server

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"repro/pkg/darwin"
)

// TestSessionJournalRecovery pins the -journal-sessions satellite: plain solo
// sessions journaled to "<journal>.sessions" survive a server restart with
// the same id, the same accepted rules, and the same remaining budget, while
// deleted sessions stay deleted.
func TestSessionJournalRecovery(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "ws.jsonl")
	cfg := Config{JournalPath: jp, JournalSessions: true}
	srv, _ := newTestServer(t, cfg)
	ts := httptest.NewServer(srv)
	client := darwin.NewClient(ts.URL, "")
	ctx := t.Context()

	lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sug, err := lab.Suggest(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := lab.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// A second session deleted before the restart must not come back.
	gone, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gone.Close(ctx); err != nil {
		t.Fatal(err)
	}

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same journal: the engine is rebuilt identically, so
	// replaying create + answers reproduces the exact labeler.
	srv2, _ := newTestServer(t, cfg)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	client2 := darwin.NewClient(ts2.URL, "")

	got, err := client2.OpenLabeler(lab.ID()).Report(ctx)
	if err != nil {
		t.Fatalf("recovered session report: %v", err)
	}
	if got.Questions != want.Questions || got.Budget != want.Budget || got.Positives != want.Positives {
		t.Errorf("recovered report %+v != pre-restart %+v", got, want)
	}
	if !reflect.DeepEqual(got.Accepted, want.Accepted) {
		t.Errorf("recovered accepted rules %v != pre-restart %v", got.Accepted, want.Accepted)
	}
	// The recovered session keeps working: the suggestion stream continues.
	if _, err := client2.OpenLabeler(lab.ID()).Suggest(ctx); err != nil {
		t.Errorf("recovered session cannot suggest: %v", err)
	}

	if _, err := client2.OpenLabeler(gone.ID()).Report(ctx); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("deleted session resurrected: %v", err)
	}
}

// TestSessionJournalAnswersAfterRecovery makes sure a recovered session's
// post-restart answers are journaled too: a second restart replays both
// generations of answers.
func TestSessionJournalTwoRestarts(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "ws.jsonl")
	cfg := Config{JournalPath: jp, JournalSessions: true}
	srv, _ := newTestServer(t, cfg)
	ts := httptest.NewServer(srv)
	client := darwin.NewClient(ts.URL, "")
	ctx := t.Context()

	lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{"best way to get to"}, Budget: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sug, err := lab.Suggest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: true}); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, _ := newTestServer(t, cfg)
	ts2 := httptest.NewServer(srv2)
	client2 := darwin.NewClient(ts2.URL, "")
	lab2 := client2.OpenLabeler(lab.ID())
	sug2, err := lab2.Suggest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab2.Answer(ctx, darwin.Answer{Key: sug2.Key, Accept: false}); err != nil {
		t.Fatal(err)
	}
	want, err := lab2.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	srv3, _ := newTestServer(t, cfg)
	defer srv3.Close()
	ts3 := httptest.NewServer(srv3)
	defer ts3.Close()
	got, err := darwin.NewClient(ts3.URL, "").OpenLabeler(lab.ID()).Report(ctx)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if got.Questions != want.Questions || !reflect.DeepEqual(got.Accepted, want.Accepted) {
		t.Errorf("second recovery report %+v != %+v", got, want)
	}
}

func TestJournalSessionsRequiresJournalPath(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	defer srv.Close()
	eng := srv.datasets["directions"].Engine
	if _, err := New(Config{JournalSessions: true}, &Dataset{Name: "directions", Engine: eng}); err == nil {
		t.Fatal("New accepted JournalSessions without JournalPath")
	}
}
