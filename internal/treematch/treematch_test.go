package treematch

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/grammar"
)

func parsedSentence(t *testing.T, text string) *corpus.Sentence {
	t.Helper()
	c := corpus.New("t", "t")
	c.Add(text, corpus.Positive)
	c.Preprocess(corpus.PreprocessOptions{Parse: true})
	return c.Sentence(0)
}

func TestPathString(t *testing.T) {
	p := Path{Terms: []string{"way", "to", "hotel"}, Rels: []Rel{Child, Desc}}
	if got := p.String(); got != "way/to//hotel" {
		t.Errorf("Path.String = %q", got)
	}
}

func TestParse(t *testing.T) {
	g := New()
	tests := []struct {
		spec    string
		wantErr bool
		key     string
	}{
		{"way/to", false, "treematch:way/to"},
		{"/is/NOUN & job", false, "treematch:is/NOUN & job"},
		{"/is/NOUN ∧ job", false, "treematch:is/NOUN & job"},
		{"way//hotel", false, "treematch:way//hotel"},
		{"caused/by", false, "treematch:caused/by"},
		{"", true, ""},
		{"  &  ", true, ""},
		{"a//", true, ""},
	}
	for _, tt := range tests {
		h, err := g.Parse(tt.spec)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q) expected error, got %v", tt.spec, h)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.spec, err)
			continue
		}
		if h.Key() != tt.key {
			t.Errorf("Parse(%q).Key = %q, want %q", tt.spec, h.Key(), tt.key)
		}
	}
}

func TestParseCanonicalOrder(t *testing.T) {
	g := New()
	a, err1 := g.Parse("job & is/NOUN")
	b, err2 := g.Parse("is/NOUN & job")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.Key() != b.Key() {
		t.Errorf("conjunction order changes key: %q vs %q", a.Key(), b.Key())
	}
}

func TestMatchesChildAndDescendant(t *testing.T) {
	s := parsedSentence(t, "Is Uber the best way to our hotel")
	g := New()

	// A token terminal alone.
	h, _ := g.Parse("hotel")
	if !h.Matches(s) {
		t.Error("'hotel' should match")
	}
	// POS terminal.
	h, _ = g.Parse("PROPN")
	if !h.Matches(s) {
		t.Errorf("PROPN should match (tree: %s)", s.Tree)
	}
	// Child relation present in the tree: 'to' heads 'hotel' per our parser.
	h, _ = g.Parse("to/hotel")
	if !h.Matches(s) {
		t.Errorf("to/hotel should match (tree: %s)", s.Tree)
	}
	// Descendant: root verb dominates 'hotel'.
	h, _ = g.Parse("is//hotel")
	if !h.Matches(s) {
		t.Errorf("is//hotel should match (tree: %s)", s.Tree)
	}
	// Conjunction.
	h, _ = g.Parse("to/hotel & uber")
	if !h.Matches(s) {
		t.Errorf("conjunction should match (tree: %s)", s.Tree)
	}
	// Absent token.
	h, _ = g.Parse("shuttle")
	if h.Matches(s) {
		t.Error("'shuttle' should not match")
	}
	// Wrong direction.
	h, _ = g.Parse("hotel/to")
	if h.Matches(s) {
		t.Error("hotel/to should not match")
	}
	// Sentence without a tree never matches.
	noTree := &corpus.Sentence{Tokens: []string{"hotel"}}
	h, _ = g.Parse("hotel")
	if h.Matches(noTree) {
		t.Error("sentence without parse tree matched a TreeMatch rule")
	}
}

func TestDepthAndString(t *testing.T) {
	g := New()
	h, _ := g.Parse("is/NOUN & job")
	if h.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", h.Depth())
	}
	if !strings.Contains(h.String(), "∧") {
		t.Errorf("String should use ∧: %q", h.String())
	}
	if h.GrammarName() != GrammarName {
		t.Errorf("GrammarName = %q", h.GrammarName())
	}
}

func TestParents(t *testing.T) {
	g := New()
	h, _ := g.Parse("way/to//hotel & shuttle")
	parents := h.Parents()
	if len(parents) == 0 {
		t.Fatal("no parents")
	}
	for _, p := range parents {
		if p.Depth() != h.Depth()-1 {
			t.Errorf("parent %s depth = %d, want %d", p.Key(), p.Depth(), h.Depth()-1)
		}
	}
	keys := map[string]bool{}
	for _, p := range parents {
		keys[p.Key()] = true
	}
	if !keys["treematch:shuttle & way/to"] {
		t.Errorf("expected truncated-path parent, got %v", keys)
	}
	if !keys["treematch:way/to//hotel"] {
		t.Errorf("expected dropped-conjunct parent, got %v", keys)
	}

	single, _ := g.Parse("shuttle")
	sp := single.Parents()
	if len(sp) != 1 || !grammar.IsRoot(sp[0]) {
		t.Errorf("depth-1 parents = %v", sp)
	}
}

func TestSketch(t *testing.T) {
	g := New()
	s := parsedSentence(t, "The flooding was caused by heavy rainfall")
	hs := g.Sketch(s, 2)
	if len(hs) == 0 {
		t.Fatal("empty sketch")
	}
	keys := map[string]bool{}
	for _, h := range hs {
		keys[h.Key()] = true
		if !h.Matches(s) {
			t.Errorf("sketch heuristic %s does not match its own sentence (tree %s)", h.Key(), s.Tree)
		}
		if h.Depth() > 2 {
			t.Errorf("heuristic %s exceeds depth 2", h.Key())
		}
	}
	if !keys["treematch:caused"] {
		t.Errorf("missing 'caused' terminal: %v", keys)
	}
	if !keys["treematch:flooding"] {
		t.Error("missing 'flooding' terminal")
	}
	// Depth-1-only sketch contains no '/'.
	for _, h := range g.Sketch(s, 1) {
		if strings.ContainsAny(h.Key(), "/") {
			t.Errorf("depth-1 sketch contains relation: %s", h.Key())
		}
	}
	if g.Sketch(nil, 2) != nil {
		t.Error("Sketch(nil) != nil")
	}
	if g.Sketch(&corpus.Sentence{Tokens: []string{"x"}}, 2) != nil {
		t.Error("Sketch of unparsed sentence != nil")
	}
}

func TestSpecialize(t *testing.T) {
	g := New()
	s := parsedSentence(t, "The flooding was caused by heavy rainfall")
	base, _ := g.Parse("caused")
	kids := g.Specialize(base, s, 5)
	if len(kids) == 0 {
		t.Fatal("no specializations")
	}
	for _, c := range kids {
		if !c.Matches(s) {
			t.Errorf("specialization %s does not match witness", c.Key())
		}
		if c.Depth() != base.Depth()+1 {
			t.Errorf("specialization %s depth = %d, want %d", c.Key(), c.Depth(), base.Depth()+1)
		}
	}
	// At least one extension and one conjunction should be present.
	hasExt, hasConj := false, false
	for _, c := range kids {
		if strings.Contains(c.Key(), "caused/") || strings.Contains(c.Key(), "caused//") {
			hasExt = true
		}
		if strings.Contains(c.Key(), "&") {
			hasConj = true
		}
	}
	if !hasExt {
		t.Error("no path extension among specializations")
	}
	if !hasConj {
		t.Error("no conjunction among specializations")
	}
	// Depth cap respected.
	if got := g.Specialize(base, s, 1); got != nil {
		t.Errorf("Specialize beyond cap = %v", got)
	}
	// Root specialization.
	if len(g.Specialize(grammar.Root(), s, 3)) == 0 {
		t.Error("root specialization empty")
	}
}

func TestSpecializeParentsRoundTrip(t *testing.T) {
	// Every specialization of h must have h among its parents.
	g := New()
	s := parsedSentence(t, "Beethoven taught piano to the daughters of a wealthy family")
	base, _ := g.Parse("piano")
	for _, c := range g.Specialize(base, s, 4) {
		found := false
		for _, p := range c.Parents() {
			if p.Key() == base.Key() {
				found = true
			}
		}
		if !found {
			t.Errorf("specialization %s does not list %s among parents %v",
				c.Key(), base.Key(), c.Parents())
		}
	}
}

func TestCoverageAntiMonotone(t *testing.T) {
	// Parent coverage is a superset of child coverage over a small corpus.
	c := corpus.New("t", "t")
	texts := []string{
		"The flooding was caused by heavy rainfall",
		"The outage was caused by a software bug",
		"The crash was triggered by driver fatigue",
		"The company announced a new policy on Monday",
		"The book about the flood was written by a journalist",
	}
	for _, txt := range texts {
		c.Add(txt, corpus.Negative)
	}
	c.Preprocess(corpus.PreprocessOptions{Parse: true})
	g := New()
	for _, s := range c.Sentences {
		for _, h := range g.Sketch(s, 2) {
			childCov := grammar.Coverage(h, c)
			for _, p := range h.Parents() {
				if grammar.IsRoot(p) {
					continue
				}
				parentCov := map[int]bool{}
				for _, id := range grammar.Coverage(p, c) {
					parentCov[id] = true
				}
				for _, id := range childCov {
					if !parentCov[id] {
						t.Fatalf("anti-monotonicity violated: parent %s misses %d covered by %s",
							p.Key(), id, h.Key())
					}
				}
			}
		}
	}
}
