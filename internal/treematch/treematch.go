// Package treematch implements the TreeMatch heuristic grammar of the paper
// (Definition 3): heuristics over dependency parse trees built from three
// operations — Child ('/'), Descendant ('//') and conjunction ('∧') — whose
// terminals are tokens and Universal POS tags.
//
// A heuristic is a conjunction of paths; each path is a sequence of terminals
// connected by / (direct child) or // (transitive descendant). A sentence
// satisfies the heuristic if its dependency parse tree admits an assignment
// of nodes to every path. Example from the paper: '/is/NOUN ∧ job'.
package treematch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/depparse"
	"repro/internal/grammar"
	"repro/internal/postag"
	"repro/internal/textproc"
)

// GrammarName is the registry name of this grammar.
const GrammarName = "treematch"

// Rel is the relation between two consecutive terms of a path.
type Rel uint8

// Path relations.
const (
	Child Rel = iota // '/'
	Desc             // '//'
)

func (r Rel) String() string {
	if r == Desc {
		return "//"
	}
	return "/"
}

// Path is a chain of terminals connected by relations. Rels[i] relates
// Terms[i] (ancestor side) to Terms[i+1] (descendant side).
type Path struct {
	Terms []string
	Rels  []Rel
}

// String renders the path, e.g. "way/to//hotel".
func (p Path) String() string {
	var b strings.Builder
	for i, t := range p.Terms {
		if i > 0 {
			b.WriteString(p.Rels[i-1].String())
		}
		b.WriteString(t)
	}
	return b.String()
}

// valid reports whether the path is structurally consistent.
func (p Path) valid() bool {
	return len(p.Terms) > 0 && len(p.Rels) == len(p.Terms)-1
}

// clonePath deep-copies a path.
func clonePath(p Path) Path {
	terms := make([]string, len(p.Terms))
	copy(terms, p.Terms)
	rels := make([]Rel, len(p.Rels))
	copy(rels, p.Rels)
	return Path{Terms: terms, Rels: rels}
}

// Heuristic is a TreeMatch heuristic: a conjunction of paths.
type Heuristic struct {
	paths []Path
	key   string
}

var _ grammar.Heuristic = (*Heuristic)(nil)

// NewHeuristic builds a heuristic from paths. Terminal tokens are normalized
// to lower case; POS tags are upper-cased. Paths are canonically ordered so
// logically equal conjunctions share a key.
func NewHeuristic(paths []Path) *Heuristic {
	norm := make([]Path, 0, len(paths))
	for _, p := range paths {
		if !p.valid() {
			continue
		}
		q := clonePath(p)
		for i, t := range q.Terms {
			if postag.IsTag(t) {
				q.Terms[i] = strings.ToUpper(t)
			} else {
				q.Terms[i] = textproc.Normalize(t)
			}
		}
		norm = append(norm, q)
	}
	sort.Slice(norm, func(i, j int) bool { return norm[i].String() < norm[j].String() })
	parts := make([]string, len(norm))
	for i, p := range norm {
		parts[i] = p.String()
	}
	return &Heuristic{paths: norm, key: GrammarName + ":" + strings.Join(parts, " & ")}
}

// Paths returns a deep copy of the heuristic's paths.
func (h *Heuristic) Paths() []Path {
	out := make([]Path, len(h.paths))
	for i, p := range h.paths {
		out[i] = clonePath(p)
	}
	return out
}

// Key implements grammar.Heuristic.
func (h *Heuristic) Key() string { return h.key }

// String implements grammar.Heuristic using the paper's '∧' notation.
func (h *Heuristic) String() string {
	parts := make([]string, len(h.paths))
	for i, p := range h.paths {
		parts[i] = p.String()
	}
	return "'" + strings.Join(parts, " ∧ ") + "'"
}

// GrammarName implements grammar.Heuristic.
func (h *Heuristic) GrammarName() string { return GrammarName }

// Depth implements grammar.Heuristic: one derivation rule per terminal.
func (h *Heuristic) Depth() int {
	d := 0
	for _, p := range h.paths {
		d += len(p.Terms)
	}
	return d
}

// termMatches reports whether a terminal matches tree node i: POS terminals
// match the node's tag, token terminals match the node's token.
func termMatches(term string, tree *depparse.Tree, i int) bool {
	if postag.IsTag(term) {
		return string(tree.Tags[i]) == term
	}
	return tree.Tokens[i] == term
}

// pathEndNodes returns the set of tree nodes that can terminate a satisfying
// assignment of the path, or nil if the path cannot be satisfied.
func pathEndNodes(p Path, tree *depparse.Tree) []int {
	if tree == nil || tree.Len() == 0 || len(p.Terms) == 0 {
		return nil
	}
	// current holds candidate nodes for the term processed so far.
	var current []int
	for i := 0; i < tree.Len(); i++ {
		if termMatches(p.Terms[0], tree, i) {
			current = append(current, i)
		}
	}
	for step := 0; step < len(p.Rels) && len(current) > 0; step++ {
		term := p.Terms[step+1]
		rel := p.Rels[step]
		nextSet := map[int]bool{}
		for _, anc := range current {
			var candidates []int
			if rel == Child {
				candidates = tree.Children(anc)
			} else {
				candidates = tree.Descendants(anc)
			}
			for _, c := range candidates {
				if termMatches(term, tree, c) {
					nextSet[c] = true
				}
			}
		}
		current = current[:0]
		for c := range nextSet {
			current = append(current, c)
		}
		sort.Ints(current)
	}
	return current
}

// Matches reports whether the sentence's dependency tree satisfies every path
// of the conjunction. Sentences without a parse tree never match.
func (h *Heuristic) Matches(s *corpus.Sentence) bool {
	if s == nil || s.Tree == nil || len(h.paths) == 0 {
		return false
	}
	for _, p := range h.paths {
		if len(pathEndNodes(p, s.Tree)) == 0 {
			return false
		}
	}
	return true
}

// Parents returns the generalizations of the heuristic: drop the last term of
// one path, or drop an entire single-term path. A depth-1 heuristic
// generalizes to the root.
func (h *Heuristic) Parents() []grammar.Heuristic {
	if h.Depth() <= 1 {
		return []grammar.Heuristic{grammar.Root()}
	}
	seen := map[string]bool{}
	var out []grammar.Heuristic
	add := func(paths []Path) {
		p := NewHeuristic(paths)
		if p.Depth() == 0 {
			return
		}
		if !seen[p.Key()] {
			seen[p.Key()] = true
			out = append(out, p)
		}
	}
	for i, p := range h.paths {
		if len(p.Terms) > 1 {
			// Drop the last term of path i.
			var paths []Path
			for j, q := range h.paths {
				if j == i {
					trimmed := clonePath(q)
					trimmed.Terms = trimmed.Terms[:len(trimmed.Terms)-1]
					trimmed.Rels = trimmed.Rels[:len(trimmed.Rels)-1]
					paths = append(paths, trimmed)
				} else {
					paths = append(paths, clonePath(q))
				}
			}
			add(paths)
		} else if len(h.paths) > 1 {
			// Drop the single-term path i entirely.
			var paths []Path
			for j, q := range h.paths {
				if j != i {
					paths = append(paths, clonePath(q))
				}
			}
			add(paths)
		}
	}
	if len(out) == 0 {
		return []grammar.Heuristic{grammar.Root()}
	}
	return out
}

// Grammar is the TreeMatch grammar.
type Grammar struct {
	// SkipStopwordTerminals drops depth-1 token terminals that are stop words
	// from sketches. Default true via New.
	SkipStopwordTerminals bool
	// MaxDescDistance bounds how deep '//' pairs are enumerated in sketches
	// (ancestor/descendant pairs whose tree distance exceeds this are not
	// materialized). Default 3 via New.
	MaxDescDistance int
}

var _ grammar.Grammar = (*Grammar)(nil)

// New returns the TreeMatch grammar with default settings.
func New() *Grammar {
	return &Grammar{SkipStopwordTerminals: true, MaxDescDistance: 3}
}

// Name implements grammar.Grammar.
func (g *Grammar) Name() string { return GrammarName }

// Sketch enumerates the bounded-depth heuristics satisfied by the sentence:
// depth-1 terminals (tokens and POS tags) and depth-2 child/descendant pairs.
// Conjunctions are not materialized in the sketch (they are reachable through
// Specialize), mirroring the paper's observation that the parse tree itself
// is the compact sketch for this grammar.
func (g *Grammar) Sketch(s *corpus.Sentence, maxDepth int) []grammar.Heuristic {
	if s == nil || s.Tree == nil || s.Tree.Len() == 0 || maxDepth < 1 {
		return nil
	}
	tree := s.Tree
	seen := map[string]bool{}
	var out []grammar.Heuristic
	add := func(h *Heuristic) {
		if !seen[h.Key()] {
			seen[h.Key()] = true
			out = append(out, h)
		}
	}

	// Depth 1: token terminals and POS terminals.
	for i := 0; i < tree.Len(); i++ {
		tok := tree.Tokens[i]
		if !(g.SkipStopwordTerminals && textproc.IsStopWord(tok)) {
			add(NewHeuristic([]Path{{Terms: []string{tok}}}))
		}
	}
	if maxDepth < 2 {
		return out
	}

	// Depth 2: parent/child pairs in token/token, token/POS and POS/token
	// flavours (POS/POS pairs are too generic to ever be precise).
	for c := 0; c < tree.Len(); c++ {
		p := tree.Heads[c]
		if p < 0 {
			continue
		}
		ptok, ctok := tree.Tokens[p], tree.Tokens[c]
		ptag, ctag := string(tree.Tags[p]), string(tree.Tags[c])
		add(NewHeuristic([]Path{{Terms: []string{ptok, ctok}, Rels: []Rel{Child}}}))
		add(NewHeuristic([]Path{{Terms: []string{ptok, ctag}, Rels: []Rel{Child}}}))
		add(NewHeuristic([]Path{{Terms: []string{ptag, ctok}, Rels: []Rel{Child}}}))
	}

	// Depth 2: strict ancestor/descendant pairs (distance >= 2, bounded).
	for a := 0; a < tree.Len(); a++ {
		for _, d := range tree.Descendants(a) {
			dist := treeDistance(tree, a, d)
			if dist < 2 || (g.MaxDescDistance > 0 && dist > g.MaxDescDistance) {
				continue
			}
			atok, dtok := tree.Tokens[a], tree.Tokens[d]
			add(NewHeuristic([]Path{{Terms: []string{atok, dtok}, Rels: []Rel{Desc}}}))
			add(NewHeuristic([]Path{{Terms: []string{atok, string(tree.Tags[d])}, Rels: []Rel{Desc}}}))
		}
	}
	return out
}

// treeDistance returns the number of edges from ancestor a down to descendant
// d (0 if a == d, -1 if d is not below a).
func treeDistance(tree *depparse.Tree, a, d int) int {
	dist := 0
	for cur := d; cur >= 0; cur = tree.Heads[cur] {
		if cur == a {
			return dist
		}
		dist++
		if dist > tree.Len() {
			return -1
		}
	}
	return -1
}

// Parse parses a TreeMatch specification such as "way/to", "way//hotel",
// "/is/NOUN & job" or "caused/by ∧ storm". Leading '/' characters are
// tolerated (the paper writes '/is/NOUN').
func (g *Grammar) Parse(spec string) (grammar.Heuristic, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("treematch: empty rule")
	}
	spec = strings.ReplaceAll(spec, "∧", "&")
	var paths []Path
	for _, part := range strings.Split(spec, "&") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := parsePath(part)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("treematch: rule %q has no paths", spec)
	}
	h := NewHeuristic(paths)
	if h.Depth() == 0 {
		return nil, fmt.Errorf("treematch: rule %q has no terminals", spec)
	}
	return h, nil
}

// parsePath parses a single path such as "way/to//hotel" or "/is/NOUN".
func parsePath(s string) (Path, error) {
	s = strings.TrimPrefix(s, "//")
	s = strings.TrimPrefix(s, "/")
	var p Path
	i := 0
	for i < len(s) {
		// Read a terminal up to the next '/' or end.
		j := strings.IndexByte(s[i:], '/')
		var term string
		if j < 0 {
			term = s[i:]
			i = len(s)
		} else {
			term = s[i : i+j]
			i += j
		}
		term = strings.TrimSpace(term)
		if term == "" {
			return Path{}, fmt.Errorf("treematch: empty terminal in path %q", s)
		}
		p.Terms = append(p.Terms, term)
		if i >= len(s) {
			break
		}
		// Read the relation.
		if strings.HasPrefix(s[i:], "//") {
			p.Rels = append(p.Rels, Desc)
			i += 2
		} else {
			p.Rels = append(p.Rels, Child)
			i++
		}
	}
	if !p.valid() {
		return Path{}, fmt.Errorf("treematch: malformed path %q", s)
	}
	return p, nil
}

// Specialize returns children of h that still match the witness sentence:
// extend the last node of one path with a /child or //descendant terminal, or
// conjoin a new single-terminal path drawn from the sentence's tokens.
func (g *Grammar) Specialize(h grammar.Heuristic, s *corpus.Sentence, maxDepth int) []grammar.Heuristic {
	if s == nil || s.Tree == nil || s.Tree.Len() == 0 {
		return nil
	}
	if grammar.IsRoot(h) {
		return g.Sketch(s, 1)
	}
	th, ok := h.(*Heuristic)
	if !ok {
		return nil
	}
	if maxDepth > 0 && th.Depth() >= maxDepth {
		return nil
	}
	tree := s.Tree
	seen := map[string]bool{}
	var out []grammar.Heuristic
	add := func(c *Heuristic) {
		if c.Key() == th.Key() || seen[c.Key()] {
			return
		}
		if !c.Matches(s) {
			return
		}
		seen[c.Key()] = true
		out = append(out, c)
	}

	// Extend one path downward.
	for i, p := range th.paths {
		ends := pathEndNodes(p, tree)
		for _, end := range ends {
			for _, c := range tree.Children(end) {
				for _, term := range []string{tree.Tokens[c], string(tree.Tags[c])} {
					np := clonePath(p)
					np.Terms = append(np.Terms, term)
					np.Rels = append(np.Rels, Child)
					add(replacePath(th.paths, i, np))
				}
			}
			for _, d := range tree.Descendants(end) {
				if tree.IsChild(end, d) {
					continue // already covered by the Child extension
				}
				np := clonePath(p)
				np.Terms = append(np.Terms, tree.Tokens[d])
				np.Rels = append(np.Rels, Desc)
				add(replacePath(th.paths, i, np))
			}
		}
	}

	// Conjoin a new single-terminal path (non-stopword tokens only).
	existing := map[string]bool{}
	for _, p := range th.paths {
		for _, t := range p.Terms {
			existing[t] = true
		}
	}
	for i := 0; i < tree.Len(); i++ {
		tok := tree.Tokens[i]
		if existing[tok] || textproc.IsStopWord(tok) {
			continue
		}
		paths := append(clonePaths(th.paths), Path{Terms: []string{tok}})
		add(NewHeuristic(paths))
	}
	return out
}

func clonePaths(paths []Path) []Path {
	out := make([]Path, len(paths))
	for i, p := range paths {
		out[i] = clonePath(p)
	}
	return out
}

func replacePath(paths []Path, idx int, np Path) *Heuristic {
	out := clonePaths(paths)
	out[idx] = np
	return NewHeuristic(out)
}
