package embedding

import (
	"math"
	"testing"
	"testing/quick"
)

// toySentences gives "bus" and "shuttle" identical contexts so their vectors
// should be close, and "pizza" a disjoint context so it should be far.
func toySentences() [][]string {
	base := [][]string{
		{"take", "the", "bus", "to", "the", "airport"},
		{"take", "the", "shuttle", "to", "the", "airport"},
		{"the", "bus", "to", "the", "hotel", "leaves", "now"},
		{"the", "shuttle", "to", "the", "hotel", "leaves", "now"},
		{"is", "the", "bus", "to", "the", "airport", "fast"},
		{"is", "the", "shuttle", "to", "the", "airport", "fast"},
		{"order", "a", "pizza", "with", "extra", "cheese"},
		{"the", "pizza", "with", "cheese", "is", "delicious"},
		{"order", "the", "pizza", "for", "dinner", "tonight"},
	}
	// Repeat to give the counts some weight.
	var out [][]string
	for i := 0; i < 5; i++ {
		out = append(out, base...)
	}
	return out
}

func TestTrainBasicProperties(t *testing.T) {
	m := Train(toySentences(), DefaultConfig())
	if m.Dim() != 50 {
		t.Errorf("Dim = %d, want 50", m.Dim())
	}
	if m.VocabSize() == 0 {
		t.Fatal("empty vocab after training")
	}
	if _, ok := m.Vector("bus"); !ok {
		t.Error("no vector for 'bus'")
	}
	if _, ok := m.Vector("nonexistent-token"); ok {
		t.Error("vector for unknown token")
	}
}

func TestSimilarContextsGetSimilarVectors(t *testing.T) {
	m := Train(toySentences(), DefaultConfig())
	simBusShuttle := m.Similarity("bus", "shuttle")
	simBusPizza := m.Similarity("bus", "pizza")
	if simBusShuttle <= simBusPizza {
		t.Errorf("similarity(bus,shuttle)=%.3f should exceed similarity(bus,pizza)=%.3f",
			simBusShuttle, simBusPizza)
	}
}

func TestTrainDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	m1 := Train(toySentences(), cfg)
	m2 := Train(toySentences(), cfg)
	v1, _ := m1.Vector("bus")
	v2, _ := m2.Vector("bus")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("training not deterministic at dim %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

func TestSentenceVector(t *testing.T) {
	m := Train(toySentences(), DefaultConfig())
	sv := m.SentenceVector([]string{"take", "the", "bus"})
	if len(sv) != m.Dim() {
		t.Fatalf("sentence vector dim = %d", len(sv))
	}
	var norm float64
	for _, x := range sv {
		norm += x * x
	}
	if math.Abs(norm-1.0) > 1e-9 && norm != 0 {
		t.Errorf("sentence vector not normalized: |v|^2=%f", norm)
	}
	// All-unknown sentence: zero vector, not NaN.
	zero := m.SentenceVector([]string{"qqq", "zzz"})
	for _, x := range zero {
		if x != 0 || math.IsNaN(x) {
			t.Errorf("unknown-token sentence vector not zero: %v", zero)
			break
		}
	}
}

func TestMostSimilar(t *testing.T) {
	m := Train(toySentences(), DefaultConfig())
	nbrs := m.MostSimilar("bus", 3)
	if len(nbrs) == 0 {
		t.Fatal("no neighbors for 'bus'")
	}
	for _, n := range nbrs {
		if n.Token == "bus" {
			t.Error("MostSimilar returned the query token")
		}
	}
	found := false
	for _, n := range nbrs {
		if n.Token == "shuttle" {
			found = true
		}
	}
	if !found {
		t.Errorf("'shuttle' not among top neighbors of 'bus': %v", nbrs)
	}
	if got := m.MostSimilar("unknown-token", 3); got != nil {
		t.Errorf("MostSimilar(unknown) = %v, want nil", got)
	}
}

func TestCosineBounds(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		aa := make([]float64, n)
		bb := make([]float64, n)
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true // skip pathological float inputs
			}
			// Map into a bounded range so products cannot overflow.
			aa[i] = math.Mod(a[i], 1e3)
			bb[i] = math.Mod(b[i], 1e3)
		}
		c := Cosine(aa, bb)
		return !math.IsNaN(c) && c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCosineIdentityAndZero(t *testing.T) {
	v := []float64{1, 2, 3}
	if c := Cosine(v, v); math.Abs(c-1) > 1e-12 {
		t.Errorf("Cosine(v,v) = %f", c)
	}
	if c := Cosine(v, []float64{0, 0, 0}); c != 0 {
		t.Errorf("Cosine(v,0) = %f", c)
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	m := Train(nil, DefaultConfig())
	if m.VocabSize() != 0 {
		t.Errorf("empty corpus vocab size = %d", m.VocabSize())
	}
	sv := m.SentenceVector([]string{"anything"})
	if len(sv) != m.Dim() {
		t.Errorf("sentence vector over empty model has dim %d", len(sv))
	}
}

func TestTrainMinCount(t *testing.T) {
	sents := [][]string{
		{"common", "common", "rare"},
		{"common", "word", "word"},
	}
	cfg := Config{Dim: 8, Window: 2, MinCount: 2, Seed: 7}
	m := Train(sents, cfg)
	if _, ok := m.Vector("rare"); ok {
		t.Error("rare token survived MinCount pruning")
	}
	if _, ok := m.Vector("common"); !ok {
		t.Error("common token pruned")
	}
}

func TestVectorsAreUnitOrZero(t *testing.T) {
	m := Train(toySentences(), Config{Dim: 16, Window: 3, MinCount: 1, Seed: 3})
	for _, tok := range []string{"bus", "shuttle", "pizza", "airport"} {
		v, ok := m.Vector(tok)
		if !ok {
			t.Fatalf("missing vector for %s", tok)
		}
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		if norm != 0 && math.Abs(norm-1) > 1e-9 {
			t.Errorf("vector for %s has norm^2 %f, want 1 or 0", tok, norm)
		}
	}
}
