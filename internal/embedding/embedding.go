// Package embedding trains dense word vectors from a corpus using
// positive pointwise mutual information (PPMI) over a sliding co-occurrence
// window followed by a seeded random projection to a fixed dimensionality.
//
// The paper feeds SpaCy's pre-trained GloVe-style vectors into its sentence
// classifier; Darwin relies on them only to generalize from a discovered rule
// to semantically related rules (e.g. "bus" -> "public transport"). Vectors
// trained on the corpus being labeled provide exactly this "tokens in similar
// contexts get similar vectors" property without any external model files.
package embedding

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/textproc"
)

// Config controls embedding training.
type Config struct {
	// Dim is the dimensionality of the output vectors.
	Dim int
	// Window is the symmetric co-occurrence window size.
	Window int
	// MinCount drops tokens occurring fewer times than this.
	MinCount int
	// Seed drives the random projection, making training deterministic.
	Seed int64
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{Dim: 50, Window: 4, MinCount: 2, Seed: 1}
}

// Model holds trained word vectors.
type Model struct {
	dim     int
	vocab   *textproc.Vocab
	vectors [][]float64 // indexed by vocab id
}

// Train builds a Model from tokenized sentences.
//
// Training proceeds in three steps: (1) count token and co-occurrence
// frequencies inside the window, (2) compute the PPMI weight of each
// (token, context) pair, and (3) project each token's sparse PPMI context
// vector onto cfg.Dim dimensions using a seeded sparse random projection.
// The result is L2-normalized.
func Train(sentences [][]string, cfg Config) *Model {
	if cfg.Dim <= 0 {
		cfg.Dim = 50
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = 1
	}

	full := textproc.NewVocab()
	for _, sent := range sentences {
		for _, tok := range sent {
			full.Add(tok)
		}
	}
	vocab := full.Prune(cfg.MinCount)
	v := vocab.Size()

	// Co-occurrence counts: sparse map per token id.
	cooc := make([]map[int]float64, v)
	for i := range cooc {
		cooc[i] = make(map[int]float64)
	}
	rowSums := make([]float64, v)
	var total float64

	for _, sent := range sentences {
		ids := make([]int, 0, len(sent))
		for _, tok := range sent {
			if id, ok := vocab.ID(tok); ok {
				ids = append(ids, id)
			} else {
				ids = append(ids, -1)
			}
		}
		for i, a := range ids {
			if a < 0 {
				continue
			}
			lo := i - cfg.Window
			if lo < 0 {
				lo = 0
			}
			hi := i + cfg.Window
			if hi >= len(ids) {
				hi = len(ids) - 1
			}
			for j := lo; j <= hi; j++ {
				if j == i {
					continue
				}
				b := ids[j]
				if b < 0 {
					continue
				}
				w := 1.0 / float64(abs(i-j)) // distance-weighted, as in GloVe
				cooc[a][b] += w
				rowSums[a] += w
				total += w
			}
		}
	}

	// Random projection matrix: contexts (vocab ids) -> Dim. Sparse ternary
	// projection (Achlioptas): each entry is +1, -1 or 0 with probabilities
	// 1/6, 1/6, 2/3, scaled by sqrt(3).
	rng := rand.New(rand.NewSource(cfg.Seed))
	proj := make([][]float64, v)
	scale := math.Sqrt(3)
	for i := range proj {
		row := make([]float64, cfg.Dim)
		for d := 0; d < cfg.Dim; d++ {
			switch rng.Intn(6) {
			case 0:
				row[d] = scale
			case 1:
				row[d] = -scale
			}
		}
		proj[i] = row
	}

	vectors := make([][]float64, v)
	for a := 0; a < v; a++ {
		vec := make([]float64, cfg.Dim)
		// Iterate contexts in sorted order so float accumulation is
		// deterministic across runs.
		ctxIDs := make([]int, 0, len(cooc[a]))
		for b := range cooc[a] {
			ctxIDs = append(ctxIDs, b)
		}
		sort.Ints(ctxIDs)
		for _, b := range ctxIDs {
			cnt := cooc[a][b]
			// PPMI(a,b) = max(0, log( P(a,b) / (P(a) P(b)) ))
			if cnt <= 0 || total == 0 {
				continue
			}
			pab := cnt / total
			pa := rowSums[a] / total
			pb := rowSums[b] / total
			if pa == 0 || pb == 0 {
				continue
			}
			pmi := math.Log(pab / (pa * pb))
			if pmi <= 0 {
				continue
			}
			for d := 0; d < cfg.Dim; d++ {
				vec[d] += pmi * proj[b][d]
			}
		}
		normalize(vec)
		vectors[a] = vec
	}

	return &Model{dim: cfg.Dim, vocab: vocab, vectors: vectors}
}

// Dim returns the dimensionality of the vectors.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of tokens with a vector.
func (m *Model) VocabSize() int { return m.vocab.Size() }

// Vector returns the vector for token and whether the token is known. The
// returned slice must not be modified.
func (m *Model) Vector(token string) ([]float64, bool) {
	id, ok := m.vocab.ID(token)
	if !ok {
		return nil, false
	}
	return m.vectors[id], true
}

// SentenceVector returns the mean of the vectors of the known tokens in the
// sentence, L2-normalized. Unknown tokens are skipped; an all-unknown
// sentence yields the zero vector.
func (m *Model) SentenceVector(tokens []string) []float64 {
	out := make([]float64, m.dim)
	n := 0
	for _, tok := range tokens {
		if vec, ok := m.Vector(tok); ok {
			for d, x := range vec {
				out[d] += x
			}
			n++
		}
	}
	if n > 0 {
		for d := range out {
			out[d] /= float64(n)
		}
	}
	normalize(out)
	return out
}

// Similarity returns the cosine similarity of two tokens' vectors, or 0 if
// either token is unknown.
func (m *Model) Similarity(a, b string) float64 {
	va, oka := m.Vector(a)
	vb, okb := m.Vector(b)
	if !oka || !okb {
		return 0
	}
	return Cosine(va, vb)
}

// Neighbor is a token with a similarity score.
type Neighbor struct {
	Token string
	Score float64
}

// MostSimilar returns up to k tokens most similar to token (excluding the
// token itself), sorted by descending cosine similarity.
func (m *Model) MostSimilar(token string, k int) []Neighbor {
	vec, ok := m.Vector(token)
	if !ok {
		return nil
	}
	var out []Neighbor
	for _, other := range m.vocab.Tokens() {
		if other == token {
			continue
		}
		ov, _ := m.Vector(other)
		s := Cosine(vec, ov)
		if s > 0 {
			out = append(out, Neighbor{Token: other, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Token < out[j].Token
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Cosine returns the cosine similarity of two equal-length vectors. Zero
// vectors yield 0.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
