package shard

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/autolabel"
	"repro/pkg/darwin"
)

// Labeling-job routing: jobs are dataset-scoped, so the create and the Snuba
// baseline go to the dataset's current primary (the placement map when
// failover management is on, else the ring owner) — the same shard fresh
// labeler creates land on, so a job submitted right after a failover runs on
// the shard that adopted the dataset. Job ids are namespaced
// "<shard>~<backend id>" like labeler ids, so status and output route by
// prefix alone and keep resolving after a restart of the router.

// namespaceJob rewrites a shard-local job status into the router namespace.
func (sh *shard) namespaceJob(st autolabel.JobStatus) autolabel.JobStatus {
	if st.ID != "" {
		st.ID = sh.publicID(st.ID)
	}
	return st
}

// resolveJobSpec rewrites a router-namespaced labeler reference in the spec
// into the backend id, verifying it lives on the shard that will run the
// job (a labeler on another shard cannot vote into this shard's corpus
// scan).
func (r *Router) resolveJobSpec(target *shard, spec autolabel.Spec) (autolabel.Spec, error) {
	if spec.Labeler == "" {
		return spec, nil
	}
	sh, backendID, err := r.locate(spec.Labeler)
	if err != nil {
		return spec, err
	}
	if sh != target {
		return spec, fmt.Errorf("%w: labeler %s lives on shard %q, but dataset jobs run on shard %q",
			darwin.ErrInvalid, spec.Labeler, sh.name, target.name)
	}
	spec.Labeler = backendID
	return spec, nil
}

// CreateLabelingJob implements the server Backend: the job is placed on the
// dataset's primary. Creates are attempted once — a retry after a lost
// response would enqueue (and run) the job twice.
func (r *Router) CreateLabelingJob(ctx context.Context, dataset string, spec autolabel.Spec) (autolabel.JobStatus, error) {
	if dataset == "" {
		return autolabel.JobStatus{}, fmt.Errorf("%w: dataset is required", darwin.ErrInvalid)
	}
	sh := r.primaryFor(dataset)
	spec, err := r.resolveJobSpec(sh, spec)
	if err != nil {
		return autolabel.JobStatus{}, err
	}
	st, err := sh.client.CreateLabelingJob(ctx, dataset, spec)
	observeOnce(sh, "job_create", err)
	if err != nil {
		return autolabel.JobStatus{}, err
	}
	return sh.namespaceJob(st), nil
}

// locateJob resolves a router-namespaced job id, with an error message that
// names jobs rather than labelers.
func (r *Router) locateJob(publicID string) (*shard, string, error) {
	name, backendID, ok := strings.Cut(publicID, Sep)
	if ok && backendID != "" {
		if sh := r.byName[name]; sh != nil {
			if moved := r.rehomed(backendID); moved != nil {
				return moved, backendID, nil
			}
			return sh, backendID, nil
		}
	}
	return nil, "", fmt.Errorf("%w: unknown labeling job %q (router job ids are \"<shard>%s<id>\")", darwin.ErrNotFound, publicID, Sep)
}

// LabelingJob implements the server Backend. Status polls are idempotent and
// retry.
func (r *Router) LabelingJob(ctx context.Context, dataset, id string) (autolabel.JobStatus, error) {
	sh, backendID, err := r.locateJob(id)
	if err != nil {
		return autolabel.JobStatus{}, err
	}
	var st autolabel.JobStatus
	err = r.retry(ctx, sh, "job_status", func() error {
		var e error
		st, e = sh.client.LabelingJob(ctx, dataset, backendID)
		return e
	})
	if err != nil {
		return autolabel.JobStatus{}, err
	}
	return sh.namespaceJob(st), nil
}

// LabelingJobOutput implements the server Backend: the download streams
// straight through, retrying only while nothing has been written yet (after
// first bytes a retry would corrupt the stream; the client resumes with
// offset instead).
func (r *Router) LabelingJobOutput(ctx context.Context, dataset, id string, offset int64, w io.Writer) error {
	sh, backendID, err := r.locateJob(id)
	if err != nil {
		return err
	}
	cw := &countingWriter{w: w}
	return r.retryWhile(ctx, sh, "job_output", func() error {
		return sh.client.LabelingJobOutput(ctx, dataset, backendID, offset, cw)
	}, func() bool { return cw.n == 0 })
}

// SnubaBaseline implements the server Backend: synchronous compute on the
// dataset's primary (any holder of the corpus computes the same answer, and
// the primary is the shard guaranteed to serve the dataset). Idempotent, so
// it retries.
func (r *Router) SnubaBaseline(ctx context.Context, dataset string, req autolabel.SnubaRequest) (autolabel.SnubaResult, error) {
	if dataset == "" {
		return autolabel.SnubaResult{}, fmt.Errorf("%w: dataset is required", darwin.ErrInvalid)
	}
	sh := r.primaryFor(dataset)
	// Compare rules arrive as plain rule specs, not namespaced ids — no
	// rewriting needed.
	var res autolabel.SnubaResult
	err := r.retry(ctx, sh, "snuba", func() error {
		var e error
		res, e = sh.client.SnubaBaseline(ctx, dataset, req)
		return e
	})
	return res, err
}
