package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/autolabel"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/pkg/darwin"
)

func routerJobSpec() autolabel.Spec {
	return autolabel.Spec{
		Rules:       []string{"best way to get to", "how do i get"},
		Aggregator:  autolabel.AggregatorGenerative,
		IncludeProb: true,
	}
}

// newJobShardServer is newShardServer with the labeling-job subsystem on.
func newJobShardServer(t testing.TB, datasets ...string) *server.Server {
	t.Helper()
	sets := make([]*server.Dataset, 0, len(datasets))
	for _, name := range datasets {
		sets = append(sets, &server.Dataset{Name: name, Engine: newTestEngine(t, name)})
	}
	srv, err := server.New(server.Config{JobsDir: t.TempDir(), JobWorkers: 1}, sets...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestRouterLabelingJobsEndToEnd drives the job verbs through client → router
// → shard and holds the routed output to the determinism contract: the bytes
// streamed across two HTTP hops equal a direct in-process autolabel.Run of
// the same spec over an identically-built engine.
func TestRouterLabelingJobsEndToEnd(t *testing.T) {
	shardA := httptest.NewServer(newJobShardServer(t, "directions", "musicians"))
	defer shardA.Close()
	shardB := httptest.NewServer(newJobShardServer(t, "directions", "musicians"))
	defer shardB.Close()
	rt, ts := newRouterServer(t, []shard.Spec{
		{Name: "alpha", URL: shardA.URL}, {Name: "beta", URL: shardB.URL},
	}, shard.Config{})
	client := darwin.NewClient(ts.URL, "")
	ctx := context.Background()

	// Direct reference run: engines are pure functions of their flags, so a
	// freshly built twin engine produces the bytes the routed job must match.
	var direct bytes.Buffer
	directRes, err := autolabel.Run(ctx, newTestEngine(t, "directions"), routerJobSpec(), &direct, nil)
	if err != nil {
		t.Fatal(err)
	}

	st, err := client.CreateLabelingJob(ctx, "directions", routerJobSpec())
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := rt.Place("directions") + shard.Sep
	if !strings.HasPrefix(st.ID, wantPrefix) {
		t.Fatalf("job id %q not namespaced to the dataset's primary (want prefix %q)", st.ID, wantPrefix)
	}
	st, err = client.WaitLabelingJob(ctx, "directions", st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != autolabel.StateDone {
		t.Fatalf("routed job ended %s: %s", st.State, st.Error)
	}
	if st.Covered != directRes.Covered || st.Positives != directRes.Positives || st.OutputBytes != directRes.OutputBytes {
		t.Errorf("routed status %+v does not match direct result %+v", st, directRes)
	}
	var got bytes.Buffer
	if err := client.LabelingJobOutput(ctx, "directions", st.ID, 0, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), direct.Bytes()) {
		t.Error("client → router → shard output differs from direct Run output")
	}
	var tail bytes.Buffer
	if err := client.LabelingJobOutput(ctx, "directions", st.ID, 100, &tail); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail.Bytes(), direct.Bytes()[100:]) {
		t.Error("offset download through the router differs from the output suffix")
	}

	// Job ids without the namespace (or with an unknown shard) are not found.
	if _, err := client.LabelingJob(ctx, "directions", "no-separator"); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("un-namespaced job id: %v, want ErrNotFound", err)
	}
	if _, err := client.LabelingJob(ctx, "directions", "nosuchshard"+shard.Sep+"j1"); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("unknown shard prefix: %v, want ErrNotFound", err)
	}
}

// TestRouterJobLabelerReference pins labeler-reference resolution across the
// namespace boundary: a labeler on the dataset's own shard resolves, one on
// a different shard is rejected before anything is enqueued.
func TestRouterJobLabelerReference(t *testing.T) {
	shardA := httptest.NewServer(newJobShardServer(t, "directions", "musicians"))
	defer shardA.Close()
	shardB := httptest.NewServer(newJobShardServer(t, "directions", "musicians"))
	defer shardB.Close()
	rt, ts := newRouterServer(t, []shard.Spec{
		{Name: "alpha", URL: shardA.URL}, {Name: "beta", URL: shardB.URL},
	}, shard.Config{})
	client := darwin.NewClient(ts.URL, "")
	ctx := context.Background()
	if rt.Place("directions") == rt.Place("musicians") {
		t.Fatal("test datasets hash to the same shard; the cross-shard case needs them apart")
	}

	lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{seedRuleFor("directions")}, Budget: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.CreateLabelingJob(ctx, "directions", autolabel.Spec{Labeler: lab.ID()})
	if err != nil {
		t.Fatalf("job referencing a same-shard labeler: %v", err)
	}
	if st.Spec.Labeler != "" || len(st.Spec.Rules) == 0 {
		t.Fatalf("labeler reference not resolved into rules: %+v", st.Spec)
	}
	if st, err = client.WaitLabelingJob(ctx, "directions", st.ID, 10*time.Millisecond); err != nil || st.State != autolabel.StateDone {
		t.Fatalf("labeler-reference job: %+v (%v)", st, err)
	}

	// A labeler living on the musicians shard cannot vote into a directions
	// job (its accepted rules were mined against another shard's corpus).
	other, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "musicians", SeedRules: []string{seedRuleFor("musicians")}, Budget: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateLabelingJob(ctx, "directions", autolabel.Spec{Labeler: other.ID()}); !errors.Is(err, darwin.ErrInvalid) {
		t.Errorf("cross-shard labeler reference: %v, want ErrInvalid", err)
	}
}

// TestRouterSnubaBaseline checks the synchronous baseline routes to the
// dataset's primary and returns the same JSON a direct in-process run does.
func TestRouterSnubaBaseline(t *testing.T) {
	shardA := httptest.NewServer(newJobShardServer(t, "directions", "musicians"))
	defer shardA.Close()
	_, ts := newRouterServer(t, []shard.Spec{{Name: "alpha", URL: shardA.URL}}, shard.Config{})
	client := darwin.NewClient(ts.URL, "")
	ctx := context.Background()

	req := autolabel.SnubaRequest{SeedSize: 200, Seed: 3, MinPrecision: 0.5, CompareRules: []string{seedRuleFor("directions")}}
	want, err := autolabel.RunSnuba(newTestEngine(t, "directions"), req)
	if err != nil {
		t.Fatal(err)
	}
	want.Dataset = "directions" // RunSnuba leaves it to the serving layer

	got, err := client.SnubaBaseline(ctx, "directions", req)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("routed snuba baseline diverged from the direct run:\n  direct %s\n  routed %s", wantJSON, gotJSON)
	}
	if len(got.Rules) == 0 || got.Snuba.Covered == 0 {
		t.Errorf("snuba mined nothing: %+v", got)
	}
}
