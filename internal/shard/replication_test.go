package shard_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/replicate"
	"repro/internal/shard"
	"repro/pkg/darwin"
)

// waitShardCaughtUp polls a shard's replication status until its stream for
// the dataset is healthy with zero lag.
func waitShardCaughtUp(t *testing.T, url, dataset string) {
	t.Helper()
	ctl := replicate.NewControl(url, "", nil)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := ctl.Status(context.Background())
		if err == nil {
			for _, d := range st.Datasets {
				if d.Dataset == dataset && d.Role == replicate.RolePrimary && d.Healthy && d.Lag == 0 && d.AckedUpto > 0 {
					return
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("shard %s never caught its follower up on %s", url, dataset)
}

// TestRouterDrivenReplicationFailover exercises the whole failover chain
// in-process: the router assigns replication roles from the ring, the
// primary streams the workload to its follower, and when the primary's
// probes cross the failover threshold the router promotes the follower and
// re-homes the dataset's ids — acknowledged answers survive, the old id
// keeps working, and the placement records the new epoch.
func TestRouterDrivenReplicationFailover(t *testing.T) {
	dir := t.TempDir()
	srvA := newShardServer(t, filepath.Join(dir, "alpha.jsonl"), "directions", "musicians")
	srvB := newShardServer(t, filepath.Join(dir, "beta.jsonl"), "directions", "musicians")
	shardA := httptest.NewServer(srvA)
	t.Cleanup(shardA.Close)
	shardB := httptest.NewServer(srvB)

	router, ts := newRouterServer(t, []shard.Spec{
		{Name: "alpha", URL: shardA.URL}, {Name: "beta", URL: shardB.URL},
	}, shard.Config{Retries: 1, RetryBackoff: 20 * time.Millisecond, FailoverThreshold: 2})
	client := darwin.NewClient(ts.URL, "")
	ctx := context.Background()

	// The ring places directions on beta with alpha as its follower.
	if router.Place("directions") != "beta" {
		t.Fatalf("directions placed on %s, want beta", router.Place("directions"))
	}
	router.EnsureReplication(ctx)
	var pl shard.PlacementInfo
	for _, p := range router.Placements() {
		if p.Dataset == "directions" {
			pl = p
		}
	}
	if pl.Primary != "beta" || pl.Follower != "alpha" || pl.Epoch != 1 {
		t.Fatalf("bootstrap placement %+v, want beta/alpha@1", pl)
	}

	lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{seedRuleFor("directions")}, Budget: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		sug, err := lab.Suggest(ctx)
		if err != nil {
			t.Fatalf("suggest %d: %v", i, err)
		}
		if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: i%2 == 0}); err != nil {
			t.Fatalf("answer %d: %v", i, err)
		}
	}
	repBefore, err := lab.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitShardCaughtUp(t, shardB.URL, "directions")

	// Kill the primary (connection refused from here on) and let probes
	// cross the threshold; the second failed probe triggers the promotion.
	shardB.Close()
	for i := 0; i < 2; i++ {
		router.ProbeNow(ctx)
	}
	for _, p := range router.Placements() {
		if p.Dataset == "directions" {
			pl = p
		}
	}
	if pl.Primary != "alpha" || pl.Epoch != 2 {
		t.Fatalf("post-failover placement %+v, want primary alpha at epoch 2", pl)
	}

	// The pre-failover labeler id (namespaced "beta~...") keeps serving
	// through the re-home table, with every acknowledged answer intact.
	repAfter, err := lab.Report(ctx)
	if err != nil {
		t.Fatalf("report through promoted follower: %v", err)
	}
	if len(repAfter.History) != len(repBefore.History) || repAfter.Positives != repBefore.Positives {
		t.Fatalf("acknowledged answers lost in failover: before %d/%d, after %d/%d",
			len(repBefore.History), repBefore.Positives, len(repAfter.History), repAfter.Positives)
	}
	sug, err := lab.Suggest(ctx)
	if err != nil {
		t.Fatalf("suggest after failover: %v", err)
	}
	if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: true}); err != nil {
		t.Fatalf("answer after failover: %v", err)
	}
	// Fresh creates for the dataset land on the promoted primary too.
	st, err := client.CreateLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", SeedRules: []string{seedRuleFor("directions")}, Budget: 10,
	})
	if err != nil {
		t.Fatalf("create after failover: %v", err)
	}
	if got := st.ID[:len("alpha~")]; got != "alpha~" {
		t.Fatalf("fresh create routed to %q, want the promoted primary alpha", st.ID)
	}
}
