package shard_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/pkg/darwin"
)

// concurrencyGauge tracks how many fake-shard list requests are in flight at
// once, so the tests can pin the router's ListConcurrency bound.
type concurrencyGauge struct {
	mu       sync.Mutex
	inflight int
	max      int
}

func (g *concurrencyGauge) enter() {
	g.mu.Lock()
	g.inflight++
	if g.inflight > g.max {
		g.max = g.inflight
	}
	g.mu.Unlock()
}

func (g *concurrencyGauge) exit() {
	g.mu.Lock()
	g.inflight--
	g.mu.Unlock()
}

func (g *concurrencyGauge) reset() {
	g.mu.Lock()
	g.inflight, g.max = 0, 0
	g.mu.Unlock()
}

func (g *concurrencyGauge) peak() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// pageStrings mirrors the shard-side cursor semantics: sorted ids, cursor is
// the last id of the previous page, next cursor set while more remain.
func pageStrings(ids []string, cursor string, limit int) (page []string, next string) {
	start := 0
	if cursor != "" {
		start = sort.SearchStrings(ids, cursor)
		if start < len(ids) && ids[start] == cursor {
			start++
		}
	}
	if limit <= 0 {
		limit = 100
	}
	end := start + limit
	if end > len(ids) {
		end = len(ids)
	}
	page = ids[start:end]
	if end < len(ids) && len(page) > 0 {
		next = page[len(page)-1]
	}
	return page, next
}

// newFakeListShard serves just the two list endpoints from fixed data,
// holding each request open for delay so overlap is observable.
func newFakeListShard(t *testing.T, gauge *concurrencyGauge, labelers, datasets []string, delay time.Duration) *httptest.Server {
	t.Helper()
	sortedLabs := append([]string(nil), labelers...)
	sort.Strings(sortedLabs)
	sortedSets := append([]string(nil), datasets...)
	sort.Strings(sortedSets)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		cursor := r.URL.Query().Get("cursor")
		switch r.URL.Path {
		case "/v2/labelers":
			gauge.enter()
			time.Sleep(delay)
			defer gauge.exit()
			ids, next := pageStrings(sortedLabs, cursor, limit)
			page := darwin.LabelerPage{Labelers: []darwin.Status{}, NextCursor: next}
			for _, id := range ids {
				page.Labelers = append(page.Labelers, darwin.Status{ID: id, Dataset: "directions"})
			}
			json.NewEncoder(w).Encode(page)
		case "/v2/datasets":
			gauge.enter()
			time.Sleep(delay)
			defer gauge.exit()
			names, next := pageStrings(sortedSets, cursor, limit)
			json.NewEncoder(w).Encode(darwin.DatasetPage{Datasets: names, NextCursor: next})
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestListFanoutConcurrencyBound pins the parallel fan-out satellite: list
// endpoints query shards concurrently, but never more than
// Config.ListConcurrency at once.
func TestListFanoutConcurrencyBound(t *testing.T) {
	gauge := &concurrencyGauge{}
	const fleet = 6
	specs := make([]shard.Spec, fleet)
	for i := 0; i < fleet; i++ {
		ts := newFakeListShard(t, gauge, []string{"a", "b"}, []string{fmt.Sprintf("set-%d", i)}, 30*time.Millisecond)
		specs[i] = shard.Spec{Name: fmt.Sprintf("s%d", i), URL: ts.URL}
	}
	rt, err := shard.New(specs, shard.Config{ListConcurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	page, err := rt.ListLabelers(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Labelers) != 2*fleet || page.NextCursor != "" {
		t.Fatalf("fan-out returned %d labelers (cursor %q), want %d", len(page.Labelers), page.NextCursor, 2*fleet)
	}
	if peak := gauge.peak(); peak > 2 {
		t.Errorf("labeler fan-out reached %d concurrent shard requests, bound is 2", peak)
	} else if peak < 2 {
		t.Errorf("labeler fan-out peaked at %d concurrent shard requests; expected the bound (2) to be used", peak)
	}

	gauge.reset()
	dp, err := rt.ListDatasets(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Datasets) != fleet {
		t.Fatalf("dataset union has %d names, want %d", len(dp.Datasets), fleet)
	}
	if peak := gauge.peak(); peak > 2 || peak < 2 {
		t.Errorf("dataset fan-out peaked at %d concurrent shard requests, want exactly the bound 2", peak)
	}
}

// TestListFanoutMatchesSequentialWalk holds the parallel fan-out to the
// sequential contract: a cursor walk over ListConcurrency 8 yields the same
// pages (ids and cursors) as ListConcurrency 1 over the same fleet.
func TestListFanoutMatchesSequentialWalk(t *testing.T) {
	gauge := &concurrencyGauge{}
	shardLabs := [][]string{
		nil,
		{"l1", "l2", "l3"},
		{"m1", "m2", "m3", "m4", "m5"},
		{"n1"},
	}
	shardSets := [][]string{
		{"alpha-only"},
		{"shared", "beta-only"},
		{"shared", "gamma-extra"},
		{"delta-only", "shared"},
	}
	names := []string{"pa", "pb", "pc", "pd"}
	specs := make([]shard.Spec, len(names))
	for i, name := range names {
		ts := newFakeListShard(t, gauge, shardLabs[i], shardSets[i], time.Millisecond)
		specs[i] = shard.Spec{Name: name, URL: ts.URL}
	}

	walk := func(conc int) (pages []string) {
		rt, err := shard.New(specs, shard.Config{ListConcurrency: conc})
		if err != nil {
			t.Fatal(err)
		}
		cursor := ""
		for {
			page, err := rt.ListLabelers(context.Background(), cursor, 3)
			if err != nil {
				t.Fatal(err)
			}
			var ids []string
			for _, st := range page.Labelers {
				ids = append(ids, st.ID)
			}
			pages = append(pages, strings.Join(ids, ",")+" next="+page.NextCursor)
			if page.NextCursor == "" {
				return pages
			}
			cursor = page.NextCursor
		}
	}
	sequential, parallel := walk(1), walk(8)
	if len(sequential) != 3 {
		t.Fatalf("9 labelers at limit 3 paged as %v", sequential)
	}
	for i := range sequential {
		if i >= len(parallel) || sequential[i] != parallel[i] {
			t.Fatalf("page %d diverged:\n  sequential %v\n  parallel   %v", i, sequential, parallel)
		}
	}

	walkSets := func(conc int) (pages []string) {
		rt, err := shard.New(specs, shard.Config{ListConcurrency: conc})
		if err != nil {
			t.Fatal(err)
		}
		cursor := ""
		for {
			page, err := rt.ListDatasets(context.Background(), cursor, 2)
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, strings.Join(page.Datasets, ",")+" next="+page.NextCursor)
			if page.NextCursor == "" {
				return pages
			}
			cursor = page.NextCursor
		}
	}
	seqSets, parSets := walkSets(1), walkSets(8)
	if len(seqSets) != 3 { // 5 distinct names at limit 2
		t.Fatalf("dataset union paged as %v", seqSets)
	}
	for i := range seqSets {
		if i >= len(parSets) || seqSets[i] != parSets[i] {
			t.Fatalf("dataset page %d diverged:\n  sequential %v\n  parallel   %v", i, seqSets, parSets)
		}
	}
}

// TestListFanoutDegradationAndErrors pins the failure split under the
// parallel fan-out: an unavailable shard degrades the listing (its labelers
// vanish, the call succeeds, /healthz names the gap), while a client-class
// shard failure surfaces as an error rather than silently shrinking the page.
func TestListFanoutDegradationAndErrors(t *testing.T) {
	gauge := &concurrencyGauge{}
	live1 := newFakeListShard(t, gauge, []string{"a1"}, []string{"directions"}, 0)
	live2 := newFakeListShard(t, gauge, []string{"c1"}, []string{"directions"}, 0)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer down.Close()
	rt, err := shard.New([]shard.Spec{
		{Name: "alpha", URL: live1.URL},
		{Name: "beta", URL: down.URL},
		{Name: "gamma", URL: live2.URL},
	}, shard.Config{ListConcurrency: 4, Retries: 1, RetryBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	page, err := rt.ListLabelers(ctx, "", 0)
	if err != nil {
		t.Fatalf("listing with a down shard must degrade, got error: %v", err)
	}
	var ids []string
	for _, st := range page.Labelers {
		ids = append(ids, st.ID)
	}
	want := []string{"alpha" + shard.Sep + "a1", "gamma" + shard.Sep + "c1"}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("degraded listing = %v, want %v", ids, want)
	}
	for _, h := range rt.Health() {
		if h.Name == "beta" && h.Healthy {
			t.Errorf("down shard still marked healthy after a degraded fan-out")
		}
	}
	dp, err := rt.ListDatasets(ctx, "", 0)
	if err != nil || len(dp.Datasets) != 1 || dp.Datasets[0] != "directions" {
		t.Fatalf("degraded dataset union = %v (%v)", dp.Datasets, err)
	}

	// A shard answering with a client-class error (bad token, rate limit)
	// while reachable must fail the listing loudly.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"invalid","message":"bad list request"}}`)
	}))
	defer bad.Close()
	rt2, err := shard.New([]shard.Spec{
		{Name: "alpha", URL: live1.URL},
		{Name: "beta", URL: bad.URL},
	}, shard.Config{ListConcurrency: 4, Retries: 1, RetryBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.ListLabelers(ctx, "", 0); !errors.Is(err, darwin.ErrInvalid) {
		t.Errorf("client-class shard failure: %v, want ErrInvalid surfaced", err)
	}
	if _, err := rt2.ListDatasets(ctx, "", 0); !errors.Is(err, darwin.ErrInvalid) {
		t.Errorf("client-class dataset failure: %v, want ErrInvalid surfaced", err)
	}
}
