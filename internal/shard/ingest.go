package shard

import (
	"context"
	"fmt"

	"repro/internal/ingest"
	"repro/pkg/darwin"
)

// IngestSentences implements the server Backend: the batch goes to the
// dataset's current primary — the shard whose journal owns the dataset's
// durable history, so the follower replicating that journal sees the growth
// too. Ingests are attempted exactly once: they are not idempotent (a retry
// after a lost response would append the batch twice), so a transport
// failure surfaces to the client, which can compare corpus_len before
// resubmitting.
func (r *Router) IngestSentences(ctx context.Context, dataset string, batch []ingest.Sentence) (darwin.IngestResult, error) {
	if dataset == "" {
		return darwin.IngestResult{}, fmt.Errorf("%w: dataset is required", darwin.ErrInvalid)
	}
	sh := r.primaryFor(dataset)
	res, err := sh.client.IngestSentences(ctx, dataset, batch)
	observeOnce(sh, "ingest", err)
	return res, err
}
