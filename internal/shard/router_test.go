package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/tokensregex"
	"repro/pkg/darwin"
)

// newTestEngine builds a small deterministic engine — identical flags across
// calls, so a restarted shard rebuilds the exact engine its journal was
// recorded against.
func newTestEngine(t testing.TB, dataset string) *core.Engine {
	t.Helper()
	c, err := datagen.ByName(dataset, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(c, core.Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     4,
		MaxRuleDepth:    6,
		NumCandidates:   400,
		MinRuleCoverage: 2,
		Budget:          30,
		Traversal:       "hybrid",
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 8, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Embedding:       embedding.Config{Dim: 24, Window: 3, MinCount: 2, Seed: 1},
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// newShardServer builds one darwind-equivalent shard serving the given
// datasets (with an optional journal for crash recovery).
func newShardServer(t testing.TB, journal string, datasets ...string) *server.Server {
	t.Helper()
	sets := make([]*server.Dataset, 0, len(datasets))
	for _, name := range datasets {
		sets = append(sets, &server.Dataset{Name: name, Engine: newTestEngine(t, name)})
	}
	srv, err := server.New(server.Config{JournalPath: journal}, sets...)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// seedRuleFor mirrors the canonical per-dataset seed rules.
func seedRuleFor(dataset string) string {
	if dataset == "musicians" {
		return "composer"
	}
	return "best way to get to"
}

// newRouterServer mounts the unmodified /v2 handler set over a Router and
// serves it — exactly what cmd/darwin-router does.
func newRouterServer(t testing.TB, specs []shard.Spec, cfg shard.Config) (*shard.Router, *httptest.Server) {
	t.Helper()
	rt, err := shard.New(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.V2Handler(rt))
	t.Cleanup(ts.Close)
	return rt, ts
}

func TestPlacementIsDeterministicAndCovering(t *testing.T) {
	specs := []shard.Spec{
		{Name: "alpha", URL: "http://a"}, {Name: "beta", URL: "http://b"}, {Name: "gamma", URL: "http://c"},
	}
	r1, err := shard.New(specs, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Same fleet in a different declaration order: identical placement.
	r2, err := shard.New([]shard.Spec{specs[2], specs[0], specs[1]}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 600
	hit := map[string]int{}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		p1, p2 := r1.Place(key), r2.Place(key)
		if p1 != p2 {
			t.Errorf("placement of %q depends on declaration order: %q vs %q", key, p1, p2)
		}
		hit[p1]++
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if hit[name] < keys/10 {
			t.Errorf("shard %s owns %d of %d keys (%v); ring is badly unbalanced", name, hit[name], keys, hit)
		}
	}
}

func TestRouterRejectsBadSpecs(t *testing.T) {
	for _, specs := range [][]shard.Spec{
		nil,
		{{Name: "", URL: "http://a"}},
		{{Name: "a~b", URL: "http://a"}},
		{{Name: "a", URL: ""}},
		{{Name: "a", URL: "http://a"}, {Name: "a", URL: "http://b"}},
	} {
		if _, err := shard.New(specs, shard.Config{}); err == nil {
			t.Errorf("New(%+v) accepted an invalid fleet", specs)
		}
	}
}

// TestRouterEndToEnd drives the full surface through client → router →
// shard: namespaced ids, every labeler verb, fan-out listing with cursors,
// dataset union, and delete.
func TestRouterEndToEnd(t *testing.T) {
	shardA := httptest.NewServer(newShardServer(t, "", "directions", "musicians"))
	defer shardA.Close()
	shardB := httptest.NewServer(newShardServer(t, "", "directions", "musicians"))
	defer shardB.Close()
	rt, ts := newRouterServer(t, []shard.Spec{
		{Name: "alpha", URL: shardA.URL}, {Name: "beta", URL: shardB.URL},
	}, shard.Config{})
	client := darwin.NewClient(ts.URL, "")
	ctx := context.Background()

	if rt.Place("directions") == rt.Place("musicians") {
		t.Fatalf("test datasets hash to the same shard (%q); pick different shard names", rt.Place("directions"))
	}

	// One session labeler per dataset: they must land on different shards.
	labs := map[string]*darwin.RemoteLabeler{}
	for _, ds := range []string{"directions", "musicians"} {
		lab, err := client.NewLabeler(ctx, darwin.CreateOptions{
			Dataset: ds, SeedRules: []string{seedRuleFor(ds)}, Budget: 8, Seed: 42,
		})
		if err != nil {
			t.Fatalf("create on %s: %v", ds, err)
		}
		wantPrefix := rt.Place(ds) + shard.Sep
		if !strings.HasPrefix(lab.ID(), wantPrefix) {
			t.Fatalf("labeler id %q not namespaced to its dataset's shard (want prefix %q)", lab.ID(), wantPrefix)
		}
		labs[ds] = lab
	}

	// The full verb set works through the router.
	lab := labs["directions"]
	sug, err := lab.Suggest(ctx)
	if err != nil || sug.Key == "" {
		t.Fatalf("suggest: %v (%+v)", err, sug)
	}
	again, err := lab.Suggest(ctx)
	if err != nil || again.Key != sug.Key {
		t.Fatalf("suggest not idempotent through the router: %q vs %q (%v)", again.Key, sug.Key, err)
	}
	if err := lab.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: true}); err != nil {
		t.Fatalf("answer: %v", err)
	}
	st, err := lab.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.ID != lab.ID() || st.Questions != 1 || st.Dataset != "directions" {
		t.Fatalf("status %+v does not match the routed labeler", st)
	}
	rep, err := lab.Report(ctx)
	if err != nil || rep.Questions != 1 {
		t.Fatalf("report: %v (%+v)", err, rep)
	}
	var buf bytes.Buffer
	if err := lab.Export(ctx, &buf); err != nil || buf.Len() == 0 {
		t.Fatalf("export: %v (%d bytes)", err, buf.Len())
	}

	// A workspace labeler: the workspace id is namespaced, and joining by
	// that namespaced id routes to the owning shard.
	alice, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{seedRuleFor("directions")}, Budget: 10, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ast, err := alice.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ast.Workspace, rt.Place("directions")+shard.Sep) {
		t.Fatalf("workspace id %q is not router-namespaced", ast.Workspace)
	}
	bob, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Mode: darwin.ModeWorkspace, Workspace: ast.Workspace, Annotator: "bob",
	})
	if err != nil {
		t.Fatalf("join namespaced workspace: %v", err)
	}
	bst, err := bob.Status(ctx)
	if err != nil || bst.Workspace != ast.Workspace {
		t.Fatalf("bob's workspace %q, want %q (%v)", bst.Workspace, ast.Workspace, err)
	}

	// Fan-out listing: all labelers appear exactly once across cursor pages
	// of limit 2, each with a namespaced id.
	want := map[string]bool{labs["directions"].ID(): true, labs["musicians"].ID(): true, alice.ID(): true, bob.ID(): true}
	got := map[string]bool{}
	cursor, pages := "", 0
	for {
		page, err := client.ListLabelers(ctx, cursor, 2)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(page.Labelers) > 2 {
			t.Fatalf("page of %d exceeds limit 2", len(page.Labelers))
		}
		for _, st := range page.Labelers {
			if got[st.ID] {
				t.Fatalf("labeler %s listed twice", st.ID)
			}
			if !strings.Contains(st.ID, shard.Sep) {
				t.Fatalf("listed id %q is not namespaced", st.ID)
			}
			got[st.ID] = true
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(got) != len(want) || pages < 2 {
		t.Fatalf("listing returned %d labelers over %d pages, want %d over >= 2", len(got), pages, len(want))
	}
	for id := range want {
		if !got[id] {
			t.Errorf("labeler %s missing from the fan-out listing", id)
		}
	}

	// Dataset union across the fleet.
	dp, err := client.ListDatasets(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Datasets) != 2 || dp.Datasets[0] != "directions" || dp.Datasets[1] != "musicians" {
		t.Fatalf("datasets = %v, want [directions musicians]", dp.Datasets)
	}

	// Delete routes by prefix; the labeler is gone afterwards.
	if err := labs["musicians"].Close(ctx); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := labs["musicians"].Suggest(ctx); !errors.Is(err, darwin.ErrNotFound) {
		t.Fatalf("suggest after delete: %v, want ErrNotFound", err)
	}
	// Unknown / un-namespaced ids are not found.
	if _, err := client.OpenLabeler("no-separator").Status(ctx); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("un-namespaced id: %v, want ErrNotFound", err)
	}
	if _, err := client.OpenLabeler("nosuchshard" + shard.Sep + "abc").Status(ctx); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("unknown shard prefix: %v, want ErrNotFound", err)
	}
}

// restartableShard serves a shard over a real listener so the test can kill
// it (connection refused, like a SIGKILLed darwind) and later restart a
// recovered server on the same address.
type restartableShard struct {
	addr string
	hs   *http.Server
}

func startShard(t *testing.T, srv *server.Server, addr string) *restartableShard {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	rs := &restartableShard{addr: ln.Addr().String(), hs: &http.Server{Handler: srv}}
	go rs.hs.Serve(ln)
	t.Cleanup(func() { rs.hs.Close() })
	return rs
}

func (rs *restartableShard) kill() { rs.hs.Close() }

// TestRouterFailoverAndRecovery kills one shard mid-session and asserts the
// blast radius: labelers on the surviving shard are unaffected, labelers
// routed to the dead shard surface ErrUnavailable with retryable=true, and
// a restarted shard resumes its journaled workspaces through the router —
// including the annotator attachment, whose labeler id is derived
// deterministically and rebuilt from the journal.
func TestRouterFailoverAndRecovery(t *testing.T) {
	dir := t.TempDir()
	journalB := filepath.Join(dir, "shard-b.jsonl")

	shardA := startShard(t, newShardServer(t, "", "directions", "musicians"), "127.0.0.1:0")
	srvB := newShardServer(t, journalB, "directions", "musicians")
	shardB := startShard(t, srvB, "127.0.0.1:0")

	// Tight retry budget so the dead-shard assertions stay fast.
	rt, ts := newRouterServer(t, []shard.Spec{
		{Name: "alpha", URL: "http://" + shardA.addr}, {Name: "beta", URL: "http://" + shardB.addr},
	}, shard.Config{Retries: 1, RetryBackoff: 10 * time.Millisecond})
	client := darwin.NewClient(ts.URL, "")
	ctx := context.Background()

	// "musicians" lives on alpha, "directions" on beta (pinned above by
	// TestRouterEndToEnd's placement check).
	if rt.Place("musicians") != "alpha" || rt.Place("directions") != "beta" {
		t.Fatalf("unexpected placement: musicians → %s, directions → %s", rt.Place("musicians"), rt.Place("directions"))
	}
	onA, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "musicians", SeedRules: []string{seedRuleFor("musicians")}, Budget: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	onB, err := client.NewLabeler(ctx, darwin.CreateOptions{
		Dataset: "directions", Mode: darwin.ModeWorkspace, Annotator: "alice",
		SeedRules: []string{seedRuleFor("directions")}, Budget: 10, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sug, err := onB.Suggest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := onB.Answer(ctx, darwin.Answer{Key: sug.Key, Accept: true}); err != nil {
		t.Fatal(err)
	}
	stB, err := onB.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	repBefore, err := onB.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := srvB.Workspaces().Sync(); err != nil {
		t.Fatal(err)
	}

	// Kill shard beta mid-session.
	shardB.kill()

	// Non-routed labelers are unaffected.
	if _, err := onA.Suggest(ctx); err != nil {
		t.Fatalf("labeler on the surviving shard broke: %v", err)
	}
	// Routed labelers surface the typed, retryable unavailability.
	if _, err := onB.Suggest(ctx); !errors.Is(err, darwin.ErrUnavailable) {
		t.Fatalf("suggest on dead shard: %v, want ErrUnavailable", err)
	} else if !darwin.Retryable(err) {
		t.Fatalf("dead-shard error %v is not marked retryable", err)
	}
	// The prober notices, healthz names the gap, and the listing degrades
	// to the surviving shard instead of failing.
	if up := rt.ProbeNow(ctx); up != 1 {
		t.Fatalf("ProbeNow reports %d healthy shards, want 1", up)
	}
	var aliveNames []string
	for _, h := range rt.Health() {
		if h.Healthy {
			aliveNames = append(aliveNames, h.Name)
		} else if h.Error == "" {
			t.Errorf("down shard %s reports no error", h.Name)
		}
	}
	if len(aliveNames) != 1 || aliveNames[0] != "alpha" {
		t.Fatalf("healthy shards %v, want [alpha]", aliveNames)
	}
	page, err := client.ListLabelers(ctx, "", 0)
	if err != nil {
		t.Fatalf("degraded listing failed: %v", err)
	}
	for _, st := range page.Labelers {
		if strings.HasPrefix(st.ID, "beta"+shard.Sep) {
			t.Fatalf("dead shard's labeler %s still listed", st.ID)
		}
	}

	// Restart shard beta from its journal on the same address: the
	// workspace, its attachment, and the labeler id all resume through the
	// router without any router-side change.
	srvB2 := newShardServer(t, journalB, "directions", "musicians")
	if rec := srvB2.Recovery(); rec.Workspaces != 1 || len(rec.Skipped) != 0 {
		t.Fatalf("shard recovery stats: %+v", rec)
	}
	startShard(t, srvB2, shardB.addr)
	if up := rt.ProbeNow(ctx); up != 2 {
		t.Fatalf("ProbeNow after restart reports %d healthy shards, want 2", up)
	}
	stAfter, err := onB.Status(ctx)
	if err != nil {
		t.Fatalf("status after shard restart: %v", err)
	}
	if stAfter.ID != stB.ID || stAfter.Workspace != stB.Workspace || stAfter.Questions != stB.Questions {
		t.Fatalf("resumed status %+v does not match pre-crash %+v", stAfter, stB)
	}
	repAfter, err := onB.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(repAfter.History) != len(repBefore.History) || repAfter.Positives != repBefore.Positives {
		t.Fatalf("report diverged across shard restart: before %+v after %+v", repBefore, repAfter)
	}
	if _, err := onB.Suggest(ctx); err != nil {
		t.Fatalf("suggest after shard recovery: %v", err)
	}
}

// TestBatchAnswersNeedNoStatusRoundTrip pins the single-request contract of
// the /v2 batch-answers path through the router: the post-batch counters ride
// in the answers response itself, so a shard that dies (or starts failing)
// right after applying the batch cannot turn a durably-applied batch into a
// 503. The fake shard answers the batch POST once and 503s everything else —
// if the router issued a second status round trip, the call would fail and
// the status GET counter would be nonzero.
func TestBatchAnswersNeedNoStatusRoundTrip(t *testing.T) {
	var statusGets, answerPosts atomic.Int32
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v2/labelers/x1/answers":
			answerPosts.Add(1)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"applied":1,"records":[{"question":3,"key":"k1","rule":"word(go)","coverage":4,"accepted":true,"positives_after":5}],"questions":3,"budget_left":7,"positives":5,"done":false}`)
		case r.Method == http.MethodGet && r.URL.Path == "/v2/labelers/x1":
			statusGets.Add(1)
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			// The shard is dead to every other request.
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer fake.Close()

	_, ts := newRouterServer(t, []shard.Spec{{Name: "alpha", URL: fake.URL}}, shard.Config{})
	client := darwin.NewClient(ts.URL, "")
	lab := client.OpenLabeler("alpha" + shard.Sep + "x1")

	recs, st, err := lab.AnswerBatchStatus(context.Background(), []darwin.Answer{{Key: "k1", Accept: true}})
	if err != nil {
		t.Fatalf("batch through router with dead status path: %v", err)
	}
	if len(recs) != 1 || recs[0].Question != 3 || !recs[0].Accepted {
		t.Fatalf("records = %+v, want the applied record", recs)
	}
	if st.ID != "alpha"+shard.Sep+"x1" || st.Questions != 3 || st.Budget != 10 || st.Positives != 5 || st.Done {
		t.Fatalf("post-batch status = %+v, want the counters carried in the answers response", st)
	}
	if got := answerPosts.Load(); got != 1 {
		t.Fatalf("answers POST hit the shard %d times, want exactly 1", got)
	}
	if got := statusGets.Load(); got != 0 {
		t.Fatalf("router issued %d status GETs after the batch; the counters must ride the answers response", got)
	}
}

// TestHealthProbeBookkeeping pins the per-shard probe state surfaced by
// Health() (and thus the router's /healthz JSON): last probe time and the
// consecutive-failure streak.
func TestHealthProbeBookkeeping(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rt, err := shard.New([]shard.Spec{{Name: "alpha", URL: up.URL}}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	healthOf := func() shard.ShardHealth {
		hs := rt.Health()
		if len(hs) != 1 {
			t.Fatalf("Health() returned %d shards, want 1", len(hs))
		}
		return hs[0]
	}
	if h := healthOf(); !h.LastProbe.IsZero() {
		t.Fatalf("LastProbe %v before any probe, want zero", h.LastProbe)
	}

	before := time.Now().Add(-time.Second)
	rt.ProbeNow(ctx)
	h := healthOf()
	if !h.Healthy || h.ConsecutiveFailures != 0 {
		t.Fatalf("after healthy probe: %+v", h)
	}
	if h.LastProbe.Before(before) || h.LastProbe.After(time.Now().Add(time.Second)) {
		t.Fatalf("LastProbe %v is not a recent timestamp", h.LastProbe)
	}

	up.Close()
	for want := 1; want <= 2; want++ {
		rt.ProbeNow(ctx)
		h = healthOf()
		if h.Healthy || h.ConsecutiveFailures != want || h.Error == "" {
			t.Fatalf("after %d failed probes: %+v", want, h)
		}
	}
	if h.LastProbe.IsZero() {
		t.Fatal("LastProbe lost after a failed probe")
	}
}
