package shard_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/pkg/darwin"
)

// TestRouterIngestEndToEnd drives sentence ingestion client → router →
// primary shard: the batch lands on exactly the dataset's primary (the
// shard whose journal owns the dataset), the acknowledgement reports the
// primary's corpus range, and the router daemon's /metrics — the same mux
// cmd/darwin-router serves — exposes a valid exposition including the
// ingest families.
func TestRouterIngestEndToEnd(t *testing.T) {
	srvA := newShardServer(t, "", "directions", "musicians")
	defer srvA.Close()
	srvB := newShardServer(t, "", "directions", "musicians")
	defer srvB.Close()
	shardA := httptest.NewServer(srvA)
	defer shardA.Close()
	shardB := httptest.NewServer(srvB)
	defer shardB.Close()
	rt, err := shard.New([]shard.Spec{
		{Name: "alpha", URL: shardA.URL}, {Name: "beta", URL: shardB.URL},
	}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The router daemon's mux: /metrics + the /v2 handler set over the
	// Router, exactly what cmd/darwin-router mounts.
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Default().Handler())
	server.RegisterV2(rt, func(pattern string, h http.HandlerFunc) { mux.HandleFunc(pattern, h) })
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client := darwin.NewClient(ts.URL, "")
	ctx := context.Background()

	servers := map[string]*server.Server{"alpha": srvA, "beta": srvB}
	primary := servers[rt.Place("directions")]
	other := servers[map[string]string{"alpha": "beta", "beta": "alpha"}[rt.Place("directions")]]
	boot := primary.Dataset("directions").Engine.CorpusLen()

	batch := []ingest.Sentence{
		{Text: "best way to get to the ferry pier", Label: 1},
		{Text: "the museum closes at five", Label: 0},
	}
	res, err := client.IngestSentences(ctx, "directions", batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "directions" || res.From != boot || res.Ingested != 2 || res.CorpusLen != boot+2 {
		t.Fatalf("routed ingest acknowledged %+v, want from=%d ingested=2", res, boot)
	}
	if got := primary.Dataset("directions").Engine.CorpusLen(); got != boot+2 {
		t.Errorf("primary corpus is %d sentences, want %d", got, boot+2)
	}
	if got := other.Dataset("directions").Engine.CorpusLen(); got != boot {
		t.Errorf("non-primary corpus grew to %d; ingest must land only on the primary", got)
	}

	if _, err := client.IngestSentences(ctx, "ghosts", batch); !errors.Is(err, darwin.ErrNotFound) {
		t.Errorf("unknown dataset through the router: %v", err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := obs.CheckExposition(string(body)); err != nil {
		t.Fatalf("router /metrics exposition invalid: %v", err)
	}
	// The shared registry carries the ingest families (the router process
	// registers them by linking the server package), and the router's own
	// per-shard request counters record the forwarded call.
	for _, series := range []string{
		"darwin_ingest_batches_total",
		"darwin_ingest_sentences_total",
		"darwin_bitset_containers",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("router /metrics is missing %s", series)
		}
	}
}
