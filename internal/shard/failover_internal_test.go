package shard

import (
	"testing"
	"time"
)

func TestNextProbeDelayBackoffAndJitter(t *testing.T) {
	base, max := time.Second, 30*time.Second
	if d := nextProbeDelay(0, base, max); d != 0 {
		t.Fatalf("no failures: delay %v, want 0", d)
	}
	// Expected (unjittered) ladder: 1s, 2s, 4s, ... capped at 30s; jitter
	// keeps each sample within ±20%.
	want := base
	for fails := 1; fails <= 10; fails++ {
		for i := 0; i < 20; i++ {
			d := nextProbeDelay(fails, base, max)
			lo := time.Duration(float64(want) * 0.8)
			hi := time.Duration(float64(want) * 1.2)
			if d < lo || d > hi {
				t.Fatalf("fails=%d: delay %v outside [%v, %v]", fails, d, lo, hi)
			}
		}
		if want < max {
			want *= 2
			if want > max {
				want = max
			}
		}
	}
}

func TestRingSuccessorsCoverDistinctShards(t *testing.T) {
	ring := newHashRing([]string{"alpha", "beta", "gamma"})
	for _, key := range []string{"directions", "musicians", "anything-else"} {
		succ := ring.successors(key)
		if len(succ) != 3 {
			t.Fatalf("key %q: successors %v, want all 3 shards", key, succ)
		}
		if succ[0] != ring.lookup(key) {
			t.Fatalf("key %q: successors[0]=%d, lookup=%d — owner must lead", key, succ[0], ring.lookup(key))
		}
		seen := map[int]bool{}
		for _, idx := range succ {
			if seen[idx] {
				t.Fatalf("key %q: duplicate shard index in %v", key, succ)
			}
			seen[idx] = true
		}
	}
	// Growing the fleet must keep an existing dataset's owner/follower pair
	// stable unless the new shard lands on its arcs — spot-check that the
	// follower choice is a pure function of the ring.
	a := ring.successors("directions")
	b := newHashRing([]string{"alpha", "beta", "gamma"}).successors("directions")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("successors not deterministic: %v vs %v", a, b)
		}
	}
}
