// Package shard scales the darwin serving tier horizontally: a Router
// presents one logical labeler namespace over a fleet of darwind shards,
// the way GrapAL fronts a partitioned literature graph with a single query
// surface. It implements the internal/server Backend interface, so the
// unmodified /v2 handler set mounts directly over it (cmd/darwin-router);
// each labeler the router hands out is a darwin.Labeler delegating to a
// darwin.RemoteLabeler on the owning shard.
//
// # Id routing
//
// Placement is a consistent hash: a fresh create hashes its dataset onto
// the ring, so every labeler (and workspace) of a dataset lives on the
// shard that dataset hashes to, and growing the fleet re-homes only the
// datasets on the new shard's arcs. Every id the router returns is
// namespaced "<shard>~<backend id>"; id-addressed requests route by that
// prefix alone — no fan-out, no lookup table, nothing to rebuild after a
// router restart. Workspace ids in statuses are namespaced the same way,
// and joining an existing workspace expects the namespaced form.
//
// # Failure handling
//
// Each shard is probed on /healthz; requests are always attempted (an
// id-addressed request to a just-recovered shard succeeds without waiting
// for a probe), idempotent calls (suggest, status, report, list, and
// exports that have not written yet) retry bounded with backoff while the
// error is retryable per the pkg/darwin taxonomy, and non-idempotent calls
// (create, answers, delete) are attempted exactly once. A shard that stays
// down surfaces darwin.ErrUnavailable (retryable) for its labelers only;
// list endpoints degrade to the live shards and the router's healthz names
// the gap.
package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/replicate"
	"repro/internal/server"
	"repro/pkg/darwin"
)

// Router telemetry: per-shard request/retry/failure counters, probe state,
// and fan-out latency — the series that attribute a p95 tail to "router
// retried shard X" versus "shard X was slow".
var (
	shardRequests = obs.Default().CounterVec("darwin_shard_requests_total",
		"Requests attempted against a backend shard, by shard and verb (every retry is an attempt).",
		"shard", "verb")
	shardRetries = obs.Default().CounterVec("darwin_shard_retries_total",
		"Retries of idempotent shard requests after a retryable error.",
		"shard", "verb")
	shardFailures = obs.Default().CounterVec("darwin_shard_failures_total",
		"Shard requests that failed after the retry policy was exhausted.",
		"shard", "verb")
	shardUpGauge = obs.Default().GaugeVec("darwin_shard_up",
		"1 while the shard's last probe or fan-out succeeded, 0 while it is marked down.",
		"shard")
	shardProbes = obs.Default().CounterVec("darwin_shard_probes_total",
		"Health probes, by shard and result.",
		"shard", "result")
	shardConsecFailures = obs.Default().GaugeVec("darwin_shard_consecutive_probe_failures",
		"Consecutive failed health probes per shard (0 while healthy).",
		"shard")
	fanoutDurations = obs.Default().HistogramVec("darwin_router_fanout_duration_seconds",
		"Latency of full fan-out merges across the fleet, by endpoint.",
		obs.LatencyBuckets, "endpoint")
)

// Sep separates the shard name from the backend id in router-namespaced
// labeler and workspace ids. Shard names must not contain it; backend ids
// (hex tokens) never do.
const Sep = "~"

// Spec names one backend darwind shard.
type Spec struct {
	// Name is the shard's stable ring identity. Renaming a shard re-homes
	// every dataset, so treat it as permanent.
	Name string
	// URL is the shard's base URL (e.g. http://10.0.0.7:8080).
	URL string
	// Token, when non-empty, is sent as the bearer token on every request
	// to this shard.
	Token string
}

// Config tunes the router.
type Config struct {
	// Retries bounds how many times an idempotent call is retried after a
	// retryable error (default 2, so at most 3 attempts; negative disables
	// retries entirely).
	Retries int
	// RetryBackoff is the first retry's pause, doubled per attempt
	// (default 100ms).
	RetryBackoff time.Duration
	// HTTPClient is used for shard requests and health probes (default: a
	// client with a 30s timeout).
	HTTPClient *http.Client
	// ShardTimeout, when positive, bounds each JSON round trip to a shard
	// with a per-request deadline (darwin.WithTimeout). A shard that accepts
	// connections but never answers then fails fast with a retryable
	// ErrUnavailable instead of pinning the caller for the full HTTPClient
	// timeout.
	ShardTimeout time.Duration
	// FailoverThreshold, when positive, turns on replication management:
	// the router assigns each dataset a follower shard, pushes replication
	// roles, and promotes the follower once the primary fails this many
	// consecutive health probes. 0 (the default) disables all of it — the
	// router behaves exactly as a plain consistent-hash front.
	FailoverThreshold int
	// ProbeBackoffMax caps the exponential probe backoff for down shards
	// (default 30s). The first failure re-probes after the prober interval
	// as before; each further failure doubles the pause, so a long-dead
	// shard is not hammered every tick.
	ProbeBackoffMax time.Duration
	// ListConcurrency bounds how many shards the list fan-outs
	// (/v2/labelers, /v2/datasets) query concurrently (default 4; 1 restores
	// the fully sequential walk).
	ListConcurrency int
}

func (c Config) withDefaults() Config {
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 30 * time.Second
	}
	if c.ListConcurrency <= 0 {
		c.ListConcurrency = 4
	}
	return c
}

// shard is one live backend: its client plus probed health.
type shard struct {
	name   string
	url    string
	token  string
	client *darwin.Client
	// ctl speaks the shard's /v2/replication control surface (role pushes,
	// promotion, status).
	ctl *replicate.Control
	up  atomic.Bool
	// lastErr holds the most recent probe/fan-out failure as a string
	// ("" when healthy).
	lastErr atomic.Value
	// lastProbe is the wall-clock of the last completed probe (UnixNano;
	// 0 before the first), and consecFails counts probe failures since the
	// last success. Both feed the router's /healthz and /metrics.
	lastProbe   atomic.Int64
	consecFails atomic.Int64
	// nextProbe (UnixNano) is the earliest the prober should probe this
	// shard again: pushed into the future with exponential backoff while the
	// shard keeps failing, zeroed on success. ProbeNow ignores it.
	nextProbe atomic.Int64
}

func (sh *shard) setHealth(err error) {
	if err == nil {
		sh.up.Store(true)
		sh.lastErr.Store("")
		shardUpGauge.With(sh.name).Set(1)
		return
	}
	sh.up.Store(false)
	sh.lastErr.Store(err.Error())
	shardUpGauge.With(sh.name).Set(0)
}

// observeOnce counts a single-attempt (non-idempotent) shard request; the
// retrying verbs count inside retryWhile instead.
func observeOnce(sh *shard, verb string, err error) {
	shardRequests.With(sh.name, verb).Inc()
	if err != nil {
		shardFailures.With(sh.name, verb).Inc()
	}
}

// Router routes one logical /v2 labeler namespace across a set of darwind
// shards. It implements the internal/server Backend interface; all methods
// are safe for concurrent use.
type Router struct {
	cfg    Config
	shards []*shard // sorted by name; listing order and ring indices
	byName map[string]*shard
	ring   *hashRing
	// failover holds the replication placements and re-home table; nil when
	// Config.FailoverThreshold leaves replication management off.
	failover *failoverState
	// proberEvery is the running Prober's interval in nanoseconds (0 before
	// it starts); it is the base of the per-shard probe backoff.
	proberEvery atomic.Int64
}

// proberInterval returns the running Prober's interval (5s before it
// starts), the base unit of probe backoff.
func (r *Router) proberInterval() time.Duration {
	if ns := r.proberEvery.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return 5 * time.Second
}

// Compile-time check: the unmodified /v2 handler set serves the router.
var _ server.Backend = (*Router)(nil)

// New creates a router over the given shards.
func New(specs []Spec, cfg Config) (*Router, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("shard: at least one shard is required")
	}
	r := &Router{cfg: cfg.withDefaults(), byName: make(map[string]*shard, len(specs))}
	for _, spec := range specs {
		if spec.Name == "" || strings.Contains(spec.Name, Sep) {
			return nil, fmt.Errorf("shard: invalid shard name %q (must be non-empty and not contain %q)", spec.Name, Sep)
		}
		if spec.URL == "" {
			return nil, fmt.Errorf("shard: shard %q has no URL", spec.Name)
		}
		if _, dup := r.byName[spec.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate shard name %q", spec.Name)
		}
		clientOpts := []darwin.ClientOption{darwin.WithHTTPClient(r.cfg.HTTPClient)}
		if r.cfg.ShardTimeout > 0 {
			clientOpts = append(clientOpts, darwin.WithTimeout(r.cfg.ShardTimeout))
		}
		sh := &shard{
			name:   spec.Name,
			url:    strings.TrimRight(spec.URL, "/"),
			token:  spec.Token,
			client: darwin.NewClient(spec.URL, spec.Token, clientOpts...),
			ctl:    replicate.NewControl(spec.URL, spec.Token, r.cfg.HTTPClient),
		}
		sh.setHealth(nil) // assume up until a probe says otherwise
		r.byName[spec.Name] = sh
		r.shards = append(r.shards, sh)
	}
	sort.Slice(r.shards, func(a, b int) bool { return r.shards[a].name < r.shards[b].name })
	names := make([]string, len(r.shards))
	for i, sh := range r.shards {
		names[i] = sh.name
	}
	r.ring = newHashRing(names)
	if r.cfg.FailoverThreshold > 0 {
		r.failover = newFailoverState()
	}
	return r, nil
}

// Place returns the name of the shard that owns key (a dataset for fresh
// creates) on the consistent-hash ring.
func (r *Router) Place(key string) string {
	return r.shards[r.ring.lookup(key)].name
}

// locate resolves a router-namespaced id to its shard and backend id. Ids
// re-homed by a failover keep their original "<shard>~" prefix (they are
// durable client-side handles) but route to the shard that adopted them.
func (r *Router) locate(publicID string) (*shard, string, error) {
	name, backendID, ok := strings.Cut(publicID, Sep)
	if ok {
		if sh := r.byName[name]; sh != nil && backendID != "" {
			if moved := r.rehomed(backendID); moved != nil {
				return moved, backendID, nil
			}
			return sh, backendID, nil
		}
	}
	return nil, "", fmt.Errorf("%w: unknown labeler %q (router ids are \"<shard>%s<id>\")", darwin.ErrNotFound, publicID, Sep)
}

func (sh *shard) publicID(backendID string) string {
	return sh.name + Sep + backendID
}

// namespaceStatus rewrites a shard-local status into the router namespace.
func (sh *shard) namespaceStatus(st darwin.Status) darwin.Status {
	if st.ID != "" {
		st.ID = sh.publicID(st.ID)
	}
	if st.Workspace != "" {
		st.Workspace = sh.publicID(st.Workspace)
	}
	return st
}

// retry runs op, retrying bounded with exponential backoff while the error
// is retryable per the shared taxonomy. Only idempotent operations go
// through here. sh and verb label the per-shard request/retry/failure
// counters.
func (r *Router) retry(ctx context.Context, sh *shard, verb string, op func() error) error {
	return r.retryWhile(ctx, sh, verb, op, func() bool { return true })
}

// retryWhile is retry with an extra gate: a retry happens only while
// again() also holds (Export uses it to stop once bytes have streamed).
func (r *Router) retryWhile(ctx context.Context, sh *shard, verb string, op func() error, again func() bool) error {
	backoff := r.cfg.RetryBackoff
	requests := shardRequests.With(sh.name, verb)
	for attempt := 0; ; attempt++ {
		requests.Inc()
		err := op()
		if err == nil {
			return nil
		}
		if !darwin.Retryable(err) || attempt >= r.cfg.Retries || !again() {
			shardFailures.With(sh.name, verb).Inc()
			return err
		}
		shardRetries.With(sh.name, verb).Inc()
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			shardFailures.With(sh.name, verb).Inc()
			return err
		case <-t.C:
		}
		backoff *= 2
	}
}

// --- the server Backend interface ---

// CreateLabeler implements the server Backend: fresh creates are placed by
// the dataset's ring position; joining an existing workspace routes to the
// shard named in the workspace id. Creates are never retried — a lost
// response could otherwise leave an orphan labeler on the shard.
func (r *Router) CreateLabeler(ctx context.Context, opts darwin.CreateOptions) (darwin.Status, error) {
	var sh *shard
	if opts.Workspace != "" {
		var backendWS string
		var err error
		sh, backendWS, err = r.locate(opts.Workspace)
		if err != nil {
			return darwin.Status{}, fmt.Errorf("%w: unknown workspace %q (router workspace ids are \"<shard>%s<id>\")", darwin.ErrNotFound, opts.Workspace, Sep)
		}
		opts.Workspace = backendWS
	} else {
		if opts.Dataset == "" {
			return darwin.Status{}, fmt.Errorf("%w: dataset is required (the router places fresh labelers by dataset)", darwin.ErrInvalid)
		}
		// The dataset's current primary — the ring owner unless a failover
		// re-homed the dataset onto its follower.
		sh = r.primaryFor(opts.Dataset)
	}
	st, err := sh.client.CreateLabeler(ctx, opts)
	observeOnce(sh, "create", err)
	if err != nil {
		return darwin.Status{}, err
	}
	return sh.namespaceStatus(st), nil
}

// Labeler implements the server Backend: the returned labeler delegates
// every verb to the owning shard over /v2.
func (r *Router) Labeler(id string) (darwin.Labeler, error) {
	sh, backendID, err := r.locate(id)
	if err != nil {
		return nil, err
	}
	return &routedLabeler{r: r, sh: sh, rem: sh.client.OpenLabeler(backendID)}, nil
}

// LabelerStatus implements the server Backend.
func (r *Router) LabelerStatus(ctx context.Context, id string) (darwin.Status, error) {
	lab, err := r.Labeler(id)
	if err != nil {
		return darwin.Status{}, err
	}
	return lab.(*routedLabeler).Status(ctx)
}

// ListLabelers implements the server Backend: a fan-out merge. Every shard
// at or after the cursor is prefetched concurrently (bounded by
// Config.ListConcurrency), each contributing up to one page's worth of
// statuses, then the prefetches are merged sequentially in shard name order
// — so the listing is byte-identical to the old sequential walk (namespaced
// ids of one shard stay contiguous, the cursor "<shard>~<backend cursor>"
// resumes mid-shard) while the wall-clock is the slowest shard instead of
// the sum of all shards. Shards marked down are skipped — the listing
// degrades to the live fleet rather than failing, and healthz names the gap.
func (r *Router) ListLabelers(ctx context.Context, cursor string, limit int) (darwin.LabelerPage, error) {
	limit = server.ClampPageLimit(limit)
	startIdx, backendCursor := 0, ""
	if cursor != "" {
		name, bc, ok := strings.Cut(cursor, Sep)
		if !ok {
			return darwin.LabelerPage{}, fmt.Errorf("%w: malformed cursor %q", darwin.ErrInvalid, cursor)
		}
		startIdx = sort.Search(len(r.shards), func(i int) bool { return r.shards[i].name >= name })
		if startIdx < len(r.shards) && r.shards[startIdx].name == name {
			backendCursor = bc
		}
	}
	fanoutStart := time.Now()
	defer fanoutDurations.With("list_labelers").ObserveSince(fanoutStart)

	// prefetch is one shard's contribution: up to limit namespaced statuses,
	// the backend cursor where the prefetch stopped ("" when the shard is
	// exhausted), and any non-degradable error.
	type prefetch struct {
		statuses []darwin.Status
		next     string
		err      error
	}
	n := len(r.shards) - startIdx
	results := make([]prefetch, n)
	sem := make(chan struct{}, r.cfg.ListConcurrency)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sh := r.shards[startIdx+i]
		if !sh.up.Load() {
			continue
		}
		bc := ""
		if i == 0 {
			bc = backendCursor
		}
		wg.Add(1)
		go func(res *prefetch, sh *shard, bc string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for {
				var sub darwin.LabelerPage
				err := r.retry(ctx, sh, "list_labelers", func() error {
					var e error
					sub, e = sh.client.ListLabelers(ctx, bc, limit-len(res.statuses))
					return e
				})
				if err != nil {
					if ctx.Err() == nil && errors.Is(err, darwin.ErrUnavailable) {
						// A down shard degrades the listing: mark it so
						// /healthz names the gap (the prober restores it
						// within one interval once it answers again).
						sh.setHealth(err)
						res.statuses, res.next = nil, ""
						return
					}
					// Everything else must surface, never silently shrink the
					// listing: client-class failures (bad -shard-token, rate
					// limit) while the shard probes healthy, and our caller's
					// own expired context (which says nothing about the shard
					// — but a truncated page with a nil error would read as
					// the complete fleet).
					res.err = err
					return
				}
				for _, st := range sub.Labelers {
					res.statuses = append(res.statuses, sh.namespaceStatus(st))
				}
				if len(res.statuses) >= limit {
					res.next = sub.NextCursor
					return
				}
				// A page can be empty yet carry a cursor (every id on it was
				// evicted between the shard's listing and status resolution),
				// so the cursor — which strictly advances — is the only
				// end-of-shard signal.
				if sub.NextCursor == "" || sub.NextCursor == bc {
					return
				}
				bc = sub.NextCursor
			}
		}(&results[i], sh, bc)
	}
	wg.Wait()

	out := darwin.LabelerPage{Labelers: []darwin.Status{}}
	for i := range results {
		res := &results[i]
		if res.err != nil {
			return darwin.LabelerPage{}, res.err
		}
		for j, st := range res.statuses {
			out.Labelers = append(out.Labelers, st)
			if len(out.Labelers) >= limit {
				// More labelers exist later in this prefetch, beyond it on
				// the same shard, or on a later shard.
				if j+1 < len(res.statuses) || res.next != "" || startIdx+i+1 < len(r.shards) {
					out.NextCursor = st.ID
				}
				return out, nil
			}
		}
	}
	return out, nil
}

// ListDatasets implements the server Backend: the union of every live
// shard's datasets, paginated with the same cursor semantics as a single
// darwind. Shards are queried concurrently (bounded by
// Config.ListConcurrency) — the union is order-free, so the merge just
// folds the per-shard name sets together and sorts. Each page request
// rebuilds the full union — fine while fleets serve tens of datasets (one
// request per shard per page); cache it here if dataset counts ever grow
// past that.
func (r *Router) ListDatasets(ctx context.Context, cursor string, limit int) (darwin.DatasetPage, error) {
	fanoutStart := time.Now()
	defer fanoutDurations.With("list_datasets").ObserveSince(fanoutStart)
	type prefetch struct {
		names []string
		err   error
	}
	results := make([]prefetch, len(r.shards))
	sem := make(chan struct{}, r.cfg.ListConcurrency)
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		if !sh.up.Load() {
			continue
		}
		wg.Add(1)
		go func(res *prefetch, sh *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bc := ""
			for {
				var sub darwin.DatasetPage
				err := r.retry(ctx, sh, "list_datasets", func() error {
					var e error
					sub, e = sh.client.ListDatasets(ctx, bc, 0)
					return e
				})
				if err != nil {
					if ctx.Err() == nil && errors.Is(err, darwin.ErrUnavailable) {
						sh.setHealth(err)
						res.names = nil
						return
					}
					res.err = err
					return
				}
				res.names = append(res.names, sub.Datasets...)
				if sub.NextCursor == "" {
					return
				}
				bc = sub.NextCursor
			}
		}(&results[i], sh)
	}
	wg.Wait()
	seen := make(map[string]bool)
	for i := range results {
		if err := results[i].err; err != nil {
			// Surface the lowest shard's error for determinism across runs.
			return darwin.DatasetPage{}, err
		}
		for _, name := range results[i].names {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	pageNames, next := server.Page(names, cursor, limit)
	return darwin.DatasetPage{Datasets: pageNames, NextCursor: next}, nil
}

// DeleteLabeler implements the server Backend. Deletes are attempted once:
// a retry after a lost response would surface not-found for a delete that
// in fact succeeded.
func (r *Router) DeleteLabeler(ctx context.Context, id string) error {
	sh, backendID, err := r.locate(id)
	if err != nil {
		return err
	}
	err = sh.client.OpenLabeler(backendID).Close(ctx)
	observeOnce(sh, "delete", err)
	return err
}

// --- health ---

// ShardHealth is one shard's probed state, served by the router's healthz.
type ShardHealth struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// LastProbe is when the shard's /healthz was last probed (absent before
	// the first probe); ConsecutiveFailures counts failed probes since the
	// last success.
	LastProbe           time.Time `json:"last_probe,omitzero"`
	ConsecutiveFailures int       `json:"consecutive_failures"`
}

// Health reports every shard's last probed state, in name order.
func (r *Router) Health() []ShardHealth {
	out := make([]ShardHealth, 0, len(r.shards))
	for _, sh := range r.shards {
		h := ShardHealth{
			Name:                sh.name,
			URL:                 sh.url,
			Healthy:             sh.up.Load(),
			ConsecutiveFailures: int(sh.consecFails.Load()),
		}
		if e, _ := sh.lastErr.Load().(string); e != "" {
			h.Error = e
		}
		if ns := sh.lastProbe.Load(); ns != 0 {
			h.LastProbe = time.Unix(0, ns).UTC()
		}
		out = append(out, h)
	}
	return out
}

// ProbeNow probes every shard's /healthz once (concurrently, so one dark
// shard's connect timeout does not delay detection for the rest of the
// fleet) and returns how many are up. It ignores per-shard probe backoff —
// an explicit probe always probes.
func (r *Router) ProbeNow(ctx context.Context) int {
	return r.probeAll(ctx, false)
}

func (r *Router) probeAll(ctx context.Context, honorBackoff bool) int {
	now := time.Now().UnixNano()
	var up atomic.Int32
	var wg sync.WaitGroup
	for _, sh := range r.shards {
		if honorBackoff && sh.nextProbe.Load() > now {
			// Still in backoff: keep counting it by its last known state so
			// the up total stays meaningful between probes.
			if sh.up.Load() {
				up.Add(1)
			}
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			if r.probe(ctx, sh) {
				up.Add(1)
			}
		}(sh)
	}
	wg.Wait()
	return int(up.Load())
}

func (r *Router) probe(ctx context.Context, sh *shard) bool {
	err := r.probeOnce(ctx, sh)
	sh.setHealth(err)
	sh.lastProbe.Store(time.Now().UnixNano())
	if err != nil {
		shardProbes.With(sh.name, "fail").Inc()
		fails := sh.consecFails.Add(1)
		shardConsecFailures.With(sh.name).Set(float64(fails))
		// Back off re-probes of a shard that keeps failing, and once the
		// failure streak crosses the failover threshold, move its datasets
		// to their followers.
		sh.nextProbe.Store(time.Now().Add(nextProbeDelay(int(fails), r.proberInterval(), r.cfg.ProbeBackoffMax)).UnixNano())
		if r.failover != nil && fails >= int64(r.cfg.FailoverThreshold) {
			r.maybeFailover(ctx, sh)
		}
		return false
	}
	sh.consecFails.Store(0)
	sh.nextProbe.Store(0)
	shardProbes.With(sh.name, "ok").Inc()
	shardConsecFailures.With(sh.name).Set(0)
	return true
}

// probeOnce performs one GET /healthz against the shard.
func (r *Router) probeOnce(ctx context.Context, sh *shard) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Prober probes every shard each interval until stop is closed, honoring
// per-shard exponential backoff for shards that keep failing. With
// replication management enabled it also reconciles the replication
// topology each tick (EnsureReplication is idempotent). Run it in a
// goroutine: go router.Prober(5*time.Second, stopCh).
func (r *Router) Prober(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r.proberEvery.Store(int64(interval))
	if r.failover != nil {
		// Bootstrap placements before the first tick so fresh creates route
		// through the placement table from the start.
		r.EnsureReplication(context.Background())
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.probeAll(context.Background(), true)
			if r.failover != nil {
				r.EnsureReplication(context.Background())
			}
		case <-stop:
			return
		}
	}
}

// --- the routed labeler ---

// routedLabeler is one namespaced labeler: a darwin.Labeler (plus
// BatchAnswerer and Statuser) delegating to the owning shard's
// RemoteLabeler, with the router's retry policy applied per verb.
type routedLabeler struct {
	r   *Router
	sh  *shard
	rem *darwin.RemoteLabeler
}

// Suggest implements darwin.Labeler. Suggest is idempotent while a
// suggestion is pending, so it retries.
func (l *routedLabeler) Suggest(ctx context.Context) (darwin.Suggestion, error) {
	var sug darwin.Suggestion
	err := l.r.retry(ctx, l.sh, "suggest", func() error {
		var e error
		sug, e = l.rem.Suggest(ctx)
		return e
	})
	return sug, err
}

// Answer implements darwin.Labeler. Answers are applied exactly once — a
// blind retry could consume a fresh suggestion.
func (l *routedLabeler) Answer(ctx context.Context, ans darwin.Answer) error {
	err := l.rem.Answer(ctx, ans)
	observeOnce(l.sh, "answer", err)
	return err
}

// AnswerBatch implements darwin.BatchAnswerer (single attempt, like Answer).
func (l *routedLabeler) AnswerBatch(ctx context.Context, answers []darwin.Answer) ([]darwin.RuleRecord, error) {
	recs, err := l.rem.AnswerBatch(ctx, answers)
	observeOnce(l.sh, "answers", err)
	return recs, err
}

// AnswerBatchStatus implements darwin.BatchStatusAnswerer (single attempt):
// the one POST carries the post-batch counters back, so the /v2 answers
// handler mounted over the router makes exactly one shard request per batch
// — there is no second status call for a dying shard to fail.
func (l *routedLabeler) AnswerBatchStatus(ctx context.Context, answers []darwin.Answer) ([]darwin.RuleRecord, darwin.Status, error) {
	recs, st, err := l.rem.AnswerBatchStatus(ctx, answers)
	observeOnce(l.sh, "answers", err)
	return recs, l.sh.namespaceStatus(st), err
}

// Report implements darwin.Labeler (read-only; retries).
func (l *routedLabeler) Report(ctx context.Context) (darwin.Report, error) {
	var rep darwin.Report
	err := l.r.retry(ctx, l.sh, "report", func() error {
		var e error
		rep, e = l.rem.Report(ctx)
		return e
	})
	return rep, err
}

// Export implements darwin.Labeler: read-only, but it streams — a retry is
// safe only while nothing has been written to w yet.
func (l *routedLabeler) Export(ctx context.Context, w io.Writer) error {
	cw := &countingWriter{w: w}
	return l.r.retryWhile(ctx, l.sh, "export",
		func() error { return l.rem.Export(ctx, cw) },
		func() bool { return cw.n == 0 })
}

// Close implements darwin.Labeler (single attempt; see DeleteLabeler).
func (l *routedLabeler) Close(ctx context.Context) error {
	err := l.rem.Close(ctx)
	observeOnce(l.sh, "close", err)
	return err
}

// Status implements darwin.Statuser (read-only; retries). The returned
// status carries router-namespaced labeler and workspace ids.
func (l *routedLabeler) Status(ctx context.Context) (darwin.Status, error) {
	var st darwin.Status
	err := l.r.retry(ctx, l.sh, "status", func() error {
		var e error
		st, e = l.rem.Status(ctx)
		return e
	})
	if err != nil {
		return darwin.Status{}, err
	}
	return l.sh.namespaceStatus(st), nil
}

// countingWriter counts bytes through to w so Export can tell whether a
// failed attempt already produced output.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
