package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the number of virtual nodes per shard on the hash ring.
// 64 points per shard keeps the expected load imbalance across a handful of
// shards in the few-percent range while the ring stays tiny.
const ringReplicas = 64

// hashRing is a consistent-hash ring over shard indices: keys map to the
// first virtual node clockwise from their hash. Adding or removing one shard
// moves only the keys that hashed to its arcs, which is what lets a fleet
// grow without re-homing every dataset.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	h   uint64
	idx int
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a diffuses short, similar strings (vnode labels differ only in a
	// trailing counter) poorly in the high bits the ring is ordered by, so
	// finish with a splitmix64-style avalanche.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

func newHashRing(names []string) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(names)*ringReplicas)}
	for i, name := range names {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{h: hashKey(fmt.Sprintf("%s#%d", name, v)), idx: i})
		}
	}
	// Ties broken by shard index so the ring is deterministic regardless of
	// input order (names arrive sorted).
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].h != r.points[b].h {
			return r.points[a].h < r.points[b].h
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// lookup returns the shard index owning key.
func (r *hashRing) lookup(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].idx
}

// successors returns every distinct shard index in clockwise order starting
// from key's ring position: element 0 is the owner (same as lookup), element
// 1 the natural replication follower, and so on. Walking the ring — rather
// than picking "owner+1 mod n" — keeps each dataset's follower stable when
// the fleet grows, for the same reason placement itself is a consistent
// hash.
func (r *hashRing) successors(key string) []int {
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	seen := make(map[int]bool)
	var out []int
	for n := 0; n < len(r.points); n++ {
		p := r.points[(start+n)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}
