package shard

import (
	"context"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/replicate"
)

// Failover telemetry: the audit trail of every promotion the router drove.
// The re-home table size is a GaugeFunc registered in newFailoverState.
var routerPromotions = obs.Default().CounterVec("darwin_router_promotions_total",
	"Dataset failovers driven by this router (the follower was promoted to primary).",
	"dataset")

// placement is one dataset's replication topology as the router believes it:
// which shard serves it (primary), which shard keeps the warm standby
// (follower), and the fencing epoch the roles are valid for. The router is
// the epoch authority — every promotion bumps it — but the table itself is
// soft state, rebuilt from shard statuses on restart.
type placement struct {
	primary  *shard
	follower *shard
	epoch    uint64
	// promoting guards against concurrent promote attempts for the same
	// dataset from successive probe rounds.
	promoting bool
}

// failoverState is the router's replication bookkeeping. Its zero use (nil)
// means replication management is disabled (Config.FailoverThreshold == 0)
// and the router behaves exactly as before this subsystem existed.
type failoverState struct {
	mu         sync.RWMutex
	placements map[string]*placement
	// rehome maps backend ids (workspaces and labelers) that moved in a
	// failover to the shard now serving them; locate consults it before
	// trusting an id's "<shard>~" prefix.
	rehome map[string]*shard
}

func newFailoverState() *failoverState {
	fs := &failoverState{
		placements: make(map[string]*placement),
		rehome:     make(map[string]*shard),
	}
	obs.Default().GaugeFunc("darwin_router_rehomed_ids",
		"Backend ids re-homed onto a different shard than their namespace prefix.",
		func() float64 {
			fs.mu.RLock()
			defer fs.mu.RUnlock()
			return float64(len(fs.rehome))
		})
	return fs
}

// PlacementInfo is one dataset's replication placement, for healthz.
type PlacementInfo struct {
	Dataset  string `json:"dataset"`
	Primary  string `json:"primary"`
	Follower string `json:"follower,omitempty"`
	Epoch    uint64 `json:"epoch"`
}

// Placements reports the router's per-dataset replication topology, sorted
// by dataset (empty when replication management is disabled).
func (r *Router) Placements() []PlacementInfo {
	if r.failover == nil {
		return nil
	}
	r.failover.mu.RLock()
	defer r.failover.mu.RUnlock()
	out := make([]PlacementInfo, 0, len(r.failover.placements))
	for ds, pl := range r.failover.placements {
		info := PlacementInfo{Dataset: ds, Primary: pl.primary.name, Epoch: pl.epoch}
		if pl.follower != nil {
			info.Follower = pl.follower.name
		}
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dataset < out[b].Dataset })
	return out
}

// rehomed returns the shard a backend id was re-homed to, or nil.
func (r *Router) rehomed(backendID string) *shard {
	if r.failover == nil {
		return nil
	}
	r.failover.mu.RLock()
	defer r.failover.mu.RUnlock()
	return r.failover.rehome[backendID]
}

// primaryFor returns the shard that should serve fresh creates for a
// dataset: the replication placement when one exists, else the ring owner.
func (r *Router) primaryFor(dataset string) *shard {
	if r.failover != nil {
		r.failover.mu.RLock()
		pl := r.failover.placements[dataset]
		r.failover.mu.RUnlock()
		if pl != nil {
			return pl.primary
		}
	}
	return r.shards[r.ring.lookup(dataset)]
}

// followerFor picks a dataset's replication follower: the first distinct
// shard clockwise from the dataset's ring position that is not the primary.
// With a single-shard fleet there is no follower.
func (r *Router) followerFor(dataset string, primary *shard) *shard {
	for _, idx := range r.ring.successors(dataset) {
		if sh := r.shards[idx]; sh != primary {
			return sh
		}
	}
	return nil
}

func specOf(sh *shard) *replicate.FollowerSpec {
	if sh == nil {
		return nil
	}
	return &replicate.FollowerSpec{Name: sh.name, URL: sh.url, Token: sh.token}
}

// EnsureReplication reconciles the replication topology once: discover the
// served datasets, adopt the highest-epoch primary claims from shard
// statuses (which is how a restarted router relearns failovers it — or a
// predecessor — drove), fill in ring-derived defaults, and push the role
// assignments to every reachable shard. Role pushes are idempotent, so this
// runs on a timer; a rejoining ex-primary is demoted (catch-up resync) by
// the first tick that can reach it. No-op unless Config.FailoverThreshold
// enables replication management.
func (r *Router) EnsureReplication(ctx context.Context) {
	if r.failover == nil || len(r.shards) < 2 {
		return
	}
	fs := r.failover

	// Collect replication statuses from live shards, concurrently.
	type result struct {
		sh *shard
		st replicate.Status
	}
	results := make([]result, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		if !sh.up.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			st, err := sh.ctl.Status(ctx)
			if err != nil {
				return // unreachable or replication-less shard: nothing to adopt
			}
			results[i] = result{sh: sh, st: st}
		}(i, sh)
	}
	wg.Wait()

	// The dataset universe: everything a live shard serves.
	datasets := make(map[string]bool)
	if page, err := r.ListDatasets(ctx, "", 0); err == nil {
		for _, ds := range page.Datasets {
			datasets[ds] = true
		}
	}
	for _, res := range results {
		for _, d := range res.st.Datasets {
			datasets[d.Dataset] = true
		}
	}

	// Adopt the authoritative (highest-epoch) primary claim per dataset.
	fs.mu.Lock()
	for ds := range datasets {
		pl := fs.placements[ds]
		for _, res := range results {
			if res.sh == nil {
				continue
			}
			for _, d := range res.st.Datasets {
				if d.Dataset != ds || d.Role != replicate.RolePrimary {
					continue
				}
				if pl == nil || d.Epoch > pl.epoch || (pl.primary == res.sh && d.Epoch == pl.epoch) {
					if pl == nil || pl.primary != res.sh || d.Epoch > pl.epoch {
						if pl == nil {
							pl = &placement{}
							fs.placements[ds] = pl
						}
						if pl.primary != res.sh {
							log.Printf("shard: adopting %s as primary for %s at epoch %d (reported by shard status)", res.sh.name, ds, d.Epoch)
						}
						pl.primary = res.sh
						pl.epoch = d.Epoch
						for _, id := range d.Workspaces {
							fs.setRehomeLocked(id, res.sh)
						}
						for _, id := range d.Labelers {
							fs.setRehomeLocked(id, res.sh)
						}
					}
				}
			}
		}
		if pl == nil {
			pl = &placement{primary: r.shards[r.ring.lookup(ds)], epoch: 1}
			fs.placements[ds] = pl
		}
		pl.follower = r.followerFor(ds, pl.primary)
	}
	// Snapshot for pushing outside the lock.
	type push struct {
		sh  *shard
		doc replicate.RoleDoc
	}
	var pushes []push
	for ds, pl := range fs.placements {
		if pl.follower != nil && pl.follower.up.Load() {
			pushes = append(pushes, push{pl.follower, replicate.RoleDoc{
				Dataset: ds, Epoch: pl.epoch, Role: replicate.RoleFollower,
			}})
		}
		if pl.primary.up.Load() {
			pushes = append(pushes, push{pl.primary, replicate.RoleDoc{
				Dataset: ds, Epoch: pl.epoch, Role: replicate.RolePrimary, Follower: specOf(pl.follower),
			}})
		}
	}
	fs.mu.Unlock()

	// Followers are pushed before their primary (slice order above), so the
	// receiver is armed before the stream's first batch arrives.
	for _, p := range pushes {
		if err := p.sh.ctl.SetRole(ctx, p.doc); err != nil {
			log.Printf("shard: push %s role for %s to %s: %v (will retry next reconcile)", p.doc.Role, p.doc.Dataset, p.sh.name, err)
		}
	}
}

// setRehomeLocked records that a backend id now lives on sh, dropping
// entries that point back at the id's own namespace (no indirection needed).
// Callers hold fs.mu.
func (fs *failoverState) setRehomeLocked(id string, sh *shard) {
	fs.rehome[id] = sh
}

// maybeFailover promotes the follower of every dataset whose primary is the
// given dead shard. Called from the prober once a shard's consecutive
// failures cross Config.FailoverThreshold; runs in the prober goroutine.
func (r *Router) maybeFailover(ctx context.Context, dead *shard) {
	if r.failover == nil {
		return
	}
	fs := r.failover
	type cand struct {
		ds string
		pl *placement
	}
	var cands []cand
	fs.mu.Lock()
	for ds, pl := range fs.placements {
		if pl.primary == dead && !pl.promoting &&
			pl.follower != nil && pl.follower != dead && pl.follower.up.Load() {
			pl.promoting = true
			cands = append(cands, cand{ds, pl})
		}
	}
	fs.mu.Unlock()
	sort.Slice(cands, func(a, b int) bool { return cands[a].ds < cands[b].ds })

	for _, c := range cands {
		fs.mu.RLock()
		follower, newEpoch := c.pl.follower, c.pl.epoch+1
		fs.mu.RUnlock()
		resp, err := follower.ctl.Promote(ctx, c.ds, newEpoch)
		fs.mu.Lock()
		c.pl.promoting = false
		if err != nil {
			fs.mu.Unlock()
			log.Printf("shard: failover of %s from %s to %s failed: %v (retrying on next probe round)",
				c.ds, dead.name, follower.name, err)
			continue
		}
		old := c.pl.primary
		c.pl.primary = follower
		c.pl.follower = old
		c.pl.epoch = newEpoch
		for _, id := range resp.Workspaces {
			fs.setRehomeLocked(id, follower)
		}
		for _, id := range resp.Labelers {
			fs.setRehomeLocked(id, follower)
		}
		fs.mu.Unlock()
		routerPromotions.With(c.ds).Inc()
		log.Printf("shard: dataset %s failed over %s -> %s at epoch %d (%d workspaces, %d labelers re-homed)",
			c.ds, dead.name, follower.name, newEpoch, len(resp.Workspaces), len(resp.Labelers))
		// Arm replication back toward the dead shard: the stream retries
		// until it rejoins, at which point the next reconcile demotes it and
		// the reset stream catches it up.
		doc := replicate.RoleDoc{Dataset: c.ds, Epoch: newEpoch, Role: replicate.RolePrimary, Follower: specOf(old)}
		if err := follower.ctl.SetRole(ctx, doc); err != nil {
			log.Printf("shard: arm replication %s -> %s after failover: %v (will retry next reconcile)", c.ds, old.name, err)
		}
	}
}

// nextProbeDelay is the pause before re-probing a shard that has failed
// `fails` consecutive probes: the base interval doubling per failure, capped
// at max, with ±20% jitter so a fleet of routers does not thunder-herd a
// recovering shard.
func nextProbeDelay(fails int, base, max time.Duration) time.Duration {
	if fails < 1 {
		return 0
	}
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitter := 0.8 + 0.4*rand.Float64()
	return time.Duration(float64(d) * jitter)
}
