package obsnames_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obsnames"
)

func TestObsNames(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), obsnames.Analyzer,
		"obsnames", "obsnames_exempt")
}
