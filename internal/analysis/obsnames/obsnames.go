// Package obsnames defines an analyzer enforcing the metric naming
// contract: every metric registered on an obs.Registry must have a
// darwin_-prefixed snake_case name supplied as a compile-time constant (no
// fmt.Sprintf names — dynamic names explode cardinality and defeat
// dashboard greps), and label keys must come from the bounded repo-wide
// vocabulary below.
//
// Test files are skipped (obs's own tests register scratch metrics), and
// deliberate departures carry //darwin:obsnames-exempt <reason>.
package obsnames

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the obsnames pass.
const name = "obsnames"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "require darwin_-prefixed snake_case const metric names and labels from the bounded vocabulary",
	Run:  run,
}

// registerMethods maps Registry method name -> index of the first label
// argument (-1 when the method takes no labels).
var registerMethods = map[string]int{
	"Counter":      -1,
	"CounterVec":   2,
	"Gauge":        -1,
	"GaugeVec":     2,
	"GaugeFunc":    -1,
	"Histogram":    -1,
	"HistogramVec": 3,
}

// allowedLabels is the bounded label vocabulary. Extending it is a
// deliberate, reviewed act: add the label here with the PR that first uses
// it.
var allowedLabels = map[string]bool{
	"daemon": true, "dataset": true, "endpoint": true, "kind": true,
	"method": true, "result": true, "route": true, "shard": true,
	"stage": true, "state": true, "status": true, "type": true,
	"verb": true,
}

var namePattern = regexp.MustCompile(`^darwin_[a-z0-9]+(_[a-z0-9]+)*$`)

func run(pass *analysis.Pass) error {
	pass.CheckExemptReasons(name)
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	labelStart, ok := registerMethods[sel.Sel.Name]
	if !ok || !isObsRegistry(pass.TypesInfo.TypeOf(sel.X)) || len(call.Args) == 0 {
		return
	}
	if pass.ExemptAt(call.Pos(), name) {
		return
	}
	name, isConst := analysis.ConstString(pass.TypesInfo, call.Args[0])
	switch {
	case !isConst:
		pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant, not computed at runtime")
	case !namePattern.MatchString(name):
		pass.Reportf(call.Args[0].Pos(), "metric name %q must be darwin_-prefixed snake_case ([a-z0-9_])", name)
	}
	if labelStart < 0 || labelStart > len(call.Args) {
		return
	}
	for _, arg := range call.Args[labelStart:] {
		label, isConst := analysis.ConstString(pass.TypesInfo, arg)
		if !isConst {
			pass.Reportf(arg.Pos(), "metric label must be a compile-time constant from the bounded label vocabulary")
			continue
		}
		if !allowedLabels[label] {
			pass.Reportf(arg.Pos(), "metric label %q is not in the bounded label vocabulary; extend obsnames.allowedLabels deliberately if a new label is required", label)
		}
	}
}

// isObsRegistry reports whether t is (a pointer to) the obs Registry type.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}
