// Package analysis is a minimal, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis, plus the shared darwin:*
// annotation grammar used by the darwinlint analyzers.
//
// The module is intentionally zero-dependency, so instead of importing
// x/tools this package mirrors the parts of its API the analyzers need
// (Analyzer, Pass, Diagnostic, package facts). If the x/tools dependency is
// ever allowed, the analyzers port mechanically: the shapes are the same.
//
// # Annotation grammar
//
// Annotations are line comments beginning exactly with "//darwin:" (no
// space), in the style of //go: directives:
//
//	//darwin:replaypure
//	    On a function's doc comment: the function is replay-reachable and
//	    must stay a pure function of (engine, options, event seq).
//	    On a file's package clause doc: every function in that file.
//	//darwin:replaypure-exempt <reason>
//	    On (or immediately above) an offending line: suppress replaypure.
//	//darwin:lockrank <rank>
//	    On a mutex struct field or package var. Ranks, outermost first:
//	    store > gate > manager > job > workspace > index > mat > journal.
//	//darwin:lockrank-callback <rank>
//	    On a function that invokes its func-typed argument while holding
//	    a lock of <rank>.
//	//darwin:lockorder-exempt <reason>
//	//darwin:mutating-handler
//	    On an HTTP handler that mutates state: every 2xx ack must be
//	    dominated by a durable journal append.
//	//darwin:journals
//	    On a function (or interface method) that durably journals —
//	    append and sync — before returning success.
//	//darwin:journalack-exempt <reason>
//	//darwin:errenvelope
//	    On a file's package clause doc: error responses written by this
//	    file must flow through the darwin envelope/taxonomy helpers.
//	//darwin:errenvelope-exempt <reason>
//	//darwin:obsnames-exempt <reason>
//
// Every *-exempt directive requires a non-empty reason so exemptions stay
// grep-auditable (`grep -rn "darwin:.*-exempt" --include='*.go'`).
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding. Analyzer is filled in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass presents one typechecked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a diagnostic.
	Report func(Diagnostic)
	// ReadFact returns the raw fact blob this same analyzer exported for a
	// previously analyzed dependency package, or nil.
	ReadFact func(pkgPath string) []byte
	// WriteFact records this package's fact blob for downstream packages.
	WriteFact func(data []byte)

	dirs map[string][]Directive // "filename:line" -> directives
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportFactJSON marshals v as this package's fact for p.Analyzer.
func (p *Pass) ExportFactJSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("%s: marshal fact: %w", p.Analyzer.Name, err)
	}
	if p.WriteFact != nil {
		p.WriteFact(data)
	}
	return nil
}

// ImportFactJSON unmarshals the fact p.Analyzer exported for package path
// into v. It reports whether a fact was found.
func (p *Pass) ImportFactJSON(path string, v any) bool {
	if p.ReadFact == nil {
		return false
	}
	data := p.ReadFact(path)
	if data == nil {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// A Directive is one parsed //darwin:* annotation.
type Directive struct {
	Name string // e.g. "replaypure", "lockrank", "replaypure-exempt"
	Args string // remainder of the line, e.g. a rank or an exemption reason
	Pos  token.Pos
}

// parseDirective parses one comment's text as a darwin directive.
func parseDirective(text string, pos token.Pos) (Directive, bool) {
	const prefix = "//darwin:"
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	rest := text[len(prefix):]
	name, args, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: pos}, true
}

// Directives returns all darwin directives in a comment group.
func Directives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c.Text, c.Slash); ok {
			out = append(out, d)
		}
	}
	return out
}

// HasDirective returns the first directive named name in cg.
func HasDirective(cg *ast.CommentGroup, name string) (Directive, bool) {
	for _, d := range Directives(cg) {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

func (p *Pass) lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// lineDirectives lazily indexes every darwin directive by file:line.
func (p *Pass) lineDirectives() map[string][]Directive {
	if p.dirs != nil {
		return p.dirs
	}
	p.dirs = map[string][]Directive{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text, c.Slash)
				if !ok {
					continue
				}
				key := p.lineKey(p.Fset.Position(c.Slash))
				p.dirs[key] = append(p.dirs[key], d)
			}
		}
	}
	return p.dirs
}

// ExemptAt reports whether pos is covered by a //darwin:<name>-exempt
// directive on the same line or the line immediately above.
func (p *Pass) ExemptAt(pos token.Pos, name string) bool {
	want := name + "-exempt"
	at := p.Fset.Position(pos)
	dirs := p.lineDirectives()
	for _, line := range []int{at.Line, at.Line - 1} {
		key := fmt.Sprintf("%s:%d", at.Filename, line)
		for _, d := range dirs[key] {
			if d.Name == want {
				return true
			}
		}
	}
	return false
}

// CheckExemptReasons reports every <name>-exempt directive that lacks a
// reason. Exemptions must be justified to stay reviewable.
func (p *Pass) CheckExemptReasons(name string) {
	want := name + "-exempt"
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, d := range Directives(cg) {
				if d.Name == want && d.Args == "" {
					p.Reportf(d.Pos, "//darwin:%s requires a reason", want)
				}
			}
		}
	}
}

// FuncKey returns a stable cross-package key for fn: "Name" for package
// functions, "Recv.Name" or "(*Recv).Name" for methods (including interface
// methods of named interfaces).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := false
	if pt, isPtr := t.(*types.Pointer); isPtr {
		t = pt.Elem()
		ptr = true
	}
	name := ""
	if nt, isNamed := t.(*types.Named); isNamed {
		name = nt.Obj().Name()
	}
	if name == "" {
		// Unnamed receiver (e.g. method of an anonymous interface): fall
		// back to the bare method name; both export and import sides use
		// this same function, so keys stay consistent.
		return fn.Name()
	}
	if ptr {
		return "(*" + name + ")." + fn.Name()
	}
	return name + "." + fn.Name()
}

// CalleeFunc resolves the *types.Func invoked by call, if any. Interface
// method calls resolve to the interface method's declaration object.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// ConstInt evaluates expr as a constant integer via the type info.
func ConstInt(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	var n int64
	if _, err := fmt.Sscanf(tv.Value.ExactString(), "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// ConstString evaluates expr as a constant string via the type info.
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		var out string
		if _, err := fmt.Sscanf(s, "%q", &out); err == nil {
			return out, true
		}
	}
	return "", false
}

// A Unit is one typechecked package ready to be analyzed.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// ReadFact returns the fact blob analyzer exported for pkgPath, or nil.
	ReadFact func(analyzer, pkgPath string) []byte
}

// Run executes the analyzers over the unit, returning position-sorted
// diagnostics and the facts each analyzer exported (keyed by analyzer name).
func (u *Unit) Run(azs []*Analyzer) ([]Diagnostic, map[string][]byte, error) {
	var diags []Diagnostic
	facts := map[string][]byte{}
	for _, a := range azs {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
			WriteFact: func(data []byte) { facts[a.Name] = data },
		}
		if u.ReadFact != nil {
			pass.ReadFact = func(pkgPath string) []byte { return u.ReadFact(a.Name, pkgPath) }
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, facts, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
