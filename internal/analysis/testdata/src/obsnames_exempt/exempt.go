// Package obsnames_exempt mirrors scratch metrics that never reach
// dashboards.
package obsnames_exempt

import "obs"

//darwin:obsnames-exempt benchrunner scratch metric, never exported to dashboards
var scratch = obs.Default().Counter("bench_scratch_total", "Scratch.")
