// Package replaypure_file is wholly replay-reachable: the directive on the
// package clause scopes every function in the file.
//
//darwin:replaypure
package replaypure_file

import "time"

func anyFunc() time.Time {
	return time.Now() // want `time\.Now in replay-reachable code`
}

func anotherFunc() time.Time {
	t := time.Now() // want `time\.Now in replay-reachable code`
	return t
}
