// Package http is a hermetic fixture stub matching net/http's path.
package http

const (
	StatusOK                  = 200
	StatusCreated             = 201
	StatusAccepted            = 202
	StatusNoContent           = 204
	StatusBadRequest          = 400
	StatusNotFound            = 404
	StatusInternalServerError = 500
)

type ResponseWriter interface {
	WriteHeader(statusCode int)
	Write([]byte) (int, error)
}

type Request struct{ Method string }

func Error(w ResponseWriter, error string, code int) {}
