// Package lockorder_exempt mirrors the compaction pattern: a known-safe
// rank inversion serialized by an exclusive appender gate.
package lockorder_exempt

import "sync"

type workspace struct {
	mu sync.Mutex //darwin:lockrank workspace
}

func (w *workspace) snapshot() {
	w.mu.Lock()
	defer w.mu.Unlock()
}

type manager struct {
	gate sync.RWMutex //darwin:lockrank gate
	mat  sync.Mutex   //darwin:lockrank mat
	ws   *workspace
}

func (m *manager) compact() {
	m.gate.Lock()
	defer m.gate.Unlock()
	m.mat.Lock()
	defer m.mat.Unlock()
	//darwin:lockorder-exempt exclusive appender gate serializes against every mat-under-index path
	m.ws.snapshot()
}
