// Package replaypure_exempt mirrors the real tree's documented exemption
// patterns one-to-one; each must silence the analyzer.
package replaypure_exempt

import (
	"obs"
	"time"
)

type ws struct {
	lastSeen time.Time
	hist     *obs.Histogram
}

// Pattern 1 (metrics timing): ObserveSince-style latency measurement never
// enters replayed state.
//
//darwin:replaypure
func metricsTiming(w *ws) time.Time {
	//darwin:replaypure-exempt metrics-only timing, never enters replayed state
	return time.Now()
}

// Pattern 2 (TTL bookkeeping): lastSeen drives eviction only and is
// excluded from snapshots and replayed state.
//
//darwin:replaypure
func touch(w *ws) {
	w.lastSeen = time.Now() //darwin:replaypure-exempt TTL bookkeeping, excluded from snapshots and replayed state
}

// Pattern 3 (order-insensitive map range): the collected keys feed a set
// membership probe, not ordered output.
//
//darwin:replaypure
func exemptMapRange(m map[string]int) []string {
	var keys []string
	//darwin:replaypure-exempt order-insensitive: keys feed an unordered membership probe
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// A reasonless exemption still suppresses the underlying finding but is
// itself flagged, keeping the audit trail honest.
//
//darwin:replaypure
func missingReason() time.Time {
	return time.Now() /* want `requires a reason` */ //darwin:replaypure-exempt
}
