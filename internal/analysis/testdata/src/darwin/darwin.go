// Package darwin is a hermetic fixture stub for the SDK error-taxonomy
// helpers; errenvelope matches package paths with suffix "darwin".
package darwin

type envelope struct{ Code, Message string }

func Envelope(err error) any   { return envelope{} }
func HTTPStatus(err error) int { return 500 }
