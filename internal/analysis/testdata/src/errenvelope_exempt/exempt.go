// Package errenvelope_exempt mirrors the replication wire protocol, which
// speaks its own error format to non-SDK peers.
//
//darwin:errenvelope
package errenvelope_exempt

import "net/http"

type wireError struct{ Msg string }

func writeJSON(w http.ResponseWriter, status int, v any) { w.WriteHeader(status) }

func handleReplicate(w http.ResponseWriter) {
	//darwin:errenvelope-exempt replication wire protocol, consumed by the replicate client not SDK users
	writeJSON(w, http.StatusBadRequest, wireError{Msg: "bad epoch"})
}
