// Package journalack_exempt mirrors a deliberate non-durable ack.
package journalack_exempt

import "net/http"

//darwin:mutating-handler
func handleTouch(w http.ResponseWriter) {
	//darwin:journalack-exempt mutates only in-memory TTL liveness, nothing enters the journal
	w.WriteHeader(http.StatusOK)
}
