// Package replaypure exercises the replaypure analyzer.
package replaypure

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

type sink struct{ lines []string }

func (s *sink) Append(line string) { s.lines = append(s.lines, line) }

//darwin:replaypure
func badClock() time.Duration {
	start := time.Now()      // want `time\.Now in replay-reachable code`
	return time.Since(start) // want `time\.Since in replay-reachable code`
}

//darwin:replaypure
func badRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

//darwin:replaypure
func goodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

//darwin:replaypure
func badEnv() string {
	return os.Getenv("HOME") // want `os\.Getenv in replay-reachable code`
}

//darwin:replaypure
func badFS() ([]byte, error) {
	return os.ReadFile("/etc/hostname") // want `os\.ReadFile in replay-reachable code`
}

//darwin:replaypure
func badSpawn() {
	go func() {}() // want `goroutine spawned in replay-reachable code`
}

//darwin:replaypure
func badMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration feeds ordered output`
		keys = append(keys, k)
	}
	return keys
}

//darwin:replaypure
func goodMapSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

//darwin:replaypure
func goodMapCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

//darwin:replaypure
func badMapSink(m map[string]int, s *sink) {
	for k := range m { // want `map iteration feeds ordered output`
		s.Append(k)
	}
}

// unmarked is outside the replaypure scope: identical code, no findings.
func unmarked() time.Time { return time.Now() }
