// Package os is a hermetic fixture stub matching os's path.
package os

type File struct{}

func (f *File) Close() error { return nil }

func Getenv(key string) string             { return "" }
func LookupEnv(key string) (string, bool)  { return "", false }
func ReadFile(name string) ([]byte, error) { return nil, nil }
func Open(name string) (*File, error)      { return nil, nil }
