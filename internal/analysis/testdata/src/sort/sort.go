// Package sort is a hermetic fixture stub matching sort's path.
package sort

func Strings(x []string)                    {}
func Ints(x []int)                          {}
func Slice(x any, less func(i, j int) bool) {}
