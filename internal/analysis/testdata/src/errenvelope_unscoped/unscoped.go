// Package errenvelope_unscoped has no errenvelope directive: legacy /v1
// handlers keep their historical error shapes.
package errenvelope_unscoped

import "net/http"

func legacy(w http.ResponseWriter) {
	http.Error(w, "legacy", http.StatusBadRequest)
}
