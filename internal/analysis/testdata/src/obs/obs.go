// Package obs is a hermetic fixture stub for the metrics registry;
// obsnames matches package paths with suffix "obs" and type name Registry.
package obs

type Registry struct{}

var def = &Registry{}

func Default() *Registry { return def }

type Counter struct{}

func (c *Counter) Inc() {}

type CounterVec struct{}
type Gauge struct{}
type GaugeVec struct{}
type Histogram struct{}
type HistogramVec struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return nil
}
func (r *Registry) Gauge(name, help string) *Gauge { return nil }
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return nil
}
func (r *Registry) GaugeFunc(name, help string, f func() float64) {}
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return nil
}
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return nil
}
