// Package errenvelope exercises the errenvelope analyzer; the directive on
// the package clause scopes this file.
//
//darwin:errenvelope
package errenvelope

import (
	"darwin"
	"net/http"
)

func writeJSON(w http.ResponseWriter, status int, v any) { w.WriteHeader(status) }

func badPlainText(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusBadRequest) // want `http\.Error writes a plain-text body`
}

func badAdHoc(w http.ResponseWriter) {
	writeJSON(w, http.StatusNotFound, map[string]string{"error": "nope"}) // want `ad-hoc error payload`
}

func goodEnvelope(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusNotFound, darwin.Envelope(err))
}

func goodSuccess(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, "ok")
}
