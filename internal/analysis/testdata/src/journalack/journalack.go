// Package journalack exercises the journalack analyzer.
package journalack

import (
	"jdep"
	"net/http"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
}

//darwin:mutating-handler
func handleBad(w http.ResponseWriter, m *jdep.Manager) {
	w.WriteHeader(http.StatusNoContent) // want `2xx acknowledged before any durable journal`
	_ = m.Ingest()
}

//darwin:mutating-handler
func handleGood(w http.ResponseWriter, m *jdep.Manager) {
	if err := m.Ingest(); err != nil {
		writeJSON(w, http.StatusInternalServerError, nil)
		return
	}
	writeJSON(w, http.StatusCreated, nil)
}

//darwin:mutating-handler
func handleBadHelper(w http.ResponseWriter, m *jdep.Manager) {
	writeJSON(w, http.StatusOK, nil) // want `2xx acknowledged before any durable journal`
	_ = m.Ingest()
}

// applyBatch journals transitively via the interface contract.
func applyBatch(l jdep.Labeler) error { return l.Answer() }

//darwin:mutating-handler
func handleInterface(w http.ResponseWriter, l jdep.Labeler) {
	if err := applyBatch(l); err != nil {
		return
	}
	w.WriteHeader(http.StatusOK)
}

// handleUnmarked is not annotated as mutating: no findings.
func handleUnmarked(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
}
