// Package jdep provides journaling primitives consumed across package
// boundaries by the journalack fixtures, mirroring internal/workspace and
// pkg/darwin.
package jdep

type Manager struct{ n int }

// Ingest durably journals (append + sync) before returning.
//
//darwin:journals
func (m *Manager) Ingest() error { m.n++; return nil }

// Labeler mirrors the SDK surface; the annotated method's contract is that
// every implementation journals durably before returning success.
type Labeler interface {
	//darwin:journals
	Answer() error
	Peek() error
}
