// Package sync is a hermetic fixture stub matching sync's path.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
