// Package lockorder exercises the lockorder analyzer.
package lockorder

import (
	"lockdep"
	"sync"
)

type store struct {
	mu sync.Mutex //darwin:lockrank store
}

type workspace struct {
	mu  sync.Mutex //darwin:lockrank workspace
	eng *lockdep.Engine
}

type flusher struct {
	mu sync.Mutex //darwin:lockrank journal
}

func goodNesting(s *store, w *workspace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.eng.LockIndex()
}

func badInversion(s *store, w *workspace) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s.mu.Lock() // want `acquiring store-ranked lock while holding workspace-ranked lock`
	defer s.mu.Unlock()
}

func goodCallOrder(w *workspace, j *lockdep.Journal) {
	w.mu.Lock()
	defer w.mu.Unlock()
	j.Append()
}

func badCallUnderJournal(f *flusher, e *lockdep.Engine) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.LockIndex() // want `call to LockIndex acquires index-ranked lock while holding journal-ranked lock`
}

func badCallbackLock(e *lockdep.Engine, w *workspace) {
	e.WithRead(func() {
		w.mu.Lock() // want `acquiring workspace-ranked lock while holding index-ranked lock`
		defer w.mu.Unlock()
	})
}

func badCallbackUnderJournal(f *flusher, e *lockdep.Engine) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.WithRead(func() {}) // want `call to WithRead acquires index-ranked lock while holding journal-ranked lock` `entering index-ranked callback region`
}

func badMissingUnlock(w *workspace) {
	w.mu.Lock() // want `workspace-ranked mutex locked without a reachable unlock`
	w.eng.LockIndex()
}

func goodExplicitUnlock(w *workspace) {
	w.mu.Lock()
	w.eng.LockIndex()
	w.mu.Unlock()
}

// lockIndexVia propagates acquisition through a local helper.
func lockIndexVia(e *lockdep.Engine) { e.LockIndex() }

func badTransitiveLocal(f *flusher, e *lockdep.Engine) {
	f.mu.Lock()
	defer f.mu.Unlock()
	lockIndexVia(e) // want `call to lockIndexVia acquires index-ranked lock while holding journal-ranked lock`
}
