// Package obsnames exercises the obsnames analyzer.
package obsnames

import "obs"

var (
	good    = obs.Default().Counter("darwin_steps_total", "Steps taken.")
	goodVec = obs.Default().CounterVec("darwin_answers_total", "Answers.", "dataset", "verb")
	badCase = obs.Default().Counter("darwinStepsTotal", "Steps.")      // want `must be darwin_-prefixed snake_case`
	badBare = obs.Default().Gauge("steps_in_flight", "In flight.")     // want `must be darwin_-prefixed snake_case`
	badLbl  = obs.Default().GaugeVec("darwin_jobs", "Jobs.", "flavor") // want `not in the bounded label vocabulary`
)

func dynamic(name string) *obs.Counter {
	return obs.Default().Counter(name, "Dynamic.") // want `must be a compile-time constant`
}

func histo() *obs.HistogramVec {
	return obs.Default().HistogramVec("darwin_latency_seconds", "Latency.", []float64{0.1}, "route")
}
