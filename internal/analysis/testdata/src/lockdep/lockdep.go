// Package lockdep provides ranked locks consumed across package boundaries
// by the lockorder fixtures, mirroring internal/core and internal/journal.
package lockdep

import "sync"

type Engine struct {
	ixMu sync.RWMutex //darwin:lockrank index
	data int
}

// WithRead runs f while holding the index-ranked read lock, like
// core.WithIndexRead.
//
//darwin:lockrank-callback index
func (e *Engine) WithRead(f func()) {
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()
	f()
}

// LockIndex acquires and releases the index rank.
func (e *Engine) LockIndex() {
	e.ixMu.Lock()
	e.data++
	e.ixMu.Unlock()
}

type Journal struct {
	mu sync.Mutex //darwin:lockrank journal
}

// Append acquires the journal rank, like journal.Writer.Append.
func (j *Journal) Append() {
	j.mu.Lock()
	defer j.mu.Unlock()
}
