// Package time is a hermetic fixture stub: the analyzers key on the
// package path "time", which matches the real library's.
package time

type Duration int64

type Time struct{ wall int64 }

func Now() Time                     { return Time{} }
func Since(t Time) Duration         { return 0 }
func (t Time) Sub(u Time) Duration  { return 0 }
func (t Time) Unix() int64          { return 0 }
func (t Time) Equal(u Time) bool    { return t.wall == u.wall }
func (d Duration) Seconds() float64 { return 0 }
