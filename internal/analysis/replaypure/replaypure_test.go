package replaypure_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/replaypure"
)

func TestReplayPure(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), replaypure.Analyzer,
		"replaypure", "replaypure_exempt", "replaypure_file")
}
