// Package replaypure defines an analyzer enforcing that replay-reachable
// code stays a pure function of (engine, options, event sequence).
//
// Scope: functions whose doc comment carries //darwin:replaypure, plus every
// function in a file whose package clause doc carries it. Within scope the
// analyzer forbids:
//
//   - time.Now / time.Since — wall-clock reads diverge between live runs
//     and journal replay;
//   - package-level math/rand calls (rand.Intn, rand.Float64, ...) — only
//     explicitly seeded sources (rand.New(rand.NewSource(...))) are
//     deterministic;
//   - environment and filesystem reads (os.Getenv, os.ReadFile, ...);
//   - goroutine spawns — scheduling order is not replayable;
//   - ranging over a map when the loop body feeds ordered output (append,
//     Write/Encode-style calls) with no sort call after the loop.
//
// Legitimate uses — metrics ObserveSince(time.Now()), TTL lastSeen
// bookkeeping that never enters replayed state, commutative map-range
// accumulation — carry //darwin:replaypure-exempt <reason> so every
// exemption is visible in review.
package replaypure

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the replaypure pass.
const name = "replaypure"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "forbid wall-clock, global rand, env/fs reads, goroutines, and unsorted map iteration in replay-reachable code",
	Run:  run,
}

// forbiddenOS lists os functions that read ambient process state.
var forbiddenOS = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Open": true, "OpenFile": true, "ReadFile": true, "ReadDir": true,
	"Stat": true, "Lstat": true, "Getwd": true, "Hostname": true,
	"UserHomeDir": true, "TempDir": true,
}

// allowedRand lists math/rand constructors for explicitly seeded sources.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// orderedSinks are method names whose invocation inside a map-range loop
// counts as feeding ordered output.
var orderedSinks = map[string]bool{
	"Append": true, "Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) error {
	pass.CheckExemptReasons(name)
	for _, file := range pass.Files {
		_, fileScoped := analysis.HasDirective(file.Doc, "replaypure")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			_, marked := analysis.HasDirective(fd.Doc, "replaypure")
			if fileScoped || marked {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !pass.ExemptAt(n.Pos(), name) {
				pass.Reportf(n.Pos(), "goroutine spawned in replay-reachable code: scheduling order is not replayable")
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn on a seeded source) are fine
	}
	pkg, fname := fn.Pkg().Path(), fn.Name()
	exempt := func() bool { return pass.ExemptAt(call.Pos(), name) }
	switch {
	case pkg == "time" && (fname == "Now" || fname == "Since"):
		if !exempt() {
			pass.Reportf(call.Pos(), "time.%s in replay-reachable code: wall clock diverges under journal replay", fname)
		}
	case pkg == "math/rand" && !allowedRand[fname]:
		if !exempt() {
			pass.Reportf(call.Pos(), "global math/rand.%s in replay-reachable code: use a source seeded from the event sequence (rand.New(rand.NewSource(mix(seed, seq))))", fname)
		}
	case pkg == "os" && forbiddenOS[fname]:
		if !exempt() {
			pass.Reportf(call.Pos(), "os.%s in replay-reachable code: ambient process state is not part of the journal", fname)
		}
	}
}

// checkMapRange flags `for ... range m` over a map when the loop body feeds
// ordered output and no sort call follows the loop in the same function.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	tv := pass.TypesInfo.TypeOf(rs.X)
	if tv == nil {
		return
	}
	if _, isMap := tv.Underlying().(*types.Map); !isMap {
		return
	}
	if !feedsOrderedOutput(rs.Body) {
		return
	}
	if sortedAfter(pass.TypesInfo, fd, rs.End()) {
		return
	}
	if pass.ExemptAt(rs.Pos(), name) {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration feeds ordered output in replay-reachable code: sort after the loop or annotate //darwin:replaypure-exempt <reason>")
}

// feedsOrderedOutput reports whether the loop body appends to a slice or
// calls a Write/Encode-style sink.
func feedsOrderedOutput(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				found = true
			}
		case *ast.SelectorExpr:
			if orderedSinks[fun.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether any call into package sort occurs after pos
// within the function body.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				found = true
			}
		}
		return !found
	})
	return found
}
