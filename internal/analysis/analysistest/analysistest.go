// Package analysistest runs darwinlint analyzers over GOPATH-style fixture
// trees, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go. Imports resolve only
// within the fixture tree, so fixtures stub the handful of standard-library
// packages they mention (time, sync, net/http, ...): the analyzers key on
// package paths, and the stub paths match the real ones. Expected
// diagnostics are trailing comments of the form:
//
//	code() // want "regexp" "another regexp"
//
// Dependency fixture packages are analyzed first so package facts flow to
// importers exactly as they do under go vet.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

type pkgUnit struct {
	files []*ast.File
	pkg   *types.Package
	diags []analysis.Diagnostic
}

type loader struct {
	t        *testing.T
	srcdir   string
	fset     *token.FileSet
	analyzer *analysis.Analyzer
	pkgs     map[string]*pkgUnit
	loading  map[string]bool
	facts    map[string][]byte // pkgpath -> fact blob for l.analyzer
}

// Run analyzes each fixture package and matches diagnostics against the
// `// want` expectations in that package's files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		t:        t,
		srcdir:   filepath.Join(testdata, "src"),
		fset:     token.NewFileSet(),
		analyzer: a,
		pkgs:     map[string]*pkgUnit{},
		loading:  map[string]bool{},
		facts:    map[string][]byte{},
	}
	for _, path := range pkgPaths {
		u, err := l.load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		l.checkWants(path, u)
	}
}

func (l *loader) load(path string) (*pkgUnit, error) {
	if u, ok := l.pkgs[path]; ok {
		return u, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no go files", path)
	}

	conf := &types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			u, err := l.load(p)
			if err != nil {
				return nil, err
			}
			return u.pkg, nil
		}),
	}
	info := analysis.NewInfo()
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}

	unit := &analysis.Unit{
		Fset:  l.fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		ReadFact: func(_, pkgPath string) []byte {
			return l.facts[pkgPath]
		},
	}
	diags, facts, err := unit.Run([]*analysis.Analyzer{l.analyzer})
	if err != nil {
		return nil, fmt.Errorf("run %s on %s: %w", l.analyzer.Name, path, err)
	}
	if data, ok := facts[l.analyzer.Name]; ok {
		l.facts[path] = data
	}
	u := &pkgUnit{files: files, pkg: pkg, diags: diags}
	l.pkgs[path] = u
	return u, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

var wantRe = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)`)
var wantArgRe = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type want struct {
	rx      *regexp.Regexp
	line    int
	file    string
	matched bool
}

// checkWants matches diagnostics against // want comments.
func (l *loader) checkWants(path string, u *pkgUnit) {
	l.t.Helper()
	wants := map[string][]*want{} // "file:line" -> wants
	for _, f := range u.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := l.fset.Position(c.Slash)
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					var pat string
					if arg[0] == '`' {
						pat = arg[1 : len(arg)-1]
					} else if unq, err := strconv.Unquote(arg); err == nil {
						pat = unq
					} else {
						l.t.Errorf("%s: bad want pattern %s", pos, arg)
						continue
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						l.t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &want{rx: rx, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}
	for _, d := range u.diags {
		pos := l.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			l.t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				l.t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
			}
		}
	}
}
