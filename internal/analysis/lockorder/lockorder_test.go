package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), lockorder.Analyzer,
		"lockdep", "lockorder", "lockorder_exempt")
}
