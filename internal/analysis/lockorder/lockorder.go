// Package lockorder defines an analyzer enforcing the repo's documented
// mutex ranking.
//
// Mutexes opt in via //darwin:lockrank <rank> on the struct field or package
// var. The documented order, outermost first:
//
//	store > gate > manager > job > workspace > index > mat > journal
//
// While holding a lock of rank R, only locks of strictly lower rank may be
// acquired. The analyzer tracks acquisitions in source order within each
// function, propagates "ranks acquired" summaries across function calls
// (within the package by fixpoint, across packages by exported facts), and
// analyzes func-literal arguments to functions annotated
// //darwin:lockrank-callback <rank> as running with that rank held
// (SetMaterializeHook / WithIndexRead style callbacks). It also flags a
// ranked Lock with no reachable Unlock in the same function.
//
// Known-safe violations (e.g. a compaction path serialized by an exclusive
// appender gate) carry //darwin:lockorder-exempt <reason>.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the lockorder pass.
const name = "lockorder"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "enforce ranked mutex acquisition order and reachable unlocks",
	Run:  run,
}

// rankLevel maps rank names to levels; higher = outermost.
var rankLevel = map[string]int{
	"store":     80,
	"gate":      70,
	"manager":   60,
	"job":       50,
	"workspace": 40,
	"index":     30,
	"mat":       20,
	"journal":   10,
}

const rankOrderDoc = "store > gate > manager > job > workspace > index > mat > journal"

type funcFact struct {
	Acquires []string `json:"acquires,omitempty"`
	Callback string   `json:"callback,omitempty"`
}

type pkgFact struct {
	Funcs map[string]funcFact `json:"funcs,omitempty"`
}

type heldEntry struct {
	obj      types.Object
	rank     string
	pos      token.Pos
	released bool // explicit or deferred unlock seen
}

type lockAnalysis struct {
	pass      *analysis.Pass
	ranks     map[types.Object]string // ranked mutex fields/vars
	callbacks map[*types.Func]string  // fn -> rank held around its func arg
	summaries map[*types.Func]map[string]bool
	decls     map[*types.Func]*ast.FuncDecl
	factCache map[string]*pkgFact
}

func run(pass *analysis.Pass) error {
	pass.CheckExemptReasons(name)
	la := &lockAnalysis{
		pass:      pass,
		ranks:     map[types.Object]string{},
		callbacks: map[*types.Func]string{},
		summaries: map[*types.Func]map[string]bool{},
		decls:     map[*types.Func]*ast.FuncDecl{},
		factCache: map[string]*pkgFact{},
	}
	la.collectRanks()
	la.collectFuncs()
	la.computeSummaries()
	for fn, fd := range la.decls {
		_ = fn
		la.checkFunc(fd)
	}
	return la.exportFacts()
}

// collectRanks finds //darwin:lockrank annotations on struct fields and
// package vars.
func (la *lockAnalysis) collectRanks() {
	record := func(names []*ast.Ident, d analysis.Directive) {
		if _, ok := rankLevel[d.Args]; !ok {
			la.pass.Reportf(d.Pos, "unknown lock rank %q (known: %s)", d.Args, rankOrderDoc)
			return
		}
		for _, name := range names {
			if obj := la.pass.TypesInfo.Defs[name]; obj != nil {
				la.ranks[obj] = d.Args
			}
		}
	}
	for _, file := range la.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, f := range n.Fields.List {
					for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
						if d, ok := analysis.HasDirective(cg, "lockrank"); ok {
							record(f.Names, d)
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, cg := range []*ast.CommentGroup{n.Doc, vs.Doc, vs.Comment} {
						if d, ok := analysis.HasDirective(cg, "lockrank"); ok {
							record(vs.Names, d)
						}
					}
				}
			}
			return true
		})
	}
}

func (la *lockAnalysis) collectFuncs() {
	for _, file := range la.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := la.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			la.decls[fn] = fd
			if d, ok := analysis.HasDirective(fd.Doc, "lockrank-callback"); ok {
				if _, known := rankLevel[d.Args]; !known {
					la.pass.Reportf(d.Pos, "unknown lock rank %q (known: %s)", d.Args, rankOrderDoc)
				} else {
					la.callbacks[fn] = d.Args
				}
			}
		}
	}
}

// calleeInfo resolves the acquired-ranks summary and callback rank for a
// call target, consulting local summaries or imported package facts.
func (la *lockAnalysis) calleeInfo(fn *types.Func) (acquires map[string]bool, callback string) {
	if fn.Pkg() == la.pass.Pkg {
		return la.summaries[fn], la.callbacks[fn]
	}
	if fn.Pkg() == nil {
		return nil, ""
	}
	path := fn.Pkg().Path()
	fact, ok := la.factCache[path]
	if !ok {
		fact = &pkgFact{}
		if !la.pass.ImportFactJSON(path, fact) {
			fact = nil
		}
		la.factCache[path] = fact
	}
	if fact == nil || fact.Funcs == nil {
		return nil, ""
	}
	ff, ok := fact.Funcs[analysis.FuncKey(fn)]
	if !ok {
		return nil, ""
	}
	acq := map[string]bool{}
	for _, r := range ff.Acquires {
		acq[r] = true
	}
	return acq, ff.Callback
}

// computeSummaries fixpoints "ranks transitively acquired" per function.
func (la *lockAnalysis) computeSummaries() {
	for fn := range la.decls {
		la.summaries[fn] = map[string]bool{}
	}
	for changed, rounds := true, 0; changed && rounds < 20; rounds++ {
		changed = false
		for fn, fd := range la.decls {
			sum := la.summaries[fn]
			before := len(sum)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, rank, ok := la.lockCall(call); ok {
					sum[rank] = true
					return true
				}
				callee := analysis.CalleeFunc(la.pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				acq, cb := la.calleeInfo(callee)
				for r := range acq {
					sum[r] = true
				}
				if cb != "" {
					sum[cb] = true
				}
				return true
			})
			if len(sum) != before {
				changed = true
			}
		}
	}
}

// lockCall reports whether call is <rankedMutex>.Lock/RLock (acquire=true)
// or Unlock/RUnlock (acquire=false via ok2).
func (la *lockAnalysis) lockCall(call *ast.CallExpr) (obj types.Object, rank string, acquire bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	obj = la.mutexObj(sel.X)
	if obj == nil {
		return nil, "", false
	}
	rank, ok = la.ranks[obj]
	if !ok {
		return nil, "", false
	}
	return obj, rank, true
}

func isAcquire(name string) bool { return name == "Lock" || name == "RLock" }

func (la *lockAnalysis) mutexObj(expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := la.pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return la.pass.TypesInfo.Uses[e.Sel]
	case *ast.Ident:
		return la.pass.TypesInfo.Uses[e]
	}
	return nil
}

// checkFunc walks fd's body in source order tracking held ranked locks.
func (la *lockAnalysis) checkFunc(fd *ast.FuncDecl) {
	_, fnExempt := analysis.HasDirective(fd.Doc, "lockorder-exempt")
	held := []*heldEntry{}
	la.walk(fd.Body, &held, map[*ast.FuncLit]bool{})
	for _, h := range held {
		if h.released {
			continue
		}
		if fnExempt || la.pass.ExemptAt(h.pos, name) {
			continue
		}
		la.pass.Reportf(h.pos, "%s-ranked mutex locked without a reachable unlock in this function", h.rank)
	}
}

// walk processes node in source order, mutating held. handledLits marks
// func literals already analyzed as callback arguments.
func (la *lockAnalysis) walk(node ast.Node, held *[]*heldEntry, handledLits map[*ast.FuncLit]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if handledLits[n] {
				return false
			}
			// A detached closure: analyze as an independent function with
			// an empty held set.
			sub := []*heldEntry{}
			la.walk(n.Body, &sub, handledLits)
			for _, h := range sub {
				if !h.released && !la.pass.ExemptAt(h.pos, name) {
					la.pass.Reportf(h.pos, "%s-ranked mutex locked without a reachable unlock in this function literal", h.rank)
				}
			}
			return false
		case *ast.DeferStmt:
			la.handleCall(n.Call, held, handledLits, true)
			return false
		case *ast.CallExpr:
			la.handleCall(n, held, handledLits, false)
			return true
		}
		return true
	})
}

func (la *lockAnalysis) handleCall(call *ast.CallExpr, held *[]*heldEntry, handledLits map[*ast.FuncLit]bool, deferred bool) {
	if obj, rank, ok := la.lockCall(call); ok {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if isAcquire(sel.Sel.Name) {
			la.checkAcquire(call.Pos(), rank, *held, "acquiring")
			*held = append(*held, &heldEntry{obj: obj, rank: rank, pos: call.Pos()})
		} else {
			// Release the most recent unreleased entry for this mutex.
			for i := len(*held) - 1; i >= 0; i-- {
				h := (*held)[i]
				if h.obj == obj && !h.released {
					if deferred {
						h.released = true // held until return, but reachable
					} else {
						h.released = true
						*held = append((*held)[:i], (*held)[i+1:]...)
					}
					break
				}
			}
		}
		return
	}
	callee := analysis.CalleeFunc(la.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	acq, cb := la.calleeInfo(callee)
	if len(acq) > 0 {
		ranks := make([]string, 0, len(acq))
		for r := range acq {
			ranks = append(ranks, r)
		}
		sort.Strings(ranks)
		for _, r := range ranks {
			la.checkAcquireCall(call.Pos(), callee, r, *held)
		}
	}
	if cb != "" {
		la.checkAcquire(call.Pos(), cb, *held, "entering "+cb+"-ranked callback region via "+callee.Name()+", acquiring")
		for _, arg := range call.Args {
			lit, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			handledLits[lit] = true
			sub := append(append([]*heldEntry{}, *held...), &heldEntry{rank: cb, pos: call.Pos(), released: true})
			la.walk(lit.Body, &sub, handledLits)
		}
	}
}

// checkAcquire flags acquiring rank while any held rank is <= it.
func (la *lockAnalysis) checkAcquire(pos token.Pos, rank string, held []*heldEntry, verb string) {
	lvl := rankLevel[rank]
	for _, h := range held {
		if rankLevel[h.rank] <= lvl {
			if la.pass.ExemptAt(pos, name) {
				return
			}
			la.pass.Reportf(pos, "%s %s-ranked lock while holding %s-ranked lock; order is %s", verb, rank, h.rank, rankOrderDoc)
			return
		}
	}
}

func (la *lockAnalysis) checkAcquireCall(pos token.Pos, callee *types.Func, rank string, held []*heldEntry) {
	lvl := rankLevel[rank]
	for _, h := range held {
		if rankLevel[h.rank] <= lvl {
			if la.pass.ExemptAt(pos, name) {
				return
			}
			la.pass.Reportf(pos, "call to %s acquires %s-ranked lock while holding %s-ranked lock; order is %s", callee.Name(), rank, h.rank, rankOrderDoc)
			return
		}
	}
}

// exportFacts publishes per-function summaries and callback annotations for
// downstream packages.
func (la *lockAnalysis) exportFacts() error {
	fact := pkgFact{Funcs: map[string]funcFact{}}
	for fn, sum := range la.summaries {
		var ff funcFact
		for r := range sum {
			ff.Acquires = append(ff.Acquires, r)
		}
		sort.Strings(ff.Acquires)
		if cb, ok := la.callbacks[fn]; ok {
			ff.Callback = cb
		}
		if len(ff.Acquires) == 0 && ff.Callback == "" {
			continue
		}
		fact.Funcs[analysis.FuncKey(fn)] = ff
	}
	for fn, cb := range la.callbacks {
		if _, ok := fact.Funcs[analysis.FuncKey(fn)]; !ok {
			fact.Funcs[analysis.FuncKey(fn)] = funcFact{Callback: cb}
		}
	}
	return la.pass.ExportFactJSON(fact)
}
