package errenvelope_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errenvelope"
)

func TestErrEnvelope(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), errenvelope.Analyzer,
		"errenvelope", "errenvelope_exempt", "errenvelope_unscoped")
}
