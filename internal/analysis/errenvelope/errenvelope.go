// Package errenvelope defines an analyzer enforcing that error responses in
// /v2 handler and router code flow through the typed darwin error-taxonomy
// envelope instead of ad-hoc JSON or plain-text bodies.
//
// Files opt in by carrying //darwin:errenvelope on the package clause doc
// comment. In scoped files the analyzer flags:
//
//   - any call to net/http.Error — plain-text error bodies never carry the
//     machine-readable code/taxonomy the SDK client decodes;
//   - any write*-helper call with a constant status >= 400 whose payload is
//     not produced by darwin.Envelope (the taxonomy envelope constructor).
//
// Wire-protocol endpoints consumed by non-SDK peers (e.g. the replication
// stream) carry //darwin:errenvelope-exempt <reason>.
package errenvelope

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errenvelope pass.
const name = "errenvelope"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "require /v2 error responses to flow through the darwin envelope/taxonomy helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.CheckExemptReasons(name)
	for _, file := range pass.Files {
		if _, scoped := analysis.HasDirective(file.Doc, "errenvelope"); !scoped {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
		if !pass.ExemptAt(call.Pos(), name) {
			pass.Reportf(call.Pos(), "http.Error writes a plain-text body; use the darwin envelope helpers (writeV2Error)")
		}
		return
	}
	callee := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	}
	if !strings.HasPrefix(strings.ToLower(callee), "write") {
		return
	}
	errorStatus := false
	for _, arg := range call.Args {
		if n, ok := analysis.ConstInt(pass.TypesInfo, arg); ok && n >= 400 && n < 600 {
			errorStatus = true
			break
		}
	}
	if !errorStatus {
		return
	}
	for _, arg := range call.Args {
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if fn := analysis.CalleeFunc(pass.TypesInfo, inner); fn != nil && fn.Name() == "Envelope" &&
				fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "darwin") {
				return // payload is the taxonomy envelope
			}
		}
	}
	if pass.ExemptAt(call.Pos(), name) {
		return
	}
	pass.Reportf(call.Pos(), "ad-hoc error payload with status >= 400; route errors through darwin.Envelope (writeV2Error)")
}
