package journalack_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/journalack"
)

func TestJournalAck(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), journalack.Analyzer,
		"jdep", "journalack", "journalack_exempt")
}
