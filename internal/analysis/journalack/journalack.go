// Package journalack defines an analyzer enforcing the durability contract:
// a mutating HTTP handler must durably journal (append + sync) before it
// acknowledges success.
//
// Handlers opt in via //darwin:mutating-handler on the handler's doc
// comment. Functions (and interface methods) that durably journal before
// returning are annotated //darwin:journals; the property propagates to
// their callers within a package by fixpoint and across packages via
// exported facts. Inside a mutating handler, any success acknowledgement —
// w.WriteHeader with a constant 2xx status, or a write-helper call
// (writeJSON-style) carrying a constant 2xx status — must appear after a
// call to a journaling function in source order.
//
// Deliberate non-durable acks carry //darwin:journalack-exempt <reason>.
package journalack

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the journalack pass.
const name = "journalack"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "require durable journal append+sync before 2xx acknowledgements in mutating handlers",
	Run:  run,
}

type pkgFact struct {
	Journals []string `json:"journals,omitempty"` // FuncKeys of journaling funcs
}

type jAnalysis struct {
	pass      *analysis.Pass
	journals  map[*types.Func]bool
	decls     map[*types.Func]*ast.FuncDecl
	handlers  []*ast.FuncDecl
	factCache map[string]map[string]bool
}

func run(pass *analysis.Pass) error {
	pass.CheckExemptReasons(name)
	ja := &jAnalysis{
		pass:      pass,
		journals:  map[*types.Func]bool{},
		decls:     map[*types.Func]*ast.FuncDecl{},
		factCache: map[string]map[string]bool{},
	}
	ja.collect()
	ja.propagate()
	for _, fd := range ja.handlers {
		ja.checkHandler(fd)
	}
	return ja.exportFacts()
}

// collect gathers annotated functions, interface methods, and handlers.
func (ja *jAnalysis) collect() {
	for _, file := range ja.pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, ok := ja.pass.TypesInfo.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				if d.Body != nil {
					ja.decls[fn] = d
				}
				if _, ok := analysis.HasDirective(d.Doc, "journals"); ok {
					ja.journals[fn] = true
				}
				if _, ok := analysis.HasDirective(d.Doc, "mutating-handler"); ok && d.Body != nil {
					ja.handlers = append(ja.handlers, d)
				}
			case *ast.GenDecl:
				// Interface methods annotated //darwin:journals express a
				// contract every implementation must honor.
				ast.Inspect(d, func(n ast.Node) bool {
					it, ok := n.(*ast.InterfaceType)
					if !ok {
						return true
					}
					for _, m := range it.Methods.List {
						if _, ok := analysis.HasDirective(m.Doc, "journals"); !ok {
							continue
						}
						for _, name := range m.Names {
							if fn, ok := ja.pass.TypesInfo.Defs[name].(*types.Func); ok {
								ja.journals[fn] = true
							}
						}
					}
					return true
				})
			}
		}
	}
}

// isJournaling reports whether fn is known to durably journal.
func (ja *jAnalysis) isJournaling(fn *types.Func) bool {
	if fn.Pkg() == ja.pass.Pkg || fn.Pkg() == nil {
		return ja.journals[fn]
	}
	path := fn.Pkg().Path()
	set, ok := ja.factCache[path]
	if !ok {
		var fact pkgFact
		if ja.pass.ImportFactJSON(path, &fact) {
			set = map[string]bool{}
			for _, k := range fact.Journals {
				set[k] = true
			}
		}
		ja.factCache[path] = set
	}
	if set == nil {
		return false
	}
	return set[analysis.FuncKey(fn)]
}

// propagate closes the journaling set over local callers: a function that
// calls a journaling function journals.
func (ja *jAnalysis) propagate() {
	for changed, rounds := true, 0; changed && rounds < 20; rounds++ {
		changed = false
		for fn, fd := range ja.decls {
			if ja.journals[fn] {
				continue
			}
			calls := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if calls {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := analysis.CalleeFunc(ja.pass.TypesInfo, call); callee != nil && ja.isJournaling(callee) {
					calls = true
				}
				return !calls
			})
			if calls {
				ja.journals[fn] = true
				changed = true
			}
		}
	}
}

// checkHandler walks the handler body in source order and flags success
// acks not preceded by a journaling call.
func (ja *jAnalysis) checkHandler(fd *ast.FuncDecl) {
	journaled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := analysis.CalleeFunc(ja.pass.TypesInfo, call); callee != nil && ja.isJournaling(callee) {
			journaled = true
			return true
		}
		if journaled || !isSuccessAck(ja.pass.TypesInfo, call) {
			return true
		}
		if ja.pass.ExemptAt(call.Pos(), name) {
			return true
		}
		ja.pass.Reportf(call.Pos(), "2xx acknowledged before any durable journal append+sync in mutating handler %s", fd.Name.Name)
		return true
	})
}

// isSuccessAck reports whether call acknowledges success: WriteHeader or a
// write*-named helper invoked with a constant status in [200, 300).
func isSuccessAck(info *types.Info, call *ast.CallExpr) bool {
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	if name != "WriteHeader" && !strings.HasPrefix(strings.ToLower(name), "write") {
		return false
	}
	for _, arg := range call.Args {
		if n, ok := analysis.ConstInt(info, arg); ok && n >= 200 && n < 300 {
			return true
		}
	}
	return false
}

func (ja *jAnalysis) exportFacts() error {
	var fact pkgFact
	for fn, ok := range ja.journals {
		if ok {
			fact.Journals = append(fact.Journals, analysis.FuncKey(fn))
		}
	}
	sort.Strings(fact.Journals)
	return ja.pass.ExportFactJSON(fact)
}
