package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
	"repro/internal/treematch"
)

func buildCorpus(texts []string) *corpus.Corpus {
	c := corpus.New("idx", "t")
	for _, txt := range texts {
		c.Add(txt, corpus.Negative)
	}
	c.Preprocess(corpus.PreprocessOptions{Parse: true})
	return c
}

func paperCorpus() *corpus.Corpus {
	// Sentences s1..s6 of Example 1.
	return buildCorpus([]string{
		"What is the best way to get to SFO airport?",
		"Is there a bart from SFO to the hotel?",
		"What is the best way to check in there?",
		"Is Uber the fastest way to get to the airport?",
		"Would Uber Eats be the fastest way to order?",
		"What is the best way to order food from you?",
	})
}

func tokenRegistry() *grammar.Registry {
	return grammar.NewRegistry(tokensregex.New())
}

func fullRegistry() *grammar.Registry {
	return grammar.NewRegistry(tokensregex.New(), treematch.New())
}

func TestBuildFigure6Counts(t *testing.T) {
	// Figure 6 of the paper: after indexing s1 and s4, "way to" and "to get"
	// have count 2, "best way" count 1, "fastest way" count 1.
	c := buildCorpus([]string{
		"What is the best way to get to SFO airport?",
		"Is Uber the fastest way to get to the airport?",
	})
	b := sketch.NewBuilder(tokenRegistry(), 4)
	ix := Build(c, b)

	tests := []struct {
		phrase string
		count  int
	}{
		{"way to", 2},
		{"to get", 2},
		{"best way", 1},
		{"fastest way", 1},
		{"best way to get", 1},
		{"airport", 2},
	}
	for _, tt := range tests {
		key := "tokensregex:" + tt.phrase
		if got := ix.Count(key); got != tt.count {
			t.Errorf("Count(%q) = %d, want %d", tt.phrase, got, tt.count)
		}
	}
	if got := ix.Count("tokensregex:shuttle"); got != 0 {
		t.Errorf("Count(shuttle) = %d, want 0", got)
	}
	// Root postings cover both sentences.
	if ix.Root().Count() != 2 {
		t.Errorf("root count = %d", ix.Root().Count())
	}
}

func TestIndexCoverageMatchesDirectMatching(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(tokenRegistry(), 5)
	ix := Build(c, b)
	g := tokensregex.New()
	for _, spec := range []string{"best way to", "fastest way", "sfo", "uber"} {
		h, err := g.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := grammar.Coverage(h, c)
		got := ix.Coverage(h.Key())
		if !reflect.DeepEqual(append([]int{}, got...), want) {
			t.Errorf("coverage mismatch for %q: index=%v direct=%v", spec, got, want)
		}
	}
}

func TestParentChildEdgesAndAntiMonotonicity(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(fullRegistry(), 4)
	ix := Build(c, b)
	for _, key := range ix.Keys() {
		n := ix.Node(key)
		for _, ck := range ix.Children(key) {
			child := ix.Node(ck)
			if child == nil {
				t.Fatalf("dangling child edge %s -> %s", key, ck)
			}
			// Anti-monotonicity: parent coverage superset of child coverage.
			pset := map[int]bool{}
			for _, id := range n.Postings {
				pset[id] = true
			}
			if key == grammar.RootKey {
				continue
			}
			for _, id := range child.Postings {
				if !pset[id] {
					t.Errorf("child %s covers %d not covered by parent %s", ck, id, key)
				}
			}
		}
		for _, pk := range ix.Parents(key) {
			if ix.Node(pk) == nil {
				t.Fatalf("dangling parent edge %s -> %s", key, pk)
			}
			// Symmetry: this node appears among the parent's children.
			found := false
			for _, ck := range ix.Children(pk) {
				if ck == key {
					found = true
				}
			}
			if !found {
				t.Errorf("edge asymmetry: %s lists parent %s but not vice versa", key, pk)
			}
		}
	}
	// Every non-root node has at least one parent.
	for _, key := range ix.Keys() {
		if key == grammar.RootKey {
			continue
		}
		if len(ix.Parents(key)) == 0 {
			t.Errorf("node %s has no parents", key)
		}
	}
}

func TestMergeEqualsSequentialBuild(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(tokenRegistry(), 4)

	seq := New()
	for id := 0; id < c.Len(); id++ {
		seq.AddSketch(b.Build(c.Sentence(id)))
	}
	seq.BuildEdges()

	// Two shards merged.
	a := New()
	for id := 0; id < 3; id++ {
		a.AddSketch(b.Build(c.Sentence(id)))
	}
	bb := New()
	for id := 3; id < c.Len(); id++ {
		bb.AddSketch(b.Build(c.Sentence(id)))
	}
	a.Merge(bb)
	a.BuildEdges()

	if a.Len() != seq.Len() {
		t.Fatalf("merged len %d != sequential len %d", a.Len(), seq.Len())
	}
	for _, key := range seq.Keys() {
		if !reflect.DeepEqual(seq.Coverage(key), a.Coverage(key)) {
			t.Errorf("postings differ for %s: %v vs %v", key, seq.Coverage(key), a.Coverage(key))
		}
	}
}

func TestBuildParallelMatchesSequential(t *testing.T) {
	// A corpus large enough to trigger the sharded build path.
	texts := make([]string, 0, 400)
	base := []string{
		"the shuttle to the airport leaves at nine",
		"what is the best way to get downtown",
		"can i order a pizza to my room",
		"the flooding was caused by heavy rainfall",
		"is there a bart from the airport to the hotel",
	}
	for i := 0; i < 80; i++ {
		texts = append(texts, base...)
	}
	c := buildCorpus(texts)
	b := sketch.NewBuilder(tokenRegistry(), 3)
	par := Build(c, b)

	seq := New()
	for id := 0; id < c.Len(); id++ {
		seq.AddSketch(b.Build(c.Sentence(id)))
	}
	seq.BuildEdges()

	if par.Len() != seq.Len() {
		t.Fatalf("parallel len %d != sequential %d", par.Len(), seq.Len())
	}
	for _, key := range seq.Keys() {
		if seq.Count(key) != par.Count(key) {
			t.Errorf("count mismatch for %s: %d vs %d", key, seq.Count(key), par.Count(key))
		}
	}
}

func TestPrune(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(tokenRegistry(), 4)
	ix := Build(c, b)
	before := ix.Len()
	ix.Prune(2)
	if ix.Len() >= before {
		t.Errorf("prune did not shrink index: %d -> %d", before, ix.Len())
	}
	for _, key := range ix.Keys() {
		if key == grammar.RootKey {
			continue
		}
		if ix.Count(key) < 2 {
			t.Errorf("node %s survived prune with count %d", key, ix.Count(key))
		}
	}
	// Prune(1) is a no-op.
	l := ix.Len()
	ix.Prune(1)
	if ix.Len() != l {
		t.Error("Prune(1) modified the index")
	}
}

func TestCoverageOverlapAndNewCoverage(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(tokenRegistry(), 4)
	ix := Build(c, b)
	key := "tokensregex:best way to"
	p := map[int]bool{0: true}
	cov := ix.Coverage(key)
	if len(cov) != 3 {
		t.Fatalf("coverage of 'best way to' = %v, want 3 sentences", cov)
	}
	if got := ix.CoverageOverlap(key, p); got != 1 {
		t.Errorf("overlap = %d", got)
	}
	if got := ix.NewCoverage(key, p); got != 2 {
		t.Errorf("new coverage = %d", got)
	}
	if ix.CoverageOverlap("missing", p) != 0 || ix.NewCoverage("missing", p) != 0 {
		t.Error("missing key should have zero overlap")
	}
}

func TestEnsureHeuristic(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(tokenRegistry(), 2)
	ix := Build(c, b)
	g := tokensregex.New()
	// Depth-4 phrase is beyond the sketch depth, so it is not materialized.
	h, _ := g.Parse("best way to get")
	if ix.Node(h.Key()) != nil {
		t.Fatal("deep heuristic unexpectedly materialized")
	}
	n := ix.EnsureHeuristic(h, c)
	if n.Count() != 1 {
		t.Errorf("EnsureHeuristic count = %d, want 1", n.Count())
	}
	// Idempotent.
	n2 := ix.EnsureHeuristic(h, c)
	if n != n2 {
		t.Error("EnsureHeuristic created a duplicate node")
	}
	// Already-materialized heuristics are returned as-is.
	h2, _ := g.Parse("best way")
	if got := ix.EnsureHeuristic(h2, c); got.Count() != 3 {
		t.Errorf("existing node count = %d", got.Count())
	}
}

func TestInsertSortedProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		var xs []int
		for _, id := range ids {
			xs = insertSorted(xs, int(id))
		}
		if !sort.IntsAreSorted(xs) {
			return false
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] == xs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		a := randomSorted(rng, 20)
		b := randomSorted(rng, 20)
		m := mergeSorted(a, b)
		if !sort.IntsAreSorted(m) {
			t.Fatalf("merge not sorted: %v", m)
		}
		want := map[int]bool{}
		for _, x := range a {
			want[x] = true
		}
		for _, x := range b {
			want[x] = true
		}
		if len(m) != len(want) {
			t.Fatalf("merge wrong size: %v from %v and %v", m, a, b)
		}
	}
}

func randomSorted(rng *rand.Rand, n int) []int {
	set := map[int]bool{}
	for i := 0; i < n; i++ {
		set[rng.Intn(50)] = true
	}
	out := make([]int, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func TestEmptyIndex(t *testing.T) {
	ix := New()
	if ix.Len() != 1 {
		t.Errorf("new index len = %d", ix.Len())
	}
	if ix.Count("anything") != 0 {
		t.Error("unknown key count != 0")
	}
	if ix.Coverage("anything") != nil {
		t.Error("unknown key coverage != nil")
	}
	if ix.Children("missing") != nil || ix.Parents("missing") != nil {
		t.Error("unknown key edges != nil")
	}
	ix.AddSketch(sketch.Sketch{SentenceID: -1})
	if ix.Root().Count() != 0 {
		t.Error("invalid sketch modified root")
	}
}
