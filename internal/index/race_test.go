package index

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bitset"
	"repro/internal/grammar"
	"repro/internal/sketch"
)

// TestStaleEdgeReadsPanicInsteadOfMutating pins the read-path contract:
// Children/Parents on an unpublished index must fail loudly rather than
// lazily rebuild (the pre-fix lazy rebuild mutated shared state under the
// engine's read lock — a data race). Running several readers concurrently
// under -race is exactly the scenario that would have caught the old
// behavior: each lazy rebuild wrote the edge lists while the others read
// them.
func TestStaleEdgeReadsPanicInsteadOfMutating(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(tokenRegistry(), 3)
	ix := Build(c, b)

	// Materialize an ad-hoc rule without republishing: the index is stale.
	g := tokenRegistry()
	h, err := g.Parse("best way to get")
	if err != nil {
		t.Fatal(err)
	}
	ix.EnsureHeuristic(h, c)

	const readers = 4
	var wg sync.WaitGroup
	var panics int32
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					atomic.AddInt32(&panics, 1)
				}
			}()
			if w%2 == 0 {
				ix.Children(grammar.RootKey)
			} else {
				ix.Parents(h.Key())
			}
		}(w)
	}
	wg.Wait()
	if panics != readers {
		t.Fatalf("%d of %d stale readers panicked; stale edge reads must never mutate silently", panics, readers)
	}

	// Publishing restores read access, including for the new node.
	ix.BuildEdges()
	if len(ix.Children(grammar.RootKey)) == 0 {
		t.Fatal("no root children after republish")
	}
	if len(ix.Parents(h.Key())) == 0 {
		t.Fatal("materialized rule has no parents after republish")
	}
}

// TestConcurrentReadsAfterPublish hammers every read accessor from many
// goroutines on a published index; under -race this proves the read paths
// are mutation-free.
func TestConcurrentReadsAfterPublish(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(tokenRegistry(), 4)
	ix := Build(c, b)
	keys := ix.Keys()
	pos := bitset.FromSorted([]int{0, 2, 4})
	posMap := map[int]bool{0: true, 2: true, 4: true}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				key := keys[rng.Intn(len(keys))]
				ix.Children(key)
				ix.Parents(key)
				ix.Coverage(key)
				ix.Bits(key)
				if got, want := ix.OverlapBits(key, pos), ix.CoverageOverlap(key, posMap); got != want {
					t.Errorf("OverlapBits(%q) = %d, map path %d", key, got, want)
					return
				}
				if got, want := ix.NewCoverageBits(key, pos), ix.NewCoverage(key, posMap); got != want {
					t.Errorf("NewCoverageBits(%q) = %d, map path %d", key, got, want)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestNodeBitsMatchPostings checks that every published node's bitset is an
// exact mirror of its sorted posting list.
func TestNodeBitsMatchPostings(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(fullRegistry(), 4)
	ix := Build(c, b)
	for _, key := range ix.Keys() {
		n := ix.Node(key)
		bits := n.Bits()
		if n.Count() == 0 {
			continue
		}
		if bits == nil {
			t.Fatalf("node %s has no bits after publish", key)
		}
		if bits.Count() != n.Count() {
			t.Fatalf("node %s: bits count %d != postings %d", key, bits.Count(), n.Count())
		}
		for _, id := range n.Postings {
			if !bits.Contains(id) {
				t.Fatalf("node %s: posting %d missing from bits", key, id)
			}
		}
	}
	// EnsureHeuristic materializes bits immediately.
	g := tokenRegistry()
	h, _ := g.Parse("best way to get to sfo")
	n := ix.EnsureHeuristic(h, c)
	if n.Count() > 0 && n.Bits() == nil {
		t.Fatal("EnsureHeuristic node has no bits")
	}
	ix.BuildEdges()
}

// TestVersionBumpsOnMutation checks the mutation counter sessions use to
// invalidate cached hierarchies.
func TestVersionBumpsOnMutation(t *testing.T) {
	c := paperCorpus()
	b := sketch.NewBuilder(tokenRegistry(), 3)
	ix := Build(c, b)
	v := ix.Version()
	ix.BuildEdges() // republish without mutation: version unchanged
	if ix.Version() != v {
		t.Errorf("BuildEdges changed the version: %d -> %d", v, ix.Version())
	}
	g := tokenRegistry()
	h, _ := g.Parse("best way to get")
	ix.EnsureHeuristic(h, c)
	if ix.Version() == v {
		t.Error("EnsureHeuristic did not bump the version")
	}
	ix.BuildEdges()
	v2 := ix.Version()
	ix.Prune(2)
	if ix.Version() == v2 {
		t.Error("Prune did not bump the version")
	}
}
