// Package index implements the corpus index of §3.1 (Figure 6): a trie-like
// structure obtained by merging per-sentence derivation sketches. Each node
// represents one heuristic and stores its coverage count, an inverted list of
// the sentences that satisfy it, and parent/child edges capturing the
// superset/subset relationship between heuristics.
//
// The index is the single source of coverage truth for candidate generation,
// hierarchy construction and traversal. It is built in linear time in the
// number of sentences (for bounded-depth sketches), supports sharded parallel
// construction via Merge, and has O(1) amortized update time for adding one
// sentence's sketch.
//
// # Publish points and read paths
//
// Mutations (AddSketch, Merge, EnsureHeuristic, Prune) invalidate the
// parent/child edges; BuildEdges recomputes them — and materializes each
// node's dense coverage bitset alongside its sorted posting list — at a
// "publish point" (Build, Prune, or an explicit BuildEdges after Merge or
// EnsureHeuristic). After publishing, every accessor is a pure read, so any
// number of goroutines may use the index concurrently. Children and Parents
// panic on an unpublished index instead of lazily mutating it, because a
// lazy rebuild under a caller's read lock is a data race.
package index

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/sketch"
)

// Node is one heuristic materialized in the index.
type Node struct {
	// Heuristic is the labeling heuristic this node represents. The root
	// node holds grammar.Root().
	Heuristic grammar.Heuristic
	// Postings is the sorted inverted list of sentence IDs satisfying the
	// heuristic.
	Postings []int

	// bits is the coverage-kernel mirror of Postings — a dense bitset.Set or
	// a compressed *bitset.Adaptive depending on the index kernel —
	// materialized at publish points (BuildEdges / EnsureHeuristic); bitsN is
	// len(Postings) at the time bits was built, used to detect staleness
	// cheaply.
	bits  bitset.Cover
	bitsN int

	// adhoc marks nodes materialized by EnsureHeuristic's corpus scan rather
	// than derived from sentence sketches. Their heuristics are not reachable
	// through sketches, so live-corpus growth must probe them directly (see
	// AddSentence).
	adhoc bool

	parents  []string
	children []string
}

// Key returns the node's heuristic key.
func (n *Node) Key() string { return n.Heuristic.Key() }

// Count returns the coverage |C_r| of the node's heuristic.
func (n *Node) Count() int { return len(n.Postings) }

// Parents returns the keys of the node's parent nodes (generalizations).
func (n *Node) Parents() []string { return n.parents }

// Children returns the keys of the node's child nodes (specializations).
func (n *Node) Children() []string { return n.children }

// Bits returns the node's coverage set, or nil if the node has not been
// published (BuildEdges) since its postings last changed. The returned set
// must not be modified.
func (n *Node) Bits() bitset.Cover {
	if n.bits == nil || n.bitsN != len(n.Postings) {
		return nil
	}
	return n.bits
}

// refreshBits (re)materializes the node's coverage set if it is stale or in
// the wrong representation for the index kernel.
func (n *Node) refreshBits(kernel string) {
	if n.bits != nil && n.bitsN == len(n.Postings) {
		if _, adaptive := n.bits.(*bitset.Adaptive); adaptive == (kernel == KernelAdaptive) {
			return
		}
	}
	if kernel == KernelAdaptive {
		n.bits = bitset.AdaptiveFromSorted(n.Postings)
	} else {
		n.bits = bitset.FromSorted(n.Postings)
	}
	n.bitsN = len(n.Postings)
}

// Coverage kernels: which representation BuildEdges materializes per-node
// coverage in. Adaptive (the default) uses roaring-style compressed bitsets
// whose memory scales with coverage cardinality instead of corpus size;
// dense is the original []uint64 mirror and remains the pinned reference the
// equivalence tests compare against.
const (
	KernelAdaptive = "adaptive"
	KernelDense    = "dense"
)

// Index is the merged sketch trie over a corpus.
type Index struct {
	nodes map[string]*Node
	// kernel selects the per-node coverage representation ("" means
	// KernelAdaptive).
	kernel string
	// edgesBuilt records whether parent/child edges (and coverage bitsets)
	// are up to date.
	edgesBuilt bool
	// keys is the sorted key cache, valid while edgesBuilt.
	keys []string
	// version counts mutations; sessions use it to detect that a cached
	// hierarchy may be stale because the shared index grew.
	version uint64
	// adhoc lists the nodes EnsureHeuristic materialized by corpus scan, the
	// ones AddSentence must probe against every ingested sentence.
	adhoc []*Node
}

// New returns an empty index containing only the root node (with no
// postings; the root conceptually covers every sentence). An empty index is
// trivially published: its edges are built.
func New() *Index {
	ix := &Index{nodes: make(map[string]*Node), edgesBuilt: true}
	ix.nodes[grammar.RootKey] = &Node{Heuristic: grammar.Root()}
	return ix
}

// Kernel returns the index's coverage-kernel name (KernelAdaptive unless
// explicitly set to KernelDense).
func (ix *Index) Kernel() string {
	if ix.kernel == KernelDense {
		return KernelDense
	}
	return KernelAdaptive
}

// SetKernel switches the per-node coverage representation and republishes
// the index. A no-op when the kernel is unchanged. Callers holding the
// engine's index write lock may call it at any time; it never changes
// postings, so versioned caches built on the old kernel stay semantically
// valid but are invalidated anyway (the representation under their bits
// pointer swapped).
func (ix *Index) SetKernel(kernel string) {
	if kernel != KernelDense {
		kernel = KernelAdaptive
	}
	if ix.Kernel() == kernel {
		return
	}
	ix.kernel = kernel
	ix.invalidate()
	ix.BuildEdges()
}

// Build constructs the index of a corpus using the given sketch builder,
// sharding the work across CPUs and merging the shards (the parallel
// construction described in §3.1).
func Build(c *corpus.Corpus, b *sketch.Builder) *Index {
	shards := runtime.GOMAXPROCS(0)
	if shards < 1 {
		shards = 1
	}
	if c.Len() < 256 {
		shards = 1
	}
	if shards == 1 {
		ix := New()
		for id := 0; id < c.Len(); id++ {
			ix.AddSketch(b.Build(c.Sentence(id)))
		}
		ix.BuildEdges()
		return ix
	}
	parts := make([]*Index, shards)
	var wg sync.WaitGroup
	per := (c.Len() + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if hi > c.Len() {
			hi = c.Len()
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			part := New()
			for id := lo; id < hi; id++ {
				part.AddSketch(b.Build(c.Sentence(id)))
			}
			parts[s] = part
		}(s, lo, hi)
	}
	wg.Wait()
	ix := parts[0]
	for _, part := range parts[1:] {
		ix.Merge(part)
	}
	ix.BuildEdges()
	return ix
}

// AddSentence merges one newly ingested sentence into the index: its
// derivation sketch via AddSketch, plus a direct match probe of every ad-hoc
// node (rules materialized by EnsureHeuristic are not derivable from
// sketches, so their coverage growth must be computed explicitly). With this
// probe, ingest and seed-rule materialization commute: an ensured node's
// coverage always converges to its full-corpus scan regardless of order,
// which is what keeps journal replay deterministic.
func (ix *Index) AddSentence(sk sketch.Sketch, s *corpus.Sentence) {
	ix.AddSketch(sk)
	if s == nil {
		return
	}
	for _, n := range ix.adhoc {
		if n.Heuristic.Matches(s) {
			n.Postings = insertSorted(n.Postings, s.ID)
		}
	}
}

// AddSketch merges one sentence's derivation sketch into the index,
// incrementing counts and extending inverted lists. Edges are invalidated
// and must be rebuilt with BuildEdges before the index is read concurrently.
func (ix *Index) AddSketch(sk sketch.Sketch) {
	if sk.SentenceID < 0 {
		return
	}
	root := ix.nodes[grammar.RootKey]
	root.Postings = insertSorted(root.Postings, sk.SentenceID)
	for _, h := range sk.Heuristics {
		key := h.Key()
		n, ok := ix.nodes[key]
		if !ok {
			n = &Node{Heuristic: h}
			ix.nodes[key] = n
		}
		n.Postings = insertSorted(n.Postings, sk.SentenceID)
	}
	ix.invalidate()
}

// invalidate marks the edges/bitsets/key cache stale and bumps the version.
func (ix *Index) invalidate() {
	ix.edgesBuilt = false
	ix.keys = nil
	ix.version++
}

// insertSorted appends id keeping the slice sorted and deduplicated. In the
// common case (ids arrive in increasing order) this is O(1).
func insertSorted(xs []int, id int) []int {
	if n := len(xs); n == 0 || xs[n-1] < id {
		return append(xs, id)
	}
	i := sort.SearchInts(xs, id)
	if i < len(xs) && xs[i] == id {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = id
	return xs
}

// Merge folds another index into this one (union of postings per key). Edges
// are invalidated and must be rebuilt with BuildEdges.
func (ix *Index) Merge(other *Index) {
	for key, on := range other.nodes {
		n, ok := ix.nodes[key]
		if !ok {
			ix.nodes[key] = &Node{Heuristic: on.Heuristic, Postings: append([]int(nil), on.Postings...)}
			continue
		}
		n.Postings = mergeSorted(n.Postings, on.Postings)
	}
	ix.invalidate()
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// BuildEdges (re)computes parent/child edges between materialized nodes,
// refreshes each node's coverage bitset, and caches the sorted key list. A
// heuristic whose grammatical parents are not materialized (e.g. stop-word
// unigrams filtered from sketches) is attached directly to the root. This is
// the publish point: after it returns, all read accessors are safe for
// concurrent use until the next mutation.
func (ix *Index) BuildEdges() {
	kernel := ix.Kernel()
	for _, n := range ix.nodes {
		n.parents = n.parents[:0]
		n.children = n.children[:0]
		n.refreshBits(kernel)
	}
	keys := make([]string, 0, len(ix.nodes))
	for k := range ix.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if key == grammar.RootKey {
			continue
		}
		n := ix.nodes[key]
		attached := false
		for _, p := range n.Heuristic.Parents() {
			pk := p.Key()
			pn, ok := ix.nodes[pk]
			if !ok {
				continue
			}
			pn.children = append(pn.children, key)
			n.parents = append(n.parents, pk)
			attached = true
		}
		if !attached {
			root := ix.nodes[grammar.RootKey]
			root.children = append(root.children, key)
			n.parents = append(n.parents, grammar.RootKey)
		}
	}
	// Deterministic ordering of edge lists.
	for _, n := range ix.nodes {
		sort.Strings(n.parents)
		sort.Strings(n.children)
	}
	ix.keys = keys
	ix.edgesBuilt = true
}

// Prune removes all non-root nodes with coverage below minCount, then
// rebuilds edges. Low-coverage heuristics can never be useful labeling rules
// (the paper targets rules with coverage Ω(log n)), and pruning keeps the
// index small on large corpora.
func (ix *Index) Prune(minCount int) {
	if minCount <= 1 {
		return
	}
	for key, n := range ix.nodes {
		if key == grammar.RootKey {
			continue
		}
		if n.Count() < minCount {
			delete(ix.nodes, key)
		}
	}
	if len(ix.adhoc) > 0 {
		kept := ix.adhoc[:0]
		for _, n := range ix.adhoc {
			if ix.nodes[n.Key()] == n {
				kept = append(kept, n)
			}
		}
		ix.adhoc = kept
	}
	ix.invalidate()
	ix.BuildEdges()
}

// Node returns the node for a heuristic key, or nil if not materialized.
func (ix *Index) Node(key string) *Node {
	return ix.nodes[key]
}

// Root returns the root node.
func (ix *Index) Root() *Node { return ix.nodes[grammar.RootKey] }

// Len returns the number of nodes (including the root).
func (ix *Index) Len() int { return len(ix.nodes) }

// Version returns the mutation counter. Two equal Version values bracket a
// window in which the index did not change, so derived structures (cached
// hierarchies, key snapshots) built inside it are still valid.
func (ix *Index) Version() uint64 { return ix.version }

// Keys returns all node keys in sorted order. On a published index this is
// the cached slice — callers must not modify it.
func (ix *Index) Keys() []string {
	if ix.edgesBuilt && ix.keys != nil {
		return ix.keys
	}
	out := make([]string, 0, len(ix.nodes))
	for k := range ix.nodes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Coverage returns the posting list (sorted sentence IDs) of the heuristic
// with the given key, or nil if the key is not materialized. The returned
// slice must not be modified.
func (ix *Index) Coverage(key string) []int {
	if n, ok := ix.nodes[key]; ok {
		return n.Postings
	}
	return nil
}

// Bits returns the coverage set of the heuristic with the given key, or
// nil if the key is not materialized or not yet published. The returned set
// must not be modified.
func (ix *Index) Bits(key string) bitset.Cover {
	if n, ok := ix.nodes[key]; ok {
		return n.Bits()
	}
	return nil
}

// ContainerStats reports the coverage-representation census across all
// published nodes: adaptive array and bitmap container counts, plus how many
// nodes hold a dense mirror. It feeds the darwin_bitset_containers gauge.
func (ix *Index) ContainerStats() (arrays, bitmaps, dense int) {
	for _, n := range ix.nodes {
		switch b := n.bits.(type) {
		case *bitset.Adaptive:
			a, bm := b.Containers()
			arrays += a
			bitmaps += bm
		case bitset.Set:
			if b != nil {
				dense++
			}
		}
	}
	return arrays, bitmaps, dense
}

// CoverageBytes sums the payload bytes of every published node coverage set
// — the series the scale benchmark compares across kernels.
func (ix *Index) CoverageBytes() int {
	total := 0
	for _, n := range ix.nodes {
		if n.bits != nil {
			total += n.bits.Bytes()
		}
	}
	return total
}

// Count returns the coverage size of the heuristic with the given key (0 for
// unknown keys).
func (ix *Index) Count(key string) int {
	if n, ok := ix.nodes[key]; ok {
		return n.Count()
	}
	return 0
}

// mustPublished panics when the index has pending mutations: read paths must
// never lazily rebuild shared state (callers typically hold only a read
// lock, so a rebuild here would be a data race).
func (ix *Index) mustPublished(method string) {
	if !ix.edgesBuilt {
		panic("index: " + method + " called on an unpublished index; call BuildEdges after AddSketch/Merge/EnsureHeuristic before reading edges")
	}
}

// Children returns the child keys of the node with the given key. The index
// must be published (see BuildEdges); Children never mutates.
func (ix *Index) Children(key string) []string {
	ix.mustPublished("Children")
	if n, ok := ix.nodes[key]; ok {
		return n.children
	}
	return nil
}

// Parents returns the parent keys of the node with the given key. The index
// must be published (see BuildEdges); Parents never mutates.
func (ix *Index) Parents(key string) []string {
	ix.mustPublished("Parents")
	if n, ok := ix.nodes[key]; ok {
		return n.parents
	}
	return nil
}

// CoverageOverlap returns |C_r ∩ P| for the heuristic with the given key and
// a set P of sentence IDs. This is the map-based reference path; the scoring
// hot paths use OverlapBits.
func (ix *Index) CoverageOverlap(key string, p map[int]bool) int {
	n := 0
	for _, id := range ix.Coverage(key) {
		if p[id] {
			n++
		}
	}
	return n
}

// NewCoverage returns |C_r \ P|: how many sentences the heuristic would add
// beyond the already-discovered set P (map-based reference path; see
// NewCoverageBits).
func (ix *Index) NewCoverage(key string, p map[int]bool) int {
	n := 0
	for _, id := range ix.Coverage(key) {
		if !p[id] {
			n++
		}
	}
	return n
}

// OverlapBits returns |C_r ∩ P| via word-wise intersection + popcount. It
// falls back to the posting list when the node's bitset is unpublished.
func (ix *Index) OverlapBits(key string, p bitset.Set) int {
	n, ok := ix.nodes[key]
	if !ok {
		return 0
	}
	if b := n.Bits(); b != nil {
		return b.AndCount(p)
	}
	c := 0
	for _, id := range n.Postings {
		if p.Contains(id) {
			c++
		}
	}
	return c
}

// NewCoverageBits returns |C_r \ P| via word-wise and-not + popcount, with
// the same posting-list fallback as OverlapBits.
func (ix *Index) NewCoverageBits(key string, p bitset.Set) int {
	n, ok := ix.nodes[key]
	if !ok {
		return 0
	}
	if b := n.Bits(); b != nil {
		return b.AndNotCount(p)
	}
	c := 0
	for _, id := range n.Postings {
		if !p.Contains(id) {
			c++
		}
	}
	return c
}

// EnsureHeuristic materializes an ad-hoc heuristic (e.g. a parsed seed rule
// or a specialization generated during traversal) by scanning the corpus for
// its coverage, unless it is already present. It returns the node. Edges are
// invalidated: callers must BuildEdges before the index is read again.
func (ix *Index) EnsureHeuristic(h grammar.Heuristic, c *corpus.Corpus) *Node {
	if n, ok := ix.nodes[h.Key()]; ok {
		return n
	}
	n := &Node{Heuristic: h, Postings: grammar.Coverage(h, c), adhoc: true}
	n.refreshBits(ix.Kernel())
	ix.nodes[h.Key()] = n
	ix.adhoc = append(ix.adhoc, n)
	ix.invalidate()
	return n
}
