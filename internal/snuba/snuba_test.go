package snuba

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
)

func directionsCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := datagen.ByName("directions", 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	c.Preprocess(corpus.PreprocessOptions{})
	return c
}

func TestRunRequiresPositiveEvidence(t *testing.T) {
	c := directionsCorpus(t)
	// All-negative seed: nothing can be mined.
	var negs []int
	for _, s := range c.Sentences {
		if s.Gold == corpus.Negative {
			negs = append(negs, s.ID)
			if len(negs) == 50 {
				break
			}
		}
	}
	res := Run(c, negs, DefaultConfig())
	if len(res.Rules) != 0 || len(res.Coverage) != 0 {
		t.Errorf("mined %d rules from negative-only seed", len(res.Rules))
	}
	// Empty seed.
	if res := Run(c, nil, DefaultConfig()); len(res.Rules) != 0 {
		t.Error("mined rules from empty seed")
	}
	// Invalid IDs are ignored.
	if res := Run(c, []int{-5, 1 << 30}, DefaultConfig()); len(res.Rules) != 0 {
		t.Error("mined rules from invalid seed IDs")
	}
}

func TestRunMinesRulesFromLargeSeed(t *testing.T) {
	c := directionsCorpus(t)
	rng := rand.New(rand.NewSource(3))
	seed := c.SampleIDs(800, rng) // large random sample: plenty of positive evidence
	res := Run(c, seed, DefaultConfig())
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined from a large seed")
	}
	cov := eval.CoverageOfSet(c, res.Coverage)
	if cov < 0.3 {
		t.Errorf("coverage from large seed = %.2f, want >= 0.3", cov)
	}
	// Every mined rule has seed precision above the configured floor and
	// statistics in [0,1].
	for _, r := range res.Rules {
		if r.SeedPrecision < DefaultConfig().MinPrecision {
			t.Errorf("rule %s precision %.2f below floor", r.Heuristic, r.SeedPrecision)
		}
		if r.SeedRecall < 0 || r.SeedRecall > 1 || r.SeedF1 < 0 || r.SeedF1 > 1 {
			t.Errorf("rule %s has out-of-range stats", r.Heuristic)
		}
	}
}

func TestSmallSeedCoversLessThanLargeSeed(t *testing.T) {
	// The defining Snuba behaviour for Figure 7: coverage grows with the
	// size of the random labeled seed, and tiny seeds in imbalanced corpora
	// are nearly useless.
	c := directionsCorpus(t)
	rng := rand.New(rand.NewSource(5))
	small := Run(c, c.SampleIDs(25, rng), DefaultConfig())
	large := Run(c, c.SampleIDs(1000, rng), DefaultConfig())
	covSmall := eval.CoverageOfSet(c, small.Coverage)
	covLarge := eval.CoverageOfSet(c, large.Coverage)
	if covSmall >= covLarge {
		t.Errorf("small-seed coverage %.2f >= large-seed coverage %.2f", covSmall, covLarge)
	}
}

func TestBiasedSeedMissesWithheldCluster(t *testing.T) {
	// Figure 8: if the seed excludes every sentence containing "shuttle",
	// Snuba never discovers a shuttle rule and misses those positives.
	c := directionsCorpus(t)
	rng := rand.New(rand.NewSource(7))
	seed := c.SampleBiasedIDs(1000, "shuttle", rng)
	res := Run(c, seed, DefaultConfig())
	for _, r := range res.Rules {
		if strings.Contains(r.Heuristic.Key(), "shuttle") {
			t.Errorf("biased seed produced shuttle rule %s", r.Heuristic)
		}
	}
	// Positives that mention shuttle remain uncovered.
	missed := 0
	for _, s := range c.Sentences {
		if s.Gold != corpus.Positive {
			continue
		}
		for _, tok := range s.Tokens {
			if tok == "shuttle" && !res.Coverage[s.ID] {
				missed++
				break
			}
		}
	}
	if missed == 0 {
		t.Error("expected some shuttle positives to be missed under a biased seed")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	c := directionsCorpus(t)
	rng := rand.New(rand.NewSource(9))
	seed := c.SampleIDs(500, rng)
	res := Run(c, seed, Config{}) // all zero: defaults kick in
	if len(res.Rules) == 0 {
		t.Error("zero config mined nothing")
	}
	if len(res.Rules) > 25 {
		t.Errorf("default MaxRules exceeded: %d", len(res.Rules))
	}
}

func TestSplitPhraseAndStopPhrase(t *testing.T) {
	if got := splitPhrase("best way to"); len(got) != 3 || got[0] != "best" {
		t.Errorf("splitPhrase = %v", got)
	}
	if got := splitPhrase(""); got != nil {
		t.Errorf("splitPhrase empty = %v", got)
	}
	if !isStopPhrase("to the") {
		t.Error("'to the' should be a stop phrase")
	}
	if isStopPhrase("shuttle to") {
		t.Error("'shuttle to' should not be a stop phrase")
	}
}
