// Package snuba re-implements the behaviour of the Snuba baseline (Varma &
// Ré, PVLDB 2019) that the paper compares against in §4.2: given a labeled
// subset of the corpus, automatically mine labeling heuristics from the
// evidence present in that subset, without any oracle interaction.
//
// The defining property this reproduction preserves — and the one Figures 7
// and 8 hinge on — is that Snuba can only propose heuristics whose pattern
// occurs in the labeled seed: patterns with no seed evidence (e.g. "shuttle"
// when every seed sentence mentioning a shuttle was withheld) are never
// discovered, no matter how prevalent they are in the unlabeled corpus.
package snuba

import (
	"sort"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/textproc"
	"repro/internal/tokensregex"
)

// Config controls the heuristic miner.
type Config struct {
	// MaxRules bounds the size of the committee of heuristics.
	MaxRules int
	// MaxPhraseLen bounds candidate phrase length (in tokens).
	MaxPhraseLen int
	// MinPrecision is the minimum precision a candidate must reach on the
	// labeled subset to be considered (Snuba's abstain/threshold tuning,
	// simplified to a precision floor).
	MinPrecision float64
	// MinSeedCoverage is the minimum number of labeled positives a candidate
	// must cover.
	MinSeedCoverage int
}

// DefaultConfig mirrors the committee sizes Snuba typically converges to.
func DefaultConfig() Config {
	return Config{MaxRules: 25, MaxPhraseLen: 4, MinPrecision: 0.8, MinSeedCoverage: 2}
}

// Rule is one mined heuristic with its statistics on the labeled subset.
type Rule struct {
	Heuristic     grammar.Heuristic
	SeedPrecision float64
	SeedRecall    float64
	SeedF1        float64
}

// Result is the output of a Snuba run.
type Result struct {
	// Rules is the selected committee.
	Rules []Rule
	// Coverage is the union of the rules' coverage over the full corpus.
	Coverage map[int]bool
}

// Run mines heuristics from the labeled subset (seedIDs with the corpus's
// gold labels standing in for the user-provided labels) and applies them to
// the full corpus.
func Run(c *corpus.Corpus, seedIDs []int, cfg Config) Result {
	if cfg.MaxRules <= 0 {
		cfg.MaxRules = 25
	}
	if cfg.MaxPhraseLen <= 0 {
		cfg.MaxPhraseLen = 4
	}
	if cfg.MinPrecision <= 0 {
		cfg.MinPrecision = 0.8
	}
	if cfg.MinSeedCoverage <= 0 {
		cfg.MinSeedCoverage = 1
	}

	seedSet := map[int]bool{}
	var posSeeds, negSeeds []int
	for _, id := range seedIDs {
		s := c.Sentence(id)
		if s == nil || seedSet[id] {
			continue
		}
		seedSet[id] = true
		if s.Gold == corpus.Positive {
			posSeeds = append(posSeeds, id)
		} else {
			negSeeds = append(negSeeds, id)
		}
	}
	res := Result{Coverage: map[int]bool{}}
	if len(posSeeds) == 0 {
		return res // no positive evidence: Snuba cannot mine anything
	}

	// Candidate generation: every n-gram present in a labeled positive.
	type stats struct {
		phrase   string
		posCover map[int]bool
		negCover int
	}
	candidates := map[string]*stats{}
	for _, id := range posSeeds {
		toks := c.Sentence(id).Tokens
		for _, gram := range textproc.NGrams(toks, 1, cfg.MaxPhraseLen) {
			if isStopPhrase(gram) {
				continue
			}
			st, ok := candidates[gram]
			if !ok {
				st = &stats{phrase: gram, posCover: map[int]bool{}}
				candidates[gram] = st
			}
			st.posCover[id] = true
		}
	}
	// Score candidates on the labeled subset.
	for _, id := range negSeeds {
		toks := c.Sentence(id).Tokens
		for _, gram := range textproc.NGrams(toks, 1, cfg.MaxPhraseLen) {
			if st, ok := candidates[gram]; ok {
				st.negCover++
			}
		}
	}

	type scored struct {
		phrase    string
		precision float64
		recall    float64
		f1        float64
		posIDs    map[int]bool
	}
	var pool []scored
	for _, st := range candidates {
		posCov := len(st.posCover)
		if posCov < cfg.MinSeedCoverage {
			continue
		}
		precision := float64(posCov) / float64(posCov+st.negCover)
		if precision < cfg.MinPrecision {
			continue
		}
		recall := float64(posCov) / float64(len(posSeeds))
		f1 := 0.0
		if precision+recall > 0 {
			f1 = 2 * precision * recall / (precision + recall)
		}
		pool = append(pool, scored{phrase: st.phrase, precision: precision, recall: recall, f1: f1, posIDs: st.posCover})
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].f1 != pool[j].f1 {
			return pool[i].f1 > pool[j].f1
		}
		if pool[i].precision != pool[j].precision {
			return pool[i].precision > pool[j].precision
		}
		return pool[i].phrase < pool[j].phrase
	})

	// Greedy diverse committee selection: repeatedly take the best-F1 rule
	// that covers at least one labeled positive not yet covered by the
	// committee (Snuba's diversity criterion).
	covered := map[int]bool{}
	for _, cand := range pool {
		if len(res.Rules) >= cfg.MaxRules {
			break
		}
		adds := false
		for id := range cand.posIDs {
			if !covered[id] {
				adds = true
				break
			}
		}
		if !adds {
			continue
		}
		for id := range cand.posIDs {
			covered[id] = true
		}
		h := tokensregex.NewHeuristic(splitPhrase(cand.phrase))
		res.Rules = append(res.Rules, Rule{
			Heuristic:     h,
			SeedPrecision: cand.precision,
			SeedRecall:    cand.recall,
			SeedF1:        cand.f1,
		})
	}

	// Apply the committee to the full corpus.
	for _, r := range res.Rules {
		for _, id := range grammar.Coverage(r.Heuristic, c) {
			res.Coverage[id] = true
		}
	}
	return res
}

// isStopPhrase drops unigram stop words and phrases made only of stop words.
func isStopPhrase(gram string) bool {
	toks := splitPhrase(gram)
	for _, t := range toks {
		if !textproc.IsStopWord(t) {
			return false
		}
	}
	return true
}

func splitPhrase(gram string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(gram); i++ {
		if i == len(gram) || gram[i] == ' ' {
			if i > start {
				out = append(out, gram[start:i])
			}
			start = i + 1
		}
	}
	return out
}
