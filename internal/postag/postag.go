// Package postag implements a deterministic part-of-speech tagger over the
// Universal POS tagset (Petrov et al., 2011), the tagset the TreeMatch
// grammar of the paper references (NOUN, VERB, ADJ, ...).
//
// The paper uses SpaCy's statistical tagger; this package substitutes a
// lexicon + suffix + context heuristic tagger. TreeMatch rules only condition
// on coarse POS categories, so a deterministic tagger with the same tagset
// exercises the same code paths in the index, hierarchy and traversal
// components.
package postag

import "strings"

// Tag is a Universal POS tag.
type Tag string

// The Universal POS tagset.
const (
	NOUN  Tag = "NOUN"
	VERB  Tag = "VERB"
	ADJ   Tag = "ADJ"
	ADV   Tag = "ADV"
	PRON  Tag = "PRON"
	DET   Tag = "DET"
	ADP   Tag = "ADP"
	NUM   Tag = "NUM"
	CONJ  Tag = "CONJ"
	PRT   Tag = "PRT"
	PROPN Tag = "PROPN"
	PUNCT Tag = "PUNCT"
	X     Tag = "X"
)

// AllTags lists every tag the tagger can emit, in a stable order.
var AllTags = []Tag{NOUN, VERB, ADJ, ADV, PRON, DET, ADP, NUM, CONJ, PRT, PROPN, PUNCT, X}

// IsTag reports whether s names a Universal POS tag (used by TreeMatch rule
// parsing to distinguish POS terminals from token terminals).
func IsTag(s string) bool {
	switch Tag(strings.ToUpper(s)) {
	case NOUN, VERB, ADJ, ADV, PRON, DET, ADP, NUM, CONJ, PRT, PROPN, PUNCT, X:
		return true
	}
	return false
}

// Tagger assigns Universal POS tags to token sequences. The zero value uses
// the built-in lexicon; Lexicon entries added by the caller take precedence.
type Tagger struct {
	// Lexicon maps lowercase tokens to their tag, overriding the built-in
	// dictionary. Dataset generators use this to tag domain entities (e.g.
	// musician names as PROPN).
	Lexicon map[string]Tag
}

// New returns a Tagger with an empty override lexicon.
func New() *Tagger {
	return &Tagger{Lexicon: make(map[string]Tag)}
}

// AddLexicon registers an override tag for a (lowercased) token.
func (t *Tagger) AddLexicon(token string, tag Tag) {
	if t.Lexicon == nil {
		t.Lexicon = make(map[string]Tag)
	}
	t.Lexicon[strings.ToLower(token)] = tag
}

// Tag tags a single token without sentence context. Surface is the original
// form (capitalization is used as a PROPN signal when not sentence-initial).
func (t *Tagger) Tag(surface string, sentenceInitial bool) Tag {
	lower := strings.ToLower(surface)
	if t != nil && t.Lexicon != nil {
		if tag, ok := t.Lexicon[lower]; ok {
			return tag
		}
	}
	if tag, ok := closedClass[lower]; ok {
		return tag
	}
	if isNumeric(lower) {
		return NUM
	}
	if isPunct(surface) {
		return PUNCT
	}
	if !sentenceInitial && isCapitalized(surface) {
		return PROPN
	}
	if tag, ok := commonLexicon[lower]; ok {
		return tag
	}
	return suffixTag(lower)
}

// TagSentence tags an already-tokenized sentence. The returned slice is
// parallel to tokens. A lightweight contextual pass fixes the most common
// ambiguities (e.g. a word after a determiner is a noun, a word after "to"
// following an auxiliary is a verb).
func (t *Tagger) TagSentence(tokens []string) []Tag {
	tags := make([]Tag, len(tokens))
	for i, tok := range tokens {
		tags[i] = t.Tag(tok, i == 0)
	}
	// Contextual repair pass.
	for i := range tags {
		lower := strings.ToLower(tokens[i])
		// Determiner or adjective followed by an X/VERB guess: prefer NOUN.
		if i > 0 && (tags[i-1] == DET || tags[i-1] == ADJ) {
			if tags[i] == X {
				tags[i] = NOUN
			}
		}
		// "to" + base verb: the word after "to" is a VERB if it was guessed
		// NOUN/X and is not followed by a determiner context.
		if i > 0 && strings.ToLower(tokens[i-1]) == "to" && (tags[i] == X) {
			tags[i] = VERB
		}
		// Sentence-initial wh-words are PRON/ADV already via closed class.
		// Word before a noun that ends in -ing after "is/are" is a VERB.
		if lower != "" && strings.HasSuffix(lower, "ing") && i > 0 {
			prev := strings.ToLower(tokens[i-1])
			if prev == "is" || prev == "are" || prev == "was" || prev == "were" || prev == "be" {
				tags[i] = VERB
			}
		}
	}
	return tags
}

func isCapitalized(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c >= 'A' && c <= 'Z'
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	digits := 0
	for _, r := range s {
		if r >= '0' && r <= '9' {
			digits++
		} else if r != '.' && r != ',' && r != '-' && r != ':' {
			return false
		}
	}
	return digits > 0
}

func isPunct(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// suffixTag guesses a tag from common English suffixes.
func suffixTag(lower string) Tag {
	switch {
	case strings.HasSuffix(lower, "ly"):
		return ADV
	case strings.HasSuffix(lower, "ing"), strings.HasSuffix(lower, "ed"),
		strings.HasSuffix(lower, "ize"), strings.HasSuffix(lower, "ise"),
		strings.HasSuffix(lower, "ify"):
		return VERB
	case strings.HasSuffix(lower, "ous"), strings.HasSuffix(lower, "ful"),
		strings.HasSuffix(lower, "able"), strings.HasSuffix(lower, "ible"),
		strings.HasSuffix(lower, "ive"), strings.HasSuffix(lower, "est"),
		strings.HasSuffix(lower, "ic"), strings.HasSuffix(lower, "al"),
		strings.HasSuffix(lower, "less"):
		return ADJ
	case strings.HasSuffix(lower, "tion"), strings.HasSuffix(lower, "sion"),
		strings.HasSuffix(lower, "ment"), strings.HasSuffix(lower, "ness"),
		strings.HasSuffix(lower, "ity"), strings.HasSuffix(lower, "er"),
		strings.HasSuffix(lower, "or"), strings.HasSuffix(lower, "ist"),
		strings.HasSuffix(lower, "ship"), strings.HasSuffix(lower, "ism"),
		strings.HasSuffix(lower, "ure"), strings.HasSuffix(lower, "age"):
		return NOUN
	}
	if len(lower) > 0 && strings.HasSuffix(lower, "s") && len(lower) > 3 {
		return NOUN // crude plural guess
	}
	return X
}

// closedClass contains function words with essentially unambiguous coarse
// tags.
var closedClass = map[string]Tag{
	// determiners
	"the": DET, "a": DET, "an": DET, "this": DET, "that": DET, "these": DET,
	"those": DET, "some": DET, "any": DET, "each": DET, "every": DET,
	"no": DET, "another": DET, "both": DET, "either": DET, "neither": DET,
	// pronouns
	"i": PRON, "you": PRON, "he": PRON, "she": PRON, "it": PRON, "we": PRON,
	"they": PRON, "me": PRON, "him": PRON, "her": PRON, "us": PRON,
	"them": PRON, "my": PRON, "your": PRON, "his": PRON, "its": PRON,
	"our": PRON, "their": PRON, "who": PRON, "whom": PRON, "which": PRON,
	"what": PRON, "there": PRON, "someone": PRON, "anyone": PRON,
	"everyone": PRON, "something": PRON, "anything": PRON, "nothing": PRON,
	// adpositions
	"of": ADP, "in": ADP, "on": ADP, "at": ADP, "by": ADP, "for": ADP,
	"with": ADP, "from": ADP, "into": ADP, "onto": ADP, "about": ADP,
	"over": ADP, "under": ADP, "between": ADP, "through": ADP, "during": ADP,
	"after": ADP, "before": ADP, "against": ADP, "near": ADP, "across": ADP,
	"around": ADP, "behind": ADP, "beyond": ADP, "via": ADP, "within": ADP,
	"without": ADP, "upon": ADP, "off": ADP, "toward": ADP, "towards": ADP,
	// the paper's parse-tree example tags "to" as ADP
	"to": ADP,
	// conjunctions
	"and": CONJ, "or": CONJ, "but": CONJ, "nor": CONJ, "so": CONJ,
	"yet": CONJ, "because": CONJ, "although": CONJ, "while": CONJ,
	"if": CONJ, "unless": CONJ, "since": CONJ, "whether": CONJ,
	// particles
	"not": PRT, "n't": PRT, "'s": PRT, "too": PRT, "also": PRT,
	// auxiliaries / common verbs
	"is": VERB, "are": VERB, "was": VERB, "were": VERB, "be": VERB,
	"been": VERB, "being": VERB, "am": VERB, "do": VERB, "does": VERB,
	"did": VERB, "have": VERB, "has": VERB, "had": VERB, "will": VERB,
	"would": VERB, "can": VERB, "could": VERB, "should": VERB, "shall": VERB,
	"may": VERB, "might": VERB, "must": VERB, "get": VERB, "got": VERB,
	"go": VERB, "goes": VERB, "went": VERB, "take": VERB, "took": VERB,
	"make": VERB, "made": VERB, "need": VERB, "want": VERB, "know": VERB,
	"order": VERB, "check": VERB, "ask": VERB, "tell": VERB, "find": VERB,
	// adverbs
	"very": ADV, "here": ADV, "now": ADV, "then": ADV, "always": ADV,
	"never": ADV, "often": ADV, "again": ADV, "soon": ADV, "still": ADV,
	"how": ADV, "when": ADV, "where": ADV, "why": ADV, "just": ADV,
	"really": ADV, "quite": ADV, "rather": ADV, "almost": ADV,
}

// commonLexicon covers frequent open-class words in the synthetic corpora so
// that parse trees look reasonable. It is intentionally small; everything
// else falls through to suffix rules.
var commonLexicon = map[string]Tag{
	"way": NOUN, "hotel": NOUN, "airport": NOUN, "shuttle": NOUN, "bus": NOUN,
	"train": NOUN, "taxi": NOUN, "uber": PROPN, "bart": PROPN, "food": NOUN,
	"room": NOUN, "question": NOUN, "direction": NOUN, "directions": NOUN,
	"best": ADJ, "fastest": ADJ, "cheapest": ADJ, "good": ADJ, "great": ADJ,
	"new": ADJ, "old": ADJ, "big": ADJ, "small": ADJ, "long": ADJ,
	"piano": NOUN, "guitar": NOUN, "violin": NOUN, "music": NOUN,
	"composer": NOUN, "musician": NOUN, "singer": NOUN, "band": NOUN,
	"album": NOUN, "song": NOUN, "songs": NOUN, "symphony": NOUN,
	"teacher": NOUN, "scientist": NOUN, "engineer": NOUN, "doctor": NOUN,
	"lawyer": NOUN, "nurse": NOUN, "professor": NOUN, "job": NOUN,
	"work": NOUN, "works": VERB, "worked": VERB, "working": VERB,
	"cause": NOUN, "effect": NOUN, "caused": VERB, "causes": VERB,
	"result": NOUN, "resulted": VERB, "triggered": VERB, "led": VERB,
	"damage": NOUN, "street": NOUN, "city": NOUN, "station": NOUN,
	"breakfast": NOUN, "dinner": NOUN, "lunch": NOUN, "pizza": NOUN,
	"coffee": NOUN, "restaurant": NOUN, "menu": NOUN,
	"travel": NOUN, "trip": NOUN, "flight": NOUN, "career": NOUN,
	"eat": VERB, "eating": VERB, "drink": VERB, "book": VERB, "booked": VERB,
	"play": VERB, "plays": VERB, "played": VERB, "wrote": VERB, "write": VERB,
	"born": VERB, "died": VERB, "perform": VERB, "performed": VERB,
	"craving": VERB, "hungry": ADJ, "delicious": ADJ,
}
