package postag

import (
	"testing"
	"testing/quick"
)

func TestTagClosedClass(t *testing.T) {
	tg := New()
	tests := []struct {
		tok  string
		want Tag
	}{
		{"the", DET}, {"The", DET}, {"is", VERB}, {"to", ADP}, {"and", CONJ},
		{"not", PRT}, {"she", PRON}, {"very", ADV}, {"from", ADP},
	}
	for _, tt := range tests {
		if got := tg.Tag(tt.tok, true); got != tt.want {
			t.Errorf("Tag(%q) = %s, want %s", tt.tok, got, tt.want)
		}
	}
}

func TestTagSuffixHeuristics(t *testing.T) {
	tg := New()
	tests := []struct {
		tok  string
		want Tag
	}{
		{"quickly", ADV}, {"walking", VERB}, {"organized", VERB},
		{"wonderful", ADJ}, {"education", NOUN}, {"happiness", NOUN},
		{"42", NUM}, {"3.5", NUM}, {"!!!", PUNCT},
	}
	for _, tt := range tests {
		if got := tg.Tag(tt.tok, true); got != tt.want {
			t.Errorf("Tag(%q) = %s, want %s", tt.tok, got, tt.want)
		}
	}
}

func TestTagProperNoun(t *testing.T) {
	tg := New()
	if got := tg.Tag("Beethoven", false); got != PROPN {
		t.Errorf("mid-sentence capitalized word = %s, want PROPN", got)
	}
	// Sentence-initial capitalization is not a PROPN signal on its own.
	if got := tg.Tag("Directions", true); got == PROPN {
		t.Errorf("sentence-initial capitalized common word tagged PROPN")
	}
}

func TestLexiconOverride(t *testing.T) {
	tg := New()
	tg.AddLexicon("bart", PROPN)
	if got := tg.Tag("bart", true); got != PROPN {
		t.Errorf("lexicon override ignored: %s", got)
	}
	// Zero-value tagger also works.
	var zero Tagger
	if got := zero.Tag("the", true); got != DET {
		t.Errorf("zero-value tagger broken: %s", got)
	}
	zero.AddLexicon("foo", VERB)
	if got := zero.Tag("foo", true); got != VERB {
		t.Errorf("AddLexicon on zero value: %s", got)
	}
}

func TestTagSentenceParseTreeExample(t *testing.T) {
	// Paper Figure 3: "Is Uber the best way to our hotel" — approximately.
	tg := New()
	tokens := []string{"Is", "Uber", "the", "best", "way", "to", "our", "hotel"}
	tags := tg.TagSentence(tokens)
	want := map[int]Tag{0: VERB, 1: PROPN, 2: DET, 3: ADJ, 4: NOUN, 5: ADP, 7: NOUN}
	for i, w := range want {
		if tags[i] != w {
			t.Errorf("token %q tagged %s, want %s", tokens[i], tags[i], w)
		}
	}
}

func TestTagSentenceContextRepair(t *testing.T) {
	tg := New()
	tags := tg.TagSentence([]string{"the", "zzyx"})
	if tags[1] != NOUN {
		t.Errorf("unknown word after determiner = %s, want NOUN", tags[1])
	}
}

func TestTagSentenceLength(t *testing.T) {
	tg := New()
	f := func(words []string) bool {
		tags := tg.TagSentence(words)
		if len(tags) != len(words) {
			return false
		}
		for _, tag := range tags {
			if !IsTag(string(tag)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIsTag(t *testing.T) {
	for _, tag := range AllTags {
		if !IsTag(string(tag)) {
			t.Errorf("IsTag(%s) = false", tag)
		}
	}
	if IsTag("shuttle") {
		t.Error("IsTag(shuttle) = true")
	}
	if !IsTag("noun") {
		t.Error("IsTag should be case-insensitive")
	}
}
