package core

import (
	"repro/internal/classifier"
	"repro/internal/hierarchy"
	"repro/internal/index"
)

// This file is the attach/detach contract for external session-like drivers
// — multi-annotator workspaces (internal/workspace) — that own their mutable
// discovery state (positive set, classifier, scores) but attach to the
// engine's shared immutable corpus, index, embedding model and feature
// cache. The hooks mirror exactly what Session uses internally, so a driver
// built on them inherits the engine's concurrency contract: shared state is
// only read under WithIndexRead, and the single post-build index mutation
// (seed-rule materialization) goes through MaterializeRule.

// AttachClassifier returns a fresh classifier over the engine's corpus and
// embedding model, sharing the engine's corpus-level feature cache, exactly
// as NewSession builds one. An explicit Config.Classifier.Seed still wins
// over the given seed, matching NewSession.
func (e *Engine) AttachClassifier(seed int64) *classifier.SentenceClassifier {
	clfCfg := e.cfg.Classifier
	if clfCfg.Seed == 0 {
		clfCfg.Seed = seed
	}
	clf := classifier.NewSentenceClassifier(e.corp, e.emb, clfCfg, e.cfg.ClassifierKind)
	clf.ShareFeatureCache(e.featCache)
	return clf
}

// WithIndexRead runs f with the shared index under the engine's read lock,
// the same lock Session.Next holds while generating hierarchies and scoring
// candidates. f must not retain the index or mutate it.
//
//darwin:lockrank-callback index
func (e *Engine) WithIndexRead(f func(ix *index.Index)) {
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()
	f(e.ix)
}

// HierarchyConfig returns the hierarchy-generation settings sessions use.
func (e *Engine) HierarchyConfig() hierarchy.Config { return e.cfg.hierarchyConfig() }

// LazyScoring returns the §4.5 lazy re-scoring settings (enabled, threshold).
func (e *Engine) LazyScoring() (bool, float64) {
	return e.cfg.LazyScoring, e.cfg.LazyScoreThreshold
}

// OracleSampleSize returns how many example sentences accompany a query.
func (e *Engine) OracleSampleSize() int { return e.cfg.OracleSampleSize }

// DefaultBudget returns the engine's configured oracle query budget.
func (e *Engine) DefaultBudget() int { return e.cfg.Budget }

// DefaultSeed returns the engine's configured random seed.
func (e *Engine) DefaultSeed() int64 { return e.cfg.Seed }

// SetMaterializeHook registers f to be called — under the engine's index
// write lock, in mutation order — with the rule specs of every seed-rule
// materialization (NewSession seed rules and MaterializeRule). A journaling
// layer uses it to record index mutations in the exact order concurrent
// readers observed them, which is what makes replay deterministic: the hook
// and the hierarchy-generating read paths are serialized by the same lock.
// f must not call back into the engine. Pass nil to clear.
//
//darwin:lockrank-callback index
func (e *Engine) SetMaterializeHook(f func(specs []string)) {
	e.ixMu.Lock()
	e.matHook = f
	e.ixMu.Unlock()
}
