package core

import (
	"fmt"
	"math/rand"

	"repro/internal/classifier"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/ingest"
)

// Config returns a copy of the engine's configuration, so a derived engine
// (e.g. a streaming engine over an uploaded corpus) labels under the same
// grammars, kernel and seeds as the dataset it belongs to.
func (e *Engine) Config() Config { return e.cfg }

// NewStreaming prepares a restricted engine over an uploaded corpus for
// batch labeling: the corpus is preprocessed and the grammar registry is
// live, but no embeddings are trained and no candidate index is built —
// rule coverage resolves through the CoverageBits corpus-scan fallback, so
// construction is O(preprocess) instead of O(index build). The result
// supports exactly the batch pipeline surface (ParseRule, CoverageBits,
// CorpusView, CorpusLen); interactive discovery (SuggestRules, sessions)
// needs the full New constructor.
func NewStreaming(c *corpus.Corpus, cfg Config) (*Engine, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	cfg, reg := cfg.withDefaults()
	c.Preprocess(corpus.PreprocessOptions{Parse: cfg.UseParseTrees})

	ix := index.New()
	ix.SetKernel(cfg.Kernel)

	clfCfg := cfg.Classifier
	if clfCfg.Seed == 0 {
		clfCfg.Seed = cfg.Seed
	}
	featCache := classifier.NewFeatureCacheCapped(c.Len(), cfg.FeatureCacheCap)
	clf := classifier.NewSentenceClassifier(c, nil, clfCfg, cfg.ClassifierKind)
	clf.ShareFeatureCache(featCache)

	e := &Engine{
		cfg:       cfg,
		corp:      c,
		reg:       reg,
		ix:        ix,
		clf:       clf,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		featCache: featCache,
		bootLen:   c.Len(),
	}
	e.scores = make([]float64, c.Len())
	for i := range e.scores {
		e.scores[i] = 0.5
	}
	return e, nil
}

// NewStreamingFromBatch builds a streaming engine directly from decoded wire
// sentences (the ingest JSONL shape). The corpus is a pure function of the
// batch, so two engines built from the same batch label identically.
func NewStreamingFromBatch(name string, batch []ingest.Sentence, cfg Config) (*Engine, error) {
	c := corpus.New(name, "uploaded corpus")
	for _, rec := range batch {
		if rec.Label != 0 && rec.Label != 1 {
			return nil, fmt.Errorf("core: uploaded sentence label must be 0 or 1, got %d", rec.Label)
		}
		c.Add(rec.Text, corpus.Label(rec.Label))
	}
	return NewStreaming(c, cfg)
}
