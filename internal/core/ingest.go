package core

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/ingest"
	"repro/internal/sketch"
)

// This file is the engine's live corpus-growth surface. Ingest appends
// sentences under the index write lock — the same lock every reading step
// (hierarchy generation, traversal, classifier retrains) already holds in
// read mode — so growth needs no new synchronization contract: a published
// corpus prefix is immutable, and anything that observes the new length also
// observes the fully indexed new sentences.

// Ingest appends a batch of sentences to the live corpus and incrementally
// extends the index: each new sentence is preprocessed, its derivation
// sketch merged in, and every ad-hoc (seed-rule) node probed for a match. No
// full rebuild happens; the index version bump invalidates every cached
// hierarchy, so sessions regenerate against the grown coverage on their next
// step. It returns the half-open sentence-ID range [from, to) the batch was
// assigned.
//
// Ingested sentences join candidate generation immediately. Two boot-time
// artifacts deliberately do not grow: the embedding model (new tokens fall
// back to bag-of-words features) and the boot-time prune (a heuristic pruned
// at build keeps only the coverage it accumulates from ingested sentences).
// Both approximations vanish on the next full rebuild from the journaled
// corpus.
func (e *Engine) Ingest(batch []ingest.Sentence) (from, to int, err error) {
	e.ixMu.Lock()
	defer e.ixMu.Unlock()
	from = e.corp.Len()
	if len(batch) == 0 {
		return from, from, nil
	}
	for _, rec := range batch {
		if rec.Label != 0 && rec.Label != 1 {
			return from, from, fmt.Errorf("core: ingest: label must be 0 or 1, got %d", rec.Label)
		}
	}
	for _, rec := range batch {
		e.corp.Add(rec.Text, corpus.Label(rec.Label))
	}
	e.corp.PreprocessFrom(from, corpus.PreprocessOptions{Parse: e.cfg.UseParseTrees})
	b := sketch.NewBuilder(e.reg, e.cfg.SketchDepth)
	to = e.corp.Len()
	for id := from; id < to; id++ {
		s := e.corp.Sentence(id)
		e.ix.AddSentence(b.Build(s), s)
	}
	e.ix.BuildEdges()
	for len(e.scores) < to {
		e.scores = append(e.scores, 0.5)
	}
	return from, to, nil
}

// CorpusLen returns the live corpus length under the engine's read lock.
func (e *Engine) CorpusLen() int {
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()
	return e.corp.Len()
}

// BootCorpusLen returns the corpus length at engine construction — the
// prefix loaded from the dataset source rather than ingested.
func (e *Engine) BootCorpusLen() int { return e.bootLen }

// CorpusView returns an immutable snapshot view of the live corpus (see
// corpus.View). Long read paths that run outside the engine locks — exports,
// labeling jobs, baselines — iterate the view instead of the live corpus so
// concurrent ingest never races them.
func (e *Engine) CorpusView() *corpus.Corpus {
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()
	return e.corp.View()
}

// ContainerStats reports how the index's per-node coverage mirrors are
// represented (adaptive array containers, adaptive bitmap containers, dense
// fallbacks), under the engine's read lock.
func (e *Engine) ContainerStats() (arrays, bitmaps, dense int) {
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()
	return e.ix.ContainerStats()
}

// CoverageBytes reports the memory footprint of the index's per-node
// coverage mirrors, under the engine's read lock.
func (e *Engine) CoverageBytes() int {
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()
	return e.ix.CoverageBytes()
}

// IngestedTail returns the boot corpus length and every sentence ingested
// since boot, in wire form. Journal compaction re-emits the tail as one
// consolidated batch so a truncated journal still reconstructs the grown
// corpus.
func (e *Engine) IngestedTail() (from int, batch []ingest.Sentence) {
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()
	from = e.bootLen
	n := e.corp.Len()
	if n <= from {
		return from, nil
	}
	batch = make([]ingest.Sentence, 0, n-from)
	for id := from; id < n; id++ {
		s := e.corp.Sentence(id)
		batch = append(batch, ingest.Sentence{Text: s.Text, Label: int(s.Gold)})
	}
	return from, batch
}
