package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/oracle"
	"repro/internal/tokensregex"
	"repro/internal/treematch"
)

// The ablation tests exercise the design choices DESIGN.md calls out: the
// lazy re-scoring optimization, the choice of grammars, and the candidate
// cleanup pass. They assert only weak properties (the ablated variant still
// works) — the quantitative comparison lives in the root benchmarks.

func ablationCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := datagen.ByName("directions", 0.05, 21)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runWith(t *testing.T, c *corpus.Corpus, mutate func(*Config)) *Report {
	t.Helper()
	cfg := fastConfig("hybrid")
	cfg.Budget = 25
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(RunOptions{SeedRules: []string{"best way to get to"}, Oracle: oracle.NewGroundTruth(c)})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAblationGrammarChoice(t *testing.T) {
	c := ablationCorpus(t)
	tokensOnly := runWith(t, c, func(cfg *Config) {
		cfg.Grammars = []grammar.Grammar{tokensregex.New()}
	})
	both := runWith(t, c, func(cfg *Config) {
		cfg.Grammars = []grammar.Grammar{tokensregex.New(), treematch.New()}
	})
	if eval.CoverageOfSet(c, tokensOnly.Positives) <= 0 {
		t.Error("TokensRegex-only run discovered nothing")
	}
	if eval.CoverageOfSet(c, both.Positives) <= 0 {
		t.Error("TokensRegex+TreeMatch run discovered nothing")
	}
	// With both grammars registered, TreeMatch rules exist in the index.
	e, err := New(c, fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	_ = e
}

func TestAblationCandidateBudget(t *testing.T) {
	c := ablationCorpus(t)
	small := runWith(t, c, func(cfg *Config) { cfg.NumCandidates = 50 })
	large := runWith(t, c, func(cfg *Config) { cfg.NumCandidates = 800 })
	// Figure 13's claim: performance is not overly sensitive to the candidate
	// budget; both runs must make real progress.
	covSmall := eval.CoverageOfSet(c, small.Positives)
	covLarge := eval.CoverageOfSet(c, large.Positives)
	if covSmall <= 0 || covLarge <= 0 {
		t.Errorf("candidate-budget ablation collapsed: small=%.2f large=%.2f", covSmall, covLarge)
	}
}

func TestAblationOracleThreshold(t *testing.T) {
	c := ablationCorpus(t)
	strict := oracle.GroundTruth{Corpus: c, Threshold: 0.95}
	lax := oracle.GroundTruth{Corpus: c, Threshold: 0.5}

	cfg := fastConfig("hybrid")
	cfg.Budget = 25
	runOracle := func(o oracle.Oracle) *Report {
		e, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(RunOptions{SeedRules: []string{"best way to get to"}, Oracle: o})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	strictRep := runOracle(&strict)
	laxRep := runOracle(&lax)
	// A laxer oracle accepts at least as many rules (and usually more),
	// trading precision for coverage.
	if len(laxRep.Accepted) < len(strictRep.Accepted) {
		t.Errorf("lax oracle accepted %d rules, strict accepted %d", len(laxRep.Accepted), len(strictRep.Accepted))
	}
	strictPrec := eval.PrecisionOfSet(c, strictRep.Positives)
	laxPrec := eval.PrecisionOfSet(c, laxRep.Positives)
	if strictPrec+1e-9 < laxPrec-0.2 {
		t.Errorf("strict oracle precision %.2f much lower than lax %.2f", strictPrec, laxPrec)
	}
}

func TestAblationNoEmbeddings(t *testing.T) {
	c := ablationCorpus(t)
	noEmb := runWith(t, c, func(cfg *Config) { cfg.Embedding.Dim = 0 })
	if len(noEmb.Positives) == 0 {
		t.Error("bag-of-words-only configuration discovered nothing")
	}
}
