package core

import (
	"testing"

	"repro/internal/oracle"
)

func TestSuggestRules(t *testing.T) {
	c := testCorpus(t, 0.05)
	cfg := fastConfig("hybrid")
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed P from the standard seed rule's coverage.
	h, err := e.ParseRule("best way to get to")
	if err != nil {
		t.Fatal(err)
	}
	node := e.Index().EnsureHeuristic(h, c)
	positives := map[int]bool{}
	for _, id := range node.Postings {
		positives[id] = true
	}

	suggestions := e.SuggestRules(positives, map[string]bool{h.Key(): true}, 5)
	if len(suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	if len(suggestions) > 5 {
		t.Fatalf("asked for 5 suggestions, got %d", len(suggestions))
	}
	seen := map[string]bool{}
	for i, s := range suggestions {
		if s.Key == h.Key() {
			t.Errorf("excluded rule %q suggested", s.Key)
		}
		if seen[s.Key] {
			t.Errorf("duplicate suggestion %q", s.Key)
		}
		seen[s.Key] = true
		if s.NewCoverage <= 0 || s.Coverage < s.NewCoverage {
			t.Errorf("suggestion %q has inconsistent coverage: %+v", s.Key, s)
		}
		if s.Rule == "" || len(s.SampleIDs) == 0 {
			t.Errorf("suggestion %q missing presentation fields", s.Key)
		}
		if i > 0 && suggestions[i-1].Benefit < s.Benefit {
			t.Errorf("suggestions not sorted by benefit at %d", i)
		}
		if s.AvgBenefit < 0 || s.AvgBenefit > 1 {
			t.Errorf("avg benefit out of range: %+v", s)
		}
	}

	// Parallel-discovery round trip: verify each suggestion with the oracle
	// and feed the accepted ones into a normal run as seed rules.
	gt := oracle.NewGroundTruth(c)
	var acceptedSpecs []string
	for _, s := range suggestions {
		q := oracle.Query{Heuristic: nil, Coverage: e.Index().Coverage(s.Key), Samples: s.SampleIDs}
		if gt.Answer(q) {
			// Strip the grammar prefix to re-parse through the registry.
			acceptedSpecs = append(acceptedSpecs, s.Key)
		}
	}
	if len(acceptedSpecs) > 0 {
		rep, err := e.Run(RunOptions{SeedRules: acceptedSpecs, Oracle: gt})
		if err != nil {
			t.Fatalf("run with suggested seeds: %v", err)
		}
		if len(rep.Positives) == 0 {
			t.Error("run with suggested seeds found nothing")
		}
	}

	// Defaults: nil maps and k<=0.
	def := e.SuggestRules(nil, nil, 0)
	if len(def) == 0 || len(def) > 10 {
		t.Errorf("default suggestion count = %d", len(def))
	}
}
