package core

import (
	"testing"

	"repro/internal/oracle"
)

func TestSuggestRules(t *testing.T) {
	c := testCorpus(t, 0.05)
	cfg := fastConfig("hybrid")
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed P from the standard seed rule's coverage.
	seedKey, cov, err := e.MaterializeRule("best way to get to")
	if err != nil {
		t.Fatal(err)
	}
	positives := map[int]bool{}
	for _, id := range cov {
		positives[id] = true
	}

	suggestions := e.SuggestRules(positives, map[string]bool{seedKey: true}, 5)
	if len(suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	if len(suggestions) > 5 {
		t.Fatalf("asked for 5 suggestions, got %d", len(suggestions))
	}
	seen := map[string]bool{}
	for i, s := range suggestions {
		if s.Key == seedKey {
			t.Errorf("excluded rule %q suggested", s.Key)
		}
		if seen[s.Key] {
			t.Errorf("duplicate suggestion %q", s.Key)
		}
		seen[s.Key] = true
		if s.NewCoverage <= 0 || s.Coverage < s.NewCoverage {
			t.Errorf("suggestion %q has inconsistent coverage: %+v", s.Key, s)
		}
		if s.Rule == "" || len(s.SampleIDs) == 0 {
			t.Errorf("suggestion %q missing presentation fields", s.Key)
		}
		if i > 0 && suggestions[i-1].Benefit < s.Benefit {
			t.Errorf("suggestions not sorted by benefit at %d", i)
		}
		if s.AvgBenefit < 0 || s.AvgBenefit > 1 {
			t.Errorf("avg benefit out of range: %+v", s)
		}
	}

	// Parallel-discovery round trip: verify each suggestion with the oracle
	// and feed the accepted ones into a normal run as seed rules.
	gt := oracle.NewGroundTruth(c)
	var acceptedSpecs []string
	for _, s := range suggestions {
		q := oracle.Query{Heuristic: nil, Coverage: e.Index().Coverage(s.Key), Samples: s.SampleIDs}
		if gt.Answer(q) {
			// Strip the grammar prefix to re-parse through the registry.
			acceptedSpecs = append(acceptedSpecs, s.Key)
		}
	}
	if len(acceptedSpecs) > 0 {
		rep, err := e.Run(RunOptions{SeedRules: acceptedSpecs, Oracle: gt})
		if err != nil {
			t.Fatalf("run with suggested seeds: %v", err)
		}
		if len(rep.Positives) == 0 {
			t.Error("run with suggested seeds found nothing")
		}
	}

	// Defaults: nil maps and k<=0.
	def := e.SuggestRules(nil, nil, 0)
	if len(def) == 0 || len(def) > 10 {
		t.Errorf("default suggestion count = %d", len(def))
	}
}

// TestSuggestRulesExclusion pins the exclusion semantics: excluded keys never
// reappear, and iteratively excluding every returned key walks disjoint
// batches down the ranking until the candidate space is exhausted.
func TestSuggestRulesExclusion(t *testing.T) {
	c := testCorpus(t, 0.05)
	e, err := New(c, fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	_, cov, err := e.MaterializeRule("best way to get to")
	if err != nil {
		t.Fatal(err)
	}
	positives := map[int]bool{}
	for _, id := range cov {
		positives[id] = true
	}

	// The candidate space is bounded by the engine's NumCandidates per
	// generation, so iterative exclusion must run dry within
	// NumCandidates/batch rounds.
	exclude := map[string]bool{}
	seen := map[string]bool{}
	rounds := 0
	for ; rounds < 100; rounds++ {
		batch := e.SuggestRules(positives, exclude, 25)
		if len(batch) == 0 {
			break
		}
		for _, s := range batch {
			if exclude[s.Key] {
				t.Fatalf("round %d suggested excluded key %q", rounds, s.Key)
			}
			if seen[s.Key] {
				t.Fatalf("round %d re-suggested %q from an earlier batch", rounds, s.Key)
			}
			seen[s.Key] = true
			exclude[s.Key] = true
		}
	}
	if rounds < 2 {
		t.Fatalf("expected at least 2 exclusion rounds, got %d (%d keys total)", rounds, len(seen))
	}
	// With every seen key excluded the engine must eventually run dry rather
	// than loop; the empty batch above proves termination.
	if got := e.SuggestRules(positives, exclude, 7); len(got) != 0 {
		t.Errorf("exhausted candidate space still yielded %d suggestions", len(got))
	}

	// An exclusion set that covers nothing is a no-op relative to the
	// baseline ranking.
	base := e.SuggestRules(positives, nil, 5)
	withBogus := e.SuggestRules(positives, map[string]bool{"no-such-rule": true}, 5)
	if len(base) != len(withBogus) {
		t.Fatalf("bogus exclusion changed result size: %d vs %d", len(base), len(withBogus))
	}
	for i := range base {
		if base[i].Key != withBogus[i].Key {
			t.Errorf("bogus exclusion changed ranking at %d: %q vs %q", i, base[i].Key, withBogus[i].Key)
		}
	}
}
