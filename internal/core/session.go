package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bitset"
	"repro/internal/classifier"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/traversal"
)

// Engine-level telemetry: the interactive loop's two verbs, measured at the
// core layer (below HTTP and labeler locking) so solo sessions and legacy Run
// callers are covered alike.
var (
	nextDurations = obs.Default().Histogram("darwin_session_next_duration_seconds",
		"Latency of one Session.Next that did real work (hierarchy reuse or regen + traversal).",
		obs.LatencyBuckets)
	answerDurations = obs.Default().Histogram("darwin_session_answer_duration_seconds",
		"Latency of one Session.Answer (on accept: positive-set merge + classifier retrain + rescore).",
		obs.LatencyBuckets)
)

// SessionOptions configures one interactive discovery session.
type SessionOptions struct {
	// SeedRules are textual rule specifications whose coverage seeds P
	// without consuming budget (Algorithm 1 line 3).
	SeedRules []string
	// SeedPositiveIDs are sentence IDs known to be positive; they seed P
	// directly.
	SeedPositiveIDs []int
	// Budget overrides the engine config's oracle query budget for this
	// session (0 keeps the engine default).
	Budget int
	// Seed overrides the engine config's random seed for this session's
	// sampling and classifier training (0 keeps the engine default), so a
	// session can be replayed deterministically regardless of what other
	// sessions ran before it on the same engine. An explicit
	// Config.Classifier.Seed still wins for classifier training, matching
	// Engine.New.
	Seed int64
	// Traversal, when non-nil, is the traversal strategy this session uses
	// instead of building one from the engine config. The session takes
	// ownership: the instance must not be shared with other sessions.
	Traversal traversal.Traversal
}

// Session is one stepwise run of Algorithm 1 in which the oracle role is
// played by the caller: Next proposes the most promising unqueried rule,
// Answer records the caller's accept/reject verdict and updates the positive
// set and classifier, and Report snapshots the run so far. A Session owns all
// mutable discovery state (positive set, classifier, scores, traversal,
// RNG); it only reads the engine's shared corpus and index, so any number of
// sessions may run concurrently on one engine. A single Session is NOT
// goroutine-safe; callers that share a session across goroutines (e.g. an
// HTTP server) must serialize access themselves.
type Session struct {
	e *Engine

	rng          *rand.Rand
	clf          *classifier.SentenceClassifier
	scores       []float64
	retrainCount *int

	trav traversal.Traversal
	// travOverride, when non-nil, is used instead of building a traversal
	// from the engine config (session option, or Config.CustomTraversal for
	// the legacy Run path).
	travOverride traversal.Traversal
	queried      map[string]bool
	seedKeys     []string
	seeded       bool

	positives map[int]bool
	// posBits mirrors positives as a dense bitset sized to the corpus; it is
	// the set the scoring kernels run against.
	posBits bitset.Set
	report  *Report
	budget  int
	start   time.Time

	// hier is the cached candidate hierarchy. It depends only on the shared
	// index and the positive set, so it stays valid across rejected answers
	// and repeated Next calls; hierPos and hierIxVer record |P| and the
	// index version it was generated against, and hierGens counts
	// regenerations (exposed for tests and benchmarks).
	hier      *hierarchy.Hierarchy
	hierPos   int
	hierIxVer uint64
	hierGens  int

	// Step-latency tracking for the serving layer: duration of each Next
	// that did real work (not a pending replay).
	lastStep  time.Duration
	stepTotal time.Duration
	stepCount int

	pending *pendingSuggestion
	done    bool
}

// pendingSuggestion is the suggestion issued by Next and not yet answered,
// together with the resolution context Answer needs (the full coverage set,
// the heuristic for oracle queries, and the traversal state for Feedback).
type pendingSuggestion struct {
	sug  Suggestion
	heur grammar.Heuristic
	cov  []int
	st   *traversal.State
}

// NewSession starts an interactive discovery session on the engine: it seeds
// the positive set from the options, trains the session's own classifier, and
// prepares the traversal strategy. Seed rules are materialized in the shared
// index under the engine's write lock, so NewSession is safe to call
// concurrently with other sessions' steps. Note that materializing a seed
// rule the index does not contain yet grows the index monotonically: sessions
// stepping afterwards may see a candidate they would not have seen before, so
// bit-exact replay of a session is guaranteed only against the same set of
// materialized rules.
func (e *Engine) NewSession(opts SessionOptions) (*Session, error) {
	if opts.Traversal == nil && e.cfg.CustomTraversal != nil {
		// A stateful shared traversal instance would be stepped by every
		// session at once; sessions must own theirs.
		return nil, fmt.Errorf("core: Config.CustomTraversal cannot back concurrent sessions; pass a fresh SessionOptions.Traversal instead")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = e.cfg.Seed
	}
	clfCfg := e.cfg.Classifier
	if clfCfg.Seed == 0 {
		clfCfg.Seed = seed
	}
	count := 0
	clf := classifier.NewSentenceClassifier(e.corp, e.emb, clfCfg, e.cfg.ClassifierKind)
	s := &Session{
		e:            e,
		rng:          rand.New(rand.NewSource(seed)),
		clf:          clf,
		retrainCount: &count,
		travOverride: opts.Traversal,
	}
	// scores and posBits are sized by init under the index lock, so the
	// length read cannot race a concurrent ingest growing the corpus.
	return s, s.init(opts)
}

// newLegacySession builds the session that backs a batch Engine.Run: it
// aliases the engine's own classifier, score slice, RNG and retrain counter so
// that Engine.Scores and Engine.Classifier keep reflecting the run's state
// (several callers read them from OnQuery callbacks and after Run returns).
func (e *Engine) newLegacySession(opts SessionOptions) (*Session, error) {
	s := &Session{
		e:            e,
		rng:          e.rng,
		clf:          e.clf,
		scores:       e.scores,
		retrainCount: &e.retrainCount,
		travOverride: e.cfg.CustomTraversal,
	}
	return s, s.init(opts)
}

// init seeds the positive set, trains the initial classifier and prepares the
// traversal. It is the body shared by NewSession and newLegacySession.
func (s *Session) init(opts SessionOptions) error {
	e := s.e
	s.start = time.Now()
	s.budget = opts.Budget
	if s.budget <= 0 {
		s.budget = e.cfg.Budget
	}
	s.report = &Report{Positives: make(map[int]bool)}
	s.positives = s.report.Positives
	s.queried = make(map[string]bool)

	// Parse the seed rules before touching shared state so a bad spec leaves
	// the engine untouched.
	heuristics := make([]grammar.Heuristic, 0, len(opts.SeedRules))
	for _, spec := range opts.SeedRules {
		h, err := e.reg.Parse(spec)
		if err != nil {
			return fmt.Errorf("core: seed rule %q: %w", spec, err)
		}
		heuristics = append(heuristics, h)
	}

	// Size the session's score and positive-set mirrors, materialize ad-hoc
	// seed rules (a shared-index mutation) and resolve seed positives in one
	// write-locked section: the corpus length, the seed coverage and the
	// mirror sizes are read under the same lock, so a concurrent ingest
	// cannot grow the corpus between the sizing and the seeding. The index's
	// parent/child edges are left rebuilt so subsequent read-locked steps
	// never trigger a lazy rebuild.
	e.ixMu.Lock()
	// Attach the shared feature cache here rather than at construction: its
	// eligibility check reads the corpus length, which a concurrent ingest
	// grows under this lock.
	s.clf.ShareFeatureCache(e.featCache)
	if s.scores == nil {
		s.scores = make([]float64, e.corp.Len())
		for i := range s.scores {
			s.scores[i] = 0.5
		}
	}
	// The legacy path aliases the engine-owned slice, which Ingest keeps
	// sized to the corpus; for session-owned slices this is a no-op.
	for len(s.scores) < e.corp.Len() {
		s.scores = append(s.scores, 0.5)
	}
	s.posBits = bitset.New(e.corp.Len())
	for _, h := range heuristics {
		node := e.ix.EnsureHeuristic(h, e.corp)
		added := s.addPositives(node.Postings)
		s.seedKeys = append(s.seedKeys, h.Key())
		s.report.Accepted = append(s.report.Accepted, RuleRecord{
			Question:       0,
			Key:            h.Key(),
			Rule:           h.String(),
			Coverage:       node.Count(),
			Accepted:       true,
			CoverageIDs:    append([]int(nil), node.Postings...),
			AddedIDs:       added,
			PositivesAfter: len(s.positives),
		})
	}
	if len(heuristics) > 0 {
		e.ix.BuildEdges()
		if e.matHook != nil {
			e.matHook(opts.SeedRules)
		}
	}
	for _, id := range opts.SeedPositiveIDs {
		if sent := e.corp.Sentence(id); sent != nil {
			s.positives[id] = true
			s.posBits.Add(id)
		}
	}
	e.ixMu.Unlock()
	if len(s.positives) == 0 {
		return fmt.Errorf("core: seeds produced no positive instances (need a seed rule with non-empty coverage or seed positive IDs)")
	}

	// Initial classifier (Algorithm 1 line 4).
	s.retrain()

	s.trav = s.travOverride
	if s.trav == nil {
		s.trav = traversal.New(e.cfg.Traversal, e.cfg.Tau, s.seedKeys...)
	}
	for _, k := range s.seedKeys {
		s.queried[k] = true
	}
	return nil
}

// Next returns the most promising unqueried candidate rule, or ok=false when
// the session is over (budget spent or no candidates left). Calling Next again
// before Answer returns the same pending suggestion. The heavy work — regrow
// the candidate hierarchy around the current positive set and traverse it — is
// done under the engine's read lock, so concurrent sessions step in parallel.
//
// The hierarchy depends only on the shared index and the positive set, and
// the positive set changes only on an accepted answer, so Next after a
// reject reuses the previous hierarchy and merely re-traverses it with the
// current scores; the hierarchy is regenerated only when |P| or the index
// version changed.
//
//darwin:replaypure
func (s *Session) Next() (Suggestion, bool) {
	if s.pending != nil {
		return s.pending.sug, true
	}
	if s.done || s.report.Questions >= s.budget {
		return Suggestion{}, false
	}
	//darwin:replaypure-exempt step-latency metric only; never enters session state
	stepStart := time.Now()
	defer func() {
		//darwin:replaypure-exempt step-latency metric only; never enters session state
		d := time.Since(stepStart)
		s.lastStep = d
		s.stepTotal += d
		s.stepCount++
		nextDurations.Observe(d.Seconds())
	}()
	e := s.e
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()

	// Self-heal after live-corpus growth: extend the session's score vector
	// and positive-set mirror to the current corpus length (new sentences
	// start at the untrained prior 0.5 until the next retrain). The index
	// version bump that accompanied the growth forces the hierarchy
	// regeneration below.
	if n := e.corp.Len(); n > len(s.scores) {
		for len(s.scores) < n {
			s.scores = append(s.scores, 0.5)
		}
		s.posBits = s.posBits.Grow(n)
	}

	// Line 6: (re)generate the candidate hierarchy, unless the cached one is
	// still valid.
	if ixVer := e.ix.Version(); s.hier == nil || s.hierPos != len(s.positives) || s.hierIxVer != ixVer {
		s.hier = hierarchy.GenerateBits(e.ix, s.posBits, e.cfg.hierarchyConfig())
		s.hierPos = len(s.positives)
		s.hierIxVer = ixVer
		s.hierGens++
	}
	h := s.hier
	st := &traversal.State{
		Hierarchy: h,
		Index:     e.ix,
		Positives: s.positives,
		PosBits:   s.posBits,
		Scores:    s.scores,
		Queried:   s.queried,
	}
	// Make sure local strategies know about the seed rules' neighborhoods on
	// the first iteration.
	if !s.seeded {
		for _, k := range s.seedKeys {
			s.trav.Reseed(st, k)
		}
		s.seeded = true
	}

	// Line 7: pick the next rule to verify.
	key, ok := s.trav.Next(st)
	if !ok {
		s.done = true
		return Suggestion{}, false
	}
	s.queried[key] = true
	cov := coverageOf(e.ix, h, key)
	heur := heuristicOf(e.ix, h, key)

	benefit, newCov := st.BenefitNewOf(key)
	avgBenefit := 0.0
	if newCov > 0 {
		avgBenefit = benefit / float64(newCov)
	}
	s.pending = &pendingSuggestion{
		sug: Suggestion{
			Key:         key,
			Rule:        ruleString(heur, key),
			Coverage:    len(cov),
			NewCoverage: newCov,
			Benefit:     benefit,
			AvgBenefit:  avgBenefit,
			SampleIDs:   oracle.SampleCoverage(cov, e.cfg.OracleSampleSize, s.rng),
		},
		heur: heur,
		cov:  cov,
		st:   st,
	}
	return s.pending.sug, true
}

// Answer records the caller's verdict on the pending suggestion (Algorithm 1
// lines 8-12): on accept it extends the positive set with the rule's coverage
// and retrains the classifier; either way it informs the traversal strategy.
// The key must match the pending suggestion's key.
//
//darwin:replaypure
func (s *Session) Answer(key string, accept bool) (RuleRecord, error) {
	//darwin:replaypure-exempt latency metric only; the observed duration never enters session state
	defer answerDurations.ObserveSince(time.Now())
	if s.pending == nil {
		return RuleRecord{}, fmt.Errorf("core: no pending suggestion to answer (call Next first)")
	}
	if key != s.pending.sug.Key {
		return RuleRecord{}, fmt.Errorf("core: answer for %q does not match pending suggestion %q", key, s.pending.sug.Key)
	}
	pending := s.pending
	s.pending = nil

	q := s.report.Questions + 1
	rec := RuleRecord{
		Question: q,
		Key:      key,
		Rule:     pending.sug.Rule,
		Coverage: len(pending.cov),
		Accepted: accept,
	}
	if accept {
		// Lines 9-12: extend P, retrain, rescore.
		rec.CoverageIDs = append([]int(nil), pending.cov...)
		rec.AddedIDs = s.addPositives(pending.cov)
		s.report.Accepted = append(s.report.Accepted, rec)
		s.retrain()
	}
	rec.PositivesAfter = len(s.positives)
	s.report.History = append(s.report.History, rec)
	s.report.Questions = q

	// Feedback may walk the index's parent/child edges.
	s.e.ixMu.RLock()
	s.trav.Feedback(pending.st, key, accept)
	s.e.ixMu.RUnlock()
	return rec, nil
}

// addPositives inserts the coverage IDs into both representations of P (the
// report map and the kernel bitset) and returns the newly added ids.
//
//darwin:replaypure
func (s *Session) addPositives(cov []int) []int {
	added := addCoverage(s.positives, cov)
	for _, id := range added {
		s.posBits.Add(id)
	}
	return added
}

// HierarchyGenerations returns how many times the session regenerated its
// candidate hierarchy. With incremental reuse this equals one per
// positive-set change (plus one per shared-index growth), not one per Next.
func (s *Session) HierarchyGenerations() int { return s.hierGens }

// StepLatency returns the duration of the last Next that did real work and
// the average across all of them (zero before the first step).
func (s *Session) StepLatency() (last, avg time.Duration) {
	if s.stepCount > 0 {
		avg = s.stepTotal / time.Duration(s.stepCount)
	}
	return s.lastStep, avg
}

// Done reports whether the session is over: the budget is spent or the
// traversal ran out of candidates.
func (s *Session) Done() bool {
	return s.pending == nil && (s.done || s.report.Questions >= s.budget)
}

// Budget returns the session's oracle query budget.
func (s *Session) Budget() int { return s.budget }

// Questions returns the number of questions answered so far.
func (s *Session) Questions() int { return s.report.Questions }

// PositivesCount returns |P| without copying the set.
func (s *Session) PositivesCount() int { return len(s.positives) }

// Positives returns a copy of the discovered positive set P.
func (s *Session) Positives() map[int]bool {
	out := make(map[int]bool, len(s.positives))
	for id := range s.positives {
		out[id] = true
	}
	return out
}

// Scores returns the session's current p_s estimates (indexed by sentence
// ID). The slice is owned by the session.
func (s *Session) Scores() []float64 { return s.scores }

// Classifier returns the session's sentence classifier.
func (s *Session) Classifier() *classifier.SentenceClassifier { return s.clf }

// Report returns a snapshot of the run so far: the records share memory with
// the session but the record slices and the positive set are copied, so the
// snapshot stays stable while the session keeps running.
func (s *Session) Report() *Report {
	rep := &Report{
		Accepted:   append([]RuleRecord(nil), s.report.Accepted...),
		History:    append([]RuleRecord(nil), s.report.History...),
		Positives:  s.Positives(),
		Questions:  s.report.Questions,
		IndexBuild: s.e.indexBuild,
		Total:      time.Since(s.start),
	}
	return rep
}

// retrain refits the classifier on the current positive set and refreshes the
// p_s scores, honouring the lazy re-scoring optimization when enabled. It
// runs under the engine's read lock: training and scoring read the shared
// corpus and feature cache, which a concurrent ingest grows under the write
// lock.
func (s *Session) retrain() {
	s.e.ixMu.RLock()
	defer s.e.ixMu.RUnlock()
	if err := s.clf.TrainFromPositives(s.positives); err != nil {
		// Not enough signal to train (should not happen once P is non-empty);
		// keep previous scores.
		return
	}
	*s.retrainCount++
	n := *s.retrainCount
	fullRescore := !s.e.cfg.LazyScoring || n%3 == 1 || n <= 1
	if fullRescore {
		all := s.clf.ScoreAll()
		copy(s.scores, all)
		return
	}
	thr := s.e.cfg.LazyScoreThreshold
	for id := 0; id < len(s.scores) && id < s.e.corp.Len(); id++ {
		if s.scores[id] > thr || s.positives[id] {
			s.scores[id] = s.clf.ScoreOne(id)
		}
	}
}
