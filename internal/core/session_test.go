package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/oracle"
)

// answerWithOracle resolves the session's pending suggestion through an
// oracle exactly as the legacy Run wrapper does.
func answerWithOracle(t *testing.T, s *Session, o oracle.Oracle) (RuleRecord, bool) {
	t.Helper()
	sug, ok := s.Next()
	if !ok {
		return RuleRecord{}, false
	}
	accepted := o.Answer(oracle.Query{
		Heuristic: s.pending.heur,
		Coverage:  s.pending.cov,
		Samples:   sug.SampleIDs,
	})
	rec, err := s.Answer(sug.Key, accepted)
	if err != nil {
		t.Fatalf("Answer(%q): %v", sug.Key, err)
	}
	return rec, true
}

// driveSession plays a whole session against an oracle and returns the keys
// proposed, in order.
func driveSession(t *testing.T, s *Session, o oracle.Oracle) []string {
	t.Helper()
	var keys []string
	for {
		rec, ok := answerWithOracle(t, s, o)
		if !ok {
			break
		}
		keys = append(keys, rec.Key)
	}
	return keys
}

func TestSessionStepwiseAcceptReject(t *testing.T) {
	c := testCorpus(t, 0.06)
	e, err := New(c, fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(SessionOptions{SeedRules: []string{"best way to get to"}, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}

	// Answer before Next is an error.
	if _, err := s.Answer("anything", true); err == nil {
		t.Error("Answer with no pending suggestion should error")
	}

	sug, ok := s.Next()
	if !ok {
		t.Fatal("no first suggestion")
	}
	if sug.Key == "" || sug.Rule == "" || sug.Coverage <= 0 || len(sug.SampleIDs) == 0 {
		t.Fatalf("incomplete suggestion: %+v", sug)
	}
	// Next is idempotent while unanswered.
	again, ok := s.Next()
	if !ok || again.Key != sug.Key {
		t.Errorf("repeated Next returned %q, want pending %q", again.Key, sug.Key)
	}
	// Answering a different key is rejected and keeps the suggestion pending.
	if _, err := s.Answer("not-the-key", true); err == nil {
		t.Error("mismatched answer key should error")
	}

	before := len(s.Positives())
	rec, err := s.Answer(sug.Key, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Accepted || rec.Question != 1 || rec.Key != sug.Key {
		t.Errorf("bad accept record: %+v", rec)
	}
	if got := len(s.Positives()); got < before {
		t.Errorf("positives shrank after accept: %d -> %d", before, got)
	}
	if rec.PositivesAfter != len(s.Positives()) {
		t.Errorf("PositivesAfter = %d, want %d", rec.PositivesAfter, len(s.Positives()))
	}

	// A rejected rule must not change P.
	sug2, ok := s.Next()
	if !ok {
		t.Fatal("no second suggestion")
	}
	before = len(s.Positives())
	rec2, err := s.Answer(sug2.Key, false)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Accepted || len(rec2.AddedIDs) != 0 || len(s.Positives()) != before {
		t.Errorf("reject changed the positive set: %+v", rec2)
	}

	rep := s.Report()
	if rep.Questions != 2 || len(rep.History) != 2 {
		t.Errorf("report questions = %d history = %d", rep.Questions, len(rep.History))
	}
	// The seed rule is recorded as accepted with question number 0.
	if len(rep.Accepted) == 0 || rep.Accepted[0].Question != 0 {
		t.Errorf("seed rule not recorded: %+v", rep.Accepted)
	}
	// The report is a snapshot: mutating it does not affect the session.
	rep.Positives[1<<20] = true
	if s.Positives()[1<<20] {
		t.Error("report snapshot shares the session's positive set")
	}
}

func TestSessionBudgetExhaustion(t *testing.T) {
	c := testCorpus(t, 0.05)
	e, err := New(c, fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 4
	s, err := e.NewSession(SessionOptions{SeedRules: []string{"best way to get to"}, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if s.Budget() != budget {
		t.Fatalf("Budget() = %d, want %d", s.Budget(), budget)
	}
	n := 0
	for {
		sug, ok := s.Next()
		if !ok {
			break
		}
		if _, err := s.Answer(sug.Key, n%2 == 0); err != nil {
			t.Fatal(err)
		}
		n++
		if n > budget {
			t.Fatalf("session exceeded its budget of %d", budget)
		}
	}
	if n != budget {
		t.Fatalf("session stopped after %d questions, want %d", n, budget)
	}
	if !s.Done() {
		t.Error("Done() = false after budget exhaustion")
	}
	if _, ok := s.Next(); ok {
		t.Error("Next returned a suggestion after budget exhaustion")
	}
	if s.Questions() != budget {
		t.Errorf("Questions() = %d, want %d", s.Questions(), budget)
	}
}

func TestSessionDeterministicReplay(t *testing.T) {
	c := testCorpus(t, 0.05)
	e, err := New(c, fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) ([]string, []int) {
		s, err := e.NewSession(SessionOptions{
			SeedRules: []string{"best way to get to"},
			Budget:    8,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		keys := driveSession(t, s, oracle.NewGroundTruth(c))
		return keys, s.Report().PositiveIDs()
	}
	keys1, pos1 := run(42)
	keys2, pos2 := run(42)
	if !reflect.DeepEqual(keys1, keys2) {
		t.Errorf("same seed proposed different rule sequences:\n%v\n%v", keys1, keys2)
	}
	if !reflect.DeepEqual(pos1, pos2) {
		t.Errorf("same seed discovered different positive sets: %d vs %d ids", len(pos1), len(pos2))
	}
}

// TestSessionMatchesRun pins the refactor: a session driven by an oracle step
// by step must reproduce exactly what the batch Run wrapper produces on an
// identical engine.
func TestSessionMatchesRun(t *testing.T) {
	cfg := fastConfig("hybrid")
	cfg.Budget = 12

	cA := testCorpus(t, 0.05)
	eA, err := New(cA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	repRun, err := eA.Run(RunOptions{SeedRules: []string{"best way to get to"}, Oracle: oracle.NewGroundTruth(cA)})
	if err != nil {
		t.Fatal(err)
	}

	cB := testCorpus(t, 0.05)
	eB, err := New(cB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eB.NewSession(SessionOptions{SeedRules: []string{"best way to get to"}})
	if err != nil {
		t.Fatal(err)
	}
	driveSession(t, s, oracle.NewGroundTruth(cB))
	repSess := s.Report()

	if repRun.Questions != repSess.Questions {
		t.Errorf("questions: run=%d session=%d", repRun.Questions, repSess.Questions)
	}
	if !reflect.DeepEqual(repRun.AcceptedRuleStrings(), repSess.AcceptedRuleStrings()) {
		t.Errorf("accepted rules diverged:\nrun:     %v\nsession: %v",
			repRun.AcceptedRuleStrings(), repSess.AcceptedRuleStrings())
	}
	if !reflect.DeepEqual(repRun.PositiveIDs(), repSess.PositiveIDs()) {
		t.Errorf("positive sets diverged: run=%d session=%d ids", len(repRun.PositiveIDs()), len(repSess.PositiveIDs()))
	}
}

// TestConcurrentSessionsSharedEngine runs many sessions in parallel on one
// shared engine (plus concurrent SuggestRules readers); under -race this
// verifies the documented lock discipline.
func TestConcurrentSessionsSharedEngine(t *testing.T) {
	c := testCorpus(t, 0.05)
	cfg := fastConfig("hybrid")
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize both seed rules in the shared index up front: the index
	// grows monotonically when a session seeds a rule it does not contain
	// yet, so pre-materializing keeps every worker's candidate space
	// identical regardless of interleaving.
	for _, rule := range []string{"best way to get to", "shuttle to"} {
		if _, err := e.NewSession(SessionOptions{SeedRules: []string{rule}, Budget: 1}); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	type result struct {
		keys []string
		pos  []int
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the sessions share a seed (their results must agree); the
			// rest vary seed rules and random seeds to shake the lock paths.
			seedRule := "best way to get to"
			if w%4 == 3 {
				seedRule = "shuttle to"
			}
			s, err := e.NewSession(SessionOptions{
				SeedRules: []string{seedRule},
				Budget:    5,
				Seed:      int64(1 + w%2),
			})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			var keys []string
			o := oracle.NewGroundTruth(c)
			for {
				rec, ok := answerWithOracle(t, s, o)
				if !ok {
					break
				}
				keys = append(keys, rec.Key)
			}
			results[w] = result{keys: keys, pos: s.Report().PositiveIDs()}
		}(w)
	}
	// Concurrent read-only suggesters against the same engine.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if sugs := e.SuggestRules(nil, nil, 5); len(sugs) == 0 {
					t.Error("SuggestRules returned nothing")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Sessions 0 and 4 ran the identical configuration concurrently; session
	// isolation demands identical outcomes.
	if !reflect.DeepEqual(results[0], results[4]) {
		t.Errorf("identically-seeded concurrent sessions diverged:\n%v\n%v", results[0], results[4])
	}
	for w, r := range results {
		if len(r.pos) == 0 {
			t.Errorf("worker %d discovered no positives", w)
		}
	}
}

func TestSessionSeedPositiveIDsAndErrors(t *testing.T) {
	c := testCorpus(t, 0.04)
	e, err := New(c, fastConfig("local"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewSession(SessionOptions{}); err == nil {
		t.Error("empty seeds should error")
	}
	if _, err := e.NewSession(SessionOptions{SeedRules: []string{"@@@ ???"}}); err == nil {
		t.Error("unparseable seed rule should error")
	}
	pos := c.Positives()
	if len(pos) < 2 {
		t.Fatal("test corpus has too few positives")
	}
	s, err := e.NewSession(SessionOptions{SeedPositiveIDs: []int{pos[0], pos[1]}, Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Positives()); got != 2 {
		t.Fatalf("seeded positives = %d, want 2", got)
	}
	keys := driveSession(t, s, oracle.NewGroundTruth(c))
	if len(keys) == 0 {
		t.Error("no questions asked from positive-ID seeds")
	}
}

// TestSessionCustomTraversal pins the ownership rule: a shared stateful
// Config.CustomTraversal is rejected for sessions (it would be stepped by all
// of them at once), while a per-session SessionOptions.Traversal works.
func TestSessionCustomTraversal(t *testing.T) {
	c := testCorpus(t, 0.04)
	cfg := fastConfig("hybrid")
	cfg.CustomTraversal = maxCoverageTraversal{}
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewSession(SessionOptions{SeedRules: []string{"shuttle to"}}); err == nil {
		t.Error("NewSession with a shared Config.CustomTraversal should error")
	}
	s, err := e.NewSession(SessionOptions{
		SeedRules: []string{"shuttle to"},
		Traversal: maxCoverageTraversal{},
		Budget:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if keys := driveSession(t, s, oracle.NewGroundTruth(c)); len(keys) == 0 {
		t.Error("session with per-session traversal asked no questions")
	}
	// The legacy Run path still honours Config.CustomTraversal.
	if _, err := e.Run(RunOptions{SeedRules: []string{"shuttle to"}, Oracle: oracle.NewGroundTruth(c)}); err != nil {
		t.Fatalf("legacy Run with CustomTraversal: %v", err)
	}
}
