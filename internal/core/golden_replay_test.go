package core

import (
	"fmt"
	"reflect"
	"testing"
)

// goldenStep is one oracle interaction of the pinned pre-change session.
type goldenStep struct {
	key      string
	accept   bool
	coverage int
	benefit  string // Benefit formatted to 6 decimals (bit-identical floats)
}

// goldenTranscript was recorded from the map-based engine BEFORE the bitset
// kernel and incremental hierarchy reuse landed (directions corpus at scale
// 0.05, datagen seed 7, fastConfig("hybrid"), session seed 42, budget 12,
// seed rule "best way to get to", ground-truth oracle). The bitset engine
// must reproduce it byte for byte: same suggestion sequence, same coverage
// counts, same benefit floats, same final positive set.
var goldenTranscript = []goldenStep{
	{"tokensregex:way to get to", true, 6, "1.356743"},
	{"tokensregex:best way to get", true, 5, "1.735721"},
	{"tokensregex:best way to", false, 67, "26.558675"},
	{"tokensregex:the best way to", false, 67, "26.558675"},
	{"tokensregex:best way to order", false, 25, "15.162241"},
	{"tokensregex:best way to check", false, 37, "11.396434"},
	{"tokensregex:to get to", true, 6, "0.000000"},
	{"tokensregex:get to", true, 6, "0.000000"},
	{"tokensregex:get", false, 51, "5.147334"},
	{"tokensregex:i get", false, 42, "5.147334"},
	{"tokensregex:can i get", false, 41, "4.689860"},
	{"tokensregex:can i get a", false, 41, "4.689860"},
}

var goldenPositives = []int{7, 75, 210, 211, 246, 262, 462, 499, 587}

// TestSessionMatchesGoldenReplay pins bitset/map equivalence end to end: the
// session replays the recorded answers and must propose exactly the recorded
// rules with exactly the recorded statistics.
func TestSessionMatchesGoldenReplay(t *testing.T) {
	c := testCorpus(t, 0.05)
	e, err := New(c, fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(SessionOptions{SeedRules: []string{"best way to get to"}, Budget: 12, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range goldenTranscript {
		sug, ok := s.Next()
		if !ok {
			t.Fatalf("step %d: session ended early (want %q)", i, want.key)
		}
		if sug.Key != want.key {
			t.Fatalf("step %d: proposed %q, golden transcript has %q", i, sug.Key, want.key)
		}
		if sug.Coverage != want.coverage {
			t.Errorf("step %d (%s): coverage %d, want %d", i, sug.Key, sug.Coverage, want.coverage)
		}
		if got := fmt.Sprintf("%.6f", sug.Benefit); got != want.benefit {
			t.Errorf("step %d (%s): benefit %s, want %s", i, sug.Key, got, want.benefit)
		}
		if _, err := s.Answer(sug.Key, want.accept); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("session continued past the golden budget")
	}
	if got := s.Report().PositiveIDs(); !reflect.DeepEqual(got, goldenPositives) {
		t.Errorf("final positives %v, golden %v", got, goldenPositives)
	}
}

// TestHierarchyReuseAcrossRejects pins the incremental-reuse contract: the
// candidate hierarchy is regenerated only when the positive set changes (an
// accepted answer) or the shared index grows — never for rejects or repeated
// Next calls. A reject-heavy session (the acceptance scenario: ~20 rejects,
// 1 accept) must invoke hierarchy generation exactly once per positive-set
// change.
func TestHierarchyReuseAcrossRejects(t *testing.T) {
	c := testCorpus(t, 0.06)
	e, err := New(c, fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(SessionOptions{SeedRules: []string{"best way to get to"}, Budget: 40})
	if err != nil {
		t.Fatal(err)
	}
	if s.HierarchyGenerations() != 0 {
		t.Fatalf("hierarchy generated before first Next: %d", s.HierarchyGenerations())
	}

	// One accept (the first suggestion that actually adds coverage), then
	// rejects only.
	accepts, rejects := 0, 0
	for rejects < 20 {
		sug, ok := s.Next()
		if !ok {
			break
		}
		// Repeated Next must serve the pending suggestion without touching
		// the hierarchy.
		gens := s.HierarchyGenerations()
		if again, _ := s.Next(); again.Key != sug.Key || s.HierarchyGenerations() != gens {
			t.Fatal("repeated Next regenerated the hierarchy or changed the suggestion")
		}
		accept := accepts == 0 && sug.NewCoverage > 0
		if _, err := s.Answer(sug.Key, accept); err != nil {
			t.Fatal(err)
		}
		if accept {
			accepts++
		} else {
			rejects++
		}
	}
	if accepts != 1 || rejects < 20 {
		t.Fatalf("scenario not reached: %d accepts, %d rejects", accepts, rejects)
	}
	// Generations: one for the first Next, one after the accepted answer
	// changed P. Rejects must not regenerate.
	if got := s.HierarchyGenerations(); got != 1+accepts {
		t.Errorf("hierarchy generated %d times over %d questions; want %d (one initial + one per accept)",
			got, accepts+rejects, 1+accepts)
	}

	// Growing the shared index (another session materializing a rule beyond
	// the sketch depth, so it is genuinely new) invalidates the cached
	// hierarchy on the next step.
	gens := s.HierarchyGenerations()
	ixVer := e.Index().Version()
	if _, _, err := e.MaterializeRule("what is the best way"); err != nil {
		t.Fatal(err)
	}
	if e.Index().Version() == ixVer {
		t.Fatal("sanity: materialization did not grow the index")
	}
	if sug, ok := s.Next(); ok {
		if _, err := s.Answer(sug.Key, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.HierarchyGenerations(); got != gens+1 {
		t.Errorf("index growth did not invalidate the cached hierarchy: %d -> %d generations", gens, got)
	}
}
