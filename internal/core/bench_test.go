package core

import (
	"sync"
	"testing"

	"repro/internal/classifier"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/grammar"
	"repro/internal/tokensregex"
)

// benchConfig mirrors the interactive serving configuration: the paper's 10K
// candidate hierarchy over a TokensRegex index, embeddings disabled so the
// setup cost stays in index construction and the measured cost in the
// hierarchy + traversal hot path.
func benchConfig() Config {
	return Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     4,
		MaxRuleDepth:    8,
		NumCandidates:   10000,
		MinRuleCoverage: 2,
		Budget:          1 << 30,
		Traversal:       "hybrid",
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 6, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Seed:            1,
	}
}

var (
	benchOnce   sync.Once
	benchEng    *Engine
	benchEngErr error
	benchCorp   *corpus.Corpus
)

// benchEngine builds (once) a shared engine over the bundled datagen
// directions corpus at half scale (~7.6K sentences).
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	benchOnce.Do(func() {
		benchCorp, benchEngErr = datagen.ByName("directions", 0.5, 7)
		if benchEngErr != nil {
			return
		}
		benchEng, benchEngErr = New(benchCorp, benchConfig())
	})
	if benchEngErr != nil {
		b.Fatal(benchEngErr)
	}
	return benchEng
}

// BenchmarkSessionNext measures one interactive step (Next + Answer) on a
// reject-heavy session, the hot path an annotator waits on. Roughly one in
// seven suggestions is accepted, matching observed interactive accept rates.
func BenchmarkSessionNext(b *testing.B) {
	e := benchEngine(b)
	newSession := func() *Session {
		s, err := e.NewSession(SessionOptions{SeedRules: []string{"best way to get to"}, Budget: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s := newSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sug, ok := s.Next()
		if !ok {
			b.StopTimer()
			s = newSession()
			b.StartTimer()
			continue
		}
		if _, err := s.Answer(sug.Key, i%7 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionNextRejects measures the pure reject path: after the first
// suggestion, every answer is NO, so the positive set never changes. This is
// the path incremental hierarchy reuse targets.
func BenchmarkSessionNextRejects(b *testing.B) {
	e := benchEngine(b)
	newSession := func() *Session {
		s, err := e.NewSession(SessionOptions{SeedRules: []string{"best way to get to"}, Budget: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s := newSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sug, ok := s.Next()
		if !ok {
			b.StopTimer()
			s = newSession()
			b.StartTimer()
			continue
		}
		if _, err := s.Answer(sug.Key, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuggestRules measures the parallel-discovery scoring pass.
func BenchmarkSuggestRules(b *testing.B) {
	e := benchEngine(b)
	key, cov, err := e.MaterializeRule("best way to get to")
	if err != nil {
		b.Fatal(err)
	}
	_ = key
	positives := map[int]bool{}
	for _, id := range cov {
		positives[id] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sugs := e.SuggestRules(positives, nil, 10); len(sugs) == 0 {
			b.Fatal("no suggestions")
		}
	}
}
