package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/classifier"
	"repro/internal/corpus"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/oracle"
	"repro/internal/sketch"
	"repro/internal/traversal"
)

// RuleRecord describes one oracle interaction (or seed rule) of a run.
type RuleRecord struct {
	// Question is the 1-based question number (0 for seed rules, which do
	// not consume budget).
	Question int
	// Key and Rule identify the heuristic.
	Key  string
	Rule string
	// Coverage is |C_r|.
	Coverage int
	// Accepted is the oracle's answer.
	Accepted bool
	// CoverageIDs is the full coverage set C_r of accepted rules (nil for
	// rejected rules, to keep reports small).
	CoverageIDs []int
	// AddedIDs are the sentence IDs newly added to P by this rule (empty for
	// rejected rules).
	AddedIDs []int
	// PositivesAfter is |P| after processing this record.
	PositivesAfter int
}

// Report is the result of one Darwin run.
type Report struct {
	// Accepted lists the accepted rules in acceptance order (seeds included).
	Accepted []RuleRecord
	// History lists every oracle query in order (seeds excluded).
	History []RuleRecord
	// Positives is the final discovered positive set P.
	Positives map[int]bool
	// Questions is the number of oracle queries spent.
	Questions int
	// IndexBuild and Total are wall-clock timings of the run.
	IndexBuild time.Duration
	Total      time.Duration
}

// AcceptedRuleStrings returns the accepted rules as display strings.
func (r *Report) AcceptedRuleStrings() []string {
	out := make([]string, len(r.Accepted))
	for i, rec := range r.Accepted {
		out[i] = rec.Rule
	}
	return out
}

// PositiveIDs returns the discovered positive set as a sorted slice.
func (r *Report) PositiveIDs() []int {
	out := make([]int, 0, len(r.Positives))
	for id := range r.Positives {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Engine is a Darwin instance bound to one corpus.
type Engine struct {
	cfg  Config
	corp *corpus.Corpus
	reg  *grammar.Registry
	ix   *index.Index
	emb  *embedding.Model
	clf  *classifier.SentenceClassifier
	rng  *rand.Rand

	scores       []float64
	retrainCount int
	indexBuild   time.Duration
}

// New prepares a Darwin engine: it preprocesses the corpus, trains word
// embeddings, builds and prunes the index, and initializes the classifier.
func New(c *corpus.Corpus, cfg Config) (*Engine, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	cfg, reg := cfg.withDefaults()

	c.Preprocess(corpus.PreprocessOptions{Parse: cfg.UseParseTrees})

	var emb *embedding.Model
	if cfg.Embedding.Dim > 0 {
		embCfg := cfg.Embedding
		if embCfg.Seed == 0 {
			embCfg.Seed = cfg.Seed
		}
		emb = embedding.Train(c.TokenizedSentences(), embCfg)
	}

	start := time.Now()
	builder := sketch.NewBuilder(reg, cfg.SketchDepth)
	ix := index.Build(c, builder)
	ix.Prune(cfg.MinRuleCoverage)
	indexBuild := time.Since(start)

	clfCfg := cfg.Classifier
	if clfCfg.Seed == 0 {
		clfCfg.Seed = cfg.Seed
	}
	clf := classifier.NewSentenceClassifier(c, emb, clfCfg, cfg.ClassifierKind)

	e := &Engine{
		cfg:        cfg,
		corp:       c,
		reg:        reg,
		ix:         ix,
		emb:        emb,
		clf:        clf,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		indexBuild: indexBuild,
	}
	e.scores = make([]float64, c.Len())
	for i := range e.scores {
		e.scores[i] = 0.5
	}
	return e, nil
}

// Corpus returns the engine's corpus.
func (e *Engine) Corpus() *corpus.Corpus { return e.corp }

// Index returns the engine's heuristic index.
func (e *Engine) Index() *index.Index { return e.ix }

// Registry returns the engine's grammar registry.
func (e *Engine) Registry() *grammar.Registry { return e.reg }

// Scores returns the engine's current p_s estimates (indexed by sentence ID).
// The slice is owned by the engine.
func (e *Engine) Scores() []float64 { return e.scores }

// Classifier returns the engine's sentence classifier.
func (e *Engine) Classifier() *classifier.SentenceClassifier { return e.clf }

// ParseRule parses a textual rule specification using the engine's grammars.
func (e *Engine) ParseRule(spec string) (grammar.Heuristic, error) {
	return e.reg.Parse(spec)
}

// RunOptions configures one discovery run.
type RunOptions struct {
	// SeedRules are textual rule specifications (e.g. "best way to get to" or
	// "treematch:caused/by"); their coverage seeds P without consuming
	// budget.
	SeedRules []string
	// SeedPositiveIDs are sentence IDs known to be positive; they seed P
	// directly (the "couple of positive sentences" initialization).
	SeedPositiveIDs []int
	// Oracle answers rule-verification queries. Required.
	Oracle oracle.Oracle
	// OnQuery, if non-nil, is called after every oracle query with the
	// record and the engine (whose classifier scores reflect the query's
	// outcome). Experiments use it to capture per-question curves.
	OnQuery func(rec RuleRecord, e *Engine)
}

// Run executes Algorithm 1: starting from the seed rules / seed positives it
// iteratively generates a candidate hierarchy, selects the most promising
// rule with the configured traversal strategy, queries the oracle, and
// updates the positive set and classifier, until the query budget is spent or
// no candidates remain.
func (e *Engine) Run(opts RunOptions) (*Report, error) {
	if opts.Oracle == nil {
		return nil, fmt.Errorf("core: RunOptions.Oracle is required")
	}
	start := time.Now()
	report := &Report{Positives: make(map[int]bool)}
	positives := report.Positives

	// Seed P from rules and/or positive sentence IDs (Algorithm 1 line 3).
	var seedKeys []string
	for _, spec := range opts.SeedRules {
		h, err := e.reg.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("core: seed rule %q: %w", spec, err)
		}
		node := e.ix.EnsureHeuristic(h, e.corp)
		added := e.addCoverage(positives, node.Postings)
		seedKeys = append(seedKeys, h.Key())
		report.Accepted = append(report.Accepted, RuleRecord{
			Question:       0,
			Key:            h.Key(),
			Rule:           h.String(),
			Coverage:       node.Count(),
			Accepted:       true,
			CoverageIDs:    append([]int(nil), node.Postings...),
			AddedIDs:       added,
			PositivesAfter: len(positives),
		})
	}
	for _, id := range opts.SeedPositiveIDs {
		if s := e.corp.Sentence(id); s != nil {
			positives[id] = true
		}
	}
	if len(positives) == 0 {
		return nil, fmt.Errorf("core: seeds produced no positive instances (need a seed rule with non-empty coverage or seed positive IDs)")
	}

	// Initial classifier (Algorithm 1 line 4).
	e.retrain(positives)

	trav := e.cfg.CustomTraversal
	if trav == nil {
		trav = traversal.New(e.cfg.Traversal, e.cfg.Tau, seedKeys...)
	}
	queried := make(map[string]bool)
	for _, k := range seedKeys {
		queried[k] = true
	}

	hierCfg := e.cfg.hierarchyConfig()
	for q := 1; q <= e.cfg.Budget; q++ {
		// Line 6: (re)generate the candidate hierarchy.
		h := hierarchy.Generate(e.ix, positives, hierCfg)
		st := &traversal.State{
			Hierarchy: h,
			Index:     e.ix,
			Positives: positives,
			Scores:    e.scores,
			Queried:   queried,
		}
		// Make sure local strategies know about the seed rules' neighborhoods
		// on the first iteration.
		if q == 1 {
			for _, k := range seedKeys {
				trav.Reseed(st, k)
			}
		}

		// Line 7: pick the next rule to verify.
		key, ok := trav.Next(st)
		if !ok {
			break
		}
		queried[key] = true
		cov := e.coverageOf(h, key)
		heur := e.heuristicOf(h, key)

		// Line 8: ask the oracle.
		query := oracle.Query{
			Heuristic: heur,
			Coverage:  cov,
			Samples:   oracle.SampleCoverage(cov, e.cfg.OracleSampleSize, e.rng),
		}
		accepted := opts.Oracle.Answer(query)

		rec := RuleRecord{
			Question: q,
			Key:      key,
			Rule:     ruleString(heur, key),
			Coverage: len(cov),
			Accepted: accepted,
		}
		if accepted {
			// Lines 9-12: extend P, retrain, rescore.
			rec.CoverageIDs = append([]int(nil), cov...)
			rec.AddedIDs = e.addCoverage(positives, cov)
			report.Accepted = append(report.Accepted, rec)
			e.retrain(positives)
		}
		rec.PositivesAfter = len(positives)
		report.History = append(report.History, rec)
		report.Questions = q

		trav.Feedback(st, key, accepted)
		if opts.OnQuery != nil {
			opts.OnQuery(rec, e)
		}
	}

	report.IndexBuild = e.indexBuild
	report.Total = time.Since(start)
	return report, nil
}

// Suggestion is one candidate rule proposed by SuggestRules, with the
// statistics an annotator (or a downstream tool) needs to judge it.
type Suggestion struct {
	Key         string
	Rule        string
	Coverage    int
	NewCoverage int
	Benefit     float64
	AvgBenefit  float64
	SampleIDs   []int
}

// SuggestRules returns the k most promising unqueried candidate rules given
// the already-discovered positive set, ranked by benefit. It supports the
// paper's parallel-discovery mode: the returned suggestions can be dispatched
// to different annotators simultaneously, and their answers fed back through
// a subsequent Run (seeding it with the accepted rules) or used directly.
func (e *Engine) SuggestRules(positives map[int]bool, exclude map[string]bool, k int) []Suggestion {
	if k <= 0 {
		k = 10
	}
	if positives == nil {
		positives = map[int]bool{}
	}
	if exclude == nil {
		exclude = map[string]bool{}
	}
	h := hierarchy.Generate(e.ix, positives, e.cfg.hierarchyConfig())
	var out []Suggestion
	for _, key := range h.NonRootKeys() {
		if exclude[key] {
			continue
		}
		n := h.Node(key)
		newCov := 0
		for _, id := range n.Coverage {
			if !positives[id] {
				newCov++
			}
		}
		if newCov == 0 {
			continue
		}
		benefit := traversal.Benefit(n.Coverage, positives, e.scores)
		out = append(out, Suggestion{
			Key:         key,
			Rule:        n.Heuristic.String(),
			Coverage:    len(n.Coverage),
			NewCoverage: newCov,
			Benefit:     benefit,
			AvgBenefit:  traversal.AvgBenefit(n.Coverage, positives, e.scores),
			SampleIDs:   oracle.SampleCoverage(n.Coverage, e.cfg.OracleSampleSize, e.rng),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benefit != out[j].Benefit {
			return out[i].Benefit > out[j].Benefit
		}
		if out[i].NewCoverage != out[j].NewCoverage {
			return out[i].NewCoverage > out[j].NewCoverage
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// addCoverage inserts the coverage IDs into P and returns the newly added
// ones (sorted).
func (e *Engine) addCoverage(positives map[int]bool, cov []int) []int {
	var added []int
	for _, id := range cov {
		if !positives[id] {
			positives[id] = true
			added = append(added, id)
		}
	}
	sort.Ints(added)
	return added
}

// coverageOf resolves a rule key's coverage from the hierarchy or the index.
func (e *Engine) coverageOf(h *hierarchy.Hierarchy, key string) []int {
	if n := h.Node(key); n != nil {
		return n.Coverage
	}
	return e.ix.Coverage(key)
}

// heuristicOf resolves a rule key's heuristic from the hierarchy or the index.
func (e *Engine) heuristicOf(h *hierarchy.Hierarchy, key string) grammar.Heuristic {
	if n := h.Node(key); n != nil {
		return n.Heuristic
	}
	if n := e.ix.Node(key); n != nil {
		return n.Heuristic
	}
	return nil
}

func ruleString(h grammar.Heuristic, key string) string {
	if h != nil {
		return h.String()
	}
	return key
}

// retrain refits the classifier on the current positive set and refreshes the
// p_s scores, honouring the lazy re-scoring optimization when enabled.
func (e *Engine) retrain(positives map[int]bool) {
	if err := e.clf.TrainFromPositives(positives); err != nil {
		// Not enough signal to train (should not happen once P is non-empty);
		// keep previous scores.
		return
	}
	e.retrainCount++
	fullRescore := !e.cfg.LazyScoring || e.retrainCount%3 == 1 || e.retrainCount <= 1
	if fullRescore {
		all := e.clf.ScoreAll()
		copy(e.scores, all)
		return
	}
	thr := e.cfg.LazyScoreThreshold
	for id := 0; id < e.corp.Len(); id++ {
		if e.scores[id] > thr || positives[id] {
			e.scores[id] = e.clf.ScoreOne(id)
		}
	}
}
