package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/classifier"
	"repro/internal/corpus"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/oracle"
	"repro/internal/sketch"
	"repro/internal/traversal"
)

// RuleRecord describes one oracle interaction (or seed rule) of a run.
type RuleRecord struct {
	// Question is the 1-based question number (0 for seed rules, which do
	// not consume budget).
	Question int
	// Key and Rule identify the heuristic.
	Key  string
	Rule string
	// Coverage is |C_r|.
	Coverage int
	// Accepted is the oracle's answer.
	Accepted bool
	// CoverageIDs is the full coverage set C_r of accepted rules (nil for
	// rejected rules, to keep reports small).
	CoverageIDs []int
	// AddedIDs are the sentence IDs newly added to P by this rule (empty for
	// rejected rules).
	AddedIDs []int
	// PositivesAfter is |P| after processing this record.
	PositivesAfter int
}

// Report is the result of one Darwin run.
type Report struct {
	// Accepted lists the accepted rules in acceptance order (seeds included).
	Accepted []RuleRecord
	// History lists every oracle query in order (seeds excluded).
	History []RuleRecord
	// Positives is the final discovered positive set P.
	Positives map[int]bool
	// Questions is the number of oracle queries spent.
	Questions int
	// IndexBuild and Total are wall-clock timings of the run.
	IndexBuild time.Duration
	Total      time.Duration
}

// AcceptedRuleStrings returns the accepted rules as display strings.
func (r *Report) AcceptedRuleStrings() []string {
	out := make([]string, len(r.Accepted))
	for i, rec := range r.Accepted {
		out[i] = rec.Rule
	}
	return out
}

// PositiveIDs returns the discovered positive set as a sorted slice.
func (r *Report) PositiveIDs() []int {
	out := make([]int, 0, len(r.Positives))
	for id := range r.Positives {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Engine is a Darwin instance bound to one corpus.
//
// # Goroutine safety
//
// After New returns, the corpus, grammar registry, embedding model and index
// are treated as immutable shared state, with one exception: materializing an
// ad-hoc seed rule inserts a node into the index. That single mutation is
// guarded by ixMu (write-locked in Session init, read-locked around every
// index-reading step), so these methods are safe for concurrent use:
//
//   - NewSession, and all methods of distinct Sessions
//   - SuggestRules, MaterializeRule
//   - ParseRule, Corpus, Index, Registry (but mutating methods of the
//     returned Index — EnsureHeuristic, Prune, Merge — must never be called
//     while sessions are live; use MaterializeRule instead)
//
// Run, Scores and Classifier belong to the legacy single-run mode: they share
// the engine-owned classifier/score state so callbacks and post-run
// inspection keep working, and therefore must not be used concurrently with
// anything else on the same engine. A single Session is likewise owned by one
// caller at a time.
type Engine struct {
	cfg  Config
	corp *corpus.Corpus
	reg  *grammar.Registry
	ix   *index.Index
	emb  *embedding.Model
	clf  *classifier.SentenceClassifier
	rng  *rand.Rand
	// featCache is the corpus-wide sparse feature cache shared by every
	// session's classifier (features depend only on the immutable corpus and
	// embedding model, and the cache is safe for concurrent use).
	featCache *classifier.FeatureCache

	// ixMu guards the index against the one post-build mutation
	// (EnsureHeuristic for seed rules) racing hierarchy generation and
	// traversal reads in concurrent sessions.
	//darwin:lockrank index
	ixMu sync.RWMutex
	// rngMu serializes the engine-owned RNG, which SuggestRules uses for
	// sampling presentation sentences.
	rngMu sync.Mutex
	// matHook, when set, observes seed-rule materializations under the index
	// write lock (see SetMaterializeHook).
	matHook func(specs []string)

	scores       []float64
	retrainCount int
	indexBuild   time.Duration

	// bootLen is the corpus length at engine construction. The journal
	// compaction path uses it to re-emit the ingested tail [bootLen, Len) as
	// one consolidated batch.
	bootLen int
}

// New prepares a Darwin engine: it preprocesses the corpus, trains word
// embeddings, builds and prunes the index, and initializes the classifier.
func New(c *corpus.Corpus, cfg Config) (*Engine, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	cfg, reg := cfg.withDefaults()

	c.Preprocess(corpus.PreprocessOptions{Parse: cfg.UseParseTrees})

	var emb *embedding.Model
	if cfg.Embedding.Dim > 0 {
		embCfg := cfg.Embedding
		if embCfg.Seed == 0 {
			embCfg.Seed = cfg.Seed
		}
		emb = embedding.Train(c.TokenizedSentences(), embCfg)
	}

	start := time.Now()
	builder := sketch.NewBuilder(reg, cfg.SketchDepth)
	ix := index.Build(c, builder)
	ix.SetKernel(cfg.Kernel)
	ix.Prune(cfg.MinRuleCoverage)
	indexBuild := time.Since(start)

	clfCfg := cfg.Classifier
	if clfCfg.Seed == 0 {
		clfCfg.Seed = cfg.Seed
	}
	featCache := classifier.NewFeatureCacheCapped(c.Len(), cfg.FeatureCacheCap)
	clf := classifier.NewSentenceClassifier(c, emb, clfCfg, cfg.ClassifierKind)
	clf.ShareFeatureCache(featCache)

	e := &Engine{
		cfg:        cfg,
		corp:       c,
		reg:        reg,
		ix:         ix,
		emb:        emb,
		clf:        clf,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		featCache:  featCache,
		indexBuild: indexBuild,
		bootLen:    c.Len(),
	}
	e.scores = make([]float64, c.Len())
	for i := range e.scores {
		e.scores[i] = 0.5
	}
	return e, nil
}

// Corpus returns the engine's corpus.
func (e *Engine) Corpus() *corpus.Corpus { return e.corp }

// Index returns the engine's heuristic index.
func (e *Engine) Index() *index.Index { return e.ix }

// Registry returns the engine's grammar registry.
func (e *Engine) Registry() *grammar.Registry { return e.reg }

// Scores returns the engine's current p_s estimates (indexed by sentence ID)
// as updated by the legacy Run mode; sessions created with NewSession own
// their scores and do not touch this slice. The slice is owned by the engine.
func (e *Engine) Scores() []float64 { return e.scores }

// Classifier returns the engine's sentence classifier (trained by the legacy
// Run mode; sessions created with NewSession own their own classifier).
func (e *Engine) Classifier() *classifier.SentenceClassifier { return e.clf }

// ParseRule parses a textual rule specification using the engine's grammars.
func (e *Engine) ParseRule(spec string) (grammar.Heuristic, error) {
	return e.reg.Parse(spec)
}

// MaterializeRule parses a rule specification, materializes it in the shared
// index under the engine's write lock, and returns its key and coverage (a
// copy). It is the concurrency-safe way to resolve an ad-hoc rule's coverage
// — e.g. to seed the positives map passed to SuggestRules — without going
// through Index().EnsureHeuristic, which must not be called while sessions
// are stepping.
func (e *Engine) MaterializeRule(spec string) (string, []int, error) {
	h, err := e.reg.Parse(spec)
	if err != nil {
		return "", nil, fmt.Errorf("core: rule %q: %w", spec, err)
	}
	e.ixMu.Lock()
	node := e.ix.EnsureHeuristic(h, e.corp)
	e.ix.BuildEdges()
	if e.matHook != nil {
		e.matHook([]string{spec})
	}
	e.ixMu.Unlock()
	return h.Key(), append([]int(nil), node.Postings...), nil
}

// CoverageBits resolves a rule specification to its canonical key and full
// corpus coverage set, without mutating the shared index. When the index
// already holds the rule with published bits (a seed rule some session
// materialized, or a sketched candidate), those bits are reused as-is —
// published coverage sets are immutable, so the returned set is safe to
// read after the lock is released but must not be modified. Otherwise the
// rule is matched against the corpus with a full scan. This is the batch
// rule-application primitive of the auto-labeling pipeline: resolving a
// committee of accepted rules costs at most one corpus scan per rule never
// seen by the index, and zero index growth either way.
func (e *Engine) CoverageBits(spec string) (string, bitset.Cover, error) {
	h, err := e.reg.Parse(spec)
	if err != nil {
		return "", nil, fmt.Errorf("core: rule %q: %w", spec, err)
	}
	e.ixMu.RLock()
	defer e.ixMu.RUnlock()
	node := e.ix.Node(h.Key())
	if node != nil {
		if published := node.Bits(); published != nil {
			return h.Key(), published, nil
		}
	}
	// The fallback corpus scan stays under the read lock so a concurrent
	// ingest cannot grow the corpus out from under it.
	return h.Key(), bitset.FromSorted(grammar.Coverage(h, e.corp)), nil
}

// RunOptions configures one discovery run.
type RunOptions struct {
	// SeedRules are textual rule specifications (e.g. "best way to get to" or
	// "treematch:caused/by"); their coverage seeds P without consuming
	// budget.
	SeedRules []string
	// SeedPositiveIDs are sentence IDs known to be positive; they seed P
	// directly (the "couple of positive sentences" initialization).
	SeedPositiveIDs []int
	// Oracle answers rule-verification queries. Required.
	Oracle oracle.Oracle
	// OnQuery, if non-nil, is called after every oracle query with the
	// record and the engine (whose classifier scores reflect the query's
	// outcome). Experiments use it to capture per-question curves.
	OnQuery func(rec RuleRecord, e *Engine)
}

// Run executes Algorithm 1: starting from the seed rules / seed positives it
// iteratively generates a candidate hierarchy, selects the most promising
// rule with the configured traversal strategy, queries the oracle, and
// updates the positive set and classifier, until the query budget is spent or
// no candidates remain. It is a thin wrapper that drives a Session from the
// oracle; interactive callers use NewSession directly. Run mutates the
// engine-owned classifier and scores (see the Engine doc) and is therefore
// not safe for concurrent use.
func (e *Engine) Run(opts RunOptions) (*Report, error) {
	if opts.Oracle == nil {
		return nil, fmt.Errorf("core: RunOptions.Oracle is required")
	}
	start := time.Now()
	s, err := e.newLegacySession(SessionOptions{
		SeedRules:       opts.SeedRules,
		SeedPositiveIDs: opts.SeedPositiveIDs,
	})
	if err != nil {
		return nil, err
	}
	for {
		sug, ok := s.Next()
		if !ok {
			break
		}
		// Line 8: ask the oracle.
		accepted := opts.Oracle.Answer(oracle.Query{
			Heuristic: s.pending.heur,
			Coverage:  s.pending.cov,
			Samples:   sug.SampleIDs,
		})
		rec, err := s.Answer(sug.Key, accepted)
		if err != nil {
			return nil, err
		}
		if opts.OnQuery != nil {
			opts.OnQuery(rec, e)
		}
	}
	report := s.report
	report.IndexBuild = e.indexBuild
	report.Total = time.Since(start)
	return report, nil
}

// Suggestion is one candidate rule proposed by SuggestRules, with the
// statistics an annotator (or a downstream tool) needs to judge it.
type Suggestion struct {
	Key         string
	Rule        string
	Coverage    int
	NewCoverage int
	Benefit     float64
	AvgBenefit  float64
	SampleIDs   []int
}

// SuggestRules returns the k most promising unqueried candidate rules given
// the already-discovered positive set, ranked by benefit. It supports the
// paper's parallel-discovery mode: the returned suggestions can be dispatched
// to different annotators simultaneously, and their answers fed back through
// a subsequent Run (seeding it with the accepted rules) or used directly.
// SuggestRules only reads shared engine state (plus the engine RNG, which has
// its own lock) and is safe for concurrent use.
//
//darwin:replaypure
func (e *Engine) SuggestRules(positives map[int]bool, exclude map[string]bool, k int) []Suggestion {
	if k <= 0 {
		k = 10
	}
	if positives == nil {
		positives = map[int]bool{}
	}
	if exclude == nil {
		exclude = map[string]bool{}
	}
	posBits := bitset.FromMap(positives)
	e.ixMu.RLock()
	h := hierarchy.GenerateBits(e.ix, posBits, e.cfg.hierarchyConfig())
	// Capture the score slice inside the lock: ingest grows it under the
	// write lock, and the published prefix is immutable.
	scores := e.scores
	e.ixMu.RUnlock()
	var out []Suggestion
	for _, key := range h.NonRootKeys() {
		if exclude[key] {
			continue
		}
		n := h.Node(key)
		var benefit float64
		var newCov int
		if n.Bits != nil {
			benefit, newCov = n.Bits.AndNotSum(posBits, scores)
		} else {
			benefit = traversal.Benefit(n.Coverage, positives, scores)
			for _, id := range n.Coverage {
				if !positives[id] {
					newCov++
				}
			}
		}
		if newCov == 0 {
			continue
		}
		avgBenefit := benefit / float64(newCov)
		e.rngMu.Lock()
		samples := oracle.SampleCoverage(n.Coverage, e.cfg.OracleSampleSize, e.rng)
		e.rngMu.Unlock()
		out = append(out, Suggestion{
			Key:         key,
			Rule:        n.Heuristic.String(),
			Coverage:    len(n.Coverage),
			NewCoverage: newCov,
			Benefit:     benefit,
			AvgBenefit:  avgBenefit,
			SampleIDs:   samples,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benefit != out[j].Benefit {
			return out[i].Benefit > out[j].Benefit
		}
		if out[i].NewCoverage != out[j].NewCoverage {
			return out[i].NewCoverage > out[j].NewCoverage
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// addCoverage inserts the coverage IDs into P and returns the newly added
// ones (sorted).
func addCoverage(positives map[int]bool, cov []int) []int {
	var added []int
	for _, id := range cov {
		if !positives[id] {
			positives[id] = true
			added = append(added, id)
		}
	}
	sort.Ints(added)
	return added
}

// coverageOf resolves a rule key's coverage from the hierarchy or the index.
func coverageOf(ix *index.Index, h *hierarchy.Hierarchy, key string) []int {
	if n := h.Node(key); n != nil {
		return n.Coverage
	}
	return ix.Coverage(key)
}

// heuristicOf resolves a rule key's heuristic from the hierarchy or the index.
func heuristicOf(ix *index.Index, h *hierarchy.Hierarchy, key string) grammar.Heuristic {
	if n := h.Node(key); n != nil {
		return n.Heuristic
	}
	if n := ix.Node(key); n != nil {
		return n.Heuristic
	}
	return nil
}

func ruleString(h grammar.Heuristic, key string) string {
	if h != nil {
		return h.String()
	}
	return key
}
