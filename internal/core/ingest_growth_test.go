package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/classifier"
	"repro/internal/datagen"
	"repro/internal/grammar"
	"repro/internal/ingest"
	"repro/internal/tokensregex"
)

// TestGrowthUnderConcurrentAnnotation is the scale acceptance bar: a corpus
// boots at ~1K sentences and grows past 100K by live ingestion while
// annotator sessions keep stepping, with no engine rebuild (the index
// object stays the same, only its version moves) and no acknowledged answer
// lost. Run with -race this is also the locking proof for the whole
// ingest-vs-read surface.
func TestGrowthUnderConcurrentAnnotation(t *testing.T) {
	if testing.Short() {
		t.Skip("grows a 100K-sentence corpus; skipped in -short")
	}
	c, err := datagen.ByName("directions", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	boot := c.Len()
	if boot < 500 || boot > 2000 {
		t.Fatalf("boot corpus has %d sentences, want ~1K", boot)
	}
	eng, err := New(c, Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     3,
		MaxRuleDepth:    6,
		NumCandidates:   200,
		MinRuleCoverage: 2,
		Budget:          1 << 20,
		Traversal:       "hybrid",
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 4, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ixBefore := eng.Index()

	const target = 100_000
	stop := make(chan struct{})
	var answered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				s, err := eng.NewSession(SessionOptions{
					SeedRules: []string{"best way to get to"},
					Budget:    8,
					Seed:      int64(w*1000 + round + 1),
				})
				if err != nil {
					t.Errorf("worker %d: NewSession: %v", w, err)
					return
				}
				for {
					sug, ok := s.Next()
					if !ok {
						break
					}
					if _, err := s.Answer(sug.Key, answered.Add(1)%3 == 0); err != nil {
						t.Errorf("worker %d: Answer: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	batchNum := 0
	for eng.CorpusLen() < target {
		batch := make([]ingest.Sentence, 0, 5000)
		for i := 0; i < 5000; i++ {
			if i%20 == 0 {
				batch = append(batch, ingest.Sentence{
					Text:  fmt.Sprintf("best way to get to stop %d of line %d", i, batchNum),
					Label: 1,
				})
			} else {
				batch = append(batch, ingest.Sentence{
					Text:  fmt.Sprintf("the shop at corner %d closed early on day %d", i, batchNum),
					Label: 0,
				})
			}
		}
		from, to, err := eng.Ingest(batch)
		if err != nil {
			t.Fatal(err)
		}
		if to-from != 5000 {
			t.Fatalf("batch %d acknowledged [%d,%d), want 5000 sentences", batchNum, from, to)
		}
		batchNum++
	}
	close(stop)
	wg.Wait()

	if got := eng.CorpusLen(); got < target {
		t.Fatalf("corpus is %d sentences, want >= %d", got, target)
	}
	if eng.Index() != ixBefore {
		t.Fatal("index object was replaced: growth must be incremental, not a rebuild")
	}
	if answered.Load() == 0 {
		t.Fatal("no annotation traffic ran during growth")
	}
	// A session created after all growth sees the full corpus: its seed
	// rule's coverage spans ingested sentences.
	s, err := eng.NewSession(SessionOptions{SeedRules: []string{"best way to get to"}, Budget: 4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if len(rep.Positives) < batchNum*250 {
		t.Errorf("post-growth session found %d positives, want >= %d from ingested sentences",
			len(rep.Positives), batchNum*250)
	}
}
