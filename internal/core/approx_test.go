package core

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/sketch"
	"repro/internal/tokensregex"
	"repro/internal/traversal"
)

// These tests exercise the §3.8 theoretical model empirically: a classifier
// that assigns positive sentences a score above θ with probability β and
// negative sentences a score above θ with probability β' < β. Under that
// model, Lemma 6 / Theorem 1 say UniversalSearch's benefit ranking prefers
// heuristics whose coverage is within a constant factor of the largest
// available precise heuristic, so the positives identified within a budget
// are a constant-factor approximation of the optimum.

// buildSyntheticHierarchy creates a corpus with several disjoint "cluster"
// rules of different sizes plus noisy rules, and the matching index and
// hierarchy. Each cluster c_i is a token shared by its sentences.
func buildSyntheticHierarchy(t *testing.T, clusterSizes []int, noiseSentences int) (*corpus.Corpus, *traversal.State) {
	t.Helper()
	c := corpus.New("approx", "synthetic")
	for i, size := range clusterSizes {
		token := clusterToken(i)
		for j := 0; j < size; j++ {
			c.Add("the "+token+" sentence number "+clusterToken(j)+" here", corpus.Positive)
		}
	}
	for j := 0; j < noiseSentences; j++ {
		c.Add("generic filler text item "+clusterToken(j%17)+" nothing", corpus.Negative)
	}
	c.Preprocess(corpus.PreprocessOptions{})

	reg := grammar.NewRegistry(tokensregex.New())
	ix := index.Build(c, sketch.NewBuilder(reg, 2))
	h := hierarchy.Generate(ix, nil, hierarchy.Config{NumCandidates: 2000, MaxRuleDepth: 2, MinCoverage: 2})
	return c, &traversal.State{
		Hierarchy: h,
		Index:     ix,
		Positives: map[int]bool{},
		Queried:   map[string]bool{},
	}
}

func clusterToken(i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	return "cluster" + string(letters[i%len(letters)]) + string(letters[(i/len(letters))%len(letters)])
}

// scoreModel assigns scores following the (θ, β, β') model.
func scoreModel(c *corpus.Corpus, theta, beta, betaPrime float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, c.Len())
	for id, s := range c.Sentences {
		var high bool
		if s.Gold == corpus.Positive {
			high = rng.Float64() < beta
		} else {
			high = rng.Float64() < betaPrime
		}
		if high {
			scores[id] = theta + rng.Float64()*(1-theta)
		} else {
			scores[id] = rng.Float64() * (1 - theta)
		}
	}
	return scores
}

func TestUniversalSearchConstantApproximation(t *testing.T) {
	// Clusters of decreasing size; the optimal first pick is the largest.
	clusterSizes := []int{60, 40, 25, 15, 10}
	c, st := buildSyntheticHierarchy(t, clusterSizes, 300)

	const theta, beta, betaPrime = 0.6, 0.9, 0.15
	st.Scores = scoreModel(c, theta, beta, betaPrime, 7)

	us := traversal.NewUniversalSearch()
	key, ok := us.Next(st)
	if !ok {
		t.Fatal("UniversalSearch proposed nothing")
	}
	cov := st.Index.Coverage(key)
	// The picked rule must cover at least a constant fraction (we use 1/3) of
	// the largest cluster — the empirical counterpart of Lemma 6's
	// |C_r| >= alpha * max |C_r'| guarantee.
	maxCluster := clusterSizes[0]
	if len(cov)*3 < maxCluster {
		t.Errorf("picked rule %q covers %d sentences, want >= %d/3", key, len(cov), maxCluster)
	}
	// And it must be precise: mostly positives (the avg-benefit filter keeps
	// out the noise rules under a better-than-random classifier).
	pos := 0
	for _, id := range cov {
		if c.Sentence(id).Gold == corpus.Positive {
			pos++
		}
	}
	if float64(pos)/float64(len(cov)) < 0.8 {
		t.Errorf("picked rule %q has precision %.2f", key, float64(pos)/float64(len(cov)))
	}
}

func TestUniversalSearchApproximatesGreedyCoverage(t *testing.T) {
	// Run UniversalSearch for b steps under the score model with a perfect
	// oracle simulated inline, and compare the positives found with the
	// greedy maximum-coverage optimum over the same rule set.
	clusterSizes := []int{50, 35, 25, 15, 10, 5}
	c, st := buildSyntheticHierarchy(t, clusterSizes, 400)
	st.Scores = scoreModel(c, 0.6, 0.85, 0.2, 11)

	const budget = 4
	us := traversal.NewUniversalSearch()
	found := map[int]bool{}
	for q := 0; q < budget; q++ {
		key, ok := us.Next(st)
		if !ok {
			break
		}
		st.Queried[key] = true
		cov := st.Index.Coverage(key)
		pos := 0
		for _, id := range cov {
			if c.Sentence(id).Gold == corpus.Positive {
				pos++
			}
		}
		accepted := float64(pos)/float64(len(cov)) >= 0.8
		if accepted {
			for _, id := range cov {
				st.Positives[id] = true
				if c.Sentence(id).Gold == corpus.Positive {
					found[id] = true
				}
			}
		}
		us.Feedback(st, key, accepted)
	}

	// Greedy max-coverage optimum over perfect cluster rules: picking the b
	// largest clusters.
	opt := 0
	for i := 0; i < budget && i < len(clusterSizes); i++ {
		opt += clusterSizes[i]
	}
	if len(found)*3 < opt {
		t.Errorf("UniversalSearch found %d positives in %d queries; greedy optimum %d (want >= 1/3)",
			len(found), budget, opt)
	}
}

func TestScoreModelSeparation(t *testing.T) {
	// Sanity-check the synthetic score model itself: with beta > beta' the
	// mean score of positives exceeds that of negatives.
	c, _ := buildSyntheticHierarchy(t, []int{30, 20}, 200)
	scores := scoreModel(c, 0.5, 0.8, 0.2, 3)
	var posSum, negSum float64
	var nPos, nNeg int
	for id, s := range c.Sentences {
		if s.Gold == corpus.Positive {
			posSum += scores[id]
			nPos++
		} else {
			negSum += scores[id]
			nNeg++
		}
	}
	if posSum/float64(nPos) <= negSum/float64(nNeg) {
		t.Errorf("score model does not separate classes: pos=%.2f neg=%.2f",
			posSum/float64(nPos), negSum/float64(nNeg))
	}
}
