package core

import (
	"strings"
	"testing"

	"repro/internal/classifier"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/grammar"
	"repro/internal/oracle"
	"repro/internal/tokensregex"
	"repro/internal/traversal"
)

// testCorpus generates a small directions corpus (positive rate 3.8%).
func testCorpus(t *testing.T, scale float64) *corpus.Corpus {
	t.Helper()
	c, err := datagen.ByName("directions", scale, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fastConfig returns an engine configuration small enough for unit tests.
func fastConfig(trav string) Config {
	return Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     4,
		MaxRuleDepth:    6,
		NumCandidates:   400,
		MinRuleCoverage: 2,
		Budget:          30,
		Traversal:       trav,
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 8, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Embedding:       embedding.Config{Dim: 24, Window: 3, MinCount: 2, Seed: 1},
		Seed:            1,
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil corpus should error")
	}
	if _, err := New(corpus.New("empty", "t"), DefaultConfig()); err == nil {
		t.Error("empty corpus should error")
	}

	c := testCorpus(t, 0.03)
	e, err := New(c, fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(RunOptions{}); err == nil {
		t.Error("missing oracle should error")
	}
	if _, err := e.Run(RunOptions{Oracle: oracle.NewGroundTruth(c), SeedRules: []string{"@@@ ???"}}); err == nil {
		t.Error("unparseable seed rule should error")
	}
	if _, err := e.Run(RunOptions{Oracle: oracle.NewGroundTruth(c), SeedRules: []string{"zzzznonexistenttoken"}}); err == nil {
		t.Error("zero-coverage seed with no positives should error")
	}
}

func TestEngineRunHybridDiscoversPositives(t *testing.T) {
	c := testCorpus(t, 0.06) // ~900 sentences, ~35 positives
	cfg := fastConfig("hybrid")
	cfg.Budget = 50
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.NewRecording(oracle.NewGroundTruth(c))
	discovered := map[int]bool{}
	var curve eval.Curve
	rep, err := e.Run(RunOptions{
		SeedRules: []string{"best way to get to"},
		Oracle:    o,
		OnQuery: func(rec RuleRecord, e *Engine) {
			for _, id := range rec.AddedIDs {
				discovered[id] = true
			}
			curve.Points = append(curve.Points, eval.CurvePoint{
				Questions: rec.Question,
				Value:     eval.CoverageOfSet(e.Corpus(), discovered),
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The per-question coverage curve is monotone non-decreasing.
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Value < curve.Points[i-1].Value {
			t.Errorf("coverage curve decreased at question %d", curve.Points[i].Questions)
		}
	}
	if rep.Questions == 0 || rep.Questions > cfg.Budget {
		t.Errorf("questions = %d", rep.Questions)
	}
	if o.Count() != rep.Questions {
		t.Errorf("oracle saw %d queries, report says %d", o.Count(), rep.Questions)
	}
	cov := eval.CoverageOfSet(c, rep.Positives)
	if cov < 0.5 {
		t.Errorf("coverage after %d questions = %.2f, want >= 0.5 (accepted rules: %v)",
			rep.Questions, cov, rep.AcceptedRuleStrings())
	}
	// Precision of the discovered set must be high (oracle only accepts >=80%
	// precise rules).
	if p := eval.PrecisionOfSet(c, rep.Positives); p < 0.7 {
		t.Errorf("precision of discovered set = %.2f", p)
	}
	// The seed rule is recorded as accepted with question number 0.
	if len(rep.Accepted) == 0 || rep.Accepted[0].Question != 0 {
		t.Errorf("seed rule not recorded: %+v", rep.Accepted)
	}
	// History is consistent: accepted records add IDs, rejected add none.
	for _, rec := range rep.History {
		if !rec.Accepted && len(rec.AddedIDs) > 0 {
			t.Errorf("rejected rule %q added positives", rec.Rule)
		}
	}
	if len(rep.PositiveIDs()) != len(rep.Positives) {
		t.Error("PositiveIDs length mismatch")
	}
}

func TestEngineSeedPositiveIDs(t *testing.T) {
	c := testCorpus(t, 0.04)
	cfg := fastConfig("local")
	cfg.Budget = 20
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed with two gold-positive sentences ("a couple of labeled
	// instances"), no seed rule.
	pos := c.Positives()
	if len(pos) < 2 {
		t.Fatal("test corpus has too few positives")
	}
	repo, err := e.Run(RunOptions{
		SeedPositiveIDs: []int{pos[0], pos[1]},
		Oracle:          oracle.NewGroundTruth(c),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Positives) < 2 {
		t.Errorf("positives shrank below the seed: %d", len(repo.Positives))
	}
	if repo.Questions == 0 {
		t.Error("no questions asked")
	}
	// Out-of-range seed IDs are ignored.
	if _, err := e.Run(RunOptions{SeedPositiveIDs: []int{-1, 1 << 30}, Oracle: oracle.NewGroundTruth(c)}); err == nil {
		t.Error("only-invalid seed IDs should error (empty P)")
	}
}

func TestEngineTraversalVariantsAndCustom(t *testing.T) {
	c := testCorpus(t, 0.04)
	for _, trav := range []string{"local", "universal", "hybrid"} {
		cfg := fastConfig(trav)
		cfg.Budget = 15
		e, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		repo, err := e.Run(RunOptions{
			SeedRules: []string{"shuttle to"},
			Oracle:    oracle.NewGroundTruth(c),
		})
		if err != nil {
			t.Fatalf("%s: %v", trav, err)
		}
		if repo.Questions == 0 {
			t.Errorf("%s asked no questions", trav)
		}
	}

	// A custom traversal (the HighC-style "max coverage" selector) plugs in
	// through Config.CustomTraversal.
	cfg := fastConfig("hybrid")
	cfg.Budget = 10
	cfg.CustomTraversal = maxCoverageTraversal{}
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(RunOptions{SeedRules: []string{"shuttle to"}, Oracle: oracle.NewGroundTruth(c)}); err != nil {
		t.Fatal(err)
	}
}

// maxCoverageTraversal proposes the unqueried rule with the largest coverage.
type maxCoverageTraversal struct{}

func (maxCoverageTraversal) Name() string { return "maxcov" }
func (maxCoverageTraversal) Next(st *traversal.State) (string, bool) {
	best, bestCov := "", -1
	for _, key := range st.Hierarchy.NonRootKeys() {
		if st.Queried[key] {
			continue
		}
		if n := st.Hierarchy.Node(key); n != nil && len(n.Coverage) > bestCov {
			best, bestCov = key, len(n.Coverage)
		}
	}
	return best, best != ""
}
func (maxCoverageTraversal) Feedback(*traversal.State, string, bool) {}
func (maxCoverageTraversal) Reseed(*traversal.State, string)         {}

func TestEngineLazyScoringMatchesEagerOnAcceptance(t *testing.T) {
	c := testCorpus(t, 0.03)
	run := func(lazy bool) *Report {
		cfg := fastConfig("hybrid")
		cfg.Budget = 12
		cfg.LazyScoring = lazy
		e, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		repo, err := e.Run(RunOptions{SeedRules: []string{"best way to get to"}, Oracle: oracle.NewGroundTruth(c)})
		if err != nil {
			t.Fatal(err)
		}
		return repo
	}
	lazy := run(true)
	eager := run(false)
	// Lazy scoring is an approximation; it must still discover a comparable
	// number of positives (within a factor of 2 on this small corpus).
	if len(lazy.Positives)*2 < len(eager.Positives) {
		t.Errorf("lazy scoring found %d positives vs %d eager", len(lazy.Positives), len(eager.Positives))
	}
}

func TestEngineTreeMatchRulesParse(t *testing.T) {
	c, err := datagen.ByName("cause-effect", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NumCandidates = 300
	cfg.SketchDepth = 3
	cfg.Budget = 10
	cfg.Classifier = classifier.Config{Epochs: 6, LearningRate: 0.3, Seed: 1}
	cfg.Embedding = embedding.Config{Dim: 16, Window: 3, MinCount: 2, Seed: 1}
	e, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both grammars are registered by default: a TreeMatch seed parses.
	h, err := e.ParseRule("treematch:caused/by")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if !strings.Contains(h.Key(), "treematch") {
		t.Errorf("wrong grammar: %s", h.Key())
	}
	repo, err := e.Run(RunOptions{SeedRules: []string{"treematch:caused/by"}, Oracle: oracle.NewGroundTruth(c)})
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Positives) == 0 {
		t.Error("TreeMatch seed produced no positives")
	}
}

func TestDefaultConfigAndWithDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Budget != 100 || cfg.Traversal != "hybrid" || cfg.NumCandidates != 10000 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	resolved, reg := Config{}.withDefaults()
	if resolved.Budget != 100 || resolved.SketchDepth != 5 {
		t.Errorf("withDefaults did not fill: %+v", resolved)
	}
	if !resolved.UseParseTrees {
		t.Error("TreeMatch default should force parse trees")
	}
	if len(reg.Grammars()) != 2 {
		t.Errorf("default registry has %d grammars", len(reg.Grammars()))
	}
}
