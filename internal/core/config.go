// Package core implements the end-to-end Darwin engine of Algorithm 1: index
// construction, iterative hierarchy generation, traversal, oracle querying and
// score updates, producing a set of accepted labeling rules, the discovered
// positive set, and a trained classifier.
package core

import (
	"repro/internal/classifier"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/hierarchy"
	"repro/internal/tokensregex"
	"repro/internal/traversal"
	"repro/internal/treematch"
)

// Config controls a Darwin engine.
type Config struct {
	// Grammars are the heuristic grammars to use. Nil defaults to
	// TokensRegex + TreeMatch, the paper's default pair.
	Grammars []grammar.Grammar
	// UseParseTrees enables dependency parsing during preprocessing. It is
	// forced on when the TreeMatch grammar is present.
	UseParseTrees bool

	// SketchDepth bounds the derivation-sketch depth (paper: 10; phrase
	// grammars rarely need more than 5-6).
	SketchDepth int
	// MaxRuleDepth bounds the depth of candidate rules.
	MaxRuleDepth int
	// NumCandidates is k of Algorithm 2 (paper default: 10K).
	NumCandidates int
	// MinRuleCoverage prunes index nodes covering fewer sentences.
	MinRuleCoverage int

	// Budget is the oracle query budget b.
	Budget int
	// Traversal selects the strategy: "local", "universal" or "hybrid".
	Traversal string
	// Tau is the HybridSearch switching parameter τ (default 5).
	Tau int
	// CustomTraversal, when non-nil, overrides Traversal (used by the HighP
	// and HighC baselines, which plug in alternative selection strategies).
	CustomTraversal traversal.Traversal

	// Classifier configures the p_s estimator.
	Classifier classifier.Config
	// ClassifierKind selects logistic regression (default) or MLP.
	ClassifierKind classifier.Kind
	// Embedding configures word-embedding training. A zero Dim disables
	// embeddings (bag-of-words features only).
	Embedding embedding.Config
	// LazyScoring enables the paper's §4.5 optimization: after a retrain,
	// only sentences whose previous score exceeded LazyScoreThreshold are
	// re-scored, with a full re-score every third retrain.
	LazyScoring bool
	// LazyScoreThreshold is the confidence cut-off for lazy re-scoring
	// (paper: 0.3).
	LazyScoreThreshold float64

	// OracleSampleSize is how many example sentences accompany each query
	// (Figure 2 shows 5).
	OracleSampleSize int

	// FeatureCacheCap bounds the corpus-level sparse feature cache shared by
	// every session's classifier (entries cost ~0.5 KB/sentence; 0 caches
	// the whole corpus). Sentences beyond the cap are featurized on the fly,
	// bit-identically, so the cap trades CPU for memory without changing any
	// score.
	FeatureCacheCap int

	// Kernel selects the index's per-node coverage representation:
	// index.KernelAdaptive (the default, roaring-style compressed
	// containers) or index.KernelDense (the original dense mirror, kept as
	// the pinned reference for equivalence tests and benchmark A/B runs).
	// Both kernels are bit-identical in every score.
	Kernel string

	// Seed drives all randomness in the engine.
	Seed int64
}

// DefaultConfig returns the configuration used by the experiments (mirroring
// §4.1 where the paper states its settings).
func DefaultConfig() Config {
	return Config{
		SketchDepth:        5,
		MaxRuleDepth:       10,
		NumCandidates:      10000,
		MinRuleCoverage:    2,
		Budget:             100,
		Traversal:          "hybrid",
		Tau:                traversal.DefaultTau,
		Classifier:         classifier.DefaultConfig(),
		ClassifierKind:     classifier.KindLogReg,
		Embedding:          embedding.DefaultConfig(),
		LazyScoring:        true,
		LazyScoreThreshold: 0.3,
		OracleSampleSize:   5,
		Seed:               1,
	}
}

// withDefaults fills zero values with defaults and returns the resolved
// config together with the grammar registry.
func (cfg Config) withDefaults() (Config, *grammar.Registry) {
	def := DefaultConfig()
	if cfg.SketchDepth <= 0 {
		cfg.SketchDepth = def.SketchDepth
	}
	if cfg.MaxRuleDepth <= 0 {
		cfg.MaxRuleDepth = def.MaxRuleDepth
	}
	if cfg.NumCandidates <= 0 {
		cfg.NumCandidates = def.NumCandidates
	}
	if cfg.MinRuleCoverage <= 0 {
		cfg.MinRuleCoverage = def.MinRuleCoverage
	}
	if cfg.Budget <= 0 {
		cfg.Budget = def.Budget
	}
	if cfg.Traversal == "" {
		cfg.Traversal = def.Traversal
	}
	if cfg.Tau <= 0 {
		cfg.Tau = def.Tau
	}
	if cfg.Classifier.Epochs <= 0 {
		cfg.Classifier = def.Classifier
	}
	if cfg.ClassifierKind == "" {
		cfg.ClassifierKind = def.ClassifierKind
	}
	if cfg.OracleSampleSize <= 0 {
		cfg.OracleSampleSize = def.OracleSampleSize
	}
	if cfg.LazyScoreThreshold <= 0 {
		cfg.LazyScoreThreshold = def.LazyScoreThreshold
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	grams := cfg.Grammars
	if len(grams) == 0 {
		grams = []grammar.Grammar{tokensregex.New(), treematch.New()}
		cfg.Grammars = grams
	}
	reg := grammar.NewRegistry(grams...)
	if _, hasTree := reg.Get(treematch.GrammarName); hasTree {
		cfg.UseParseTrees = true
	}
	return cfg, reg
}

// hierarchyConfig derives the hierarchy-generation settings from the engine
// config.
func (cfg Config) hierarchyConfig() hierarchy.Config {
	return hierarchy.Config{
		NumCandidates: cfg.NumCandidates,
		MaxRuleDepth:  cfg.MaxRuleDepth,
		MinCoverage:   cfg.MinRuleCoverage,
		Cleanup:       true,
	}
}
