// Package labelmodel implements the weak-supervision label aggregation step
// that the paper delegates to Snorkel (§4.5, Table 2): given the labeling
// rules discovered by Darwin, combine their (noisy, overlapping, abstaining)
// votes into per-sentence probabilistic labels and produce a training set for
// a noise-aware classifier.
//
// Two aggregators are provided: a majority-vote baseline and a one-coin
// generative model whose per-rule accuracies are estimated with expectation
// maximization — the textbook formulation of Snorkel's label model for binary
// tasks.
//
// Aggregation must be a pure function of the vote matrix — labeling-job
// re-runs after a crash are byte-compared against the journaled output —
// so darwinlint enforces replay purity for every function in this file:
//
//darwin:replaypure
package labelmodel

import (
	"math"

	"repro/internal/bitset"
)

// Vote is a single labeling-function output for one sentence.
type Vote int8

// Vote values. Abstain means the rule does not cover the sentence.
const (
	VoteNegative Vote = -1
	VoteAbstain  Vote = 0
	VotePositive Vote = 1
)

// Matrix is a label matrix: one row per labeling function (rule), one column
// per sentence.
type Matrix struct {
	numSentences int
	rows         [][]Vote
	names        []string
}

// NewMatrix creates an empty label matrix over numSentences sentences.
func NewMatrix(numSentences int) *Matrix {
	return &Matrix{numSentences: numSentences}
}

// NumSentences returns the number of sentences (columns).
func (m *Matrix) NumSentences() int { return m.numSentences }

// NumRules returns the number of labeling functions (rows).
func (m *Matrix) NumRules() int { return len(m.rows) }

// RuleNames returns the registered rule names.
func (m *Matrix) RuleNames() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// AddRule registers a labeling function that votes `vote` on every sentence
// in coverage and abstains elsewhere.
func (m *Matrix) AddRule(name string, coverage []int, vote Vote) {
	row := make([]Vote, m.numSentences)
	for _, id := range coverage {
		if id >= 0 && id < m.numSentences {
			row[id] = vote
		}
	}
	m.rows = append(m.rows, row)
	m.names = append(m.names, name)
}

// AddRuleBits registers a labeling function that votes `vote` on every id in
// the coverage bitset and abstains elsewhere. It is the corpus-scale batch
// path: the row is filled straight from the set bits (no intermediate id
// slice), equivalent to AddRule(name, bits.AppendTo(nil), vote).
func (m *Matrix) AddRuleBits(name string, bits bitset.Cover, vote Vote) {
	row := make([]Vote, m.numSentences)
	bits.Range(func(id int) bool {
		if id < m.numSentences {
			row[id] = vote
		}
		return true
	})
	m.rows = append(m.rows, row)
	m.names = append(m.names, name)
}

// AddVotes registers a labeling function from a pre-computed vote vector.
// The vector is copied; short vectors are zero-padded.
func (m *Matrix) AddVotes(name string, votes []Vote) {
	row := make([]Vote, m.numSentences)
	copy(row, votes)
	m.rows = append(m.rows, row)
	m.names = append(m.names, name)
}

// Votes returns the votes cast on sentence id by all rules.
func (m *Matrix) Votes(id int) []Vote {
	out := make([]Vote, len(m.rows))
	for j, row := range m.rows {
		out[j] = row[id]
	}
	return out
}

// CoverageCount returns how many sentences receive at least one non-abstain
// vote.
func (m *Matrix) CoverageCount() int {
	n := 0
	for id := 0; id < m.numSentences; id++ {
		for _, row := range m.rows {
			if row[id] != VoteAbstain {
				n++
				break
			}
		}
	}
	return n
}

// MajorityVote aggregates the matrix by simple majority: the probabilistic
// label of a sentence is (#positive votes)/(#non-abstain votes); sentences
// with no votes get defaultProb.
func (m *Matrix) MajorityVote(defaultProb float64) []float64 {
	out := make([]float64, m.numSentences)
	for id := 0; id < m.numSentences; id++ {
		pos, total := 0, 0
		for _, row := range m.rows {
			switch row[id] {
			case VotePositive:
				pos++
				total++
			case VoteNegative:
				total++
			}
		}
		if total == 0 {
			out[id] = defaultProb
		} else {
			out[id] = float64(pos) / float64(total)
		}
	}
	return out
}

// GenerativeConfig controls EM training of the generative label model.
type GenerativeConfig struct {
	// Iterations is the number of EM rounds.
	Iterations int
	// PriorPositive is the prior probability that a sentence is positive.
	PriorPositive float64
	// InitialAccuracy is the starting accuracy of every rule.
	InitialAccuracy float64
	// PriorStrength is the pseudo-count of the Beta prior centred at
	// InitialAccuracy used when re-estimating rule accuracies. It keeps
	// accuracies of rules with little corroborating overlap near the prior
	// and damps the self-confirmation runaway that one-sided (positive /
	// abstain) label matrices are prone to.
	PriorStrength float64
}

// DefaultGenerativeConfig returns sensible EM settings.
func DefaultGenerativeConfig() GenerativeConfig {
	return GenerativeConfig{Iterations: 20, PriorPositive: 0.5, InitialAccuracy: 0.7, PriorStrength: 10}
}

// GenerativeModel is the trained one-coin label model: each rule j has an
// estimated accuracy; the posterior of a sentence combines the votes weighted
// by the rules' accuracies.
type GenerativeModel struct {
	Accuracies []float64
	Prior      float64
	matrix     *Matrix
}

// FitGenerative trains the one-coin generative model with EM.
func FitGenerative(m *Matrix, cfg GenerativeConfig) *GenerativeModel {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20
	}
	if cfg.PriorPositive <= 0 || cfg.PriorPositive >= 1 {
		cfg.PriorPositive = 0.5
	}
	if cfg.InitialAccuracy <= 0.5 || cfg.InitialAccuracy >= 1 {
		cfg.InitialAccuracy = 0.7
	}
	k := m.NumRules()
	acc := make([]float64, k)
	for j := range acc {
		acc[j] = cfg.InitialAccuracy
	}
	model := &GenerativeModel{Accuracies: acc, Prior: cfg.PriorPositive, matrix: m}

	for it := 0; it < cfg.Iterations; it++ {
		// M-step with leave-one-out E-step: rule j's accuracy is re-estimated
		// against the posterior computed from the OTHER rules' votes only
		// (preventing self-confirmation), regularized toward the prior
		// accuracy with PriorStrength pseudo-counts so rules with little
		// corroborating overlap keep an informative accuracy instead of
		// collapsing to 0.5.
		next := make([]float64, k)
		copy(next, acc)
		for j, row := range m.rows {
			var agree, total float64
			for id := 0; id < m.numSentences; id++ {
				if row[id] == VoteAbstain {
					continue
				}
				p := model.posteriorExcluding(id, j)
				if row[id] == VotePositive {
					agree += p
				} else {
					agree += 1 - p
				}
				total++
			}
			if total > 0 {
				a := (agree + cfg.InitialAccuracy*cfg.PriorStrength) / (total + cfg.PriorStrength)
				// Clamp away from 0/1 to keep the model stable.
				if a < 0.05 {
					a = 0.05
				}
				if a > 0.95 {
					a = 0.95
				}
				next[j] = a
			}
		}
		copy(acc, next)
	}
	return model
}

// posterior computes P(y=1 | votes on sentence id) under the one-coin model.
func (g *GenerativeModel) posterior(id int) float64 {
	return g.posteriorExcluding(id, -1)
}

// posteriorExcluding computes the posterior ignoring rule `exclude`'s vote
// (pass -1 to use every vote).
func (g *GenerativeModel) posteriorExcluding(id, exclude int) float64 {
	logPos := math.Log(g.Prior)
	logNeg := math.Log(1 - g.Prior)
	for j, row := range g.matrix.rows {
		if j == exclude {
			continue
		}
		a := g.Accuracies[j]
		switch row[id] {
		case VotePositive:
			logPos += math.Log(a)
			logNeg += math.Log(1 - a)
		case VoteNegative:
			logPos += math.Log(1 - a)
			logNeg += math.Log(a)
		}
	}
	// Normalize in log space.
	maxLog := logPos
	if logNeg > maxLog {
		maxLog = logNeg
	}
	p := math.Exp(logPos - maxLog)
	n := math.Exp(logNeg - maxLog)
	return p / (p + n)
}

// Probabilities returns the posterior positive probability of every sentence.
func (g *GenerativeModel) Probabilities() []float64 {
	out := make([]float64, g.matrix.numSentences)
	for id := range out {
		out[id] = g.posterior(id)
	}
	return out
}

// TrainingSet converts probabilistic labels into a hard-labeled training set:
// sentences with probability >= posThreshold become positive examples,
// sentences with probability <= negThreshold become negatives, the rest are
// dropped. It returns parallel slices of sentence IDs and labels (1/0).
func TrainingSet(probs []float64, posThreshold, negThreshold float64) (ids []int, labels []int) {
	for id, p := range probs {
		switch {
		case p >= posThreshold:
			ids = append(ids, id)
			labels = append(labels, 1)
		case p <= negThreshold:
			ids = append(ids, id)
			labels = append(labels, 0)
		}
	}
	return ids, labels
}
