package labelmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(5)
	if m.NumSentences() != 5 || m.NumRules() != 0 {
		t.Fatalf("empty matrix: %d sentences, %d rules", m.NumSentences(), m.NumRules())
	}
	m.AddRule("r1", []int{0, 1, 2}, VotePositive)
	m.AddRule("r2", []int{2, 3}, VotePositive)
	m.AddRule("neg", []int{4}, VoteNegative)
	m.AddRule("dangling", []int{-1, 99}, VotePositive) // out of range ignored
	if m.NumRules() != 4 {
		t.Errorf("NumRules = %d", m.NumRules())
	}
	if got := m.CoverageCount(); got != 5 {
		t.Errorf("CoverageCount = %d, want 5", got)
	}
	votes := m.Votes(2)
	if votes[0] != VotePositive || votes[1] != VotePositive || votes[2] != VoteAbstain {
		t.Errorf("Votes(2) = %v", votes)
	}
	names := m.RuleNames()
	if len(names) != 4 || names[0] != "r1" {
		t.Errorf("RuleNames = %v", names)
	}
	m.AddVotes("fromvec", []Vote{VoteNegative, VotePositive})
	if m.Votes(0)[4] != VoteNegative || m.Votes(1)[4] != VotePositive || m.Votes(4)[4] != VoteAbstain {
		t.Error("AddVotes misplaced votes")
	}
}

func TestMajorityVote(t *testing.T) {
	m := NewMatrix(4)
	m.AddRule("a", []int{0, 1}, VotePositive)
	m.AddRule("b", []int{1}, VotePositive)
	m.AddRule("c", []int{1, 2}, VoteNegative)
	probs := m.MajorityVote(0.25)
	if probs[0] != 1.0 {
		t.Errorf("p(0) = %f", probs[0])
	}
	if math.Abs(probs[1]-2.0/3.0) > 1e-12 {
		t.Errorf("p(1) = %f", probs[1])
	}
	if probs[2] != 0.0 {
		t.Errorf("p(2) = %f", probs[2])
	}
	if probs[3] != 0.25 {
		t.Errorf("uncovered default = %f", probs[3])
	}
}

func TestGenerativeModelLearnsAccuracies(t *testing.T) {
	// Ground truth: sentences 0-9 positive, 10-29 negative.
	const n = 30
	isPos := func(id int) bool { return id < 10 }

	m := NewMatrix(n)
	// good1 and good2 are accurate positive rules; noisy fires mostly on
	// negatives; a weak negative-evidence rule covers part of the negative
	// region (the same construction the Table 2 pipeline uses).
	var good1, good2, noisy, negEvidence []int
	for id := 0; id < n; id++ {
		if isPos(id) {
			good1 = append(good1, id)
			if id%2 == 0 {
				good2 = append(good2, id)
			}
		}
		if id%3 == 0 {
			noisy = append(noisy, id)
		}
		if !isPos(id) && id%2 == 1 {
			negEvidence = append(negEvidence, id)
		}
	}
	// Give good rules a little noise so EM has something to estimate.
	good1 = append(good1, 10)
	m.AddRule("good1", good1, VotePositive)
	m.AddRule("good2", good2, VotePositive)
	m.AddRule("noisy", noisy, VotePositive)
	m.AddRule("neg-evidence", negEvidence, VoteNegative)

	g := FitGenerative(m, DefaultGenerativeConfig())
	if len(g.Accuracies) != 4 {
		t.Fatalf("accuracies = %v", g.Accuracies)
	}
	if g.Accuracies[0] <= g.Accuracies[2] {
		t.Errorf("EM did not rank good1 (%f) above noisy (%f)", g.Accuracies[0], g.Accuracies[2])
	}
	probs := g.Probabilities()
	var posAvg, negAvg float64
	for id := 0; id < n; id++ {
		if isPos(id) {
			posAvg += probs[id]
		} else {
			negAvg += probs[id]
		}
	}
	posAvg /= 10
	negAvg /= 20
	if posAvg <= negAvg {
		t.Errorf("posterior does not separate classes: pos=%.3f neg=%.3f", posAvg, negAvg)
	}
}

func TestGenerativeProbabilitiesBounded(t *testing.T) {
	m := NewMatrix(10)
	m.AddRule("a", []int{0, 1, 2}, VotePositive)
	m.AddRule("b", []int{3, 4}, VoteNegative)
	g := FitGenerative(m, GenerativeConfig{Iterations: 5, PriorPositive: 0.3, InitialAccuracy: 0.8})
	for id, p := range g.Probabilities() {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("posterior(%d) = %f", id, p)
		}
	}
	// Invalid config values fall back to defaults without panicking.
	g2 := FitGenerative(m, GenerativeConfig{Iterations: -1, PriorPositive: 2, InitialAccuracy: 0.2})
	if len(g2.Accuracies) != 2 {
		t.Error("fallback config failed")
	}
}

func TestTrainingSet(t *testing.T) {
	probs := []float64{0.9, 0.8, 0.5, 0.1, 0.05}
	ids, labels := TrainingSet(probs, 0.7, 0.2)
	if len(ids) != 4 || len(labels) != 4 {
		t.Fatalf("TrainingSet = %v %v", ids, labels)
	}
	want := map[int]int{0: 1, 1: 1, 3: 0, 4: 0}
	for i, id := range ids {
		if want[id] != labels[i] {
			t.Errorf("id %d labeled %d", id, labels[i])
		}
	}
	if ids2, _ := TrainingSet(nil, 0.7, 0.2); ids2 != nil {
		t.Error("empty probs should give empty training set")
	}
}

// Property: majority-vote probabilities are always in [0,1] and abstain-only
// sentences get the default.
func TestMajorityVoteProperty(t *testing.T) {
	f := func(cov1, cov2 []uint8, def float64) bool {
		def = math.Mod(math.Abs(def), 1)
		m := NewMatrix(20)
		var c1, c2 []int
		for _, x := range cov1 {
			c1 = append(c1, int(x)%20)
		}
		for _, x := range cov2 {
			c2 = append(c2, int(x)%20)
		}
		m.AddRule("a", c1, VotePositive)
		m.AddRule("b", c2, VoteNegative)
		for _, p := range m.MajorityVote(def) {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
