package labelmodel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// The corpus-scale batch pipeline (internal/autolabel) feeds matrices with
// shapes the interactive path never produced: sentences no rule covers,
// single-rule committees, and rules whose coverage is empty after dataset
// filtering. These tests pin the aggregators' behavior on those shapes.

func TestGenerativeZeroCoverageSentences(t *testing.T) {
	m := NewMatrix(6)
	m.AddRule("a", []int{0, 1}, VotePositive)
	m.AddRule("b", []int{1, 2}, VotePositive)
	// Sentences 3-5 receive no votes at all.
	cfg := DefaultGenerativeConfig()
	cfg.PriorPositive = 0.3
	probs := FitGenerative(m, cfg).Probabilities()
	for id := 3; id < 6; id++ {
		if math.Abs(probs[id]-0.3) > 1e-12 {
			t.Errorf("uncovered sentence %d: posterior %f, want the prior 0.3", id, probs[id])
		}
	}
	for id := 0; id < 3; id++ {
		if probs[id] <= 0.3 {
			t.Errorf("covered sentence %d: posterior %f did not move above the prior", id, probs[id])
		}
	}
	if probs2 := m.MajorityVote(0.3); probs2[4] != 0.3 {
		t.Errorf("majority default = %f, want 0.3", probs2[4])
	}
}

func TestGenerativeSingleRuleMatrix(t *testing.T) {
	m := NewMatrix(4)
	m.AddRule("only", []int{0, 2}, VotePositive)
	g := FitGenerative(m, DefaultGenerativeConfig())
	// Leave-one-out: the lone rule is judged against the prior alone, so its
	// accuracy is pulled toward the Beta prior but must stay above chance.
	if len(g.Accuracies) != 1 || g.Accuracies[0] <= 0.5 || g.Accuracies[0] > 0.95 {
		t.Fatalf("single-rule accuracy = %v", g.Accuracies)
	}
	probs := g.Probabilities()
	if probs[0] <= 0.5 || probs[2] <= 0.5 {
		t.Errorf("covered sentences not positive: %v", probs)
	}
	if probs[1] != 0.5 || probs[3] != 0.5 {
		t.Errorf("uncovered sentences moved off the prior: %v", probs)
	}
}

func TestGenerativeAllAbstainRow(t *testing.T) {
	m := NewMatrix(4)
	m.AddRule("live", []int{0, 1}, VotePositive)
	m.AddRule("dead", nil, VotePositive) // covers nothing: every vote abstains
	cfg := DefaultGenerativeConfig()
	g := FitGenerative(m, cfg)
	// A row with no votes has nothing to re-estimate from; it must keep the
	// initial accuracy rather than collapse to 0 or NaN.
	if g.Accuracies[1] != cfg.InitialAccuracy {
		t.Errorf("all-abstain rule accuracy = %f, want initial %f", g.Accuracies[1], cfg.InitialAccuracy)
	}
	for id, p := range g.Probabilities() {
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("posterior(%d) = %f with an all-abstain row", id, p)
		}
	}
}

func TestAddRuleBitsMatchesAddRule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 100
	var ids []int
	for id := 0; id < n; id++ {
		if rng.Intn(3) == 0 {
			ids = append(ids, id)
		}
	}
	a := NewMatrix(n)
	a.AddRule("r", ids, VoteNegative)
	b := NewMatrix(n)
	b.AddRuleBits("r", bitset.FromSorted(ids), VoteNegative)
	for id := 0; id < n; id++ {
		if a.Votes(id)[0] != b.Votes(id)[0] {
			t.Fatalf("sentence %d: AddRule vote %d != AddRuleBits vote %d", id, a.Votes(id)[0], b.Votes(id)[0])
		}
	}
	// Bits beyond the matrix width are ignored, mirroring AddRule's range
	// check.
	c := NewMatrix(4)
	c.AddRuleBits("wide", bitset.FromSorted([]int{1, 9, 15}), VotePositive)
	if got := c.CoverageCount(); got != 1 {
		t.Errorf("out-of-range bits leaked into coverage: %d", got)
	}
}

// TestMajorityGenerativeAgreement is the seeded synthetic-matrix property:
// when a committee of decent rules (accuracy well above chance) votes on a
// known ground truth, the majority-vote and generative aggregators must agree
// on the hard label of almost every covered, non-tied sentence — the
// generative model refines confidences, it does not flip a committee it has
// no evidence against.
func TestMajorityGenerativeAgreement(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 200
		truth := make([]bool, n)
		for id := range truth {
			truth[id] = rng.Intn(2) == 0
		}
		m := NewMatrix(n)
		numRules := 3 + rng.Intn(5)
		for r := 0; r < numRules; r++ {
			ruleAcc := 0.75 + 0.2*rng.Float64()
			var votes []Vote
			for id := 0; id < n; id++ {
				v := VoteAbstain
				if rng.Float64() < 0.4 { // each rule covers ~40% of the corpus
					correct := rng.Float64() < ruleAcc
					if truth[id] == correct {
						v = VotePositive
					} else {
						v = VoteNegative
					}
				}
				votes = append(votes, v)
			}
			m.AddVotes("r", votes)
		}

		maj := m.MajorityVote(0.5)
		gen := FitGenerative(m, DefaultGenerativeConfig()).Probabilities()
		agree, considered := 0, 0
		for id := 0; id < n; id++ {
			if maj[id] == 0.5 { // uncovered or tied: no majority signal
				continue
			}
			considered++
			if (maj[id] > 0.5) == (gen[id] > 0.5) {
				agree++
			}
		}
		if considered == 0 {
			t.Fatalf("seed %d: no covered sentences", seed)
		}
		if rate := float64(agree) / float64(considered); rate < 0.9 {
			t.Errorf("seed %d: aggregators agree on only %.0f%% of %d decided sentences",
				seed, rate*100, considered)
		}
	}
}
