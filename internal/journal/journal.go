// Package journal implements a tiny append-only JSONL write-ahead log for
// workspace events. The serving layer's state evolution is fully determined
// by (engine, event sequence) — see internal/workspace — so durability
// reduces to the classic log-then-replay pattern: every state-changing event
// is appended as one JSON line, and recovery replays the log through the same
// apply functions that served live traffic.
//
// Durability contract: Append writes the line straight to the file descriptor
// (no userspace buffering), so every acknowledged event survives a process
// kill (SIGKILL). fsync is batched — forced every Options.SyncEvery appends
// and by a background ticker every Options.SyncInterval — so a whole-machine
// crash can lose at most the last batch window. Sync and Close force an
// immediate fsync.
//
// Compaction: Rewrite atomically replaces the log with a caller-provided
// event list (per-dataset materializations plus one snapshot per live
// workspace) via write-temp + fsync + rename, truncating unbounded growth
// while preserving recoverability at every instant.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Journal telemetry: append and fsync latency are the durability tax on the
// answer hot path, so both get histograms; compactions are rare and get a
// counter.
var (
	appendDurations = obs.Default().Histogram("darwin_journal_append_duration_seconds",
		"Latency of one journal append (marshal + kernel write; excludes fsync batching).",
		obs.LatencyBuckets)
	fsyncDurations = obs.Default().Histogram("darwin_journal_fsync_duration_seconds",
		"Latency of one journal fsync (batched per Options.SyncEvery / SyncInterval).",
		obs.LatencyBuckets)
	appendTotal = obs.Default().Counter("darwin_journal_appends_total",
		"Events appended to the journal.")
	fsyncTotal = obs.Default().Counter("darwin_journal_fsyncs_total",
		"fsync calls issued by the journal writer.")
	compactionsTotal = obs.Default().Counter("darwin_journal_compactions_total",
		"Snapshot+truncate compactions of the journal.")
)

// Event is one journaled record. Exactly one of WS / Dataset scopes it:
// workspace lifecycle events carry the workspace ID, engine-level events
// (rule materializations) carry the dataset name.
type Event struct {
	// Seq is the file-order sequence number assigned by the Writer.
	Seq uint64 `json:"seq"`
	// Type is the event kind (create, attach, suggest, answer, detach,
	// evict, materialize, snapshot).
	Type string `json:"type"`
	// WS is the workspace ID for workspace-scoped events.
	WS string `json:"ws,omitempty"`
	// Dataset is the dataset name for engine-scoped events.
	Dataset string `json:"dataset,omitempty"`
	// Data is the type-specific payload (defined by the emitting package).
	Data json.RawMessage `json:"data,omitempty"`
}

// Options tunes the writer's fsync batching.
type Options struct {
	// SyncEvery forces an fsync after this many appends (default 64;
	// 1 fsyncs every append).
	SyncEvery int
	// SyncInterval is the background fsync period for idle batches
	// (default 100ms; negative disables the background syncer).
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	return o
}

// Writer appends events to a JSONL log file. It is safe for concurrent use;
// appends are serialized and their file order defines replay order.
type Writer struct {
	mu      sync.Mutex //darwin:lockrank journal
	f       *os.File
	path    string
	opts    Options
	seq     uint64 // last assigned sequence number
	since   int    // appends since the last Rewrite (compaction trigger)
	pending int    // appends since the last fsync
	dirty   bool
	err     error // sticky I/O error; all later operations fail fast

	// gen counts Rewrites: followers tailing the file detect a compaction
	// (which reassigns every sequence number) as a generation bump and
	// restart from offset 0. notify is closed and replaced on every append
	// so followers can block without polling.
	gen    uint64
	notify chan struct{}

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if absent) the journal at path for appending and
// returns the writer together with all events already in the log, in file
// order. A torn final line — the signature of a crash mid-append — is
// tolerated, dropped, and truncated away so a subsequent append cannot merge
// with the torn bytes and corrupt the line framing; corruption earlier in
// the file is an error.
func Open(path string, opts Options) (*Writer, []Event, error) {
	events, validEnd, needNL, err := readAll(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	if fi, serr := f.Stat(); serr == nil && fi.Size() > validEnd {
		// Crash artifact: a torn tail after the last fully-valid line. Repair
		// the file in place before appending over it.
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
	}
	if needNL {
		// The last valid line parsed but lost its terminating newline in a
		// crash; terminate it so the next append starts a fresh line.
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: repair %s: %w", path, err)
		}
	}
	w := &Writer{
		f:      f,
		path:   path,
		opts:   opts.withDefaults(),
		gen:    1,
		notify: make(chan struct{}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if n := len(events); n > 0 {
		w.seq = events[n-1].Seq
	}
	go w.syncLoop()
	return w, events, nil
}

// ReadAll reads every event in the log at path, in file order. A missing
// file yields no events. A torn final line is dropped; a corrupt line that
// is followed by valid lines is an error (real corruption, not a crash).
func ReadAll(path string) ([]Event, error) {
	events, _, _, err := readAll(path)
	return events, err
}

// readAll is ReadAll plus recovery bookkeeping: validEnd is the byte offset
// just past the last line that belongs in the repaired log, and needNL
// reports that the final valid line is missing its terminating newline.
func readAll(path string) (events []Event, validEnd int64, needNL bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("journal: read %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	badLine := -1
	var badErr error
	var off int64
	line := 0
	for {
		b, rerr := br.ReadBytes('\n')
		if len(b) > 0 {
			line++
			complete := rerr == nil
			trimmed := bytes.TrimRight(b, "\r\n")
			if len(trimmed) > 0 {
				var ev Event
				if uerr := json.Unmarshal(trimmed, &ev); uerr != nil {
					if badLine >= 0 {
						return nil, 0, false, fmt.Errorf("journal: %s line %d: %v", path, badLine, badErr)
					}
					badLine, badErr = line, uerr
				} else {
					if badLine >= 0 {
						// A valid line after a bad one: the bad line was not a
						// torn tail.
						return nil, 0, false, fmt.Errorf("journal: %s line %d: %v", path, badLine, badErr)
					}
					events = append(events, ev)
					validEnd = off + int64(len(b))
					needNL = !complete
				}
			} else if complete && badLine < 0 {
				validEnd = off + int64(len(b))
			}
			off += int64(len(b))
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, 0, false, fmt.Errorf("journal: scan %s: %w", path, rerr)
		}
	}
	return events, validEnd, needNL, nil
}

// Append marshals data, assigns the next sequence number and writes the
// event as one JSON line, flushing it to the kernel before returning. The
// event is fsync-durable within the configured batch window.
//
//darwin:journals
func (w *Writer) Append(typ, ws, dataset string, data any) (Event, error) {
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return Event{}, fmt.Errorf("journal: marshal %s event: %w", typ, err)
		}
		raw = b
	}
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return Event{}, w.err
	}
	ev := Event{Seq: w.seq + 1, Type: typ, WS: ws, Dataset: dataset, Data: raw}
	line, err := json.Marshal(ev)
	if err != nil {
		return Event{}, fmt.Errorf("journal: marshal event: %w", err)
	}
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		w.err = fmt.Errorf("journal: append: %w", err)
		return Event{}, w.err
	}
	w.seq = ev.Seq
	w.since++
	w.pending++
	w.dirty = true
	// Observed before a batch-boundary fsync so the append histogram
	// measures marshal + lock wait + kernel write only; fsync cost has its
	// own series.
	appendTotal.Inc()
	appendDurations.ObserveSince(start)
	w.broadcastLocked()
	if w.pending >= w.opts.SyncEvery {
		w.syncLocked()
	}
	return ev, nil
}

// broadcastLocked wakes every follower blocked in Next by closing the
// current notify channel and installing a fresh one.
func (w *Writer) broadcastLocked() {
	close(w.notify)
	w.notify = make(chan struct{})
}

// Seq returns the last assigned sequence number.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Generation counts compactions: it starts at 1 and is bumped by every
// Rewrite. Sequence numbers are only comparable within one generation.
func (w *Writer) Generation() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// state snapshots the notify channel and generation together so a follower
// can check for a generation change, read the file, and then block without
// missing an append that lands in between.
func (w *Writer) state() (<-chan struct{}, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.notify, w.gen
}

// SinceRewrite returns the number of appends since the log was last
// compacted (or opened). Managers use it as the compaction trigger.
func (w *Writer) SinceRewrite() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.since
}

// Sync forces an fsync of all appended events.
//
//darwin:journals
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.syncLocked()
	return w.err
}

func (w *Writer) syncLocked() {
	if !w.dirty || w.err != nil {
		return
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: fsync: %w", err)
		return
	}
	fsyncTotal.Inc()
	fsyncDurations.ObserveSince(start)
	w.dirty = false
	w.pending = 0
}

// syncLoop is the background batched-fsync ticker.
func (w *Writer) syncLoop() {
	defer close(w.done)
	if w.opts.SyncInterval < 0 {
		<-w.stop
		return
	}
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.mu.Lock()
			w.syncLocked()
			w.mu.Unlock()
		case <-w.stop:
			return
		}
	}
}

// Rewrite atomically replaces the log's contents with the given events —
// the snapshot+truncate compaction step. Sequence numbers are reassigned
// from 1 and subsequent appends continue after them. Callers must ensure no
// concurrent appender holds state that the new event list does not capture
// (see workspace.Manager.Compact for the locking discipline).
func (w *Writer) Rewrite(events []Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	tmp := w.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	bw := bufio.NewWriter(f)
	for i := range events {
		events[i].Seq = uint64(i + 1)
		line, err := json.Marshal(events[i])
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: compact marshal: %w", err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: compact flush: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	syncDir(w.path)
	old := w.f
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.err = fmt.Errorf("journal: reopen after compact: %w", err)
		return w.err
	}
	old.Close()
	w.f = nf
	w.seq = uint64(len(events))
	w.since = 0
	w.pending = 0
	w.dirty = false
	w.gen++
	w.broadcastLocked()
	compactionsTotal.Inc()
	return nil
}

// syncDir fsyncs the directory containing path so a rename is durable.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Close stops the background syncer, fsyncs and closes the file.
func (w *Writer) Close() error {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	// Wake blocked followers one last time; the fresh channel is never
	// closed again, so they park on their contexts from here on.
	w.broadcastLocked()
	w.syncLocked()
	err := w.err
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if w.err == nil {
		w.err = fmt.Errorf("journal: writer closed")
	}
	return err
}
