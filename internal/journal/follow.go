package journal

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Follower tails a live journal by byte offset, independently of the
// Writer's append path: it opens its own read-only descriptor and parses
// complete lines as they land, blocking on the Writer's notify channel in
// between. It is the primary-side source for journal replication
// (internal/replicate).
//
// A Follower is single-goroutine: do not call Next concurrently.
type Follower struct {
	w   *Writer
	f   *os.File
	off int64
	rem []byte // partial trailing line carried between reads
	gen uint64 // generation of the file f reads from (0 before first Next)
}

// Follow returns a new Follower positioned at the start of the journal.
func (w *Writer) Follow() *Follower {
	return &Follower{w: w}
}

// Next blocks until at least one new event is available, the journal is
// compacted, or ctx ends. On a compaction (generation change) it returns
// (nil, true, nil): the caller must discard all derived downstream state,
// and the next call re-reads the rewritten file from offset 0. A ctx
// deadline surfaces as ctx.Err() — callers use short deadlines as a
// heartbeat tick.
func (fl *Follower) Next(ctx context.Context) (events []Event, reset bool, err error) {
	for {
		// Snapshot (notify, generation) before reading: an append that lands
		// after the read began either was seen by the read or has closed ch.
		ch, gen := fl.w.state()
		if fl.gen != gen {
			started := fl.gen != 0
			fl.reopen(gen)
			if started {
				return nil, true, nil
			}
		}
		evs, rerr := fl.read()
		if rerr != nil {
			return nil, false, rerr
		}
		if len(evs) > 0 {
			// A compaction can slip between state() and a lazy re-open of the
			// file, in which case these events were parsed from the rewritten
			// file under a stale generation. Drop them; the next iteration
			// observes the bump and signals the reset properly.
			if _, cur := fl.w.state(); cur != fl.gen {
				continue
			}
			return evs, false, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-ch:
		}
	}
}

// Generation reports the journal generation the follower is currently bound
// to (0 before the first Next). Batches derived from returned events should
// be stamped with this, not the Writer's live generation, which may already
// have moved on.
func (fl *Follower) Generation() uint64 {
	return fl.gen
}

// reopen discards the current descriptor and parse state and rebinds the
// follower to the given generation, starting from offset 0.
func (fl *Follower) reopen(gen uint64) {
	if fl.f != nil {
		fl.f.Close()
		fl.f = nil
	}
	fl.off = 0
	fl.rem = nil
	fl.gen = gen
}

// read drains everything currently appended past the follower's offset and
// returns the complete events found. A trailing partial line (an append's
// write observed mid-flight) is carried over to the next call; a complete
// line that fails to parse is real corruption and an error.
func (fl *Follower) read() ([]Event, error) {
	if fl.f == nil {
		f, err := os.Open(fl.w.path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil
			}
			return nil, fmt.Errorf("journal: follow %s: %w", fl.w.path, err)
		}
		fl.f = f
	}
	var events []Event
	buf := make([]byte, 256<<10)
	for {
		n, rerr := fl.f.ReadAt(buf, fl.off)
		if n > 0 {
			fl.off += int64(n)
			data := append(fl.rem, buf[:n]...)
			for {
				i := bytes.IndexByte(data, '\n')
				if i < 0 {
					break
				}
				line := bytes.TrimRight(data[:i], "\r")
				data = data[i+1:]
				if len(line) == 0 {
					continue
				}
				var ev Event
				if err := json.Unmarshal(line, &ev); err != nil {
					return nil, fmt.Errorf("journal: follow %s: corrupt line: %w", fl.w.path, err)
				}
				events = append(events, ev)
			}
			fl.rem = append(fl.rem[:0], data...)
		}
		if rerr == io.EOF {
			return events, nil
		}
		if rerr != nil {
			return events, fmt.Errorf("journal: follow %s: %w", fl.w.path, rerr)
		}
	}
}

// Close releases the follower's file descriptor. The parent Writer is not
// affected.
func (fl *Follower) Close() {
	if fl.f != nil {
		fl.f.Close()
		fl.f = nil
	}
}
