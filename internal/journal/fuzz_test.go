package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the journal's recovery path
// and checks the crash-repair invariants that every replay consumer
// (workspace recovery, replication followers, labeling-job re-runs) relies
// on:
//
//  1. ReadAll and Open never panic, and agree with each other: same
//     error-ness, same events.
//  2. A successful Open has repaired the file in place (torn tail
//     truncated, missing newline terminated): an immediate reopen parses
//     the identical event list with no error.
//  3. The repaired log accepts appends, continuing the sequence from the
//     last recovered event, and the appended record is read back verbatim.
func FuzzJournalReplay(f *testing.F) {
	// A clean two-dataset log: interleaved ingest and fence events, the two
	// engine-scoped types compaction re-emits.
	f.Add([]byte(`{"seq":1,"type":"ingest","dataset":"a","data":{"from":0}}` + "\n" +
		`{"seq":2,"type":"fence","dataset":"a","data":{"epoch":3}}` + "\n" +
		`{"seq":3,"type":"ingest","dataset":"b","data":{"from":4}}` + "\n"))
	// Duplicate terminal records: the same evict twice (crash between a
	// re-emitted record and its ack can legitimately double-append).
	f.Add([]byte(`{"seq":1,"type":"create","ws":"w1"}` + "\n" +
		`{"seq":2,"type":"evict","ws":"w1"}` + "\n" +
		`{"seq":2,"type":"evict","ws":"w1"}` + "\n"))
	// Torn tail: a valid line, then a partial write with no newline.
	f.Add([]byte(`{"seq":1,"type":"fence","dataset":"a"}` + "\n" + `{"seq":2,"ty`))
	// Valid line that lost only its terminating newline.
	f.Add([]byte(`{"seq":1,"type":"ingest","dataset":"a"}`))
	// Corruption followed by a valid line (a real error, not a crash).
	f.Add([]byte("not json\n" + `{"seq":2,"type":"fence","dataset":"a"}` + "\n"))
	f.Add([]byte{})
	f.Add([]byte("\x00\xff\x00"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal.jsonl")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		events, rerr := ReadAll(path)
		w, opened, oerr := Open(path, Options{SyncInterval: -1})
		if (rerr == nil) != (oerr == nil) {
			t.Fatalf("ReadAll err=%v but Open err=%v", rerr, oerr)
		}
		if oerr != nil {
			return
		}
		defer w.Close()
		if !reflect.DeepEqual(events, opened) {
			t.Fatalf("ReadAll and Open disagree:\nReadAll: %+v\nOpen:    %+v", events, opened)
		}

		// Open repaired the file in place: a reopen sees exactly the same
		// events, with no torn tail left to drop.
		reread, err := ReadAll(path)
		if err != nil {
			t.Fatalf("reread after repair: %v", err)
		}
		if !reflect.DeepEqual(reread, opened) {
			t.Fatalf("repair not idempotent:\nfirst:  %+v\nsecond: %+v", opened, reread)
		}

		// The repaired log accepts appends and the record survives a reopen,
		// sequenced after everything recovered.
		ev, err := w.Append("fence", "", "fuzz", map[string]int{"epoch": 1})
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		var wantSeq uint64 = 1
		if n := len(opened); n > 0 {
			wantSeq = opened[n-1].Seq + 1
		}
		if ev.Seq != wantSeq {
			t.Fatalf("append seq=%d, want %d (continuing the recovered log)", ev.Seq, wantSeq)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("sync after append: %v", err)
		}
		final, err := ReadAll(path)
		if err != nil {
			t.Fatalf("read after append: %v", err)
		}
		if len(final) != len(opened)+1 {
			t.Fatalf("got %d events after append, want %d", len(final), len(opened)+1)
		}
		last := final[len(final)-1]
		if last.Seq != ev.Seq || last.Type != "fence" || last.Dataset != "fuzz" {
			t.Fatalf("appended record read back as %+v, want %+v", last, ev)
		}
	})
}
