package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, path string) (*Writer, []Event) {
	t.Helper()
	w, events, err := Open(path, Options{SyncEvery: 1, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, events
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, events := openT(t, path)
	if len(events) != 0 {
		t.Fatalf("fresh journal has %d events", len(events))
	}
	type payload struct {
		N int `json:"n"`
	}
	for i := 1; i <= 5; i++ {
		ev, err := w.Append("answer", "ws1", "", payload{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, ev.Seq)
		}
	}
	if _, err := w.Append("materialize", "", "directions", payload{N: 6}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("read %d events, want 6", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if got[0].WS != "ws1" || got[0].Type != "answer" {
		t.Fatalf("bad event: %+v", got[0])
	}
	if got[5].Dataset != "directions" {
		t.Fatalf("bad dataset event: %+v", got[5])
	}
	var p payload
	if err := json.Unmarshal(got[2].Data, &p); err != nil || p.N != 3 {
		t.Fatalf("payload round trip: %+v err=%v", p, err)
	}

	// Reopening continues the sequence after the existing events.
	w2, events2 := openT(t, path)
	if len(events2) != 6 {
		t.Fatalf("reopen read %d events", len(events2))
	}
	ev, err := w2.Append("evict", "ws1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 7 {
		t.Fatalf("continued seq = %d, want 7", ev.Seq)
	}
}

func TestReadAllMissingFile(t *testing.T) {
	events, err := ReadAll(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || events != nil {
		t.Fatalf("missing file: events=%v err=%v", events, err)
	}
}

// TestTornTailTolerated simulates a crash mid-append: a truncated final line
// must be dropped silently, and appending afterwards must keep the log
// readable.
func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _ := openT(t, path)
	w.Append("create", "ws1", "", nil)
	w.Append("answer", "ws1", "", nil)
	w.Close()
	// Tear the last line in half.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-15], 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != "create" {
		t.Fatalf("torn tail: got %+v", events)
	}
}

// TestMidFileCorruptionIsAnError distinguishes a torn tail (crash) from real
// corruption: a bad line followed by valid lines must fail loudly.
func TestMidFileCorruptionIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"seq":1,"type":"create","ws":"a"}` + "\n" +
		`garbage not json` + "\n" +
		`{"seq":3,"type":"answer","ws":"a"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(path); err == nil {
		t.Fatal("mid-file corruption should be an error")
	}
}

func TestRewriteCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _ := openT(t, path)
	for i := 0; i < 10; i++ {
		if _, err := w.Append("answer", "ws1", "", nil); err != nil {
			t.Fatal(err)
		}
	}
	if w.SinceRewrite() != 10 {
		t.Fatalf("SinceRewrite = %d", w.SinceRewrite())
	}
	snap, _ := json.Marshal(map[string]int{"state": 42})
	if err := w.Rewrite([]Event{{Type: "snapshot", WS: "ws1", Data: snap}}); err != nil {
		t.Fatal(err)
	}
	if w.SinceRewrite() != 0 {
		t.Fatalf("SinceRewrite after compaction = %d", w.SinceRewrite())
	}
	// Appends continue after the rewritten events, into the new file.
	if _, err := w.Append("answer", "ws1", "", nil); err != nil {
		t.Fatal(err)
	}
	events, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Type != "snapshot" || events[1].Seq != 2 {
		t.Fatalf("compacted log: %+v", events)
	}
}

func TestCloseFlushesAndSticks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{SyncEvery: 1000, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	w.Append("create", "ws1", "", nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append("answer", "ws1", "", nil); err == nil {
		t.Fatal("append after close should fail")
	}
	events, err := ReadAll(path)
	if err != nil || len(events) != 1 {
		t.Fatalf("after close: %d events, err=%v", len(events), err)
	}
}
