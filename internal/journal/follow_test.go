package journal

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// drain pulls events from the follower until want have arrived or the
// deadline passes.
func drain(t *testing.T, fl *Follower, want int) []Event {
	t.Helper()
	var got []Event
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < want {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		evs, reset, err := fl.Next(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Next after %d/%d events: %v", len(got), want, err)
		}
		if reset {
			got = got[:0]
			continue
		}
		got = append(got, evs...)
	}
	return got
}

func TestFollowerTailsLiveAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	fl := w.Follow()
	defer fl.Close()

	// Appends before the first Next are visible from offset 0.
	for i := 0; i < 3; i++ {
		if _, err := w.Append("create", "ws1", "", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(t, fl, 3)
	if got[0].Seq != 1 || got[2].Seq != 3 {
		t.Fatalf("seqs %d..%d, want 1..3", got[0].Seq, got[2].Seq)
	}

	// Appends racing a blocked Next wake it.
	done := make(chan []Event, 1)
	go func() {
		done <- drain(t, fl, 2)
	}()
	time.Sleep(20 * time.Millisecond)
	w.Append("answer", "ws1", "", nil)
	w.Append("answer", "ws1", "", nil)
	select {
	case evs := <-done:
		if evs[0].Seq != 4 || evs[1].Seq != 5 {
			t.Fatalf("tail seqs %d,%d want 4,5", evs[0].Seq, evs[1].Seq)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never woke on append")
	}

	// A deadline with no traffic surfaces as ctx.Err (the heartbeat path).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := fl.Next(ctx); err != context.DeadlineExceeded {
		t.Fatalf("idle Next: %v, want DeadlineExceeded", err)
	}
}

func TestFollowerResetsOnRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 4; i++ {
		w.Append("create", "ws", "", nil)
	}
	fl := w.Follow()
	defer fl.Close()
	if evs := drain(t, fl, 4); evs[3].Seq != 4 {
		t.Fatalf("pre-compact tail seq %d, want 4", evs[3].Seq)
	}

	// Compact down to one snapshot event: the follower must signal reset,
	// then replay the rewritten file from scratch.
	if err := w.Rewrite([]Event{{Type: "snapshot", WS: "ws"}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	evs, reset, err := fl.Next(ctx)
	if err != nil || !reset || evs != nil {
		t.Fatalf("post-compact Next = (%v, reset=%v, %v), want reset", evs, reset, err)
	}
	after := drain(t, fl, 1)
	if after[0].Seq != 1 || after[0].Type != "snapshot" {
		t.Fatalf("post-reset event %+v, want snapshot seq 1", after[0])
	}
	if g := w.Generation(); g != 2 {
		t.Fatalf("generation %d, want 2", g)
	}
}

// TestOpenRepairsTornTail pins the crash-repair contract: a torn final line
// is not just skipped on read — Open truncates it away so the next append
// cannot merge with the torn bytes and corrupt line framing for every later
// recovery.
func TestOpenRepairsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	w.Append("create", "ws1", "", nil)
	w.Append("answer", "ws1", "", map[string]bool{"accept": true})
	w.Close()

	// Simulate a crash mid-append: half a JSON line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"type":"ans`)
	f.Close()

	w2, events, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("recovered %d events, want 2", len(events))
	}
	// The append that used to merge into the torn bytes.
	if _, err := w2.Append("answer", "ws1", "", nil); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	// Every subsequent full read must see clean framing.
	events, err = ReadAll(path)
	if err != nil {
		t.Fatalf("ReadAll after repair+append: %v", err)
	}
	if len(events) != 3 || events[2].Seq != 3 {
		t.Fatalf("post-repair log = %d events (last seq %d), want 3 ending at seq 3", len(events), events[len(events)-1].Seq)
	}
}

// TestOpenRepairsMissingNewline covers the rarer tear: the final line is
// complete, valid JSON but lost its terminating newline.
func TestOpenRepairsMissingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte(`{"seq":1,"type":"create","ws":"a"}`+"\n"+`{"seq":2,"type":"answer","ws":"a"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	w, events, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("recovered %d events, want 2", len(events))
	}
	if _, err := w.Append("evict", "a", "", nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	events, err = ReadAll(path)
	if err != nil {
		t.Fatalf("ReadAll after newline repair: %v", err)
	}
	if len(events) != 3 || events[2].Type != "evict" {
		t.Fatalf("post-repair log = %+v, want 3 events ending in evict", events)
	}
}
