package experiments

import (
	"strconv"
	"time"

	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/oracle"
)

// ParamCurve is one sensitivity series: a parameter value and the resulting
// per-question coverage curve.
type ParamCurve struct {
	Label string
	Value float64
	Curve eval.Curve
}

// Figure12Tau regenerates Figure 12a: the sensitivity of Darwin(HS) to the
// mode-switching parameter τ on the musicians dataset (τ ∈ {3,5,7,9}).
func (o Options) Figure12Tau(taus []int) ([]ParamCurve, error) {
	if len(taus) == 0 {
		taus = []int{3, 5, 7, 9}
	}
	c, err := o.Dataset("musicians")
	if err != nil {
		return nil, err
	}
	var out []ParamCurve
	for _, tau := range taus {
		cfg := o.engineConfig()
		cfg.Traversal = "hybrid"
		cfg.Tau = tau
		run, err := runDarwin(c, cfg, "darwin-hs", nil,
			[]string{SeedRuleFor("musicians")}, nil, oracle.NewGroundTruth(c), o.EvalEvery)
		if err != nil {
			return nil, err
		}
		out = append(out, ParamCurve{Label: "tau=" + itoa(tau), Value: float64(tau), Curve: run.Coverage})
	}
	return out, nil
}

// Figure12SeedRules returns the three seed rules of Figure 12b for the
// musicians dataset: a precise keyword ('composer'), a broader keyword
// ('piano'), and a full seed sentence (resolved against the generated corpus
// at run time, mirroring the paper's 'Beethoven taught piano to the
// daughters of ...' example).
func Figure12SeedRules() []string {
	return []string{
		"composer",
		"piano",
		"@sentence:taught piano to",
	}
}

// Figure12Seeds regenerates Figure 12b: the sensitivity of Darwin(HS) to the
// choice of seed rule on the musicians dataset. Seed specifications of the
// form "@sentence:<phrase>" are resolved to the full text of the first corpus
// sentence containing the phrase (a whole-sentence seed rule, the paper's
// Rule 3).
func (o Options) Figure12Seeds(seedRules []string) ([]ParamCurve, error) {
	if len(seedRules) == 0 {
		seedRules = Figure12SeedRules()
	}
	c, err := o.Dataset("musicians")
	if err != nil {
		return nil, err
	}
	resolved := make([]string, 0, len(seedRules))
	for _, seed := range seedRules {
		if phrase, ok := sentenceSeed(seed); ok {
			if text := findSentenceWith(c, phrase); text != "" {
				seed = text
			} else {
				seed = phrase
			}
		}
		resolved = append(resolved, seed)
	}
	var out []ParamCurve
	for i, seed := range resolved {
		cfg := o.engineConfig()
		cfg.Traversal = "hybrid"
		run, err := runDarwin(c, cfg, "darwin-hs", nil,
			[]string{seed}, nil, oracle.NewGroundTruth(c), o.EvalEvery)
		if err != nil {
			return nil, err
		}
		out = append(out, ParamCurve{Label: "rule " + itoa(i+1), Value: float64(i + 1), Curve: run.Coverage})
	}
	return out, nil
}

// Figure13Candidates regenerates Figure 13: the sensitivity of Darwin(HS) to
// the number of candidates generated per iteration ({5K, 10K, 20K} in the
// paper, scaled alongside everything else here).
func (o Options) Figure13Candidates(candidateCounts []int) ([]ParamCurve, error) {
	if len(candidateCounts) == 0 {
		candidateCounts = []int{o.NumCandidates / 2, o.NumCandidates, o.NumCandidates * 2}
	}
	c, err := o.Dataset("musicians")
	if err != nil {
		return nil, err
	}
	var out []ParamCurve
	for _, k := range candidateCounts {
		cfg := o.engineConfig()
		cfg.Traversal = "hybrid"
		cfg.NumCandidates = k
		run, err := runDarwin(c, cfg, "darwin-hs", nil,
			[]string{SeedRuleFor("musicians")}, nil, oracle.NewGroundTruth(c), o.EvalEvery)
		if err != nil {
			return nil, err
		}
		out = append(out, ParamCurve{Label: itoa(k) + " candidates", Value: float64(k), Curve: run.Coverage})
	}
	return out, nil
}

// EpochsPoint is one x-position of Figure 14: classifier training epochs vs.
// the number of questions Darwin(HS) needs to reach the target coverage.
type EpochsPoint struct {
	Epochs            int
	QuestionsToTarget int
	FinalCoverage     float64
}

// Figure14Epochs regenerates Figure 14: the effect of classifier quality
// (training epochs, a proxy for over/under-fitting) on the number of
// questions needed to label at least targetCoverage of the positives on the
// musicians dataset.
func (o Options) Figure14Epochs(epochs []int, targetCoverage float64) ([]EpochsPoint, error) {
	if len(epochs) == 0 {
		epochs = []int{4, 6, 8, 10, 12}
	}
	if targetCoverage <= 0 {
		targetCoverage = 0.75
	}
	c, err := o.Dataset("musicians")
	if err != nil {
		return nil, err
	}
	var out []EpochsPoint
	for _, ep := range epochs {
		cfg := o.engineConfig()
		cfg.Traversal = "hybrid"
		cfg.Classifier.Epochs = ep
		run, err := runDarwin(c, cfg, "darwin-hs", nil,
			[]string{SeedRuleFor("musicians")}, nil, oracle.NewGroundTruth(c), o.EvalEvery)
		if err != nil {
			return nil, err
		}
		out = append(out, EpochsPoint{
			Epochs:            ep,
			QuestionsToTarget: run.Coverage.QuestionsToReach(targetCoverage),
			FinalCoverage:     run.Coverage.Final(),
		})
	}
	return out, nil
}

// EfficiencyResult is one row of the §4.5 efficiency study.
type EfficiencyResult struct {
	Dataset    string
	Sentences  int
	IndexBuild time.Duration
	TotalRun   time.Duration
	Questions  int
	Coverage   float64
}

// Efficiency measures index-construction and end-to-end label-collection time
// on the professions dataset at increasing corpus sizes (the paper reports
// <5 min index construction and an end-to-end run of ~65 min on 1M sentences
// with the lazy-scoring optimization).
func (o Options) Efficiency(sizes []int) ([]EfficiencyResult, error) {
	if len(sizes) == 0 {
		sizes = []int{5000, 20000, 50000}
	}
	var out []EfficiencyResult
	for _, n := range sizes {
		spec := datagen.ProfessionsSpec()
		spec.NumSentences = n
		c := datagen.Generate(spec, o.Seed)
		c.Preprocess(corpus.PreprocessOptions{Parse: o.UseTreeMatch})
		cfg := o.engineConfig()
		cfg.Traversal = "hybrid"
		cfg.LazyScoring = true
		run, err := runDarwin(c, cfg, "darwin-hs", nil,
			[]string{SeedRuleFor("professions")}, nil, oracle.NewGroundTruth(c), o.EvalEvery)
		if err != nil {
			return nil, err
		}
		out = append(out, EfficiencyResult{
			Dataset:    "professions",
			Sentences:  n,
			IndexBuild: run.Report.IndexBuild,
			TotalRun:   run.Report.Total,
			Questions:  run.Report.Questions,
			Coverage:   run.Coverage.Final(),
		})
	}
	return out, nil
}

func itoa(x int) string { return strconv.Itoa(x) }

// sentenceSeed recognizes the "@sentence:<phrase>" seed specification.
func sentenceSeed(spec string) (string, bool) {
	const prefix = "@sentence:"
	if len(spec) > len(prefix) && spec[:len(prefix)] == prefix {
		return spec[len(prefix):], true
	}
	return "", false
}

// findSentenceWith returns the text of the first corpus sentence whose text
// contains the phrase (case-insensitive on the tokenized form), or "".
func findSentenceWith(c *corpus.Corpus, phrase string) string {
	var want []string
	start := 0
	for i := 0; i <= len(phrase); i++ {
		if i == len(phrase) || phrase[i] == ' ' {
			if i > start {
				want = append(want, phrase[start:i])
			}
			start = i + 1
		}
	}
	if len(want) == 0 {
		return ""
	}
	for _, s := range c.Sentences {
		toks := s.Tokens
		for i := 0; i+len(want) <= len(toks); i++ {
			ok := true
			for j := range want {
				if toks[i+j] != want[j] {
					ok = false
					break
				}
			}
			if ok {
				return s.Text
			}
		}
	}
	return ""
}
