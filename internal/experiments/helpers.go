package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/oracle"
	"repro/internal/traversal"
)

// newRand returns a seeded random source for experiment-level sampling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// embeddingModel trains the shared word embeddings for a corpus, or returns
// nil when embeddings are disabled.
func (o Options) embeddingModel(c *corpus.Corpus) *embedding.Model {
	if o.EmbeddingDim <= 0 {
		return nil
	}
	return embedding.Train(c.TokenizedSentences(), o.embeddingConfig())
}

// Dataset generates (and preprocesses) one of the five paper datasets at the
// options' scale.
func (o Options) Dataset(name string) (*corpus.Corpus, error) {
	c, err := datagen.ByName(name, o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	c.Preprocess(corpus.PreprocessOptions{Parse: o.UseTreeMatch})
	return c, nil
}

// DarwinRun bundles the report and the per-question curves of one Darwin run.
type DarwinRun struct {
	// Method names the technique ("darwin-hs", "darwin-us", "darwin-ls",
	// "highP", "highC", ...).
	Method string
	// Report is the engine's run report.
	Report *core.Report
	// Coverage is the per-question fraction of gold positives discovered.
	Coverage eval.Curve
	// FScore is the per-question best-F1 of the engine's classifier.
	FScore eval.Curve
}

// runDarwin runs the engine on the corpus with the given traversal override
// ("" uses cfg.Traversal) and builds the per-question curves.
func runDarwin(c *corpus.Corpus, cfg core.Config, method string, custom traversal.Traversal,
	seedRules []string, seedIDs []int, o oracle.Oracle, evalEvery int) (DarwinRun, error) {

	if custom != nil {
		cfg.CustomTraversal = custom
	}
	engine, err := core.New(c, cfg)
	if err != nil {
		return DarwinRun{}, fmt.Errorf("experiments: %s: %w", method, err)
	}
	run := DarwinRun{Method: method,
		Coverage: eval.Curve{Name: method},
		FScore:   eval.Curve{Name: method},
	}
	if evalEvery <= 0 {
		evalEvery = 10
	}
	report, err := engine.Run(core.RunOptions{
		SeedRules:       seedRules,
		SeedPositiveIDs: seedIDs,
		Oracle:          o,
		OnQuery: func(rec core.RuleRecord, e *core.Engine) {
			if rec.Question%evalEvery == 0 || rec.Question == cfg.Budget {
				f1, _ := eval.BestF1(c, e.Scores())
				run.FScore.Points = append(run.FScore.Points, eval.CurvePoint{Questions: rec.Question, Value: f1})
			}
		},
	})
	if err != nil {
		return DarwinRun{}, fmt.Errorf("experiments: %s: %w", method, err)
	}
	run.Report = report
	run.Coverage = coverageCurve(c, report, method)
	return run, nil
}

// coverageCurve reconstructs the per-question coverage curve from a report:
// the union of seed coverage (question 0) plus the accepted rules' additions.
func coverageCurve(c *corpus.Corpus, report *core.Report, name string) eval.Curve {
	curve := eval.Curve{Name: name}
	discovered := map[int]bool{}
	for _, rec := range report.Accepted {
		if rec.Question == 0 {
			for _, id := range rec.AddedIDs {
				discovered[id] = true
			}
		}
	}
	curve.Points = append(curve.Points, eval.CurvePoint{Questions: 0, Value: eval.CoverageOfSet(c, discovered)})
	for _, rec := range report.History {
		for _, id := range rec.AddedIDs {
			discovered[id] = true
		}
		curve.Points = append(curve.Points, eval.CurvePoint{
			Questions: rec.Question,
			Value:     eval.CoverageOfSet(c, discovered),
		})
	}
	return curve
}

// darwinVariant runs one Darwin traversal variant ("hybrid", "universal",
// "local") with the dataset's default seed rule and a ground-truth oracle.
func (o Options) darwinVariant(c *corpus.Corpus, dataset, variant string) (DarwinRun, error) {
	cfg := o.engineConfig()
	cfg.Traversal = variant
	seed := SeedRuleFor(dataset)
	return runDarwin(c, cfg, "darwin-"+shortName(variant), nil,
		[]string{seed}, nil, oracle.NewGroundTruth(c), o.EvalEvery)
}

func shortName(variant string) string {
	switch variant {
	case "hybrid":
		return "hs"
	case "universal":
		return "us"
	case "local":
		return "ls"
	default:
		return variant
	}
}
