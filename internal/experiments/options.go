// Package experiments contains one driver per table and figure of the
// paper's evaluation section (§4). Each driver generates (or accepts) the
// corresponding synthetic dataset, runs Darwin and the relevant baselines,
// and returns the rows/series the paper reports so that cmd/benchrunner and
// the root bench_test.go can print them.
//
// Absolute numbers differ from the paper (synthetic corpora, substitute
// classifier), but the comparative shape — which technique wins, by roughly
// what factor, and where the crossovers fall — is what these drivers
// reproduce; EXPERIMENTS.md records the measured values next to the paper's.
package experiments

import (
	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/grammar"
	"repro/internal/tokensregex"
	"repro/internal/treematch"
)

// Options is the shared experiment configuration. The zero value is not
// useful; start from DefaultOptions (laptop-scale, minutes per experiment) or
// QuickOptions (CI-scale, seconds per experiment) and override as needed.
type Options struct {
	// Scale multiplies every dataset's Table 1 size (1.0 = paper size;
	// professions defaults to 100K at scale 1).
	Scale float64
	// Budget is the oracle query budget per Darwin run.
	Budget int
	// NumCandidates is k of Algorithm 2.
	NumCandidates int
	// SketchDepth bounds derivation sketches.
	SketchDepth int
	// EvalEvery controls how often per-question F-scores are computed.
	EvalEvery int
	// Seed drives dataset generation and every engine.
	Seed int64
	// UseTreeMatch enables the TreeMatch grammar in addition to TokensRegex.
	// TokensRegex alone is sufficient for the phrase-style tasks and is much
	// faster; cause-effect and professions benefit from TreeMatch rules.
	UseTreeMatch bool
	// ClassifierEpochs is the number of training epochs of the p_s model.
	ClassifierEpochs int
	// EmbeddingDim is the word-embedding dimensionality (0 disables).
	EmbeddingDim int
}

// DefaultOptions returns laptop-scale settings: datasets at 20% of their
// Table 1 size, a budget of 100 questions, 2000 candidates per iteration.
func DefaultOptions() Options {
	return Options{
		Scale:            0.2,
		Budget:           100,
		NumCandidates:    2000,
		SketchDepth:      5,
		EvalEvery:        10,
		Seed:             1,
		UseTreeMatch:     false,
		ClassifierEpochs: 10,
		EmbeddingDim:     32,
	}
}

// QuickOptions returns CI-scale settings used by the Go benchmarks and tests:
// datasets at 5% of their Table 1 size and a budget of 30 questions.
func QuickOptions() Options {
	return Options{
		Scale:            0.05,
		Budget:           30,
		NumCandidates:    600,
		SketchDepth:      4,
		EvalEvery:        10,
		Seed:             1,
		UseTreeMatch:     false,
		ClassifierEpochs: 8,
		EmbeddingDim:     24,
	}
}

// PaperOptions returns full paper-scale settings (Table 1 sizes, budget 100,
// 10K candidates). Expect multi-minute runtimes per dataset.
func PaperOptions() Options {
	return Options{
		Scale:            1.0,
		Budget:           100,
		NumCandidates:    10000,
		SketchDepth:      5,
		EvalEvery:        5,
		Seed:             1,
		UseTreeMatch:     true,
		ClassifierEpochs: 10,
		EmbeddingDim:     50,
	}
}

// engineConfig derives a core.Config from the options.
func (o Options) engineConfig() core.Config {
	grams := []grammar.Grammar{tokensregex.New()}
	if o.UseTreeMatch {
		grams = append(grams, treematch.New())
	}
	cfg := core.DefaultConfig()
	cfg.Grammars = grams
	cfg.SketchDepth = o.SketchDepth
	cfg.NumCandidates = o.NumCandidates
	cfg.Budget = o.Budget
	cfg.Seed = o.Seed
	cfg.Classifier = classifier.Config{Epochs: o.ClassifierEpochs, LearningRate: 0.3, L2: 1e-4, Seed: o.Seed}
	cfg.ClassifierKind = classifier.KindLogReg
	if o.EmbeddingDim > 0 {
		cfg.Embedding = embedding.Config{Dim: o.EmbeddingDim, Window: 4, MinCount: 2, Seed: o.Seed}
	} else {
		cfg.Embedding = embedding.Config{}
	}
	return cfg
}

// classifierConfig returns the classifier settings used by the instance
// labeling baselines, matched to the Darwin runs.
func (o Options) classifierConfig() classifier.Config {
	return classifier.Config{Epochs: o.ClassifierEpochs, LearningRate: 0.3, L2: 1e-4, Seed: o.Seed}
}

// embeddingConfig returns the embedding settings shared by all techniques.
func (o Options) embeddingConfig() embedding.Config {
	return embedding.Config{Dim: o.EmbeddingDim, Window: 4, MinCount: 2, Seed: o.Seed}
}

// SeedRuleFor returns the seed labeling rule used for each dataset's Darwin
// runs (the "single labeling heuristic" initialization of §4.3), mirroring
// the paper's examples: 'best way to get to' for directions, 'has been caused
// by' for cause-effect, 'composer' for musicians, and natural choices for the
// remaining tasks.
func SeedRuleFor(dataset string) string {
	switch dataset {
	case "directions":
		return "best way to get to"
	case "cause-effect":
		return "was caused by"
	case "musicians":
		return "composer"
	case "professions":
		return "works as a"
	case "tweets", "food-tweets":
		return "craving"
	default:
		return ""
	}
}

// KeywordsFor returns the 10 task keywords an annotator would provide for the
// Keyword Sampling baseline of §4.4.
func KeywordsFor(dataset string) []string {
	switch dataset {
	case "directions":
		return []string{"shuttle", "bart", "airport", "bus", "taxi", "uber", "train", "directions", "way", "station"}
	case "cause-effect":
		return []string{"caused", "cause", "resulted", "led", "triggered", "due", "because", "effect", "blamed", "attributed"}
	case "musicians":
		return []string{"composer", "piano", "violin", "singer", "band", "album", "symphony", "guitar", "music", "recorded"}
	case "professions":
		return []string{"scientist", "teacher", "engineer", "doctor", "lawyer", "nurse", "job", "career", "works", "profession"}
	case "tweets", "food-tweets":
		return []string{"craving", "hungry", "eat", "pizza", "sushi", "dinner", "food", "order", "tacos", "burger"}
	default:
		return nil
	}
}
