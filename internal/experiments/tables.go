package experiments

import (
	"fmt"

	"repro/internal/classifier"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/labelmodel"
	"repro/internal/oracle"
)

// Table1Row is one row of Table 1 (dataset statistics).
type Table1Row struct {
	Dataset     string
	Sentences   int
	PositivePct float64
	Task        string
}

// Table1 regenerates Table 1: the statistics of the five (synthetic)
// datasets at the options' scale.
func (o Options) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range datagen.AllDatasetNames() {
		c, err := datagen.ByName(name, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		st := c.ComputeStats()
		rows = append(rows, Table1Row{
			Dataset:     name,
			Sentences:   st.Sentences,
			PositivePct: st.PositivePct,
			Task:        c.Task,
		})
	}
	return rows, nil
}

// Table2Row is one row of Table 2: the classifier F-score when trained
// directly on Darwin's labels vs. on labels de-noised by the Snorkel-style
// generative label model.
type Table2Row struct {
	Dataset       string
	Darwin        float64
	DarwinSnorkel float64
}

// Table2 regenerates Table 2 on the four datasets the paper reports
// (musicians, cause-effect, directions, food-tweets).
func (o Options) Table2() ([]Table2Row, error) {
	datasets := []string{"musicians", "cause-effect", "directions", "tweets"}
	var rows []Table2Row
	for _, name := range datasets {
		row, err := o.table2Row(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// table2Row runs Darwin once on the dataset and compares the two training
// regimes.
func (o Options) table2Row(name string) (Table2Row, error) {
	c, err := o.Dataset(name)
	if err != nil {
		return Table2Row{}, err
	}
	run, err := o.darwinVariant(c, name, "hybrid")
	if err != nil {
		return Table2Row{}, err
	}

	// Regime 1 (the "Darwin" column): train the classifier directly on the
	// discovered positive set, exactly as the engine does internally; its
	// final scores are already available.
	darwinF1 := run.FScore.Final()
	if darwinF1 == 0 {
		// No evaluation point was recorded (tiny budget); evaluate now.
		darwinF1 = finalF1(c, run)
	}

	// Regime 2 (the "Darwin+Snorkel" column): build a label matrix from the
	// accepted rules, de-noise it with the generative model, and train a
	// fresh classifier on the probabilistic labels.
	snorkelF1, err := o.snorkelF1(c, run)
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{Dataset: displayName(name), Darwin: darwinF1, DarwinSnorkel: snorkelF1}, nil
}

func finalF1(c *corpus.Corpus, run DarwinRun) float64 {
	scores := make([]float64, c.Len())
	for id := range scores {
		if run.Report.Positives[id] {
			scores[id] = 1
		}
	}
	f1, _ := eval.BestF1(c, scores)
	return f1
}

// snorkelF1 builds the label matrix from the run's accepted rules, fits the
// generative model, trains a classifier on the resulting training set and
// returns its best F1 on the corpus.
func (o Options) snorkelF1(c *corpus.Corpus, run DarwinRun) (float64, error) {
	m := labelmodel.NewMatrix(c.Len())
	for _, rec := range run.Report.Accepted {
		m.AddRule(rec.Rule, rec.CoverageIDs, labelmodel.VotePositive)
	}
	if m.NumRules() == 0 {
		return 0, fmt.Errorf("experiments: no accepted rules to feed the label model")
	}
	// Negative evidence: sentences far from every rule (not covered) vote
	// weakly negative via a single synthetic LF, mirroring how Snorkel
	// pipelines add a low-coverage negative class LF for binary tasks.
	var uncovered []int
	for id := 0; id < c.Len(); id++ {
		if !run.Report.Positives[id] {
			uncovered = append(uncovered, id)
		}
	}
	m.AddRule("uncovered-negative", uncovered, labelmodel.VoteNegative)

	gen := labelmodel.FitGenerative(m, labelmodel.DefaultGenerativeConfig())
	probs := gen.Probabilities()
	// The generative model is conservative when rules barely overlap, so the
	// hard-label thresholds sit close to 0.5; fall back to majority vote if
	// the posteriors are too flat to yield a training set.
	ids, labels := labelmodel.TrainingSet(probs, 0.55, 0.45)
	if countLabel(labels, 1) == 0 {
		ids, labels = labelmodel.TrainingSet(m.MajorityVote(0.0), 0.5, 0.49)
	}
	if countLabel(labels, 1) == 0 {
		return 0, fmt.Errorf("experiments: label model produced no positive training examples")
	}
	// Balance the classes. Two failure modes must be handled: the single
	// "uncovered" negative-evidence LF can label almost the entire corpus
	// negative (drowning the positives), or — when the label model deems it
	// uninformative — contribute no negatives at all. Keep roughly 3
	// negatives per positive, sampling extra negatives from the low-posterior
	// mass when needed (the same ratio the Darwin-direct regime uses when it
	// samples negatives).
	ids, labels = balanceTrainingSet(c, probs, ids, labels, 3, o.Seed)

	// Train a fresh classifier on the de-noised labels.
	emb := o.embeddingModel(c)
	feat := classifier.NewFeaturizer(emb, 512)
	X := make([][]float64, len(ids))
	y := make([]int, len(ids))
	for i, id := range ids {
		X[i] = feat.Features(c.Sentence(id).Tokens)
		y[i] = labels[i]
	}
	model := classifier.NewLogisticRegression(o.classifierConfig())
	if err := model.Fit(X, y); err != nil {
		return 0, fmt.Errorf("experiments: noise-aware classifier: %w", err)
	}
	scores := make([]float64, c.Len())
	for id := 0; id < c.Len(); id++ {
		scores[id] = model.Proba(feat.Features(c.Sentence(id).Tokens))
	}
	f1, _ := eval.BestF1(c, scores)
	return f1, nil
}

func countLabel(labels []int, want int) int {
	n := 0
	for _, l := range labels {
		if l == want {
			n++
		}
	}
	return n
}

// balanceTrainingSet keeps every positive example and roughly ratio negatives
// per positive: surplus negatives are subsampled, and when the label model
// yields too few negatives, additional ones are drawn from the sentences
// whose posterior does not exceed 0.5 (the uncovered mass).
func balanceTrainingSet(c *corpus.Corpus, probs []float64, ids []int, labels []int, ratio int, seed int64) ([]int, []int) {
	pos := countLabel(labels, 1)
	wantNeg := pos * ratio
	if wantNeg < 8 {
		wantNeg = 8
	}
	rng := newRand(seed + 77)
	inSet := map[int]bool{}
	for _, id := range ids {
		inSet[id] = true
	}

	haveNeg := countLabel(labels, 0)
	switch {
	case haveNeg > wantNeg:
		// Subsample the surplus negatives.
		var negIdx []int
		for i, l := range labels {
			if l == 0 {
				negIdx = append(negIdx, i)
			}
		}
		rng.Shuffle(len(negIdx), func(i, j int) { negIdx[i], negIdx[j] = negIdx[j], negIdx[i] })
		keepNeg := map[int]bool{}
		for _, i := range negIdx[:wantNeg] {
			keepNeg[i] = true
		}
		var outIDs, outLabels []int
		for i, l := range labels {
			if l == 1 || keepNeg[i] {
				outIDs = append(outIDs, ids[i])
				outLabels = append(outLabels, l)
			}
		}
		return outIDs, outLabels
	case haveNeg < wantNeg:
		// Top up with low-posterior sentences not already in the set.
		var pool []int
		for id := 0; id < c.Len(); id++ {
			if !inSet[id] && (id >= len(probs) || probs[id] <= 0.5) {
				pool = append(pool, id)
			}
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		for _, id := range pool {
			if haveNeg >= wantNeg {
				break
			}
			ids = append(ids, id)
			labels = append(labels, 0)
			haveNeg++
		}
		return ids, labels
	default:
		return ids, labels
	}
}

func displayName(name string) string {
	if name == "tweets" {
		return "food-tweets"
	}
	return name
}

// HumanAnnotatorsResult compares a perfect oracle with a noisy 3-vote crowd
// oracle on the same dataset (§4.5 "Performance of human annotators").
type HumanAnnotatorsResult struct {
	Dataset          string
	PerfectCoverage  float64
	CrowdCoverage    float64
	CrowdFalseYes    int
	CrowdQueries     int
	AvgSecondsPerQ   float64 // the paper reports 23s per rule evaluation
	EstimatedMinutes float64 // human effort for the run at 23s per query
}

// HumanAnnotators runs Darwin(HS) twice on the directions dataset: once with
// the perfect oracle and once with a crowd oracle (3 votes over 5-sentence
// samples with a small per-vote error rate), reporting the coverage obtained
// and the number of false-positive acceptances.
func (o Options) HumanAnnotators(flipRate float64) (HumanAnnotatorsResult, error) {
	const dataset = "directions"
	c, err := o.Dataset(dataset)
	if err != nil {
		return HumanAnnotatorsResult{}, err
	}
	perfect, err := o.darwinVariant(c, dataset, "hybrid")
	if err != nil {
		return HumanAnnotatorsResult{}, err
	}

	cfg := o.engineConfig()
	cfg.Traversal = "hybrid"
	crowdOracle := oracle.NewRecording(oracle.NewCrowd(c, flipRate, o.Seed+99))
	crowd, err := runDarwin(c, cfg, "darwin-hs-crowd", nil,
		[]string{SeedRuleFor(dataset)}, nil, crowdOracle, o.EvalEvery)
	if err != nil {
		return HumanAnnotatorsResult{}, err
	}

	// Count crowd acceptances that a perfect oracle would have rejected
	// (false-positive rule verifications, <10 out of 69 in the paper's
	// Figure-eight study).
	gt := oracle.NewGroundTruth(c)
	falseYes := 0
	for _, rec := range crowd.Report.History {
		if !rec.Accepted || len(rec.CoverageIDs) == 0 {
			continue
		}
		if eval.PrecisionOfIDs(c, rec.CoverageIDs) < gt.Threshold {
			falseYes++
		}
	}

	const secondsPerQuery = 23.0
	return HumanAnnotatorsResult{
		Dataset:          dataset,
		PerfectCoverage:  perfect.Coverage.Final(),
		CrowdCoverage:    crowd.Coverage.Final(),
		CrowdFalseYes:    falseYes,
		CrowdQueries:     crowd.Report.Questions,
		AvgSecondsPerQ:   secondsPerQuery,
		EstimatedMinutes: float64(crowd.Report.Questions) * secondsPerQuery / 60.0,
	}, nil
}
