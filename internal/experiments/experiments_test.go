package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps the experiment drivers fast enough for unit tests while
// staying large enough for the paper's qualitative orderings to hold.
func tinyOptions() Options {
	o := QuickOptions()
	o.Scale = 0.06
	o.Budget = 40
	o.NumCandidates = 600
	o.EvalEvery = 10
	return o
}

func TestTable1MatchesPaperShape(t *testing.T) {
	o := tinyOptions()
	rows, err := o.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	want := map[string]float64{
		"cause-effect": 12.2,
		"musicians":    10,
		"directions":   3.8,
		"professions":  1.1,
		"tweets":       11.4,
	}
	for _, row := range rows {
		if row.Sentences <= 0 {
			t.Errorf("%s has no sentences", row.Dataset)
		}
		expected := want[row.Dataset]
		if diff := row.PositivePct - expected; diff > 1.5 || diff < -1.5 {
			t.Errorf("%s positive%%=%.1f, paper %.1f", row.Dataset, row.PositivePct, expected)
		}
		if row.Task == "" {
			t.Errorf("%s has no task label", row.Dataset)
		}
	}
}

func TestFigure7DarwinBeatsSnubaAtSmallSeeds(t *testing.T) {
	o := tinyOptions()
	res, err := o.Figure7("directions", []int{25, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %v", res.Points)
	}
	small := res.Points[0]
	// Headline claim of §4.2: with a small random seed Darwin identifies far
	// more positives than Snuba (which needs hundreds of labeled sentences).
	if small.Darwin <= small.Snuba {
		t.Errorf("at 25 seeds Darwin=%.2f should beat Snuba=%.2f", small.Darwin, small.Snuba)
	}
	if small.Darwin < 0.6 {
		t.Errorf("Darwin coverage with 25 seeds = %.2f, want >= 0.6", small.Darwin)
	}
	// Snuba improves as the seed grows; Darwin stays ahead even at 200.
	if res.Points[1].Snuba < small.Snuba {
		t.Errorf("Snuba coverage decreased with more seeds: %.2f -> %.2f", small.Snuba, res.Points[1].Snuba)
	}
	if res.Points[1].Darwin <= res.Points[1].Snuba {
		t.Errorf("at 200 seeds Darwin=%.2f should still beat Snuba=%.2f",
			res.Points[1].Darwin, res.Points[1].Snuba)
	}
}

func TestFigure8BiasedSeedHurtsSnubaNotDarwin(t *testing.T) {
	o := tinyOptions()
	res, err := o.Figure8("directions", []int{200}, WithheldTokenFor("directions"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Biased || res.WithheldToken != "shuttle" {
		t.Fatalf("result metadata wrong: %+v", res)
	}
	p := res.Points[0]
	if p.Darwin <= p.Snuba {
		t.Errorf("biased seed: Darwin=%.2f should beat Snuba=%.2f", p.Darwin, p.Snuba)
	}
}

func TestFigure9DirectionsCurves(t *testing.T) {
	o := tinyOptions()
	res, err := o.Figure9("directions")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"darwin-hs", "darwin-us", "darwin-ls", "highP"} {
		if _, ok := res.Coverage[method]; !ok {
			t.Errorf("missing coverage curve for %s", method)
		}
	}
	for _, method := range []string{"darwin-hs", "AL", "KS", "highP"} {
		if _, ok := res.FScore[method]; !ok {
			t.Errorf("missing F-score curve for %s", method)
		}
	}
	hs := res.Coverage["darwin-hs"]
	if hs.Final() < 0.6 {
		t.Errorf("Darwin(HS) final coverage = %.2f, want >= 0.6", hs.Final())
	}
	// The paper's qualitative orderings on the coverage panel: Darwin(HS) is
	// the most robust variant and outperforms the HighP baseline, while
	// UniversalSearch struggles without abundant labeled data.
	if hs.Final()+1e-9 < res.Coverage["highP"].Final() {
		t.Errorf("Darwin(HS) %.2f below HighP %.2f", hs.Final(), res.Coverage["highP"].Final())
	}
	if hs.Final()+1e-9 < res.Coverage["darwin-us"].Final() {
		t.Errorf("Darwin(HS) %.2f below Darwin(US) %.2f", hs.Final(), res.Coverage["darwin-us"].Final())
	}
	// Curves are monotone in questions.
	for i := 1; i < len(hs.Points); i++ {
		if hs.Points[i].Value+1e-9 < hs.Points[i-1].Value {
			t.Errorf("coverage curve not monotone at %d", hs.Points[i].Questions)
		}
	}
}

func TestFigure11TracesWanderFromSeed(t *testing.T) {
	o := tinyOptions()
	traces, err := o.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Steps) == 0 {
			t.Errorf("%s trace empty", tr.Dataset)
			continue
		}
		accepted := 0
		for _, s := range tr.Steps {
			if s.Accepted {
				accepted++
			}
		}
		if accepted == 0 {
			t.Errorf("%s trace accepted no rules", tr.Dataset)
		}
		if s := tr.String(); !strings.Contains(s, tr.Dataset) {
			t.Errorf("trace String() = %q", s)
		}
	}
	// The directions trace should reach a rule outside the seed's phrase
	// family (the "wanders to 'shuttle to'" observation).
	dir := traces[0]
	foundDistant := false
	for _, s := range dir.Steps {
		if s.Accepted && !strings.Contains(s.Rule, "best way") && !strings.Contains(s.Rule, "way to get") {
			foundDistant = true
			break
		}
	}
	if !foundDistant {
		t.Error("directions trace never left the seed rule's family")
	}
}

func TestTable2RowRuns(t *testing.T) {
	o := tinyOptions()
	row, err := o.table2Row("directions")
	if err != nil {
		t.Fatal(err)
	}
	if row.Darwin < 0 || row.Darwin > 1 || row.DarwinSnorkel < 0 || row.DarwinSnorkel > 1 {
		t.Errorf("out-of-range F1s: %+v", row)
	}
	if row.Darwin == 0 {
		t.Errorf("Darwin F1 is zero: %+v", row)
	}
}

func TestSensitivityDriversRun(t *testing.T) {
	o := tinyOptions()
	o.Budget = 15

	taus, err := o.Figure12Tau([]int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(taus) != 2 || taus[0].Curve.Final() <= 0 {
		t.Errorf("tau sensitivity: %+v", taus)
	}

	seeds, err := o.Figure12Seeds(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Errorf("seed sensitivity returned %d curves", len(seeds))
	}

	cands, err := o.Figure13Candidates([]int{200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Errorf("candidate sensitivity returned %d curves", len(cands))
	}

	eps, err := o.Figure14Epochs([]int{4, 8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 {
		t.Errorf("epoch sensitivity returned %d points", len(eps))
	}
	for _, p := range eps {
		if p.FinalCoverage <= 0 {
			t.Errorf("epochs=%d produced zero coverage", p.Epochs)
		}
	}
}

func TestEfficiencyAndHumanAnnotators(t *testing.T) {
	o := tinyOptions()
	o.Budget = 10
	res, err := o.Efficiency([]int{2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Sentences != 2000 {
		t.Fatalf("efficiency rows: %+v", res)
	}
	if res[0].IndexBuild <= 0 || res[0].TotalRun <= 0 {
		t.Errorf("timings not recorded: %+v", res[0])
	}

	ha, err := o.HumanAnnotators(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ha.PerfectCoverage <= 0 {
		t.Errorf("perfect-oracle coverage = %f", ha.PerfectCoverage)
	}
	if ha.CrowdQueries == 0 || ha.EstimatedMinutes <= 0 {
		t.Errorf("crowd accounting missing: %+v", ha)
	}
}

func TestSeedRuleAndKeywords(t *testing.T) {
	for _, d := range []string{"directions", "musicians", "cause-effect", "professions", "tweets"} {
		if SeedRuleFor(d) == "" {
			t.Errorf("no seed rule for %s", d)
		}
		if len(KeywordsFor(d)) != 10 {
			t.Errorf("%s should have 10 keywords, has %d", d, len(KeywordsFor(d)))
		}
	}
	if SeedRuleFor("unknown") != "" || KeywordsFor("unknown") != nil {
		t.Error("unknown dataset should have empty seed/keywords")
	}
}

func TestOptionPresets(t *testing.T) {
	for _, o := range []Options{DefaultOptions(), QuickOptions(), PaperOptions()} {
		if o.Scale <= 0 || o.Budget <= 0 || o.NumCandidates <= 0 {
			t.Errorf("invalid preset: %+v", o)
		}
		cfg := o.engineConfig()
		if cfg.Budget != o.Budget || cfg.NumCandidates != o.NumCandidates {
			t.Errorf("engineConfig mismatch: %+v", cfg)
		}
	}
	if PaperOptions().Scale != 1.0 {
		t.Error("paper scale should be 1.0")
	}
}
