package experiments

import (
	"fmt"

	"math/rand"
	"repro/internal/baselines"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/oracle"
	"repro/internal/snuba"
)

// SeedSizePoint is one x-position of Figures 7 and 8: the coverage obtained
// by Snuba and by Darwin(HS) when both are initialized with the same labeled
// seed of the given size.
type SeedSizePoint struct {
	SeedSize int
	Snuba    float64
	Darwin   float64
}

// SeedSizeResult is one panel of Figure 7 or Figure 8.
type SeedSizeResult struct {
	Dataset string
	Biased  bool
	// WithheldToken is the token excluded from the seed in the biased
	// variant (Figure 8), empty otherwise.
	WithheldToken string
	Points        []SeedSizePoint
}

// Figure7 regenerates one panel of Figure 7: coverage vs. random seed-set
// size for Snuba and Darwin(HS). The paper uses directions (panel a) and
// musicians (panel b) with seed sizes from 25 to 1000-2000.
func (o Options) Figure7(dataset string, seedSizes []int) (SeedSizeResult, error) {
	return o.seedSizeExperiment(dataset, seedSizes, "")
}

// Figure8 regenerates one panel of Figure 8: the same comparison with a
// biased seed that excludes every sentence containing the withheld token
// ("shuttle" for directions, "composer" for musicians).
func (o Options) Figure8(dataset string, seedSizes []int, withholdToken string) (SeedSizeResult, error) {
	return o.seedSizeExperiment(dataset, seedSizes, withholdToken)
}

// WithheldTokenFor returns the paper's withheld token for Figure 8.
func WithheldTokenFor(dataset string) string {
	switch dataset {
	case "directions":
		return "shuttle"
	case "musicians":
		return "composer"
	default:
		return ""
	}
}

func (o Options) seedSizeExperiment(dataset string, seedSizes []int, withhold string) (SeedSizeResult, error) {
	c, err := o.Dataset(dataset)
	if err != nil {
		return SeedSizeResult{}, err
	}
	res := SeedSizeResult{Dataset: dataset, Biased: withhold != "", WithheldToken: withhold}
	rng := newRand(o.Seed + 31)
	for _, size := range seedSizes {
		var seedIDs []int
		if withhold == "" {
			seedIDs = c.SampleIDs(size, rng)
		} else {
			seedIDs = c.SampleBiasedIDs(size, withhold, rng)
		}
		// Guarantee the labeled seed contains at least two positive
		// instances (in a highly imbalanced corpus a tiny random sample can
		// easily contain none, in which case neither technique can start;
		// §4.2 notes the expert-sampled-positives variant for this reason).
		// The augmented seed is shared by both techniques. Under the biased
		// variant the added positives also avoid the withheld token.
		seedIDs = ensurePositiveSeeds(c, seedIDs, 2, withhold, rng)

		// Snuba: mine rules from the labeled seed only.
		snubaRes := snuba.Run(c, seedIDs, snuba.DefaultConfig())
		snubaCov := eval.CoverageOfSet(c, snubaRes.Coverage)

		// Darwin(HS): initialized with the positive sentences of the same
		// seed (§4.2 initializes both techniques with the same labeled set).
		var seedPos []int
		for _, id := range seedIDs {
			if c.Sentence(id).Gold == corpus.Positive {
				seedPos = append(seedPos, id)
			}
		}
		darwinCov := 0.0
		if len(seedPos) > 0 {
			cfg := o.engineConfig()
			cfg.Traversal = "hybrid"
			run, err := runDarwin(c, cfg, "darwin-hs", nil, nil, seedPos,
				oracle.NewGroundTruth(c), o.EvalEvery)
			if err != nil {
				return SeedSizeResult{}, err
			}
			darwinCov = eval.CoverageOfSet(c, run.Report.Positives)
		}
		res.Points = append(res.Points, SeedSizePoint{SeedSize: size, Snuba: snubaCov, Darwin: darwinCov})
	}
	return res, nil
}

// ensurePositiveSeeds augments seedIDs with gold positives (avoiding the
// withheld token) until at least minPos positives are present.
func ensurePositiveSeeds(c *corpus.Corpus, seedIDs []int, minPos int, withhold string, rng *rand.Rand) []int {
	have := 0
	inSeed := map[int]bool{}
	for _, id := range seedIDs {
		inSeed[id] = true
		if c.Sentence(id).Gold == corpus.Positive {
			have++
		}
	}
	if have >= minPos {
		return seedIDs
	}
	candidates := c.Positives()
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	for _, id := range candidates {
		if have >= minPos {
			break
		}
		if inSeed[id] {
			continue
		}
		if withhold != "" && containsTokenIn(c.Sentence(id).Tokens, withhold) {
			continue
		}
		seedIDs = append(seedIDs, id)
		inSeed[id] = true
		have++
	}
	return seedIDs
}

func containsTokenIn(tokens []string, tok string) bool {
	for _, t := range tokens {
		if t == tok {
			return true
		}
	}
	return false
}

// MethodCurves holds the per-question coverage and F-score curves of every
// technique on one dataset (one column of Figure 9, or Figure 10 for
// professions).
type MethodCurves struct {
	Dataset  string
	Coverage map[string]eval.Curve
	FScore   map[string]eval.Curve
}

// Figure9Datasets lists the datasets of Figure 9 in paper order (a–d / e–h).
func Figure9Datasets() []string {
	return []string{"musicians", "cause-effect", "directions", "tweets"}
}

// Figure9 regenerates one column of Figure 9: rule coverage (top row) and
// classifier F-score (bottom row) as a function of the number of questions,
// for Darwin(HS), Darwin(US), Darwin(LS) and the HighP baseline, plus the
// Active Learning and Keyword Sampling baselines for the F-score panel.
func (o Options) Figure9(dataset string) (MethodCurves, error) {
	c, err := o.Dataset(dataset)
	if err != nil {
		return MethodCurves{}, err
	}
	return o.methodCurves(c, dataset)
}

// Figure10 regenerates Figure 10: the same comparison on the professions
// dataset (the largest, most imbalanced corpus).
func (o Options) Figure10() (MethodCurves, error) {
	c, err := o.Dataset("professions")
	if err != nil {
		return MethodCurves{}, err
	}
	return o.methodCurves(c, "professions")
}

func (o Options) methodCurves(c *corpus.Corpus, dataset string) (MethodCurves, error) {
	res := MethodCurves{
		Dataset:  dataset,
		Coverage: map[string]eval.Curve{},
		FScore:   map[string]eval.Curve{},
	}

	// Darwin variants.
	for _, variant := range []string{"hybrid", "universal", "local"} {
		run, err := o.darwinVariant(c, dataset, variant)
		if err != nil {
			return MethodCurves{}, err
		}
		res.Coverage[run.Method] = run.Coverage
		res.FScore[run.Method] = run.FScore
	}

	// HighP baseline (rule verification with a precision-greedy selector).
	cfg := o.engineConfig()
	highP, err := runDarwin(c, cfg, "highP", baselines.NewHighP(),
		[]string{SeedRuleFor(dataset)}, nil, oracle.NewGroundTruth(c), o.EvalEvery)
	if err != nil {
		return MethodCurves{}, err
	}
	res.Coverage["highP"] = highP.Coverage
	res.FScore["highP"] = highP.FScore

	// Instance-labeling baselines (F-score panels only, as in the paper).
	emb := o.embeddingModel(c)
	seedPos := seedPositivesFor(c, dataset, o)
	alCfg := baselines.InstanceLabelingConfig{
		Budget:          o.Budget,
		SeedPositiveIDs: seedPos,
		Classifier:      o.classifierConfig(),
		Embedding:       o.embeddingConfig(),
		RetrainEvery:    1,
		EvalEvery:       o.EvalEvery,
		Seed:            o.Seed,
	}
	al := baselines.ActiveLearning(c, emb, alCfg)
	res.FScore["AL"] = al.FScore
	res.Coverage["AL"] = al.Coverage

	ks := baselines.KeywordSampling(c, emb, KeywordsFor(dataset), alCfg)
	res.FScore["KS"] = ks.FScore
	res.Coverage["KS"] = ks.Coverage

	return res, nil
}

// seedPositivesFor returns the positive instances matched by the dataset's
// seed rule, so the instance-labeling baselines start from the same
// information as the Darwin runs.
func seedPositivesFor(c *corpus.Corpus, dataset string, o Options) []int {
	spec := SeedRuleFor(dataset)
	if spec == "" {
		return nil
	}
	cfg := o.engineConfig()
	_ = cfg
	var out []int
	for _, s := range c.Sentences {
		if s.Gold != corpus.Positive {
			continue
		}
		if containsPhrase(s.Tokens, spec) {
			out = append(out, s.ID)
		}
		if len(out) >= 5 {
			break
		}
	}
	return out
}

func containsPhrase(tokens []string, phrase string) bool {
	var want []string
	start := 0
	for i := 0; i <= len(phrase); i++ {
		if i == len(phrase) || phrase[i] == ' ' {
			if i > start {
				want = append(want, phrase[start:i])
			}
			start = i + 1
		}
	}
	if len(want) == 0 || len(want) > len(tokens) {
		return false
	}
	for i := 0; i+len(want) <= len(tokens); i++ {
		ok := true
		for j := range want {
			if tokens[i+j] != want[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TraversalTrace is the qualitative Figure 11 output: the sequence of rules
// Darwin(HS) queried on a dataset, with the oracle's answers.
type TraversalTrace struct {
	Dataset string
	Seed    string
	Steps   []TraversalStep
}

// TraversalStep is one queried rule.
type TraversalStep struct {
	Question int
	Rule     string
	Coverage int
	Accepted bool
}

// Figure11 regenerates the Figure 11 traversal examples on the directions and
// cause-effect datasets: it returns the sequence of rules queried by
// Darwin(HS), which should wander from the seed rule to structurally distant
// but precise rules (e.g. from 'best way to get to' to 'shuttle to').
func (o Options) Figure11() ([]TraversalTrace, error) {
	var traces []TraversalTrace
	for _, dataset := range []string{"directions", "cause-effect"} {
		c, err := o.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		run, err := o.darwinVariant(c, dataset, "hybrid")
		if err != nil {
			return nil, err
		}
		trace := TraversalTrace{Dataset: dataset, Seed: SeedRuleFor(dataset)}
		for _, rec := range run.Report.History {
			trace.Steps = append(trace.Steps, TraversalStep{
				Question: rec.Question,
				Rule:     rec.Rule,
				Coverage: rec.Coverage,
				Accepted: rec.Accepted,
			})
		}
		traces = append(traces, trace)
	}
	return traces, nil
}

// String renders a trace as the paper's arrow notation (accepted rules only).
func (t TraversalTrace) String() string {
	s := fmt.Sprintf("[%s] %s", t.Dataset, t.Seed)
	for _, step := range t.Steps {
		if step.Accepted {
			s += " -> " + step.Rule
		}
	}
	return s
}
