package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
)

func TestCoverageCurveReconstruction(t *testing.T) {
	c := corpus.New("h", "t")
	for i := 0; i < 10; i++ {
		if i < 4 {
			c.Add("positive", corpus.Positive)
		} else {
			c.Add("negative", corpus.Negative)
		}
	}
	report := &core.Report{
		Positives: map[int]bool{0: true, 1: true, 2: true},
		Accepted: []core.RuleRecord{
			{Question: 0, Rule: "'seed'", AddedIDs: []int{0}},
		},
		History: []core.RuleRecord{
			{Question: 1, Rule: "'a'", Accepted: true, AddedIDs: []int{1}},
			{Question: 2, Rule: "'b'", Accepted: false},
			{Question: 3, Rule: "'c'", Accepted: true, AddedIDs: []int{2, 5}},
		},
	}
	curve := coverageCurve(c, report, "test")
	if curve.Name != "test" {
		t.Errorf("curve name = %q", curve.Name)
	}
	// Seed covers 1/4 positives, question 1 adds another, question 3 a third
	// (id 5 is a negative and does not count toward coverage).
	if got := curve.At(0); got != 0.25 {
		t.Errorf("At(0) = %f", got)
	}
	if got := curve.At(1); got != 0.5 {
		t.Errorf("At(1) = %f", got)
	}
	if got := curve.At(2); got != 0.5 {
		t.Errorf("At(2) = %f (rejected rule must not change coverage)", got)
	}
	if got := curve.Final(); got != 0.75 {
		t.Errorf("Final = %f", got)
	}
	// Monotone.
	prev := 0.0
	for _, p := range curve.Points {
		if p.Value < prev {
			t.Errorf("curve decreased at q=%d", p.Questions)
		}
		prev = p.Value
	}
}

func TestContainsPhraseAndSentenceSeed(t *testing.T) {
	tokens := []string{"what", "is", "the", "best", "way", "to", "get"}
	if !containsPhrase(tokens, "best way to") {
		t.Error("containsPhrase missed a present phrase")
	}
	if containsPhrase(tokens, "way best") {
		t.Error("containsPhrase matched out-of-order tokens")
	}
	if containsPhrase(tokens, "") {
		t.Error("empty phrase should not match")
	}
	if containsPhrase(nil, "best") {
		t.Error("empty tokens should not match")
	}

	if phrase, ok := sentenceSeed("@sentence:taught piano to"); !ok || phrase != "taught piano to" {
		t.Errorf("sentenceSeed = %q, %v", phrase, ok)
	}
	if _, ok := sentenceSeed("composer"); ok {
		t.Error("plain seed misidentified as sentence seed")
	}
}

func TestFindSentenceWith(t *testing.T) {
	c := corpus.New("f", "t")
	c.Add("Mozart taught piano to the children of the count", corpus.Positive)
	c.Add("The weather was mild", corpus.Negative)
	c.Preprocess(corpus.PreprocessOptions{})
	if got := findSentenceWith(c, "taught piano to"); got == "" {
		t.Error("findSentenceWith missed the sentence")
	}
	if got := findSentenceWith(c, "nonexistent phrase"); got != "" {
		t.Errorf("findSentenceWith returned %q for a missing phrase", got)
	}
	if got := findSentenceWith(c, ""); got != "" {
		t.Error("empty phrase should return empty")
	}
}

func TestEnsurePositiveSeeds(t *testing.T) {
	c := corpus.New("s", "t")
	c.Add("the shuttle to the airport", corpus.Positive)
	c.Add("which bus goes downtown", corpus.Positive)
	c.Add("order a pizza", corpus.Negative)
	c.Add("late checkout please", corpus.Negative)
	c.Preprocess(corpus.PreprocessOptions{})
	rng := newRand(1)

	// A seed with no positives gets augmented to two.
	seed := ensurePositiveSeeds(c, []int{2, 3}, 2, "", rng)
	pos := 0
	for _, id := range seed {
		if c.Sentence(id).Gold == corpus.Positive {
			pos++
		}
	}
	if pos < 2 {
		t.Errorf("augmented seed has %d positives", pos)
	}
	// Withheld token is respected: only the bus sentence qualifies.
	seed = ensurePositiveSeeds(c, []int{2}, 1, "shuttle", rng)
	for _, id := range seed {
		s := c.Sentence(id)
		if s.Gold != corpus.Positive {
			continue
		}
		for _, tok := range s.Tokens {
			if tok == "shuttle" {
				t.Error("augmentation added a sentence with the withheld token")
			}
		}
	}
	// Already-sufficient seeds are unchanged.
	orig := []int{0, 1}
	if got := ensurePositiveSeeds(c, orig, 2, "", rng); len(got) != 2 {
		t.Errorf("sufficient seed was modified: %v", got)
	}
}

func TestRunDarwinErrorPropagation(t *testing.T) {
	o := tinyOptions()
	c, err := o.Dataset("directions")
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.engineConfig()
	if _, err := runDarwin(c, cfg, "bad", nil, []string{"@@@!!"}, nil, nil, 5); err == nil {
		t.Error("missing oracle / bad seed should error")
	}
}

func TestShortName(t *testing.T) {
	if shortName("hybrid") != "hs" || shortName("universal") != "us" || shortName("local") != "ls" {
		t.Error("shortName mapping wrong")
	}
	if shortName("other") != "other" {
		t.Error("shortName should pass through unknown names")
	}
}

func TestFinalF1FallsBackToPositiveSet(t *testing.T) {
	c := corpus.New("f1", "t")
	for i := 0; i < 10; i++ {
		if i < 3 {
			c.Add("p", corpus.Positive)
		} else {
			c.Add("n", corpus.Negative)
		}
	}
	run := DarwinRun{Report: &core.Report{Positives: map[int]bool{0: true, 1: true, 2: true}}}
	if f1 := finalF1(c, run); f1 < 0.99 {
		t.Errorf("finalF1 = %f, want ~1.0 for a perfect positive set", f1)
	}
	// Sanity: eval and this helper agree on an imperfect set.
	run.Report.Positives = map[int]bool{0: true, 5: true}
	f1 := finalF1(c, run)
	conf := eval.Confusion{TP: 1, FP: 1, FN: 2, TN: 6}
	if diff := f1 - conf.F1(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("finalF1 = %f, want %f", f1, conf.F1())
	}
}
