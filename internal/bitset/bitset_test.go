package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

// mapOracle is the reference implementation: a plain map[int]bool set.
type mapOracle map[int]bool

func randomIDs(rng *rand.Rand, n, universe int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = rng.Intn(universe)
	}
	return ids
}

func oracleOf(ids []int) mapOracle {
	m := mapOracle{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func (m mapOracle) sorted() []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// TestPropertyVsMapOracle drives random sets through every operation and
// checks them against the map oracle, including universes at the word
// boundaries 63/64/65 where off-by-one word sizing bugs live.
func TestPropertyVsMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	universes := []int{1, 7, 63, 64, 65, 127, 128, 129, 1000}
	for trial := 0; trial < 200; trial++ {
		universe := universes[trial%len(universes)]
		na, nb := rng.Intn(2*universe), rng.Intn(2*universe)
		idsA, idsB := randomIDs(rng, na, universe), randomIDs(rng, nb, universe)
		a, b := FromSorted(idsA), FromSorted(idsB)
		ma, mb := oracleOf(idsA), oracleOf(idsB)

		if got, want := a.Count(), len(ma); got != want {
			t.Fatalf("universe %d: Count = %d, want %d", universe, got, want)
		}
		for id := -1; id <= universe+wordBits; id++ {
			if a.Contains(id) != ma[id] {
				t.Fatalf("universe %d: Contains(%d) = %v, oracle %v", universe, id, a.Contains(id), ma[id])
			}
		}

		wantAnd, wantAndNot := 0, 0
		for id := range ma {
			if mb[id] {
				wantAnd++
			} else {
				wantAndNot++
			}
		}
		if got := AndCount(a, b); got != wantAnd {
			t.Fatalf("universe %d: AndCount = %d, want %d", universe, got, wantAnd)
		}
		if got := AndNotCount(a, b); got != wantAndNot {
			t.Fatalf("universe %d: AndNotCount = %d, want %d", universe, got, wantAndNot)
		}
		if got := And(a, b).Count(); got != wantAnd {
			t.Fatalf("universe %d: And().Count = %d, want %d", universe, got, wantAnd)
		}
		if got := AndNot(a, b).Count(); got != wantAndNot {
			t.Fatalf("universe %d: AndNot().Count = %d, want %d", universe, got, wantAndNot)
		}

		// Iteration yields exactly the oracle's ids, ascending.
		var iterated []int
		a.Range(func(id int) bool {
			iterated = append(iterated, id)
			return true
		})
		want := ma.sorted()
		if len(iterated) != len(want) {
			t.Fatalf("universe %d: Range yielded %d ids, want %d", universe, len(iterated), len(want))
		}
		for i := range want {
			if iterated[i] != want[i] {
				t.Fatalf("universe %d: Range[%d] = %d, want %d", universe, i, iterated[i], want[i])
			}
		}
		appended := a.AppendTo(nil)
		for i := range want {
			if appended[i] != want[i] {
				t.Fatalf("universe %d: AppendTo[%d] = %d, want %d", universe, i, appended[i], want[i])
			}
		}

		// The weighted-difference kernel matches a sorted scan of the oracle.
		scores := make([]float64, universe)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		var wantSum float64
		wantCount := 0
		for _, id := range ma.sorted() {
			if !mb[id] {
				wantSum += scores[id]
				wantCount++
			}
		}
		gotSum, gotCount := AndNotSum(a, b, scores)
		if gotCount != wantCount || gotSum != wantSum {
			t.Fatalf("universe %d: AndNotSum = (%v, %d), want (%v, %d)", universe, gotSum, gotCount, wantSum, wantCount)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	var nilSet Set
	if nilSet.Count() != 0 || nilSet.Contains(0) || nilSet.Clone() != nil {
		t.Error("nil set should behave as empty")
	}
	if New(0) != nil || New(-5) != nil {
		t.Error("New with non-positive capacity should be nil")
	}
	if FromSorted(nil) != nil {
		t.Error("FromSorted(nil) should be nil")
	}
	if got := AndCount(nilSet, FromSorted([]int{1, 2})); got != 0 {
		t.Errorf("AndCount with nil = %d", got)
	}
	if got := AndNotCount(FromSorted([]int{1, 2}), nilSet); got != 2 {
		t.Errorf("AndNotCount vs nil = %d", got)
	}
	sum, count := AndNotSum(FromSorted([]int{100}), nilSet, make([]float64, 10))
	if sum != 0 || count != 1 {
		t.Errorf("AndNotSum beyond scores = (%v, %d), want (0, 1)", sum, count)
	}

	s := New(65)
	s.Add(0)
	s.Add(63)
	s.Add(64)
	if s.Count() != 3 || !s.Contains(64) || s.Contains(65) {
		t.Errorf("word-boundary adds broken: %v", s)
	}
	s.Clear()
	if s.Count() != 0 {
		t.Error("Clear left bits set")
	}

	// Range stops early when fn returns false.
	s.Add(1)
	s.Add(2)
	seen := 0
	s.Range(func(int) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Errorf("Range did not stop early: %d calls", seen)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromSorted([]int{1, 2, 3})
	b := a.Clone()
	b.Add(10 % (len(b) * 64)) // mutate the clone only
	a2 := FromSorted([]int{1, 2, 3})
	for i := range a {
		if a[i] != a2[i] {
			t.Fatal("mutating a clone changed the original")
		}
	}
}

// --- micro-benchmarks of the kernel ---

func benchSets(n int) (Set, Set, []float64) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(n), New(n)
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64()
		if rng.Intn(10) == 0 {
			a.Add(i)
		}
		if rng.Intn(20) == 0 {
			b.Add(i)
		}
	}
	return a, b, scores
}

func BenchmarkAndCount10K(b *testing.B) {
	x, y, _ := benchSets(10000)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += AndCount(x, y)
	}
	_ = sink
}

func BenchmarkAndNotCount10K(b *testing.B) {
	x, y, _ := benchSets(10000)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += AndNotCount(x, y)
	}
	_ = sink
}

func BenchmarkAndNotSum10K(b *testing.B) {
	x, y, scores := benchSets(10000)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		s, _ := AndNotSum(x, y, scores)
		sink += s
	}
	_ = sink
}
