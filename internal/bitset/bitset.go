// Package bitset implements dense bitsets over sentence IDs as []uint64
// words. It is the coverage kernel of the interactive hot path: candidate
// scoring, cleanup and traversal reduce to word-wise And/AndNot plus
// popcount instead of per-id map lookups over posting lists.
//
// Sets are plain slices: a nil Set is a valid empty set, and all binary
// operations tolerate operands of different lengths (missing words are
// treated as zero). Sets are not goroutine-safe for mutation, but any number
// of goroutines may read (And*, Count, Contains, Range, sums) concurrently
// once a set is no longer mutated — which is how the engine publishes node
// coverage bits.
package bitset

import "math/bits"

const wordBits = 64

// Set is a dense bitset. The i-th bit of word i/64 records membership of id i.
type Set []uint64

// New returns a set with capacity for ids in [0, n).
func New(n int) Set {
	if n <= 0 {
		return nil
	}
	return make(Set, (n+wordBits-1)/wordBits)
}

// FromSorted builds a set from a list of non-negative ids (duplicates are
// fine; the list does not actually need to be sorted). The set is sized to
// the largest id present.
func FromSorted(ids []int) Set {
	if len(ids) == 0 {
		return nil
	}
	max := 0
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	s := New(max + 1)
	for _, id := range ids {
		if id >= 0 {
			s[id/wordBits] |= 1 << uint(id%wordBits)
		}
	}
	return s
}

// FromMap builds a set from a map of non-negative ids (negative keys are
// ignored). The set is sized to the largest id present.
func FromMap(ids map[int]bool) Set {
	max := -1
	for id, ok := range ids {
		if ok && id > max {
			max = id
		}
	}
	if max < 0 {
		return nil
	}
	s := New(max + 1)
	for id, ok := range ids {
		if ok && id >= 0 {
			s.Add(id)
		}
	}
	return s
}

// Add sets bit id. The set must have been sized to hold it (New(n) with
// id < n); Add panics on out-of-range ids rather than growing, because every
// caller in the engine knows the corpus size up front.
func (s Set) Add(id int) {
	s[id/wordBits] |= 1 << uint(id%wordBits)
}

// Contains reports whether bit id is set. Out-of-range ids are absent.
func (s Set) Contains(id int) bool {
	if id < 0 {
		return false
	}
	w := id / wordBits
	if w >= len(s) {
		return false
	}
	return s[w]&(1<<uint(id%wordBits)) != 0
}

// Count returns the number of set bits (popcount).
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Grow returns a set that can hold ids in [0, n): s itself when it is already
// large enough, otherwise a fresh copy with a zeroed tail. Live-corpus
// consumers use it to extend their positive sets when the corpus grows.
func (s Set) Grow(n int) Set {
	if words := (n + 63) / 64; words > len(s) {
		out := make(Set, words)
		copy(out, s)
		return out
	}
	return s
}

// Clear zeroes every bit, keeping the capacity.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Range calls fn for every set bit in ascending id order, stopping early if
// fn returns false.
func (s Set) Range(fn func(id int) bool) {
	for i, w := range s {
		base := i * wordBits
		for w != 0 {
			id := base + bits.TrailingZeros64(w)
			if !fn(id) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendTo appends the set's ids in ascending order to dst and returns it.
func (s Set) AppendTo(dst []int) []int {
	for i, w := range s {
		base := i * wordBits
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// And returns a ∩ b as a new set.
func And(a, b Set) Set {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return nil
	}
	out := make(Set, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] & b[i]
	}
	return out
}

// AndNot returns a \ b as a new set.
func AndNot(a, b Set) Set {
	if len(a) == 0 {
		return nil
	}
	out := make(Set, len(a))
	for i, w := range a {
		if i < len(b) {
			out[i] = w &^ b[i]
		} else {
			out[i] = w
		}
	}
	return out
}

// Or returns a ∪ b as a new set sized to the longer operand.
func Or(a, b Set) Set {
	if len(b) > len(a) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	out := make(Set, len(a))
	copy(out, a)
	for i, w := range b {
		out[i] |= w
	}
	return out
}

// Union ors src into dst in place, growing dst if src is longer, and returns
// the (possibly reallocated) destination. It is the accumulator of the batch
// rule-application path: the union coverage of a rule committee is built by
// folding each rule's coverage bitset into one running set.
func Union(dst, src Set) Set {
	if len(src) > len(dst) {
		grown := make(Set, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, w := range src {
		dst[i] |= w
	}
	return dst
}

// AndCount returns |a ∩ b| without materializing the intersection.
func AndCount(a, b Set) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// AndNotCount returns |a \ b| without materializing the difference.
func AndNotCount(a, b Set) int {
	c := 0
	for i, w := range a {
		if i < len(b) {
			c += bits.OnesCount64(w &^ b[i])
		} else {
			c += bits.OnesCount64(w)
		}
	}
	return c
}

// AndNotSum returns Σ_{id ∈ a \ b} w[id] together with |a \ b|, iterating
// ids in ascending order (so float accumulation order matches a scan of the
// sorted posting list — the scoring paths rely on bit-identical sums). Ids
// beyond len(w) contribute zero weight but still count.
func AndNotSum(a, b Set, w []float64) (sum float64, count int) {
	for i, word := range a {
		if i < len(b) {
			word &^= b[i]
		}
		if word == 0 {
			continue
		}
		base := i * wordBits
		count += bits.OnesCount64(word)
		for word != 0 {
			id := base + bits.TrailingZeros64(word)
			if id < len(w) {
				sum += w[id]
			}
			word &= word - 1
		}
	}
	return sum, count
}
