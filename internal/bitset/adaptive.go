// Adaptive is the compressed counterpart of the dense Set: a roaring-style
// bitset that splits the id space into 65536-id chunks and stores each chunk
// in whichever container is smaller — a sorted []uint16 array while the
// chunk is sparse, a dense 1024-word bitmap once it crosses the promotion
// threshold. Sparse coverage (a rule matching a handful of sentences in a
// million-sentence corpus) then costs bytes proportional to its cardinality
// instead of the corpus size, while hot dense chunks keep word-wise kernels.
//
// Both representations satisfy the Cover interface, and every fused kernel
// (AndNotSum in particular) iterates ids in ascending order, so float
// accumulation is bit-identical to the dense Set — which is what lets the
// engine swap representations under the golden-replay and conformance gates.
package bitset

import (
	"math/bits"
	"sort"
)

const (
	// chunkBits is the log2 of the chunk width: each container covers one
	// aligned range of 1<<chunkBits ids.
	chunkBits = 16
	chunkSize = 1 << chunkBits
	// bitmapWords is the word count of a bitmap container.
	bitmapWords = chunkSize / wordBits
	// ArrayMax is the promotion/demotion crossover: a chunk holding at most
	// this many ids stays a sorted-array container (2 bytes/id ≤ the 8 KiB a
	// bitmap container costs); one more id promotes it to a bitmap, and a
	// removal back down to ArrayMax demotes it again.
	ArrayMax = 4096
)

// Cover is the read-only coverage-set contract shared by the dense Set and
// the compressed *Adaptive: everything the scoring, hierarchy and traversal
// paths need from a published coverage set. The p operand of the fused
// kernels is always a dense Set — the positive set is small, mutable and
// corpus-sized, so it stays dense; only the per-node coverage mirrors (of
// which there are tens of thousands) are worth compressing.
type Cover interface {
	// Count returns the number of ids in the set.
	Count() int
	// Contains reports membership of id (out-of-range ids are absent).
	Contains(id int) bool
	// Range calls fn for every id in ascending order, stopping early when fn
	// returns false.
	Range(fn func(id int) bool)
	// AppendTo appends the ids in ascending order to dst and returns it.
	AppendTo(dst []int) []int
	// AndCount returns |self ∩ p|.
	AndCount(p Set) int
	// AndNotCount returns |self \ p|.
	AndNotCount(p Set) int
	// AndNotSum returns Σ_{id ∈ self \ p} w[id] together with |self \ p|,
	// accumulating in ascending id order (bit-identical across
	// representations). Ids beyond len(w) contribute zero weight but count.
	AndNotSum(p Set, w []float64) (float64, int)
	// OrInto ors the set into dst (a corpus-sized accumulator), growing dst
	// as needed, and returns the possibly reallocated destination.
	OrInto(dst Set) Set
	// Bytes reports the payload bytes of the representation (container data
	// plus per-container headers; excludes the Go object headers).
	Bytes() int
}

// Compile-time checks: both representations satisfy the kernel contract.
var (
	_ Cover = Set(nil)
	_ Cover = (*Adaptive)(nil)
)

// --- Set's Cover methods (thin wrappers over the package kernels) ---

// AndCount implements Cover.
func (s Set) AndCount(p Set) int { return AndCount(s, p) }

// AndNotCount implements Cover.
func (s Set) AndNotCount(p Set) int { return AndNotCount(s, p) }

// AndNotSum implements Cover.
func (s Set) AndNotSum(p Set, w []float64) (float64, int) { return AndNotSum(s, p, w) }

// OrInto implements Cover.
func (s Set) OrInto(dst Set) Set { return Union(dst, s) }

// Bytes implements Cover: 8 bytes per word.
func (s Set) Bytes() int { return len(s) * 8 }

// container is one chunk's id set: exactly one of array/bitmap is non-nil.
// array holds the low 16 bits of each id, sorted ascending and unique;
// bitmap is a bitmapWords-word dense set with n tracking its cardinality.
type container struct {
	array  []uint16
	bitmap []uint64
	n      int
}

func (c *container) count() int {
	if c.bitmap != nil {
		return c.n
	}
	return len(c.array)
}

// promote converts an array container to a bitmap container.
func (c *container) promote() {
	bm := make([]uint64, bitmapWords)
	for _, lo := range c.array {
		bm[lo/wordBits] |= 1 << uint(lo%wordBits)
	}
	c.bitmap, c.n, c.array = bm, len(c.array), nil
}

// demote converts a bitmap container back to an array container.
func (c *container) demote() {
	arr := make([]uint16, 0, c.n)
	for i, word := range c.bitmap {
		base := i * wordBits
		for word != 0 {
			arr = append(arr, uint16(base+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.array, c.bitmap, c.n = arr, nil, 0
}

// Adaptive is the compressed bitset: sorted chunk keys with one container
// per non-empty chunk. The zero value is an empty set. Like Set, an Adaptive
// is not goroutine-safe for mutation but safe for any number of concurrent
// readers once published.
type Adaptive struct {
	keys []uint32 // sorted chunk indices (id >> chunkBits)
	cs   []*container
	n    int // total cardinality
}

// NewAdaptive returns an empty adaptive set.
func NewAdaptive() *Adaptive { return &Adaptive{} }

// AdaptiveFromSorted builds an adaptive set from sorted, deduplicated,
// non-negative ids (the shape of an index posting list). Each chunk's
// representation is chosen directly from its cardinality — no intermediate
// promotion work.
func AdaptiveFromSorted(ids []int) *Adaptive {
	a := &Adaptive{}
	for start := 0; start < len(ids); {
		key := uint32(ids[start] >> chunkBits)
		end := start
		for end < len(ids) && uint32(ids[end]>>chunkBits) == key {
			end++
		}
		chunk := ids[start:end]
		c := &container{}
		if len(chunk) > ArrayMax {
			bm := make([]uint64, bitmapWords)
			for _, id := range chunk {
				lo := id & (chunkSize - 1)
				bm[lo/wordBits] |= 1 << uint(lo%wordBits)
			}
			c.bitmap, c.n = bm, len(chunk)
		} else {
			arr := make([]uint16, len(chunk))
			for i, id := range chunk {
				arr[i] = uint16(id & (chunkSize - 1))
			}
			c.array = arr
		}
		a.keys = append(a.keys, key)
		a.cs = append(a.cs, c)
		a.n += len(chunk)
		start = end
	}
	return a
}

// find returns the container index for key, or -1.
func (a *Adaptive) find(key uint32) int {
	i := sort.Search(len(a.keys), func(i int) bool { return a.keys[i] >= key })
	if i < len(a.keys) && a.keys[i] == key {
		return i
	}
	return -1
}

// Add inserts id (no-op when present). Unlike Set.Add it grows on demand —
// ingestion extends coverage past the boot-time corpus size.
func (a *Adaptive) Add(id int) {
	if id < 0 {
		return
	}
	key, lo := uint32(id>>chunkBits), uint16(id&(chunkSize-1))
	i := sort.Search(len(a.keys), func(i int) bool { return a.keys[i] >= key })
	if i == len(a.keys) || a.keys[i] != key {
		a.keys = append(a.keys, 0)
		copy(a.keys[i+1:], a.keys[i:])
		a.keys[i] = key
		a.cs = append(a.cs, nil)
		copy(a.cs[i+1:], a.cs[i:])
		a.cs[i] = &container{array: []uint16{lo}}
		a.n++
		return
	}
	c := a.cs[i]
	if c.bitmap != nil {
		w, mask := lo/wordBits, uint64(1)<<uint(lo%wordBits)
		if c.bitmap[w]&mask == 0 {
			c.bitmap[w] |= mask
			c.n++
			a.n++
		}
		return
	}
	j := sort.Search(len(c.array), func(j int) bool { return c.array[j] >= lo })
	if j < len(c.array) && c.array[j] == lo {
		return
	}
	c.array = append(c.array, 0)
	copy(c.array[j+1:], c.array[j:])
	c.array[j] = lo
	a.n++
	if len(c.array) > ArrayMax {
		c.promote()
	}
}

// Remove deletes id (no-op when absent). A bitmap container falling back to
// ArrayMax ids demotes to an array; an emptied container is dropped.
func (a *Adaptive) Remove(id int) {
	if id < 0 {
		return
	}
	key, lo := uint32(id>>chunkBits), uint16(id&(chunkSize-1))
	i := a.find(key)
	if i < 0 {
		return
	}
	c := a.cs[i]
	if c.bitmap != nil {
		w, mask := lo/wordBits, uint64(1)<<uint(lo%wordBits)
		if c.bitmap[w]&mask == 0 {
			return
		}
		c.bitmap[w] &^= mask
		c.n--
		a.n--
		if c.n <= ArrayMax {
			c.demote()
		}
	} else {
		j := sort.Search(len(c.array), func(j int) bool { return c.array[j] >= lo })
		if j >= len(c.array) || c.array[j] != lo {
			return
		}
		c.array = append(c.array[:j], c.array[j+1:]...)
		a.n--
	}
	if c.count() == 0 {
		a.keys = append(a.keys[:i], a.keys[i+1:]...)
		a.cs = append(a.cs[:i], a.cs[i+1:]...)
	}
}

// Count implements Cover.
func (a *Adaptive) Count() int { return a.n }

// Contains implements Cover.
func (a *Adaptive) Contains(id int) bool {
	if id < 0 {
		return false
	}
	i := a.find(uint32(id >> chunkBits))
	if i < 0 {
		return false
	}
	c, lo := a.cs[i], uint16(id&(chunkSize-1))
	if c.bitmap != nil {
		return c.bitmap[lo/wordBits]&(1<<uint(lo%wordBits)) != 0
	}
	j := sort.Search(len(c.array), func(j int) bool { return c.array[j] >= lo })
	return j < len(c.array) && c.array[j] == lo
}

// Range implements Cover.
func (a *Adaptive) Range(fn func(id int) bool) {
	for i, key := range a.keys {
		base := int(key) << chunkBits
		c := a.cs[i]
		if c.bitmap != nil {
			for wi, word := range c.bitmap {
				wbase := base + wi*wordBits
				for word != 0 {
					if !fn(wbase + bits.TrailingZeros64(word)) {
						return
					}
					word &= word - 1
				}
			}
			continue
		}
		for _, lo := range c.array {
			if !fn(base + int(lo)) {
				return
			}
		}
	}
}

// AppendTo implements Cover.
func (a *Adaptive) AppendTo(dst []int) []int {
	a.Range(func(id int) bool {
		dst = append(dst, id)
		return true
	})
	return dst
}

// Clone returns an independent copy.
func (a *Adaptive) Clone() *Adaptive {
	out := &Adaptive{
		keys: append([]uint32(nil), a.keys...),
		cs:   make([]*container, len(a.cs)),
		n:    a.n,
	}
	for i, c := range a.cs {
		cc := &container{n: c.n}
		if c.bitmap != nil {
			cc.bitmap = append([]uint64(nil), c.bitmap...)
		} else {
			cc.array = append([]uint16(nil), c.array...)
		}
		out.cs[i] = cc
	}
	return out
}

// pWords returns the dense operand's words for the chunk at base, clipped to
// what p actually holds (missing words are zero).
func pWords(p Set, base int) []uint64 {
	lo := base / wordBits
	if lo >= len(p) {
		return nil
	}
	hi := lo + bitmapWords
	if hi > len(p) {
		hi = len(p)
	}
	return p[lo:hi]
}

// AndCount implements Cover.
func (a *Adaptive) AndCount(p Set) int {
	total := 0
	for i, key := range a.keys {
		base := int(key) << chunkBits
		pw := pWords(p, base)
		if len(pw) == 0 {
			continue
		}
		c := a.cs[i]
		if c.bitmap != nil {
			n := len(pw)
			for wi := 0; wi < n; wi++ {
				total += bits.OnesCount64(c.bitmap[wi] & pw[wi])
			}
			continue
		}
		for _, lo := range c.array {
			w := int(lo) / wordBits
			if w < len(pw) && pw[w]&(1<<uint(lo%wordBits)) != 0 {
				total++
			}
		}
	}
	return total
}

// AndNotCount implements Cover.
func (a *Adaptive) AndNotCount(p Set) int {
	total := 0
	for i, key := range a.keys {
		base := int(key) << chunkBits
		pw := pWords(p, base)
		c := a.cs[i]
		if c.bitmap != nil {
			for wi, word := range c.bitmap {
				if wi < len(pw) {
					word &^= pw[wi]
				}
				total += bits.OnesCount64(word)
			}
			continue
		}
		for _, lo := range c.array {
			w := int(lo) / wordBits
			if w < len(pw) && pw[w]&(1<<uint(lo%wordBits)) != 0 {
				continue
			}
			total++
		}
	}
	return total
}

// AndNotSum implements Cover: ascending-id accumulation, bit-identical to
// the dense kernel.
func (a *Adaptive) AndNotSum(p Set, w []float64) (sum float64, count int) {
	for i, key := range a.keys {
		base := int(key) << chunkBits
		pw := pWords(p, base)
		c := a.cs[i]
		if c.bitmap != nil {
			for wi, word := range c.bitmap {
				if wi < len(pw) {
					word &^= pw[wi]
				}
				if word == 0 {
					continue
				}
				wbase := base + wi*wordBits
				count += bits.OnesCount64(word)
				for word != 0 {
					id := wbase + bits.TrailingZeros64(word)
					if id < len(w) {
						sum += w[id]
					}
					word &= word - 1
				}
			}
			continue
		}
		for _, lo := range c.array {
			wi := int(lo) / wordBits
			if wi < len(pw) && pw[wi]&(1<<uint(lo%wordBits)) != 0 {
				continue
			}
			count++
			if id := base + int(lo); id < len(w) {
				sum += w[id]
			}
		}
	}
	return sum, count
}

// OrInto implements Cover.
func (a *Adaptive) OrInto(dst Set) Set {
	if len(a.keys) == 0 {
		return dst
	}
	lastKey := a.keys[len(a.keys)-1]
	lastC := a.cs[len(a.cs)-1]
	maxID := int(lastKey) << chunkBits
	if lastC.bitmap != nil {
		for wi := len(lastC.bitmap) - 1; wi >= 0; wi-- {
			if lastC.bitmap[wi] != 0 {
				maxID += wi*wordBits + (wordBits - 1 - bits.LeadingZeros64(lastC.bitmap[wi]))
				break
			}
		}
	} else {
		maxID += int(lastC.array[len(lastC.array)-1])
	}
	if need := maxID/wordBits + 1; need > len(dst) {
		grown := make(Set, need)
		copy(grown, dst)
		dst = grown
	}
	for i, key := range a.keys {
		base := int(key) << chunkBits
		c := a.cs[i]
		if c.bitmap != nil {
			for wi, word := range c.bitmap {
				if word != 0 {
					dst[base/wordBits+wi] |= word
				}
			}
			continue
		}
		for _, lo := range c.array {
			id := base + int(lo)
			dst[id/wordBits] |= 1 << uint(id%wordBits)
		}
	}
	return dst
}

// Bytes implements Cover: payload bytes of the current representation (array
// entries at 2 bytes, bitmap words at 8, plus keys and per-container
// bookkeeping).
func (a *Adaptive) Bytes() int {
	total := len(a.keys)*4 + len(a.cs)*8
	for _, c := range a.cs {
		if c.bitmap != nil {
			total += bitmapWords * 8
		} else {
			total += len(c.array) * 2
		}
	}
	return total
}

// Containers reports how many chunks currently use each representation —
// the series behind the darwin_bitset_containers{kind} gauge.
func (a *Adaptive) Containers() (arrays, bitmaps int) {
	for _, c := range a.cs {
		if c.bitmap != nil {
			bitmaps++
		} else {
			arrays++
		}
	}
	return arrays, bitmaps
}
