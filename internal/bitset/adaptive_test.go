package bitset

import (
	"math/rand"
	"testing"
)

// oracleEqual checks every Cover accessor of a against the map oracle and
// the dense reference built from the same ids.
func oracleEqual(t *testing.T, a *Adaptive, oracle map[int]bool) {
	t.Helper()
	ids := make([]int, 0, len(oracle))
	for id, ok := range oracle {
		if ok {
			ids = append(ids, id)
		}
	}
	dense := FromSorted(ids)
	if got, want := a.Count(), dense.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	got := a.AppendTo(nil)
	want := dense.AppendTo(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendTo lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AppendTo[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	for _, probe := range []int{-1, 0, 1, 63, 64, 65, ArrayMax, chunkSize - 1, chunkSize, chunkSize + 7, 3 * chunkSize} {
		if a.Contains(probe) != oracle[probe] {
			t.Fatalf("Contains(%d) = %v, want %v", probe, a.Contains(probe), oracle[probe])
		}
	}
}

// kernelEqual checks the fused kernels of a against dense built from the
// same ids, for a given dense operand p and weights w. AndNotSum must be
// bit-identical (exact float equality), not merely close.
func kernelEqual(t *testing.T, a *Adaptive, dense Set, p Set, w []float64) {
	t.Helper()
	if got, want := a.AndCount(p), AndCount(dense, p); got != want {
		t.Fatalf("AndCount = %d, want %d", got, want)
	}
	if got, want := a.AndNotCount(p), AndNotCount(dense, p); got != want {
		t.Fatalf("AndNotCount = %d, want %d", got, want)
	}
	gotSum, gotCount := a.AndNotSum(p, w)
	wantSum, wantCount := AndNotSum(dense, p, w)
	if gotSum != wantSum || gotCount != wantCount {
		t.Fatalf("AndNotSum = (%v, %d), want (%v, %d)", gotSum, gotCount, wantSum, wantCount)
	}
	gotUnion := a.OrInto(New(16))
	wantUnion := Union(New(16), dense)
	if gotUnion.Count() != wantUnion.Count() {
		t.Fatalf("OrInto count = %d, want %d", gotUnion.Count(), wantUnion.Count())
	}
	for i := range wantUnion {
		if i < len(gotUnion) && gotUnion[i] != wantUnion[i] {
			t.Fatalf("OrInto word %d = %x, want %x", i, gotUnion[i], wantUnion[i])
		}
	}
}

func TestAdaptiveRandomOpsVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := NewAdaptive()
	oracle := make(map[int]bool)
	const universe = 3 * chunkSize
	for step := 0; step < 20000; step++ {
		id := rng.Intn(universe)
		if rng.Intn(3) == 0 {
			a.Remove(id)
			delete(oracle, id)
		} else {
			a.Add(id)
			oracle[id] = true
		}
	}
	oracleEqual(t, a, oracle)

	ids := a.AppendTo(nil)
	dense := FromSorted(ids)
	p := New(universe)
	w := make([]float64, universe)
	for i := range w {
		w[i] = rng.Float64()
		if rng.Intn(4) == 0 {
			p.Add(i)
		}
	}
	kernelEqual(t, a, dense, p, w)
}

func TestAdaptivePromotionDemotionBoundary(t *testing.T) {
	a := NewAdaptive()
	// Fill chunk 1 to exactly ArrayMax: must still be an array container.
	base := chunkSize
	for i := 0; i < ArrayMax; i++ {
		a.Add(base + i*3)
	}
	if arrays, bitmaps := a.Containers(); arrays != 1 || bitmaps != 0 {
		t.Fatalf("at ArrayMax: containers = (%d arrays, %d bitmaps), want (1, 0)", arrays, bitmaps)
	}
	arrayBytes := a.Bytes()
	// One more id crosses the threshold: promotion to a bitmap.
	a.Add(base + ArrayMax*3)
	if arrays, bitmaps := a.Containers(); arrays != 0 || bitmaps != 1 {
		t.Fatalf("past ArrayMax: containers = (%d arrays, %d bitmaps), want (0, 1)", arrays, bitmaps)
	}
	if a.Count() != ArrayMax+1 {
		t.Fatalf("Count = %d, want %d", a.Count(), ArrayMax+1)
	}
	// Removing back to ArrayMax demotes to an array again.
	a.Remove(base + ArrayMax*3)
	if arrays, bitmaps := a.Containers(); arrays != 1 || bitmaps != 0 {
		t.Fatalf("after demotion: containers = (%d arrays, %d bitmaps), want (1, 0)", arrays, bitmaps)
	}
	if a.Bytes() != arrayBytes {
		t.Fatalf("Bytes after round trip = %d, want %d", a.Bytes(), arrayBytes)
	}
	// Idempotent adds/removes at the boundary must not corrupt counts.
	a.Add(base)
	a.Remove(base + 1) // absent (ids are multiples of 3)
	if a.Count() != ArrayMax {
		t.Fatalf("Count after no-ops = %d, want %d", a.Count(), ArrayMax)
	}
	// Drain the container entirely: it must disappear.
	for i := 0; i < ArrayMax; i++ {
		a.Remove(base + i*3)
	}
	if arrays, bitmaps := a.Containers(); arrays != 0 || bitmaps != 0 || a.Count() != 0 {
		t.Fatalf("after drain: containers = (%d, %d), count = %d, want empty", arrays, bitmaps, a.Count())
	}
}

// TestAdaptiveFromSortedCrossover builds posting lists whose cardinality
// brackets the crossover and checks AndNotSum bit-identity against dense on
// each, with the p operand shorter, equal and longer than the coverage.
func TestAdaptiveFromSortedCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, card := range []int{0, 1, 63, ArrayMax - 1, ArrayMax, ArrayMax + 1, ArrayMax * 2, chunkSize, chunkSize + ArrayMax} {
		seen := make(map[int]bool, card)
		for len(seen) < card {
			seen[rng.Intn(2*chunkSize)] = true
		}
		ids := make([]int, 0, card)
		for id := range seen {
			ids = append(ids, id)
		}
		// AdaptiveFromSorted requires sorted input (posting lists are sorted).
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		a := AdaptiveFromSorted(ids)
		dense := FromSorted(ids)
		if a.Count() != len(ids) {
			t.Fatalf("card %d: Count = %d", card, a.Count())
		}
		for _, pn := range []int{0, chunkSize / 2, 2 * chunkSize, 3 * chunkSize} {
			p := New(pn)
			w := make([]float64, pn)
			for i := 0; i < pn; i++ {
				w[i] = rng.Float64()
				if rng.Intn(2) == 0 {
					p.Add(i)
				}
			}
			kernelEqual(t, a, dense, p, w)
		}
	}
}

func TestAdaptiveClone(t *testing.T) {
	a := AdaptiveFromSorted([]int{1, 2, 3, chunkSize + 5})
	b := a.Clone()
	b.Add(99)
	b.Remove(1)
	if a.Contains(99) || !a.Contains(1) {
		t.Fatal("Clone is not independent")
	}
	if b.Count() != a.Count() {
		t.Fatalf("clone count = %d, original = %d", b.Count(), a.Count())
	}
}

// FuzzAdaptiveOps drives random op sequences from fuzz input against the map
// oracle, then checks the fused kernels against the dense reference.
func FuzzAdaptiveOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0x10, 0x20, 0x30, 0x40})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewAdaptive()
		oracle := make(map[int]bool)
		for i := 0; i+2 < len(data); i += 3 {
			id := int(data[i+1])<<8 | int(data[i+2])
			// Spread ops across three chunks so both container kinds and the
			// chunk directory get exercised.
			id += int(data[i]&0x03) << chunkBits
			if data[i]&0x04 != 0 {
				a.Remove(id)
				delete(oracle, id)
			} else {
				a.Add(id)
				oracle[id] = true
			}
		}
		ids := a.AppendTo(nil)
		if len(ids) != len(oracle) {
			t.Fatalf("cardinality drifted: %d ids vs %d oracle entries", len(ids), len(oracle))
		}
		prev := -1
		for _, id := range ids {
			if !oracle[id] {
				t.Fatalf("id %d not in oracle", id)
			}
			if id <= prev {
				t.Fatalf("ids out of order: %d after %d", id, prev)
			}
			prev = id
		}
		dense := FromSorted(ids)
		p := New(4 * chunkSize)
		w := make([]float64, 4*chunkSize)
		for i := range w {
			w[i] = float64(i%97) / 97
			if i%3 == 0 {
				p.Add(i)
			}
		}
		gotSum, gotCount := a.AndNotSum(p, w)
		wantSum, wantCount := AndNotSum(dense, p, w)
		if gotSum != wantSum || gotCount != wantCount {
			t.Fatalf("AndNotSum = (%v, %d), want (%v, %d)", gotSum, gotCount, wantSum, wantCount)
		}
		if a.AndCount(p) != AndCount(dense, p) || a.AndNotCount(p) != AndNotCount(dense, p) {
			t.Fatal("And/AndNot counts diverge from dense")
		}
	})
}
