package autolabel

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/snuba"
)

// SnubaRequest is the body of POST /v2/datasets/{ds}/baselines/snuba: mine a
// Snuba heuristic committee from a gold-labeled seed and score it corpus-wide
// — the paper's automatic baseline, one HTTP call. Seed selection is either
// explicit (SeedIDs) or deterministic sampling (SeedSize + Seed).
type SnubaRequest struct {
	// SeedIDs are the sentences whose gold labels form the labeled subset.
	// When empty, SeedSize sentences are sampled with Seed.
	SeedIDs []int `json:"seed_ids,omitempty"`
	// SeedSize is the number of seed sentences to sample (default 100).
	SeedSize int `json:"seed_size,omitempty"`
	// Seed is the sampling RNG seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// MaxRules / MaxPhraseLen / MinPrecision / MinSeedCoverage override the
	// miner's committee knobs (zero = snuba.DefaultConfig).
	MaxRules        int     `json:"max_rules,omitempty"`
	MaxPhraseLen    int     `json:"max_phrase_len,omitempty"`
	MinPrecision    float64 `json:"min_precision,omitempty"`
	MinSeedCoverage int     `json:"min_seed_coverage,omitempty"`
	// CompareRules, when set, scores this interactively discovered committee
	// (e.g. a labeler's accepted rules) on the same corpus so the response
	// carries the Snuba-vs-interactive comparison directly.
	CompareRules []string `json:"compare_rules,omitempty"`
}

// SnubaRule is one mined heuristic with its seed statistics.
type SnubaRule struct {
	// Rule is the heuristic's display form — a parseable rule spec usable in
	// a labeling-job Spec.
	Rule string `json:"rule"`
	// Key is the canonical rule key.
	Key string `json:"key"`
	// SeedPrecision / SeedRecall / SeedF1 are the miner's scores on the
	// labeled subset.
	SeedPrecision float64 `json:"seed_precision"`
	SeedRecall    float64 `json:"seed_recall"`
	SeedF1        float64 `json:"seed_f1"`
}

// CommitteeStats scores one rule committee's union coverage against the
// corpus gold labels.
type CommitteeStats struct {
	Rules     int     `json:"rules"`
	Covered   int     `json:"covered"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// SnubaResult is the response of the baseline endpoint.
type SnubaResult struct {
	Dataset   string      `json:"dataset"`
	Sentences int         `json:"sentences"`
	SeedSize  int         `json:"seed_size"`
	Rules     []SnubaRule `json:"rules"`
	// Snuba scores the mined committee corpus-wide against gold labels.
	Snuba CommitteeStats `json:"snuba"`
	// Compare scores the interactive committee from CompareRules (present
	// only when CompareRules was set).
	Compare *CommitteeStats `json:"compare,omitempty"`
}

// committeeStats computes precision/recall/F1 of a coverage set against the
// corpus gold labels.
func committeeStats(c *corpus.Corpus, covered bitset.Set, rules int) CommitteeStats {
	st := CommitteeStats{Rules: rules, Covered: covered.Count()}
	truePos := 0
	covered.Range(func(id int) bool {
		if s := c.Sentence(id); s != nil && s.Gold == corpus.Positive {
			truePos++
		}
		return true
	})
	if st.Covered > 0 {
		st.Precision = float64(truePos) / float64(st.Covered)
	}
	if np := c.NumPositives(); np > 0 {
		st.Recall = float64(truePos) / float64(np)
	}
	if st.Precision+st.Recall > 0 {
		st.F1 = 2 * st.Precision * st.Recall / (st.Precision + st.Recall)
	}
	return st
}

// RunSnuba mines a Snuba committee for the engine's corpus and scores it
// (and, optionally, an interactive committee) against the gold labels. The
// computation is synchronous and deterministic in (corpus, request).
func RunSnuba(eng *core.Engine, req SnubaRequest) (SnubaResult, error) {
	// Snapshot view: the mining passes below iterate the corpus outside the
	// engine locks, so a concurrent ingest must not grow it mid-run.
	c := eng.CorpusView()
	seedIDs := req.SeedIDs
	if len(seedIDs) == 0 {
		size := req.SeedSize
		if size <= 0 {
			size = 100
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		seedIDs = c.SampleIDs(size, rand.New(rand.NewSource(seed)))
	}
	for _, id := range seedIDs {
		if c.Sentence(id) == nil {
			return SnubaResult{}, fmt.Errorf("%w: seed id %d out of range", ErrInvalidSpec, id)
		}
	}
	cfg := snuba.DefaultConfig()
	if req.MaxRules > 0 {
		cfg.MaxRules = req.MaxRules
	}
	if req.MaxPhraseLen > 0 {
		cfg.MaxPhraseLen = req.MaxPhraseLen
	}
	if req.MinPrecision > 0 {
		cfg.MinPrecision = req.MinPrecision
	}
	if req.MinSeedCoverage > 0 {
		cfg.MinSeedCoverage = req.MinSeedCoverage
	}
	mined := snuba.Run(c, seedIDs, cfg)

	res := SnubaResult{Dataset: "", Sentences: c.Len(), SeedSize: len(seedIDs)}
	minedUnion := bitset.New(c.Len())
	for _, r := range mined.Rules {
		res.Rules = append(res.Rules, SnubaRule{
			Rule:          r.Heuristic.String(),
			Key:           r.Heuristic.Key(),
			SeedPrecision: r.SeedPrecision,
			SeedRecall:    r.SeedRecall,
			SeedF1:        r.SeedF1,
		})
	}
	minedUnion = bitset.Union(minedUnion, bitset.FromMap(mined.Coverage))
	res.Snuba = committeeStats(c, minedUnion, len(mined.Rules))

	if len(req.CompareRules) > 0 {
		// Deduplicate by canonical key so a committee listed twice doesn't
		// change anything.
		seen := map[string]bool{}
		union := bitset.New(c.Len())
		rules := 0
		specs := append([]string(nil), req.CompareRules...)
		sort.Strings(specs)
		for _, spec := range specs {
			key, bits, err := eng.CoverageBits(spec)
			if err != nil {
				return SnubaResult{}, fmt.Errorf("%w: compare rule: %v", ErrInvalidSpec, err)
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			rules++
			union = bits.OrInto(union)
		}
		cs := committeeStats(c, union, rules)
		res.Compare = &cs
	}
	return res, nil
}
