package autolabel

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
)

// uploadJSONL is a small corpus in the ingest wire shape: two sentences the
// committee covers, two it does not.
const uploadJSONL = `{"text":"best way to get to the harbor","label":1}
{"text":"how do i get downtown from here","label":1}
{"text":"the weather is lovely today","label":0}
{"text":"try the tasting menu at the bistro","label":0}
`

func uploadSpec() Spec {
	sp := testSpec()
	sp.Corpus = uploadJSONL
	return sp
}

// The streaming engine (no interactive index) must label an uploaded corpus
// byte-identically to a full engine built over the same sentences — the
// CoverageBits corpus-scan fallback and the published-index path are
// equivalent by construction, and this pins it.
func TestStreamingEngineMatchesFullEngine(t *testing.T) {
	full := testEngine(t)
	batch, err := ingest.DecodeJSONL(strings.NewReader(uploadJSONL), ingest.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	seng, err := core.NewStreamingFromBatch("upload", batch, full.Config())
	if err != nil {
		t.Fatal(err)
	}

	spec := testSpec() // no Corpus field: run directly against the engine
	streamed, streamedRes := runOnce(t, seng, spec)

	fullEng, err := core.New(seng.Corpus(), full.Config())
	if err != nil {
		t.Fatal(err)
	}
	direct, directRes := runOnce(t, fullEng, spec)
	if !bytes.Equal(streamed, direct) {
		t.Fatalf("streaming output differs:\n%s\nvs\n%s", streamed, direct)
	}
	if streamedRes != directRes {
		t.Fatalf("results differ: %+v vs %+v", streamedRes, directRes)
	}
	if streamedRes.Sentences != len(batch) {
		t.Fatalf("labeled %d of %d uploaded sentences", streamedRes.Sentences, len(batch))
	}
	if streamedRes.Covered != 2 || streamedRes.Positives != 2 {
		t.Errorf("committee should cover exactly the two direction sentences: %+v", streamedRes)
	}
}

func TestManagerUploadedCorpusJob(t *testing.T) {
	eng := testEngine(t)
	m := newTestManager(t, t.TempDir(), eng)
	defer m.Close()

	st, err := m.Submit("directions", uploadSpec())
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Sentences != 4 || st.SentencesLabeled != 4 {
		t.Fatalf("job labeled the resident corpus, not the upload: %+v", st)
	}
	out := readOutput(t, m, st.ID, 0)
	lines := bytes.Split(bytes.TrimSuffix(out, []byte("\n")), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("output has %d lines, want 4", len(lines))
	}
	wantTexts := []string{
		"best way to get to the harbor",
		"how do i get downtown from here",
		"the weather is lovely today",
		"try the tasting menu at the bistro",
	}
	for i, line := range lines {
		var rec struct {
			ID    int    `json:"id"`
			Text  string `json:"text"`
			Label int    `json:"label"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.ID != i || rec.Text != wantTexts[i] {
			t.Errorf("line %d: got id=%d text=%q, want id=%d text=%q", i, rec.ID, rec.Text, i, wantTexts[i])
		}
		if want := boolToLabel(i < 2); rec.Label != want {
			t.Errorf("line %d: label %d, want %d", i, rec.Label, want)
		}
	}
}

func boolToLabel(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestUploadedCorpusValidation(t *testing.T) {
	eng := testEngine(t)
	bad := testSpec()
	bad.Corpus = `{"text":"x","label":7}` + "\n"
	if err := bad.Validate(eng); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("out-of-range label accepted: %v", err)
	}
	empty := testSpec()
	empty.Corpus = "\n\n"
	if err := empty.Validate(eng); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("blank corpus accepted: %v", err)
	}
	// A run against a spec with an undecodable corpus must fail cleanly too.
	if _, err := Run(context.Background(), eng, bad, io.Discard, nil); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("Run accepted invalid uploaded corpus: %v", err)
	}
}
