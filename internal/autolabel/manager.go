package autolabel

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Job-subsystem telemetry: fleet dashboards watch queue depth and failure
// rate here, and the per-stage histograms attribute a slow job to rule
// resolution versus EM versus output I/O.
var (
	jobsByState = obs.Default().GaugeVec("darwin_autolabel_jobs",
		"Labeling jobs currently tracked by the manager, by state.",
		"state")
	jobsCompleted = obs.Default().CounterVec("darwin_autolabel_jobs_completed_total",
		"Labeling jobs that reached a terminal state, by result (done, failed, canceled).",
		"result")
	sentencesLabeled = obs.Default().Counter("darwin_autolabel_sentences_labeled_total",
		"Sentences written to labeling-job outputs.")
	stageDurations = obs.Default().HistogramVec("darwin_autolabel_stage_duration_seconds",
		"Latency of labeling-job pipeline stages.",
		obs.LatencyBuckets, "stage")
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the wire status of a labeling job — the body of
// GET /v2/datasets/{ds}/labeling-jobs/{id} and of the create response.
type JobStatus struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	State   string `json:"state"`
	// Stage is the pipeline stage a running job is in.
	Stage string `json:"stage,omitempty"`
	// Rules / Sentences are committee and corpus sizes; SentencesLabeled is
	// the write-stage progress counter (== Sentences when done).
	Rules            int `json:"rules"`
	Sentences        int `json:"sentences,omitempty"`
	SentencesLabeled int `json:"sentences_labeled"`
	// Covered / Positives / OutputBytes are filled when the job is done.
	Covered     int    `json:"covered,omitempty"`
	Positives   int    `json:"positives,omitempty"`
	OutputBytes int64  `json:"output_bytes,omitempty"`
	Error       string `json:"error,omitempty"`
	// Spec is the resolved spec the job runs (self-contained: any labeler
	// reference was expanded into rule strings before submission).
	Spec Spec `json:"spec"`
}

// ManagerConfig configures a labeling-job Manager.
type ManagerConfig struct {
	// Dir holds the job journal (jobs.log) and per-job outputs
	// (<id>.jsonl). Required.
	Dir string
	// Workers bounds concurrent job execution (default 2).
	Workers int
	// TTL is how long terminal jobs and their outputs are retained
	// (default 1h). Expired jobs are swept lazily on Submit/Status calls.
	TTL time.Duration
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// jobRecord is one line of the jobs journal. "create" records the resolved
// spec; "done"/"failed" mark terminal states; "expire" records a TTL sweep
// that deleted the job and its output, so replay does not resurrect it. A
// create without a terminal record is an interrupted job: reopening the
// manager re-enqueues it, and because Run is deterministic the re-run
// reproduces the exact output the crashed run would have produced.
type jobRecord struct {
	Type    string  `json:"type"` // create | done | failed | expire
	ID      string  `json:"id"`
	Dataset string  `json:"dataset,omitempty"`
	Spec    *Spec   `json:"spec,omitempty"`
	Result  *Result `json:"result,omitempty"`
	Error   string  `json:"error,omitempty"`
	// Unix is the wall-clock seconds of the record, used only for TTL
	// expiry of terminal jobs (never for output content).
	Unix int64 `json:"unix,omitempty"`
}

// job is the manager's in-memory view of one labeling job.
type job struct {
	id      string
	dataset string
	spec    Spec

	mu         sync.Mutex
	state      string
	stage      string
	rules      int
	n          int // corpus size, known once running
	labeled    int // write-stage progress
	result     Result
	err        error
	createUnix int64
	doneUnix   int64

	done chan struct{}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:               j.id,
		Dataset:          j.dataset,
		State:            j.state,
		Stage:            j.stage,
		Rules:            len(j.spec.Rules) + len(j.spec.NegativeRules),
		Sentences:        j.n,
		SentencesLabeled: j.labeled,
		Spec:             j.spec,
	}
	if j.state == StateDone {
		st.Covered = j.result.Covered
		st.Positives = j.result.Positives
		st.OutputBytes = j.result.OutputBytes
		st.Sentences = j.result.Sentences
		st.SentencesLabeled = j.result.Sentences
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Manager runs labeling jobs against a fixed set of engines with bounded
// worker concurrency, a TTL'd job store, and a journal that makes job status
// and outputs survive a crash: on reopen, terminal jobs are restored from
// their records and interrupted jobs are re-enqueued (deterministic Run makes
// the re-run byte-identical to what the lost run would have written).
type Manager struct {
	cfg     ManagerConfig
	engines func(dataset string) (*core.Engine, bool)

	mu      sync.Mutex //darwin:lockrank job
	jobs    map[string]*job
	journal *os.File
	jw      *bufio.Writer
	closed  bool

	queue  chan *job
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	// now is the wall clock, swappable in tests for TTL expiry.
	now func() time.Time
}

// NewManager opens (or creates) the job store in cfg.Dir, replays the job
// journal, restores terminal job statuses, and re-enqueues interrupted jobs.
// The engines resolver maps a dataset name to its engine; jobs for datasets
// the resolver no longer knows are dropped on replay.
func NewManager(cfg ManagerConfig, engines func(dataset string) (*core.Engine, bool)) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("autolabel: manager requires a directory")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.TTL <= 0 {
		cfg.TTL = time.Hour
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("autolabel: create jobs dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		engines: engines,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, 128),
		ctx:     ctx,
		cancel:  cancel,
		now:     time.Now,
	}
	pending, order, err := m.replay()
	if err != nil {
		cancel()
		return nil, err
	}
	if err := m.compactJournal(order); err != nil {
		cancel()
		return nil, err
	}
	f, err := os.OpenFile(m.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("autolabel: open job journal: %w", err)
	}
	m.journal = f
	m.jw = bufio.NewWriter(f)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	// Re-enqueue interrupted jobs in journal order so recovery is
	// deterministic.
	for _, j := range pending {
		m.cfg.Logf("autolabel: re-enqueueing interrupted job %s (dataset %s)", j.id, j.dataset)
		m.queue <- j
	}
	m.updateStateGauges()
	return m, nil
}

func (m *Manager) journalPath() string { return filepath.Join(m.cfg.Dir, "jobs.log") }

// OutputPath returns where the job's finished output lives.
func (m *Manager) OutputPath(id string) string {
	return filepath.Join(m.cfg.Dir, id+".jsonl")
}

// replay reads the journal and rebuilds the job table. It returns the jobs
// that must re-run — creates without a terminal record, plus unexpired done
// jobs whose output file has gone missing — and the journal order of the
// surviving jobs (for deterministic re-enqueueing and compaction). Torn
// trailing lines (crash mid-append) are tolerated and dropped, as are
// duplicate terminal records for an id already in a terminal state (a
// rebuilt output appends a second "done" for the same job).
func (m *Manager) replay() (pending []*job, order []string, err error) {
	f, err := os.Open(m.journalPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("autolabel: open job journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	terminal := func(j *job) bool { return j.state == StateDone || j.state == StateFailed }
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail from a crash mid-append; everything before it
			// already replayed.
			break
		}
		switch rec.Type {
		case "create":
			if rec.Spec == nil {
				continue
			}
			j := &job{
				id:         rec.ID,
				dataset:    rec.Dataset,
				spec:       *rec.Spec,
				state:      StateQueued,
				createUnix: rec.Unix,
				done:       make(chan struct{}),
			}
			m.jobs[rec.ID] = j
			order = append(order, rec.ID)
		case "done":
			if j, ok := m.jobs[rec.ID]; ok && rec.Result != nil && !terminal(j) {
				j.state = StateDone
				j.result = *rec.Result
				j.n = rec.Result.Sentences
				j.labeled = rec.Result.Sentences
				j.doneUnix = rec.Unix
				close(j.done)
			}
		case "failed":
			if j, ok := m.jobs[rec.ID]; ok && !terminal(j) {
				j.state = StateFailed
				j.err = errors.New(rec.Error)
				j.doneUnix = rec.Unix
				close(j.done)
			}
		case "expire":
			// TTL sweep deleted the job and its output; do not resurrect.
			delete(m.jobs, rec.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("autolabel: read job journal: %w", err)
	}
	cutoff := m.now().Add(-m.cfg.TTL).Unix()
	kept := order[:0]
	for _, id := range order {
		j, ok := m.jobs[id]
		if !ok {
			continue // expired
		}
		if _, ok := m.engines(j.dataset); !ok {
			m.cfg.Logf("autolabel: dropping job %s for unknown dataset %s", id, j.dataset)
			delete(m.jobs, id)
			continue
		}
		switch j.state {
		case StateQueued:
			pending = append(pending, j)
		case StateDone:
			if _, err := os.Stat(m.OutputPath(id)); err != nil {
				if j.doneUnix > 0 && j.doneUnix < cutoff {
					// Past the TTL anyway (e.g. a sweep whose expire record
					// was lost): drop instead of re-running work only a
					// sweep would immediately delete.
					m.cfg.Logf("autolabel: dropping expired job %s with missing output", id)
					delete(m.jobs, id)
					continue
				}
				// Output lost (crash between rename and journal sync, or
				// manual deletion): determinism lets us rebuild it.
				m.cfg.Logf("autolabel: output of done job %s missing, re-running", id)
				j.state = StateQueued
				j.done = make(chan struct{})
				pending = append(pending, j)
			}
		}
		kept = append(kept, id)
	}
	return pending, kept, nil
}

// compactJournal rewrites jobs.log down to the minimal record set for the
// jobs that survived replay — one create per job plus at most one terminal
// record — dropping expire records, duplicate terminal records, and records
// of expired or unknown-dataset jobs. Called on every open (before the
// append handle exists), it bounds journal growth across restarts.
func (m *Manager) compactJournal(order []string) error {
	if _, err := os.Stat(m.journalPath()); errors.Is(err, os.ErrNotExist) {
		return nil
	}
	tmp := m.journalPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("autolabel: compact job journal: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("autolabel: compact job journal: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, id := range order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		recs := []jobRecord{{Type: "create", ID: j.id, Dataset: j.dataset, Spec: &j.spec, Unix: j.createUnix}}
		switch j.state {
		case StateDone:
			res := j.result
			recs = append(recs, jobRecord{Type: "done", ID: j.id, Result: &res, Unix: j.doneUnix})
		case StateFailed:
			recs = append(recs, jobRecord{Type: "failed", ID: j.id, Error: j.err.Error(), Unix: j.doneUnix})
		}
		for _, rec := range recs {
			line, err := json.Marshal(rec)
			if err != nil {
				return fail(err)
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("autolabel: compact job journal: %w", err)
	}
	if err := os.Rename(tmp, m.journalPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("autolabel: compact job journal: %w", err)
	}
	return nil
}

// appendRecord durably journals one job record: the line is written,
// flushed, and fsynced before appendRecord returns.
//
//darwin:journals
func (m *Manager) appendRecord(rec jobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrDisabled
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := m.jw.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("autolabel: append job record: %w", err)
	}
	if err := m.jw.Flush(); err != nil {
		return fmt.Errorf("autolabel: flush job journal: %w", err)
	}
	return m.journal.Sync()
}

func (m *Manager) updateStateGauges() {
	counts := map[string]int{StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0}
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for state, n := range counts {
		jobsByState.With(state).Set(float64(n))
	}
}

// newJobID returns a fresh random job id ("j" + 16 hex chars).
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit validates the spec, journals the job and enqueues it. The spec must
// be fully resolved (no labeler reference). The returned status is the
// queued-state snapshot carrying the job id.
func (m *Manager) Submit(dataset string, spec Spec) (JobStatus, error) {
	eng, ok := m.engines(dataset)
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	if err := spec.Validate(eng); err != nil {
		return JobStatus{}, err
	}
	m.sweep()
	j := &job{
		id:         newJobID(),
		dataset:    dataset,
		spec:       spec,
		state:      StateQueued,
		createUnix: m.now().Unix(),
		done:       make(chan struct{}),
	}
	if err := m.appendRecord(jobRecord{Type: "create", ID: j.id, Dataset: dataset, Spec: &spec, Unix: j.createUnix}); err != nil {
		return JobStatus{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, ErrDisabled
	}
	m.jobs[j.id] = j
	m.mu.Unlock()
	select {
	case m.queue <- j:
	default:
		// Queue full: run the enqueue blocking in a goroutine so Submit
		// stays non-blocking; Close drains via context cancellation.
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			select {
			case m.queue <- j:
			case <-m.ctx.Done():
			}
		}()
	}
	m.updateStateGauges()
	return j.status(), nil
}

// Status returns the job's current status.
func (m *Manager) Status(id string) (JobStatus, error) {
	m.sweep()
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done, then
// returns its status. A manager shutdown also unblocks Wait, returning the
// job's current (possibly non-terminal) status instead of hanging on a job
// that will never finish in this process.
func (m *Manager) Wait(ctx context.Context, id string) (JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-m.ctx.Done():
		return j.status(), nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// OpenOutput opens the finished output of a done job for streaming, seeking
// to offset bytes (for resumable downloads). The caller must close the
// reader. Returns ErrNotDone while the job is queued/running and the job's
// failure error if it failed.
func (m *Manager) OpenOutput(id string, offset int64) (io.ReadCloser, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	state, jerr := j.state, j.err
	j.mu.Unlock()
	switch state {
	case StateFailed:
		return nil, fmt.Errorf("%w: job %s failed: %v", ErrNotDone, id, jerr)
	case StateDone:
	default:
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotDone, id, state)
	}
	f, err := os.Open(m.OutputPath(id))
	if err != nil {
		return nil, fmt.Errorf("autolabel: open output of %s: %w", id, err)
	}
	if offset > 0 {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("autolabel: seek output of %s: %w", id, err)
		}
	}
	return f, nil
}

// Jobs lists statuses of all tracked jobs, newest unexpired first by id (ids
// are random; ordering is lexicographic for determinism, not by time).
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		m.mu.Lock()
		j, ok := m.jobs[id]
		m.mu.Unlock()
		if ok {
			out = append(out, j.status())
		}
	}
	return out
}

// sweep drops terminal jobs older than the TTL, deletes their outputs, and
// journals an "expire" record per job so replay does not resurrect them.
func (m *Manager) sweep() {
	cutoff := m.now().Add(-m.cfg.TTL).Unix()
	var expired []string
	m.mu.Lock()
	for id, j := range m.jobs {
		j.mu.Lock()
		terminal := j.state == StateDone || j.state == StateFailed
		old := j.doneUnix > 0 && j.doneUnix < cutoff
		j.mu.Unlock()
		if terminal && old {
			expired = append(expired, id)
			delete(m.jobs, id)
		}
	}
	m.mu.Unlock()
	for _, id := range expired {
		os.Remove(m.OutputPath(id))
		if err := m.appendRecord(jobRecord{Type: "expire", ID: id, Unix: m.now().Unix()}); err != nil {
			m.cfg.Logf("autolabel: journal expiry of %s: %v", id, err)
		}
		m.cfg.Logf("autolabel: expired job %s", id)
	}
	if len(expired) > 0 {
		m.updateStateGauges()
	}
}

// worker executes jobs from the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one job: stream the pipeline into <id>.jsonl.partial, rename
// to <id>.jsonl, then journal the terminal record. The rename-then-journal
// order means a "done" record always refers to a complete output file; a
// crash in between leaves a create-without-terminal record, and recovery
// re-runs the job to the identical bytes.
func (m *Manager) run(j *job) {
	eng, ok := m.engines(j.dataset)
	if !ok {
		m.finishFailed(j, fmt.Errorf("%w: %q", ErrUnknownDataset, j.dataset))
		return
	}
	if j.spec.Corpus != "" {
		// Uploaded corpus: label the spec's own sentences through a
		// streaming engine (same grammars/kernel/seed as the dataset, no
		// interactive index). Built fresh per run — it is a pure function
		// of the journaled spec, so recovery re-runs reproduce the bytes.
		batch, err := j.spec.DecodeCorpus()
		if err != nil {
			m.finishFailed(j, err)
			return
		}
		seng, err := core.NewStreamingFromBatch(j.dataset+"/upload", batch, eng.Config())
		if err != nil {
			m.finishFailed(j, fmt.Errorf("%w: %v", ErrInvalidSpec, err))
			return
		}
		eng = seng
	}
	j.mu.Lock()
	j.state = StateRunning
	j.stage = StageResolve
	j.n = eng.CorpusLen()
	j.mu.Unlock()
	m.updateStateGauges()

	partial := m.OutputPath(j.id) + ".partial"
	f, err := os.Create(partial)
	if err != nil {
		m.finishFailed(j, fmt.Errorf("autolabel: create output: %w", err))
		return
	}
	stageStart := time.Now()
	lastStage := StageResolve
	prevLabeled := 0
	progress := func(stage string, done, total int) {
		if stage != lastStage {
			stageDurations.With(lastStage).ObserveSince(stageStart)
			stageStart = time.Now()
			lastStage = stage
		}
		j.mu.Lock()
		j.stage = stage
		if stage == StageWrite {
			j.labeled = done
		}
		j.mu.Unlock()
		if stage == StageWrite {
			sentencesLabeled.Add(uint64(done - prevLabeled))
			prevLabeled = done
		}
	}
	res, err := Run(m.ctx, eng, j.spec, f, progress)
	stageDurations.With(lastStage).ObserveSince(stageStart)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("autolabel: close output: %w", cerr)
	}
	if err != nil {
		os.Remove(partial)
		if m.ctx.Err() != nil {
			// Manager shutdown: leave the journal without a terminal record
			// so the next open re-runs the job, but close j.done (back in
			// the queued state) so in-process waiters unblock.
			m.cfg.Logf("autolabel: job %s interrupted by shutdown", j.id)
			j.mu.Lock()
			j.state = StateQueued
			j.stage = ""
			j.mu.Unlock()
			close(j.done)
			return
		}
		m.finishFailed(j, err)
		return
	}
	if err := os.Rename(partial, m.OutputPath(j.id)); err != nil {
		m.finishFailed(j, fmt.Errorf("autolabel: publish output: %w", err))
		return
	}
	now := m.now().Unix()
	j.mu.Lock()
	j.state = StateDone
	j.stage = ""
	j.result = res
	j.labeled = res.Sentences
	j.doneUnix = now
	j.mu.Unlock()
	close(j.done)
	if err := m.appendRecord(jobRecord{Type: "done", ID: j.id, Result: &res, Unix: now}); err != nil {
		m.cfg.Logf("autolabel: journal done record for %s: %v", j.id, err)
	}
	jobsCompleted.With("done").Inc()
	m.updateStateGauges()
}

func (m *Manager) finishFailed(j *job, err error) {
	now := m.now().Unix()
	j.mu.Lock()
	j.state = StateFailed
	j.stage = ""
	j.err = err
	j.doneUnix = now
	j.mu.Unlock()
	close(j.done)
	if jerr := m.appendRecord(jobRecord{Type: "failed", ID: j.id, Error: err.Error(), Unix: now}); jerr != nil {
		m.cfg.Logf("autolabel: journal failure record for %s: %v", j.id, jerr)
	}
	jobsCompleted.With("failed").Inc()
	m.cfg.Logf("autolabel: job %s failed: %v", j.id, err)
	m.updateStateGauges()
}

// Close stops the workers (canceling any running job without journaling a
// terminal record, so it re-runs on reopen) and closes the journal.
func (m *Manager) Close() error {
	m.cancel()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if err := m.jw.Flush(); err != nil {
		m.journal.Close()
		return err
	}
	return m.journal.Close()
}
