// Package autolabel is the corpus-scale auto-labeling pipeline: it takes a
// committee of accepted rules (a labeler's discovery output, plus any ad-hoc
// tokensregex/treematch predicates), applies them corpus-wide through the
// dense bitset coverage kernel, assembles the weak-supervision vote matrix,
// aggregates the votes with the label model (majority vote or the one-coin
// generative model), and streams the fully labeled corpus out as JSONL.
//
// This closes the loop the paper actually cares about: the serving stack
// helps a human find rules; this package turns those rules into training
// data at scale. Run is a pure function of (corpus, spec) — no wall clock,
// no randomness — so the same inputs always produce byte-identical output,
// which is what makes labeling jobs safely re-runnable after a crash (see
// Manager) and byte-comparable across direct, HTTP and routed invocations.
// darwinlint enforces that purity for every function in this file:
//
//darwin:replaypure
package autolabel

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/labelmodel"
)

// Aggregator names for Spec.Aggregator.
const (
	AggregatorMajority   = "majority"
	AggregatorGenerative = "generative"
)

// Pipeline stage names, in execution order. They label progress counters and
// the per-stage latency histograms.
const (
	StageResolve   = "resolve"
	StageVotes     = "votes"
	StageAggregate = "aggregate"
	StageWrite     = "write"
)

// Typed failures the serving layer maps onto its error taxonomy.
var (
	// ErrInvalidSpec reports a spec that cannot run (no rules, unknown
	// aggregator, unparseable rule).
	ErrInvalidSpec = errors.New("autolabel: invalid spec")
	// ErrUnknownDataset reports a job submitted for a dataset the manager
	// does not serve.
	ErrUnknownDataset = errors.New("autolabel: unknown dataset")
	// ErrUnknownJob reports an unknown or expired job id.
	ErrUnknownJob = errors.New("autolabel: unknown job")
	// ErrNotDone reports an output request for a job that has not completed.
	ErrNotDone = errors.New("autolabel: job is not done")
	// ErrDisabled reports that the manager is not configured (no jobs dir).
	ErrDisabled = errors.New("autolabel: labeling jobs are disabled")
)

// Spec describes one labeling job. It is both the wire shape of the /v2 job
// API and the journaled job record: the serving layer resolves any labeler
// reference into concrete rule strings before the spec is journaled, so the
// recorded spec alone determines the output byte-for-byte.
type Spec struct {
	// Rules are rule specifications voting positive on their coverage
	// (tokensregex phrases like "best way to get to", or prefixed forms like
	// "treematch:caused/by"). A labeler's accepted-rule strings parse here
	// unchanged.
	Rules []string `json:"rules,omitempty"`
	// NegativeRules vote negative on their coverage — predicate rules that
	// mark a sentence as a known non-match.
	NegativeRules []string `json:"negative_rules,omitempty"`
	// Labeler, when set on a create request, pulls the accepted rules of
	// this live labeler (session or workspace attachment) and appends them
	// to Rules. The serving layer resolves it at submit time and clears it.
	Labeler string `json:"labeler,omitempty"`
	// Aggregator is "majority" (default) or "generative".
	Aggregator string `json:"aggregator,omitempty"`
	// DefaultProb is the majority-vote probability assigned to sentences no
	// rule covers (default 0). The generative model gives uncovered
	// sentences its class prior instead.
	DefaultProb float64 `json:"default_prob,omitempty"`
	// PosThreshold is the hard-label cutoff: label 1 iff prob > threshold
	// (strictly greater, so an uncovered sentence sitting exactly on the
	// generative prior stays negative). nil means the default 0.5; an
	// explicit 0 labels every sentence with any positive probability.
	PosThreshold *float64 `json:"pos_threshold,omitempty"`
	// EMIterations overrides the generative model's EM rounds (default 20).
	EMIterations int `json:"em_iterations,omitempty"`
	// IncludeProb adds the aggregated probability to every output record.
	IncludeProb bool `json:"include_prob,omitempty"`
	// ChunkSize is the number of sentences written per flush (default 4096).
	// It bounds the writer's buffered memory and sets the granularity of
	// progress counters and cancellation checks.
	ChunkSize int `json:"chunk_size,omitempty"`
	// Corpus, when non-empty, is an uploaded corpus in ingest JSONL form
	// (one {"text","label"} per line): the job labels these sentences
	// instead of the dataset's resident corpus, streamed through a
	// lightweight engine that never builds the interactive index. The
	// dataset still scopes the job (grammars, kernel, labeler resolution);
	// the journaled spec carries the corpus, so recovery re-runs are
	// byte-identical.
	Corpus string `json:"corpus,omitempty"`
}

// withDefaults resolves the spec's tunables. It never touches Rules.
func (sp Spec) withDefaults() Spec {
	if sp.Aggregator == "" {
		sp.Aggregator = AggregatorMajority
	}
	if sp.PosThreshold == nil {
		thr := 0.5
		sp.PosThreshold = &thr
	}
	if sp.ChunkSize <= 0 {
		sp.ChunkSize = 4096
	}
	return sp
}

// Validate checks the spec against an engine without running anything: every
// rule must parse under the engine's grammars and the aggregator must be
// known. The returned error wraps ErrInvalidSpec.
func (sp Spec) Validate(eng *core.Engine) error {
	if sp.Labeler != "" {
		return fmt.Errorf("%w: labeler reference %q was not resolved before validation", ErrInvalidSpec, sp.Labeler)
	}
	if len(sp.Rules) == 0 {
		return fmt.Errorf("%w: at least one rule is required", ErrInvalidSpec)
	}
	switch sp.withDefaults().Aggregator {
	case AggregatorMajority, AggregatorGenerative:
	default:
		return fmt.Errorf("%w: unknown aggregator %q (want %q or %q)",
			ErrInvalidSpec, sp.Aggregator, AggregatorMajority, AggregatorGenerative)
	}
	for _, rule := range append(append([]string(nil), sp.Rules...), sp.NegativeRules...) {
		if _, err := eng.ParseRule(rule); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
		}
	}
	if sp.Corpus != "" {
		if _, err := sp.DecodeCorpus(); err != nil {
			return err
		}
	}
	return nil
}

// DecodeCorpus decodes the spec's uploaded corpus through the ingest
// decoder. Empty when the spec targets the dataset's resident corpus. The
// returned error wraps ErrInvalidSpec.
func (sp Spec) DecodeCorpus() ([]ingest.Sentence, error) {
	if sp.Corpus == "" {
		return nil, nil
	}
	batch, err := ingest.DecodeJSONL(strings.NewReader(sp.Corpus), ingest.Limits{})
	if err != nil {
		return nil, fmt.Errorf("%w: uploaded corpus: %v", ErrInvalidSpec, err)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: uploaded corpus is empty", ErrInvalidSpec)
	}
	return batch, nil
}

// Result summarizes one completed run.
type Result struct {
	// Sentences is the corpus size (= output lines).
	Sentences int `json:"sentences"`
	// Rules is the committee size (positive + negative vote sources).
	Rules int `json:"rules"`
	// Covered counts sentences with at least one non-abstain vote.
	Covered int `json:"covered"`
	// Positives counts output records labeled 1.
	Positives int `json:"positives"`
	// OutputBytes is the size of the streamed JSONL.
	OutputBytes int64 `json:"output_bytes"`
}

// Progress observes the pipeline: stage is one of the Stage* constants, done
// and total count stage-local units (rules for resolve/votes, sentences for
// aggregate/write). May be nil.
type Progress func(stage string, done, total int)

// labeledRecord is one output line: the corpus export shape
// ({"id","text","label"}) extended with the aggregated probability when the
// spec asks for it.
type labeledRecord struct {
	ID    int      `json:"id"`
	Text  string   `json:"text"`
	Label int      `json:"label"`
	Prob  *float64 `json:"prob,omitempty"`
}

// Run applies the spec to the engine's corpus and streams the labeled JSONL
// to w. Memory stays bounded by (corpus bitsets + vote matrix + one write
// chunk); output is produced in ChunkSize flushes, so a slow consumer
// backpressures the pipeline instead of buffering the whole corpus. The
// output is a pure function of (corpus, spec): byte-identical across runs,
// processes and routes. ctx is checked between chunks and rules; a canceled
// run returns ctx.Err() with the output truncated.
func Run(ctx context.Context, eng *core.Engine, spec Spec, w io.Writer, progress Progress) (Result, error) {
	if err := spec.Validate(eng); err != nil {
		return Result{}, err
	}
	sp := spec.withDefaults()
	if progress == nil {
		progress = func(string, int, int) {}
	}
	// An immutable snapshot view: a concurrent ingest must not grow the
	// corpus under a running job, which would desynchronize n, the vote
	// matrix and the output stream.
	corp := eng.CorpusView()
	n := corp.Len()
	numRules := len(sp.Rules) + len(sp.NegativeRules)

	// Stage 1: resolve every rule to its coverage bitset (index bits are
	// reused when published; otherwise one corpus scan, no index mutation).
	type ruleBits struct {
		spec string
		bits bitset.Cover
		vote labelmodel.Vote
	}
	resolved := make([]ruleBits, 0, numRules)
	resolve := func(specs []string, vote labelmodel.Vote) error {
		for _, rule := range specs {
			if err := ctx.Err(); err != nil {
				return err
			}
			_, bits, err := eng.CoverageBits(rule)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
			}
			resolved = append(resolved, ruleBits{spec: rule, bits: bits, vote: vote})
			progress(StageResolve, len(resolved), numRules)
		}
		return nil
	}
	if err := resolve(sp.Rules, labelmodel.VotePositive); err != nil {
		return Result{}, err
	}
	if err := resolve(sp.NegativeRules, labelmodel.VoteNegative); err != nil {
		return Result{}, err
	}

	// Stage 2: assemble the vote matrix and the union coverage — batch
	// word-wise Or over the per-rule bitsets.
	m := labelmodel.NewMatrix(n)
	union := bitset.New(n)
	for i, rb := range resolved {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		m.AddRuleBits(rb.spec, rb.bits, rb.vote)
		union = rb.bits.OrInto(union)
		progress(StageVotes, i+1, numRules)
	}
	// Rule bitsets resolved against the live index may cover sentences
	// ingested after the snapshot view was taken; count only ids inside it.
	covered := 0
	union.Range(func(id int) bool {
		if id >= n {
			return false
		}
		covered++
		return true
	})

	// Stage 3: aggregate votes into per-sentence probabilities.
	var probs []float64
	switch sp.Aggregator {
	case AggregatorGenerative:
		gcfg := labelmodel.DefaultGenerativeConfig()
		if sp.EMIterations > 0 {
			gcfg.Iterations = sp.EMIterations
		}
		probs = labelmodel.FitGenerative(m, gcfg).Probabilities()
	default:
		probs = m.MajorityVote(sp.DefaultProb)
	}
	progress(StageAggregate, n, n)

	// Stage 4: stream the labeled corpus in bounded chunks.
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	enc := json.NewEncoder(bw)
	threshold := *sp.PosThreshold
	res := Result{Sentences: n, Rules: numRules, Covered: covered}
	for start := 0; start < n; start += sp.ChunkSize {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		end := start + sp.ChunkSize
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			s := corp.Sentences[i]
			rec := labeledRecord{ID: s.ID, Text: s.Text}
			p := probs[i]
			if p > threshold {
				rec.Label = 1
				res.Positives++
			}
			if sp.IncludeProb {
				rec.Prob = &p
			}
			if err := enc.Encode(rec); err != nil {
				return res, fmt.Errorf("autolabel: write sentence %d: %w", s.ID, err)
			}
		}
		if err := bw.Flush(); err != nil {
			return res, fmt.Errorf("autolabel: flush output: %w", err)
		}
		progress(StageWrite, end, n)
	}
	res.OutputBytes = cw.n
	return res, nil
}

// countingWriter tracks bytes written through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
