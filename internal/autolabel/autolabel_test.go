package autolabel

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grammar"
	"repro/internal/tokensregex"
)

// testEngine builds a small directions engine with the fast configuration the
// server tests use.
func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	c, err := datagen.ByName("directions", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(c, core.Config{
		Grammars:        []grammar.Grammar{tokensregex.New()},
		SketchDepth:     4,
		MaxRuleDepth:    6,
		NumCandidates:   400,
		MinRuleCoverage: 2,
		Budget:          30,
		Traversal:       "hybrid",
		Tau:             5,
		Classifier:      classifier.Config{Epochs: 8, LearningRate: 0.3, Seed: 1},
		ClassifierKind:  classifier.KindLogReg,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testSpec() Spec {
	return Spec{
		Rules:       []string{"best way to get to", "how do i get"},
		Aggregator:  AggregatorGenerative,
		IncludeProb: true,
		ChunkSize:   64,
	}
}

func runOnce(t *testing.T, eng *core.Engine, spec Spec) ([]byte, Result) {
	t.Helper()
	var buf bytes.Buffer
	res, err := Run(context.Background(), eng, spec, &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func TestRunDeterministic(t *testing.T) {
	eng := testEngine(t)
	for _, agg := range []string{AggregatorMajority, AggregatorGenerative} {
		spec := testSpec()
		spec.Aggregator = agg
		a, resA := runOnce(t, eng, spec)
		b, resB := runOnce(t, eng, spec)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two runs differ", agg)
		}
		if resA != resB {
			t.Fatalf("%s: results differ: %+v vs %+v", agg, resA, resB)
		}
		if resA.Sentences != eng.Corpus().Len() {
			t.Errorf("%s: labeled %d of %d sentences", agg, resA.Sentences, eng.Corpus().Len())
		}
		if resA.Covered == 0 || resA.Positives == 0 {
			t.Errorf("%s: committee covered nothing: %+v", agg, resA)
		}
		if resA.OutputBytes != int64(len(a)) {
			t.Errorf("%s: OutputBytes %d != written %d", agg, resA.OutputBytes, len(a))
		}
		lines := bytes.Split(bytes.TrimSuffix(a, []byte("\n")), []byte("\n"))
		if len(lines) != resA.Sentences {
			t.Fatalf("%s: %d output lines for %d sentences", agg, len(lines), resA.Sentences)
		}
		var rec struct {
			ID    int      `json:"id"`
			Text  string   `json:"text"`
			Label int      `json:"label"`
			Prob  *float64 `json:"prob"`
		}
		if err := json.Unmarshal(lines[0], &rec); err != nil {
			t.Fatalf("%s: first line is not JSON: %v", agg, err)
		}
		if rec.Text == "" || rec.Prob == nil {
			t.Errorf("%s: first record incomplete: %s", agg, lines[0])
		}
	}
}

func TestRunProgressAndCancel(t *testing.T) {
	eng := testEngine(t)
	stages := map[string]bool{}
	var buf bytes.Buffer
	if _, err := Run(context.Background(), eng, testSpec(), &buf, func(stage string, done, total int) {
		stages[stage] = true
	}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{StageResolve, StageVotes, StageAggregate, StageWrite} {
		if !stages[want] {
			t.Errorf("progress never reported stage %q", want)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, eng, testSpec(), io.Discard, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run returned %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	eng := testEngine(t)
	cases := []struct {
		name string
		spec Spec
	}{
		{"no rules", Spec{}},
		{"unknown aggregator", Spec{Rules: []string{"best way"}, Aggregator: "quorum"}},
		{"unresolved labeler", Spec{Rules: []string{"best way"}, Labeler: "sess-1"}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(eng); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: Validate = %v, want ErrInvalidSpec", tc.name, err)
		}
		if _, err := Run(context.Background(), eng, tc.spec, io.Discard, nil); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: Run = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

func newTestManager(t *testing.T, dir string, eng *core.Engine) *Manager {
	t.Helper()
	m, err := NewManager(ManagerConfig{Dir: dir, Workers: 1, Logf: t.Logf},
		func(name string) (*core.Engine, bool) {
			if name == "directions" {
				return eng, true
			}
			return nil, false
		})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func waitDone(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func readOutput(t *testing.T, m *Manager, id string, offset int64) []byte {
	t.Helper()
	rc, err := m.OpenOutput(id, offset)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	out, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestManagerLifecycle(t *testing.T) {
	eng := testEngine(t)
	direct, directRes := runOnce(t, eng, testSpec())
	m := newTestManager(t, t.TempDir(), eng)
	defer m.Close()

	if _, err := m.Submit("nope", testSpec()); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("unknown dataset: %v", err)
	}
	if _, err := m.Submit("directions", Spec{}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("invalid spec: %v", err)
	}
	st, err := m.Submit("directions", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Dataset != "directions" {
		t.Fatalf("queued status %+v", st)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Covered != directRes.Covered || st.Positives != directRes.Positives ||
		st.OutputBytes != directRes.OutputBytes || st.SentencesLabeled != directRes.Sentences {
		t.Errorf("done status %+v does not match direct result %+v", st, directRes)
	}
	if got := readOutput(t, m, st.ID, 0); !bytes.Equal(got, direct) {
		t.Error("job output differs from direct Run output")
	}
	// Resumable download: offset skips exactly the prefix.
	if got := readOutput(t, m, st.ID, 100); !bytes.Equal(got, direct[100:]) {
		t.Error("offset read differs from output suffix")
	}
	if _, err := m.Status("jmissing"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job: %v", err)
	}
}

func TestManagerReplayInterruptedJob(t *testing.T) {
	eng := testEngine(t)
	direct, _ := runOnce(t, eng, testSpec())
	dir := t.TempDir()

	// A create record with no terminal record is exactly what a SIGKILL
	// mid-job leaves behind; a torn trailing line is a crash mid-append.
	spec := testSpec()
	rec, err := json.Marshal(jobRecord{Type: "create", ID: "jdeadbeef00000000", Dataset: "directions", Spec: &spec, Unix: 1})
	if err != nil {
		t.Fatal(err)
	}
	journal := append(rec, '\n')
	journal = append(journal, []byte(`{"type":"done","id":"jdeadbe`)...) // torn tail
	if err := os.WriteFile(filepath.Join(dir, "jobs.log"), journal, 0o644); err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, dir, eng)
	defer m.Close()
	st := waitDone(t, m, "jdeadbeef00000000")
	if st.State != StateDone {
		t.Fatalf("recovered job ended %s: %s", st.State, st.Error)
	}
	if got := readOutput(t, m, st.ID, 0); !bytes.Equal(got, direct) {
		t.Error("recovered job output differs from direct Run output")
	}
}

func TestManagerReopenRestoresAndRebuilds(t *testing.T) {
	eng := testEngine(t)
	dir := t.TempDir()
	m := newTestManager(t, dir, eng)
	st, err := m.Submit("directions", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, m, st.ID)
	want := readOutput(t, m, st.ID, 0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the done record restores the status without re-running.
	m2 := newTestManager(t, dir, eng)
	st2, err := m2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || st2.OutputBytes != st.OutputBytes {
		t.Fatalf("reopened status %+v, want done with %d bytes", st2, st.OutputBytes)
	}
	if got := readOutput(t, m2, st.ID, 0); !bytes.Equal(got, want) {
		t.Error("output changed across reopen")
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Delete the output: reopen must notice and rebuild identical bytes.
	if err := os.Remove(m2.OutputPath(st.ID)); err != nil {
		t.Fatal(err)
	}
	m3 := newTestManager(t, dir, eng)
	defer m3.Close()
	st3 := waitDone(t, m3, st.ID)
	if st3.State != StateDone {
		t.Fatalf("rebuilt job ended %s: %s", st3.State, st3.Error)
	}
	if got := readOutput(t, m3, st.ID, 0); !bytes.Equal(got, want) {
		t.Error("rebuilt output differs from original")
	}
}

func TestPosThresholdExplicitZero(t *testing.T) {
	eng := testEngine(t)
	if sp := (Spec{}).withDefaults(); *sp.PosThreshold != 0.5 {
		t.Errorf("unset threshold resolved to %v, want 0.5", *sp.PosThreshold)
	}
	zero := 0.0
	if sp := (Spec{PosThreshold: &zero}).withDefaults(); *sp.PosThreshold != 0 {
		t.Errorf("explicit zero threshold resolved to %v, want 0", *sp.PosThreshold)
	}
	// Generative aggregation gives every uncovered sentence the class prior
	// (> 0 with a positive committee), so threshold 0 labels the whole corpus
	// while the default 0.5 leaves the prior-sitting sentences negative.
	specDefault := testSpec()
	_, resDefault := runOnce(t, eng, specDefault)
	specZero := testSpec()
	specZero.PosThreshold = &zero
	_, resZero := runOnce(t, eng, specZero)
	if resZero.Positives != resZero.Sentences {
		t.Errorf("threshold 0 labeled %d of %d sentences positive", resZero.Positives, resZero.Sentences)
	}
	if resDefault.Positives >= resDefault.Sentences {
		t.Errorf("default threshold labeled the whole corpus positive (%d)", resDefault.Positives)
	}
}

// TestManagerReplayDuplicateTerminalRecords pins that replay tolerates a
// journal holding several terminal records for one id (the shape a rebuilt
// output leaves behind) instead of panicking on a double close of j.done.
func TestManagerReplayDuplicateTerminalRecords(t *testing.T) {
	eng := testEngine(t)
	dir := t.TempDir()
	spec := testSpec()
	res := Result{Sentences: 5, Rules: 2, Covered: 3, Positives: 2, OutputBytes: 11}
	var journal []byte
	for _, rec := range []jobRecord{
		{Type: "create", ID: "jdup0000000000000", Dataset: "directions", Spec: &spec, Unix: 1},
		{Type: "done", ID: "jdup0000000000000", Result: &res, Unix: time.Now().Unix()},
		{Type: "done", ID: "jdup0000000000000", Result: &res, Unix: time.Now().Unix()},
		{Type: "failed", ID: "jdup0000000000000", Error: "boom", Unix: time.Now().Unix()},
	} {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		journal = append(append(journal, line...), '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs.log"), journal, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jdup0000000000000.jsonl"), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, dir, eng)
	defer m.Close()
	st, err := m.Status("jdup0000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Error != "" || st.Covered != res.Covered {
		t.Errorf("replayed status %+v, want done matching the first terminal record", st)
	}
}

// TestManagerJournalCompaction drives the rebuild lifecycle through real
// manager opens: losing a done job's output makes the reopen re-enqueue it,
// compact the stale "done" record away, and journal a fresh one when the
// rebuild finishes — so the journal stays at one create + at most one
// terminal record per job across any number of reopens.
func TestManagerJournalCompaction(t *testing.T) {
	eng := testEngine(t)
	dir := t.TempDir()
	journalLines := func() int {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, "jobs.log"))
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Count(data, []byte("\n"))
	}
	m := newTestManager(t, dir, eng)
	st, err := m.Submit("directions", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	want := readOutput(t, m, st.ID, 0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(m.OutputPath(st.ID)); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, dir, eng)
	waitDone(t, m2, st.ID)
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := journalLines(); got != 2 {
		t.Fatalf("journal after rebuild has %d records, want 2 (create + fresh done)", got)
	}

	m3 := newTestManager(t, dir, eng)
	defer m3.Close()
	st3, err := m3.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != StateDone {
		t.Fatalf("job is %s after compacting reopen: %s", st3.State, st3.Error)
	}
	if got := readOutput(t, m3, st.ID, 0); !bytes.Equal(got, want) {
		t.Error("output changed across compacting reopen")
	}
	if got := journalLines(); got != 2 {
		t.Errorf("compacted journal has %d records, want 2 (create + done)", got)
	}
}

// TestManagerExpiredJobsStayDeadAcrossReopen pins that a TTL sweep is
// journaled: reopening after an expiry must not resurrect (and re-run) the
// expired job from its create + done records.
func TestManagerExpiredJobsStayDeadAcrossReopen(t *testing.T) {
	eng := testEngine(t)
	dir := t.TempDir()
	m := newTestManager(t, dir, eng)
	st, err := m.Submit("directions", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	m.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	if _, err := m.Status(st.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("expired job status: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, dir, eng)
	defer m2.Close()
	if _, err := m2.Status(st.ID); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("expired job resurrected across reopen: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(data)) != 0 {
		t.Errorf("journal not compacted after expiry:\n%s", data)
	}
}

// TestWaitUnblocksOnClose pins that Close leaves no Wait caller hanging:
// neither the job interrupted mid-run nor the one still sitting in the queue.
func TestWaitUnblocksOnClose(t *testing.T) {
	eng := testEngine(t)
	m := newTestManager(t, t.TempDir(), eng)
	slowSpec := testSpec()
	slowSpec.EMIterations = 300000 // keeps the job mid-aggregate until Close
	running, err := m.Submit("directions", slowSpec)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit("directions", slowSpec) // Workers: 1, so this one waits
	if err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan struct{})
	go func() {
		defer close(unblocked)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, id := range []string{running.ID, queued.ID} {
			if _, err := m.Wait(ctx, id); err != nil {
				t.Errorf("Wait(%s) after Close: %v", id, err)
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unblocked:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait callers still blocked after Close")
	}
}

func TestManagerTTLSweep(t *testing.T) {
	eng := testEngine(t)
	m := newTestManager(t, t.TempDir(), eng)
	defer m.Close()
	st, err := m.Submit("directions", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	outPath := m.OutputPath(st.ID)
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal(err)
	}
	m.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	if _, err := m.Status(st.ID); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("expired job status: %v", err)
	}
	if _, err := os.Stat(outPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("expired output still on disk: %v", err)
	}
}

func TestSnubaBaselineDeterministic(t *testing.T) {
	eng := testEngine(t)
	req := SnubaRequest{SeedSize: 200, Seed: 3, MinPrecision: 0.5, CompareRules: []string{"best way to get to"}}
	a, err := RunSnuba(eng, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSnuba(eng, req)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("snuba baseline not deterministic:\n%s\n%s", aj, bj)
	}
	if len(a.Rules) == 0 {
		t.Fatal("snuba mined no rules")
	}
	for _, r := range a.Rules {
		if strings.TrimSpace(r.Rule) == "" {
			t.Fatalf("empty rule display form in %+v", r)
		}
	}
	if a.Compare == nil || a.Compare.Rules != 1 {
		t.Errorf("compare committee missing: %+v", a.Compare)
	}
	if a.Snuba.Covered == 0 {
		t.Errorf("snuba committee covered nothing: %+v", a.Snuba)
	}
	// The mined rule strings must round-trip through a labeling job.
	rules := make([]string, 0, len(a.Rules))
	for _, r := range a.Rules {
		rules = append(rules, r.Rule)
	}
	if _, err := Run(context.Background(), eng, Spec{Rules: rules}, io.Discard, nil); err != nil {
		t.Errorf("mined rules do not run as a labeling spec: %v", err)
	}
}
