package grammar

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// fakeHeuristic and fakeGrammar provide a minimal grammar for registry tests
// without importing the concrete grammar packages (which would create an
// import cycle in tests).
type fakeHeuristic struct {
	word string
}

func (f fakeHeuristic) Key() string         { return "fake:" + f.word }
func (f fakeHeuristic) String() string      { return f.word }
func (f fakeHeuristic) GrammarName() string { return "fake" }
func (f fakeHeuristic) Depth() int          { return 1 }
func (f fakeHeuristic) Matches(s *corpus.Sentence) bool {
	if s == nil {
		return false
	}
	for _, t := range s.Tokens {
		if t == f.word {
			return true
		}
	}
	return false
}
func (f fakeHeuristic) Parents() []Heuristic { return []Heuristic{Root()} }

type fakeGrammar struct{}

func (fakeGrammar) Name() string { return "fake" }
func (fakeGrammar) Sketch(s *corpus.Sentence, maxDepth int) []Heuristic {
	var out []Heuristic
	seen := map[string]bool{}
	for _, t := range s.Tokens {
		if !seen[t] {
			seen[t] = true
			out = append(out, fakeHeuristic{word: t})
		}
	}
	return out
}
func (fakeGrammar) Parse(spec string) (Heuristic, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.Contains(spec, " ") {
		return nil, fmt.Errorf("fake: bad spec %q", spec)
	}
	return fakeHeuristic{word: spec}, nil
}
func (fakeGrammar) Specialize(h Heuristic, s *corpus.Sentence, maxDepth int) []Heuristic {
	return nil
}

func testCorpus() *corpus.Corpus {
	c := corpus.New("g", "t")
	c.Add("the shuttle goes to the airport", corpus.Positive)
	c.Add("order a pizza tonight", corpus.Negative)
	c.Preprocess(corpus.PreprocessOptions{})
	return c
}

func TestRoot(t *testing.T) {
	r := Root()
	if r.Key() != RootKey || r.Depth() != 0 {
		t.Errorf("root = %v", r)
	}
	if !r.Matches(nil) || !r.Matches(&corpus.Sentence{}) {
		t.Error("root must match everything")
	}
	if r.Parents() != nil {
		t.Error("root has parents")
	}
	if !IsRoot(r) {
		t.Error("IsRoot(Root()) = false")
	}
	if IsRoot(nil) {
		t.Error("IsRoot(nil) = true")
	}
	if IsRoot(fakeHeuristic{word: "x"}) {
		t.Error("IsRoot(fake) = true")
	}
	if r.String() != "*" || r.GrammarName() != "root" {
		t.Error("root metadata wrong")
	}
}

func TestRegistryParse(t *testing.T) {
	r := NewRegistry(fakeGrammar{})
	h, err := r.Parse("fake:shuttle")
	if err != nil || h.Key() != "fake:shuttle" {
		t.Errorf("prefixed parse: %v %v", h, err)
	}
	h, err = r.Parse("shuttle")
	if err != nil || h.Key() != "fake:shuttle" {
		t.Errorf("unprefixed parse: %v %v", h, err)
	}
	if _, err := r.Parse("two words"); err == nil {
		t.Error("bad spec should error")
	}
	h, err = r.Parse("*")
	if err != nil || !IsRoot(h) {
		t.Errorf("root parse: %v %v", h, err)
	}
	empty := NewRegistry()
	if _, err := empty.Parse("anything"); err == nil {
		t.Error("empty registry should error")
	}
}

func TestRegistrySketchAndSpecialize(t *testing.T) {
	r := NewRegistry(fakeGrammar{})
	c := testCorpus()
	hs := r.Sketch(c.Sentence(0), 3)
	if len(hs) == 0 {
		t.Fatal("empty sketch")
	}
	// Sorted and deduplicated by key.
	for i := 1; i < len(hs); i++ {
		if hs[i-1].Key() >= hs[i].Key() {
			t.Errorf("sketch not sorted/deduped: %s >= %s", hs[i-1].Key(), hs[i].Key())
		}
	}
	kids := r.Specialize(Root(), c.Sentence(0), 3)
	if len(kids) == 0 {
		t.Error("root specialize empty")
	}
	if got := r.Specialize(fakeHeuristic{word: "x"}, c.Sentence(0), 3); got != nil {
		t.Errorf("fake specialize = %v, want nil", got)
	}
	// Unknown grammar name.
	if got := r.Specialize(unknownGrammarHeuristic{}, c.Sentence(0), 3); got != nil {
		t.Error("unknown grammar should return nil")
	}
}

type unknownGrammarHeuristic struct{ fakeHeuristic }

func (unknownGrammarHeuristic) GrammarName() string { return "unknown" }

func TestRegistryRegisterReplaces(t *testing.T) {
	r := NewRegistry(fakeGrammar{})
	r.Register(fakeGrammar{})
	if len(r.Grammars()) != 1 {
		t.Errorf("duplicate registration grew the registry: %d", len(r.Grammars()))
	}
	if _, ok := r.Get("fake"); !ok {
		t.Error("Get(fake) failed")
	}
	if _, ok := r.Get("missing"); ok {
		t.Error("Get(missing) succeeded")
	}
}

func TestCoverage(t *testing.T) {
	c := testCorpus()
	ids := Coverage(fakeHeuristic{word: "shuttle"}, c)
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("Coverage = %v", ids)
	}
	if ids := Coverage(Root(), c); len(ids) != c.Len() {
		t.Errorf("root coverage = %v", ids)
	}
}
