// Package grammar defines the heuristic-grammar abstraction at the heart of
// Darwin (Definitions 1-3 of the paper): a labeling heuristic is a derivation
// of a context-free Heuristic Grammar, and the system is agnostic to which
// grammar produced a heuristic. Concrete grammars live in the tokensregex and
// treematch packages; any other grammar can be plugged in by implementing the
// two interfaces below.
package grammar

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
)

// Heuristic is a labeling heuristic — a derivation of a heuristic grammar.
// Implementations must be immutable values: all methods are read-only and
// safe for concurrent use.
type Heuristic interface {
	// Key returns a canonical, unique identifier of the heuristic within its
	// grammar (prefixed by the grammar name so keys are globally unique).
	Key() string
	// String returns a human-readable rendering shown to annotators.
	String() string
	// GrammarName names the grammar that produced this heuristic.
	GrammarName() string
	// Depth is the number of derivation rules used to derive the heuristic.
	// The root heuristic has depth 0.
	Depth() int
	// Matches reports whether the (preprocessed) sentence satisfies the
	// heuristic.
	Matches(s *corpus.Sentence) bool
	// Parents returns the generalizations of the heuristic obtained by
	// removing one derivation rule. The depth-1 heuristics return the root
	// heuristic as their only parent; the root returns nil.
	Parents() []Heuristic
}

// Grammar is a heuristic grammar: it enumerates the bounded-depth heuristics
// a sentence satisfies (its derivation sketch), parses textual rule
// specifications into heuristics (for seed rules), and specializes heuristics
// by applying one more derivation rule with a witness sentence.
type Grammar interface {
	// Name returns the grammar's name ("tokensregex", "treematch", ...).
	Name() string
	// Sketch enumerates the heuristics of depth <= maxDepth satisfied by the
	// sentence. This is the derivation sketch of §3.1.
	Sketch(s *corpus.Sentence, maxDepth int) []Heuristic
	// Parse converts a textual rule specification into a heuristic.
	Parse(spec string) (Heuristic, error)
	// Specialize returns the children of h (one extra derivation rule) that
	// still match the witness sentence s, up to maxDepth. It is used by the
	// LocalSearch traversal to expand the hierarchy on the fly.
	Specialize(h Heuristic, s *corpus.Sentence, maxDepth int) []Heuristic
}

// RootKey is the key of the universal root heuristic '*', which matches every
// sentence and sits at the top of the index and of every hierarchy.
const RootKey = "*"

// rootHeuristic is the singleton root.
type rootHeuristic struct{}

// Root returns the universal root heuristic '*'.
func Root() Heuristic { return rootHeuristic{} }

func (rootHeuristic) Key() string                   { return RootKey }
func (rootHeuristic) String() string                { return "*" }
func (rootHeuristic) GrammarName() string           { return "root" }
func (rootHeuristic) Depth() int                    { return 0 }
func (rootHeuristic) Matches(*corpus.Sentence) bool { return true }
func (rootHeuristic) Parents() []Heuristic          { return nil }

// IsRoot reports whether h is the universal root heuristic.
func IsRoot(h Heuristic) bool {
	return h != nil && h.Key() == RootKey
}

// Registry maps grammar names to grammars so a rule specification like
// "tokensregex:best way to" or "treematch:way/to" can be parsed without the
// caller knowing which grammar owns it.
type Registry struct {
	grammars map[string]Grammar
	order    []string
}

// NewRegistry creates a registry containing the given grammars.
func NewRegistry(grammars ...Grammar) *Registry {
	r := &Registry{grammars: make(map[string]Grammar)}
	for _, g := range grammars {
		r.Register(g)
	}
	return r
}

// Register adds a grammar to the registry (replacing a same-named grammar).
func (r *Registry) Register(g Grammar) {
	if _, exists := r.grammars[g.Name()]; !exists {
		r.order = append(r.order, g.Name())
	}
	r.grammars[g.Name()] = g
}

// Get returns the grammar with the given name.
func (r *Registry) Get(name string) (Grammar, bool) {
	g, ok := r.grammars[name]
	return g, ok
}

// Grammars returns the registered grammars in registration order.
func (r *Registry) Grammars() []Grammar {
	out := make([]Grammar, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.grammars[name])
	}
	return out
}

// Parse parses a rule specification of the form "grammar:spec". A spec with
// no grammar prefix is tried against every registered grammar in registration
// order and the first successful parse wins.
func (r *Registry) Parse(spec string) (Heuristic, error) {
	spec = strings.TrimSpace(spec)
	if spec == RootKey {
		return Root(), nil
	}
	if i := strings.Index(spec, ":"); i > 0 {
		name := spec[:i]
		if g, ok := r.grammars[name]; ok {
			return g.Parse(spec[i+1:])
		}
	}
	var firstErr error
	for _, name := range r.order {
		h, err := r.grammars[name].Parse(spec)
		if err == nil {
			return h, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("no grammars registered")
	}
	return nil, fmt.Errorf("grammar: cannot parse rule %q: %w", spec, firstErr)
}

// Sketch returns the union of all registered grammars' sketches for the
// sentence, deduplicated by key and sorted by key for determinism.
func (r *Registry) Sketch(s *corpus.Sentence, maxDepth int) []Heuristic {
	seen := map[string]Heuristic{}
	for _, name := range r.order {
		for _, h := range r.grammars[name].Sketch(s, maxDepth) {
			seen[h.Key()] = h
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Heuristic, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// Specialize dispatches to the grammar that owns h. Specializing the root
// returns the depth-1 heuristics of every grammar's sketch of s.
func (r *Registry) Specialize(h Heuristic, s *corpus.Sentence, maxDepth int) []Heuristic {
	if IsRoot(h) {
		var out []Heuristic
		for _, name := range r.order {
			for _, c := range r.grammars[name].Sketch(s, 1) {
				out = append(out, c)
			}
		}
		return out
	}
	if g, ok := r.grammars[h.GrammarName()]; ok {
		return g.Specialize(h, s, maxDepth)
	}
	return nil
}

// Coverage computes the coverage set C_r of a heuristic over a corpus by
// matching it against every sentence. The index provides a much faster path
// for heuristics it has materialized; this function is the fallback for
// ad-hoc heuristics such as parsed seed rules.
func Coverage(h Heuristic, c *corpus.Corpus) []int {
	var out []int
	for _, s := range c.Sentences {
		if h.Matches(s) {
			out = append(out, s.ID)
		}
	}
	return out
}
