// Package tokensregex implements the TokensRegex heuristic grammar of the
// paper (Example 2): regular expressions over tokens. A heuristic is a
// contiguous token phrase, optionally containing single-token wildcards '*'
// (the grammar's A -> A*A rule restricted to one-token gaps, which is the
// form annotators actually use). A sentence satisfies the heuristic if the
// phrase occurs contiguously in its token sequence.
package tokensregex

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/grammar"
	"repro/internal/textproc"
)

// GrammarName is the registry name of this grammar.
const GrammarName = "tokensregex"

// Wildcard is the single-token wildcard terminal.
const Wildcard = "*"

// Heuristic is a TokensRegex labeling heuristic: a contiguous token phrase.
type Heuristic struct {
	phrase []string
	key    string
}

var _ grammar.Heuristic = (*Heuristic)(nil)

// NewHeuristic builds a heuristic from a token phrase. Tokens are normalized;
// empty phrases are rejected by Parse, but NewHeuristic tolerates them (the
// result matches nothing).
func NewHeuristic(phrase []string) *Heuristic {
	norm := make([]string, len(phrase))
	for i, t := range phrase {
		if t == Wildcard {
			norm[i] = Wildcard
			continue
		}
		norm[i] = textproc.Normalize(t)
	}
	return &Heuristic{phrase: norm, key: GrammarName + ":" + strings.Join(norm, " ")}
}

// Phrase returns a copy of the heuristic's token phrase.
func (h *Heuristic) Phrase() []string {
	out := make([]string, len(h.phrase))
	copy(out, h.phrase)
	return out
}

// Key implements grammar.Heuristic.
func (h *Heuristic) Key() string { return h.key }

// String implements grammar.Heuristic.
func (h *Heuristic) String() string { return "'" + strings.Join(h.phrase, " ") + "'" }

// GrammarName implements grammar.Heuristic.
func (h *Heuristic) GrammarName() string { return GrammarName }

// Depth implements grammar.Heuristic: one derivation rule per token.
func (h *Heuristic) Depth() int { return len(h.phrase) }

// Matches reports whether the phrase occurs contiguously in the sentence's
// tokens. Wildcard positions match any single token.
func (h *Heuristic) Matches(s *corpus.Sentence) bool {
	if s == nil || len(h.phrase) == 0 {
		return false
	}
	toks := s.Tokens
	n, m := len(toks), len(h.phrase)
	if m > n {
		return false
	}
	for i := 0; i+m <= n; i++ {
		ok := true
		for j := 0; j < m; j++ {
			if h.phrase[j] != Wildcard && toks[i+j] != h.phrase[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Parents returns the generalizations obtained by dropping the first or last
// token of the phrase. Single-token heuristics generalize to the root.
func (h *Heuristic) Parents() []grammar.Heuristic {
	if len(h.phrase) <= 1 {
		return []grammar.Heuristic{grammar.Root()}
	}
	dropLast := NewHeuristic(h.phrase[:len(h.phrase)-1])
	dropFirst := NewHeuristic(h.phrase[1:])
	if dropLast.Key() == dropFirst.Key() {
		return []grammar.Heuristic{dropLast}
	}
	return []grammar.Heuristic{dropLast, dropFirst}
}

// Grammar is the TokensRegex grammar.
type Grammar struct {
	// SkipStopwordUnigrams drops depth-1 heuristics that are pure stop words
	// ("the", "to", ...) from sketches; such rules are never precise and
	// inflate the index. Default true via New.
	SkipStopwordUnigrams bool
}

var _ grammar.Grammar = (*Grammar)(nil)

// New returns the TokensRegex grammar with default settings.
func New() *Grammar {
	return &Grammar{SkipStopwordUnigrams: true}
}

// Name implements grammar.Grammar.
func (g *Grammar) Name() string { return GrammarName }

// Sketch enumerates every contiguous n-gram of the sentence with 1 <= n <=
// maxDepth (the derivation sketch of Figure 5), deduplicated.
func (g *Grammar) Sketch(s *corpus.Sentence, maxDepth int) []grammar.Heuristic {
	if s == nil || len(s.Tokens) == 0 || maxDepth < 1 {
		return nil
	}
	seen := map[string]bool{}
	var out []grammar.Heuristic
	for n := 1; n <= maxDepth && n <= len(s.Tokens); n++ {
		for i := 0; i+n <= len(s.Tokens); i++ {
			phrase := s.Tokens[i : i+n]
			if n == 1 && g.SkipStopwordUnigrams && textproc.IsStopWord(phrase[0]) {
				continue
			}
			h := NewHeuristic(phrase)
			if seen[h.Key()] {
				continue
			}
			seen[h.Key()] = true
			out = append(out, h)
		}
	}
	return out
}

// Parse parses a phrase specification such as "best way to" or "shuttle * the
// hotel" (with single-token wildcards).
func (g *Grammar) Parse(spec string) (grammar.Heuristic, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("tokensregex: empty rule")
	}
	var tok textproc.Tokenizer
	fields := strings.Fields(spec)
	var phrase []string
	for _, f := range fields {
		if f == Wildcard {
			phrase = append(phrase, Wildcard)
			continue
		}
		words := tok.TokenizeWords(f)
		if len(words) == 0 {
			continue
		}
		phrase = append(phrase, words...)
	}
	if len(phrase) == 0 {
		return nil, fmt.Errorf("tokensregex: rule %q has no tokens", spec)
	}
	return NewHeuristic(phrase), nil
}

// Specialize extends the phrase by one adjacent token of the witness sentence
// (to the left or to the right of an occurrence), producing the children of h
// that still match s. Specializing the root yields the depth-1 sketch.
func (g *Grammar) Specialize(h grammar.Heuristic, s *corpus.Sentence, maxDepth int) []grammar.Heuristic {
	if s == nil || len(s.Tokens) == 0 {
		return nil
	}
	if grammar.IsRoot(h) {
		return g.Sketch(s, 1)
	}
	th, ok := h.(*Heuristic)
	if !ok {
		return nil
	}
	if maxDepth > 0 && th.Depth() >= maxDepth {
		return nil
	}
	toks := s.Tokens
	m := len(th.phrase)
	seen := map[string]bool{}
	var out []grammar.Heuristic
	for i := 0; i+m <= len(toks); i++ {
		match := true
		for j := 0; j < m; j++ {
			if th.phrase[j] != Wildcard && toks[i+j] != th.phrase[j] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if i > 0 {
			ext := append([]string{toks[i-1]}, th.phrase...)
			c := NewHeuristic(ext)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				out = append(out, c)
			}
		}
		if i+m < len(toks) {
			ext := append(append([]string{}, th.phrase...), toks[i+m])
			c := NewHeuristic(ext)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				out = append(out, c)
			}
		}
	}
	return out
}
